// BGDL block-size ablation (paper Section 5.5): the user-tunable tradeoff
// between communication and memory. Larger blocks -> fewer remote operations
// per holder access (a one-block vertex costs a single GET) but more internal
// fragmentation; smaller blocks -> the reverse.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("Ablation -- BGDL block size (communication vs memory)",
               "paper Sec. 5.5 design choice");
  constexpr int P = 4;

  stats::Table table({"block size", "gets/query", "bytes/query", "memory used",
                      "Mqueries/s (RM)"});
  for (std::size_t bs : {256u, 512u, 1024u, 2048u, 4096u}) {
    rma::Runtime rt(P, rma::NetParams::xc50());
    rt.run([&](rma::Rank& self) {
      SetupOpts o;
      o.scale = 10;
      o.block_size = bs;
      auto env = setup_db(self, o);
      work::OltpConfig cfg;
      cfg.queries_per_rank = 1500;
      cfg.existing_ids = env.n;
      cfg.label_for_new = env.label_ids[0];
      cfg.ptype_for_update = env.ptype_ids[0];
      self.reset_counters();
      auto res = work::run_oltp(env.db, self, work::OpMix::read_mostly(), cfg);
      const double gets = static_cast<double>(self.counters().gets);
      const double bytes = static_cast<double>(self.counters().bytes_get +
                                               self.counters().bytes_put);
      const std::uint64_t blocks =
          self.allreduce_sum(env.db->blocks().allocated_count(
              self, static_cast<std::uint32_t>(self.id())));
      if (self.id() == 0)
        table.add_row({std::to_string(bs),
                       stats::Table::fmt(gets / double(cfg.queries_per_rank), 2),
                       stats::Table::fmt(bytes / double(cfg.queries_per_rank), 0),
                       stats::Table::fmt_si(double(blocks) * double(bs), 2) + "B",
                       fmt_mqps(res.throughput_qps)});
      self.barrier();
    });
  }
  std::cout << table.to_string();
  std::cout << "\nExpected shape: gets/query falls as blocks grow (fewer blocks per\n"
               "holder) while total memory rises (internal fragmentation) -- the\n"
               "tunable tradeoff the paper designs BGDL around.\n";
  return 0;
}
