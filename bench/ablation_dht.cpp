// Microbenchmark: the fully-offloaded DHT (paper Section 5.7) -- real
// wall-clock cost of insert / lookup / erase on this machine (google
// benchmark), independent of the network cost model.
#include <benchmark/benchmark.h>

#include "dht/dht.hpp"

namespace {

using gdi::dht::DhtConfig;
using gdi::dht::DistributedHashTable;

struct Env {
  gdi::rma::Runtime rt{1};
  gdi::rma::Rank self{rt, 0};
  DistributedHashTable table{1, DhtConfig{4096, 1u << 16, 3}};
};

void BM_DhtInsertErase(benchmark::State& state) {
  Env env;
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.table.insert(env.self, k, k));
    benchmark::DoNotOptimize(env.table.erase(env.self, k));
    ++k;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_DhtInsertErase);

void BM_DhtLookupHit(benchmark::State& state) {
  Env env;
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t k = 0; k < n; ++k)
    benchmark::DoNotOptimize(env.table.insert(env.self, k, k));
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.table.lookup(env.self, k % n));
    ++k;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DhtLookupHit)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DhtLookupMiss(benchmark::State& state) {
  Env env;
  for (std::uint64_t k = 0; k < 1024; ++k)
    benchmark::DoNotOptimize(env.table.insert(env.self, k, k));
  std::uint64_t k = 1u << 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.table.lookup(env.self, k++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DhtLookupMiss);

void BM_DhtChainWalk(benchmark::State& state) {
  // One bucket: lookups walk a chain of range(0) entries.
  gdi::rma::Runtime rt{1};
  gdi::rma::Rank self{rt, 0};
  DistributedHashTable table{1, DhtConfig{1, 1u << 16, 3}};
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t k = 0; k < n; ++k)
    benchmark::DoNotOptimize(table.insert(self, k, k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(self, 0));  // tail of the chain
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DhtChainWalk)->Arg(4)->Arg(32)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
