// Microbenchmark: BGDL block acquisition and the single-word reader/writer
// locks (paper Sections 5.5, 5.6) -- real wall-clock costs plus a contention
// sweep over thread counts.
#include <benchmark/benchmark.h>

#include <thread>

#include "block/block_store.hpp"

namespace {

using gdi::block::BlockStore;
using gdi::block::BlockStoreConfig;

void BM_BlockAcquireRelease(benchmark::State& state) {
  gdi::rma::Runtime rt{1};
  gdi::rma::Rank self{rt, 0};
  BlockStore bs{1, BlockStoreConfig{512, 1u << 12}};
  for (auto _ : state) {
    const gdi::DPtr p = bs.acquire(self, 0);
    benchmark::DoNotOptimize(p);
    bs.release(self, p);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockAcquireRelease);

void BM_ReadLockUnlock(benchmark::State& state) {
  gdi::rma::Runtime rt{1};
  gdi::rma::Rank self{rt, 0};
  BlockStore bs{1, BlockStoreConfig{512, 64}};
  const gdi::DPtr p = bs.acquire(self, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bs.try_read_lock(self, p));
    bs.read_unlock(self, p);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReadLockUnlock);

void BM_WriteLockUnlock(benchmark::State& state) {
  gdi::rma::Runtime rt{1};
  gdi::rma::Rank self{rt, 0};
  BlockStore bs{1, BlockStoreConfig{512, 64}};
  const gdi::DPtr p = bs.acquire(self, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bs.try_write_lock(self, p));
    bs.write_unlock(self, p);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WriteLockUnlock);

void BM_BlockAcquireContended(benchmark::State& state) {
  // range(0) extra threads hammer the same rank's free list while the timed
  // thread acquires/releases -- exercises the ABA-tagged CAS retry path.
  gdi::rma::Runtime rt{1};
  gdi::rma::Rank self{rt, 0};
  BlockStore bs{1, BlockStoreConfig{512, 1u << 14}};
  std::atomic<bool> stop{false};
  std::vector<std::thread> noise;
  for (int t = 0; t < state.range(0); ++t) {
    noise.emplace_back([&] {
      gdi::rma::Rank peer{rt, 0};
      while (!stop.load(std::memory_order_relaxed)) {
        const gdi::DPtr p = bs.acquire(peer, 0);
        if (!p.is_null()) bs.release(peer, p);
      }
    });
  }
  for (auto _ : state) {
    const gdi::DPtr p = bs.acquire(self, 0);
    benchmark::DoNotOptimize(p);
    if (!p.is_null()) bs.release(self, p);
  }
  stop = true;
  for (auto& t : noise) t.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockAcquireContended)->Arg(0)->Arg(1)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
