// Figure 4a: OLTP throughput, weak scaling, Read Mostly (RM) and Read
// Intensive (RI) mixes on XC40 and XC50 parameter presets. Dataset grows
// with the rank count (fixed vertices/edges per rank), mirroring the paper's
// 8..7142-server sweep at laptop scale.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("Figure 4a -- OLTP weak scaling (Read Mostly / Read Intensive)",
               "paper Fig. 4a");
  constexpr int kBaseScale = 11;  // 2^11 vertices per rank
  const std::vector<int> ranks{1, 2, 4, 8};

  stats::Table table({"ranks", "#vertices", "#edges", "mix", "net", "Mqueries/s",
                      "failed"});
  for (const char* net_name : {"XC40", "XC50"}) {
    const auto net = std::string(net_name) == "XC40" ? rma::NetParams::xc40()
                                                     : rma::NetParams::xc50();
    for (int P : ranks) {
      rma::Runtime rt(P, net);
      rt.run([&](rma::Rank& self) {
        SetupOpts o;
        o.scale = kBaseScale + static_cast<int>(std::log2(P));
        auto env = setup_db(self, o);
        for (const auto& mix :
             {work::OpMix::read_mostly(), work::OpMix::read_intensive()}) {
          work::OltpConfig cfg;
          cfg.queries_per_rank = bench_queries(1500);
          cfg.existing_ids = env.n;
          cfg.label_for_new = env.label_ids[0];
          cfg.ptype_for_update = env.ptype_ids[0];
          auto res = work::run_oltp(env.db, self, mix, cfg);
          if (self.id() == 0) {
            table.add_row({std::to_string(P), stats::Table::fmt_si(double(env.n), 1),
                           stats::Table::fmt_si(double(env.m), 1), mix.name, net_name,
                           fmt_mqps(res.throughput_qps), fmt_pct(res.failed_fraction())});
          }
          self.barrier();
        }
      });
    }
  }
  std::cout << table.to_string();
  std::cout << "\nExpected shape (paper): throughput grows with ranks under weak\n"
               "scaling; XC50 > XC40 (more network bandwidth per core); RM > RI.\n";
  return 0;
}
