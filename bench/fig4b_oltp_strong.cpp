// Figure 4b: OLTP throughput, strong scaling -- fixed dataset, growing rank
// count, Read Mostly / Read Intensive mixes, XC40 vs XC50.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("Figure 4b -- OLTP strong scaling (Read Mostly / Read Intensive)",
               "paper Fig. 4b");
  constexpr int kScale = 13;  // fixed graph (paper: Kronecker scale 26)
  const std::vector<int> ranks{2, 4, 8};

  stats::Table table({"ranks", "mix", "net", "Mqueries/s", "failed"});
  for (const char* net_name : {"XC40", "XC50"}) {
    const auto net = std::string(net_name) == "XC40" ? rma::NetParams::xc40()
                                                     : rma::NetParams::xc50();
    for (int P : ranks) {
      rma::Runtime rt(P, net);
      rt.run([&](rma::Rank& self) {
        SetupOpts o;
        o.scale = kScale;
        auto env = setup_db(self, o);
        for (const auto& mix :
             {work::OpMix::read_mostly(), work::OpMix::read_intensive()}) {
          work::OltpConfig cfg;
          cfg.queries_per_rank = 1500;
          cfg.existing_ids = env.n;
          cfg.label_for_new = env.label_ids[0];
          cfg.ptype_for_update = env.ptype_ids[0];
          auto res = work::run_oltp(env.db, self, mix, cfg);
          if (self.id() == 0)
            table.add_row({std::to_string(P), mix.name, net_name,
                           fmt_mqps(res.throughput_qps), fmt_pct(res.failed_fraction())});
          self.barrier();
        }
      });
    }
  }
  std::cout << table.to_string();
  std::cout << "\nExpected shape (paper): near-linear throughput growth with rank\n"
               "count on the fixed dataset; XC50 above XC40.\n";
  return 0;
}
