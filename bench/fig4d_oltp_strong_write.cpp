// Figure 4d: OLTP strong scaling for LinkBench / Write Intensive, GDA
// (XC40/XC50) plus the JanusGraph-model baseline, with failed-transaction
// percentages (which grow with rank count on the fixed dataset, as in the
// paper -- more ranks contending for the same vertices).
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header(
      "Figure 4d -- OLTP strong scaling (LinkBench / Write Intensive)",
      "paper Fig. 4d");
  constexpr int kScale = 12;  // fixed dataset
  const std::vector<int> ranks{2, 4, 8};

  stats::Table table({"ranks", "system", "mix", "Mqueries/s", "failed"});
  for (int P : ranks) {
    for (const char* net_name : {"XC40", "XC50"}) {
      const auto net = std::string(net_name) == "XC40" ? rma::NetParams::xc40()
                                                       : rma::NetParams::xc50();
      rma::Runtime rt(P, net);
      rt.run([&](rma::Rank& self) {
        SetupOpts o;
        o.scale = kScale;
        auto env = setup_db(self, o);
        for (const auto& mix :
             {work::OpMix::linkbench(), work::OpMix::write_intensive()}) {
          work::OltpConfig cfg;
          cfg.queries_per_rank = 1200;
          cfg.existing_ids = env.n;
          cfg.label_for_new = env.label_ids[0];
          cfg.ptype_for_update = env.ptype_ids[0];
          auto res = work::run_oltp(env.db, self, mix, cfg);
          if (self.id() == 0)
            table.add_row({std::to_string(P), std::string("GDA/") + net_name,
                           mix.name, fmt_mqps(res.throughput_qps),
                           fmt_pct(res.failed_fraction())});
          self.barrier();
        }
      });
    }
    {
      rma::Runtime rt(P, rma::NetParams::xc40());
      baseline::RpcGraphStore janus(P, baseline::RpcParams::janusgraph());
      rt.run([&](rma::Rank& self) {
        gen::LpgConfig g;
        g.scale = kScale;
        g.edge_factor = 16;
        gen::KroneckerGenerator kg(g, {1}, {});
        const auto slice = kg.generate_local(self);
        janus.bulk_load(self, slice.vertices, slice.edges);
        work::OltpConfig cfg;
        cfg.queries_per_rank = 400;
        cfg.existing_ids = g.num_vertices();
        cfg.label_for_new = 1;
        cfg.ptype_for_update = 16;
        auto res = baseline::run_oltp_rpc(janus, self, work::OpMix::linkbench(), cfg);
        if (self.id() == 0)
          table.add_row({std::to_string(P), "JanusGraph", "LinkBench",
                         fmt_mqps(res.throughput_qps), fmt_pct(res.failed_fraction())});
        self.barrier();
      });
    }
  }
  std::cout << table.to_string();
  std::cout << "\nExpected shape (paper): throughput grows with ranks; the failed\n"
               "fraction *increases* with rank count (fixed data, more\n"
               "contention); GDA >> JanusGraph.\n";
  return 0;
}
