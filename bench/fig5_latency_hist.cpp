// Figure 5: latency histograms of the individual LinkBench operations on
// GDA, the JanusGraph model, and the Neo4j model, for 1/2/4/8 ranks.
// The paper's qualitative facts to reproduce: GDA ops mostly ~1 us (one
// server) to 10-100 us (more servers); JanusGraph never under ~200 us;
// Neo4j at millisecond granularity with heavy outliers; deletes slowest.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("Figure 5 -- LinkBench per-operation latency histograms",
               "paper Fig. 5");
  const std::vector<int> servers{1, 2, 4, 8};

  stats::Table table({"system", "ranks", "operation", "p50 us", "p95 us", "p99 us",
                      "count"});
  // res.latency entries are stats::LatencyHist -- the same mergeable recorder
  // the multi-tenant scheduler keeps per tenant, so this table and the server
  // bench share one binning policy.
  auto add_rows = [&](const char* system, int P, const work::OltpResult& res) {
    for (int op = 0; op < work::kNumOltpOps; ++op) {
      const stats::LatencyHist& h = res.latency[static_cast<std::size_t>(op)];
      if (h.total() == 0) continue;
      table.add_row({system, std::to_string(P),
                     work::oltp_op_name(static_cast<work::OltpOp>(op)),
                     stats::Table::fmt(h.p50_ns() / 1e3, 1),
                     stats::Table::fmt(h.percentile_ns(95) / 1e3, 1),
                     stats::Table::fmt(h.p99_ns() / 1e3, 1),
                     std::to_string(h.total())});
    }
  };

  for (int P : servers) {
    // GDA (XC50).
    {
      rma::Runtime rt(P, rma::NetParams::xc50());
      rt.run([&](rma::Rank& self) {
        SetupOpts o;
        o.scale = 10;
        auto env = setup_db(self, o);
        work::OltpConfig cfg;
        cfg.queries_per_rank = 3000;
        cfg.existing_ids = env.n;
        cfg.label_for_new = env.label_ids[0];
        cfg.ptype_for_update = env.ptype_ids[0];
        auto res = work::run_oltp(env.db, self, work::OpMix::linkbench(), cfg);
        if (self.id() == 0) add_rows("GDA", P, res);
        self.barrier();
      });
    }
    // Baseline models.
    for (const auto& params :
         {baseline::RpcParams::janusgraph(), baseline::RpcParams::neo4j()}) {
      rma::Runtime rt(P, rma::NetParams::xc50());
      baseline::RpcGraphStore store(P, params);
      rt.run([&](rma::Rank& self) {
        gen::LpgConfig g;
        g.scale = 10;
        g.edge_factor = 16;
        gen::KroneckerGenerator kg(g, {1}, {});
        const auto slice = kg.generate_local(self);
        store.bulk_load(self, slice.vertices, slice.edges);
        work::OltpConfig cfg;
        cfg.queries_per_rank = 1000;
        cfg.existing_ids = g.num_vertices();
        cfg.label_for_new = 1;
        cfg.ptype_for_update = 16;
        auto res = baseline::run_oltp_rpc(store, self, work::OpMix::linkbench(), cfg);
        if (self.id() == 0) add_rows(params.name.c_str(), P, res);
        self.barrier();
      });
    }
  }
  std::cout << table.to_string();
  std::cout << "\nExpected shape (paper): GDA ~1 us (1 rank) to 10-100 us (8 ranks);\n"
               "JanusGraph floor ~200-500 us; Neo4j ~ms with long tails; vertex\n"
               "deletion is the slowest operation on every system.\n";
  return 0;
}
