// Figure 6a: OLAP weak scaling -- PageRank (i=10, df=0.85), CDLP (i=5),
// WCC (i=5), on XC50, with the dataset growing with the rank count.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("Figure 6a -- PR / CDLP / WCC weak scaling", "paper Fig. 6a");
  constexpr int kBaseScale = 10;
  const std::vector<int> ranks{1, 2, 4, 8};

  stats::Table table({"ranks", "#vertices", "#edges", "algorithm", "runtime s",
                      "remote ops", "cache hit"});
  for (int P : ranks) {
    rma::Runtime rt(P, rma::NetParams::xc50());
    rt.run([&](rma::Rank& self) {
      SetupOpts o;
      o.scale = kBaseScale + static_cast<int>(std::log2(P));
      auto env = setup_db(self, o);
      auto add = [&](const char* name, double ns, std::uint64_t ops) {
        auto g = global_counters(self);  // collective: all ranks call
        if (self.id() == 0)
          table.add_row({std::to_string(P), stats::Table::fmt_si(double(env.n), 1),
                         stats::Table::fmt_si(double(env.m), 1), name, fmt_s(ns),
                         stats::Table::fmt_si(double(ops), 2),
                         fmt_pct(stats::cache_hit_rate(g))});
      };
      auto pr = work::pagerank(env.db, self, env.n, 10, 0.85);
      add("PageRank(i=10,df=0.85)", pr.sim_time_ns, pr.remote_ops);
      auto cd = work::cdlp(env.db, self, env.n, 5);
      add("CDLP(i=5)", cd.sim_time_ns, cd.remote_ops);
      auto wc = work::wcc(env.db, self, env.n, 5);
      add("WCC(i=5)", wc.sim_time_ns, wc.remote_ops);
      self.barrier();
    });
  }
  std::cout << table.to_string();
  std::cout << "\nExpected shape (paper): runtimes rise with scale even in weak\n"
               "scaling (these kernels exchange O(n) state per iteration), with\n"
               "WCC/CDLP/PR showing the sharper slope of Fig. 6a.\n";
  return 0;
}
