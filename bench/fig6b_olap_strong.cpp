// Figure 6b: OLAP/OLSP strong scaling -- PR, CDLP, WCC, LCC and the BI2
// business-intelligence query on a fixed dataset, plus the Neo4j-model BI2
// baseline (single-server: flat line, orders of magnitude slower).
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("Figure 6b -- PR / CDLP / WCC / LCC / BI2 strong scaling",
               "paper Fig. 6b");
  constexpr int kScale = 11;
  const std::vector<int> ranks{2, 4, 8};

  stats::Table table({"ranks", "workload", "system", "runtime ms"});
  for (int P : ranks) {
    rma::Runtime rt(P, rma::NetParams::xc50());
    rt.run([&](rma::Rank& self) {
      SetupOpts o;
      o.scale = kScale;
      o.edge_factor = 8;
      auto env = setup_db(self, o);
      auto add = [&](const char* name, const char* sys, double ns) {
        if (self.id() == 0)
          table.add_row({std::to_string(P), name, sys, fmt_ms(ns)});
      };
      auto pr = work::pagerank(env.db, self, env.n, 10, 0.85);
      add("PageRank(i=10)", "GDA/XC50", pr.sim_time_ns);
      auto cd = work::cdlp(env.db, self, env.n, 5);
      add("CDLP(i=5)", "GDA/XC50", cd.sim_time_ns);
      auto wc = work::wcc(env.db, self, env.n, 5);
      add("WCC(i=5)", "GDA/XC50", wc.sim_time_ns);
      auto lc = work::lcc(env.db, self, env.n);
      add("LCC", "GDA/XC50", lc.sim_time_ns);

      work::Bi2Params bp;
      bp.person_label = env.label_ids[0];
      bp.age_ptype = env.ptype_ids[0];
      bp.age_threshold = 500;
      bp.own_edge_label = env.label_ids[1];
      bp.car_label = env.label_ids[2];
      bp.color_ptype = env.ptype_ids[1];
      bp.color_value = 7;
      auto bi = work::bi2_count(env.db, self, *env.label_index, bp);
      add("BI2", "GDA/XC50", bi.sim_time_ns);
      auto agg =
          work::bi_group_count(env.db, self, *env.label_index, env.ptype_ids[0]);
      add("BI group-count", "GDA/XC50", agg.sim_time_ns);

      if (self.id() == 0) {
        baseline::RpcGraphStore neo(P, baseline::RpcParams::neo4j());
        add("BI2", "Neo4j(model)", neo.bi2_time_ns(env.n, env.m, P));
      }
      self.barrier();
    });
  }
  std::cout << table.to_string();
  std::cout << "\nExpected shape (paper): GDA runtimes drop with rank count; LCC is\n"
               "the most expensive kernel (O(n + m^1.5) access pattern); Neo4j's\n"
               "BI2 does not scale out and sits orders of magnitude above GDA.\n";
  return 0;
}
