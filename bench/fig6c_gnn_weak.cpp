// Figure 6c: GNN (graph convolution forward pass) weak scaling for feature
// dimensions k in {4, 16, 64} (the paper sweeps 4..500; larger k only grows
// the per-vertex payload, which the cost model prices by bytes).
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("Figure 6c -- GNN weak scaling (k = feature dimension)",
               "paper Fig. 6c");
  constexpr int kBaseScale = 8;
  const std::vector<int> ranks{1, 2, 4, 8};

  stats::Table table({"ranks", "#vertices", "k", "runtime s", "remote ops"});
  for (int P : ranks) {
    rma::Runtime rt(P, rma::NetParams::xc50());
    rt.run([&](rma::Rank& self) {
      SetupOpts o;
      o.scale = kBaseScale + static_cast<int>(std::log2(P));
      o.edge_factor = 8;
      o.block_size = 2048;  // feature vectors are large properties
      o.props_per_vertex = 0;
      auto env = setup_db(self, o);
      PropertyType feat{.name = "feature", .dtype = Datatype::kBytes};
      const std::uint32_t pt = *env.db->create_ptype(self, feat);
      for (int k : {4, 16, 64}) {
        work::GnnConfig gc{2, k, 7};
        (void)work::gnn_init_features(env.db, self, env.n, pt, gc);
        auto res = work::gnn_forward(env.db, self, env.n, pt, gc);
        if (self.id() == 0)
          table.add_row({std::to_string(P), stats::Table::fmt_si(double(env.n), 1),
                         std::to_string(k), fmt_s(res.sim_time_ns),
                         stats::Table::fmt_si(double(res.remote_ops), 2)});
        self.barrier();
      }
    });
  }
  std::cout << table.to_string();
  std::cout << "\nExpected shape (paper): mild runtime growth under weak scaling;\n"
               "larger k shifts curves up (bigger per-vertex feature payloads).\n";
  return 0;
}
