// Figure 6d: GNN strong scaling -- fixed dataset, growing rank count,
// feature dimensions k in {4, 16, 64}.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("Figure 6d -- GNN strong scaling", "paper Fig. 6d");
  constexpr int kScale = 10;
  const std::vector<int> ranks{2, 4, 8};

  stats::Table table({"ranks", "k", "runtime s"});
  for (int P : ranks) {
    rma::Runtime rt(P, rma::NetParams::xc50());
    rt.run([&](rma::Rank& self) {
      SetupOpts o;
      o.scale = kScale;
      o.edge_factor = 8;
      o.block_size = 2048;
      o.props_per_vertex = 0;
      auto env = setup_db(self, o);
      PropertyType feat{.name = "feature", .dtype = Datatype::kBytes};
      const std::uint32_t pt = *env.db->create_ptype(self, feat);
      for (int k : {4, 16, 64}) {
        work::GnnConfig gc{2, k, 7};
        (void)work::gnn_init_features(env.db, self, env.n, pt, gc);
        auto res = work::gnn_forward(env.db, self, env.n, pt, gc);
        if (self.id() == 0)
          table.add_row({std::to_string(P), std::to_string(k), fmt_s(res.sim_time_ns)});
        self.barrier();
      }
    });
  }
  std::cout << table.to_string();
  std::cout << "\nExpected shape (paper): runtime drops as ranks grow, for every k;\n"
               "larger k sits higher.\n";
  return 0;
}
