// Figure 6e: BFS and k-hop weak scaling -- GDA vs the Graph500 reference
// kernel vs the Neo4j model. The paper's headline OLAP result: GDA BFS stays
// within 2-4x of Graph500 (a static, transaction-free, label-free kernel)
// while Neo4j sits orders of magnitude above both.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("Figure 6e -- BFS & k-hop weak scaling vs Graph500 / Neo4j",
               "paper Fig. 6e");
  constexpr int kBaseScale = 10;
  const std::vector<int> ranks{1, 2, 4, 8};

  stats::Table table({"ranks", "#vertices", "workload", "system", "runtime s"});
  for (int P : ranks) {
    rma::Runtime rt(P, rma::NetParams::xc50());
    rt.run([&](rma::Rank& self) {
      SetupOpts o;
      o.scale = kBaseScale + static_cast<int>(std::log2(P));
      auto env = setup_db(self, o);
      auto add = [&](const char* wl, const char* sys, double ns) {
        if (self.id() == 0)
          table.add_row({std::to_string(P), stats::Table::fmt_si(double(env.n), 1), wl,
                         sys, fmt_s(ns)});
      };
      for (int k : {2, 3, 4}) {
        auto kh = work::k_hop(env.db, self, env.n, 0, k);
        add((std::to_string(k) + "-hop").c_str(), "GDA/XC50", kh.sim_time_ns);
      }
      auto bfs = work::bfs(env.db, self, env.n, 0);
      add("BFS", "GDA/XC50", bfs.sim_time_ns);
      {
        auto g = global_counters(self);  // collective: all ranks call
        if (self.id() == 0)
          std::cout << "P=" << P << " GDA " << stats::counters_line(g) << "\n";
      }

      gen::LpgConfig g;
      // Same smoke clamp setup_db applied: the reference slice must describe
      // the same vertex range as env.n or Graph500's CSR indexes past it.
      g.scale = bench_scale(o.scale);
      g.edge_factor = o.edge_factor;
      g.seed = o.seed;
      gen::KroneckerGenerator kg(g, {}, {});
      const auto slice = kg.generate_local(self);
      work::Graph500 g500(self, env.n, slice.edges);
      auto ref = g500.bfs(self, 0);
      add("BFS", "Graph500", ref.sim_time_ns);

      if (self.id() == 0) {
        baseline::RpcGraphStore neo(P, baseline::RpcParams::neo4j());
        add("BFS", "Neo4j(model)", neo.bfs_time_ns(env.n, env.m, P));
        table.add_row({std::to_string(P), "", "BFS GDA/Graph500 ratio", "",
                       stats::Table::fmt(bfs.sim_time_ns / ref.sim_time_ns, 2)});
      }
      self.barrier();
    });
  }
  std::cout << table.to_string();
  std::cout << "\nExpected shape (paper): GDA within ~2-4x of Graph500 at every\n"
               "scale; k-hop grows with k; Neo4j orders of magnitude slower.\n";
  return 0;
}
