// Figure 6f: BFS and k-hop strong scaling -- fixed dataset, GDA vs Graph500.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("Figure 6f -- BFS & k-hop strong scaling", "paper Fig. 6f");
  constexpr int kScale = 12;
  const std::vector<int> ranks{2, 4, 8};

  stats::Table table({"ranks", "workload", "system", "runtime ms"});
  for (int P : ranks) {
    rma::Runtime rt(P, rma::NetParams::xc50());
    rt.run([&](rma::Rank& self) {
      SetupOpts o;
      o.scale = kScale;
      auto env = setup_db(self, o);
      auto add = [&](const std::string& wl, const char* sys, double ns) {
        if (self.id() == 0)
          table.add_row({std::to_string(P), wl, sys, fmt_ms(ns)});
      };
      for (int k : {2, 3}) {
        auto kh = work::k_hop(env.db, self, env.n, 0, k);
        add(std::to_string(k) + "-hop", "GDA/XC50", kh.sim_time_ns);
      }
      auto bfs = work::bfs(env.db, self, env.n, 0);
      add("BFS", "GDA/XC50", bfs.sim_time_ns);

      gen::LpgConfig g;
      // Same smoke clamp setup_db applied (see fig6e): slice ids must stay
      // inside env.n.
      g.scale = bench_scale(o.scale);
      g.edge_factor = o.edge_factor;
      g.seed = o.seed;
      gen::KroneckerGenerator kg(g, {}, {});
      const auto slice = kg.generate_local(self);
      work::Graph500 g500(self, env.n, slice.edges);
      auto ref = g500.bfs(self, 0);
      add("BFS", "Graph500", ref.sim_time_ns);
      self.barrier();
    });
  }
  std::cout << table.to_string();
  std::cout << "\nExpected shape (paper): runtimes drop with rank count; GDA tracks\n"
               "Graph500 within a small factor.\n";
  return 0;
}
