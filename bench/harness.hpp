// Shared helpers for the per-figure benchmark binaries (DESIGN.md section 4).
//
// Every bench constructs its own Runtime per configuration point, loads a
// Kronecker LPG graph through the collective bulk loader, runs the workload,
// and prints a paper-style table: the columns mirror the series of the
// corresponding figure; absolute values come from the LogGP cost model
// (see DESIGN.md section 2) so only *shapes* are comparable to the paper.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "baseline/rpc_store.hpp"
#include "gdi/gdi.hpp"
#include "generator/kronecker.hpp"
#include "stats/stats.hpp"
#include "workloads/bi.hpp"
#include "workloads/gnn.hpp"
#include "workloads/graph500.hpp"
#include "workloads/olap.hpp"
#include "workloads/oltp.hpp"
#include "workloads/server_oltp.hpp"

namespace gdi::bench {

struct LoadedDb {
  std::shared_ptr<Database> db;
  std::shared_ptr<Index> label_index;  ///< index on label_ids[0] (if any)
  std::vector<std::uint32_t> label_ids;
  std::vector<std::uint32_t> ptype_ids;
  BulkLoadStats load_stats;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
};

struct SetupOpts {
  int scale = 10;
  int edge_factor = 16;
  std::uint32_t num_labels = 20;   ///< paper default: 20 labels
  std::uint32_t num_ptypes = 13;   ///< paper default: 13 property types
  std::uint32_t labels_per_vertex = 2;
  std::uint32_t props_per_vertex = 4;
  double heavy_edge_fraction = 0.0;
  std::uint32_t value_bytes = 8;
  std::size_t block_size = 512;
  std::uint64_t seed = 42;
  bool with_index = true;
  bool batched_reads = true;  ///< nonblocking batch engine on read hot paths
  bool block_cache = true;    ///< per-transaction read-through block cache
  bool shared_cache = true;   ///< shared version-validated holder cache (PR 4)
  /// PR 5 write-path knobs, default-off so the PR 4 benches keep their exact
  /// op-count and baseline semantics; bench_pr5_group_commit switches them on.
  bool write_through = false;   ///< shared-cache write-through at commit
  bool commit_pipeline = false; ///< cross-transaction group commit
  /// PR 6 durability knobs, default-off (no WAL object, byte-identical
  /// traffic); bench_pr6_wal switches them on to price the epoch log.
  bool wal = false;
  std::string wal_dir;
  /// PR 7 multi-tenant front-end knobs, default-off (no scheduler object);
  /// bench_pr7_server switches them on. When `server` is set, the admission
  /// caps are sized generously so open-loop benches measure scheduling, not
  /// transport backpressure (the admission bench lives in tests/).
  bool server = false;
  std::size_t server_read_coalesce = 32;  ///< 1 = eager (per-request txns)
  /// PR 7 shared-cache admission policy (kFifo = historical behaviour) and
  /// an optional byte-budget override (0 = DatabaseConfig default) for the
  /// HTAP scan-resistance comparison.
  cache::ScachePolicy scache_policy = cache::ScachePolicy::kFifo;
  std::size_t shared_cache_bytes = 0;
};

/// BENCH_SMOKE=1 shrinks every bench to a seconds-long CI smoke run: tiny
/// graphs, few queries -- enough to catch scheduler/correctness regressions,
/// not to measure. Wired into setup_db (scale clamp) and the per-bench query
/// counts via bench_queries().
[[nodiscard]] inline bool smoke_mode() {
  static const bool s = std::getenv("BENCH_SMOKE") != nullptr;
  return s;
}
[[nodiscard]] inline int bench_scale(int scale) {
  return smoke_mode() ? std::min(scale, 7) : scale;
}
[[nodiscard]] inline std::uint64_t bench_queries(std::uint64_t q) {
  return smoke_mode() ? std::min<std::uint64_t>(q, 120) : q;
}

/// Collective: create a database, register metadata, generate and bulk load.
inline LoadedDb setup_db(rma::Rank& self, const SetupOpts& opts) {
  SetupOpts o = opts;
  o.scale = bench_scale(o.scale);
  LoadedDb out;
  gen::LpgConfig g;
  g.scale = o.scale;
  g.edge_factor = o.edge_factor;
  g.seed = o.seed;
  g.labels_per_vertex = o.labels_per_vertex;
  g.props_per_vertex = o.props_per_vertex;
  g.heavy_edge_fraction = o.heavy_edge_fraction;
  g.value_bytes = o.value_bytes;
  out.n = g.num_vertices();
  out.m = g.num_edges();

  DatabaseConfig c;
  c.batched_reads = o.batched_reads;
  c.block_cache = o.block_cache;
  c.shared_cache = o.shared_cache;
  c.scache_write_through = o.write_through;
  c.commit_pipeline = o.commit_pipeline;
  c.wal = o.wal;
  c.wal_dir = o.wal_dir;
  c.server = o.server;
  c.server_read_coalesce = o.server_read_coalesce;
  c.server_inflight_per_tenant = 1u << 20;  // hold whole open-loop streams
  c.server_admission_bytes = 1u << 30;
  c.scache_policy = o.scache_policy;
  if (o.shared_cache_bytes != 0) c.shared_cache_bytes = o.shared_cache_bytes;
  c.block.block_size = o.block_size;
  const auto per_rank = out.n / static_cast<std::uint64_t>(self.nranks()) + 64;
  // Generous pool: holders + growth + OLTP inserts.
  c.block.blocks_per_rank =
      per_rank * (2 + (o.edge_factor * 2 * 24 + o.props_per_vertex * (o.value_bytes + 16)) /
                          o.block_size) +
      8192;
  c.dht = gen::recommended_dht_config(g, self.nranks());
  c.index_capacity_per_rank = per_rank * 2 + 4096;
  out.db = Database::create(self, c);

  for (std::uint32_t i = 0; i < o.num_labels; ++i)
    out.label_ids.push_back(*out.db->create_label(self, "Label" + std::to_string(i)));
  for (std::uint32_t i = 0; i < o.num_ptypes; ++i) {
    PropertyType p{.name = "ptype" + std::to_string(i),
                   .dtype = Datatype::kInt64,
                   .mult = Multiplicity::kMultiple,
                   .stype = SizeType::kLimited,
                   .max_size = std::max<std::uint32_t>(o.value_bytes, 8)};
    out.ptype_ids.push_back(*out.db->create_ptype(self, p));
  }
  if (o.with_index && !out.label_ids.empty())
    out.label_index = out.db->create_index(self, IndexDef{{out.label_ids[0]}, {}});

  gen::KroneckerGenerator kg(g, out.label_ids, out.ptype_ids);
  const auto slice = kg.generate_local(self);
  BulkLoader loader(out.db, self);
  auto stats = loader.load(slice.vertices, slice.edges);
  if (stats.ok()) out.load_stats = *stats;
  self.barrier();
  return out;
}

/// Sweep helper: run `body(rank)` on runtimes of each size in `ranks`.
inline void for_each_scale(const std::vector<int>& ranks, const rma::NetParams& net,
                           const std::function<void(rma::Rank&)>& body) {
  for (int P : ranks) {
    rma::Runtime rt(P, net);
    rt.run(body);
  }
}

/// Collective: sum every rank's op counters (all ranks call, all receive).
inline rma::OpCounters global_counters(rma::Rank& self) {
  auto all = self.allgather(self.counters());
  rma::OpCounters sum;
  for (const auto& c : all) sum += c;
  return sum;
}

inline std::string fmt_mqps(double qps) {
  return stats::Table::fmt(qps / 1e6, 3);
}
inline std::string fmt_s(double ns) { return stats::Table::fmt(ns / 1e9, 3); }
inline std::string fmt_ms(double ns) { return stats::Table::fmt(ns / 1e6, 3); }
inline std::string fmt_pct(double f) { return stats::Table::fmt(f * 100.0, 2) + "%"; }

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << "; values from the LogGP cost\n"
            << " model -- compare shapes, not absolutes; see EXPERIMENTS.md)\n"
            << "==============================================================\n";
}

}  // namespace gdi::bench
