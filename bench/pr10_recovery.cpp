// PR 10 perf snapshot: crash-restart survivability of the socket front end.
//
// One measurement on one rank with real loopback TCP clients, the WAL on,
// and a server-side kill switch armed: flaky-free clients stream increments,
// the rank dies at the pre-ack point (commit durable, reply unsent), the
// database recovers into the SAME port, and the clients ride the restart
// through their ordinary reconnect-replay path.
//
//  * committed fraction (gated, pinned 1.0): every increment acknowledged
//    exactly once across the death -- nothing lost in the
//    committed-but-unacked window, nothing double-executed after it.
//
//  * replay hit rate (gated, pinned 1.0): of the completed writes the
//    clients replay at the recovered server, the fraction answered from the
//    WAL-rebuilt reply cache. A miss would mean the recovered watermark or
//    cache lost an acknowledgement the log carries.
//
//  * recovery wall-clock and wire throughput are reported informationally
//    (kernel timing, machine-dependent, not gated).
//
// The gated metrics are fractions rather than rates for the same reason as
// BENCH_pr9: loopback timing varies across CI machines, but "a crash is
// indistinguishable from a slow network" must not. Emits a paper-style table
// plus a JSON blob (committed as BENCH_pr10.json).
#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "harness.hpp"
#include "net/client.hpp"
#include "net/listener.hpp"
#include "rma/fault.hpp"

namespace {

using namespace gdi;
using namespace gdi::bench;

constexpr std::uint64_t kToken = 0xbadc0ffee0ddf00dULL;

DatabaseConfig recovery_cfg(const std::string& dir) {
  DatabaseConfig c;
  c.block.block_size = 512;
  c.block.blocks_per_rank = 16384;
  c.dht.entries_per_rank = 8192;
  c.dht.buckets_per_rank = 1024;
  c.server = true;
  c.net_listen = true;
  c.net_auth_token = kToken;
  c.wal = true;
  c.wal_dir = dir;
  c.wal_checkpoint_epochs = 64;
  // Pipeline off: each commit seals eagerly, so every harvested reply is
  // already durable -- the pre-ack kill point is exactly the
  // committed-durable-but-unacked window.
  c.commit_pipeline = false;
  return c;
}

std::uint32_t ensure_ptype(const std::shared_ptr<Database>& db,
                           rma::Rank& self) {
  auto existing = db->ptype_from_name(self, "val");
  if (existing.ok()) return *existing;
  PropertyType pd{.name = "val", .dtype = Datatype::kInt64};
  return *db->create_ptype(self, pd);
}

std::vector<server::Request> increment_stream(std::uint64_t base,
                                              std::uint64_t stripe,
                                              std::uint64_t n,
                                              std::uint32_t pt) {
  std::vector<server::Request> reqs;
  reqs.reserve(n);
  for (std::uint64_t k = 0; k < n; ++k) {
    server::Request r;
    r.op = server::OpKind::kIncrement;
    r.a = base + k % stripe;
    r.ptype = pt;
    r.client_tag = k + 1;
    reqs.push_back(r);
  }
  return reqs;
}

}  // namespace

int main() {
  print_header(
      "PR 10 -- crash-restart survivability: pre-ack kill, recover, replay",
      "durable session replay state over the PR 9 socket front end");
  const int tenants = 3;
  const std::uint64_t per_tenant = bench_queries(2400);
  // Wide stripes: few increments per vertex, so no holder regrows a block
  // mid-run and the recovered image stays history-independent.
  const std::uint64_t stripe = std::max<std::uint64_t>(per_tenant / 3, 8);
  const std::uint64_t base_seed = rma::fault_seed_env();

  const std::string dir =
      (std::filesystem::temp_directory_path() / "gdi_bench_pr10").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::atomic<bool> done{false};
  std::atomic<int> remaining{tenants};
  std::vector<std::thread> clients;
  std::vector<net::StreamResult> res(tenants);
  std::uint16_t port = 0;
  std::vector<std::unique_ptr<net::ServerFaultInjector>> sinjs;
  std::vector<std::unique_ptr<rma::FaultInjector>> rinjs;

  int kills = 0, passes = 0;
  double recovery_ms = 0;
  std::uint64_t replay_hits = 0, replay_misses = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int pass = 0; pass < 16; ++pass) {
    passes = pass + 1;
    net::ServerFaultConfig sfc;
    if (pass == 0) {
      sfc.kill_at = net::ServerKillPoint::kPreAck;
      sfc.kill_after = std::max<std::uint64_t>(per_tenant / 2, 8);
    }
    sinjs.push_back(std::make_unique<net::ServerFaultInjector>(sfc));
    rma::FaultConfig rfc;
    rfc.seed = rma::fault_stream(base_seed, rma::FaultLayer::kRma,
                                 static_cast<std::uint64_t>(pass));
    rinjs.push_back(std::make_unique<rma::FaultInjector>(rfc));

    bool pass_killed = false;
    try {
      rma::Runtime rt(1);
      rt.run([&](rma::Rank& self) {
        auto cfg = recovery_cfg(dir);
        cfg.net_port = port;  // 0 on pass 0 (ephemeral), then pinned
        const auto r0 = std::chrono::steady_clock::now();
        auto db = pass == 0 ? Database::create(self, cfg)
                            : Database::recover(self, cfg);
        if (db == nullptr) return;
        // Rank-local schema: a restarted server re-declares it before the
        // socket reopens (the same id comes back).
        const std::uint32_t pt = ensure_ptype(db, self);
        if (pass == 0)
          for (std::uint64_t v = 0; v < tenants * stripe; ++v) {
            Transaction txn(db, self, TxnMode::kWrite);
            auto vh = txn.create_vertex(v);
            if (vh.ok())
              (void)txn.update_property(*vh, pt, PropValue{std::int64_t{0}});
            (void)txn.commit();
          }
        self.set_fault_injector(rinjs.back().get());
        net::Listener* L = db->listener(self);
        if (L->start() != Status::kOk) return;
        L->set_fault_injector(sinjs.back().get());
        if (pass > 0)
          recovery_ms +=
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - r0)
                  .count();
        if (pass == 0) {
          port = L->port();
          for (int t = 0; t < tenants; ++t)
            clients.emplace_back([&, pt, t] {
              net::ClientConfig cc;
              cc.port = port;
              cc.auth_token = kToken;
              cc.tenant_id = 1 + static_cast<std::uint64_t>(t);
              cc.io_timeout_ms = 300;
              cc.max_reconnects = 1u << 20;  // ride out the restart gap
              cc.fault.seed = rma::fault_stream(
                  base_seed, rma::FaultLayer::kNetClient,
                  static_cast<std::uint64_t>(t));
              cc.fault.corrupt_p = 0.01;
              cc.fault.truncate_p = 0.01;
              cc.fault.disconnect_p = 0.02;
              cc.fault.reorder_p = 0.03;
              res[static_cast<std::size_t>(t)] =
                  net::NetClient(cc).run_stream(increment_stream(
                      static_cast<std::uint64_t>(t) * stripe, stripe,
                      per_tenant, pt));
              if (remaining.fetch_sub(1) == 1)
                done.store(true, std::memory_order_release);
            });
        }
        while (!done.load(std::memory_order_acquire))
          (void)L->poll_once(db, self, 5);
        if (pass > 0) {
          // Deterministic replay probe against the RECOVERED cache: a
          // "stale" reconnect replays tenant 1's final committed write. The
          // restart must answer it from the WAL-rebuilt reply cache (one
          // guaranteed hit), never re-execute it.
          std::atomic<bool> probe_done{false};
          std::thread probe([&] {
            net::ClientConfig cc;
            cc.port = port;
            cc.auth_token = kToken;
            cc.tenant_id = 1;
            net::NetClient p(cc);
            if (p.connect_handshake() == Status::kOk) {
              server::Request r;
              r.op = server::OpKind::kIncrement;
              r.a = (per_tenant - 1) % stripe;
              r.ptype = pt;
              r.client_tag = per_tenant;
              (void)p.send_request(r);
              std::vector<server::Reply> got;
              net::ByeReason why = net::ByeReason::kDone;
              (void)p.poll_frames(&got, 2000, &why);
              p.finish();
            }
            probe_done.store(true, std::memory_order_release);
          });
          while (!probe_done.load(std::memory_order_acquire))
            (void)L->poll_once(db, self, 5);
          probe.join();
        }
        L->request_stop();
        L->serve(db, self);
        replay_hits += self.counters().net_replay_hits;
        replay_misses += self.counters().net_replay_cache_misses;
      });
    } catch (const rma::FaultKill&) {
      pass_killed = true;
      ++kills;
    }
    if (!pass_killed) break;
  }
  for (auto& c : clients) c.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t completed = 0, failed = 0;
  std::uint64_t reconnects = 0;
  bool finished = true;
  for (const auto& r : res) {
    completed += r.ok;
    failed += r.failed;
    reconnects += r.reconnects;
    finished = finished && r.finished;
  }
  const double committed_frac =
      failed == 0 && finished
          ? static_cast<double>(completed) /
                static_cast<double>(tenants * per_tenant)
          : 0.0;
  // Every replayed completed write must be a cache hit; a miss means the
  // recovered replay state lost an acknowledgement the WAL carries.
  const double replay_hit_rate =
      replay_hits > 0 ? static_cast<double>(replay_hits) /
                            static_cast<double>(replay_hits + replay_misses)
                      : 0.0;
  const double wire_kqps = completed / secs / 1e3;

  stats::Table t({"measurement", "value"});
  t.add_row({"committed fraction (across kill+restart)",
             stats::Table::fmt(committed_frac, 4)});
  t.add_row({"replay hit rate (recovered cache)",
             stats::Table::fmt(replay_hit_rate, 4)});
  t.add_row({"server deaths / passes",
             std::to_string(kills) + "/" + std::to_string(passes)});
  t.add_row({"replay hits / misses", std::to_string(replay_hits) + "/" +
                                         std::to_string(replay_misses)});
  t.add_row({"recover + rebind ms", stats::Table::fmt(recovery_ms, 1)});
  t.add_row({"client reconnects", std::to_string(reconnects)});
  t.add_row({"wire throughput kq/s (wall)", stats::Table::fmt(wire_kqps, 1)});
  std::cout << t.to_string();

  std::cout << "\nJSON:\n{\n"
            << "  \"bench\": \"pr10_recovery\",\n"
            << "  \"description\": \"pre-ack server kill + recover-integrated "
               "restart: exactly-once across the death\",\n"
            << "  \"ranks\": 1, \"tenants\": " << tenants
            << ", \"per_tenant\": " << per_tenant << ",\n"
            << "  \"committed_frac\": " << stats::Table::fmt(committed_frac, 4)
            << ", \"replay_hit_rate\": " << stats::Table::fmt(replay_hit_rate, 4)
            << ",\n  \"kills\": " << kills << ", \"passes\": " << passes
            << ", \"replay_hits\": " << replay_hits
            << ", \"replay_misses\": " << replay_misses
            << ",\n  \"recovery_ms\": " << stats::Table::fmt(recovery_ms, 1)
            << ", \"reconnects\": " << reconnects << "\n"
            << "}\n"
            << "\nExpected shape: both fractions are 1.0000 -- the server "
               "died at least\nonce with a committed-but-unacked write, the "
               "restart answered every\nreplayed write from the recovered "
               "cache, and no increment was lost or\ndouble-executed.\n";
  std::filesystem::remove_all(dir);
  return (committed_frac == 1.0 && replay_hit_rate == 1.0 && kills >= 1) ? 0
                                                                         : 1;
}
