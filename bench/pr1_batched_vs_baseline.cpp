// PR 1 perf record: baseline (blocking per-GET reads, no cache -- the seed's
// behaviour) vs the nonblocking batched RMA engine + per-transaction block
// cache, on the fig6a (PageRank/CDLP/WCC) and fig6e (BFS/k-hop) workloads.
//
// Emits JSON on stdout; the committed snapshot lives in BENCH_pr1.json so the
// perf trajectory of the repo starts with this PR. Run with:
//   ./bench_pr1_batched_vs_baseline > BENCH_pr1.json
#include "harness.hpp"

namespace {

struct Measurement {
  double sim_ns = 0;
  std::uint64_t remote_ops = 0;
  gdi::rma::OpCounters counters;
};

struct WorkloadRow {
  std::string name;
  Measurement baseline, batched;
};

}  // namespace

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  constexpr int kRanks = 4;
  constexpr int kScale = 11;
  std::vector<WorkloadRow> rows;
  auto row = [&](const std::string& name) -> WorkloadRow& {
    for (auto& r : rows)
      if (r.name == name) return r;
    rows.push_back(WorkloadRow{name, {}, {}});
    return rows.back();
  };

  for (const bool batched : {false, true}) {
    rma::Runtime rt(kRanks, rma::NetParams::xc40());
    rt.run([&](rma::Rank& self) {
      SetupOpts o;
      o.scale = kScale;
      o.batched_reads = batched;
      o.block_cache = batched;
      auto env = setup_db(self, o);
      auto record = [&](const std::string& name, double ns, std::uint64_t remote) {
        auto g = global_counters(self);  // collective
        if (self.id() == 0) {
          Measurement& m = batched ? row(name).batched : row(name).baseline;
          m.sim_ns = ns;
          m.remote_ops = remote;
          m.counters = g;
        }
      };
      // fig6a workload set.
      auto pr = work::pagerank(env.db, self, env.n, 10, 0.85);
      record("fig6a_olap_weak/pagerank", pr.sim_time_ns, pr.remote_ops);
      auto cd = work::cdlp(env.db, self, env.n, 5);
      record("fig6a_olap_weak/cdlp", cd.sim_time_ns, cd.remote_ops);
      auto wc = work::wcc(env.db, self, env.n, 5);
      record("fig6a_olap_weak/wcc", wc.sim_time_ns, wc.remote_ops);
      // fig6e workload set.
      for (int k : {2, 3, 4}) {
        auto kh = work::k_hop(env.db, self, env.n, 0, k);
        record("fig6e_bfs_khop_weak/" + std::to_string(k) + "-hop", kh.sim_time_ns,
               kh.remote_ops);
      }
      auto bfs = work::bfs(env.db, self, env.n, 0);
      record("fig6e_bfs_khop_weak/bfs", bfs.sim_time_ns, bfs.remote_ops);
      self.barrier();
    });
  }

  // Group totals (the acceptance-criterion figures).
  double base6a = 0, bat6a = 0, base6e = 0, bat6e = 0;
  for (const auto& r : rows) {
    if (r.name.starts_with("fig6a")) {
      base6a += r.baseline.sim_ns;
      bat6a += r.batched.sim_ns;
    } else {
      base6e += r.baseline.sim_ns;
      bat6e += r.batched.sim_ns;
    }
  }

  auto num = [](double v) { return stats::Table::fmt(v, 1); };
  std::cout << "{\n"
            << "  \"bench\": \"pr1_batched_vs_baseline\",\n"
            << "  \"description\": \"seed blocking reads vs nonblocking batched RMA "
               "engine + per-txn block cache\",\n"
            << "  \"net\": \"xc40\",\n"
            << "  \"ranks\": " << kRanks << ",\n"
            << "  \"scale\": " << kScale << ",\n"
            << "  \"groups\": {\n"
            << "    \"fig6a_olap_weak\": {\"baseline_ns\": " << num(base6a)
            << ", \"batched_ns\": " << num(bat6a)
            << ", \"speedup\": " << num(base6a / bat6a) << "},\n"
            << "    \"fig6e_bfs_khop_weak\": {\"baseline_ns\": " << num(base6e)
            << ", \"batched_ns\": " << num(bat6e)
            << ", \"speedup\": " << num(base6e / bat6e) << "}\n"
            << "  },\n"
            << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::cout << "    {\"name\": \"" << r.name << "\""
              << ", \"baseline_ns\": " << num(r.baseline.sim_ns)
              << ", \"batched_ns\": " << num(r.batched.sim_ns)
              << ", \"speedup\": " << num(r.baseline.sim_ns / r.batched.sim_ns)
              << ", \"baseline_remote_ops\": " << r.baseline.remote_ops
              << ", \"batched_remote_ops\": " << r.batched.remote_ops
              << ", \"batched_batches\": " << r.batched.counters.batches
              << ", \"batched_max_batch_depth\": " << r.batched.counters.max_batch_ops
              << ", \"batched_cache_hit_rate\": "
              << stats::Table::fmt(stats::cache_hit_rate(r.batched.counters), 4) << "}"
              << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";
  return 0;
}
