// PR 2 perf snapshot: the async-first transaction API on the OLTP read path.
//
// Same graph, mixes, and query streams as the Figure 4a harness; the only
// variable is OltpConfig::read_batch. read_batch=1 is PR 1's shape (one
// transaction and one serial network round-trip chain per point read);
// read_batch=32 is the async-first shape (consecutive independent point reads
// share one kRead transaction whose BatchScope::execute batches the DHT
// translation, overlaps the read-lock CAS rounds, and fetches all holder
// blocks in one nonblocking batch). Write transactions additionally ride the
// commit-time put_nb writeback in both configurations.
//
// Emits a paper-style table plus a JSON blob (committed as BENCH_pr2.json)
// recording the read-path win.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("PR 2 -- OLTP read path: serial transactions vs BatchScope",
               "paper Fig. 4a harness");
  const int P = 4;
  const int scale = bench_scale(11);
  const auto net = rma::NetParams::xc40();

  struct Row {
    std::string mix;
    double serial_qps = 0;
    double batched_qps = 0;
    double serial_fail = 0;
    double batched_fail = 0;
    std::uint64_t serial_flushes = 0;
    std::uint64_t batched_flushes = 0;
    std::uint64_t batched_batches = 0;
    std::uint64_t batched_max_depth = 0;
  };
  std::vector<Row> rows;

  for (const auto& mix : {work::OpMix::read_mostly(), work::OpMix::read_intensive(),
                          work::OpMix::linkbench()}) {
    Row row;
    row.mix = mix.name;
    for (const std::uint32_t read_batch : {1u, 32u}) {
      rma::Runtime rt(P, net);
      rt.run([&](rma::Rank& self) {
        SetupOpts o;
        o.scale = scale;
        auto env = setup_db(self, o);
        work::OltpConfig cfg;
        cfg.queries_per_rank = bench_queries(2000);
        cfg.existing_ids = env.n;
        cfg.label_for_new = env.label_ids[0];
        cfg.ptype_for_update = env.ptype_ids[0];
        cfg.read_batch = read_batch;
        self.reset_counters();
        auto res = work::run_oltp(env.db, self, mix, cfg);
        auto counters = global_counters(self);
        if (self.id() == 0) {
          if (read_batch == 1) {
            row.serial_qps = res.throughput_qps;
            row.serial_fail = res.failed_fraction();
            row.serial_flushes = counters.flushes;
          } else {
            row.batched_qps = res.throughput_qps;
            row.batched_fail = res.failed_fraction();
            row.batched_flushes = counters.flushes;
            row.batched_batches = counters.batches;
            row.batched_max_depth = counters.max_batch_ops;
          }
        }
      });
    }
    rows.push_back(row);
  }

  stats::Table table({"mix", "serial Mq/s", "batched Mq/s", "speedup", "serial fail",
                      "batched fail", "flushes s/b"});
  for (const auto& r : rows) {
    table.add_row({r.mix, fmt_mqps(r.serial_qps), fmt_mqps(r.batched_qps),
                   stats::Table::fmt(r.batched_qps / r.serial_qps, 2) + "x",
                   fmt_pct(r.serial_fail), fmt_pct(r.batched_fail),
                   std::to_string(r.serial_flushes) + "/" +
                       std::to_string(r.batched_flushes)});
  }
  std::cout << table.to_string();

  std::cout << "\nJSON:\n{\n"
            << "  \"bench\": \"pr2_async_oltp\",\n"
            << "  \"description\": \"OLTP point reads: serial txn-per-query (PR1) vs "
               "BatchScope frontier groups (read_batch=32)\",\n"
            << "  \"net\": \"xc40\", \"ranks\": " << P << ", \"scale\": " << scale
            << ", \"queries_per_rank\": 2000,\n  \"mixes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::cout << "    {\"mix\": \"" << r.mix << "\", \"serial_qps\": "
              << stats::Table::fmt(r.serial_qps, 1)
              << ", \"batched_qps\": " << stats::Table::fmt(r.batched_qps, 1)
              << ", \"speedup\": " << stats::Table::fmt(r.batched_qps / r.serial_qps, 2)
              << ", \"serial_failed\": " << stats::Table::fmt(r.serial_fail, 4)
              << ", \"batched_failed\": " << stats::Table::fmt(r.batched_fail, 4)
              << ", \"serial_flushes\": " << r.serial_flushes
              << ", \"batched_flushes\": " << r.batched_flushes
              << ", \"batched_nb_batches\": " << r.batched_batches
              << ", \"batched_max_batch_depth\": " << r.batched_max_depth << "}"
              << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n"
            << "\nExpected shape: read-heavy mixes gain the most (RM > RI > LB).\n"
               "Each batched flush is an overlapped completion point amortizing\n"
               "up to read_batch lookups/locks/fetches (see max_batch_depth);\n"
               "serial reads instead pay one full latency chain per query.\n";
  return 0;
}
