// PR 3 perf snapshot: the sharded growable DHT's write path.
//
// Two measurements, both on the LogGP cost model (xc40, P=4):
//
//  (a) insert_many vs serial insert. Each rank inserts a disjoint key range
//      into a table provisioned at 1/8 of the keys (so both paths also pay
//      for ~8 shard growths). The serial path charges one full latency chain
//      per key; insert_many pays one overlapped field round plus
//      ceil(k/Q)*max(alpha) per bucket-head CAS round.
//
//  (b) bulk-load-through-growth. A Kronecker graph is bulk loaded into a
//      database whose DHT is provisioned at 1/8 of the resident keys: the
//      load succeeds by publishing shards on demand (the seed behaviour was
//      a kOutOfMemory abort) and reports the end-to-end vertex ingest rate.
//
// Emits a paper-style table plus a JSON blob (committed as BENCH_pr3.json);
// tools/check_bench.py tracks the smoke-mode metrics in CI.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("PR 3 -- DHT growth + batched one-sided inserts",
               "paper Sec. 5.7 Listing 4, grown elastically");
  const int P = 4;
  const auto net = rma::NetParams::xc40();

  // --- (a) serial insert vs insert_many ------------------------------------
  const std::uint64_t keys_per_rank = bench_queries(4096);
  double serial_ns = 0, batched_ns = 0;
  std::uint64_t grown_shards = 0;
  {
    rma::Runtime rt(P, net);
    rt.run([&](rma::Rank& self) {
      dht::DhtConfig cfg;
      cfg.buckets_per_rank = 512;
      cfg.entries_per_rank = std::max<std::uint64_t>(keys_per_rank / 8, 16);
      cfg.salt = 17;
      cfg.max_shards = 128;
      auto serial = dht::DistributedHashTable::create(self, cfg);
      auto batched = dht::DistributedHashTable::create(self, cfg);
      const auto base = static_cast<std::uint64_t>(self.id()) * keys_per_rank;
      std::vector<std::uint64_t> keys, vals;
      for (std::uint64_t i = 0; i < keys_per_rank; ++i) {
        keys.push_back(base + i);
        vals.push_back(base + i + 1);
      }
      self.barrier();
      self.reset_clock();
      for (std::size_t i = 0; i < keys.size(); ++i)
        if (!serial->insert(self, keys[i], vals[i])) std::abort();
      const double my_serial = self.sim_time_ns();
      const double all_serial = self.allreduce_max(my_serial);
      self.reset_clock();
      auto ok = batched->insert_many(self, keys, vals);
      const double my_batched = self.sim_time_ns();
      for (auto f : ok)
        if (!f) std::abort();
      const double all_batched = self.allreduce_max(my_batched);
      self.barrier();
      if (self.id() == 0) {
        serial_ns = all_serial;
        batched_ns = all_batched;
        grown_shards = batched->shard_count(self);
      }
    });
  }
  const auto total_keys = keys_per_rank * static_cast<std::uint64_t>(P);
  const double serial_per_key = serial_ns / static_cast<double>(keys_per_rank);
  const double batched_per_key = batched_ns / static_cast<double>(keys_per_rank);
  const double speedup = serial_ns / batched_ns;

  // --- (b) bulk load through shard growth ----------------------------------
  const int scale = bench_scale(13);
  double load_ns = 0;
  std::uint64_t load_vertices = 0, load_shards = 0;
  {
    rma::Runtime rt(P, net);
    rt.run([&](rma::Rank& self) {
      gen::LpgConfig g;
      g.scale = scale;
      g.edge_factor = 8;
      g.seed = 42;
      DatabaseConfig c;
      c.block.block_size = 512;
      const auto per_rank =
          g.num_vertices() / static_cast<std::uint64_t>(self.nranks()) + 64;
      c.block.blocks_per_rank = per_rank * 8 + 8192;
      c.index_capacity_per_rank = per_rank * 2;
      // 1/8 provisioning: the load only completes by growing shards.
      c.dht.buckets_per_rank = 512;
      c.dht.entries_per_rank = std::max<std::uint64_t>(per_rank / 8, 16);
      c.dht.max_shards = 64;
      auto db = Database::create(self, c);
      gen::KroneckerGenerator kg(g, {}, {});
      const auto slice = kg.generate_local(self);
      self.barrier();
      self.reset_clock();
      BulkLoader loader(db, self);
      auto stats = loader.load(slice.vertices, slice.edges);
      const double t = self.allreduce_max(self.sim_time_ns());
      if (!stats.ok()) std::abort();
      const auto v = self.allreduce_sum(stats->vertices_loaded);
      self.barrier();
      if (self.id() == 0) {
        load_ns = t;
        load_vertices = v;
        load_shards = db->id_index().shard_count(self);
      }
    });
  }
  const double load_mvps = static_cast<double>(load_vertices) / (load_ns * 1e-3);

  stats::Table table({"measurement", "serial", "batched", "speedup", "shards"});
  table.add_row({"insert ns/key (P=4, xc40)", stats::Table::fmt(serial_per_key, 1),
                 stats::Table::fmt(batched_per_key, 1),
                 stats::Table::fmt(speedup, 2) + "x", std::to_string(grown_shards)});
  table.add_row({"bulk load Mvert/s (1/8 DHT)", "-", stats::Table::fmt(load_mvps, 3),
                 "-", std::to_string(load_shards)});
  std::cout << table.to_string();

  std::cout << "\nJSON:\n{\n"
            << "  \"bench\": \"pr3_dht_growth\",\n"
            << "  \"description\": \"sharded growable DHT: insert_many vs serial "
               "insert, bulk load at 1/8 provisioning\",\n"
            << "  \"net\": \"xc40\", \"ranks\": " << P
            << ", \"keys_per_rank\": " << keys_per_rank << ", \"scale\": " << scale
            << ",\n"
            << "  \"serial_ns_per_key\": " << stats::Table::fmt(serial_per_key, 1)
            << ", \"batched_ns_per_key\": " << stats::Table::fmt(batched_per_key, 1)
            << ", \"insert_many_speedup\": " << stats::Table::fmt(speedup, 2)
            << ",\n"
            << "  \"insert_keys_total\": " << total_keys
            << ", \"insert_shards\": " << grown_shards << ",\n"
            << "  \"bulk_vertices\": " << load_vertices
            << ", \"bulk_shards\": " << load_shards
            << ", \"bulk_load_mvps\": " << stats::Table::fmt(load_mvps, 3) << "\n"
            << "}\n"
            << "\nExpected shape: insert_many wins by overlapping the per-entry\n"
               "field round and the bucket-head CAS rounds (cost\n"
               "ceil(k/Q)*max(alpha) per round); the bulk load completes despite\n"
               "1/8 provisioning by publishing shards through the directory CAS.\n";
  return 0;
}
