// PR 4 perf snapshot: warm read-mostly OLTP with the shared version-validated
// block cache (src/cache/) on vs off.
//
// Same graph, mix, and query stream as the Figure 4a harness, with a hot
// working set (OltpConfig::hot_ids): production point-read traffic
// concentrates on a small popular subset, so most transactions re-read
// holders some earlier transaction already fetched. Without the shared cache
// (the PR 3 shape) every transaction starts cold and pays the full block
// rounds again; with it, a read lock's own acquisition CAS doubles as the
// version validation and a hit skips the holder's block fetches entirely.
// The stream still contains writes (the RM mix's add-edge fraction), whose
// commit writebacks bump lock-word versions -- so the measured hit rate is
// what survives real invalidation traffic, not a read-only idealization.
//
// Emits a paper-style table plus a JSON blob (committed as BENCH_pr4.json)
// recording the warm-read win.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("PR 4 -- warm OLTP: shared block cache off (PR 3 shape) vs on",
               "paper Fig. 4a harness");
  const int P = 4;
  const int scale = bench_scale(11);
  const std::uint64_t kHotIds = 256;
  const auto net = rma::NetParams::xc40();

  struct Row {
    std::string mix;
    double cold_qps = 0;       ///< shared cache off
    double warm_qps = 0;       ///< shared cache on
    double hit_rate = 0;
    double cold_fail = 0;
    double warm_fail = 0;
    std::uint64_t validations = 0;
    std::uint64_t invalidations = 0;
  };
  std::vector<Row> rows;

  for (const auto& mix : {work::OpMix::read_mostly(), work::OpMix::read_intensive()}) {
    Row row;
    row.mix = mix.name;
    for (const bool shared : {false, true}) {
      rma::Runtime rt(P, net);
      rt.run([&](rma::Rank& self) {
        SetupOpts o;
        o.scale = scale;
        o.shared_cache = shared;
        auto env = setup_db(self, o);
        work::OltpConfig cfg;
        cfg.queries_per_rank = bench_queries(2000);
        cfg.existing_ids = env.n;
        cfg.hot_ids = kHotIds;
        cfg.label_for_new = env.label_ids[0];
        cfg.ptype_for_update = env.ptype_ids[0];
        self.reset_counters();
        auto res = work::run_oltp(env.db, self, mix, cfg);
        auto counters = global_counters(self);
        if (self.id() == 0) {
          if (!shared) {
            row.cold_qps = res.throughput_qps;
            row.cold_fail = res.failed_fraction();
          } else {
            row.warm_qps = res.throughput_qps;
            row.warm_fail = res.failed_fraction();
            row.hit_rate = stats::scache_hit_rate(counters);
            row.validations = counters.scache_validations;
            row.invalidations = counters.scache_invalidations;
          }
        }
      });
    }
    rows.push_back(row);
  }

  stats::Table table({"mix", "cold Mq/s", "warm Mq/s", "speedup", "scache hit",
                      "cold fail", "warm fail"});
  for (const auto& r : rows) {
    table.add_row({r.mix, fmt_mqps(r.cold_qps), fmt_mqps(r.warm_qps),
                   stats::Table::fmt(r.warm_qps / r.cold_qps, 2) + "x",
                   fmt_pct(r.hit_rate), fmt_pct(r.cold_fail), fmt_pct(r.warm_fail)});
  }
  std::cout << table.to_string();

  std::cout << "\nJSON:\n{\n"
            << "  \"bench\": \"pr4_cached_oltp\",\n"
            << "  \"description\": \"warm hot-set OLTP (fig4a harness): shared "
               "version-validated cache off (PR3 shape) vs on\",\n"
            << "  \"net\": \"xc40\", \"ranks\": " << P << ", \"scale\": " << scale
            << ", \"hot_ids\": " << kHotIds << ", \"queries_per_rank\": 2000,\n"
            << "  \"mixes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::cout << "    {\"mix\": \"" << r.mix << "\", \"cold_qps\": "
              << stats::Table::fmt(r.cold_qps, 1)
              << ", \"warm_qps\": " << stats::Table::fmt(r.warm_qps, 1)
              << ", \"speedup\": " << stats::Table::fmt(r.warm_qps / r.cold_qps, 2)
              << ", \"scache_hit_rate\": " << stats::Table::fmt(r.hit_rate, 4)
              << ", \"validations\": " << r.validations
              << ", \"invalidations\": " << r.invalidations
              << ", \"cold_failed\": " << stats::Table::fmt(r.cold_fail, 4)
              << ", \"warm_failed\": " << stats::Table::fmt(r.warm_fail, 4) << "}"
              << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n"
            << "\nExpected shape: read-mostly gains most (>= 1.3x acceptance bar);\n"
               "hit rate tracks the hot-set-to-stream ratio minus invalidations\n"
               "from the mix's writes. Validation is free for locked reads (the\n"
               "lock CAS observes the version), so cold == PR 3 op counts.\n";
  return 0;
}
