// PR 4 perf snapshot: constraint-filtered edges_of over heavy edges --
// serial lock-and-fetch per holder (the pre-PR4 shape) vs the batched
// fetch_edges_batch path (one overlapped lock CAS round + one primary and
// one continuation block round for every heavy holder a query touches).
//
// The graph gives half its edges their own holders (heavy_edge_fraction),
// with the label stored in the holder -- so a label-constrained edges_of
// must fetch every direction-matching heavy holder to evaluate the filter,
// which is exactly the access the ROADMAP's "Batched edge-holder fetch"
// item wanted overlapped. The serial baseline is batched_reads=false (each
// holder pays its own lock CAS + GET chain).
//
// Emits a paper-style table plus a JSON blob (committed as BENCH_pr4.json).
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("PR 4 -- constraint-filtered edges_of: serial vs batched heavy fetch",
               "paper Sec. 6.5 access pattern");
  const int P = 4;
  const int scale = bench_scale(10);
  const auto net = rma::NetParams::xc40();
  const std::uint64_t kQueries = bench_queries(600);

  struct Config {
    const char* name;
    bool batched;
  };
  struct Row {
    double time_ns = 0;
    std::uint64_t gets = 0;
    std::uint64_t flushes = 0;
    std::uint64_t edge_batches = 0;
    std::uint64_t edge_batch_items = 0;
  };
  Row serial, batched;

  for (const Config& c : {Config{"serial", false}, Config{"batched", true}}) {
    rma::Runtime rt(P, net);
    rt.run([&](rma::Rank& self) {
      SetupOpts o;
      o.scale = scale;
      o.heavy_edge_fraction = 0.5;
      o.batched_reads = c.batched;
      o.shared_cache = false;  // isolate the batching effect
      auto env = setup_db(self, o);
      // Every rank scans a slice of vertices with a label-constrained
      // edges_of; labels of heavy edges live in their holders, so the filter
      // forces the heavy fetches.
      const Constraint cn = Constraint::with_label(env.label_ids[1 % env.label_ids.size()]);
      std::uint64_t matched = 0;
      self.barrier();
      self.reset_clock();
      self.reset_counters();
      {
        Transaction txn(env.db, self, TxnMode::kRead);
        for (std::uint64_t q = 0; q < kQueries; ++q) {
          const std::uint64_t id =
              (q * static_cast<std::uint64_t>(P) + static_cast<std::uint64_t>(self.id())) %
              env.n;
          auto vh = txn.find_vertex(id);
          if (!vh.ok()) continue;
          auto edges = txn.edges_of(*vh, DirFilter::kAll, &cn);
          if (edges.ok()) matched += edges->size();
        }
        (void)txn.commit();
      }
      const double t = self.allreduce_max(self.sim_time_ns());
      auto counters = global_counters(self);
      (void)self.allreduce_sum(matched);  // keep ranks in lockstep
      if (self.id() == 0) {
        Row& row = c.batched ? batched : serial;
        row.time_ns = t;
        row.gets = counters.gets;
        row.flushes = counters.flushes;
        row.edge_batches = counters.edge_batches;
        row.edge_batch_items = counters.edge_batch_items;
      }
    });
  }

  const double speedup = batched.time_ns > 0 ? serial.time_ns / batched.time_ns : 0;
  stats::Table table({"path", "runtime s", "gets", "flushes", "edge batches",
                      "avg batch size"});
  auto avg = [](const Row& r) {
    return r.edge_batches ? static_cast<double>(r.edge_batch_items) /
                                static_cast<double>(r.edge_batches)
                          : 0.0;
  };
  table.add_row({"serial", fmt_s(serial.time_ns), std::to_string(serial.gets),
                 std::to_string(serial.flushes), std::to_string(serial.edge_batches),
                 stats::Table::fmt(avg(serial), 1)});
  table.add_row({"batched", fmt_s(batched.time_ns), std::to_string(batched.gets),
                 std::to_string(batched.flushes), std::to_string(batched.edge_batches),
                 stats::Table::fmt(avg(batched), 1)});
  std::cout << table.to_string();
  std::cout << "speedup: " << stats::Table::fmt(speedup, 2) << "x\n";

  std::cout << "\nJSON:\n{\n"
            << "  \"bench\": \"pr4_edge_batch\",\n"
            << "  \"description\": \"label-constrained edges_of over 50% heavy "
               "edges: serial holder fetches vs fetch_edges_batch\",\n"
            << "  \"net\": \"xc40\", \"ranks\": " << P << ", \"scale\": " << scale
            << ", \"queries_per_rank\": " << kQueries << ",\n"
            << "  \"serial_time_ns\": " << stats::Table::fmt(serial.time_ns, 1)
            << ", \"batched_time_ns\": " << stats::Table::fmt(batched.time_ns, 1)
            << ", \"edge_batch_speedup\": " << stats::Table::fmt(speedup, 2)
            << ",\n  \"batched_edge_batches\": " << batched.edge_batches
            << ", \"batched_avg_edge_batch\": " << stats::Table::fmt(avg(batched), 1)
            << "\n}\n"
            << "\nExpected shape: the batched path overlaps every heavy holder's\n"
               "lock CAS and block GET behind one flush per round, so it wins by\n"
               "roughly the mean heavy degree of the filtered scan.\n";
  return 0;
}
