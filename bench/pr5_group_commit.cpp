// PR 5 perf snapshot: the write hot path -- cross-transaction group commit
// (src/gdi/commit_pipeline.*) + shared-cache write-through -- vs the PR 4
// commit path.
//
// Three measurements, all on the xc40 model at P=4:
//
//  * write stream: the partition-affine update stream of
//    work::run_write_stream -- each rank rewrites its own slice of a hot set,
//    one single-update transaction at a time. PR 4 pays one completion fence
//    (flush) per commit; PR 5 defers eligible commits' writeback + unlock
//    round into shared flush epochs, one overlapped flush per epoch. Write
//    intents bypass the shared cache in both modes, so GET/PUT byte counts
//    are *identical* -- the speedup is pure fence amortization, which is the
//    point (the PR 4 edge bench made the same identical-bytes argument).
//
//  * read-after-own-write: the same stream with a read-back transaction per
//    update. PR 4 invalidates the writer's own entry at writeback, so every
//    read-back misses and refetches; PR 5 re-stamps the entry with the
//    committed bytes under the version write_unlock_fetch published, so
//    read-backs hit (`scache_hit` goes from zero to ~every read).
//
//  * update-stream mix (uniform ids via run_oltp, not gated): the same
//    machinery under the paper-shaped driver, where DHT translation and
//    remote ids dilute the commit share -- reported for context.
//
// Emits a paper-style table plus a JSON blob (committed as BENCH_pr5.json).
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("PR 5 -- write hot path: PR 4 commit path vs group commit + write-through",
               "paper Sec. 5.6/6.4 write-side cost model");
  const int P = 4;
  const int scale = bench_scale(11);
  const auto net = rma::NetParams::xc40();

  struct Mode {
    const char* name;
    bool pr5 = false;
  };
  const Mode modes[] = {{"pr4", false}, {"pr5", true}};

  struct StreamRow {
    double qps = 0;
    double flushes_per_txn = 0;
    std::uint64_t bytes_get = 0, bytes_put = 0;
    std::uint64_t scache_hits = 0, scache_misses = 0, restamps = 0;
    std::uint64_t gc_epochs = 0, gc_enrolled = 0;
    double fail = 0;
  };
  StreamRow ws[2];   // write stream, per mode
  StreamRow raw[2];  // read-after-write, per mode
  double mix_qps[2] = {0, 0};

  for (int m = 0; m < 2; ++m) {
    for (const bool read_back : {false, true}) {
      rma::Runtime rt(P, net);
      rt.run([&](rma::Rank& self) {
        SetupOpts o;
        o.scale = scale;
        // Lean holders (single-block for most vertices): the write stream
        // measures the commit protocol, not adjacency-fetch volume -- a row
        // store's hot rows, not a supernode's edge list.
        o.edge_factor = 4;
        o.write_through = modes[m].pr5;
        o.commit_pipeline = modes[m].pr5;
        auto env = setup_db(self, o);
        work::WriteStreamConfig cfg;
        cfg.updates_per_rank = bench_queries(2000);
        cfg.hot_ids = std::min<std::uint64_t>(256, env.n / 2);
        // Hot rows = a hashed subset of the id space, not the low ids (the
        // Kronecker supernodes), per the WriteStreamConfig contract.
        cfg.existing_ids = env.n;
        cfg.ptype = env.ptype_ids[0];
        cfg.read_back = read_back;
        self.reset_counters();
        auto res = work::run_write_stream(env.db, self, cfg);
        auto counters = global_counters(self);
        if (self.id() == 0) {
          StreamRow& row = read_back ? raw[m] : ws[m];
          row.qps = res.throughput_qps;
          row.fail = res.attempted
                         ? static_cast<double>(res.failed) /
                               static_cast<double>(res.attempted)
                         : 0;
          row.flushes_per_txn =
              res.attempted ? static_cast<double>(counters.flushes) /
                                  static_cast<double>(res.attempted)
                            : 0;
          row.bytes_get = counters.bytes_get;
          row.bytes_put = counters.bytes_put;
          row.scache_hits = counters.scache_hits;
          row.scache_misses = counters.scache_misses;
          row.restamps = counters.scache_restamps;
          row.gc_epochs = counters.gc_epochs;
          row.gc_enrolled = counters.gc_enrolled;
        }
      });
    }
    // Context row: the same knobs under the paper-shaped OLTP driver.
    {
      rma::Runtime rt(P, net);
      rt.run([&](rma::Rank& self) {
        SetupOpts o;
        o.scale = scale;
        o.write_through = modes[m].pr5;
        o.commit_pipeline = modes[m].pr5;
        auto env = setup_db(self, o);
        work::OltpConfig cfg;
        cfg.queries_per_rank = bench_queries(2000);
        cfg.existing_ids = env.n;
        cfg.hot_write_ids = std::min<std::uint64_t>(256, env.n / 2);
        cfg.ptype_for_update = env.ptype_ids[0];
        self.reset_counters();
        auto res =
            work::run_oltp(env.db, self, work::OpMix::update_stream(), cfg);
        if (self.id() == 0) mix_qps[m] = res.throughput_qps;
      });
    }
  }

  const double ws_speedup = ws[0].qps > 0 ? ws[1].qps / ws[0].qps : 0;
  const double raw_speedup = raw[0].qps > 0 ? raw[1].qps / raw[0].qps : 0;
  const double raw_hit_rate =
      raw[1].scache_hits + raw[1].scache_misses > 0
          ? static_cast<double>(raw[1].scache_hits) /
                static_cast<double>(raw[1].scache_hits + raw[1].scache_misses)
          : 0;
  const bool bytes_equal =
      ws[0].bytes_get == ws[1].bytes_get && ws[0].bytes_put == ws[1].bytes_put;

  stats::Table table({"shape", "pr4 Mq/s", "pr5 Mq/s", "speedup",
                      "pr4 flush/txn", "pr5 flush/txn", "pr5 scache_hit"});
  table.add_row({"write stream", fmt_mqps(ws[0].qps), fmt_mqps(ws[1].qps),
                 stats::Table::fmt(ws_speedup, 2) + "x",
                 stats::Table::fmt(ws[0].flushes_per_txn, 2),
                 stats::Table::fmt(ws[1].flushes_per_txn, 2),
                 std::to_string(ws[1].scache_hits)});
  table.add_row({"read-after-write", fmt_mqps(raw[0].qps), fmt_mqps(raw[1].qps),
                 stats::Table::fmt(raw_speedup, 2) + "x",
                 stats::Table::fmt(raw[0].flushes_per_txn, 2),
                 stats::Table::fmt(raw[1].flushes_per_txn, 2),
                 std::to_string(raw[1].scache_hits)});
  table.add_row({"update-stream mix", fmt_mqps(mix_qps[0]), fmt_mqps(mix_qps[1]),
                 stats::Table::fmt(mix_qps[0] > 0 ? mix_qps[1] / mix_qps[0] : 0, 2) + "x",
                 "-", "-", "-"});
  std::cout << table.to_string();
  std::cout << "write stream GET/PUT bytes " << (bytes_equal ? "EQUAL" : "UNEQUAL")
            << " across modes (get " << ws[0].bytes_get << "/" << ws[1].bytes_get
            << ", put " << ws[0].bytes_put << "/" << ws[1].bytes_put << ")\n"
            << "pr4 read-after-write scache hits: " << raw[0].scache_hits
            << " (invalidate-on-writeback goes cold); pr5 hits: "
            << raw[1].scache_hits << " (restamps " << raw[1].restamps << ")\n"
            << "pr5 group commit: " << ws[1].gc_epochs << " epochs, "
            << stats::Table::fmt(ws[1].gc_epochs
                                     ? static_cast<double>(ws[1].gc_enrolled) /
                                           static_cast<double>(ws[1].gc_epochs)
                                     : 0,
                                 1)
            << " commits/epoch\n";

  std::cout << "\nJSON:\n{\n"
            << "  \"bench\": \"pr5_group_commit\",\n"
            << "  \"description\": \"write hot path: PR4 flush-per-commit + "
               "invalidate-on-writeback vs PR5 group commit + write-through\",\n"
            << "  \"net\": \"xc40\", \"ranks\": " << P << ", \"scale\": " << scale
            << ", \"updates_per_rank\": 2000,\n"
            << "  \"write_stream\": {\"pr4_qps\": " << stats::Table::fmt(ws[0].qps, 1)
            << ", \"pr5_qps\": " << stats::Table::fmt(ws[1].qps, 1)
            << ", \"speedup\": " << stats::Table::fmt(ws_speedup, 2)
            << ", \"bytes_equal\": " << (bytes_equal ? "true" : "false")
            << ",\n    \"pr4_flushes_per_txn\": "
            << stats::Table::fmt(ws[0].flushes_per_txn, 3)
            << ", \"pr5_flushes_per_txn\": "
            << stats::Table::fmt(ws[1].flushes_per_txn, 3)
            << ", \"commits_per_epoch\": "
            << stats::Table::fmt(ws[1].gc_epochs
                                     ? static_cast<double>(ws[1].gc_enrolled) /
                                           static_cast<double>(ws[1].gc_epochs)
                                     : 0,
                                 1)
            << "},\n"
            << "  \"read_after_write\": {\"pr4_qps\": "
            << stats::Table::fmt(raw[0].qps, 1)
            << ", \"pr5_qps\": " << stats::Table::fmt(raw[1].qps, 1)
            << ", \"speedup\": " << stats::Table::fmt(raw_speedup, 2)
            << ",\n    \"pr4_scache_hits\": " << raw[0].scache_hits
            << ", \"pr5_scache_hits\": " << raw[1].scache_hits
            << ", \"pr5_hit_rate\": " << stats::Table::fmt(raw_hit_rate, 4) << "},\n"
            << "  \"update_stream_mix\": {\"pr4_qps\": "
            << stats::Table::fmt(mix_qps[0], 1)
            << ", \"pr5_qps\": " << stats::Table::fmt(mix_qps[1], 1)
            << ", \"speedup\": "
            << stats::Table::fmt(mix_qps[0] > 0 ? mix_qps[1] / mix_qps[0] : 0, 2)
            << "}\n}\n"
            << "\nExpected shape: write-stream >= 1.5x at byte-identical GET/PUT\n"
               "(pure fence amortization; acceptance bar), read-after-write hits\n"
               "go zero -> ~all (write-through), mix row smaller but positive\n"
               "(DHT translation and remote ids dilute the commit share).\n";
  return 0;
}
