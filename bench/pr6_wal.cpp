// PR 6 perf snapshot: the price of durability -- the epoch WAL riding the
// group-commit write path vs the same path with the log off.
//
// One measurement, on the xc40 model at P=4: the partition-affine update
// stream of work::run_write_stream (each rank rewrites its own slice of a
// hot set through the commit pipeline + write-through, the PR 5 production
// write path), with cfg.wal off vs on.
//
// The WAL adds ZERO window operations -- every commit's redo record goes to
// a per-rank file, and its cost is modeled time only (wal_append_ns_per_byte
// while buffering, wal_fsync_ns once per sealed epoch). Exact byte-parity is
// pinned deterministically (single-rank) in test_wal.cpp; here, with four
// rank threads racing on the shared cache, op counts jitter ~0.04% run to
// run regardless of WAL, so the bench checks parity to a 0.2% drift bound
// and prices the overhead: wal_ratio = on/off throughput, and appends/fsync
// shows how the pipeline's flush epochs amortize the group fsync exactly as
// they amortize the flush itself.
//
// Per-phase counters come from OpCounters::snapshot()/delta() (PR 6): the
// load phase is excluded without resetting the rank's counters.
//
// Emits a paper-style table plus a JSON blob (committed as BENCH_pr6.json).
#include <cmath>
#include <filesystem>

#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("PR 6 -- durability: epoch WAL on the group-commit write path",
               "README 'Durability protocol'; SPEEDEX-style group persistence");
  const int P = 4;
  const int scale = bench_scale(11);
  const auto net = rma::NetParams::xc40();

  const std::string wal_dir =
      (std::filesystem::temp_directory_path() / "gdi_bench_pr6_wal").string();
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);

  struct Row {
    double qps = 0;
    rma::OpCounters ops;  ///< measured phase only (snapshot/delta)
  };
  Row rows[2];  // [0] = wal off, [1] = wal on

  for (int m = 0; m < 2; ++m) {
    rma::Runtime rt(P, net);
    rt.run([&](rma::Rank& self) {
      SetupOpts o;
      o.scale = scale;
      o.edge_factor = 4;  // lean holders: measure the commit protocol
      o.write_through = true;
      o.commit_pipeline = true;
      o.wal = m == 1;
      o.wal_dir = wal_dir;
      auto env = setup_db(self, o);
      work::WriteStreamConfig cfg;
      cfg.updates_per_rank = bench_queries(2000);
      cfg.hot_ids = std::min<std::uint64_t>(256, env.n / 2);
      cfg.existing_ids = env.n;
      cfg.ptype = env.ptype_ids[0];
      // Per-phase counters without a reset: delta against a snapshot taken
      // after the bulk load, so the load's traffic stays out of the row.
      const rma::OpCounters before = self.counters().snapshot();
      auto res = work::run_write_stream(env.db, self, cfg);
      const rma::OpCounters phase = self.counters().delta(before);
      auto all = self.allgather(phase);
      if (self.id() == 0) {
        rows[m].qps = res.throughput_qps;
        for (const auto& c : all) rows[m].ops += c;
      }
    });
  }

  const Row& off = rows[0];
  const Row& on = rows[1];
  const double ratio = off.qps > 0 ? on.qps / off.qps : 0;
  const auto window_ops = [](const rma::OpCounters& c) {
    return c.puts + c.gets + c.atomics;
  };
  const double drift =
      std::abs(static_cast<double>(window_ops(on.ops)) -
               static_cast<double>(window_ops(off.ops))) /
      std::max<double>(1.0, static_cast<double>(window_ops(off.ops)));
  const bool ops_parity = drift <= 0.002;  // scheduler jitter, not WAL traffic
  const double appends_per_fsync =
      on.ops.wal_fsyncs > 0 ? static_cast<double>(on.ops.wal_appends) /
                                  static_cast<double>(on.ops.wal_fsyncs)
                            : 0;

  stats::Table table({"mode", "Mq/s", "vs off", "wal appends", "fsyncs",
                      "appends/fsync", "window ops"});
  table.add_row({"wal off", fmt_mqps(off.qps), "1.00x", "0", "0", "-",
                 std::to_string(window_ops(off.ops))});
  table.add_row({"wal on", fmt_mqps(on.qps),
                 stats::Table::fmt(ratio, 2) + "x",
                 std::to_string(on.ops.wal_appends),
                 std::to_string(on.ops.wal_fsyncs),
                 stats::Table::fmt(appends_per_fsync, 1),
                 std::to_string(window_ops(on.ops))});
  std::cout << table.to_string();
  std::cout << "window traffic drift across modes: " << fmt_pct(drift)
            << (ops_parity ? " (PARITY: the WAL is file IO + modeled time only)"
                           : " (DIVERGED beyond scheduler jitter!)")
            << "\n";

  std::cout << "\nJSON:\n{\n"
            << "  \"bench\": \"pr6_wal\",\n"
            << "  \"description\": \"epoch WAL overhead on the group-commit "
               "write stream (wal off vs on)\",\n"
            << "  \"net\": \"xc40\", \"ranks\": " << P << ", \"scale\": " << scale
            << ", \"updates_per_rank\": 2000,\n"
            << "  \"write_stream\": {\"wal_off_qps\": "
            << stats::Table::fmt(off.qps, 1)
            << ", \"wal_on_qps\": " << stats::Table::fmt(on.qps, 1)
            << ", \"wal_ratio\": " << stats::Table::fmt(ratio, 4)
            << ",\n    \"window_op_parity\": " << (ops_parity ? "true" : "false")
            << ", \"wal_appends\": " << on.ops.wal_appends
            << ", \"wal_fsyncs\": " << on.ops.wal_fsyncs
            << ", \"appends_per_fsync\": "
            << stats::Table::fmt(appends_per_fsync, 2) << "}\n}\n"
            << "\nExpected shape: wal_ratio around 0.4 on this model -- the 20us\n"
               "group fsync, even amortized over ~32 commits/epoch, adds ~0.6us\n"
               "to a ~0.8us pipelined commit; without the epoch grouping every\n"
               "commit would pay the full 20us (~25x, not ~2.4x). Window ops\n"
               "match across modes to scheduler jitter (<0.2%), appends/fsync\n"
               "tracks commits/epoch.\n";
  std::filesystem::remove_all(wal_dir);
  return 0;
}
