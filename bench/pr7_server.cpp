// PR 7 perf snapshot: the multi-tenant front end (src/server/).
//
// Two measurements:
//
//  * multi-tenant OLTP, scheduler vs eager: 4 client sessions per rank at
//    P=2 (8 tenants total) drive the same open-loop request streams through
//    (a) the TenantScheduler with read coalescing (up to 32 reads from ANY
//    tenant share one kRead transaction / one BatchScope::execute) plus the
//    commit pipeline (cross-tenant commits share flush epochs and their
//    acknowledgements ride the epoch close), and (b) the *eager* baseline:
//    the identical scheduler loop with server_read_coalesce = 1 and the
//    pipeline off -- one transaction and one completion fence per request,
//    which is exactly what N independent clients each owning a Transaction
//    would pay. Same streams, same arrival stamps, same admission caps
//    (sized to never shed), so the delta is pure cross-tenant batching.
//    Reported: throughput, p50/p99/p999 end-to-end latency (arrival ->
//    acknowledgement, so queueing delay is in the tails), per-tenant p99
//    spread (the DRR fairness observable), coalescing rate, epochs.
//
//  * HTAP scan resistance, FIFO vs 2Q shared-cache admission: an OLTP hot
//    set is warmed (two passes -- the second touch is what 2Q rewards), then
//    OLAP-style full scans interleave with hot re-reads. Under kFifo each
//    scan washes the hot set out of the holder cache; under k2Q one-touch
//    scan fills churn only the probationary share and the hot set keeps
//    hitting. Reported: hot-pass scache hit rate after scans, per policy.
//
// Emits a paper-style table plus a JSON blob (committed as BENCH_pr7.json).
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("PR 7 -- multi-tenant front end: shared batches/epochs vs eager, FIFO vs 2Q",
               "paper Sec. 4/6 multi-client serving model");
  const int P = 2;
  const int scale = bench_scale(11);
  const auto net = rma::NetParams::xc50();
  const int tenants = 4;  // per rank; P * tenants = 8 clients total

  // -------------------------------------------------------------------------
  // Section 1: scheduler (coalesce + shared epochs) vs eager per-request
  // -------------------------------------------------------------------------
  struct ModeRow {
    double qps = 0;
    double p50 = 0, p99 = 0, p999 = 0;
    double tenant_p99_min = 0, tenant_p99_max = 0;
    double avg_coalesce = 0;
    std::uint64_t epochs = 0;
    std::uint64_t rejected = 0;
    std::uint64_t committed = 0, attempted = 0;
  };
  ModeRow rows[2];  // [0] = eager, [1] = scheduler

  for (int m = 0; m < 2; ++m) {
    const bool sched = m == 1;
    rma::Runtime rt(P, net);
    rt.run([&](rma::Rank& self) {
      SetupOpts o;
      o.scale = scale;
      o.edge_factor = 4;  // lean holders: serving cost, not adjacency volume
      o.server = true;
      o.server_read_coalesce = sched ? 32 : 1;
      o.commit_pipeline = sched;
      auto env = setup_db(self, o);

      work::ServerOltpConfig cfg;
      cfg.tenants = tenants;
      cfg.requests_per_tenant = bench_queries(2000);
      cfg.interarrival_ns = 1500.0;
      cfg.read_fraction = 0.8;
      cfg.existing_ids = env.n;
      cfg.hot_ids = std::min<std::uint64_t>(256, env.n / 2);
      cfg.ptype = env.ptype_ids[0];
      self.reset_counters();
      const auto res = work::run_server_oltp(env.db, self, cfg);
      if (self.id() == 0) {
        ModeRow& r = rows[m];
        r.qps = res.throughput_qps;
        r.p50 = res.all_latency.p50_ns();
        r.p99 = res.all_latency.p99_ns();
        r.p999 = res.all_latency.p999_ns();
        r.tenant_p99_min = 1e300;
        for (const auto& h : res.tenant_latency) {
          r.tenant_p99_min = std::min(r.tenant_p99_min, h.p99_ns());
          r.tenant_p99_max = std::max(r.tenant_p99_max, h.p99_ns());
        }
        r.avg_coalesce = res.avg_coalesce;
        r.epochs = res.epochs;
        r.rejected = res.rejected;
        r.committed = res.committed;
        r.attempted = res.attempted;
      }
    });
  }

  const double speedup = rows[0].qps > 0 ? rows[1].qps / rows[0].qps : 0;
  stats::Table t1({"mode", "Mq/s", "p50 us", "p99 us", "p999 us",
                   "tenant p99 spread", "coalesced", "epochs"});
  const char* names[2] = {"eager", "scheduler"};
  for (int m = 0; m < 2; ++m) {
    const ModeRow& r = rows[m];
    t1.add_row({names[m], fmt_mqps(r.qps), stats::Table::fmt(r.p50 / 1e3, 1),
                stats::Table::fmt(r.p99 / 1e3, 1),
                stats::Table::fmt(r.p999 / 1e3, 1),
                stats::Table::fmt(r.tenant_p99_min / 1e3, 1) + ".." +
                    stats::Table::fmt(r.tenant_p99_max / 1e3, 1),
                fmt_pct(r.avg_coalesce), std::to_string(r.epochs)});
  }
  std::cout << t1.to_string();
  std::cout << "scheduler vs eager speedup: " << stats::Table::fmt(speedup, 2)
            << "x at " << P * tenants << " tenants ("
            << rows[1].committed << "/" << rows[1].attempted
            << " committed, " << rows[1].rejected << " shed)\n\n";

  // -------------------------------------------------------------------------
  // Section 2: HTAP scan resistance -- shared-cache admission FIFO vs 2Q
  // -------------------------------------------------------------------------
  struct PolicyRow {
    double hot_hit_rate = 0;  ///< hot-pass hits/(hits+misses) after scans
    std::uint64_t hot_hits = 0, hot_misses = 0;
  };
  PolicyRow prow[2];  // [0] = kFifo, [1] = k2Q

  for (int pi = 0; pi < 2; ++pi) {
    rma::Runtime rt(P, net);
    rt.run([&](rma::Rank& self) {
      SetupOpts o;
      o.scale = bench_scale(10);
      o.edge_factor = 4;
      o.scache_policy =
          pi == 1 ? cache::ScachePolicy::k2Q : cache::ScachePolicy::kFifo;
      // A holder budget far below the scanned set: the scan MUST evict
      // something; the question is only whether it evicts the hot set. The
      // hot set fits the 2Q *resident* share (1 - probation_fraction) with
      // headroom even for multi-block holders.
      o.shared_cache_bytes = 64 * o.block_size;
      auto env = setup_db(self, o);
      const std::uint32_t pt = env.ptype_ids[0];
      // Hashed hot ids (not the low-id Kronecker supernodes).
      std::vector<std::uint64_t> hot;
      for (std::uint64_t i = 0; i < 12; ++i)
        hot.push_back((i * 7919 + 13) % env.n);

      const auto hot_pass = [&] {
        Transaction txn(env.db, self, TxnMode::kRead);
        for (const auto id : hot) {
          auto vh = txn.find_vertex(id);
          if (vh.ok()) (void)txn.get_properties(*vh, pt);
        }
        (void)txn.commit();
      };
      const auto scan_pass = [&] {
        Transaction txn(env.db, self, TxnMode::kRead);
        for (std::uint64_t id = 0; id < env.n; ++id) {
          auto vh = txn.find_vertex(id);
          if (vh.ok()) (void)txn.get_properties(*vh, pt);
        }
        (void)txn.commit();
      };

      hot_pass();  // fill (2Q: probation)
      hot_pass();  // second touch (2Q: promote to resident)
      std::uint64_t hits = 0;
      std::uint64_t misses = 0;
      for (int round = 0; round < 3; ++round) {
        scan_pass();  // OLAP interference: one-touch flood over the budget
        const auto c0 = self.counters();
        hot_pass();   // does the OLTP hot set still hit?
        const auto d = self.counters().delta(c0);
        hits += d.scache_hits;
        misses += d.scache_misses;
      }
      const auto ghits = self.allreduce_sum(hits);
      const auto gmisses = self.allreduce_sum(misses);
      if (self.id() == 0) {
        prow[pi].hot_hits = ghits;
        prow[pi].hot_misses = gmisses;
        prow[pi].hot_hit_rate =
            ghits + gmisses > 0
                ? static_cast<double>(ghits) / static_cast<double>(ghits + gmisses)
                : 0;
      }
    });
  }

  stats::Table t2({"policy", "hot hits", "hot misses", "hot hit rate"});
  const char* pnames[2] = {"fifo", "2q"};
  for (int pi = 0; pi < 2; ++pi)
    t2.add_row({pnames[pi], std::to_string(prow[pi].hot_hits),
                std::to_string(prow[pi].hot_misses), fmt_pct(prow[pi].hot_hit_rate)});
  std::cout << t2.to_string();
  std::cout << "hot-set survival across scans: fifo "
            << fmt_pct(prow[0].hot_hit_rate) << " vs 2q "
            << fmt_pct(prow[1].hot_hit_rate) << "\n";

  std::cout << "\nJSON:\n{\n"
            << "  \"bench\": \"pr7_server\",\n"
            << "  \"description\": \"multi-tenant scheduler (coalesce + shared epochs) "
               "vs eager per-request; FIFO vs 2Q scache admission under HTAP scans\",\n"
            << "  \"net\": \"xc50\", \"ranks\": " << P << ", \"scale\": " << scale
            << ", \"tenants\": " << P * tenants << ",\n"
            << "  \"server\": {\"eager_qps\": " << stats::Table::fmt(rows[0].qps, 1)
            << ", \"sched_qps\": " << stats::Table::fmt(rows[1].qps, 1)
            << ", \"speedup\": " << stats::Table::fmt(speedup, 2)
            << ",\n    \"sched_p50_us\": " << stats::Table::fmt(rows[1].p50 / 1e3, 2)
            << ", \"sched_p99_us\": " << stats::Table::fmt(rows[1].p99 / 1e3, 2)
            << ", \"sched_p999_us\": " << stats::Table::fmt(rows[1].p999 / 1e3, 2)
            << ",\n    \"coalesced_frac\": "
            << stats::Table::fmt(rows[1].avg_coalesce, 4)
            << ", \"epochs\": " << rows[1].epochs
            << ", \"rejected\": " << rows[1].rejected << "},\n"
            << "  \"htap\": {\"fifo_hot_hit_rate\": "
            << stats::Table::fmt(prow[0].hot_hit_rate, 4)
            << ", \"q2_hot_hit_rate\": " << stats::Table::fmt(prow[1].hot_hit_rate, 4)
            << "}\n}\n"
            << "\nExpected shape: scheduler >= 1x eager at 8 tenants (coalesced\n"
               "reads amortize lookup/lock/fetch rounds; epoch commits amortize\n"
               "fences -- acceptance bar), tenant p99 spread tight (DRR), and\n"
               "2q hot hit rate >> fifo under the same scan interference.\n";
  return 0;
}
