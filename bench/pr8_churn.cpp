// PR 8 perf snapshot: the hash-partitioned DHT under churn.
//
// Two measurements, both on the LogGP cost model (xc40, P=4):
//
//  (a) probe-cost contract. Tables are grown to 1, 4, and 26 shards, fully
//      compacted, and then hammered with multi-lookups: bucket-head probe
//      rounds per lookup must be exactly 1 at every shard count (the PR 3
//      table paid up to n probes on an n-shard table). The pre-compaction
//      probe cost at 26 shards is reported alongside to show what the
//      migration pass buys.
//
//  (b) churn stream. A sustained create/delete/lookup stream (the
//      src/workloads/churn.hpp driver) with an incremental compaction slice
//      per round: freed entry slots must be recycled by later allocations
//      (reclaim fraction -> 1 as the stream runs) instead of stranding, and
//      every lookup must return the key's live value.
//
// GDI_SOAK=1 turns this into the CI churn-soak lane: ~8x the stream length
// plus hard assertions -- probe rounds per lookup stay flat as shards grow,
// compaction reclaims >= 90% of freed capacity, zero wrong lookups.
//
// Emits a paper-style table plus a JSON blob (committed as BENCH_pr8.json);
// tools/check_bench.py tracks the smoke-mode metrics in CI.
#include "harness.hpp"
#include "workloads/churn.hpp"

namespace {

struct ProbePoint {
  std::uint64_t shards = 0;
  double ppl = 0;            ///< probe rounds per lookup, compacted
  double precompact_ppl = 0; ///< same measurement before the migration pass
};

ProbePoint probe_contract(int P, const gdi::rma::NetParams& net,
                          std::uint64_t target_shards) {
  using namespace gdi;
  ProbePoint out;
  rma::Runtime rt(P, net);
  rt.run([&](rma::Rank& self) {
    dht::DhtConfig cfg;
    cfg.buckets_per_rank = 64;
    cfg.entries_per_rank = 64;
    cfg.salt = 31;
    cfg.max_shards = 32;
    auto t = dht::DistributedHashTable::create(self, cfg);
    // (target-1) full shards plus a partial one: growth happens exactly at
    // heap exhaustion, so this lands the table on `target_shards` shards.
    const std::uint64_t keys_per_rank = (target_shards - 1) * cfg.entries_per_rank + 32;
    const auto base = (static_cast<std::uint64_t>(self.id()) + 1) << 40;
    for (std::uint64_t i = 0; i < keys_per_rank; ++i)
      if (!t->insert(self, base + i, base + i + 1)) std::abort();
    self.barrier();
    // Erase the even keys: migration needs free slots to copy into (the pass
    // deliberately refuses to grow the directory), and a half-empty table is
    // the churn steady state compaction exists for anyway.
    for (std::uint64_t i = 0; i < keys_per_rank; i += 2)
      if (!t->erase(self, base + i)) std::abort();
    self.barrier();

    const std::uint64_t survivors = keys_per_rank / 2;
    auto measure = [&](std::uint64_t lookups) {
      CounterRng rng(7 + static_cast<std::uint64_t>(self.id()));
      std::vector<std::uint64_t> keys;
      keys.reserve(lookups);
      for (std::uint64_t i = 0; i < lookups; ++i)
        keys.push_back(base + 1 + 2 * rng.next_below(survivors));
      const std::uint64_t p0 = self.counters().dht_probe_rounds;
      const auto got = t->lookup_many(self, keys);
      const auto probes = self.counters().dht_probe_rounds - p0;
      for (std::size_t i = 0; i < keys.size(); ++i)
        if (!got[i] || *got[i] != keys[i] + 1) std::abort();
      return static_cast<double>(probes) / static_cast<double>(lookups);
    };

    const double pre = measure(256);
    self.barrier();
    if (self.id() == 0) {
      // Run migration passes to completion; a pass pauses on a full heap, so
      // iterate (each migration also frees its source slot).
      for (int i = 0; i < 64; ++i) {
        if (t->clean_shard_count(self) >= t->shard_count(self)) break;
        (void)t->compact(self);
      }
      if (t->clean_shard_count(self) < t->shard_count(self)) std::abort();
    }
    self.barrier();
    (void)t->clean_shard_count(self);  // pick up the advanced clean count
    self.barrier();
    const double post = measure(256);
    const double pre_max = self.allreduce_max(pre);
    const double post_max = self.allreduce_max(post);
    self.barrier();
    if (self.id() == 0) {
      out.shards = t->shard_count(self);
      out.ppl = post_max;
      out.precompact_ppl = pre_max;
    }
    self.barrier();
  });
  return out;
}

}  // namespace

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  const bool soak = []() {
    const char* s = std::getenv("GDI_SOAK");
    return s != nullptr && s[0] == '1';
  }();

  print_header("PR 8 -- hash-partitioned DHT: probe flatness + churn reclaim",
               soak ? "churn-soak lane (GDI_SOAK=1)" : "paper Sec. 5.7, partitioned");
  const int P = 4;
  const auto net = rma::NetParams::xc40();

  // --- (a) probe-cost contract at 1 / 4 / 26 shards -------------------------
  const ProbePoint p1 = probe_contract(P, net, 1);
  const ProbePoint p4 = probe_contract(P, net, 4);
  const ProbePoint p26 = probe_contract(P, net, 26);
  const double flatness = p26.ppl > 0 ? p1.ppl / p26.ppl : 0.0;

  // --- (b) churn stream with incremental compaction -------------------------
  work::ChurnConfig cc;
  cc.rounds = soak ? 24576 : (smoke_mode() ? 24 : 48);
  cc.inserts_per_round = soak ? 512 : 256;
  cc.erase_fraction = 0.5;
  cc.lookups_per_round = soak ? 512 : 256;
  cc.compact_budget = 128;
  cc.seed = 11;
  double reclaim = 0, churn_ppl = 0, churn_kops = 0;
  std::uint64_t wrong = 0, migrated = 0, churn_shards = 0, churn_clean = 0;
  {
    rma::Runtime rt(P, net);
    rt.run([&](rma::Rank& self) {
      dht::DhtConfig cfg;
      cfg.buckets_per_rank = soak ? 512u : 256u;
      cfg.entries_per_rank = soak ? 512u : 256u;
      cfg.salt = 53;
      cfg.max_shards = 16;
      auto t = dht::DistributedHashTable::create(self, cfg);
      const auto st = work::run_churn(self, *t, cc);
      const auto erases = self.allreduce_sum(st.erases);
      const auto reclaims = self.allreduce_sum(st.reclaimed);
      const auto lookups = self.allreduce_sum(st.lookups);
      const auto probes = self.allreduce_sum(st.probe_rounds);
      const auto bad = self.allreduce_sum(st.wrong);
      const auto mig = self.allreduce_sum(st.migrated);
      const auto ops = self.allreduce_sum(st.inserts + st.erases + st.lookups);
      const double ns = self.allreduce_max(st.sim_ns);
      self.barrier();
      if (self.id() == 0) {
        reclaim = erases ? static_cast<double>(reclaims) / static_cast<double>(erases) : 1.0;
        churn_ppl = lookups ? static_cast<double>(probes) / static_cast<double>(lookups) : 0.0;
        churn_kops = static_cast<double>(ops) / (ns * 1e-6);
        wrong = bad;
        migrated = mig;
        churn_shards = t->shard_count(self);
        churn_clean = t->clean_shard_count(self);
      }
      self.barrier();
    });
  }

  stats::Table table({"measurement", "s=1", "s=4", "s=26"});
  table.add_row({"probes/lookup (compacted)", stats::Table::fmt(p1.ppl, 3),
                 stats::Table::fmt(p4.ppl, 3), stats::Table::fmt(p26.ppl, 3)});
  table.add_row({"probes/lookup (pre-compact)", stats::Table::fmt(p1.precompact_ppl, 3),
                 stats::Table::fmt(p4.precompact_ppl, 3),
                 stats::Table::fmt(p26.precompact_ppl, 3)});
  std::cout << table.to_string() << "\n";
  stats::Table churn({"churn stream", "value"});
  churn.add_row({"reclaim fraction", stats::Table::fmt(reclaim, 3)});
  churn.add_row({"probes/lookup (mid-churn)", stats::Table::fmt(churn_ppl, 3)});
  churn.add_row({"throughput kops/s", stats::Table::fmt(churn_kops, 1)});
  churn.add_row({"entries migrated", std::to_string(migrated)});
  churn.add_row({"shards (clean/published)", std::to_string(churn_clean) + "/" +
                                                 std::to_string(churn_shards)});
  churn.add_row({"wrong lookups", std::to_string(wrong)});
  std::cout << churn.to_string();

  // Correctness is unconditional; the soak lane additionally pins the two
  // scaling properties the partition exists for.
  if (wrong != 0) {
    std::cerr << "FAIL: " << wrong << " lookups returned a missing/wrong value\n";
    return 1;
  }
  if (soak) {
    if (p1.ppl > 1.001 || p4.ppl > 1.001 || p26.ppl > 1.001) {
      std::cerr << "FAIL: compacted probe rounds per lookup not flat: s1="
                << p1.ppl << " s4=" << p4.ppl << " s26=" << p26.ppl << "\n";
      return 1;
    }
    if (reclaim < 0.9) {
      std::cerr << "FAIL: churn reclaimed only " << reclaim * 100
                << "% of freed capacity (need >= 90%)\n";
      return 1;
    }
  }

  std::cout << "\nJSON:\n{\n"
            << "  \"bench\": \"pr8_churn\",\n"
            << "  \"description\": \"hash-partitioned DHT: compacted probe "
               "flatness at 1/4/26 shards, churn-stream capacity reclaim\",\n"
            << "  \"net\": \"xc40\", \"ranks\": " << P
            << ", \"soak\": " << (soak ? "true" : "false")
            << ", \"churn_rounds\": " << cc.rounds << ",\n"
            << "  \"ppl_s1\": " << stats::Table::fmt(p1.ppl, 3)
            << ", \"ppl_s4\": " << stats::Table::fmt(p4.ppl, 3)
            << ", \"ppl_s26\": " << stats::Table::fmt(p26.ppl, 3)
            << ", \"precompact_ppl_s26\": " << stats::Table::fmt(p26.precompact_ppl, 3)
            << ", \"probe_flatness\": " << stats::Table::fmt(flatness, 3) << ",\n"
            << "  \"reclaim_frac\": " << stats::Table::fmt(reclaim, 3)
            << ", \"churn_ppl\": " << stats::Table::fmt(churn_ppl, 3)
            << ", \"churn_kops\": " << stats::Table::fmt(churn_kops, 1)
            << ", \"migrated\": " << migrated
            << ", \"churn_shards\": " << churn_shards
            << ", \"churn_clean\": " << churn_clean << "\n"
            << "}\n"
            << "\nExpected shape: compacted probes/lookup == 1.000 in every\n"
               "column (the PR 3 table scaled linearly in shard count), and the\n"
               "churn stream's reclaim fraction approaches 1 as freed slots are\n"
               "recycled by the cross-shard spill allocator.\n";
  return 0;
}
