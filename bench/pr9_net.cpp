// PR 9 perf snapshot: the socket front end (src/net/).
//
// Three measurements, all on one rank with real loopback TCP clients (the
// listener and the scheduler share the rank thread, as in production):
//
//  * wire serving: T socket tenants push mixed open-window request streams
//    (70% reads) through the CRC-framed protocol into the shared scheduler.
//    Reported: wall-clock wire throughput (informational -- kernel timing,
//    not the simulated clock) and the committed fraction, which must be 1.0:
//    every request admitted over the wire is answered exactly once.
//
//  * backpressure isolation: one tenant sends its full credit window and
//    then refuses to read replies while the other tenants stream normally.
//    The slow reader's backlog is bounded by its window, and the gated
//    metric is the *other* tenants' completed fraction -- 1.0 means a slow
//    reader throttles only itself, never the rank thread or its neighbours.
//
//  * connection churn: every client runs with seeded fault injection
//    (corrupt/truncate/stall/disconnect/reorder) and reconnect-replay. The
//    gated metric is again the completed fraction after exactly-once
//    resumption -- 1.0 means no committed work was lost or double-applied
//    under churn (the byte-identical oracle lives in tests/test_net.cpp).
//
// The gated metrics are completion fractions rather than wall-clock rates:
// loopback timing varies across CI machines, but "everything admitted gets
// answered exactly once" must not. Emits a paper-style table plus a JSON
// blob (committed as BENCH_pr9.json).
#include <atomic>
#include <chrono>
#include <thread>

#include "harness.hpp"
#include "net/client.hpp"
#include "net/listener.hpp"
#include "rma/fault.hpp"

namespace {

using namespace gdi;
using namespace gdi::bench;

constexpr std::uint64_t kToken = 0x9dbadf00d1ceULL;

struct NetBenchEnv {
  std::shared_ptr<Database> db;
  std::uint32_t pt = 0;
  net::Listener* L = nullptr;
  std::uint16_t port = 0;
};

NetBenchEnv setup_net(rma::Rank& self, std::uint64_t n_vertices,
                      std::uint32_t credits) {
  DatabaseConfig c;
  c.block.block_size = 512;
  c.block.blocks_per_rank = n_vertices * 2 + 8192;
  c.dht.entries_per_rank = n_vertices * 2 + 4096;
  c.dht.buckets_per_rank = (n_vertices * 2 + 4096) / 8;
  c.commit_pipeline = true;
  c.server = true;
  c.net_listen = true;
  c.net_auth_token = kToken;
  c.net_credits = credits;
  NetBenchEnv env;
  env.db = Database::create(self, c);
  PropertyType pd{.name = "val", .dtype = Datatype::kInt64};
  env.pt = *env.db->create_ptype(self, pd);
  for (std::uint64_t id = 0; id < n_vertices; ++id) {
    Transaction txn(env.db, self, TxnMode::kWrite);
    auto vh = txn.create_vertex(id);
    if (vh.ok()) (void)txn.update_property(*vh, env.pt, PropValue{std::int64_t{1}});
    (void)txn.commit();
  }
  env.L = env.db->listener(self);
  (void)env.L->start();
  env.port = env.L->port();
  return env;
}

std::vector<server::Request> make_stream(int tenant, std::uint64_t n,
                                         std::uint64_t keys, std::uint32_t pt) {
  std::vector<server::Request> reqs;
  reqs.reserve(n);
  std::uint64_t state = 0x9e3779b9u + static_cast<std::uint64_t>(tenant);
  for (std::uint64_t k = 0; k < n; ++k) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    server::Request r;
    r.op = (state >> 33) % 10 < 7 ? server::OpKind::kGetProps
                                  : server::OpKind::kUpdateProp;
    r.a = (state >> 17) % keys;
    r.ptype = pt;
    r.value = static_cast<std::int64_t>(k);
    r.client_tag = k + 1;
    reqs.push_back(r);
  }
  return reqs;
}

net::ClientConfig client_cfg(const NetBenchEnv& env, int tenant) {
  net::ClientConfig cc;
  cc.port = env.port;
  cc.auth_token = kToken;
  cc.tenant_id = 1 + static_cast<std::uint64_t>(tenant);
  cc.io_timeout_ms = 2000;
  return cc;
}

}  // namespace

int main() {
  print_header("PR 9 -- socket front end: wire serving, backpressure isolation, churn",
               "transport robustness over the PR 7 scheduler");
  const int tenants = 4;
  const std::uint64_t keys = 256;
  const std::uint64_t per_tenant = bench_queries(4000);

  // -------------------------------------------------------------------------
  // Section 1: wire serving throughput + committed fraction
  // -------------------------------------------------------------------------
  double wire_kqps = 0, committed_frac = 0;
  std::uint64_t frames_rx = 0, frames_tx = 0;
  {
    rma::Runtime rt(1);
    rt.run([&](rma::Rank& self) {
      auto env = setup_net(self, keys, 32);
      std::vector<net::StreamResult> res(tenants);
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> cls;
      for (int t = 0; t < tenants; ++t)
        cls.emplace_back([&, t] {
          res[static_cast<std::size_t>(t)] = net::NetClient(client_cfg(env, t))
                                                 .run_stream(make_stream(
                                                     t, per_tenant, keys, env.pt));
        });
      std::thread stopper([&] {
        for (auto& c : cls) c.join();
        env.L->request_stop();
      });
      env.L->serve(env.db, self);
      stopper.join();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      std::uint64_t completed = 0;
      for (const auto& r : res) completed += r.completed;
      wire_kqps = completed / secs / 1e3;
      committed_frac = static_cast<double>(completed) /
                       static_cast<double>(tenants * per_tenant);
      frames_rx = self.counters().net_frames_rx;
      frames_tx = self.counters().net_frames_tx;
    });
  }

  // -------------------------------------------------------------------------
  // Section 2: backpressure isolation (one slow reader)
  // -------------------------------------------------------------------------
  double isolation_frac = 0;
  std::size_t slow_peak_buffered = 0;
  std::uint64_t stalls = 0;
  {
    rma::Runtime rt(1);
    rt.run([&](rma::Rank& self) {
      const std::uint32_t credits = 16;
      auto env = setup_net(self, keys, credits);
      std::vector<net::StreamResult> res(tenants);
      std::atomic<bool> fast_done{false};
      std::thread slow([&] {
        net::NetClient cl(client_cfg(env, 0));
        if (cl.connect_handshake() != Status::kOk) return;
        auto reqs = make_stream(0, credits, keys, env.pt);
        for (const auto& r : reqs) (void)cl.send_request(r);
        while (!fast_done.load())
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::vector<server::Reply> reps;
        for (int i = 0; i < 20 && reps.size() < credits; ++i)
          (void)cl.poll_frames(&reps, 100);
        cl.finish();
      });
      std::vector<std::thread> cls;
      for (int t = 1; t < tenants; ++t)
        cls.emplace_back([&, t] {
          res[static_cast<std::size_t>(t)] = net::NetClient(client_cfg(env, t))
                                                 .run_stream(make_stream(
                                                     t, per_tenant, keys, env.pt));
        });
      std::thread stopper([&] {
        for (auto& c : cls) c.join();
        fast_done.store(true);
        slow.join();
        env.L->request_stop();
      });
      while (!env.L->stop_requested()) {
        (void)env.L->poll_once(env.db, self, 1);
        slow_peak_buffered = std::max(slow_peak_buffered, env.L->buffered_bytes());
      }
      env.L->serve(env.db, self);
      stopper.join();
      std::uint64_t completed = 0;
      for (int t = 1; t < tenants; ++t)
        completed += res[static_cast<std::size_t>(t)].completed;
      isolation_frac = static_cast<double>(completed) /
                       static_cast<double>((tenants - 1) * per_tenant);
      stalls = self.counters().net_backpressure_stalls;
    });
  }

  // -------------------------------------------------------------------------
  // Section 3: connection churn with seeded faults
  // -------------------------------------------------------------------------
  double churn_frac = 0;
  std::uint64_t reconnects = 0, bad_frames = 0, disconnects = 0;
  {
    rma::Runtime rt(1);
    rt.run([&](rma::Rank& self) {
      auto env = setup_net(self, keys, 8);
      const std::uint64_t churn_n = std::min<std::uint64_t>(per_tenant, 800);
      std::vector<net::StreamResult> res(tenants);
      std::vector<std::thread> cls;
      for (int t = 0; t < tenants; ++t)
        cls.emplace_back([&, t] {
          net::ClientConfig cc = client_cfg(env, t);
          cc.fault.seed = rma::fault_stream(rma::fault_seed_env(),
                                            rma::FaultLayer::kNetClient,
                                            static_cast<std::uint64_t>(t));
          cc.fault.corrupt_p = 0.01;
          cc.fault.truncate_p = 0.01;
          cc.fault.disconnect_p = 0.02;
          cc.fault.reorder_p = 0.03;
          cc.io_timeout_ms = 300;
          res[static_cast<std::size_t>(t)] =
              net::NetClient(cc).run_stream(make_stream(t, churn_n, keys, env.pt));
        });
      std::thread stopper([&] {
        for (auto& c : cls) c.join();
        env.L->request_stop();
      });
      env.L->serve(env.db, self);
      stopper.join();
      std::uint64_t completed = 0;
      for (const auto& r : res) {
        completed += r.completed;
        reconnects += r.reconnects;
      }
      churn_frac = static_cast<double>(completed) /
                   static_cast<double>(tenants * churn_n);
      bad_frames = self.counters().net_bad_frames;
      disconnects = self.counters().net_disconnects;
    });
  }

  stats::Table t({"measurement", "value"});
  t.add_row({"wire throughput kq/s (wall)", stats::Table::fmt(wire_kqps, 1)});
  t.add_row({"committed fraction", stats::Table::fmt(committed_frac, 4)});
  t.add_row({"frames rx/tx", std::to_string(frames_rx) + "/" + std::to_string(frames_tx)});
  t.add_row({"isolation fraction (slow reader)", stats::Table::fmt(isolation_frac, 4)});
  t.add_row({"slow-reader peak buffer B", std::to_string(slow_peak_buffered)});
  t.add_row({"backpressure stalls", std::to_string(stalls)});
  t.add_row({"churn committed fraction", stats::Table::fmt(churn_frac, 4)});
  t.add_row({"churn reconnects", std::to_string(reconnects)});
  t.add_row({"churn bad frames / drops",
             std::to_string(bad_frames) + "/" + std::to_string(disconnects)});
  std::cout << t.to_string();

  std::cout << "\nJSON:\n{\n"
            << "  \"bench\": \"pr9_net\",\n"
            << "  \"description\": \"socket front end: wire serving, slow-reader "
               "isolation, churn with seeded faults\",\n"
            << "  \"ranks\": 1, \"tenants\": " << tenants
            << ", \"per_tenant\": " << per_tenant << ",\n"
            << "  \"wire_kqps\": " << stats::Table::fmt(wire_kqps, 1)
            << ", \"committed_frac\": " << stats::Table::fmt(committed_frac, 4)
            << ", \"isolation_frac\": " << stats::Table::fmt(isolation_frac, 4)
            << ", \"churn_committed_frac\": " << stats::Table::fmt(churn_frac, 4)
            << ",\n  \"slow_peak_buffered\": " << slow_peak_buffered
            << ", \"reconnects\": " << reconnects
            << ", \"bad_frames\": " << bad_frames << "\n"
            << "}\n"
            << "\nExpected shape: every completed fraction is 1.0000 -- the\n"
               "transport never loses admitted work, a slow reader only stalls\n"
               "itself (its backlog is bounded by its credit window), and the\n"
               "churn stream completes exactly-once through reconnect-replay.\n";
  return (committed_frac == 1.0 && isolation_frac == 1.0 && churn_frac == 1.0)
             ? 0
             : 1;
}
