// Section 6.6: sensitivity to label/property richness and edge factor.
// Graphs with few labels/properties are dominated by single-block reads;
// richer decoration makes holders span more blocks (more communication per
// access). GDA's advantage must persist across the sweep.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("Section 6.6 -- varying labels, properties, and edge factor",
               "paper Sec. 6.6");
  constexpr int P = 4;

  stats::Table table({"labels/v", "props/v", "edge factor", "heavy", "Mqueries/s (RM)",
                      "bytes/query", "blocks used"});
  struct Point {
    std::uint32_t labels, props;
    int ef;
    double heavy;
  };
  const std::vector<Point> sweep{
      {0, 0, 16, 0.0}, {1, 1, 16, 0.0}, {2, 4, 16, 0.0}, {4, 8, 16, 0.0},
      {8, 13, 16, 0.0}, {2, 4, 8, 0.0}, {2, 4, 32, 0.0},
      {2, 4, 16, 0.25},  // quarter of the edges heavy (own holders)
  };
  for (const auto& pt : sweep) {
    rma::Runtime rt(P, rma::NetParams::xc50());
    rt.run([&](rma::Rank& self) {
      SetupOpts o;
      o.scale = 10;
      o.edge_factor = pt.ef;
      o.labels_per_vertex = pt.labels;
      o.props_per_vertex = pt.props;
      o.num_labels = std::max<std::uint32_t>(pt.labels, 1);
      o.num_ptypes = std::max<std::uint32_t>(pt.props, 1);
      o.heavy_edge_fraction = pt.heavy;
      auto env = setup_db(self, o);
      work::OltpConfig cfg;
      cfg.queries_per_rank = 1500;
      cfg.existing_ids = env.n;
      cfg.label_for_new = env.label_ids.empty() ? 0 : env.label_ids[0];
      cfg.ptype_for_update = env.ptype_ids.empty() ? 0 : env.ptype_ids[0];
      self.reset_counters();
      auto res = work::run_oltp(env.db, self, work::OpMix::read_mostly(), cfg);
      const double bytes = static_cast<double>(self.counters().bytes_get +
                                               self.counters().bytes_put);
      const std::uint64_t blocks =
          self.allreduce_sum(env.db->blocks().allocated_count(
              self, static_cast<std::uint32_t>(self.id())));
      if (self.id() == 0)
        table.add_row({std::to_string(pt.labels), std::to_string(pt.props),
                       std::to_string(pt.ef), stats::Table::fmt(pt.heavy, 2),
                       fmt_mqps(res.throughput_qps),
                       stats::Table::fmt(bytes / double(cfg.queries_per_rank), 0),
                       stats::Table::fmt_si(double(blocks), 2)});
      self.barrier();
    });
  }
  std::cout << table.to_string();
  std::cout << "\nExpected shape (paper): richer labels/properties -> larger holders\n"
               "-> more bytes per access and somewhat lower throughput, but the\n"
               "same qualitative behaviour across all configurations.\n";
  return 0;
}
