// Table 1 (this-work row): the largest configuration this reproduction runs,
// summarizing achieved scale the way the paper's comparison table does --
// ranks ("cores"), dataset size in memory, |E|, |V|, and workload coverage.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("Table 1 -- achieved-scale summary (this reproduction)",
               "paper Table 1, 'This work' row");
  constexpr int P = 8;
  constexpr int kScale = 14;

  rma::Runtime rt(P, rma::NetParams::xc50());
  stats::Table table({"metric", "value"});
  rt.run([&](rma::Rank& self) {
    SetupOpts o;
    o.scale = kScale;
    o.edge_factor = 16;
    auto env = setup_db(self, o);

    // Exercise one workload from each class at full scale.
    work::OltpConfig cfg;
    cfg.queries_per_rank = 500;
    cfg.existing_ids = env.n;
    cfg.label_for_new = env.label_ids[0];
    cfg.ptype_for_update = env.ptype_ids[0];
    auto oltp = work::run_oltp(env.db, self, work::OpMix::read_mostly(), cfg);
    auto bfs = work::bfs(env.db, self, env.n, 0);
    work::Bi2Params bp;
    bp.person_label = env.label_ids[0];
    bp.age_ptype = env.ptype_ids[0];
    bp.age_threshold = 500;
    bp.own_edge_label = env.label_ids[1];
    bp.car_label = env.label_ids[2];
    bp.color_ptype = env.ptype_ids[1];
    bp.color_value = 7;
    auto bi = work::bi2_count(env.db, self, *env.label_index, bp);

    const std::uint64_t blocks =
        self.allreduce_sum(env.db->blocks().allocated_count(
            self, static_cast<std::uint32_t>(self.id())));
    if (self.id() == 0) {
      table.add_row({"ranks (threads as 'cores')", std::to_string(P)});
      table.add_row({"|V|", stats::Table::fmt_si(double(env.n), 2)});
      table.add_row({"|E| (directed)", stats::Table::fmt_si(double(env.m), 2)});
      table.add_row({"labels / property types", "20 / 13"});
      table.add_row(
          {"in-memory size",
           stats::Table::fmt_si(double(blocks) * double(o.block_size), 2) + "B"});
      table.add_row({"OLTP RM throughput", fmt_mqps(oltp.throughput_qps) + " Mq/s"});
      table.add_row({"OLAP BFS runtime", fmt_s(bfs.sim_time_ns) + " s"});
      table.add_row({"OLSP BI2 runtime", fmt_s(bi.sim_time_ns) + " s"});
      table.add_row({"workloads", "OLTP + OLAP + OLSP + BULK (all supported)"});
    }
    self.barrier();
  });
  std::cout << table.to_string();
  std::cout << "\nPaper's row: 7,142 servers / 121,680 cores / 549.8B edges; this\n"
               "reproduction keeps the full workload coverage at laptop scale.\n";
  return 0;
}
