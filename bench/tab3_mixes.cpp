// Table 3: the four OLTP operation mixes -- prints the exact fractions and
// runs each mix at a fixed configuration, validating that the sampled
// operation frequencies converge to the specification.
#include "harness.hpp"

int main() {
  using namespace gdi;
  using namespace gdi::bench;

  print_header("Table 3 -- OLTP workload mixes (RM / RI / WI / LB)",
               "paper Table 3");

  stats::Table spec({"operation", "Read Mostly", "Read Intensive",
                     "Write Intensive", "LinkBench"});
  const auto mixes = {work::OpMix::read_mostly(), work::OpMix::read_intensive(),
                      work::OpMix::write_intensive(), work::OpMix::linkbench()};
  for (int op = 0; op < work::kNumOltpOps; ++op) {
    std::vector<std::string> row{work::oltp_op_name(static_cast<work::OltpOp>(op))};
    for (const auto& mix : mixes)
      row.push_back(fmt_pct(mix.weights[static_cast<std::size_t>(op)]));
    spec.add_row(row);
  }
  std::cout << spec.to_string() << "\n";

  stats::Table run({"mix", "Mqueries/s", "failed", "sampled op counts (observed)"});
  rma::Runtime rt(4, rma::NetParams::xc50());
  rt.run([&](rma::Rank& self) {
    SetupOpts o;
    o.scale = 10;
    auto env = setup_db(self, o);
    for (const auto& mix : mixes) {
      work::OltpConfig cfg;
      cfg.queries_per_rank = 2000;
      cfg.existing_ids = env.n;
      cfg.label_for_new = env.label_ids[0];
      cfg.ptype_for_update = env.ptype_ids[0];
      auto res = work::run_oltp(env.db, self, mix, cfg);
      if (self.id() == 0) {
        std::string counts;
        for (int op = 0; op < work::kNumOltpOps; ++op) {
          counts += std::to_string(res.latency[static_cast<std::size_t>(op)].total());
          if (op + 1 < work::kNumOltpOps) counts += "/";
        }
        run.add_row({mix.name, fmt_mqps(res.throughput_qps),
                     fmt_pct(res.failed_fraction()), counts});
      }
      self.barrier();
    }
  });
  std::cout << run.to_string();
  std::cout << "\nObserved op counts (per rank 0) must track the specified\n"
               "fractions; read-dominated mixes give the highest throughput.\n";
  return 0;
}
