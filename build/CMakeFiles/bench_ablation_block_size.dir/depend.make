# Empty dependencies file for bench_ablation_block_size.
# This may be replaced when dependencies are built.
