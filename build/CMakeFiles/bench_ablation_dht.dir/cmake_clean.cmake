file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dht.dir/bench/ablation_dht.cpp.o"
  "CMakeFiles/bench_ablation_dht.dir/bench/ablation_dht.cpp.o.d"
  "bench_ablation_dht"
  "bench_ablation_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
