# Empty dependencies file for bench_ablation_dht.
# This may be replaced when dependencies are built.
