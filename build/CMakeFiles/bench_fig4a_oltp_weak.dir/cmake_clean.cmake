file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a_oltp_weak.dir/bench/fig4a_oltp_weak.cpp.o"
  "CMakeFiles/bench_fig4a_oltp_weak.dir/bench/fig4a_oltp_weak.cpp.o.d"
  "bench_fig4a_oltp_weak"
  "bench_fig4a_oltp_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_oltp_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
