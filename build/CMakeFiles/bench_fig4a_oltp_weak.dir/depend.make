# Empty dependencies file for bench_fig4a_oltp_weak.
# This may be replaced when dependencies are built.
