file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_oltp_strong.dir/bench/fig4b_oltp_strong.cpp.o"
  "CMakeFiles/bench_fig4b_oltp_strong.dir/bench/fig4b_oltp_strong.cpp.o.d"
  "bench_fig4b_oltp_strong"
  "bench_fig4b_oltp_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_oltp_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
