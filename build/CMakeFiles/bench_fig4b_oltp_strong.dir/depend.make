# Empty dependencies file for bench_fig4b_oltp_strong.
# This may be replaced when dependencies are built.
