file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4c_oltp_weak_write.dir/bench/fig4c_oltp_weak_write.cpp.o"
  "CMakeFiles/bench_fig4c_oltp_weak_write.dir/bench/fig4c_oltp_weak_write.cpp.o.d"
  "bench_fig4c_oltp_weak_write"
  "bench_fig4c_oltp_weak_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4c_oltp_weak_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
