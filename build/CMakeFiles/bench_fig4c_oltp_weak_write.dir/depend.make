# Empty dependencies file for bench_fig4c_oltp_weak_write.
# This may be replaced when dependencies are built.
