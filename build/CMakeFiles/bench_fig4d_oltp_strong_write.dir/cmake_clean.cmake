file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4d_oltp_strong_write.dir/bench/fig4d_oltp_strong_write.cpp.o"
  "CMakeFiles/bench_fig4d_oltp_strong_write.dir/bench/fig4d_oltp_strong_write.cpp.o.d"
  "bench_fig4d_oltp_strong_write"
  "bench_fig4d_oltp_strong_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4d_oltp_strong_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
