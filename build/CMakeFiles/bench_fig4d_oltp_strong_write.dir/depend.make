# Empty dependencies file for bench_fig4d_oltp_strong_write.
# This may be replaced when dependencies are built.
