file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_latency_hist.dir/bench/fig5_latency_hist.cpp.o"
  "CMakeFiles/bench_fig5_latency_hist.dir/bench/fig5_latency_hist.cpp.o.d"
  "bench_fig5_latency_hist"
  "bench_fig5_latency_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_latency_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
