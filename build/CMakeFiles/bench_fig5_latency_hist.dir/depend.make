# Empty dependencies file for bench_fig5_latency_hist.
# This may be replaced when dependencies are built.
