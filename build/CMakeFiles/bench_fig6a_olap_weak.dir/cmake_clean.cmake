file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_olap_weak.dir/bench/fig6a_olap_weak.cpp.o"
  "CMakeFiles/bench_fig6a_olap_weak.dir/bench/fig6a_olap_weak.cpp.o.d"
  "bench_fig6a_olap_weak"
  "bench_fig6a_olap_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_olap_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
