# Empty dependencies file for bench_fig6a_olap_weak.
# This may be replaced when dependencies are built.
