# Empty dependencies file for bench_fig6b_olap_strong.
# This may be replaced when dependencies are built.
