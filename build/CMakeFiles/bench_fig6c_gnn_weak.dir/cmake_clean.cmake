file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6c_gnn_weak.dir/bench/fig6c_gnn_weak.cpp.o"
  "CMakeFiles/bench_fig6c_gnn_weak.dir/bench/fig6c_gnn_weak.cpp.o.d"
  "bench_fig6c_gnn_weak"
  "bench_fig6c_gnn_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c_gnn_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
