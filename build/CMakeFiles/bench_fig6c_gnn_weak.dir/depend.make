# Empty dependencies file for bench_fig6c_gnn_weak.
# This may be replaced when dependencies are built.
