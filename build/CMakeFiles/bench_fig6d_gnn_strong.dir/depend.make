# Empty dependencies file for bench_fig6d_gnn_strong.
# This may be replaced when dependencies are built.
