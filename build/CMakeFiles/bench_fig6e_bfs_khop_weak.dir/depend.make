# Empty dependencies file for bench_fig6e_bfs_khop_weak.
# This may be replaced when dependencies are built.
