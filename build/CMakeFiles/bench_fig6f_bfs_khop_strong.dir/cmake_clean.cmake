file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6f_bfs_khop_strong.dir/bench/fig6f_bfs_khop_strong.cpp.o"
  "CMakeFiles/bench_fig6f_bfs_khop_strong.dir/bench/fig6f_bfs_khop_strong.cpp.o.d"
  "bench_fig6f_bfs_khop_strong"
  "bench_fig6f_bfs_khop_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6f_bfs_khop_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
