# Empty dependencies file for bench_fig6f_bfs_khop_strong.
# This may be replaced when dependencies are built.
