file(REMOVE_RECURSE
  "CMakeFiles/bench_pr1_batched_vs_baseline.dir/bench/pr1_batched_vs_baseline.cpp.o"
  "CMakeFiles/bench_pr1_batched_vs_baseline.dir/bench/pr1_batched_vs_baseline.cpp.o.d"
  "bench_pr1_batched_vs_baseline"
  "bench_pr1_batched_vs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pr1_batched_vs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
