# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_pr1_batched_vs_baseline.
