# Empty dependencies file for bench_pr1_batched_vs_baseline.
# This may be replaced when dependencies are built.
