file(REMOVE_RECURSE
  "CMakeFiles/bench_sec66_labels_props.dir/bench/sec66_labels_props.cpp.o"
  "CMakeFiles/bench_sec66_labels_props.dir/bench/sec66_labels_props.cpp.o.d"
  "bench_sec66_labels_props"
  "bench_sec66_labels_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec66_labels_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
