# Empty dependencies file for bench_sec66_labels_props.
# This may be replaced when dependencies are built.
