file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_scale_summary.dir/bench/tab1_scale_summary.cpp.o"
  "CMakeFiles/bench_tab1_scale_summary.dir/bench/tab1_scale_summary.cpp.o.d"
  "bench_tab1_scale_summary"
  "bench_tab1_scale_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_scale_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
