# Empty dependencies file for bench_tab1_scale_summary.
# This may be replaced when dependencies are built.
