file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_mixes.dir/bench/tab3_mixes.cpp.o"
  "CMakeFiles/bench_tab3_mixes.dir/bench/tab3_mixes.cpp.o.d"
  "bench_tab3_mixes"
  "bench_tab3_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
