# Empty dependencies file for bench_tab3_mixes.
# This may be replaced when dependencies are built.
