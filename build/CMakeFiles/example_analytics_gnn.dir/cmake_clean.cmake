file(REMOVE_RECURSE
  "CMakeFiles/example_analytics_gnn.dir/examples/analytics_gnn.cpp.o"
  "CMakeFiles/example_analytics_gnn.dir/examples/analytics_gnn.cpp.o.d"
  "example_analytics_gnn"
  "example_analytics_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_analytics_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
