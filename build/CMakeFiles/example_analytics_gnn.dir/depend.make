# Empty dependencies file for example_analytics_gnn.
# This may be replaced when dependencies are built.
