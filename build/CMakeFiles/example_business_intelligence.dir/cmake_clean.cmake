file(REMOVE_RECURSE
  "CMakeFiles/example_business_intelligence.dir/examples/business_intelligence.cpp.o"
  "CMakeFiles/example_business_intelligence.dir/examples/business_intelligence.cpp.o.d"
  "example_business_intelligence"
  "example_business_intelligence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_business_intelligence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
