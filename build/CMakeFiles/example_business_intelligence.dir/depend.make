# Empty dependencies file for example_business_intelligence.
# This may be replaced when dependencies are built.
