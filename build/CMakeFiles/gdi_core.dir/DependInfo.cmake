
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/rpc_store.cpp" "CMakeFiles/gdi_core.dir/src/baseline/rpc_store.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/baseline/rpc_store.cpp.o.d"
  "/root/repo/src/block/block_store.cpp" "CMakeFiles/gdi_core.dir/src/block/block_store.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/block/block_store.cpp.o.d"
  "/root/repo/src/dht/dht.cpp" "CMakeFiles/gdi_core.dir/src/dht/dht.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/dht/dht.cpp.o.d"
  "/root/repo/src/gdi/bulk.cpp" "CMakeFiles/gdi_core.dir/src/gdi/bulk.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/gdi/bulk.cpp.o.d"
  "/root/repo/src/gdi/constraint.cpp" "CMakeFiles/gdi_core.dir/src/gdi/constraint.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/gdi/constraint.cpp.o.d"
  "/root/repo/src/gdi/database.cpp" "CMakeFiles/gdi_core.dir/src/gdi/database.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/gdi/database.cpp.o.d"
  "/root/repo/src/gdi/metadata.cpp" "CMakeFiles/gdi_core.dir/src/gdi/metadata.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/gdi/metadata.cpp.o.d"
  "/root/repo/src/gdi/transaction.cpp" "CMakeFiles/gdi_core.dir/src/gdi/transaction.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/gdi/transaction.cpp.o.d"
  "/root/repo/src/generator/kronecker.cpp" "CMakeFiles/gdi_core.dir/src/generator/kronecker.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/generator/kronecker.cpp.o.d"
  "/root/repo/src/layout/holder.cpp" "CMakeFiles/gdi_core.dir/src/layout/holder.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/layout/holder.cpp.o.d"
  "/root/repo/src/rma/runtime.cpp" "CMakeFiles/gdi_core.dir/src/rma/runtime.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/rma/runtime.cpp.o.d"
  "/root/repo/src/stats/stats.cpp" "CMakeFiles/gdi_core.dir/src/stats/stats.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/stats/stats.cpp.o.d"
  "/root/repo/src/workloads/bi.cpp" "CMakeFiles/gdi_core.dir/src/workloads/bi.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/workloads/bi.cpp.o.d"
  "/root/repo/src/workloads/gnn.cpp" "CMakeFiles/gdi_core.dir/src/workloads/gnn.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/workloads/gnn.cpp.o.d"
  "/root/repo/src/workloads/graph500.cpp" "CMakeFiles/gdi_core.dir/src/workloads/graph500.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/workloads/graph500.cpp.o.d"
  "/root/repo/src/workloads/olap.cpp" "CMakeFiles/gdi_core.dir/src/workloads/olap.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/workloads/olap.cpp.o.d"
  "/root/repo/src/workloads/oltp.cpp" "CMakeFiles/gdi_core.dir/src/workloads/oltp.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/workloads/oltp.cpp.o.d"
  "/root/repo/src/workloads/reference.cpp" "CMakeFiles/gdi_core.dir/src/workloads/reference.cpp.o" "gcc" "CMakeFiles/gdi_core.dir/src/workloads/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
