file(REMOVE_RECURSE
  "libgdi_core.a"
)
