# Empty dependencies file for gdi_core.
# This may be replaced when dependencies are built.
