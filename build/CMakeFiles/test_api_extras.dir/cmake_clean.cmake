file(REMOVE_RECURSE
  "CMakeFiles/test_api_extras.dir/tests/test_api_extras.cpp.o"
  "CMakeFiles/test_api_extras.dir/tests/test_api_extras.cpp.o.d"
  "test_api_extras"
  "test_api_extras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
