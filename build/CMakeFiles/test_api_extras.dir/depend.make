# Empty dependencies file for test_api_extras.
# This may be replaced when dependencies are built.
