file(REMOVE_RECURSE
  "CMakeFiles/test_batched_rma.dir/tests/test_batched_rma.cpp.o"
  "CMakeFiles/test_batched_rma.dir/tests/test_batched_rma.cpp.o.d"
  "test_batched_rma"
  "test_batched_rma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched_rma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
