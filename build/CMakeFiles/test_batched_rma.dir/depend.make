# Empty dependencies file for test_batched_rma.
# This may be replaced when dependencies are built.
