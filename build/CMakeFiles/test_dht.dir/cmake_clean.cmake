file(REMOVE_RECURSE
  "CMakeFiles/test_dht.dir/tests/test_dht.cpp.o"
  "CMakeFiles/test_dht.dir/tests/test_dht.cpp.o.d"
  "test_dht"
  "test_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
