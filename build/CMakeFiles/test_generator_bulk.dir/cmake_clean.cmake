file(REMOVE_RECURSE
  "CMakeFiles/test_generator_bulk.dir/tests/test_generator_bulk.cpp.o"
  "CMakeFiles/test_generator_bulk.dir/tests/test_generator_bulk.cpp.o.d"
  "test_generator_bulk"
  "test_generator_bulk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generator_bulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
