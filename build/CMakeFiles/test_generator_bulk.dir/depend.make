# Empty dependencies file for test_generator_bulk.
# This may be replaced when dependencies are built.
