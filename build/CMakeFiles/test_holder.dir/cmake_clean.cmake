file(REMOVE_RECURSE
  "CMakeFiles/test_holder.dir/tests/test_holder.cpp.o"
  "CMakeFiles/test_holder.dir/tests/test_holder.cpp.o.d"
  "test_holder"
  "test_holder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_holder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
