# Empty dependencies file for test_holder.
# This may be replaced when dependencies are built.
