file(REMOVE_RECURSE
  "CMakeFiles/test_metadata.dir/tests/test_metadata.cpp.o"
  "CMakeFiles/test_metadata.dir/tests/test_metadata.cpp.o.d"
  "test_metadata"
  "test_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
