file(REMOVE_RECURSE
  "CMakeFiles/test_multidb.dir/tests/test_multidb.cpp.o"
  "CMakeFiles/test_multidb.dir/tests/test_multidb.cpp.o.d"
  "test_multidb"
  "test_multidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
