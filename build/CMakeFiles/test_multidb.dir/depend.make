# Empty dependencies file for test_multidb.
# This may be replaced when dependencies are built.
