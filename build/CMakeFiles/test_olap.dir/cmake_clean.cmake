file(REMOVE_RECURSE
  "CMakeFiles/test_olap.dir/tests/test_olap.cpp.o"
  "CMakeFiles/test_olap.dir/tests/test_olap.cpp.o.d"
  "test_olap"
  "test_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
