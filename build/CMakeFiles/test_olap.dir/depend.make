# Empty dependencies file for test_olap.
# This may be replaced when dependencies are built.
