file(REMOVE_RECURSE
  "CMakeFiles/test_oltp_baseline.dir/tests/test_oltp_baseline.cpp.o"
  "CMakeFiles/test_oltp_baseline.dir/tests/test_oltp_baseline.cpp.o.d"
  "test_oltp_baseline"
  "test_oltp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oltp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
