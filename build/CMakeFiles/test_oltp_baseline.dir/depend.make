# Empty dependencies file for test_oltp_baseline.
# This may be replaced when dependencies are built.
