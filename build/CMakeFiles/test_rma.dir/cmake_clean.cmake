file(REMOVE_RECURSE
  "CMakeFiles/test_rma.dir/tests/test_rma.cpp.o"
  "CMakeFiles/test_rma.dir/tests/test_rma.cpp.o.d"
  "test_rma"
  "test_rma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
