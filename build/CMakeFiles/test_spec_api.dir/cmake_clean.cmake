file(REMOVE_RECURSE
  "CMakeFiles/test_spec_api.dir/tests/test_spec_api.cpp.o"
  "CMakeFiles/test_spec_api.dir/tests/test_spec_api.cpp.o.d"
  "test_spec_api"
  "test_spec_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
