# Empty dependencies file for test_spec_api.
# This may be replaced when dependencies are built.
