// OLAP analytics with collective transactions (paper Listing 2, Section 4).
//
// Bulk loads a Kronecker LPG graph, then runs the OLAP suite the paper
// evaluates -- BFS, PageRank, WCC -- plus a graph-convolution GNN forward
// pass whose per-vertex feature vectors live in GDI *properties* and are
// updated through collective write transactions, exactly as Listing 2.
//
// Build & run:  ./build/examples/example_analytics_gnn
#include <iostream>

#include "gdi/gdi.hpp"
#include "generator/kronecker.hpp"
#include "workloads/gnn.hpp"
#include "workloads/olap.hpp"

int main() {
  using namespace gdi;
  rma::Runtime runtime(4, rma::NetParams::xc50());

  runtime.run([](rma::Rank& self) {
    // Database sized for a scale-9 Kronecker graph (512 vertices, ~8K edges).
    gen::LpgConfig g;
    g.scale = 9;
    g.edge_factor = 8;
    g.labels_per_vertex = 1;
    g.props_per_vertex = 0;
    DatabaseConfig cfg;
    cfg.block.block_size = 1024;
    cfg.block.blocks_per_rank = 1u << 14;
    cfg.dht.entries_per_rank = 1u << 12;
    auto db = Database::create(self, cfg);
    const std::uint32_t node = *db->create_label(self, "Node");
    PropertyType feat{.name = "feature_vec", .dtype = Datatype::kBytes};
    const std::uint32_t feature = *db->create_ptype(self, feat);

    // BULK ingestion (contribution #5 + Figure 2's bulk-load collectives).
    gen::KroneckerGenerator kg(g, {node}, {});
    const auto slice = kg.generate_local(self);
    BulkLoader loader(db, self);
    auto stats = loader.load(slice.vertices, slice.edges);
    if (self.id() == 0 && stats.ok())
      std::cout << "[load] " << g.num_vertices() << " vertices, "
                << g.num_edges() << " directed edges bulk loaded\n";

    const std::uint64_t n = g.num_vertices();

    // BFS from vertex 0 (collective transaction under the hood).
    auto bfs = work::bfs(db, self, n, 0);
    std::uint64_t reached = 0;
    for (auto l : bfs.values)
      if (l != work::kUnreached) ++reached;
    reached = self.allreduce_sum(reached);
    if (self.id() == 0)
      std::cout << "[bfs]  reached " << reached << "/" << n << " vertices in "
                << bfs.sim_time_ns / 1e6 << " ms (simulated)\n";

    // PageRank (paper parameters: 10 iterations, damping 0.85).
    auto pr = work::pagerank(db, self, n, 10, 0.85);
    double local_max = 0;
    std::uint64_t local_arg = 0;
    for (std::size_t i = 0; i < pr.values.size(); ++i) {
      if (pr.values[i] > local_max) {
        local_max = pr.values[i];
        local_arg = static_cast<std::uint64_t>(self.id()) +
                    static_cast<std::uint64_t>(i) * 4;
      }
    }
    const double global_max = self.allreduce_max(local_max);
    if (local_max == global_max)
      std::cout << "[pr]   hottest vertex " << local_arg << " rank value "
                << global_max << "\n";
    self.barrier();

    // WCC.
    auto wcc = work::wcc(db, self, n);
    std::uint64_t local_roots = 0;
    for (std::size_t i = 0; i < wcc.values.size(); ++i) {
      const std::uint64_t id = static_cast<std::uint64_t>(self.id()) +
                               static_cast<std::uint64_t>(i) * 4;
      if (wcc.values[i] == id) ++local_roots;
    }
    const std::uint64_t components = self.allreduce_sum(local_roots);
    if (self.id() == 0)
      std::cout << "[wcc]  " << components << " weakly connected components\n";

    // GNN: 2 graph-convolution layers, 16-dim features (Listing 2).
    work::GnnConfig gc{2, 16, 7};
    (void)work::gnn_init_features(db, self, n, feature, gc);
    auto gnn = work::gnn_forward(db, self, n, feature, gc);
    double norm = 0;
    for (const auto& f : gnn.values)
      for (float x : f) norm += static_cast<double>(x) * x;
    norm = self.allreduce_sum(norm);
    if (self.id() == 0)
      std::cout << "[gnn]  2-layer forward pass done, ||H||^2 = " << norm
                << ", " << gnn.sim_time_ns / 1e6 << " ms (simulated)\n";
    self.barrier();
  });
  return 0;
}
