// OLSP / business intelligence (paper Section 3.1's Cypher example and
// Listing 3):
//
//   MATCH (per:Person) WHERE per.age > 30
//     AND per-[:OWN]->vehicle(:Car) AND vehicle.color = red
//   RETURN count(per)
//
// Builds an explicit Person/Car dataset, creates an index over the Person
// label, and executes the query as a collective transaction: every rank
// scans its local index shard, filters on the age property, expands OWN
// edges through a constraint object, checks the Car label and color
// property, and the counts are combined with a global reduction.
//
// Build & run:  ./build/examples/example_business_intelligence
#include <iostream>

#include "gdi/gdi.hpp"

int main() {
  using namespace gdi;
  constexpr int kRanks = 4;
  constexpr std::uint64_t kPeople = 200;
  constexpr std::uint64_t kCarBase = 1000;
  rma::Runtime runtime(kRanks, rma::NetParams::xc50());

  runtime.run([](rma::Rank& self) {
    DatabaseConfig cfg;
    cfg.block.block_size = 512;
    cfg.block.blocks_per_rank = 1u << 13;
    cfg.dht.entries_per_rank = 1u << 11;
    auto db = Database::create(self, cfg);

    const std::uint32_t person = *db->create_label(self, "Person");
    const std::uint32_t car = *db->create_label(self, "Car");
    const std::uint32_t own = *db->create_label(self, "OWN");
    PropertyType age_def{.name = "age", .dtype = Datatype::kInt64};
    PropertyType color_def{.name = "color", .dtype = Datatype::kString};
    const std::uint32_t age = *db->create_ptype(self, age_def);
    const std::uint32_t color = *db->create_ptype(self, color_def);
    auto person_index = db->create_index(self, IndexDef{{person}, {}});

    // Each rank ingests the people it owns: deterministic ages, cars with
    // deterministic colors, OWN edges.
    {
      Transaction txn(db, self, TxnMode::kWrite, TxnScope::kCollective);
      const char* colors[] = {"red", "blue", "green"};
      for (std::uint64_t i = static_cast<std::uint64_t>(self.id()); i < kPeople;
           i += kRanks) {
        auto p = *txn.create_vertex(i);
        (void)txn.add_label(p, person);
        (void)txn.add_property(p, age, PropValue{static_cast<std::int64_t>(18 + i % 50)});
        if (i % 2 == 0) {  // half the people own a car
          auto c = *txn.create_vertex(kCarBase + i);
          (void)txn.add_label(c, car);
          (void)txn.add_property(c, color, PropValue{std::string(colors[i % 3])});
          (void)txn.create_edge(p, c, layout::Dir::kOut, own);
        }
      }
      if (txn.commit() != Status::kOk && self.id() == 0)
        std::cout << "[ingest] failed!\n";
    }

    // Listing 3: the collective BI query.
    std::uint64_t local_count = 0;
    {
      Transaction txn(db, self, TxnMode::kReadShared, TxnScope::kCollective);
      // Constraint "cnstr" with the label condition == OWN (Listing 3 l.9).
      const Constraint cnstr = Constraint::with_label(own);
      auto vIDs = txn.local_index_vertices(*person_index);
      for (DPtr pid : *vIDs) {
        auto vH = txn.associate_vertex(pid);
        if (!vH.ok()) continue;
        auto a = txn.get_properties(*vH, age);
        if (!a.ok() || a->empty() || std::get<std::int64_t>((*a)[0]) <= 30)
          continue;  // the condition is not met
        auto things = txn.neighbors_of(*vH, DirFilter::kOutgoing, &cnstr);
        for (DPtr oid : *things) {
          auto oH = txn.associate_vertex(oid);
          if (!oH.ok()) continue;
          auto labels = txn.labels_of(*oH);
          bool is_car = false;
          for (auto l : *labels) is_car |= (l == car);
          if (!is_car) continue;
          auto col = txn.get_properties(*oH, color);
          if (col.ok() && !col->empty() &&
              std::get<std::string>((*col)[0]) == "red") {
            ++local_count;
            break;
          }
        }
      }
      (void)txn.commit();
    }
    const std::uint64_t total = self.allreduce_sum(local_count);  // reduce()

    // Independent check: count directly from the construction rule.
    if (self.id() == 0) {
      std::uint64_t expect = 0;
      for (std::uint64_t i = 0; i < kPeople; ++i)
        if (18 + i % 50 > 30 && i % 2 == 0 && i % 3 == 0) ++expect;
      std::cout << "Persons over 30 driving a red car: " << total
                << " (expected " << expect << ")\n";
    }
    self.barrier();
  });
  return 0;
}
