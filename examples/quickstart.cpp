// Quickstart: the smallest end-to-end GDI program.
//
// Starts a 4-rank runtime, creates a database, registers metadata
// (collective), then rank 0 runs local transactions: create two vertices,
// label them, attach properties, connect them, and read everything back.
//
// Build & run:  ./build/examples/example_quickstart
#include <iostream>

#include "gdi/gdi.hpp"

int main() {
  using namespace gdi;
  rma::Runtime runtime(4, rma::NetParams::xc50());

  runtime.run([](rma::Rank& self) {
    // --- collective setup: database + metadata --------------------------------
    DatabaseConfig cfg;
    cfg.block.block_size = 512;
    cfg.block.blocks_per_rank = 1024;
    auto db = Database::create(self, cfg);

    const std::uint32_t person = *db->create_label(self, "Person");
    const std::uint32_t knows = *db->create_label(self, "KNOWS");
    PropertyType name_def{.name = "name", .dtype = Datatype::kString};
    PropertyType age_def{.name = "age", .dtype = Datatype::kInt64,
                         .mult = Multiplicity::kSingle};
    const std::uint32_t name = *db->create_ptype(self, name_def);
    const std::uint32_t age = *db->create_ptype(self, age_def);

    // --- rank 0: a local write transaction ------------------------------------
    if (self.id() == 0) {
      Transaction txn(db, self, TxnMode::kWrite);
      auto alice = *txn.create_vertex(/*app_id=*/1);
      auto bob = *txn.create_vertex(/*app_id=*/2);
      (void)txn.add_label(alice, person);
      (void)txn.add_label(bob, person);
      (void)txn.add_property(alice, name, PropValue{std::string("Alice")});
      (void)txn.add_property(alice, age, PropValue{std::int64_t{34}});
      (void)txn.add_property(bob, name, PropValue{std::string("Bob")});
      (void)txn.add_property(bob, age, PropValue{std::int64_t{28}});
      (void)txn.create_edge(alice, bob, layout::Dir::kUndirected, knows);
      const Status s = txn.commit();
      std::cout << "[rank 0] commit: " << to_string(s) << "\n";
    }
    self.barrier();

    // --- every rank: read transactions (the data is globally visible) ---------
    Transaction txn(db, self, TxnMode::kRead);
    auto alice = txn.find_vertex(1);
    if (alice.ok()) {
      auto nm = txn.get_properties(*alice, name);
      auto ag = txn.get_properties(*alice, age);
      auto friends = txn.neighbors_of(*alice, DirFilter::kUndirected);
      std::string fname = "?";
      if (friends.ok() && !friends->empty()) {
        auto fh = txn.associate_vertex((*friends)[0]);
        if (fh.ok()) {
          auto fn = txn.get_properties(*fh, name);
          if (fn.ok() && !fn->empty()) fname = std::get<std::string>((*fn)[0]);
        }
      }
      std::cout << "[rank " << self.id() << "] "
                << std::get<std::string>((*nm)[0]) << " (age "
                << std::get<std::int64_t>((*ag)[0]) << ") knows " << fname << "\n";
    }
    (void)txn.commit();
  });
  return 0;
}
