// Interactive OLTP on a social network (paper Listing 1).
//
// Builds a small social graph (people + FRIEND_OF edges + employers), then
// runs the paper's example interactive query on every rank: "retrieve the
// first and last name of all persons that a given person is friends with",
// implemented exactly as Listing 1 -- translate the application-level ID,
// associate a handle, iterate edges filtering on the FRIEND_OF label,
// collect the neighbors, and fetch their name properties.
//
// Build & run:  ./build/examples/example_social_network
#include <iostream>

#include "gdi/gdi.hpp"

namespace {

struct Schema {
  std::uint32_t person, company, friend_of, works_at;
  std::uint32_t fname, lname;
};

Schema make_schema(gdi::rma::Rank& self, const std::shared_ptr<gdi::Database>& db) {
  using namespace gdi;
  Schema s{};
  s.person = *db->create_label(self, "Person");
  s.company = *db->create_label(self, "Company");
  s.friend_of = *db->create_label(self, "FRIEND_OF");
  s.works_at = *db->create_label(self, "WORKS_AT");
  PropertyType f{.name = "fname", .dtype = Datatype::kString};
  PropertyType l{.name = "lname", .dtype = Datatype::kString};
  s.fname = *db->create_ptype(self, f);
  s.lname = *db->create_ptype(self, l);
  return s;
}

}  // namespace

int main() {
  using namespace gdi;
  rma::Runtime runtime(4, rma::NetParams::xc50());

  runtime.run([](rma::Rank& self) {
    DatabaseConfig cfg;
    cfg.block.block_size = 512;
    cfg.block.blocks_per_rank = 2048;
    auto db = Database::create(self, cfg);
    const Schema s = make_schema(self, db);

    // Rank 0 ingests the dataset with ordinary write transactions.
    if (self.id() == 0) {
      const char* people[][2] = {{"Maciej", "Besta"},   {"Robert", "Gerstenberger"},
                                 {"Marc", "Fischer"},   {"Nils", "Blach"},
                                 {"Berke", "Egeli"},    {"Torsten", "Hoefler"}};
      Transaction txn(db, self, TxnMode::kWrite);
      for (std::uint64_t i = 0; i < 6; ++i) {
        auto v = *txn.create_vertex(i);
        (void)txn.add_label(v, s.person);
        (void)txn.add_property(v, s.fname, PropValue{std::string(people[i][0])});
        (void)txn.add_property(v, s.lname, PropValue{std::string(people[i][1])});
      }
      auto lab = *txn.create_vertex(100);
      (void)txn.add_label(lab, s.company);
      // Friendships (undirected) + employment (directed, different label).
      const std::pair<std::uint64_t, std::uint64_t> friends[] = {
          {0, 1}, {0, 5}, {1, 2}, {1, 5}, {2, 3}, {3, 4}};
      for (auto [a, b] : friends) {
        auto ha = *txn.find_vertex(a);
        auto hb = *txn.find_vertex(b);
        (void)txn.create_edge(ha, hb, layout::Dir::kUndirected, s.friend_of);
      }
      for (std::uint64_t i = 0; i < 6; ++i) {
        auto ha = *txn.find_vertex(i);
        auto hc = *txn.find_vertex(100);
        (void)txn.create_edge(ha, hc, layout::Dir::kOut, s.works_at);
      }
      std::cout << "[ingest] commit: " << to_string(txn.commit()) << "\n";
    }
    self.barrier();

    // Listing 1: friends-of query, run by every rank for a different person.
    const std::uint64_t vID_app = static_cast<std::uint64_t>(self.id()) % 6;
    Transaction txn(db, self, TxnMode::kRead);                 // GDI_StartTransaction
    auto vID = txn.translate_vertex_id(vID_app);               // GDI_TranslateVertexID
    if (vID.ok()) {
      auto vH = txn.associate_vertex(*vID);                    // GDI_AssociateVertex
      auto edges = txn.edges_of(*vH, DirFilter::kUndirected);  // GDI_GetEdgesOfVertex
      std::vector<DPtr> neighborsID;
      for (const auto& e : *edges) {
        if (e.label_id == s.friend_of) neighborsID.push_back(e.neighbor);
      }
      std::string me;
      {
        auto fn = txn.get_properties(*vH, s.fname);
        me = std::get<std::string>((*fn)[0]);
      }
      std::string out = "[rank " + std::to_string(self.id()) + "] " + me + " is friends with:";
      for (DPtr nID : neighborsID) {
        auto nH = txn.associate_vertex(nID);                   // per-neighbor handle
        auto fn = txn.get_properties(*nH, s.fname);            // GDI_GetPropertiesOfVertex
        auto ln = txn.get_properties(*nH, s.lname);
        out += " " + std::get<std::string>((*fn)[0]) + "_" +
               std::get<std::string>((*ln)[0]);
      }
      std::cout << out << "\n";
    }
    (void)txn.commit();                                        // GDI_CloseTransaction
  });
  return 0;
}
