#include "baseline/rpc_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace gdi::baseline {

void RpcGraphStore::charge(rma::Rank& self, std::uint64_t items, std::uint64_t salt) {
  double t = params_.request_floor_ns +
             params_.per_item_ns * static_cast<double>(items);
  if (params_.jitter > 0) {
    // Deterministic multiplicative jitter reproducing the measured latency
    // spread (log-uniform factor in [e^-j, e^j]).
    const double u = to_unit_double(
        hash_combine(salt * 0xBA5Eu + 5, static_cast<std::uint64_t>(self.id())));
    t *= std::exp(params_.jitter * (2.0 * u - 1.0));
  }
  self.charge(t);
}

bool RpcGraphStore::create_vertex(rma::Rank& self, std::uint64_t id,
                                  std::uint32_t label, std::int64_t prop) {
  charge(self, 2, id);
  Shard& s = shard_of(id);
  std::scoped_lock lock(s.mu);
  auto [it, inserted] = s.vertices.try_emplace(id);
  if (!inserted) return false;
  if (label) it->second.labels.push_back(label);
  it->second.props.emplace(1u, prop);
  return true;
}

bool RpcGraphStore::delete_vertex(rma::Rank& self, std::uint64_t id) {
  // Deleting also removes mirror edges: one extra RPC per neighbor shard.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> adj;
  {
    Shard& s = shard_of(id);
    std::scoped_lock lock(s.mu);
    auto it = s.vertices.find(id);
    if (it == s.vertices.end()) return false;
    adj = it->second.adj;
    s.vertices.erase(it);
  }
  charge(self, 2 + adj.size(), id);
  for (const auto& [nb, label] : adj) {
    if (nb == id) continue;
    Shard& s = shard_of(nb);
    std::scoped_lock lock(s.mu);
    auto it = s.vertices.find(nb);
    if (it == s.vertices.end()) continue;
    auto& a = it->second.adj;
    a.erase(std::remove_if(a.begin(), a.end(),
                           [&](const auto& p) { return p.first == id; }),
            a.end());
    charge(self, 1, nb ^ id);
  }
  return true;
}

bool RpcGraphStore::update_prop(rma::Rank& self, std::uint64_t id, std::uint32_t ptype,
                                std::int64_t value) {
  charge(self, 2, id * 3 + 1);
  Shard& s = shard_of(id);
  std::scoped_lock lock(s.mu);
  auto it = s.vertices.find(id);
  if (it == s.vertices.end()) return false;
  it->second.props[ptype] = value;
  return true;
}

std::optional<std::vector<std::int64_t>> RpcGraphStore::get_props(rma::Rank& self,
                                                                  std::uint64_t id) {
  Shard& s = shard_of(id);
  std::scoped_lock lock(s.mu);
  auto it = s.vertices.find(id);
  charge(self, it == s.vertices.end() ? 1 : it->second.props.size(), id * 5 + 2);
  if (it == s.vertices.end()) return std::nullopt;
  std::vector<std::int64_t> out;
  out.reserve(it->second.props.size());
  for (const auto& [k, v] : it->second.props) out.push_back(v);
  return out;
}

std::optional<std::uint64_t> RpcGraphStore::count_edges(rma::Rank& self,
                                                        std::uint64_t id) {
  Shard& s = shard_of(id);
  std::scoped_lock lock(s.mu);
  auto it = s.vertices.find(id);
  charge(self, 1, id * 7 + 3);
  if (it == s.vertices.end()) return std::nullopt;
  return it->second.adj.size();
}

std::optional<std::vector<std::uint64_t>> RpcGraphStore::get_edges(rma::Rank& self,
                                                                   std::uint64_t id) {
  Shard& s = shard_of(id);
  std::scoped_lock lock(s.mu);
  auto it = s.vertices.find(id);
  charge(self, it == s.vertices.end() ? 1 : 1 + it->second.adj.size(), id * 11 + 4);
  if (it == s.vertices.end()) return std::nullopt;
  std::vector<std::uint64_t> out;
  out.reserve(it->second.adj.size());
  for (const auto& [nb, label] : it->second.adj) out.push_back(nb);
  return out;
}

bool RpcGraphStore::add_edge(rma::Rank& self, std::uint64_t src, std::uint64_t dst,
                             std::uint32_t label) {
  charge(self, 4, src * 13 + dst);
  {
    Shard& s = shard_of(src);
    std::scoped_lock lock(s.mu);
    auto it = s.vertices.find(src);
    if (it == s.vertices.end()) return false;
    it->second.adj.emplace_back(dst, label);
  }
  if (src != dst) {
    Shard& s = shard_of(dst);
    std::scoped_lock lock(s.mu);
    auto it = s.vertices.find(dst);
    if (it == s.vertices.end()) return false;
    it->second.adj.emplace_back(src, label);
  }
  return true;
}

void RpcGraphStore::bulk_load(rma::Rank& self, const std::vector<BulkVertex>& vertices,
                              const std::vector<BulkEdge>& edges) {
  for (const auto& bv : vertices) {
    Shard& s = shard_of(bv.app_id);
    std::scoped_lock lock(s.mu);
    auto& rec = s.vertices[bv.app_id];
    rec.labels = bv.labels;
    for (const auto& [pt, bytes] : bv.props) {
      std::int64_t v = 0;
      std::memcpy(&v, bytes.data(), std::min<std::size_t>(bytes.size(), 8));
      rec.props[pt] = v;
    }
  }
  self.barrier();
  for (const auto& e : edges) {
    {
      Shard& s = shard_of(e.src);
      std::scoped_lock lock(s.mu);
      auto it = s.vertices.find(e.src);
      if (it != s.vertices.end()) it->second.adj.emplace_back(e.dst, e.label_id);
    }
    if (e.src != e.dst) {
      Shard& s = shard_of(e.dst);
      std::scoped_lock lock(s.mu);
      auto it = s.vertices.find(e.dst);
      if (it != s.vertices.end()) it->second.adj.emplace_back(e.src, e.label_id);
    }
  }
  self.barrier();
}

double RpcGraphStore::bi2_time_ns(std::uint64_t n, std::uint64_t m, int nranks) const {
  const double items = static_cast<double>(n) + static_cast<double>(m);
  const double servers = params_.parallel_server ? static_cast<double>(nranks) : 1.0;
  return params_.request_floor_ns + params_.per_item_ns * items / servers;
}

double RpcGraphStore::bfs_time_ns(std::uint64_t n, std::uint64_t m, int nranks) const {
  const double servers = params_.parallel_server ? static_cast<double>(nranks) : 1.0;
  // One request per frontier level is negligible; traversal is per-item work.
  return params_.request_floor_ns +
         params_.per_item_ns * (static_cast<double>(n) + 2.0 * static_cast<double>(m)) /
             servers;
}

work::OltpResult run_oltp_rpc(RpcGraphStore& store, rma::Rank& self,
                              const work::OpMix& mix, const work::OltpConfig& cfg) {
  using work::OltpOp;
  work::OltpResult res;
  CounterRng rng(hash_combine(cfg.seed, static_cast<std::uint64_t>(self.id()) + 0x0BB));
  const auto P = static_cast<std::uint64_t>(self.nranks());
  std::uint64_t next_new_id = cfg.existing_ids + static_cast<std::uint64_t>(self.id());
  std::uint64_t local_not_found = 0;

  self.barrier();
  self.reset_clock();

  auto random_id = [&] { return rng.next_below(cfg.existing_ids); };
  auto sample = [&](double u) {
    double acc = 0;
    for (int i = 0; i < work::kNumOltpOps; ++i) {
      acc += mix.weights[static_cast<std::size_t>(i)];
      if (u < acc) return static_cast<OltpOp>(i);
    }
    return OltpOp::kGetVertexProps;
  };

  for (std::uint64_t q = 0; q < cfg.queries_per_rank; ++q) {
    const OltpOp op = sample(rng.next_unit());
    const double t0 = self.sim_time_ns();
    self.charge_compute(cfg.cpu_ns_per_query);
    bool found = true;
    switch (op) {
      case OltpOp::kGetVertexProps: found = store.get_props(self, random_id()).has_value(); break;
      case OltpOp::kCountEdges: found = store.count_edges(self, random_id()).has_value(); break;
      case OltpOp::kGetEdges: found = store.get_edges(self, random_id()).has_value(); break;
      case OltpOp::kAddVertex:
        if (store.create_vertex(self, next_new_id, cfg.label_for_new, 0)) next_new_id += P;
        break;
      case OltpOp::kDeleteVertex: found = store.delete_vertex(self, random_id()); break;
      case OltpOp::kUpdateVertexProp:
        found = store.update_prop(self, random_id(), cfg.ptype_for_update,
                                  static_cast<std::int64_t>(q));
        break;
      case OltpOp::kAddEdge:
        found = store.add_edge(self, random_id(), random_id(), cfg.label_for_new);
        break;
      case OltpOp::kNumOps: break;
    }
    if (!found) ++local_not_found;
    res.latency[static_cast<std::size_t>(op)].add(self.sim_time_ns() - t0);
  }

  res.rank_time_ns = self.allreduce_max(self.sim_time_ns());
  res.attempted = self.allreduce_sum(cfg.queries_per_rank);
  res.not_found = self.allreduce_sum(local_not_found);
  res.failed = 0;  // eventual consistency: the store never aborts
  res.throughput_qps =
      res.rank_time_ns > 0
          ? static_cast<double>(res.attempted) / (res.rank_time_ns * 1e-9)
          : 0;
  return res;
}

}  // namespace gdi::baseline
