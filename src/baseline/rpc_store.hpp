// Comparison-target graph store with a request/response (two-sided)
// architecture -- the reproduction's stand-in for Neo4j 5.10 and JanusGraph
// 0.6.2 (paper Section 6.2; DESIGN.md section 2 documents the substitution).
//
// Architecturally it is everything GDA is not: every operation is an RPC to
// the owning shard's *server*, which executes it under a coarse shard lock.
// The latency model charges each request a fixed floor plus per-item server
// work plus deterministic jitter; the two presets are calibrated to the
// latency floors the paper measured in Figure 5 (JanusGraph: no op under
// ~200 us, most 500 us - 2 ms; Neo4j: millisecond granularity, heavy tail).
// Functional semantics (CRUD on an LPG graph) match GDI so the same workload
// driver can run against both.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "gdi/bulk.hpp"
#include "rma/runtime.hpp"
#include "stats/stats.hpp"
#include "workloads/oltp.hpp"

namespace gdi::baseline {

struct RpcParams {
  std::string name;
  double request_floor_ns = 0;  ///< minimum end-to-end latency of any request
  double per_item_ns = 0;       ///< server-side cost per edge/property touched
  double jitter = 0;            ///< multiplicative spread (0 = none)
  bool parallel_server = true;  ///< false: single-node engine (no scale-out)

  /// JanusGraph-like: distributed, eventual consistency, >=200us floor.
  [[nodiscard]] static RpcParams janusgraph() {
    return RpcParams{"JanusGraph", 350'000.0, 120.0, 0.8, true};
  }
  /// Neo4j-like: single-server engine, millisecond-scale operations.
  [[nodiscard]] static RpcParams neo4j() {
    return RpcParams{"Neo4j", 2'600'000.0, 900.0, 1.1, false};
  }
};

/// In-memory LPG store sharded by vertex id; one coarse mutex per shard
/// models the per-server execution engine.
class RpcGraphStore {
 public:
  RpcGraphStore(int nranks, RpcParams params)
      : params_(std::move(params)), shards_(static_cast<std::size_t>(nranks)) {}

  [[nodiscard]] const RpcParams& params() const { return params_; }

  // --- client operations (each charges one simulated RPC) -------------------
  bool create_vertex(rma::Rank& self, std::uint64_t id, std::uint32_t label,
                     std::int64_t prop);
  bool delete_vertex(rma::Rank& self, std::uint64_t id);
  bool update_prop(rma::Rank& self, std::uint64_t id, std::uint32_t ptype,
                   std::int64_t value);
  [[nodiscard]] std::optional<std::vector<std::int64_t>> get_props(rma::Rank& self,
                                                                   std::uint64_t id);
  [[nodiscard]] std::optional<std::uint64_t> count_edges(rma::Rank& self,
                                                         std::uint64_t id);
  [[nodiscard]] std::optional<std::vector<std::uint64_t>> get_edges(rma::Rank& self,
                                                                    std::uint64_t id);
  bool add_edge(rma::Rank& self, std::uint64_t src, std::uint64_t dst,
                std::uint32_t label);

  /// Bulk ingestion (no RPC charging; load time is not part of any figure).
  void bulk_load(rma::Rank& self, const std::vector<BulkVertex>& vertices,
                 const std::vector<BulkEdge>& edges);

  // --- analytic cost models (Figure 6b/6e baseline curves) -------------------
  /// Single-server BI2-style scan: every anchor vertex and candidate edge is
  /// a server-side item; no scale-out when parallel_server is false.
  [[nodiscard]] double bi2_time_ns(std::uint64_t n, std::uint64_t m, int nranks) const;
  /// BFS over the whole graph on the engine's execution model.
  [[nodiscard]] double bfs_time_ns(std::uint64_t n, std::uint64_t m, int nranks) const;

 private:
  friend struct RpcOltpRunner;

  struct VertexRec {
    std::vector<std::uint32_t> labels;
    std::unordered_map<std::uint32_t, std::int64_t> props;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> adj;  ///< (neighbor, label)
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, VertexRec> vertices;
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t id) {
    return shards_[id % shards_.size()];
  }
  /// Charge one RPC: floor + items * per_item, spread by deterministic jitter.
  void charge(rma::Rank& self, std::uint64_t items, std::uint64_t salt);

  RpcParams params_;
  std::vector<Shard> shards_;
};

/// Run the Table 3 OLTP driver against the RPC store (same result shape as
/// work::run_oltp so benches print both side by side).
work::OltpResult run_oltp_rpc(RpcGraphStore& store, rma::Rank& self,
                              const work::OpMix& mix, const work::OltpConfig& cfg);

}  // namespace gdi::baseline
