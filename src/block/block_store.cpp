#include "block/block_store.hpp"

#include <cstring>

namespace gdi::block {

std::shared_ptr<BlockStore> BlockStore::create(rma::Rank& self,
                                               const BlockStoreConfig& cfg) {
  return self.collective_make<BlockStore>(
      [&] { return std::make_shared<BlockStore>(self.nranks(), cfg); });
}

BlockStore::BlockStore(int nranks, const BlockStoreConfig& cfg)
    : cfg_(cfg),
      data_(nranks, cfg.block_size * cfg.blocks_per_rank),
      usage_(nranks, cfg.blocks_per_rank * 8),
      system_(nranks, kLocksOffset + cfg.blocks_per_rank * 8) {
  assert(cfg.block_size >= 64 && cfg.block_size % 8 == 0);
  assert(cfg.blocks_per_rank >= 2);
  // Build each rank's free list: block 0 is reserved on every rank so that a
  // zero DPtr is never a valid block; blocks 1..N-1 start free.
  for (int r = 0; r < nranks; ++r) {
    auto* usage = reinterpret_cast<std::uint64_t*>(usage_.local_base(r));
    for (std::size_t i = 1; i + 1 < cfg.blocks_per_rank; ++i) usage[i] = i + 1;
    usage[cfg.blocks_per_rank - 1] = kNilIdx;
    auto* sys = reinterpret_cast<std::uint64_t*>(system_.local_base(r));
    sys[0] = cfg.blocks_per_rank > 1 ? 1 : kNilIdx;  // head: tag 0, first free idx
  }
}

DPtr BlockStore::acquire(rma::Rank& self, std::uint32_t target) {
  // Lock-free pop from the target's free list (paper Section 5.5).
  std::uint64_t head = system_.atomic_get_u64(self, target, kHeadOffset);
  for (;;) {
    const std::uint64_t idx = head & kIdxMask;
    const std::uint64_t tag = head >> 48;
    if (idx == kNilIdx) return DPtr{};  // pool exhausted on this rank
    const std::uint64_t next = usage_.atomic_get_u64(self, target, idx * 8);
    const std::uint64_t new_head = ((tag + 1) << 48) | (next & kIdxMask);
    const std::uint64_t old = system_.cas_u64(self, target, kHeadOffset, head, new_head);
    if (old == head) {
      (void)system_.faa_u64(self, target, kCountOffset, 1);
      return DPtr{target, idx * cfg_.block_size};
    }
    head = old;  // lost the race; retry with the freshly observed head
  }
}

void BlockStore::release(rma::Rank& self, DPtr blk) {
  assert(!blk.is_null());
  const std::uint32_t target = blk.rank();
  const std::uint64_t idx = block_index(blk);
  std::uint64_t head = system_.atomic_get_u64(self, target, kHeadOffset);
  for (;;) {
    const std::uint64_t tag = head >> 48;
    usage_.atomic_put_u64(self, target, idx * 8, head & kIdxMask);
    const std::uint64_t new_head = ((tag + 1) << 48) | idx;
    const std::uint64_t old = system_.cas_u64(self, target, kHeadOffset, head, new_head);
    if (old == head) {
      (void)system_.faa_u64(self, target, kCountOffset, -1);
      return;
    }
    head = old;
  }
}

std::uint64_t BlockStore::allocated_count(rma::Rank& self, std::uint32_t target) {
  return system_.atomic_get_u64(self, target, kCountOffset);
}

bool BlockStore::try_read_lock(rma::Rank& self, DPtr blk, int attempts,
                               std::uint64_t* word_out, std::uint64_t version_hint) {
  const std::uint64_t off = lock_offset(block_index(blk));
  std::uint64_t old = version_hint != 0
                          ? (version_hint & kVersionMask)
                          : system_.atomic_get_u64(self, blk.rank(), off);
  for (int i = 0; i < attempts; ++i) {
    if (old & kWriteBit) return false;  // writer present
    const std::uint64_t seen = system_.cas_u64(self, blk.rank(), off, old, old + 1);
    if (seen == old) {
      if (word_out != nullptr) *word_out = old;
      return true;
    }
    old = seen;  // raced with another reader/writer; re-examine
  }
  return false;
}

void BlockStore::read_unlock(rma::Rank& self, DPtr blk) {
  const std::uint64_t off = lock_offset(block_index(blk));
  (void)system_.faa_u64(self, blk.rank(), off, -1);
}

void BlockStore::read_unlock_nb(rma::Rank& self, DPtr blk) {
  const std::uint64_t off = lock_offset(block_index(blk));
  (void)system_.faa_u64_nb(self, blk.rank(), off, -1);
}

std::vector<std::uint8_t> BlockStore::try_read_lock_many(
    rma::Rank& self, std::span<const DPtr> blks, int attempts,
    std::vector<std::uint64_t>* words_out, std::span<const std::uint64_t> hints) {
  assert(hints.empty() || hints.size() == blks.size());
  std::vector<std::uint8_t> got(blks.size(), 0);
  if (words_out != nullptr) words_out->assign(blks.size(), 0);
  struct Pending {
    std::size_t i;
    std::uint64_t expected;  ///< last observed lock word (optimistically the
                             ///< hinted version, else the fresh-block 0)
    std::uint64_t prev = 0;  ///< CAS result landing here at the next flush
  };
  std::vector<Pending> pend;
  pend.reserve(blks.size());
  for (std::size_t i = 0; i < blks.size(); ++i)
    pend.push_back({i, hints.empty() ? 0 : hints[i] & kVersionMask});
  for (int round = 0; round < attempts && !pend.empty(); ++round) {
    for (auto& p : pend) {
      const DPtr b = blks[p.i];
      (void)system_.cas_u64_nb(self, b.rank(), lock_offset(block_index(b)), p.expected,
                               p.expected + 1, &p.prev);
    }
    (void)self.flush_all();
    std::vector<Pending> next;
    for (const auto& p : pend) {
      if (p.prev == p.expected) {
        got[p.i] = 1;
        if (words_out != nullptr) (*words_out)[p.i] = p.prev;
      } else if ((p.prev & kWriteBit) == 0) {
        next.push_back({p.i, p.prev});  // raced with a reader; retry
      }
      // Writer present: give up on this word (blocking try_read_lock semantics).
    }
    pend = std::move(next);
  }
  return got;
}

std::vector<std::uint8_t> BlockStore::try_write_lock_many(
    rma::Rank& self, std::span<const DPtr> blks, int attempts,
    std::span<const std::uint64_t> hints) {
  assert(hints.empty() || hints.size() == blks.size());
  std::vector<std::uint8_t> got(blks.size(), 0);
  struct Pending {
    std::size_t i;
    std::uint64_t expected;  ///< free word we bid on (hinted version up front,
                             ///< else learned from the first round's prev)
    std::uint64_t prev = 0;
  };
  std::vector<Pending> pend;
  pend.reserve(blks.size());
  for (std::size_t i = 0; i < blks.size(); ++i)
    pend.push_back({i, hints.empty() ? 0 : hints[i] & kVersionMask});
  for (int round = 0; round < attempts && !pend.empty(); ++round) {
    for (auto& p : pend) {
      const DPtr b = blks[p.i];
      (void)system_.cas_u64_nb(self, b.rank(), lock_offset(block_index(b)), p.expected,
                               p.expected | kWriteBit, &p.prev);
    }
    (void)self.flush_all();
    std::vector<Pending> next;
    for (const auto& p : pend) {
      if (p.prev == p.expected) got[p.i] = 1;
      // Free at another version / momentarily held: bid on the free form of
      // the word we just observed next round.
      else next.push_back({p.i, version_of(p.prev)});
    }
    pend = std::move(next);
  }
  return got;
}

bool BlockStore::try_write_lock(rma::Rank& self, DPtr blk,
                                std::uint64_t version_hint) {
  const std::uint64_t off = lock_offset(block_index(blk));
  const std::uint64_t bid = version_hint & kVersionMask;
  const std::uint64_t prev = system_.cas_u64(self, blk.rank(), off, bid,
                                             bid | kWriteBit);
  if (prev == bid) return true;  // fresh block / correct hint: one CAS
  if ((prev & (kWriteBit | kReadMask)) != 0) return false;  // held
  // Free at another version: one more CAS applies the learned version.
  return system_.cas_u64(self, blk.rank(), off, prev, prev | kWriteBit) == prev;
}

bool BlockStore::try_upgrade_lock(rma::Rank& self, DPtr blk) {
  const std::uint64_t off = lock_offset(block_index(blk));
  const std::uint64_t prev = system_.cas_u64(self, blk.rank(), off, 1, kWriteBit);
  if (prev == 1) return true;
  if ((prev & (kWriteBit | kReadMask)) != 1) return false;  // not the sole reader
  // Sole reader at a nonzero version: clear our read count, set the bit.
  return system_.cas_u64(self, blk.rank(), off, prev, (prev - 1) | kWriteBit) == prev;
}

std::vector<std::uint8_t> BlockStore::try_upgrade_many(rma::Rank& self,
                                                       std::span<const DPtr> blks,
                                                       int attempts) {
  std::vector<std::uint8_t> got(blks.size(), 0);
  struct Pending {
    std::size_t i;
    std::uint64_t expected = 1;  ///< sole-reader word we bid on
    std::uint64_t prev = 0;
  };
  std::vector<Pending> pend;
  pend.reserve(blks.size());
  for (std::size_t i = 0; i < blks.size(); ++i) pend.push_back({i});
  for (int round = 0; round < attempts && !pend.empty(); ++round) {
    for (auto& p : pend) {
      const DPtr b = blks[p.i];
      (void)system_.cas_u64_nb(self, b.rank(), lock_offset(block_index(b)), p.expected,
                               (p.expected - 1) | kWriteBit, &p.prev);
    }
    (void)self.flush_all();
    std::vector<Pending> next;
    for (const auto& p : pend) {
      if (p.prev == p.expected) {
        got[p.i] = 1;
      } else if ((p.prev & kWriteBit) == 0) {
        // Other readers still present (or a version we had not seen): keep
        // bidding on the sole-reader form; they may drain within `attempts`.
        next.push_back({p.i, version_of(p.prev) | 1});
      }
      // A raced-in writer is impossible while we hold a read lock; a write
      // bit here means protocol abuse, give up like try_upgrade_lock would.
    }
    pend = std::move(next);
  }
  return got;
}

// Both plain unlock flavors are the fetch flavor with the result dropped:
// one copy of the release + wrap-repair protocol to keep in lockstep.
void BlockStore::write_unlock(rma::Rank& self, DPtr blk) {
  (void)write_unlock_fetch(self, blk, /*nonblocking=*/false);
}

void BlockStore::write_unlock_nb(rma::Rank& self, DPtr blk) {
  (void)write_unlock_fetch(self, blk, /*nonblocking=*/true);
}

std::uint64_t BlockStore::write_unlock_fetch(rma::Rank& self, DPtr blk,
                                             bool nonblocking) {
  const std::uint64_t off = lock_offset(block_index(blk));
  // +1 version, -write_bit in one FAA: releases the lock and publishes "the
  // bytes behind this word changed" to every cached copy in the system.
  std::uint64_t prev;
  if (nonblocking) {
    (void)system_.faa_fetch_u64_nb(self, blk.rank(), off,
                                   static_cast<std::int64_t>(kWriteUnlockDelta),
                                   &prev);
  } else {
    prev = system_.faa_u64(self, blk.rank(), off,
                           static_cast<std::int64_t>(kWriteUnlockDelta));
  }
  if (version_of(prev) == kVersionMask) [[unlikely]] {
    // Version wrap: the increment's carry landed in the write bit, so the
    // word now reads as write-locked by nobody -- and since it does, no
    // agent can have touched it, making it still effectively ours to repair
    // (one extra atomic every 2^31 releases of one block). The repaired word
    // is 0, so the published version is 0.
    if (nonblocking) (void)system_.atomic_put_u64_nb(self, blk.rank(), off, 0);
    else system_.atomic_put_u64(self, blk.rank(), off, 0);
    return 0;
  }
  return version_of(prev) + (std::uint64_t{1} << kVersionShift);
}

void BlockStore::peek_lock_words(rma::Rank& self, std::span<const DPtr> blks,
                                 std::span<std::uint64_t> out, bool batched) {
  assert(out.size() == blks.size());
  if (batched && blks.size() > 1) {
    for (std::size_t i = 0; i < blks.size(); ++i) {
      const DPtr b = blks[i];
      (void)system_.atomic_get_u64_nb(self, b.rank(), lock_offset(block_index(b)),
                                      &out[i]);
    }
    (void)self.flush_all();
    return;
  }
  for (std::size_t i = 0; i < blks.size(); ++i) {
    const DPtr b = blks[i];
    out[i] = system_.atomic_get_u64(self, b.rank(), lock_offset(block_index(b)));
  }
}

std::uint64_t BlockStore::lock_word(rma::Rank& self, DPtr blk) {
  return system_.atomic_get_u64(self, blk.rank(), lock_offset(block_index(blk)));
}

void BlockStore::poke_lock_word(rma::Rank& self, DPtr blk, std::uint64_t word) {
  system_.atomic_put_u64(self, blk.rank(), lock_offset(block_index(blk)), word);
}

namespace {
void dump_region(std::byte* base, std::size_t n, std::vector<std::byte>& out) {
  std::uint64_t len = n;
  const auto* lp = reinterpret_cast<const std::byte*>(&len);
  out.insert(out.end(), lp, lp + 8);
  out.insert(out.end(), base, base + n);
}
bool load_region(std::byte* base, std::size_t n, std::span<const std::byte>& in) {
  if (in.size() < 8) return false;
  std::uint64_t len;
  std::memcpy(&len, in.data(), 8);
  in = in.subspan(8);
  if (len != n || in.size() < n) return false;
  std::memcpy(base, in.data(), n);
  in = in.subspan(n);
  return true;
}
}  // namespace

void BlockStore::serialize_rank(int r, std::vector<std::byte>& out) {
  dump_region(data_.local_base(r), cfg_.block_size * cfg_.blocks_per_rank, out);
  dump_region(usage_.local_base(r), cfg_.blocks_per_rank * 8, out);
  dump_region(system_.local_base(r), kLocksOffset + cfg_.blocks_per_rank * 8, out);
}

bool BlockStore::restore_rank(int r, std::span<const std::byte> in) {
  return load_region(data_.local_base(r), cfg_.block_size * cfg_.blocks_per_rank, in) &&
         load_region(usage_.local_base(r), cfg_.blocks_per_rank * 8, in) &&
         load_region(system_.local_base(r), kLocksOffset + cfg_.blocks_per_rank * 8,
                     in) &&
         in.empty();
}

}  // namespace gdi::block
