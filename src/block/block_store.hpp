// Blocked Graph Data Layout (BGDL) -- paper Section 5.5.
//
// A large distributed memory pool divided into fixed-size blocks. Three RMA
// windows implement it exactly as the paper describes:
//   * data window   -- the blocks themselves (vertex/edge holder payloads),
//   * usage window  -- a linked free-list: one word per block holding the
//                      index of the next free block,
//   * system window -- the free-list head (entry point for acquiring blocks)
//                      plus one reader-writer lock word per block.
//
// acquireBlock/releaseBlock are lock-free Treiber-stack operations on the
// free-list head; the head word carries a 16-bit tag to defeat the ABA
// problem ("tagged pointer technique", paper Section 5.5). The RW lock word
// (paper Section 5.6, Figure 3) packs a write bit and a read counter into one
// 64-bit word so both acquisition paths are single remote atomics.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/dptr.hpp"
#include "rma/window.hpp"

namespace gdi::block {

struct BlockStoreConfig {
  std::size_t block_size = 512;       ///< bytes per block (user tunable, paper 5.5)
  std::size_t blocks_per_rank = 4096; ///< pool capacity per rank
};

class BlockStore {
 public:
  /// Collective constructor: every rank calls, all receive the same store.
  [[nodiscard]] static std::shared_ptr<BlockStore> create(rma::Rank& self,
                                                          const BlockStoreConfig& cfg);

  BlockStore(int nranks, const BlockStoreConfig& cfg);

  [[nodiscard]] std::size_t block_size() const { return cfg_.block_size; }
  [[nodiscard]] std::size_t blocks_per_rank() const { return cfg_.blocks_per_rank; }

  // --- block allocation (lock-free, fully one-sided) ------------------------

  /// Try to allocate one block on `target`; returns a null DPtr if that rank's
  /// pool is exhausted. The returned DPtr addresses the block's first byte in
  /// the data window.
  [[nodiscard]] DPtr acquire(rma::Rank& self, std::uint32_t target);

  /// Return `blk` to its owner's free list.
  void release(rma::Rank& self, DPtr blk);

  /// Number of currently allocated blocks on `target` (diagnostic).
  [[nodiscard]] std::uint64_t allocated_count(rma::Rank& self, std::uint32_t target);

  // --- block data access -----------------------------------------------------

  void read_block(rma::Rank& self, DPtr blk, void* dst) {
    data_.get(self, dst, cfg_.block_size, blk);
  }
  /// One scatter-read destination for the vectored read path.
  struct BlockReadOp {
    DPtr blk;
    void* dst = nullptr;
  };
  /// Vectored block read: issues one nonblocking GET per op and completes the
  /// whole set with a single Rank::flush_all(), so an overlapped batch is
  /// charged max(alpha) + sum(beta*bytes) instead of paying every latency
  /// serially. Results are byte-identical to calling read_block per op.
  void read_blocks(rma::Rank& self, std::span<const BlockReadOp> ops) {
    for (const auto& op : ops) (void)data_.get_nb(self, op.dst, cfg_.block_size, op.blk);
    if (!ops.empty()) (void)self.flush_all();
  }
  void write_block(rma::Rank& self, DPtr blk, const void* src) {
    data_.put(self, src, cfg_.block_size, blk);
  }
  /// Sub-block access (offset within the block).
  void read(rma::Rank& self, DPtr blk, std::size_t off, void* dst, std::size_t n) {
    data_.get(self, dst, n, blk.rank(), blk.offset() + off);
  }
  void write(rma::Rank& self, DPtr blk, std::size_t off, const void* src, std::size_t n) {
    data_.put(self, src, n, blk.rank(), blk.offset() + off);
  }
  /// Nonblocking sub-block access: the transfer joins the issuing rank's
  /// pending batch and completes at its next Rank::flush_all(). Commit-time
  /// writeback enqueues every dirty block with write_nb and pays one
  /// overlapped flush for the whole transaction instead of one per holder.
  void read_nb(rma::Rank& self, DPtr blk, std::size_t off, void* dst, std::size_t n) {
    (void)data_.get_nb(self, dst, n, blk.rank(), blk.offset() + off);
  }
  void write_nb(rma::Rank& self, DPtr blk, std::size_t off, const void* src,
                std::size_t n) {
    (void)data_.put_nb(self, src, n, blk.rank(), blk.offset() + off);
  }
  void flush(rma::Rank& self, std::uint32_t target) { data_.flush(self, target); }

  // --- per-vertex reader/writer locks (paper Section 5.6) -------------------
  //
  // One lock word per block; only primary blocks of holders are locked. The
  // word packs three fields:
  //   `(write_bit << 63) | (version << 32) | read_counter`
  // The 31-bit *version* counts completed write critical sections: every
  // write_unlock bumps it by one. Readers CAS the low counter and leave the
  // version untouched, so a reader that acquired the word at version v and
  // later re-observes version v knows the block bytes cannot have changed in
  // between -- the validation rule of the shared block cache (src/cache/).
  // The version wraps after 2^31 writes to one block (write_unlock repairs
  // the increment's carry with one extra atomic at the wrap point); a
  // wrap-around ABA needs exactly 2^31 commits between two validations of
  // one cache entry, which we accept (and the entry-count bound makes even
  // less likely).
  //
  // Fresh blocks have version 0, so first-acquisition costs are unchanged; a
  // previously-written block costs one extra CAS on the write/upgrade paths
  // (the first CAS learns the version, the second applies it).

  /// On success, *word_out (if non-null) receives the lock word observed just
  /// before our CAS -- its version bits date the acquired read lock.
  /// `version_hint` (masked version bits, e.g. a shared-cache entry's stamp)
  /// seeds the first CAS expectation: a correct hint saves the initial word
  /// read, a stale one costs nothing beyond it -- the failing CAS returns the
  /// fresh word the retry loop needed anyway. 0 = no hint (read the word).
  [[nodiscard]] bool try_read_lock(rma::Rank& self, DPtr blk, int attempts = 16,
                                   std::uint64_t* word_out = nullptr,
                                   std::uint64_t version_hint = 0);
  void read_unlock(rma::Rank& self, DPtr blk);
  /// `version_hint` as in try_read_lock: bid directly on the hinted free word
  /// instead of the fresh-block form, saving the learn-the-version CAS on
  /// previously-written blocks whose version the caller already knows (the
  /// write-through cache keeps a writer's own rows' versions current).
  [[nodiscard]] bool try_write_lock(rma::Rank& self, DPtr blk,
                                    std::uint64_t version_hint = 0);
  /// Batched lock acquisition: one nonblocking CAS per lock word per round,
  /// each round completed by a single flush_all, so acquiring k independent
  /// locks costs ceil(rounds) overlapped latencies instead of k serial CAS
  /// round-trips. result[i] == 1 iff blks[i] was acquired. Per-word semantics
  /// are identical to the blocking try_*_lock calls (a visible writer makes a
  /// read-lock attempt give up immediately; contended words retry up to
  /// `attempts` rounds). words_out (if non-null) is resized to blks.size();
  /// words_out[i] receives the word observed before the winning CAS for
  /// acquired locks (undefined for failures). `hints` (empty, or one entry
  /// per block) carries per-word version hints exactly like the singleton
  /// paths' `version_hint`: hints[i]'s version bits seed blks[i]'s first CAS
  /// expectation, so a warm row locks in one CAS round instead of burning the
  /// first round learning its version; a stale hint costs nothing extra (the
  /// failed CAS fetches the fresh word the retry round needed anyway).
  [[nodiscard]] std::vector<std::uint8_t> try_read_lock_many(
      rma::Rank& self, std::span<const DPtr> blks, int attempts = 16,
      std::vector<std::uint64_t>* words_out = nullptr,
      std::span<const std::uint64_t> hints = {});
  [[nodiscard]] std::vector<std::uint8_t> try_write_lock_many(
      rma::Rank& self, std::span<const DPtr> blks, int attempts = 16,
      std::span<const std::uint64_t> hints = {});
  /// Upgrade a held read lock to a write lock (succeeds only if this is the
  /// sole reader and no writer raced in).
  [[nodiscard]] bool try_upgrade_lock(rma::Rank& self, DPtr blk);
  /// Batched read->write upgrades: one nonblocking CAS per word per round
  /// (sole-reader semantics per word, identical to try_upgrade_lock), each
  /// round completed by one flush_all. Used by BatchScope when write ops
  /// re-touch vertices the batch already read-locked.
  [[nodiscard]] std::vector<std::uint8_t> try_upgrade_many(
      rma::Rank& self, std::span<const DPtr> blks, int attempts = 16);
  void write_unlock(rma::Rank& self, DPtr blk);
  /// Nonblocking unlocks: the atomic joins the rank's pending batch and
  /// completes (cost-wise) at the next flush_all. Release order is irrelevant
  /// to other agents -- a racing CAS that lands before the unlock simply
  /// retries -- so commit/abort fire these and let the next completion point
  /// absorb the round, instead of paying one serial latency per held lock.
  void read_unlock_nb(rma::Rank& self, DPtr blk);
  void write_unlock_nb(rma::Rank& self, DPtr blk);
  /// Fetch-flavored write unlock: same single-FAA release (and the same wrap
  /// repair), but the word the FAA displaced is fetched, so the releasing
  /// writer learns the version its own unlock published -- the version the
  /// next validator of this block will observe. Returns those post-unlock
  /// version bits (already in lock-word position, i.e. comparable to
  /// version_of()); 0 at the 2^31 wrap, where the repair publishes a zero
  /// word. With `nonblocking` the FAA (and any wrap repair) joins the rank's
  /// pending batch -- the fetched value is acted on locally only (shared-
  /// cache re-stamp), which a real backend would defer to the enclosing
  /// epoch's flush. The write-through protocol is built on this call: holding
  /// the write bit excludes every other agent, so the fetched word is exactly
  /// `held_version | write_bit` and the re-stamped version is tamper-proof.
  std::uint64_t write_unlock_fetch(rma::Rank& self, DPtr blk, bool nonblocking);
  /// Batched 8-byte lock-word peeks: with `batched` one nonblocking atomic
  /// per word completed by a single flush_all, otherwise one blocking atomic
  /// each. out[i] receives blks[i]'s word. The shared block cache rides this
  /// to validate lock-free (kReadShared) hits and to bracket lock-free fills.
  void peek_lock_words(rma::Rank& self, std::span<const DPtr> blks,
                       std::span<std::uint64_t> out, bool batched);
  /// Raw lock word (tests/diagnostics).
  [[nodiscard]] std::uint64_t lock_word(rma::Rank& self, DPtr blk);
  /// Test-only: overwrite a block's raw lock word. Exists to drive the 2^31
  /// version-wrap path without 2^31 commits; never called by production code.
  void poke_lock_word(rma::Rank& self, DPtr blk, std::uint64_t word);

  static constexpr std::uint64_t kWriteBit = std::uint64_t{1} << 63;
  static constexpr int kVersionShift = 32;
  static constexpr std::uint64_t kReadMask = (std::uint64_t{1} << kVersionShift) - 1;
  static constexpr std::uint64_t kVersionMask = ~(kWriteBit | kReadMask);
  /// write_unlock = one FAA of this delta: +1 version, -write_bit. The writer
  /// holds the word at `version | write_bit` with zero readers (readers never
  /// join while the bit is set), so the add carries no surprises.
  static constexpr std::uint64_t kWriteUnlockDelta =
      (std::uint64_t{1} << kVersionShift) - kWriteBit;
  [[nodiscard]] static constexpr std::uint64_t version_of(std::uint64_t word) {
    return word & kVersionMask;
  }
  [[nodiscard]] static constexpr bool write_locked(std::uint64_t word) {
    return (word & kWriteBit) != 0;
  }

  /// Data-window object for direct holder IO by higher layers.
  [[nodiscard]] rma::Window& data_window() { return data_; }

  // --- checkpoint / recovery support (src/wal/) -----------------------------

  /// Append a raw dump of rank `r`'s data/usage/system regions (including
  /// free-list words, the tagged head, and every lock word) to `out`.
  /// Quiescent state only: the WAL checkpoint calls this inside a barrier.
  void serialize_rank(int r, std::vector<std::byte>& out);
  /// Restore rank `r`'s regions from a serialize_rank dump; false on a
  /// layout mismatch (different block_size/blocks_per_rank than the dump).
  [[nodiscard]] bool restore_rank(int r, std::span<const std::byte> in);

  /// Recovery-only: re-apply one committed write-unlock's +1 version
  /// increment to a lock word (no write bit is held during replay -- redo
  /// mutates bytes directly, so only the version history must be reproduced
  /// for byte-for-byte convergence of the system window).
  void bump_version(rma::Rank& self, DPtr blk) {
    const std::uint64_t prev =
        system_.faa_u64(self, blk.rank(), lock_offset(block_index(blk)),
                        static_cast<std::int64_t>(std::uint64_t{1} << kVersionShift));
    if (version_of(prev) == kVersionMask) [[unlikely]]
      system_.atomic_put_u64(self, blk.rank(), lock_offset(block_index(blk)), 0);
  }

 private:
  // System-window layout per rank.
  static constexpr std::uint64_t kHeadOffset = 0;    // tagged free-list head
  static constexpr std::uint64_t kCountOffset = 8;   // allocated-block counter
  static constexpr std::uint64_t kLocksOffset = 16;  // lock words, one per block

  // Tagged head encoding: (tag << 48) | block_index. Index kNilIdx = empty.
  static constexpr std::uint64_t kIdxMask = (std::uint64_t{1} << 48) - 1;
  static constexpr std::uint64_t kNilIdx = kIdxMask;

  [[nodiscard]] std::uint64_t block_index(DPtr blk) const {
    return blk.offset() / cfg_.block_size;
  }
  [[nodiscard]] std::uint64_t lock_offset(std::uint64_t idx) const {
    return kLocksOffset + idx * 8;
  }

  BlockStoreConfig cfg_;
  rma::Window data_;
  rma::Window usage_;
  rma::Window system_;
};

}  // namespace gdi::block
