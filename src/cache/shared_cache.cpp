#include "cache/shared_cache.hpp"

namespace gdi::cache {

void SharedBlockCache::insert(DPtr primary, std::span<const std::byte> buf,
                              std::uint64_t version, bool is_edge) {
  if (cfg_.max_entries == 0) return;
  Entry& e = map_[primary.raw()];
  e.buf.assign(buf.begin(), buf.end());
  e.version = version;
  e.is_edge = is_edge;
  e.seq = ++next_seq_;
  fifo_.emplace_back(primary.raw(), e.seq);
  while (map_.size() > cfg_.max_entries && !fifo_.empty()) {
    const auto [key, seq] = fifo_.front();
    fifo_.pop_front();
    auto it = map_.find(key);
    // Skip pairs whose entry was refreshed (newer seq) or already erased.
    if (it != map_.end() && it->second.seq == seq) map_.erase(it);
  }
  // Stale pairs from refreshes/invalidations accumulate without crossing the
  // eviction threshold; sweep them once they dominate the deque.
  if (fifo_.size() > 4 * cfg_.max_entries) {
    std::deque<std::pair<std::uint64_t, std::uint64_t>> live;
    for (const auto& [key, seq] : fifo_) {
      auto it = map_.find(key);
      if (it != map_.end() && it->second.seq == seq) live.emplace_back(key, seq);
    }
    fifo_ = std::move(live);
  }
}

bool SharedBlockCache::erase(DPtr primary) { return map_.erase(primary.raw()) > 0; }

void SharedBlockCache::remember_translation(std::uint64_t app_id, DPtr vid) {
  if (cfg_.max_entries == 0 || vid.is_null()) return;
  auto [it, fresh] = xlate_.try_emplace(app_id, vid);
  if (!fresh) {
    it->second = vid;  // refreshed in place; FIFO slot stays
    return;
  }
  xlate_fifo_.push_back(app_id);
  while (xlate_.size() > cfg_.max_entries && !xlate_fifo_.empty()) {
    xlate_.erase(xlate_fifo_.front());
    xlate_fifo_.pop_front();
  }
}

}  // namespace gdi::cache
