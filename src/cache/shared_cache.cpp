#include "cache/shared_cache.hpp"

namespace gdi::cache {

namespace {

// One copy of the lazy (key, seq) FIFO discipline shared by holder entries
// and the translation memo: pop-evict the oldest *live* slot while `over`
// holds (slots whose entry was refreshed under a newer seq, or erased, are
// skipped -- evicting by a stale slot would drop a live hot entry), then
// sweep stale slots once they dominate the deque (refresh/forget cycles
// accumulate them without ever crossing the eviction threshold).
template <class Map, class OverFn, class OnEvict>
void bound_fifo(Map& map, std::deque<std::pair<std::uint64_t, std::uint64_t>>& fifo,
                OverFn over, OnEvict on_evict) {
  while (over() && !fifo.empty()) {
    const auto [key, seq] = fifo.front();
    fifo.pop_front();
    auto it = map.find(key);
    if (it != map.end() && it->second.seq == seq) {
      on_evict(it);
      map.erase(it);
    }
  }
  if (fifo.size() > 4 * (map.size() + 64)) {
    std::deque<std::pair<std::uint64_t, std::uint64_t>> live;
    for (const auto& [key, seq] : fifo) {
      auto it = map.find(key);
      if (it != map.end() && it->second.seq == seq) live.emplace_back(key, seq);
    }
    fifo = std::move(live);
  }
}

}  // namespace

bool SharedBlockCache::pop_live(
    std::deque<std::pair<std::uint64_t, std::uint64_t>>& fifo) {
  while (!fifo.empty()) {
    const auto [key, seq] = fifo.front();
    fifo.pop_front();
    auto it = map_.find(key);
    if (it != map_.end() && it->second.seq == seq) {
      bytes_ -= it->second.buf.size();
      if (it->second.probation) prob_bytes_ -= it->second.buf.size();
      map_.erase(it);
      return true;
    }
  }
  return false;
}

void SharedBlockCache::bound() {
  while (bytes_ > cfg_.max_bytes) {
    if (cfg_.policy == ScachePolicy::k2Q) {
      // Probation pays first once it exceeds its share -- that is the scan
      // resistance: a one-touch flood evicts other one-touch entries, not
      // the twice-touched residents. Either queue covers for the other when
      // it has no live slot left.
      const auto prob_budget = static_cast<std::size_t>(
          cfg_.probation_fraction * static_cast<double>(cfg_.max_bytes));
      if (prob_bytes_ > prob_budget && pop_live(prob_fifo_)) continue;
      if (pop_live(fifo_)) continue;
      if (pop_live(prob_fifo_)) continue;
      break;  // nothing live anywhere (bytes_ must be 0; defensive)
    }
    if (!pop_live(fifo_)) break;
  }
  const auto sweep = [&](std::deque<std::pair<std::uint64_t, std::uint64_t>>& fifo) {
    if (fifo.size() <= 4 * (map_.size() + 64)) return;
    std::deque<std::pair<std::uint64_t, std::uint64_t>> live;
    for (const auto& [key, seq] : fifo) {
      auto it = map_.find(key);
      if (it != map_.end() && it->second.seq == seq) live.emplace_back(key, seq);
    }
    fifo = std::move(live);
  };
  sweep(fifo_);
  sweep(prob_fifo_);
}

void SharedBlockCache::insert(DPtr primary, std::span<const std::byte> buf,
                              std::uint64_t version, bool is_edge) {
  if (cfg_.max_bytes == 0) return;
  if (buf.size() > cfg_.max_bytes) {
    // A holder larger than the whole budget can never be retained; admitting
    // it would FIFO-wipe every warm entry just to evict it again. Drop any
    // stale prior snapshot of it and keep the rest of the cache intact.
    (void)erase(primary);
    return;
  }
  auto [it, fresh] = map_.try_emplace(primary.raw());
  Entry& e = it->second;
  bytes_ -= e.buf.size();  // 0 for a fresh entry
  if (e.probation) prob_bytes_ -= e.buf.size();
  e.buf.assign(buf.begin(), buf.end());
  e.version = version;
  e.is_edge = is_edge;
  e.seq = ++next_seq_;
  bytes_ += e.buf.size();
  if (cfg_.policy == ScachePolicy::k2Q && fresh) {
    // First touch: park on probation. A refresh of a live entry is a second
    // touch and joins the residents below, as does a note_hit.
    e.probation = true;
    prob_bytes_ += e.buf.size();
    prob_fifo_.emplace_back(primary.raw(), e.seq);
  } else {
    e.probation = false;
    fifo_.emplace_back(primary.raw(), e.seq);
  }
  bound();
}

void SharedBlockCache::note_hit(DPtr primary) {
  if (cfg_.policy != ScachePolicy::k2Q) return;
  auto it = map_.find(primary.raw());
  if (it == map_.end() || !it->second.probation) return;
  Entry& e = it->second;
  e.probation = false;
  prob_bytes_ -= e.buf.size();
  e.seq = ++next_seq_;  // the old probation slot goes stale by seq mismatch
  fifo_.emplace_back(primary.raw(), e.seq);
  // No bound(): bytes_ is unchanged and the caller may hold the Entry*.
}

bool SharedBlockCache::erase(DPtr primary) {
  auto it = map_.find(primary.raw());
  if (it == map_.end()) return false;
  bytes_ -= it->second.buf.size();
  if (it->second.probation) prob_bytes_ -= it->second.buf.size();
  map_.erase(it);
  return true;
}

void SharedBlockCache::remember_translation(std::uint64_t app_id, DPtr vid,
                                            std::uint64_t epoch) {
  if (cfg_.max_translations == 0 || vid.is_null()) return;
  auto [it, fresh] = xlate_.try_emplace(app_id, Translation{vid, epoch, 0});
  if (!fresh) {
    // Refreshed in place; the FIFO slot (and its seq) stays armed.
    it->second.vid = vid;
    it->second.epoch = epoch;
    return;
  }
  it->second.seq = ++xlate_seq_;
  xlate_fifo_.emplace_back(app_id, it->second.seq);
  bound_fifo(
      xlate_, xlate_fifo_,
      [&] { return xlate_.size() > cfg_.max_translations; }, [](auto) {});
}

}  // namespace gdi::cache
