#include "cache/shared_cache.hpp"

namespace gdi::cache {

namespace {

// One copy of the lazy (key, seq) FIFO discipline shared by holder entries
// and the translation memo: pop-evict the oldest *live* slot while `over`
// holds (slots whose entry was refreshed under a newer seq, or erased, are
// skipped -- evicting by a stale slot would drop a live hot entry), then
// sweep stale slots once they dominate the deque (refresh/forget cycles
// accumulate them without ever crossing the eviction threshold).
template <class Map, class OverFn, class OnEvict>
void bound_fifo(Map& map, std::deque<std::pair<std::uint64_t, std::uint64_t>>& fifo,
                OverFn over, OnEvict on_evict) {
  while (over() && !fifo.empty()) {
    const auto [key, seq] = fifo.front();
    fifo.pop_front();
    auto it = map.find(key);
    if (it != map.end() && it->second.seq == seq) {
      on_evict(it);
      map.erase(it);
    }
  }
  if (fifo.size() > 4 * (map.size() + 64)) {
    std::deque<std::pair<std::uint64_t, std::uint64_t>> live;
    for (const auto& [key, seq] : fifo) {
      auto it = map.find(key);
      if (it != map.end() && it->second.seq == seq) live.emplace_back(key, seq);
    }
    fifo = std::move(live);
  }
}

}  // namespace

void SharedBlockCache::insert(DPtr primary, std::span<const std::byte> buf,
                              std::uint64_t version, bool is_edge) {
  if (cfg_.max_bytes == 0) return;
  if (buf.size() > cfg_.max_bytes) {
    // A holder larger than the whole budget can never be retained; admitting
    // it would FIFO-wipe every warm entry just to evict it again. Drop any
    // stale prior snapshot of it and keep the rest of the cache intact.
    (void)erase(primary);
    return;
  }
  Entry& e = map_[primary.raw()];
  bytes_ -= e.buf.size();  // 0 for a fresh entry
  e.buf.assign(buf.begin(), buf.end());
  e.version = version;
  e.is_edge = is_edge;
  e.seq = ++next_seq_;
  bytes_ += e.buf.size();
  fifo_.emplace_back(primary.raw(), e.seq);
  bound_fifo(
      map_, fifo_, [&] { return bytes_ > cfg_.max_bytes; },
      [&](auto it) { bytes_ -= it->second.buf.size(); });
}

bool SharedBlockCache::erase(DPtr primary) {
  auto it = map_.find(primary.raw());
  if (it == map_.end()) return false;
  bytes_ -= it->second.buf.size();
  map_.erase(it);
  return true;
}

void SharedBlockCache::remember_translation(std::uint64_t app_id, DPtr vid,
                                            std::uint64_t epoch) {
  if (cfg_.max_translations == 0 || vid.is_null()) return;
  auto [it, fresh] = xlate_.try_emplace(app_id, Translation{vid, epoch, 0});
  if (!fresh) {
    // Refreshed in place; the FIFO slot (and its seq) stays armed.
    it->second.vid = vid;
    it->second.epoch = epoch;
    return;
  }
  it->second.seq = ++xlate_seq_;
  xlate_fifo_.emplace_back(app_id, it->second.seq);
  bound_fifo(
      xlate_, xlate_fifo_,
      [&] { return xlate_.size() > cfg_.max_translations; }, [](auto) {});
}

}  // namespace gdi::cache
