// Shared version-validated block cache (the inter-transaction cache of the
// ROADMAP): a process-wide, read-mostly cache of *assembled holders* that
// survives across transactions.
//
// Each entry is keyed by the holder's primary-block DPtr and stores the
// holder's flat buffer (primary + continuation blocks, exactly the bytes a
// fetch would assemble) stamped with the *version* field of the primary's
// lock word at fill time (see BlockStore: bits 32..62 of the lock word count
// completed write critical sections). Validation is the whole protocol:
//
//   * fill under a read lock: the bytes cannot change while the lock is
//     held, so the version observed by the lock-acquisition CAS dates the
//     snapshot exactly;
//   * fill without a lock (kReadShared): bracket the block reads with two
//     lock-word peeks; cache only if both peeks agree on the version and
//     neither shows the write bit (seqlock discipline);
//   * hit under a read lock: free -- the acquisition CAS already observed
//     the current word; version equal to the stamp proves no writer
//     completed since the fill, so the cached bytes are the bytes a fetch
//     would return *under this very lock* (kRead serializability is
//     untouched);
//   * hit without a lock: one 8-byte lock-word peek (batched through the
//     nonblocking engine) replaces the holder's block fetches;
//   * any write intent on a holder bypasses the cache and invalidates its
//     entry; deletion invalidates too. Remote writers need no notification:
//     their write_unlock bumps the version, so the next validation misses;
//   * *write-through* (local commit writeback): instead of dying by
//     invalidation, the writer's own entry is re-stamped with the committed
//     holder bytes under the version its write_unlock_fetch published --
//     valid because the write bit excluded every other agent between the
//     writeback and the unlock, so those bytes at that version are exactly
//     what a fetch-under-lock would return. A rank's own write set thus
//     stays warm across transactions (Transaction::release_locks).
//
// The cache is *per process* (per rank): in the target deployment each rank
// is a process with private memory, so rank r's cache must not serve rank s
// -- Database owns one instance per rank and hands each rank its own. One
// rank's transactions are sequential, so the cache needs no synchronization.
//
// Capacity is accounted in *bytes* (each entry charged its assembled-holder
// size -- a 4-block holder costs 4x what a singleton does), evicted FIFO
// beyond `max_bytes`; refreshing an entry re-arms its slot. An entry never
// expires by time: it is as fresh as its last validation, which is the point
// of stamping versions instead of clocks.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/dptr.hpp"

namespace gdi::cache {

/// Admission policy for the holder cache (DatabaseConfig::scache_policy).
///
///  * kFifo -- every fill is admitted straight into one FIFO (the PR 4/5
///    behaviour, bit-exact). One OLAP scan larger than the budget washes out
///    the whole OLTP hot set.
///  * k2Q -- scan-resistant 2Q-style admission: a *first* fill lands in a
///    small probationary FIFO (probation_fraction of the byte budget); only a
///    *second* touch -- a validated hit or a refresh of a live entry --
///    promotes it into the resident FIFO that owns the rest of the budget.
///    A scan references each holder exactly once, so scan traffic churns only
///    the probationary quarter and the twice-touched hot set survives.
enum class ScachePolicy : std::uint8_t { kFifo = 0, k2Q };

struct SharedCacheConfig {
  /// Holder bytes kept per rank (entries charged assembled-holder size,
  /// FIFO-evicted beyond). 0 disables the cache entirely.
  std::size_t max_bytes = 4096 * 512;
  /// Translation-memo entries kept per rank (app id -> {DPtr, epoch} pairs;
  /// bounded by count, their size is uniform). Database derives this from
  /// the byte budget (max_bytes / 64, roughly the per-entry map + FIFO
  /// footprint), so one knob bounds the whole cache's memory.
  std::size_t max_translations = (4096 * 512) / 64;
  /// Admission policy; kFifo keeps the historical single-queue behaviour.
  ScachePolicy policy = ScachePolicy::kFifo;
  /// k2Q only: byte share of the probationary queue. Eviction drains
  /// probation beyond this share before it touches the resident queue.
  double probation_fraction = 0.25;
};

class SharedBlockCache {
 public:
  struct Entry {
    std::vector<std::byte> buf;   ///< assembled holder bytes (all blocks)
    std::uint64_t version = 0;    ///< lock-word version bits at fill time
    bool is_edge = false;         ///< EdgeView holder (vs VertexView)
    bool probation = false;       ///< k2Q: still in the probationary queue
    std::uint64_t seq = 0;        ///< internal: FIFO re-arm stamp
  };

  explicit SharedBlockCache(SharedCacheConfig cfg = {}) : cfg_(cfg) {}

  /// Entry for `primary`, or nullptr. The caller owns validating the stamp
  /// against a freshly observed lock word before trusting the bytes.
  [[nodiscard]] const Entry* find(DPtr primary) const {
    auto it = map_.find(primary.raw());
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Insert or refresh the holder snapshot for `primary`. Under k2Q a fresh
  /// key starts on probation; refreshing a live entry counts as its second
  /// touch and promotes it to the resident queue.
  void insert(DPtr primary, std::span<const std::byte> buf, std::uint64_t version,
              bool is_edge);

  /// Reference feedback for the admission policy: the caller validated a hit
  /// on `primary`. Under k2Q this is the second touch that promotes a
  /// probationary entry to the resident queue; kFifo ignores it. Never
  /// invalidates Entry pointers (no insertion or eviction happens here).
  void note_hit(DPtr primary);

  /// Drop `primary`'s entry (write intent / deletion / observed remote
  /// change). Returns true if an entry existed.
  bool erase(DPtr primary);

  // --- application-ID translation memo --------------------------------------
  //
  // app id -> holder primary DPtr, remembered from successful find()s and
  // validated bare translates. Each memo carries the DHT *erase epoch*
  // observed no later than the moment the translation was proven true.
  // Two validation routes:
  //   * find(): fetch the named holder and compare its stored app id against
  //     the query (the existing stale-DHT guard) -- epoch not needed;
  //   * bare translate: one read of the DHT's erase-epoch counter covers a
  //     whole batch; epoch equal to the memo's proves no erase happened
  //     since the translation was verified, and GDI never creates live
  //     duplicate keys, so the mapping must still hold. Mismatch falls back
  //     to the real DHT walk (and re-teaches on success).
  // A stale memo therefore costs one wasted fetch or one epoch read, never a
  // wrong answer; a fresh one saves the whole DHT chain walk.
  struct Translation {
    DPtr vid;
    std::uint64_t epoch = 0;  ///< DHT erase epoch at (or before) verification
    std::uint64_t seq = 0;    ///< internal: FIFO re-arm stamp
  };
  [[nodiscard]] const Translation* find_translation(std::uint64_t app_id) const {
    auto it = xlate_.find(app_id);
    return it == xlate_.end() ? nullptr : &it->second;
  }
  void remember_translation(std::uint64_t app_id, DPtr vid, std::uint64_t epoch);
  void forget_translation(std::uint64_t app_id) { xlate_.erase(app_id); }

  void clear() {
    map_.clear();
    fifo_.clear();
    prob_fifo_.clear();
    bytes_ = 0;
    prob_bytes_ = 0;
    xlate_.clear();
    xlate_fifo_.clear();
  }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] std::size_t probation_bytes() const { return prob_bytes_; }
  [[nodiscard]] std::size_t max_bytes() const { return cfg_.max_bytes; }
  [[nodiscard]] const SharedCacheConfig& config() const { return cfg_; }

 private:
  /// Evict the oldest *live* entry of one queue; false if no live slot left.
  bool pop_live(std::deque<std::pair<std::uint64_t, std::uint64_t>>& fifo);
  /// Enforce the byte budget (and, under k2Q, the probation share).
  void bound();

  SharedCacheConfig cfg_;
  std::unordered_map<std::uint64_t, Entry> map_;
  std::size_t bytes_ = 0;       ///< sum of map_ entries' buf sizes
  std::size_t prob_bytes_ = 0;  ///< subset of bytes_ still on probation (k2Q)
  /// Eviction order of the resident queue; stale (key, seq) pairs of
  /// refreshed/erased entries are skipped lazily at eviction time.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> fifo_;
  /// k2Q probationary queue (same lazy (key, seq) discipline).
  std::deque<std::pair<std::uint64_t, std::uint64_t>> prob_fifo_;
  std::uint64_t next_seq_ = 0;
  std::unordered_map<std::uint64_t, Translation> xlate_;
  /// Same lazy (key, seq) discipline as fifo_: forget + re-teach cycles
  /// leave stale slots that eviction skips and the sweep reclaims.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> xlate_fifo_;
  std::uint64_t xlate_seq_ = 0;
};

}  // namespace gdi::cache
