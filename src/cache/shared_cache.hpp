// Shared version-validated block cache (the inter-transaction cache of the
// ROADMAP): a process-wide, read-mostly cache of *assembled holders* that
// survives across transactions.
//
// Each entry is keyed by the holder's primary-block DPtr and stores the
// holder's flat buffer (primary + continuation blocks, exactly the bytes a
// fetch would assemble) stamped with the *version* field of the primary's
// lock word at fill time (see BlockStore: bits 32..62 of the lock word count
// completed write critical sections). Validation is the whole protocol:
//
//   * fill under a read lock: the bytes cannot change while the lock is
//     held, so the version observed by the lock-acquisition CAS dates the
//     snapshot exactly;
//   * fill without a lock (kReadShared): bracket the block reads with two
//     lock-word peeks; cache only if both peeks agree on the version and
//     neither shows the write bit (seqlock discipline);
//   * hit under a read lock: free -- the acquisition CAS already observed
//     the current word; version equal to the stamp proves no writer
//     completed since the fill, so the cached bytes are the bytes a fetch
//     would return *under this very lock* (kRead serializability is
//     untouched);
//   * hit without a lock: one 8-byte lock-word peek (batched through the
//     nonblocking engine) replaces the holder's block fetches;
//   * any write intent on a holder bypasses the cache and invalidates its
//     entry; local commit writeback and deletion invalidate too. Remote
//     writers need no notification: their write_unlock bumps the version,
//     so the next validation misses.
//
// The cache is *per process* (per rank): in the target deployment each rank
// is a process with private memory, so rank r's cache must not serve rank s
// -- Database owns one instance per rank and hands each rank its own. One
// rank's transactions are sequential, so the cache needs no synchronization.
//
// Entries are evicted FIFO beyond `max_entries` (refreshing an entry re-arms
// its slot). An entry never expires by time: it is as fresh as its last
// validation, which is the point of stamping versions instead of clocks.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/dptr.hpp"

namespace gdi::cache {

struct SharedCacheConfig {
  std::size_t max_entries = 4096;  ///< holders kept per rank (FIFO beyond)
};

class SharedBlockCache {
 public:
  struct Entry {
    std::vector<std::byte> buf;   ///< assembled holder bytes (all blocks)
    std::uint64_t version = 0;    ///< lock-word version bits at fill time
    bool is_edge = false;         ///< EdgeView holder (vs VertexView)
    std::uint64_t seq = 0;        ///< internal: FIFO re-arm stamp
  };

  explicit SharedBlockCache(SharedCacheConfig cfg = {}) : cfg_(cfg) {}

  /// Entry for `primary`, or nullptr. The caller owns validating the stamp
  /// against a freshly observed lock word before trusting the bytes.
  [[nodiscard]] const Entry* find(DPtr primary) const {
    auto it = map_.find(primary.raw());
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Insert or refresh the holder snapshot for `primary`.
  void insert(DPtr primary, std::span<const std::byte> buf, std::uint64_t version,
              bool is_edge);

  /// Drop `primary`'s entry (write intent / writeback / observed remote
  /// change). Returns true if an entry existed.
  bool erase(DPtr primary);

  // --- application-ID translation memo --------------------------------------
  //
  // app id -> holder primary DPtr, remembered from successful find()s. The
  // memo is *not* self-validating: a consumer must fetch the named holder
  // and compare its stored app id against the query -- which is precisely
  // find_vertex's existing stale-DHT guard -- and fall back to the real DHT
  // lookup on any mismatch or invalid holder. A stale memo therefore costs
  // one wasted fetch, never a wrong answer; a fresh one saves the whole DHT
  // chain walk, the last cold segment a warm point read still paid.
  [[nodiscard]] DPtr find_translation(std::uint64_t app_id) const {
    auto it = xlate_.find(app_id);
    return it == xlate_.end() ? DPtr{} : it->second;
  }
  void remember_translation(std::uint64_t app_id, DPtr vid);
  void forget_translation(std::uint64_t app_id) { xlate_.erase(app_id); }

  void clear() {
    map_.clear();
    fifo_.clear();
    xlate_.clear();
    xlate_fifo_.clear();
  }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t max_entries() const { return cfg_.max_entries; }

 private:
  SharedCacheConfig cfg_;
  std::unordered_map<std::uint64_t, Entry> map_;
  /// Eviction order; stale (key, seq) pairs of refreshed/erased entries are
  /// skipped lazily at eviction time.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> fifo_;
  std::uint64_t next_seq_ = 0;
  std::unordered_map<std::uint64_t, DPtr> xlate_;
  std::deque<std::uint64_t> xlate_fifo_;
};

}  // namespace gdi::cache
