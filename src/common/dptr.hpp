// Distributed pointers (DPtr) and edge UIDs.
//
// A DPtr is the GDI-RMA implementation of an internal vertex/edge ID (paper
// Section 5.3): a single 64-bit word whose upper 16 bits name the owning rank
// ("compute server") and whose lower 48 bits are a byte offset into that
// rank's data window. Packing everything into 64 bits lets every piece of
// synchronization ride on single-word remote atomics.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace gdi {

/// 64-bit distributed hierarchical pointer: 16-bit rank | 48-bit offset.
///
/// The all-zero value is reserved as the null pointer; real allocations never
/// hand out offset 0 on rank 0 (the block layer skips block 0 of rank 0).
class DPtr {
 public:
  static constexpr int kRankBits = 16;
  static constexpr int kOffsetBits = 48;
  static constexpr std::uint64_t kOffsetMask = (std::uint64_t{1} << kOffsetBits) - 1;
  static constexpr std::uint64_t kMaxOffset = kOffsetMask;
  static constexpr std::uint32_t kMaxRank = (1u << kRankBits) - 1;

  constexpr DPtr() = default;
  constexpr explicit DPtr(std::uint64_t raw) : raw_(raw) {}
  constexpr DPtr(std::uint32_t rank, std::uint64_t offset)
      : raw_((static_cast<std::uint64_t>(rank) << kOffsetBits) | (offset & kOffsetMask)) {}

  [[nodiscard]] constexpr std::uint32_t rank() const {
    return static_cast<std::uint32_t>(raw_ >> kOffsetBits);
  }
  [[nodiscard]] constexpr std::uint64_t offset() const { return raw_ & kOffsetMask; }
  [[nodiscard]] constexpr std::uint64_t raw() const { return raw_; }
  [[nodiscard]] constexpr bool is_null() const { return raw_ == 0; }
  constexpr explicit operator bool() const { return raw_ != 0; }

  friend constexpr auto operator<=>(const DPtr&, const DPtr&) = default;

  [[nodiscard]] std::string to_string() const {
    return "DPtr{r=" + std::to_string(rank()) + ",off=" + std::to_string(offset()) + "}";
  }

 private:
  std::uint64_t raw_ = 0;
};

static_assert(sizeof(DPtr) == 8, "DPtr must fit one remote-atomic word");

/// Edge UID (paper Section 5.4.2): identifies a lightweight edge by the DPtr
/// of a base vertex plus the byte offset of the edge record inside that
/// vertex's holder. The same physical edge has two UIDs, one per endpoint.
struct EdgeUid {
  DPtr vertex;             ///< primary block of the base vertex holder
  std::uint32_t offset = 0;  ///< offset of the edge record within the holder

  [[nodiscard]] constexpr bool is_null() const { return vertex.is_null(); }
  friend constexpr auto operator<=>(const EdgeUid&, const EdgeUid&) = default;
};

}  // namespace gdi

template <>
struct std::hash<gdi::DPtr> {
  std::size_t operator()(const gdi::DPtr& p) const noexcept {
    return std::hash<std::uint64_t>{}(p.raw());
  }
};
