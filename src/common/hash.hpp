// Deterministic hashing / counter-based PRNG utilities.
//
// The generator (paper contribution #5) and the workload drivers need
// reproducible pseudo-randomness that is independent of the rank count, so we
// use counter-based splitmix64 throughout instead of stateful engines.
#pragma once

#include <cstdint>

namespace gdi {

/// splitmix64 finalizer: a high-quality 64-bit mix, also used as the DHT hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Combines a seed and a counter into an independent 64-bit random word.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return splitmix64(seed ^ (v + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2)));
}

/// Uniform double in [0, 1) from a 64-bit random word.
[[nodiscard]] constexpr double to_unit_double(std::uint64_t r) {
  return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
}

/// Cheap counter-based RNG: rng(seed, i) gives the i-th draw of stream `seed`.
class CounterRng {
 public:
  constexpr explicit CounterRng(std::uint64_t seed) : seed_(splitmix64(seed)) {}

  [[nodiscard]] constexpr std::uint64_t next() { return splitmix64(seed_ ^ counter_++); }
  [[nodiscard]] constexpr double next_unit() { return to_unit_double(next()); }
  /// Uniform integer in [0, n).
  [[nodiscard]] constexpr std::uint64_t next_below(std::uint64_t n) {
    return n == 0 ? 0 : next() % n;
  }

 private:
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
};

}  // namespace gdi
