// GDI error handling (paper Section 3.3, Figure 2 "Errors" group).
//
// GDI distinguishes *transaction critical* errors -- after which the enclosing
// transaction is guaranteed to fail and must be restarted by the user -- from
// non-critical errors that the caller may handle and continue.
#pragma once

#include <cstdint>
#include <string_view>

namespace gdi {

enum class Status : std::uint8_t {
  kOk = 0,
  // Non-critical errors.
  kNotFound,            ///< object (vertex/edge/label/property) does not exist
  kAlreadyExists,       ///< e.g. duplicate application-level vertex ID
  kInvalidArgument,     ///< malformed input (bad handle, bad datatype, ...)
  kNoSpace,             ///< index/property region full, non-fatal to the txn
  kConstraintViolated,  ///< property-type restriction (single entry, size cap)
  kStale,               ///< metadata/index observed in a not-yet-converged state
  kOverloaded,          ///< admission control shed the request (bounded queues)
  kShutdown,            ///< server is draining; no new work is accepted
  // Transaction critical errors: the transaction is guaranteed to fail.
  kTxnConflict,         ///< lock acquisition failed (would deadlock / contend)
  kTxnAborted,          ///< transaction already aborted; no further ops allowed
  kTxnReadOnly,         ///< write attempted inside a read-only transaction
  kOutOfMemory,         ///< block pool exhausted while materializing data
};

/// True for errors after which the enclosing transaction must abort.
[[nodiscard]] constexpr bool is_transaction_critical(Status s) {
  return s == Status::kTxnConflict || s == Status::kTxnAborted ||
         s == Status::kTxnReadOnly || s == Status::kOutOfMemory;
}

[[nodiscard]] constexpr bool ok(Status s) { return s == Status::kOk; }

[[nodiscard]] constexpr std::string_view to_string(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kNotFound: return "NOT_FOUND";
    case Status::kAlreadyExists: return "ALREADY_EXISTS";
    case Status::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::kNoSpace: return "NO_SPACE";
    case Status::kConstraintViolated: return "CONSTRAINT_VIOLATED";
    case Status::kStale: return "STALE";
    case Status::kOverloaded: return "OVERLOADED";
    case Status::kShutdown: return "SHUTDOWN";
    case Status::kTxnConflict: return "TXN_CONFLICT";
    case Status::kTxnAborted: return "TXN_ABORTED";
    case Status::kTxnReadOnly: return "TXN_READ_ONLY";
    case Status::kOutOfMemory: return "OUT_OF_MEMORY";
  }
  return "UNKNOWN";
}

/// Lightweight result wrapper for calls returning a value or a Status.
template <class T>
class Result {
 public:
  Result(T value) : value_(std::move(value)), status_(Status::kOk) {}  // NOLINT
  Result(Status s) : status_(s) {}                                     // NOLINT

  [[nodiscard]] bool ok() const { return status_ == Status::kOk; }
  [[nodiscard]] Status status() const { return status_; }
  [[nodiscard]] const T& value() const& { return value_; }
  [[nodiscard]] T& value() & { return value_; }
  [[nodiscard]] T&& value() && { return std::move(value_); }
  [[nodiscard]] const T& operator*() const& { return value_; }
  [[nodiscard]] const T* operator->() const { return &value_; }

 private:
  T value_{};
  Status status_;
};

}  // namespace gdi
