// Property values (paper Section 2: properties are (key, value) pairs; GDI
// types property values through property-type metadata, Section 3.7).
//
// Values are stored in holders as raw bytes; this header provides the typed
// encode/decode used at the GDI API boundary.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace gdi {

enum class Datatype : std::uint8_t {
  kInt64 = 0,
  kUint64,
  kDouble,
  kString,
  kBytes,
};

/// Whether a vertex/edge may carry one or many entries of a property type.
enum class Multiplicity : std::uint8_t { kSingle = 0, kMultiple };

/// Entity a property type may be attached to.
enum class EntityType : std::uint8_t { kVertex = 0, kEdge, kVertexAndEdge };

/// Size class of a property type (paper Section 3.7: optional user hints).
enum class SizeType : std::uint8_t { kFixed = 0, kLimited, kUnlimited };

using PropValue = std::variant<std::int64_t, std::uint64_t, double, std::string,
                               std::vector<std::byte>>;

[[nodiscard]] inline std::vector<std::byte> encode_value(const PropValue& v) {
  std::vector<std::byte> out;
  std::visit(
      [&out](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::string>) {
          out.resize(x.size());
          // memcpy requires non-null pointers even for n=0 (empty string).
          if (!x.empty()) std::memcpy(out.data(), x.data(), x.size());
        } else if constexpr (std::is_same_v<T, std::vector<std::byte>>) {
          out = x;
        } else {
          out.resize(sizeof(T));
          std::memcpy(out.data(), &x, sizeof(T));
        }
      },
      v);
  return out;
}

[[nodiscard]] inline PropValue decode_value(Datatype t, std::span<const std::byte> b) {
  switch (t) {
    case Datatype::kInt64: {
      std::int64_t x = 0;
      std::memcpy(&x, b.data(), std::min(b.size(), sizeof(x)));
      return x;
    }
    case Datatype::kUint64: {
      std::uint64_t x = 0;
      std::memcpy(&x, b.data(), std::min(b.size(), sizeof(x)));
      return x;
    }
    case Datatype::kDouble: {
      double x = 0;
      std::memcpy(&x, b.data(), std::min(b.size(), sizeof(x)));
      return x;
    }
    case Datatype::kString:
      return std::string(reinterpret_cast<const char*>(b.data()), b.size());
    case Datatype::kBytes:
      return std::vector<std::byte>(b.begin(), b.end());
  }
  return std::int64_t{0};
}

}  // namespace gdi
