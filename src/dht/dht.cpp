#include "dht/dht.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <unordered_set>

namespace gdi::dht {

std::shared_ptr<DistributedHashTable> DistributedHashTable::create(
    rma::Rank& self, const DhtConfig& cfg) {
  return self.collective_make<DistributedHashTable>(
      [&] { return std::make_shared<DistributedHashTable>(self.nranks(), cfg); });
}

DistributedHashTable::DistributedHashTable(int nranks, const DhtConfig& cfg)
    : cfg_(cfg),
      nranks_(nranks),
      table_seg_(cfg.buckets_per_rank * 8),
      heap_seg_((cfg.entries_per_rank + 1) * kEntrySize),
      table_(nranks, table_seg_,
             std::clamp<std::size_t>(cfg.max_shards, 1, kMaxShardCap)),
      heap_(nranks, heap_seg_,
            std::clamp<std::size_t>(cfg.max_shards, 1, kMaxShardCap)),
      dir_(nranks, kDirBytes),
      local_(static_cast<std::size_t>(nranks)) {
  cfg_.max_shards = std::clamp<std::size_t>(cfg_.max_shards, 1, kMaxShardCap);
  assert(cfg_.buckets_per_rank > 0);
  // Entry references must stay addressable through a 48-bit DPtr offset.
  assert(cfg_.max_shards * heap_seg_ <= DPtr::kMaxOffset);
  // A fresh all-zero segment is a valid empty shard (empty buckets, empty
  // free stack, zero watermark), so only the shard directory needs nonzero
  // initial values. Construction happens-before the collective publication.
  auto* dir = reinterpret_cast<std::uint64_t*>(dir_.local_base(0));
  dir[kDirShardsOff / 8] = 1;
  dir[kDirCleanOff / 8] = 1;
  dir[kDirPendingOff / 8] = 1;
}

DistributedHashTable::BucketLoc DistributedHashTable::locate(std::uint64_t key) const {
  const std::uint64_t h = splitmix64(key ^ cfg_.salt);
  const std::uint64_t total = static_cast<std::uint64_t>(nranks_) * cfg_.buckets_per_rank;
  const std::uint64_t g = h % total;
  return BucketLoc{static_cast<std::uint32_t>(g / cfg_.buckets_per_rank),
                   (g % cfg_.buckets_per_rank) * 8};
}

std::uint32_t DistributedHashTable::home_shard(std::uint64_t h2, std::uint32_t n) {
  assert(n >= 1);
  // Linear hashing: split the address space by h2 mod 2^(L+1); addresses that
  // land beyond the published count fold back to the unsplit parent bucket
  // (h2 mod 2^L). Growing n -> n+1 therefore moves only the keys of the one
  // shard whose range splits.
  const std::uint32_t L = static_cast<std::uint32_t>(std::bit_width(n)) - 1;
  std::uint64_t c = h2 & ((std::uint64_t{2} << L) - 1);
  if (c >= n) c = h2 & ((std::uint64_t{1} << L) - 1);
  return static_cast<std::uint32_t>(c);
}

DistributedHashTable::Candidates DistributedHashTable::candidates(
    std::uint64_t h2, std::uint32_t clean, std::uint32_t shards) const {
  Candidates cs;
  if (clean == 0) clean = 1;
  if (shards == 0) shards = 1;
  // Newest placement first, so the bucket a later insert would have used is
  // probed before any older fallback -- "latest insert wins" across splits.
  for (std::uint32_t m = shards; m >= clean; --m) {
    const std::uint32_t s = home_shard(h2, m);
    bool dup = false;
    for (std::uint32_t i = 0; i < cs.n; ++i) {
      if (cs.shard[i] == s) {
        dup = true;
        break;
      }
    }
    if (!dup) cs.shard[cs.n++] = s;
  }
  // The whole point of the partition: a compacted table resolves every key
  // from exactly one bucket.
  assert(clean != shards || cs.n == 1);
  return cs;
}

// ---------------------------------------------------------------------------
// Shard directory
// ---------------------------------------------------------------------------

std::uint64_t DistributedHashTable::refresh_dir(rma::Rank& self) {
  std::uint64_t s = 0, c = 0, p = 0, stamp = 0;
  (void)dir_.atomic_get_u64_nb(self, 0, kDirStampOff, &stamp);
  (void)dir_.atomic_get_u64_nb(self, 0, kDirShardsOff, &s);
  (void)dir_.atomic_get_u64_nb(self, 0, kDirCleanOff, &c);
  (void)dir_.atomic_get_u64_nb(self, 0, kDirPendingOff, &p);
  (void)self.flush_all();
  auto& rl = local_[static_cast<std::size_t>(self.id())];
  const auto sn = static_cast<std::uint32_t>(s);
  if (sn > rl.shards) {
    // Commit the reserved window segments backing the newly published shards
    // before addressing them (registration bookkeeping; see Window).
    (void)table_.ensure_segments(self, sn);
    (void)heap_.ensure_segments(self, sn);
    rl.shards = sn;
  }
  rl.clean = std::max(rl.clean, static_cast<std::uint32_t>(c));
  rl.pending = std::max(rl.pending, static_cast<std::uint32_t>(p));
  return stamp;
}

bool DistributedHashTable::grow(rma::Rank& self) {
  auto& rl = local_[static_cast<std::size_t>(self.id())];
  const std::uint32_t before = rl.shards;
  (void)refresh_dir(self);
  if (rl.shards > before) return true;  // a racer already published
  if (before >= cfg_.max_shards) return false;
  // Commit memory for shard `before` on every rank, then publish it with one
  // one-sided CAS on the directory word. A fresh segment is already a valid
  // empty shard, so no initialization writes are needed -- losing the CAS
  // race is harmless (the winner published the same all-zero shard).
  (void)table_.ensure_segments(self, before + 1);
  (void)heap_.ensure_segments(self, before + 1);
  (void)dir_.cas_u64(self, 0, kDirShardsOff, before, before + 1);
  (void)refresh_dir(self);  // pick up our publication or the racer's
  return true;
}

std::uint32_t DistributedHashTable::shard_count(rma::Rank& self) {
  return refresh_shards(self);
}

std::uint32_t DistributedHashTable::clean_shard_count(rma::Rank& self) {
  (void)refresh_dir(self);
  return local_[static_cast<std::size_t>(self.id())].clean;
}

// ---------------------------------------------------------------------------
// Entry heap
// ---------------------------------------------------------------------------

DPtr DistributedHashTable::pop_free(rma::Rank& self, std::uint32_t target,
                                    std::uint32_t shard) {
  std::uint64_t head =
      heap_.atomic_get_u64(self, target, ctrl_off(shard) + kFreeHeadOff);
  for (;;) {
    const std::uint64_t idx = head & kIdxMask;
    if (idx == 0) return DPtr{};  // empty (slot 0 is the control slot)
    const std::uint64_t tag = head >> 48;
    const std::uint64_t next =
        heap_.atomic_get_u64(self, target, entry_off(shard, idx) + kNextOff);
    const std::uint64_t new_head = ((tag + 1) << 48) | (next & kIdxMask);
    const std::uint64_t old = heap_.cas_u64(self, target, ctrl_off(shard) + kFreeHeadOff,
                                            head, new_head);
    if (old == head) {
      self.counters().dht_reclaimed += 1;
      return DPtr{target, entry_off(shard, idx)};
    }
    head = old;
  }
}

DPtr DistributedHashTable::alloc_entry(rma::Rank& self, std::uint32_t prefer,
                                       bool allow_grow) {
  const auto target = static_cast<std::uint32_t>(self.id());
  auto& rl = local_[target];
  // Periodically forget cached free-stack emptiness: remote ranks free
  // entries into our heap without telling us, and those slots must not stay
  // stranded behind a stale local hint.
  if ((++rl.alloc_tick & 0xFFu) == 0) rl.free_empty = 0;
  for (;;) {
    const std::uint32_t known = rl.shards;
    const std::uint32_t pref = prefer < known ? prefer : known - 1;
    auto try_shard = [&](std::uint32_t s) -> DPtr {
      const std::uint64_t bit = std::uint64_t{1} << s;
      if ((rl.free_empty & bit) == 0) {
        if (DPtr e = pop_free(self, target, s); !e.is_null()) return e;
        rl.free_empty |= bit;
      }
      if ((rl.wm_full & bit) == 0) {
        const std::uint64_t w =
            heap_.faa_u64(self, target, ctrl_off(s) + kWatermarkOff, 1);
        if (w < cfg_.entries_per_rank) return DPtr{target, entry_off(s, w + 1)};
        rl.wm_full |= bit;  // watermarks never shrink: sticky until restore
      }
      return DPtr{};
    };
    // The key's home shard first (keeps an entry's heap slot near its bucket
    // partition), then every other published shard newest-first.
    if (DPtr e = try_shard(pref); !e.is_null()) return e;
    for (std::uint32_t s = known; s-- > 0;) {
      if (s == pref) continue;
      if (DPtr e = try_shard(s); !e.is_null()) return e;
    }
    // Every cached-usable slot is gone. Re-probe every free stack once --
    // freed capacity (including slots freed by other ranks since we cached
    // emptiness) is always consumed before the table grows.
    rl.free_empty = 0;
    for (std::uint32_t s = known; s-- > 0;) {
      if (DPtr e = pop_free(self, target, s); !e.is_null()) return e;
      rl.free_empty |= std::uint64_t{1} << s;
    }
    // Migration must never inflate the directory: growing mid-pass would
    // raise S above the pass target and leave the table dirty forever, so
    // compaction pauses (kNoSpace) until erases free capacity instead.
    if (!allow_grow && rl.shards == known) return DPtr{};
    if (rl.shards == known && !grow(self)) return DPtr{};
    // grow() (or a racer observed by it) published a fresh shard; retry.
  }
}

void DistributedHashTable::dealloc_entry(rma::Rank& self, DPtr e) {
  // Bump the generation first so stale references fail their tag check.
  const std::uint64_t gen = field(self, e, kGenOff);
  set_field(self, e, kGenOff, gen + 1);
  const std::uint32_t target = e.rank();
  const std::uint32_t shard = shard_of(e);
  const std::uint64_t idx = (e.offset() - ctrl_off(shard)) / kEntrySize;
  std::uint64_t head =
      heap_.atomic_get_u64(self, target, ctrl_off(shard) + kFreeHeadOff);
  for (;;) {
    const std::uint64_t tag = head >> 48;
    set_field(self, e, kNextOff, head & kIdxMask);
    const std::uint64_t new_head = ((tag + 1) << 48) | idx;
    const std::uint64_t old = heap_.cas_u64(self, target, ctrl_off(shard) + kFreeHeadOff,
                                            head, new_head);
    if (old == head) break;
    head = old;
  }
  if (target == static_cast<std::uint32_t>(self.id())) {
    // Our own heap regained a slot: drop the local emptiness hint.
    local_[target].free_empty &= ~(std::uint64_t{1} << shard);
  }
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

bool DistributedHashTable::insert(rma::Rank& self, std::uint64_t key,
                                  std::uint64_t value) {
  const BucketLoc b = locate(key);
  const std::uint64_t h2 = shard_hash(key);
  auto& rl = local_[static_cast<std::size_t>(self.id())];
  // Fresh placement count: one overlapped directory round. Placement counts
  // are globally monotone across committed-before inserts (a later insert of
  // the same key never places under an older count), which is what makes
  // "latest insert wins" hold across splits with no per-rank staleness.
  (void)refresh_dir(self);
  const DPtr e = alloc_entry(self, home_shard(h2, rl.shards));
  if (e.is_null()) return false;  // shard cap reached with every shard full
  // alloc_entry may have refreshed the directory again (growth); place under
  // the newest count this rank has proof of.
  const std::uint32_t placed = rl.shards;
  const std::uint32_t home = home_shard(h2, placed);
  const std::uint64_t gen = field(self, e, kGenOff);
  set_field(self, e, kKeyOff, key);
  set_field(self, e, kValOff, value);
  heap_.flush(self, e.rank());
  // Publish into the key's home bucket.
  const std::uint64_t off = bucket_off(home, b);
  std::uint64_t head = table_.atomic_get_u64(self, b.rank, off);
  for (;;) {  // Listing 4, insert: prepend with CAS on the bucket head.
    set_field(self, e, kNextOff, head);
    const std::uint64_t old = table_.cas_u64(self, b.rank, off, head,
                                             make_ref(e, gen).word);
    if (old == head) break;
    head = old;
  }
  (void)heap_.faa_u64(self, e.rank(), ctrl_off(shard_of(e)) + kLiveCountOff, 1);
  ensure_covered(self, key, h2, b, e, placed);
  return true;
}

bool DistributedHashTable::insert_if_absent(rma::Rank& self, std::uint64_t key,
                                            std::uint64_t value) {
  if (lookup(self, key).has_value()) return false;
  return insert(self, key, value);
}

void DistributedHashTable::ensure_covered(rma::Rank& self, std::uint64_t key,
                                          std::uint64_t h2, const BucketLoc& b,
                                          DPtr e, std::uint32_t placed) {
  auto& rl = local_[static_cast<std::size_t>(self.id())];
  for (;;) {
    // One overlapped directory round, strictly after the link CAS: if a
    // compaction pass published a pending-clean target above our placement
    // before scanning our bucket, this read observes it.
    (void)refresh_dir(self);
    if (placed >= rl.pending) return;  // placement within [P, S]: covered
    const std::uint32_t cur = home_shard(h2, placed);
    const Candidates cs = candidates(h2, rl.pending, rl.shards);
    bool covered = false;
    for (std::uint32_t i = 0; i < cs.n; ++i) {
      if (cs.shard[i] == cur) {
        covered = true;
        break;
      }
    }
    if (covered) return;
    // A pass targeting P > placed may already have scanned (and missed) our
    // bucket: rehome our own entry to the newest count. Prefer the copy-based
    // migrate_entry (publish-before-unlink): a concurrent reader may already
    // have returned this key, so it must never be transiently absent. Only
    // when the heap cannot supply a slot does the in-place unlink/re-link
    // fallback below run, with a stamp bump covering its visibility gap.
    const std::uint32_t fresh = rl.shards;
    const std::uint32_t dst = home_shard(h2, fresh);
    const std::uint64_t src_off = bucket_off(cur, b);
  restart:
    bool prev_is_bucket = true;
    DPtr prev;
    Ref ref{table_.atomic_get_u64(self, b.rank, src_off)};
    std::uint64_t next = 0, gen_e = 0;
    bool found = false;
    while (!ref.is_null()) {
      const DPtr ce = ref.ptr();
      next = field(self, ce, kNextOff);
      gen_e = field(self, ce, kGenOff);
      if ((gen_e & kTagMask) != ref.tag()) goto restart;
      if (Ref{next}.marked()) {
        if (ce.raw() == e.raw()) return;  // an eraser/migrator owns it now
        goto restart;  // predecessor in flux; re-read the chain
      }
      if (ce.raw() == e.raw()) {
        found = true;
        break;
      }
      prev_is_bucket = false;
      prev = ce;
      ref = Ref{next};
    }
    if (!found) return;  // erased or already rehomed by a concurrent pass
    {
      DPtr moved;
      const MigrateResult mr =
          migrate_entry(self, b, cur, dst, e, ref, next, key, &moved);
      if (mr == MigrateResult::kMoved) {
        e = moved;
        placed = fresh;
        continue;  // outer loop: re-verify against a fresh directory read
      }
      if (mr == MigrateResult::kRaced) goto restart;
      // kNoSpace: fall through to the in-place rehome (reuses our slot).
    }
    // CAS 1: mark our entry (freezes it; only we may unlink it now).
    if (heap_.cas_u64(self, e.rank(), e.offset() + kNextOff, next,
                      Ref{next}.marked_ref().word) != next)
      goto restart;
    // Post-mark revalidation, same ABA guard as migrate_entry: the CAS can
    // land on a recycled slot whose next word matches. Frozen under the
    // mark, so one overlapped read decides.
    {
      std::uint64_t gen_now = 0, key_now = 0;
      (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kGenOff, &gen_now);
      (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kKeyOff, &key_now);
      (void)self.flush_all();
      if ((gen_now & kTagMask) != ref.tag() || key_now != key) {
        (void)heap_.cas_u64(self, e.rank(), e.offset() + kNextOff,
                            Ref{next}.marked_ref().word, next);
        goto restart;
      }
      gen_e = gen_now;
    }
    // CAS 2: unlink.
    for (;;) {
      std::uint64_t old;
      if (prev_is_bucket) {
        old = table_.cas_u64(self, b.rank, src_off, ref.word, next);
      } else {
        old = heap_.cas_u64(self, prev.rank(), prev.offset() + kNextOff,
                            ref.word, next);
      }
      if (old == ref.word) break;
      // Chain changed under us: re-find our (marked) entry's predecessor.
      unlink_rewalk:
      prev_is_bucket = true;
      Ref cur2{table_.atomic_get_u64(self, b.rank, src_off)};
      bool relocated_ref = false;
      while (!cur2.is_null()) {
        const DPtr ce = cur2.ptr();
        if (ce.raw() == e.raw()) {
          ref = cur2;
          relocated_ref = true;
          break;
        }
        const std::uint64_t cnext = field(self, ce, kNextOff);
        if ((field(self, ce, kGenOff) & kTagMask) != cur2.tag()) goto unlink_rewalk;
        if (Ref{cnext}.marked()) goto unlink_rewalk;
        prev_is_bucket = false;
        prev = ce;
        cur2 = Ref{cnext};
      }
      assert(relocated_ref && "marked entry vanished from its chain");
      if (!relocated_ref) break;  // release-mode safety valve
    }
    // Stamp between unlink and re-link: the key is momentarily in neither
    // bucket, and a dirty-window reader whose miss spans this gap must
    // re-walk (and find the re-linked copy) instead of confirming the miss
    // -- the key may already have been observed by a completed operation.
    (void)dir_.faa_u64(self, 0, kDirStampOff, 1);
    // Re-link under the fresh placement with a bumped generation (stale
    // references from the old chain must fail their tag check).
    set_field(self, e, kGenOff, gen_e + 1);
    const std::uint64_t dst_off = bucket_off(dst, b);
    std::uint64_t head = table_.atomic_get_u64(self, b.rank, dst_off);
    for (;;) {
      set_field(self, e, kNextOff, head);  // also clears our mark
      const std::uint64_t old = table_.cas_u64(self, b.rank, dst_off, head,
                                               make_ref(e, gen_e + 1).word);
      if (old == head) break;
      head = old;
    }
    self.counters().dht_migrated += 1;
    placed = fresh;  // loop: re-verify against a fresh directory read
  }
}

std::vector<std::uint8_t> DistributedHashTable::insert_many(
    rma::Rank& self, std::span<const std::uint64_t> keys,
    std::span<const std::uint64_t> values) {
  assert(keys.size() == values.size());
  std::vector<std::uint8_t> done(keys.size(), 0);
  if (keys.empty()) return done;
  auto& rl = local_[static_cast<std::size_t>(self.id())];

  struct Pending {
    std::size_t i = 0;  ///< index into keys/values
    DPtr e;
    std::uint64_t h2 = 0;
    std::uint32_t home = 0;  ///< bucket shard (home of the key)
    BucketLoc b{};
    std::uint64_t off = 0;   ///< bucket head word offset (within b.rank)
    std::uint64_t gen = 0;
    std::uint64_t head = 0;  ///< expected head for the next CAS round
    std::uint64_t prev = 0;  ///< CAS-observed previous value
    bool linked = false;
  };
  std::vector<Pending> ps;
  ps.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    Pending p;
    p.i = i;
    p.h2 = shard_hash(keys[i]);
    const DPtr e = alloc_entry(self, home_shard(p.h2, rl.shards));
    if (e.is_null()) continue;  // shard cap reached; done[i] stays 0
    p.e = e;
    p.b = locate(keys[i]);
    p.home = home_shard(p.h2, rl.shards);
    p.off = bucket_off(p.home, p.b);
    ps.push_back(p);
  }
  if (ps.empty()) return done;

  // Round 0: every entry's generation word and home-bucket head (reads) plus
  // its key/value fields (writes) ride one overlapped batch with a single
  // flush_all -- the write-side analogue of lookup_many's traversal rounds.
  // The batch's placement count rides the same round: one directory read
  // serves every insert in the batch (fresh-count placement, see insert()).
  // The flush also orders the field writes before any head CAS below, the
  // same publication fence the blocking insert pays per entry.
  std::uint64_t dir_shards = 0;
  (void)dir_.atomic_get_u64_nb(self, 0, kDirShardsOff, &dir_shards);
  for (auto& p : ps) {
    (void)heap_.atomic_get_u64_nb(self, p.e.rank(), p.e.offset() + kGenOff, &p.gen);
    (void)table_.atomic_get_u64_nb(self, p.b.rank, p.off, &p.head);
    (void)heap_.atomic_put_u64_nb(self, p.e.rank(), p.e.offset() + kKeyOff, keys[p.i]);
    (void)heap_.atomic_put_u64_nb(self, p.e.rank(), p.e.offset() + kValOff,
                                  values[p.i]);
  }
  (void)self.flush_all();

  // The directory may have grown past this rank's cached count between the
  // allocations and round 0: re-place the affected entries under the fresh
  // count (their home moved) and re-read just those heads in one extra round.
  const auto placed = static_cast<std::uint32_t>(dir_shards);
  if (placed > rl.shards) {
    (void)table_.ensure_segments(self, placed);
    (void)heap_.ensure_segments(self, placed);
    rl.shards = placed;
  }
  bool rehomed = false;
  for (auto& p : ps) {
    const std::uint32_t home = home_shard(p.h2, rl.shards);
    if (home == p.home) continue;
    p.home = home;
    p.off = bucket_off(home, p.b);
    (void)table_.atomic_get_u64_nb(self, p.b.rank, p.off, &p.head);
    rehomed = true;
  }
  if (rehomed) (void)self.flush_all();
  const std::uint32_t batch_placed = rl.shards;

  // CAS rounds (the try_read_lock_many shape): each still-unlinked insert
  // rewrites its next field to the head it observed and CASes the bucket
  // head; losers carry the observed value into the next round as their new
  // expectation. The next-field write and the CAS share a round -- the NIC
  // orders same-queue-pair operations, matching the blocking path's
  // write-then-CAS order.
  std::size_t remaining = ps.size();
  while (remaining > 0) {
    for (auto& p : ps) {
      if (p.linked) continue;
      (void)heap_.atomic_put_u64_nb(self, p.e.rank(), p.e.offset() + kNextOff, p.head);
      (void)table_.cas_u64_nb(self, p.b.rank, p.off, p.head,
                              make_ref(p.e, p.gen).word, &p.prev);
    }
    (void)self.flush_all();
    for (auto& p : ps) {
      if (p.linked) continue;
      if (p.prev == p.head) {
        p.linked = true;
        done[p.i] = 1;
        --remaining;
      } else {
        p.head = p.prev;
      }
    }
  }

  // Live counters: one local FAA per touched heap shard (all entries are
  // ours, though possibly spread across shards by spill allocation).
  std::vector<std::pair<std::uint32_t, std::int64_t>> per_shard;
  for (const auto& p : ps) {
    const std::uint32_t s = shard_of(p.e);
    bool found = false;
    for (auto& [ps_s, c] : per_shard)
      if (ps_s == s) {
        ++c;
        found = true;
        break;
      }
    if (!found) per_shard.emplace_back(s, 1);
  }
  for (const auto& [s, c] : per_shard)
    (void)heap_.faa_u64(self, static_cast<std::uint32_t>(self.id()),
                        ctrl_off(s) + kLiveCountOff, c);

  // Post-link fence, shared across the batch: one directory round; only
  // entries a concurrent compaction pass could have outrun get the full
  // per-entry check (rare -- requires a pass targeting past our placement).
  (void)refresh_dir(self);
  if (batch_placed < rl.pending) {
    for (auto& p : ps)
      ensure_covered(self, keys[p.i], p.h2, p.b, p.e, batch_placed);
  }
  return done;
}

std::vector<std::uint8_t> DistributedHashTable::insert_if_absent_many(
    rma::Rank& self, std::span<const std::uint64_t> keys,
    std::span<const std::uint64_t> values) {
  assert(keys.size() == values.size());
  std::vector<std::uint8_t> res(keys.size(), 0);
  if (keys.empty()) return res;
  const auto found = lookup_many(self, keys);
  std::vector<std::uint64_t> ins_keys, ins_vals;
  std::vector<std::size_t> pos;
  std::unordered_set<std::uint64_t> in_batch;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (found[i].has_value()) continue;
    if (!in_batch.insert(keys[i]).second) continue;  // first occurrence wins
    ins_keys.push_back(keys[i]);
    ins_vals.push_back(values[i]);
    pos.push_back(i);
  }
  if (ins_keys.empty()) return res;
  const auto inserted = insert_many(self, ins_keys, ins_vals);
  for (std::size_t j = 0; j < pos.size(); ++j) res[pos[j]] = inserted[j];
  return res;
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

std::optional<std::uint64_t> DistributedHashTable::lookup_in_bucket(
    rma::Rank& self, std::uint64_t key, const BucketLoc& b, std::uint32_t shard) {
  const std::uint64_t off = bucket_off(shard, b);
restart:
  self.counters().dht_probe_rounds += 1;
  Ref ref{table_.atomic_get_u64(self, b.rank, off)};
  while (!ref.is_null()) {
    const DPtr e = ref.ptr();
    const std::uint64_t next = field(self, e, kNextOff);
    if (Ref{next}.marked()) goto restart;  // entry being deleted/rehomed
    const std::uint64_t k = field(self, e, kKeyOff);
    const std::uint64_t v = field(self, e, kValOff);
    // Validate the generation tag *after* reading the fields: a reused entry
    // fails this check and forces a clean retraversal.
    if ((field(self, e, kGenOff) & kTagMask) != ref.tag()) goto restart;
    if (k == key) return v;
    ref = Ref{next};
  }
  return std::nullopt;
}

std::optional<std::uint64_t> DistributedHashTable::lookup(rma::Rank& self,
                                                          std::uint64_t key) {
  const BucketLoc b = locate(key);
  const std::uint64_t h2 = shard_hash(key);
  auto& rl = local_[static_cast<std::size_t>(self.id())];
  std::uint32_t seen_clean = rl.clean, seen_shards = rl.shards;
  std::uint64_t stamp0 = 0;
  bool have_stamp = false;
  for (;;) {
    const Candidates cs = candidates(h2, seen_clean, seen_shards);
    if (cs.n > 1 && !have_stamp) {
      // Dirty window (split not yet compacted): take the migration stamp
      // before probing, so a rehome racing between two of our probes is
      // detected below instead of read as a miss.
      stamp0 = dir_.atomic_get_u64(self, 0, kDirStampOff);
      have_stamp = true;
    }
    for (std::uint32_t i = 0; i < cs.n; ++i) {
      if (auto v = lookup_in_bucket(self, key, b, cs.shard[i])) return v;
    }
    // A fixed table's directory never moves: the miss is final, no confirm.
    if (cfg_.max_shards == 1) return std::nullopt;
    // Full miss: one directory round. Re-walk if a shard was published, the
    // clean count moved, or (dirty window only) any entry was rehomed since
    // our stamp -- an operation that completed before this lookup started is
    // covered by one of those three observations.
    const std::uint64_t stamp1 = refresh_dir(self);
    const bool dir_moved = rl.clean != seen_clean || rl.shards != seen_shards;
    if (!dir_moved && !(cs.n > 1 && stamp1 != stamp0)) return std::nullopt;
    seen_clean = rl.clean;
    seen_shards = rl.shards;
    stamp0 = stamp1;
    have_stamp = true;
  }
}

std::vector<std::optional<std::uint64_t>> DistributedHashTable::lookup_many(
    rma::Rank& self, std::span<const std::uint64_t> keys) {
  std::vector<std::optional<std::uint64_t>> out(keys.size());
  if (keys.empty()) return out;
  auto& rl = local_[static_cast<std::size_t>(self.id())];

  // Per-key cursor through the same traversal state machine as lookup():
  // (re)read the candidate bucket's head, walk the chain entry by entry
  // (restarting on a deletion mark or a generation-tag mismatch), then drop
  // to the next candidate bucket. Each round issues the next word reads of
  // *all* live cursors nonblocking and completes them with one flush, so k
  // independent lookups pay one overlapped latency per round -- and in the
  // compacted steady state every key has exactly one candidate, so the whole
  // batch costs one probe round regardless of shard count. Cursors that
  // exhaust every candidate wait for one shared directory (+ migration
  // stamp) re-read; a moved directory or stamp re-arms them.
  struct Cursor {
    BucketLoc b{};
    std::uint64_t h2 = 0;
    Candidates cs;
    std::uint32_t ci = 0;  ///< candidate currently being probed
    Ref ref{};
    bool need_head = true;
    bool missing = false;  ///< exhausted candidates; awaiting directory re-check
    bool done = false;
    std::uint64_t head = 0;
    std::uint64_t f_next = 0, f_key = 0, f_val = 0, f_gen = 0;
  };
  std::uint32_t seen_clean = rl.clean, seen_shards = rl.shards;
  std::vector<Cursor> cur(keys.size());
  bool dirty = false;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    cur[i].b = locate(keys[i]);
    cur[i].h2 = shard_hash(keys[i]);
    cur[i].cs = candidates(cur[i].h2, seen_clean, seen_shards);
    dirty = dirty || cur[i].cs.n > 1;
  }
  std::uint64_t stamp0 = 0, stamp_now = 0;
  bool want_stamp = dirty;  // issue a stamp read before the first probes

  auto next_candidate = [](Cursor& c) {  // chain exhausted in candidate ci
    if (c.ci + 1 < c.cs.n) {
      ++c.ci;
      c.need_head = true;
    } else {
      c.missing = true;
    }
  };

  for (;;) {
    bool any_live = false;
    const bool stamp_in_round = want_stamp;
    if (stamp_in_round) {
      // Issued before the heads below: nonblocking ops execute at issue
      // time, so this stamp is ordered before every probe of the round.
      (void)dir_.atomic_get_u64_nb(self, 0, kDirStampOff, &stamp_now);
      want_stamp = false;
    }
    for (auto& c : cur) {
      if (c.done || c.missing) continue;
      any_live = true;
      if (c.need_head) {
        self.counters().dht_probe_rounds += 1;
        (void)table_.atomic_get_u64_nb(self, c.b.rank,
                                       bucket_off(c.cs.shard[c.ci], c.b), &c.head);
      } else {
        const DPtr e = c.ref.ptr();
        // Same read order as lookup(): next, then key/value, then the
        // generation word that validates them.
        (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kNextOff, &c.f_next);
        (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kKeyOff, &c.f_key);
        (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kValOff, &c.f_val);
        (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kGenOff, &c.f_gen);
      }
    }
    if (!any_live) {
      bool any_missing = false;
      for (auto& c : cur) any_missing = any_missing || (!c.done && c.missing);
      if (!any_missing) break;
      if (cfg_.max_shards == 1) break;  // fixed table: misses are final
      // One shared directory + stamp round serves every missing cursor.
      const std::uint64_t stamp1 = refresh_dir(self);
      const bool dir_moved = rl.clean != seen_clean || rl.shards != seen_shards;
      const bool moved = dirty && stamp1 != stamp0;
      if (!dir_moved && !moved) {
        for (auto& c : cur) c.done = true;  // confirmed missing
        break;
      }
      seen_clean = rl.clean;
      seen_shards = rl.shards;
      stamp0 = stamp1;
      dirty = false;
      for (auto& c : cur) {
        if (c.done || !c.missing) continue;
        c.cs = candidates(c.h2, seen_clean, seen_shards);
        c.ci = 0;
        c.missing = false;
        c.need_head = true;
        dirty = dirty || c.cs.n > 1;
      }
      continue;  // stamp0 already fresh from the shared round
    }
    (void)self.flush_all();
    if (stamp_in_round) stamp0 = stamp_now;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      Cursor& c = cur[i];
      if (c.done || c.missing) continue;
      if (c.need_head) {
        c.ref = Ref{c.head};
        c.need_head = false;
        if (c.ref.is_null()) next_candidate(c);  // empty bucket
        continue;
      }
      if (Ref{c.f_next}.marked()) {  // being deleted/rehomed: retraverse
        c.need_head = true;
        continue;
      }
      if ((c.f_gen & kTagMask) != c.ref.tag()) {  // reused entry: restart bucket
        c.need_head = true;
        continue;
      }
      if (c.f_key == keys[i]) {
        out[i] = c.f_val;
        c.done = true;
        continue;
      }
      c.ref = Ref{c.f_next};
      if (c.ref.is_null()) next_candidate(c);  // chain exhausted
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Erase
// ---------------------------------------------------------------------------

bool DistributedHashTable::erase_in_bucket(rma::Rank& self, std::uint64_t key,
                                           const BucketLoc& b, std::uint32_t shard) {
  const std::uint64_t boff = bucket_off(shard, b);
restart:
  // prev_* identify the word holding the reference to the current entry:
  // either the bucket head word or the predecessor entry's next field.
  self.counters().dht_probe_rounds += 1;
  bool prev_is_bucket = true;
  DPtr prev_entry;
  Ref ref{table_.atomic_get_u64(self, b.rank, boff)};
  while (!ref.is_null()) {
    const DPtr e = ref.ptr();
    const std::uint64_t next = field(self, e, kNextOff);
    if (Ref{next}.marked()) goto restart;
    const std::uint64_t k = field(self, e, kKeyOff);
    if ((field(self, e, kGenOff) & kTagMask) != ref.tag()) goto restart;
    if (k == key) {
      // CAS 1 (Listing 4 l.32): mark the entry by setting the mark bit in its
      // next field; after this, no other operation modifies the entry.
      const std::uint64_t seen = heap_.cas_u64(self, e.rank(), e.offset() + kNextOff,
                                               next, Ref{next}.marked_ref().word);
      if (seen != next) goto restart;  // raced with another delete/rehome
      // CAS 2 (Listing 4 l.37): unlink by swinging the predecessor reference.
      std::uint64_t old;
      if (prev_is_bucket) {
        old = table_.cas_u64(self, b.rank, boff, ref.word, next);
      } else {
        old = heap_.cas_u64(self, prev_entry.rank(), prev_entry.offset() + kNextOff,
                            ref.word, next);
      }
      if (old == ref.word) {
        dealloc_entry(self, e);
        (void)heap_.faa_u64(self, e.rank(), ctrl_off(shard_of(e)) + kLiveCountOff, -1);
        return true;
      }
      // Unlink failed (predecessor changed / being deleted). Revert the mark
      // so the chain stays operable, then restart. This strengthens Listing 4
      // (which retries while holding the mark) against livelock.
      (void)heap_.cas_u64(self, e.rank(), e.offset() + kNextOff,
                          Ref{next}.marked_ref().word, next);
      goto restart;
    }
    prev_is_bucket = false;
    prev_entry = e;
    ref = Ref{next};
  }
  return false;
}

bool DistributedHashTable::erase(rma::Rank& self, std::uint64_t key) {
  // Same candidate walk as lookup(): erase removes the entry a lookup would
  // have returned.
  const BucketLoc b = locate(key);
  const std::uint64_t h2 = shard_hash(key);
  auto& rl = local_[static_cast<std::size_t>(self.id())];
  std::uint32_t seen_clean = rl.clean, seen_shards = rl.shards;
  std::uint64_t stamp0 = 0;
  bool have_stamp = false;
  bool removed = false;
  for (;;) {
    const Candidates cs = candidates(h2, seen_clean, seen_shards);
    if (cs.n > 1 && !have_stamp) {
      stamp0 = dir_.atomic_get_u64(self, 0, kDirStampOff);
      have_stamp = true;
    }
    for (std::uint32_t i = 0; i < cs.n && !removed; ++i)
      removed = erase_in_bucket(self, key, b, cs.shard[i]);
    if (removed) break;
    if (cfg_.max_shards == 1) return false;  // fixed table: the miss is final
    const std::uint64_t stamp1 = refresh_dir(self);
    const bool dir_moved = rl.clean != seen_clean || rl.shards != seen_shards;
    if (!dir_moved && !(cs.n > 1 && stamp1 != stamp0)) return false;
    seen_clean = rl.clean;
    seen_shards = rl.shards;
    stamp0 = stamp1;
    have_stamp = true;
  }
  if (cfg_.track_erase_epoch) {
    // Publish the removal to epoch-validated memo consumers: bumped after the
    // unlink but before erase() returns. An epoch check that still reads the
    // old value is necessarily *concurrent* with this erase (the bump is not
    // yet visible, so the erase has not returned), and serving the old
    // mapping to a concurrent reader is a linearizable outcome; any check
    // issued after erase() returns observes the bump and falls back.
    const std::uint64_t prev = dir_.faa_u64(self, 0, kDirEpochOff, 1);
    local_[static_cast<std::size_t>(self.id())].erase_epoch = prev + 1;
  }
  return true;
}

std::uint64_t DistributedHashTable::erase_epoch(rma::Rank& self) {
  const std::uint64_t e = dir_.atomic_get_u64(self, 0, kDirEpochOff);
  local_[static_cast<std::size_t>(self.id())].erase_epoch = e;
  return e;
}

// ---------------------------------------------------------------------------
// Online migration / compaction
// ---------------------------------------------------------------------------

DistributedHashTable::MigrateResult DistributedHashTable::migrate_entry(
    rma::Rank& self, const BucketLoc& b, std::uint32_t src_shard,
    std::uint32_t dst_shard, DPtr e, Ref ref, std::uint64_t next,
    std::uint64_t key, DPtr* moved) {
  // Allocate the destination slot BEFORE freezing the source: alloc_entry
  // probes every published shard's free stack and watermark when the heap is
  // near-full, and readers of the source bucket restart their chain walk
  // while an entry is marked -- the mark must only span the short
  // publish/unlink CAS window, not a heap scan. The slot is private until
  // published, so handing it back on a race costs one free-stack push.
  const DPtr e2 = alloc_entry(self, dst_shard, /*allow_grow=*/false);
  if (e2.is_null()) return MigrateResult::kNoSpace;
  // CAS 1: mark the source entry. From here only we may unlink it, readers
  // treat it as in-progress, and its fields are frozen.
  if (heap_.cas_u64(self, e.rank(), e.offset() + kNextOff, next,
                    Ref{next}.marked_ref().word) != next) {
    dealloc_entry(self, e2);
    return MigrateResult::kRaced;
  }
  // Post-mark revalidation: the mark CAS can land on a *recycled* slot whose
  // next word happens to match `next` (erase -> free -> realloc between the
  // caller's generation check and our CAS; e.g. both words zero for a chain
  // tail and an empty free stack). Generation and key are frozen while we
  // hold the mark, so one overlapped read decides; on a foreign entry revert
  // the mark (restoring the stranger's next word) and retreat -- without
  // this, the unlink rewalk below would never find the entry and a marked
  // live entry (plus a stale-key copy) would leak.
  std::uint64_t gen_now = 0, key_now = 0;
  (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kGenOff, &gen_now);
  (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kKeyOff, &key_now);
  (void)self.flush_all();
  if ((gen_now & kTagMask) != ref.tag() || key_now != key) {
    (void)heap_.cas_u64(self, e.rank(), e.offset() + kNextOff,
                        Ref{next}.marked_ref().word, next);
    dealloc_entry(self, e2);
    return MigrateResult::kRaced;
  }
  const std::uint64_t val = field(self, e, kValOff);
  const std::uint64_t gen2 = field(self, e2, kGenOff);
  set_field(self, e2, kKeyOff, key);
  set_field(self, e2, kValOff, val);
  heap_.flush(self, e2.rank());
  // Publish the copy into the home bucket. Mark-before-publish keeps the
  // visible-copy count at one: a completed chain walk never returns both.
  const std::uint64_t dst_off = bucket_off(dst_shard, b);
  std::uint64_t head = table_.atomic_get_u64(self, b.rank, dst_off);
  for (;;) {
    set_field(self, e2, kNextOff, head);
    const std::uint64_t old = table_.cas_u64(self, b.rank, dst_off, head,
                                             make_ref(e2, gen2).word);
    if (old == head) break;
    head = old;
  }
  // Stamp between publish and unlink: a reader that probed the destination
  // before the publish and the source after the unlink spans this bump, so
  // its miss-path stamp check forces a re-walk instead of a lost key.
  (void)dir_.faa_u64(self, 0, kDirStampOff, 1);
  // CAS 2: unlink the marked source from its chain. Cannot fail permanently:
  // we hold the mark, so no other operation removes or modifies it.
  const std::uint64_t src_off = bucket_off(src_shard, b);
  for (;;) {
  rewalk:
    bool prev_is_bucket = true;
    DPtr prev;
    Ref cur{table_.atomic_get_u64(self, b.rank, src_off)};
    bool found = false;
    while (!cur.is_null()) {
      const DPtr ce = cur.ptr();
      if (ce.raw() == e.raw()) {
        found = true;
        std::uint64_t old;
        if (prev_is_bucket) {
          old = table_.cas_u64(self, b.rank, src_off, cur.word, next);
        } else {
          old = heap_.cas_u64(self, prev.rank(), prev.offset() + kNextOff,
                              cur.word, next);
        }
        if (old == cur.word) {
          (void)heap_.faa_u64(self, e2.rank(), ctrl_off(shard_of(e2)) + kLiveCountOff, 1);
          (void)heap_.faa_u64(self, e.rank(), ctrl_off(shard_of(e)) + kLiveCountOff, -1);
          dealloc_entry(self, e);
          self.counters().dht_migrated += 1;
          if (moved != nullptr) *moved = e2;
          return MigrateResult::kMoved;
        }
        goto rewalk;
      }
      const std::uint64_t cnext = field(self, ce, kNextOff);
      if ((field(self, ce, kGenOff) & kTagMask) != cur.tag()) goto rewalk;
      if (Ref{cnext}.marked()) goto rewalk;  // predecessor in flux
      prev_is_bucket = false;
      prev = ce;
      cur = Ref{cnext};
    }
    // Unreachable mod a 32-generation tag wrap: the post-mark revalidation
    // proved we marked the live entry, and a validly marked entry can only
    // leave its chain through our own unlink.
    assert(found && "marked entry vanished from its chain");
    if (!found) return MigrateResult::kMoved;  // release-mode safety valve
  }
}

std::uint64_t DistributedHashTable::compact(rma::Rank& self, std::uint64_t budget) {
  auto& rl = local_[static_cast<std::size_t>(self.id())];
  (void)refresh_dir(self);
  std::uint32_t target = rl.comp_target;
  if (target != kNoPass && rl.shards > target) {
    // The directory grew while this pass was parked (budget slices between
    // checkpoints, or a kNoSpace pause): resuming under the stale target
    // would publish copies a concurrent fresh-target pass may already have
    // scanned past. Abandon the cursor and restart against the grown count
    // -- the pending count is monotone, so the setup below merely raises it.
    rl.comp_target = kNoPass;
    rl.comp_pos = 0;
    target = kNoPass;
  }
  if (target == kNoPass) {
    if (rl.clean >= rl.shards) return 0;  // already compacted
    target = rl.shards;
    // Publish the pass target as the pending-clean count FIRST: any insert
    // that links after our scan visits its bucket re-reads the directory
    // after linking, observes P >= target, and self-covers (ensure_covered).
    // Only then is advancing C to `target` below safe for in-flight inserts.
    std::uint64_t p = dir_.atomic_get_u64(self, 0, kDirPendingOff);
    while (p < target) {
      const std::uint64_t prev = dir_.cas_u64(self, 0, kDirPendingOff, p, target);
      if (prev == p) break;
      p = prev;
    }
    rl.pending = std::max(rl.pending, target);
    rl.comp_target = target;
    rl.comp_pos = 0;
  }
  const std::uint64_t bpr = cfg_.buckets_per_rank;
  const std::uint64_t per_shard = static_cast<std::uint64_t>(nranks_) * bpr;
  const std::uint64_t total = static_cast<std::uint64_t>(target) * per_shard;
  std::uint64_t migrated = 0;
  for (std::uint64_t pos = rl.comp_pos; pos < total; ++pos) {
    const auto s = static_cast<std::uint32_t>(pos / per_shard);
    const auto r = static_cast<std::uint32_t>((pos % per_shard) / bpr);
    const BucketLoc b{r, (pos % bpr) * 8};
    const std::uint64_t off = bucket_off(s, b);
  restart_bucket:
    Ref ref{table_.atomic_get_u64(self, r, off)};
    while (!ref.is_null()) {
      const DPtr e = ref.ptr();
      const std::uint64_t next = field(self, e, kNextOff);
      const std::uint64_t k = field(self, e, kKeyOff);
      if ((field(self, e, kGenOff) & kTagMask) != ref.tag()) goto restart_bucket;
      if (Ref{next}.marked()) {
        // In-progress erase/rehome by its owner: traverse past it.
        ref = Ref{next}.unmarked();
        continue;
      }
      const std::uint32_t home = home_shard(shard_hash(k), target);
      if (home != s) {
        DPtr moved;
        switch (migrate_entry(self, b, s, home, e, ref, next, k, &moved)) {
          case MigrateResult::kMoved:
            // Post-publish fence, the migration analogue of the insert
            // fence: a concurrent pass with a higher target (directory grew
            // mid-pass) publishes its pending count before scanning, so if
            // it already swept home(h, target)'s bucket -- missing the copy
            // we just published -- this directory re-read observes its P
            // and rehomes the copy before it can fall outside the candidate
            // set {home(h, m) : m in [C, S]} when that pass advances C.
            ensure_covered(self, k, shard_hash(k), b, moved, target);
            ++migrated;
            if (budget != 0 && migrated >= budget) {
              rl.comp_pos = pos;  // resume this bucket next call
              return migrated;
            }
            goto restart_bucket;
          case MigrateResult::kRaced:
            goto restart_bucket;
          case MigrateResult::kNoSpace:
            rl.comp_pos = pos;  // heap full: pause; C stays unadvanced
            return migrated;
        }
      }
      ref = Ref{next};
    }
    rl.comp_pos = pos + 1;
  }
  // Full scan done: advance the clean count (monotone CAS) and retire the
  // pass. Readers now compute a single candidate for every key placed under
  // counts up to `target`.
  std::uint64_t c = dir_.atomic_get_u64(self, 0, kDirCleanOff);
  while (c < target) {
    const std::uint64_t prev = dir_.cas_u64(self, 0, kDirCleanOff, c, target);
    if (prev == c) break;
    c = prev;
  }
  rl.clean = std::max(rl.clean, target);
  rl.comp_target = kNoPass;
  rl.comp_pos = 0;
  return migrated;
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

std::uint64_t DistributedHashTable::live_entries(rma::Rank& self, std::uint32_t rank) {
  // Sum the per-shard live counters (each maintained by FAA at publish /
  // unlink time) so the count stays exact across shard growth and migration.
  const std::uint32_t shards = refresh_shards(self);
  std::uint64_t sum = 0;
  for (std::uint32_t s = 0; s < shards; ++s)
    sum += heap_.atomic_get_u64(self, rank, ctrl_off(s) + kLiveCountOff);
  return sum;
}

std::uint64_t DistributedHashTable::debug_copies(rma::Rank& self, std::uint64_t key) {
  const BucketLoc b = locate(key);
  const std::uint32_t shards = refresh_shards(self);
  std::uint64_t copies = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    Ref ref{table_.atomic_get_u64(self, b.rank, bucket_off(s, b))};
    while (!ref.is_null()) {
      const DPtr e = ref.ptr();
      const std::uint64_t next = field(self, e, kNextOff);
      const std::uint64_t k = field(self, e, kKeyOff);
      const bool valid = (field(self, e, kGenOff) & kTagMask) == ref.tag();
      if (valid && !Ref{next}.marked() && k == key) ++copies;
      if (!valid) break;  // chain mutated under the scan; report what we saw
      ref = Ref{next}.unmarked();
    }
  }
  return copies;
}

// ---------------------------------------------------------------------------
// Checkpoint / recovery support
// ---------------------------------------------------------------------------

void DistributedHashTable::serialize_rank(int r, std::vector<std::byte>& out) {
  // Committed-segment counts can differ between the windows only transiently
  // inside grow(); at a checkpoint barrier the larger count is the truth.
  const auto shards = static_cast<std::uint32_t>(
      std::max(table_.committed_segments(), heap_.committed_segments()));
  const auto* sp = reinterpret_cast<const std::byte*>(&shards);
  out.insert(out.end(), sp, sp + 4);
  for (std::uint32_t s = 0; s < shards; ++s) {
    std::byte* tb = table_.local_base(r, s);
    out.insert(out.end(), tb, tb + table_seg_);
    std::byte* hb = heap_.local_base(r, s);
    out.insert(out.end(), hb, hb + heap_seg_);
  }
  if (r == 0) {
    std::byte* db = dir_.local_base(0);
    out.insert(out.end(), db, db + kDirBytes);  // counts + epoch + stamp
  }
}

bool DistributedHashTable::restore_rank(rma::Rank& self, int r,
                                        std::span<const std::byte> in) {
  if (in.size() < 4) return false;
  std::uint32_t shards;
  std::memcpy(&shards, in.data(), 4);
  in = in.subspan(4);
  if (shards == 0 || shards > cfg_.max_shards) return false;
  if (table_.ensure_segments(self, shards) < shards ||
      heap_.ensure_segments(self, shards) < shards)
    return false;
  for (std::uint32_t s = 0; s < shards; ++s) {
    if (in.size() < table_seg_ + heap_seg_) return false;
    std::memcpy(table_.local_base(r, s), in.data(), table_seg_);
    in = in.subspan(table_seg_);
    std::memcpy(heap_.local_base(r, s), in.data(), heap_seg_);
    in = in.subspan(heap_seg_);
  }
  if (r == 0) {
    if (in.size() < kDirBytes) return false;
    std::memcpy(dir_.local_base(0), in.data(), kDirBytes);
    in = in.subspan(kDirBytes);
  }
  return in.empty();
}

}  // namespace gdi::dht
