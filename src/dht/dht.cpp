#include "dht/dht.hpp"

namespace gdi::dht {

std::shared_ptr<DistributedHashTable> DistributedHashTable::create(
    rma::Rank& self, const DhtConfig& cfg) {
  return self.collective_make<DistributedHashTable>(
      [&] { return std::make_shared<DistributedHashTable>(self.nranks(), cfg); });
}

DistributedHashTable::DistributedHashTable(int nranks, const DhtConfig& cfg)
    : cfg_(cfg),
      nranks_(nranks),
      table_(nranks, cfg.buckets_per_rank * 8),
      heap_(nranks, (cfg.entries_per_rank + 1) * kEntrySize),
      ctrl_(nranks, 16) {
  // Thread every rank's entry slots onto its free stack. Slot 0 is reserved
  // (offset 0 on rank 0 would alias the null DPtr); usable slots are
  // 1..entries_per_rank. The "next free" index is stashed in the entry's
  // next field (idx value, not a reference).
  for (int r = 0; r < nranks; ++r) {
    auto* heap = reinterpret_cast<std::uint64_t*>(heap_.local_base(r));
    for (std::size_t i = 1; i <= cfg.entries_per_rank; ++i) {
      const std::size_t base = i * (kEntrySize / 8);
      heap[base + kNextOff / 8] = (i < cfg.entries_per_rank) ? i + 1 : kNilIdx;
      heap[base + kGenOff / 8] = 0;
    }
    auto* ctrl = reinterpret_cast<std::uint64_t*>(ctrl_.local_base(r));
    ctrl[0] = cfg.entries_per_rank > 0 ? 1 : kNilIdx;
  }
}

DistributedHashTable::BucketLoc DistributedHashTable::locate(std::uint64_t key) const {
  const std::uint64_t h = splitmix64(key ^ cfg_.salt);
  const std::uint64_t total = static_cast<std::uint64_t>(nranks_) * cfg_.buckets_per_rank;
  const std::uint64_t g = h % total;
  return BucketLoc{static_cast<std::uint32_t>(g / cfg_.buckets_per_rank),
                   (g % cfg_.buckets_per_rank) * 8};
}

DPtr DistributedHashTable::alloc_entry(rma::Rank& self) {
  const auto target = static_cast<std::uint32_t>(self.id());
  std::uint64_t head = ctrl_.atomic_get_u64(self, target, kFreeHeadOff);
  for (;;) {
    const std::uint64_t idx = head & kIdxMask;
    const std::uint64_t tag = head >> 48;
    if (idx == kNilIdx) return DPtr{};
    const std::uint64_t next =
        heap_.atomic_get_u64(self, target, idx * kEntrySize + kNextOff);
    const std::uint64_t new_head = ((tag + 1) << 48) | (next & kIdxMask);
    const std::uint64_t old = ctrl_.cas_u64(self, target, kFreeHeadOff, head, new_head);
    if (old == head) return DPtr{target, idx * kEntrySize};
    head = old;
  }
}

void DistributedHashTable::dealloc_entry(rma::Rank& self, DPtr e) {
  // Bump the generation first so stale references fail their tag check.
  const std::uint64_t gen = field(self, e, kGenOff);
  set_field(self, e, kGenOff, gen + 1);
  const std::uint32_t target = e.rank();
  const std::uint64_t idx = e.offset() / kEntrySize;
  std::uint64_t head = ctrl_.atomic_get_u64(self, target, kFreeHeadOff);
  for (;;) {
    const std::uint64_t tag = head >> 48;
    set_field(self, e, kNextOff, head & kIdxMask);
    const std::uint64_t new_head = ((tag + 1) << 48) | idx;
    const std::uint64_t old = ctrl_.cas_u64(self, target, kFreeHeadOff, head, new_head);
    if (old == head) return;
    head = old;
  }
}

bool DistributedHashTable::insert(rma::Rank& self, std::uint64_t key,
                                  std::uint64_t value) {
  const DPtr e = alloc_entry(self);
  if (e.is_null()) return false;
  const std::uint64_t gen = field(self, e, kGenOff);
  set_field(self, e, kKeyOff, key);
  set_field(self, e, kValOff, value);
  heap_.flush(self, e.rank());
  const BucketLoc b = locate(key);
  std::uint64_t head = table_.atomic_get_u64(self, b.rank, b.offset);
  for (;;) {  // Listing 4, insert: prepend with CAS on the bucket head.
    set_field(self, e, kNextOff, head);
    const std::uint64_t old =
        table_.cas_u64(self, b.rank, b.offset, head, make_ref(e, gen).word);
    if (old == head) return true;
    head = old;
  }
}

bool DistributedHashTable::insert_if_absent(rma::Rank& self, std::uint64_t key,
                                            std::uint64_t value) {
  if (lookup(self, key).has_value()) return false;
  return insert(self, key, value);
}

std::optional<std::uint64_t> DistributedHashTable::lookup(rma::Rank& self,
                                                          std::uint64_t key) {
  const BucketLoc b = locate(key);
restart:
  Ref ref{table_.atomic_get_u64(self, b.rank, b.offset)};
  while (!ref.is_null()) {
    const DPtr e = ref.ptr();
    const std::uint64_t next = field(self, e, kNextOff);
    if (Ref{next}.marked()) goto restart;  // entry being deleted (Listing 4 l.13)
    const std::uint64_t k = field(self, e, kKeyOff);
    const std::uint64_t v = field(self, e, kValOff);
    // Validate the generation tag *after* reading the fields: a reused entry
    // fails this check and forces a clean retraversal.
    if ((field(self, e, kGenOff) & kTagMask) != ref.tag()) goto restart;
    if (k == key) return v;
    ref = Ref{next};
  }
  return std::nullopt;
}

std::vector<std::optional<std::uint64_t>> DistributedHashTable::lookup_many(
    rma::Rank& self, std::span<const std::uint64_t> keys) {
  std::vector<std::optional<std::uint64_t>> out(keys.size());
  if (keys.empty()) return out;

  // Per-key cursor through the same traversal state machine as lookup():
  // (re)read the bucket head, then walk the chain entry by entry, restarting
  // on a deletion mark or a generation-tag mismatch. Each round issues the
  // next word reads of *all* live cursors nonblocking and completes them with
  // one flush, so k independent lookups pay one overlapped latency per round.
  struct Cursor {
    BucketLoc b{};
    Ref ref{};
    bool need_head = true;
    bool done = false;
    std::uint64_t head = 0;
    std::uint64_t f_next = 0, f_key = 0, f_val = 0, f_gen = 0;
  };
  std::vector<Cursor> cur(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) cur[i].b = locate(keys[i]);

  for (;;) {
    bool any_live = false;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      Cursor& c = cur[i];
      if (c.done) continue;
      any_live = true;
      if (c.need_head) {
        (void)table_.atomic_get_u64_nb(self, c.b.rank, c.b.offset, &c.head);
      } else {
        const DPtr e = c.ref.ptr();
        // Same read order as lookup(): next, then key/value, then the
        // generation word that validates them.
        (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kNextOff, &c.f_next);
        (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kKeyOff, &c.f_key);
        (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kValOff, &c.f_val);
        (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kGenOff, &c.f_gen);
      }
    }
    if (!any_live) break;
    (void)self.flush_all();
    for (std::size_t i = 0; i < cur.size(); ++i) {
      Cursor& c = cur[i];
      if (c.done) continue;
      if (c.need_head) {
        c.ref = Ref{c.head};
        c.need_head = false;
        if (c.ref.is_null()) c.done = true;  // empty bucket / exhausted chain
        continue;
      }
      if (Ref{c.f_next}.marked()) {  // entry being deleted: clean retraversal
        c.need_head = true;
        continue;
      }
      if ((c.f_gen & kTagMask) != c.ref.tag()) {  // reused entry: restart
        c.need_head = true;
        continue;
      }
      if (c.f_key == keys[i]) {
        out[i] = c.f_val;
        c.done = true;
        continue;
      }
      c.ref = Ref{c.f_next};
      if (c.ref.is_null()) c.done = true;
    }
  }
  return out;
}

bool DistributedHashTable::erase(rma::Rank& self, std::uint64_t key) {
  const BucketLoc b = locate(key);
restart:
  // prev_* identify the word holding the reference to the current entry:
  // either the bucket head word or the predecessor entry's next field.
  bool prev_is_bucket = true;
  DPtr prev_entry;
  Ref ref{table_.atomic_get_u64(self, b.rank, b.offset)};
  while (!ref.is_null()) {
    const DPtr e = ref.ptr();
    const std::uint64_t next = field(self, e, kNextOff);
    if (Ref{next}.marked()) goto restart;
    const std::uint64_t k = field(self, e, kKeyOff);
    if ((field(self, e, kGenOff) & kTagMask) != ref.tag()) goto restart;
    if (k == key) {
      // CAS 1 (Listing 4 l.32): mark the entry by setting the mark bit in its
      // next field; after this, no other operation modifies the entry.
      const std::uint64_t seen = heap_.cas_u64(self, e.rank(), e.offset() + kNextOff,
                                               next, Ref{next}.marked_ref().word);
      if (seen != next) goto restart;  // raced with another delete/insert
      // CAS 2 (Listing 4 l.37): unlink by swinging the predecessor reference.
      std::uint64_t old;
      if (prev_is_bucket) {
        old = table_.cas_u64(self, b.rank, b.offset, ref.word, next);
      } else {
        old = heap_.cas_u64(self, prev_entry.rank(), prev_entry.offset() + kNextOff,
                            ref.word, next);
      }
      if (old == ref.word) {
        dealloc_entry(self, e);
        (void)ctrl_.faa_u64(self, e.rank(), kLiveCountOff, 0);  // no-op hook
        return true;
      }
      // Unlink failed (predecessor changed / being deleted). Revert the mark
      // so the chain stays operable, then restart. This strengthens Listing 4
      // (which retries while holding the mark) against livelock.
      (void)heap_.cas_u64(self, e.rank(), e.offset() + kNextOff,
                          Ref{next}.marked_ref().word, next);
      goto restart;
    }
    prev_is_bucket = false;
    prev_entry = e;
    ref = Ref{next};
  }
  return false;
}

std::uint64_t DistributedHashTable::live_entries(rma::Rank& self, std::uint32_t rank) {
  // Diagnostic only (not linearizable): derive live = capacity - free by
  // walking the free list.
  std::uint64_t free_count = 0;
  std::uint64_t idx = ctrl_.atomic_get_u64(self, rank, kFreeHeadOff) & kIdxMask;
  while (idx != kNilIdx && free_count <= cfg_.entries_per_rank) {
    ++free_count;
    idx = heap_.atomic_get_u64(self, rank, idx * kEntrySize + kNextOff) & kIdxMask;
  }
  return cfg_.entries_per_rank - std::min(free_count, cfg_.entries_per_rank);
}

}  // namespace gdi::dht
