#include "dht/dht.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_set>

namespace gdi::dht {

std::shared_ptr<DistributedHashTable> DistributedHashTable::create(
    rma::Rank& self, const DhtConfig& cfg) {
  return self.collective_make<DistributedHashTable>(
      [&] { return std::make_shared<DistributedHashTable>(self.nranks(), cfg); });
}

DistributedHashTable::DistributedHashTable(int nranks, const DhtConfig& cfg)
    : cfg_(cfg),
      nranks_(nranks),
      table_seg_(cfg.buckets_per_rank * 8),
      heap_seg_((cfg.entries_per_rank + 1) * kEntrySize),
      table_(nranks, table_seg_, cfg.max_shards == 0 ? 1 : cfg.max_shards),
      heap_(nranks, heap_seg_, cfg.max_shards == 0 ? 1 : cfg.max_shards),
      dir_(nranks, 16),
      local_(static_cast<std::size_t>(nranks)) {
  if (cfg_.max_shards == 0) cfg_.max_shards = 1;
  assert(cfg_.buckets_per_rank > 0);
  // Entry references must stay addressable through a 48-bit DPtr offset.
  assert(cfg_.max_shards * heap_seg_ <= DPtr::kMaxOffset);
  // A fresh all-zero segment is a valid empty shard (empty buckets, empty
  // free stack, zero watermark), so only the shard directory needs a nonzero
  // initial value. Construction happens-before the collective publication.
  *reinterpret_cast<std::uint64_t*>(dir_.local_base(0)) = 1;
}

DistributedHashTable::BucketLoc DistributedHashTable::locate(std::uint64_t key) const {
  const std::uint64_t h = splitmix64(key ^ cfg_.salt);
  const std::uint64_t total = static_cast<std::uint64_t>(nranks_) * cfg_.buckets_per_rank;
  const std::uint64_t g = h % total;
  return BucketLoc{static_cast<std::uint32_t>(g / cfg_.buckets_per_rank),
                   (g % cfg_.buckets_per_rank) * 8};
}

// ---------------------------------------------------------------------------
// Shard directory
// ---------------------------------------------------------------------------

std::uint32_t DistributedHashTable::known_shards(rma::Rank& self) const {
  return local_[static_cast<std::size_t>(self.id())].shards;
}

std::uint32_t DistributedHashTable::refresh_shards(rma::Rank& self) {
  const auto n = static_cast<std::uint32_t>(dir_.atomic_get_u64(self, 0, 0));
  auto& mine = local_[static_cast<std::size_t>(self.id())].shards;
  if (n > mine) {
    // Commit the reserved window segments backing the newly published shards
    // before addressing them (registration bookkeeping; see Window).
    (void)table_.ensure_segments(self, n);
    (void)heap_.ensure_segments(self, n);
    mine = n;
  }
  return mine;
}

bool DistributedHashTable::grow(rma::Rank& self) {
  const std::uint32_t before = known_shards(self);
  if (refresh_shards(self) > before) return true;  // a racer already published
  if (before >= cfg_.max_shards) return false;
  // Commit memory for shard `before` on every rank, then publish it with one
  // one-sided CAS on the directory word. A fresh segment is already a valid
  // empty shard, so no initialization writes are needed -- losing the CAS
  // race is harmless (the winner published the same all-zero shard).
  (void)table_.ensure_segments(self, before + 1);
  (void)heap_.ensure_segments(self, before + 1);
  (void)dir_.cas_u64(self, 0, 0, before, before + 1);
  (void)refresh_shards(self);  // pick up our publication or the racer's
  return true;
}

std::uint32_t DistributedHashTable::shard_count(rma::Rank& self) {
  return refresh_shards(self);
}

// ---------------------------------------------------------------------------
// Entry heap
// ---------------------------------------------------------------------------

DPtr DistributedHashTable::pop_free(rma::Rank& self, std::uint32_t target,
                                    std::uint32_t shard) {
  std::uint64_t head =
      heap_.atomic_get_u64(self, target, ctrl_off(shard) + kFreeHeadOff);
  for (;;) {
    const std::uint64_t idx = head & kIdxMask;
    if (idx == 0) return DPtr{};  // empty (slot 0 is the control slot)
    const std::uint64_t tag = head >> 48;
    const std::uint64_t next =
        heap_.atomic_get_u64(self, target, entry_off(shard, idx) + kNextOff);
    const std::uint64_t new_head = ((tag + 1) << 48) | (next & kIdxMask);
    const std::uint64_t old = heap_.cas_u64(self, target, ctrl_off(shard) + kFreeHeadOff,
                                            head, new_head);
    if (old == head) return DPtr{target, entry_off(shard, idx)};
    head = old;
  }
}

DPtr DistributedHashTable::alloc_entry(rma::Rank& self) {
  const auto target = static_cast<std::uint32_t>(self.id());
  for (;;) {
    const std::uint32_t newest = known_shards(self) - 1;
    // Recycled entries of the newest shard first (bounds memory under
    // churn), then bump allocation from its never-used region.
    if (DPtr e = pop_free(self, target, newest); !e.is_null()) return e;
    const std::uint64_t w =
        heap_.faa_u64(self, target, ctrl_off(newest) + kWatermarkOff, 1);
    if (w < cfg_.entries_per_rank) return DPtr{target, entry_off(newest, w + 1)};
    // Newest shard exhausted: publish (or adopt) the next shard and retry.
    if (!grow(self)) return DPtr{};
  }
}

void DistributedHashTable::dealloc_entry(rma::Rank& self, DPtr e) {
  // Bump the generation first so stale references fail their tag check.
  const std::uint64_t gen = field(self, e, kGenOff);
  set_field(self, e, kGenOff, gen + 1);
  const std::uint32_t target = e.rank();
  const std::uint32_t shard = shard_of(e);
  const std::uint64_t idx = (e.offset() - ctrl_off(shard)) / kEntrySize;
  std::uint64_t head =
      heap_.atomic_get_u64(self, target, ctrl_off(shard) + kFreeHeadOff);
  for (;;) {
    const std::uint64_t tag = head >> 48;
    set_field(self, e, kNextOff, head & kIdxMask);
    const std::uint64_t new_head = ((tag + 1) << 48) | idx;
    const std::uint64_t old = heap_.cas_u64(self, target, ctrl_off(shard) + kFreeHeadOff,
                                            head, new_head);
    if (old == head) return;
    head = old;
  }
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

bool DistributedHashTable::insert(rma::Rank& self, std::uint64_t key,
                                  std::uint64_t value) {
  const DPtr e = alloc_entry(self);
  if (e.is_null()) return false;  // shard cap reached
  const std::uint32_t shard = shard_of(e);
  const std::uint64_t gen = field(self, e, kGenOff);
  set_field(self, e, kKeyOff, key);
  set_field(self, e, kValOff, value);
  heap_.flush(self, e.rank());
  // Publish into the entry's own shard's bucket segment.
  const BucketLoc b = locate(key);
  const std::uint64_t off = bucket_off(shard, b);
  std::uint64_t head = table_.atomic_get_u64(self, b.rank, off);
  for (;;) {  // Listing 4, insert: prepend with CAS on the bucket head.
    set_field(self, e, kNextOff, head);
    const std::uint64_t old = table_.cas_u64(self, b.rank, off, head,
                                             make_ref(e, gen).word);
    if (old == head) break;
    head = old;
  }
  (void)heap_.faa_u64(self, e.rank(), ctrl_off(shard) + kLiveCountOff, 1);
  return true;
}

bool DistributedHashTable::insert_if_absent(rma::Rank& self, std::uint64_t key,
                                            std::uint64_t value) {
  if (lookup(self, key).has_value()) return false;
  return insert(self, key, value);
}

std::vector<std::uint8_t> DistributedHashTable::insert_many(
    rma::Rank& self, std::span<const std::uint64_t> keys,
    std::span<const std::uint64_t> values) {
  assert(keys.size() == values.size());
  std::vector<std::uint8_t> done(keys.size(), 0);
  if (keys.empty()) return done;

  struct Pending {
    std::size_t i = 0;  ///< index into keys/values
    DPtr e;
    std::uint32_t shard = 0;
    BucketLoc b{};
    std::uint64_t off = 0;   ///< bucket head word offset (within b.rank)
    std::uint64_t gen = 0;
    std::uint64_t head = 0;  ///< expected head for the next CAS round
    std::uint64_t prev = 0;  ///< CAS-observed previous value
    bool linked = false;
  };
  std::vector<Pending> ps;
  ps.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const DPtr e = alloc_entry(self);
    if (e.is_null()) continue;  // shard cap reached; done[i] stays 0
    Pending p;
    p.i = i;
    p.e = e;
    p.shard = shard_of(e);
    p.b = locate(keys[i]);
    p.off = bucket_off(p.shard, p.b);
    ps.push_back(p);
  }
  if (ps.empty()) return done;

  // Round 0: every entry's generation word and bucket head (reads) plus its
  // key/value fields (writes) ride one overlapped batch with a single
  // flush_all -- the write-side analogue of lookup_many's traversal rounds.
  // The flush also orders the field writes before any head CAS below, the
  // same publication fence the blocking insert pays per entry.
  for (auto& p : ps) {
    (void)heap_.atomic_get_u64_nb(self, p.e.rank(), p.e.offset() + kGenOff, &p.gen);
    (void)table_.atomic_get_u64_nb(self, p.b.rank, p.off, &p.head);
    (void)heap_.atomic_put_u64_nb(self, p.e.rank(), p.e.offset() + kKeyOff, keys[p.i]);
    (void)heap_.atomic_put_u64_nb(self, p.e.rank(), p.e.offset() + kValOff,
                                  values[p.i]);
  }
  (void)self.flush_all();

  // CAS rounds (the try_read_lock_many shape): each still-unlinked insert
  // rewrites its next field to the head it observed and CASes the bucket
  // head; losers carry the observed value into the next round as their new
  // expectation. The next-field write and the CAS share a round -- the NIC
  // orders same-queue-pair operations, matching the blocking path's
  // write-then-CAS order.
  std::size_t remaining = ps.size();
  while (remaining > 0) {
    for (auto& p : ps) {
      if (p.linked) continue;
      (void)heap_.atomic_put_u64_nb(self, p.e.rank(), p.e.offset() + kNextOff, p.head);
      (void)table_.cas_u64_nb(self, p.b.rank, p.off, p.head,
                              make_ref(p.e, p.gen).word, &p.prev);
    }
    (void)self.flush_all();
    for (auto& p : ps) {
      if (p.linked) continue;
      if (p.prev == p.head) {
        p.linked = true;
        done[p.i] = 1;
        --remaining;
      } else {
        p.head = p.prev;
      }
    }
  }

  // Live counters: one local FAA per touched shard (all entries are ours).
  std::vector<std::pair<std::uint32_t, std::int64_t>> per_shard;
  for (const auto& p : ps) {
    bool found = false;
    for (auto& [s, c] : per_shard)
      if (s == p.shard) {
        ++c;
        found = true;
        break;
      }
    if (!found) per_shard.emplace_back(p.shard, 1);
  }
  for (const auto& [s, c] : per_shard)
    (void)heap_.faa_u64(self, static_cast<std::uint32_t>(self.id()),
                        ctrl_off(s) + kLiveCountOff, c);
  return done;
}

std::vector<std::uint8_t> DistributedHashTable::insert_if_absent_many(
    rma::Rank& self, std::span<const std::uint64_t> keys,
    std::span<const std::uint64_t> values) {
  assert(keys.size() == values.size());
  std::vector<std::uint8_t> res(keys.size(), 0);
  if (keys.empty()) return res;
  const auto found = lookup_many(self, keys);
  std::vector<std::uint64_t> ins_keys, ins_vals;
  std::vector<std::size_t> pos;
  std::unordered_set<std::uint64_t> in_batch;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (found[i].has_value()) continue;
    if (!in_batch.insert(keys[i]).second) continue;  // first occurrence wins
    ins_keys.push_back(keys[i]);
    ins_vals.push_back(values[i]);
    pos.push_back(i);
  }
  if (ins_keys.empty()) return res;
  const auto inserted = insert_many(self, ins_keys, ins_vals);
  for (std::size_t j = 0; j < pos.size(); ++j) res[pos[j]] = inserted[j];
  return res;
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

std::optional<std::uint64_t> DistributedHashTable::lookup_in_shard(
    rma::Rank& self, std::uint64_t key, const BucketLoc& b, std::uint32_t shard) {
  const std::uint64_t off = bucket_off(shard, b);
restart:
  Ref ref{table_.atomic_get_u64(self, b.rank, off)};
  while (!ref.is_null()) {
    const DPtr e = ref.ptr();
    const std::uint64_t next = field(self, e, kNextOff);
    if (Ref{next}.marked()) goto restart;  // entry being deleted (Listing 4 l.13)
    const std::uint64_t k = field(self, e, kKeyOff);
    const std::uint64_t v = field(self, e, kValOff);
    // Validate the generation tag *after* reading the fields: a reused entry
    // fails this check and forces a clean retraversal.
    if ((field(self, e, kGenOff) & kTagMask) != ref.tag()) goto restart;
    if (k == key) return v;
    ref = Ref{next};
  }
  return std::nullopt;
}

std::optional<std::uint64_t> DistributedHashTable::lookup(rma::Rank& self,
                                                          std::uint64_t key) {
  const BucketLoc b = locate(key);
  std::optional<std::uint64_t> out;
  (void)walk_shards(self, [&](std::uint32_t s) {
    out = lookup_in_shard(self, key, b, s);
    return out.has_value();
  });
  return out;
}

std::vector<std::optional<std::uint64_t>> DistributedHashTable::lookup_many(
    rma::Rank& self, std::span<const std::uint64_t> keys) {
  std::vector<std::optional<std::uint64_t>> out(keys.size());
  if (keys.empty()) return out;

  // Per-key cursor through the same traversal state machine as lookup():
  // (re)read the shard's bucket head, walk the chain entry by entry
  // (restarting on a deletion mark or a generation-tag mismatch), then drop
  // to the next older shard. Each round issues the next word reads of *all*
  // live cursors nonblocking and completes them with one flush, so k
  // independent lookups pay one overlapped latency per round. Cursors that
  // exhaust every known shard wait for one shared directory re-read; newly
  // published shards are then walked the same way.
  struct Cursor {
    BucketLoc b{};
    Ref ref{};
    std::uint32_t shard = 0;  ///< shard currently being walked
    std::uint32_t stop = 0;   ///< lowest shard of the current pass (inclusive)
    bool need_head = true;
    bool missing = false;  ///< exhausted the pass; awaiting directory re-check
    bool done = false;
    std::uint64_t head = 0;
    std::uint64_t f_next = 0, f_key = 0, f_val = 0, f_gen = 0;
  };
  std::vector<Cursor> cur(keys.size());
  std::uint32_t walked = known_shards(self);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    cur[i].b = locate(keys[i]);
    cur[i].shard = walked - 1;
  }

  auto next_shard = [](Cursor& c) {  // chain exhausted in c.shard
    if (c.shard > c.stop) {
      --c.shard;
      c.need_head = true;
    } else {
      c.missing = true;
    }
  };

  for (;;) {
    bool any_live = false;
    for (auto& c : cur) {
      if (c.done || c.missing) continue;
      any_live = true;
      if (c.need_head) {
        (void)table_.atomic_get_u64_nb(self, c.b.rank, bucket_off(c.shard, c.b),
                                       &c.head);
      } else {
        const DPtr e = c.ref.ptr();
        // Same read order as lookup(): next, then key/value, then the
        // generation word that validates them.
        (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kNextOff, &c.f_next);
        (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kKeyOff, &c.f_key);
        (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kValOff, &c.f_val);
        (void)heap_.atomic_get_u64_nb(self, e.rank(), e.offset() + kGenOff, &c.f_gen);
      }
    }
    if (!any_live) {
      bool any_missing = false;
      for (auto& c : cur) any_missing = any_missing || (!c.done && c.missing);
      if (!any_missing) break;
      if (walked >= cfg_.max_shards) break;  // no shard can be newer
      // One directory re-read serves every missing cursor in the batch.
      const std::uint32_t fresh = refresh_shards(self);
      if (fresh <= walked) {
        for (auto& c : cur) c.done = true;  // confirmed missing
        break;
      }
      for (auto& c : cur) {
        if (c.done || !c.missing) continue;
        c.shard = fresh - 1;
        c.stop = walked;
        c.missing = false;
        c.need_head = true;
      }
      walked = fresh;
      continue;
    }
    (void)self.flush_all();
    for (std::size_t i = 0; i < cur.size(); ++i) {
      Cursor& c = cur[i];
      if (c.done || c.missing) continue;
      if (c.need_head) {
        c.ref = Ref{c.head};
        c.need_head = false;
        if (c.ref.is_null()) next_shard(c);  // empty bucket in this shard
        continue;
      }
      if (Ref{c.f_next}.marked()) {  // entry being deleted: clean retraversal
        c.need_head = true;
        continue;
      }
      if ((c.f_gen & kTagMask) != c.ref.tag()) {  // reused entry: restart shard
        c.need_head = true;
        continue;
      }
      if (c.f_key == keys[i]) {
        out[i] = c.f_val;
        c.done = true;
        continue;
      }
      c.ref = Ref{c.f_next};
      if (c.ref.is_null()) next_shard(c);  // chain exhausted in this shard
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Erase
// ---------------------------------------------------------------------------

bool DistributedHashTable::erase_in_shard(rma::Rank& self, std::uint64_t key,
                                          const BucketLoc& b, std::uint32_t shard) {
  const std::uint64_t boff = bucket_off(shard, b);
restart:
  // prev_* identify the word holding the reference to the current entry:
  // either the bucket head word or the predecessor entry's next field.
  bool prev_is_bucket = true;
  DPtr prev_entry;
  Ref ref{table_.atomic_get_u64(self, b.rank, boff)};
  while (!ref.is_null()) {
    const DPtr e = ref.ptr();
    const std::uint64_t next = field(self, e, kNextOff);
    if (Ref{next}.marked()) goto restart;
    const std::uint64_t k = field(self, e, kKeyOff);
    if ((field(self, e, kGenOff) & kTagMask) != ref.tag()) goto restart;
    if (k == key) {
      // CAS 1 (Listing 4 l.32): mark the entry by setting the mark bit in its
      // next field; after this, no other operation modifies the entry.
      const std::uint64_t seen = heap_.cas_u64(self, e.rank(), e.offset() + kNextOff,
                                               next, Ref{next}.marked_ref().word);
      if (seen != next) goto restart;  // raced with another delete/insert
      // CAS 2 (Listing 4 l.37): unlink by swinging the predecessor reference.
      std::uint64_t old;
      if (prev_is_bucket) {
        old = table_.cas_u64(self, b.rank, boff, ref.word, next);
      } else {
        old = heap_.cas_u64(self, prev_entry.rank(), prev_entry.offset() + kNextOff,
                            ref.word, next);
      }
      if (old == ref.word) {
        dealloc_entry(self, e);
        (void)heap_.faa_u64(self, e.rank(), ctrl_off(shard_of(e)) + kLiveCountOff, -1);
        return true;
      }
      // Unlink failed (predecessor changed / being deleted). Revert the mark
      // so the chain stays operable, then restart. This strengthens Listing 4
      // (which retries while holding the mark) against livelock.
      (void)heap_.cas_u64(self, e.rank(), e.offset() + kNextOff,
                          Ref{next}.marked_ref().word, next);
      goto restart;
    }
    prev_is_bucket = false;
    prev_entry = e;
    ref = Ref{next};
  }
  return false;
}

bool DistributedHashTable::erase(rma::Rank& self, std::uint64_t key) {
  // Newest-first like lookup(): erase removes the entry a lookup would have
  // returned.
  const BucketLoc b = locate(key);
  const bool removed = walk_shards(
      self, [&](std::uint32_t s) { return erase_in_shard(self, key, b, s); });
  if (removed && cfg_.track_erase_epoch) {
    // Publish the removal to epoch-validated memo consumers: bumped after the
    // unlink but before erase() returns. An epoch check that still reads the
    // old value is necessarily *concurrent* with this erase (the bump is not
    // yet visible, so the erase has not returned), and serving the old
    // mapping to a concurrent reader is a linearizable outcome; any check
    // issued after erase() returns observes the bump and falls back.
    const std::uint64_t prev = dir_.faa_u64(self, 0, kDirEpochOff, 1);
    local_[static_cast<std::size_t>(self.id())].erase_epoch = prev + 1;
  }
  return removed;
}

std::uint64_t DistributedHashTable::erase_epoch(rma::Rank& self) {
  const std::uint64_t e = dir_.atomic_get_u64(self, 0, kDirEpochOff);
  local_[static_cast<std::size_t>(self.id())].erase_epoch = e;
  return e;
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

std::uint64_t DistributedHashTable::live_entries(rma::Rank& self, std::uint32_t rank) {
  // Sum the per-shard live counters (each maintained by FAA at publish /
  // unlink time) so the count stays exact across shard growth.
  const std::uint32_t shards = refresh_shards(self);
  std::uint64_t sum = 0;
  for (std::uint32_t s = 0; s < shards; ++s)
    sum += heap_.atomic_get_u64(self, rank, ctrl_off(s) + kLiveCountOff);
  return sum;
}

// ---------------------------------------------------------------------------
// Checkpoint / recovery support
// ---------------------------------------------------------------------------

void DistributedHashTable::serialize_rank(int r, std::vector<std::byte>& out) {
  // Committed-segment counts can differ between the windows only transiently
  // inside grow(); at a checkpoint barrier the larger count is the truth.
  const auto shards = static_cast<std::uint32_t>(
      std::max(table_.committed_segments(), heap_.committed_segments()));
  const auto* sp = reinterpret_cast<const std::byte*>(&shards);
  out.insert(out.end(), sp, sp + 4);
  for (std::uint32_t s = 0; s < shards; ++s) {
    std::byte* tb = table_.local_base(r, s);
    out.insert(out.end(), tb, tb + table_seg_);
    std::byte* hb = heap_.local_base(r, s);
    out.insert(out.end(), hb, hb + heap_seg_);
  }
  if (r == 0) {
    std::byte* db = dir_.local_base(0);
    out.insert(out.end(), db, db + 16);  // shard count + erase epoch
  }
}

bool DistributedHashTable::restore_rank(rma::Rank& self, int r,
                                        std::span<const std::byte> in) {
  if (in.size() < 4) return false;
  std::uint32_t shards;
  std::memcpy(&shards, in.data(), 4);
  in = in.subspan(4);
  if (shards == 0 || shards > cfg_.max_shards) return false;
  if (table_.ensure_segments(self, shards) < shards ||
      heap_.ensure_segments(self, shards) < shards)
    return false;
  for (std::uint32_t s = 0; s < shards; ++s) {
    if (in.size() < table_seg_ + heap_seg_) return false;
    std::memcpy(table_.local_base(r, s), in.data(), table_seg_);
    in = in.subspan(table_seg_);
    std::memcpy(heap_.local_base(r, s), in.data(), heap_seg_);
    in = in.subspan(heap_seg_);
  }
  if (r == 0) {
    if (in.size() < 16) return false;
    std::memcpy(dir_.local_base(0), in.data(), 16);
    in = in.subspan(16);
  }
  return in.empty();
}

}  // namespace gdi::dht
