// Fully-offloaded lock-free distributed hash table (paper Section 5.7,
// Listing 4), sharded and growable.
//
// GDA resolves application-vertex-ID -> internal-DPtr translation (and other
// internal indexing) with a DHT whose *every* operation -- including delete
// and capacity growth -- is one-sided: RDMA gets, puts, atomics, flushes
// only; the owner rank of a bucket never participates.
//
// Structure: a two-level shard map. The table is an ordered list of *shards*;
// each shard contributes, on every rank, one bucket segment (one 64-bit head
// word per bucket) and one entry-heap segment (64-byte entries chained into
// per-bucket linked lists). Shard 0 exists from construction; when a rank
// exhausts its newest shard's heap it commits the next reserved window
// segment pair and *publishes* the shard with a single one-sided CAS on the
// shard-directory word (rank 0). New shards are born all-zero -- empty
// buckets, empty free list, zero allocation watermark -- so publication
// needs no initialization writes and racing growers are harmless (the
// directory CAS picks one winner; the loser observes the advanced count).
//
// Shard discipline: inserts always allocate from (and publish into) the
// newest shard the inserting rank knows; the known-shard count is refreshed
// whenever allocation fails, so insert shard indices are monotone in time
// per rank. Lookups and erases walk shards newest-first and re-check the
// directory on a miss, which preserves Listing 4's "latest insert wins"
// semantics for the committed-before cases GDI relies on (each application
// key is inserted once; erase + re-insert is found in the newer shard).
// The one documented relaxation: a *live duplicate* key spanning a growth
// event may be resolved from the older shard by a rank whose cached shard
// count is stale -- GDI never creates live duplicates (create/insert_if_
// absent check existence first).
//
// Collision resolution is distributed chaining. ABA protection uses the
// paper's "established tagged pointer technique": entries are 64-byte aligned
// so the low 6 bits of every reference are free -- bits 0..4 carry a 5-bit
// generation tag (validated against the entry's generation word on every
// dereference) and bit 5 is the deletion mark (the listing's
// "next pointer points to itself" state). Deletion follows Listing 4's
// two-CAS protocol, with one robustness addition: if the unlink CAS fails,
// the deleter *reverts* its mark before restarting, which removes the
// livelock window of the pseudocode.
//
// Write batching: insert_many / insert_if_absent_many are the write-side
// peers of lookup_many. A batch of k inserts pays
//   1 overlapped round of field reads/writes (gens, heads, keys, values)
// + ceil(k/Q) * max(alpha) per head-CAS round (same round-by-round shape as
//   BlockStore::try_read_lock_many)
// instead of k serial insert latency chains.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/dptr.hpp"
#include "common/hash.hpp"
#include "rma/window.hpp"

namespace gdi::dht {

struct DhtConfig {
  std::size_t buckets_per_rank = 1024;  ///< per shard
  std::size_t entries_per_rank = 4096;  ///< per shard
  std::uint64_t salt = 0x9E3779B97F4A7C15ull;  ///< hash salt (per-DHT instance)
  /// Growth cap: total capacity is max_shards * entries_per_rank entries per
  /// rank. 1 = fixed capacity (the pre-growth behaviour: insert returns
  /// false on heap exhaustion).
  std::size_t max_shards = 64;
  /// Maintain the erase-epoch counter (one extra remote FAA to rank 0 per
  /// successful erase). Off by default so tables without epoch-validated
  /// memo consumers keep the exact pre-epoch op counts and no shared hot
  /// word; Database switches it on together with the shared cache (the only
  /// consumer). MUST be on whenever translations are memoized -- with it
  /// off the epoch never moves and a stale memo would validate forever.
  bool track_erase_epoch = false;
};

class DistributedHashTable {
 public:
  [[nodiscard]] static std::shared_ptr<DistributedHashTable> create(
      rma::Rank& self, const DhtConfig& cfg);

  DistributedHashTable(int nranks, const DhtConfig& cfg);

  /// Prepend (key, value); duplicates are allowed (Listing 4 semantics) --
  /// a later lookup returns the most recent insert. Grows the table when the
  /// calling rank's newest heap segment is exhausted; returns false iff the
  /// shard cap (DhtConfig::max_shards) is reached.
  [[nodiscard]] bool insert(rma::Rank& self, std::uint64_t key, std::uint64_t value);

  /// Insert only if no entry with `key` is currently visible. Best-effort
  /// uniqueness under concurrent same-key inserts (see header comment).
  [[nodiscard]] bool insert_if_absent(rma::Rank& self, std::uint64_t key,
                                      std::uint64_t value);

  /// Batched insert: result[i] is insert(keys[i], values[i]). Allocates all
  /// entries first, writes every entry's fields through the nonblocking
  /// engine with one flush, then resolves all bucket-head CAS rounds
  /// overlapped (one flush per round instead of one latency per insert).
  [[nodiscard]] std::vector<std::uint8_t> insert_many(
      rma::Rank& self, std::span<const std::uint64_t> keys,
      std::span<const std::uint64_t> values);

  /// Batched insert_if_absent: one lookup_many for the whole key set, then
  /// one insert_many for the misses. result[i] is true iff this call
  /// inserted keys[i]; a key occurring twice in the batch is inserted once
  /// (the first occurrence wins).
  [[nodiscard]] std::vector<std::uint8_t> insert_if_absent_many(
      rma::Rank& self, std::span<const std::uint64_t> keys,
      std::span<const std::uint64_t> values);

  /// Find the value for `key`, or nullopt.
  [[nodiscard]] std::optional<std::uint64_t> lookup(rma::Rank& self, std::uint64_t key);

  /// Batched multi-lookup: resolves every key with the same shard-walk
  /// protocol as lookup(), but overlaps the independent remote reads of all
  /// keys round by round through the nonblocking engine (one flush_all() per
  /// traversal round instead of one latency per word). Results are identical
  /// to calling lookup() per key.
  [[nodiscard]] std::vector<std::optional<std::uint64_t>> lookup_many(
      rma::Rank& self, std::span<const std::uint64_t> keys);

  /// Remove one entry with `key`; returns false if no such entry. A
  /// successful erase bumps the table's *erase epoch* (below).
  [[nodiscard]] bool erase(rma::Rank& self, std::uint64_t key);

  // --- erase epoch ----------------------------------------------------------
  //
  // A single monotone counter (one word next to the shard directory on rank
  // 0) bumped by every successful erase. It exists so consumers that memoize
  // lookups (the shared cache's translation memo) can validate a remembered
  // key -> value *without* walking the table: a mapping proven true while
  // the epoch read E stays true as long as the epoch still reads E, because
  // only an erase can invalidate it -- GDI inserts each application key at
  // most once while it is live (create/insert_if_absent check existence
  // first), so without an erase no newer duplicate can shadow it. One
  // 8-byte atomic read thus replaces the whole newest-first shard walk.
  //
  // Stamping with an epoch observed *before* the mapping was verified is
  // always safe (the covered no-erase interval only grows); it merely makes
  // a future mismatch -- and the resulting fallback walk -- more likely.

  /// Read the current erase epoch (one remote atomic; refreshes this rank's
  /// cached copy).
  [[nodiscard]] std::uint64_t erase_epoch(rma::Rank& self);
  /// This rank's last *observed* epoch -- no wire traffic. Conservative to
  /// stamp memos with: it was read at some point no later than now.
  [[nodiscard]] std::uint64_t cached_erase_epoch(rma::Rank& self) const {
    return local_[static_cast<std::size_t>(self.id())].erase_epoch;
  }

  /// Number of live entries on `rank`: the sum of the per-shard live
  /// counters, so the count stays exact across shard growth (diagnostic;
  /// eventually consistent under concurrent mutation).
  [[nodiscard]] std::uint64_t live_entries(rma::Rank& self, std::uint32_t rank);

  /// Published shard count (refreshes this rank's cached view).
  [[nodiscard]] std::uint32_t shard_count(rma::Rank& self);

  [[nodiscard]] const DhtConfig& config() const { return cfg_; }

  // --- checkpoint / recovery support (src/wal/) -----------------------------

  /// Append a raw dump of rank `r`'s committed table + heap segments (and,
  /// for rank 0, the shard directory + erase epoch) to `out`. Quiescent
  /// state only: the WAL checkpoint calls this inside a barrier.
  void serialize_rank(int r, std::vector<std::byte>& out);
  /// Restore rank `r` from a serialize_rank dump, committing window segments
  /// as needed; false on a layout/cap mismatch. Call refresh_local afterwards
  /// (after a barrier covering every rank's restore).
  [[nodiscard]] bool restore_rank(rma::Rank& self, int r, std::span<const std::byte> in);
  /// Re-prime this rank's cached shard count + erase epoch from the restored
  /// directory, so replay allocates from the same shard the original run did.
  void refresh_local(rma::Rank& self) {
    (void)shard_count(self);
    (void)erase_epoch(self);
  }

 private:
  // Entry layout in the heap window (64-byte slots).
  static constexpr std::uint64_t kEntrySize = 64;
  static constexpr std::uint64_t kKeyOff = 0;
  static constexpr std::uint64_t kValOff = 8;
  static constexpr std::uint64_t kNextOff = 16;
  static constexpr std::uint64_t kGenOff = 24;

  // Reference word encoding: entry DPtr (64-aligned) | gen-tag(bits 0..4)
  // | mark(bit 5). A zero word is the null reference.
  static constexpr std::uint64_t kTagMask = 0x1F;
  static constexpr std::uint64_t kMarkBit = 0x20;
  static constexpr std::uint64_t kPtrMask = ~std::uint64_t{0x3F};

  // Per-shard control block: slot 0 of every rank's heap segment (so a fresh
  // all-zero segment is a valid empty shard). Free-stack head encodes
  // tag(high 16) | slot idx(low 48); idx 0 -- the control slot itself --
  // doubles as the empty sentinel. The watermark counts never-recycled slots
  // handed out by bump allocation.
  static constexpr std::uint64_t kFreeHeadOff = 0;
  static constexpr std::uint64_t kWatermarkOff = 8;
  static constexpr std::uint64_t kLiveCountOff = 16;
  static constexpr std::uint64_t kIdxMask = (std::uint64_t{1} << 48) - 1;

  struct Ref {
    std::uint64_t word = 0;
    [[nodiscard]] bool is_null() const { return (word & kPtrMask) == 0; }
    [[nodiscard]] DPtr ptr() const { return DPtr{word & kPtrMask}; }
    [[nodiscard]] std::uint64_t tag() const { return word & kTagMask; }
    [[nodiscard]] bool marked() const { return (word & kMarkBit) != 0; }
    [[nodiscard]] Ref unmarked() const { return Ref{word & ~kMarkBit}; }
    [[nodiscard]] Ref marked_ref() const { return Ref{word | kMarkBit}; }
  };
  [[nodiscard]] static Ref make_ref(DPtr e, std::uint64_t gen) {
    return Ref{e.raw() | (gen & kTagMask)};
  }

  struct BucketLoc {
    std::uint32_t rank;
    std::uint64_t offset;  ///< byte offset of the head word *within a segment*
  };
  [[nodiscard]] BucketLoc locate(std::uint64_t key) const;
  [[nodiscard]] std::uint64_t bucket_off(std::uint32_t shard, const BucketLoc& b) const {
    return static_cast<std::uint64_t>(shard) * table_seg_ + b.offset;
  }
  [[nodiscard]] std::uint64_t ctrl_off(std::uint32_t shard) const {
    return static_cast<std::uint64_t>(shard) * heap_seg_;
  }
  [[nodiscard]] std::uint64_t entry_off(std::uint32_t shard, std::uint64_t idx) const {
    return static_cast<std::uint64_t>(shard) * heap_seg_ + idx * kEntrySize;
  }
  [[nodiscard]] std::uint32_t shard_of(DPtr e) const {
    return static_cast<std::uint32_t>(e.offset() / heap_seg_);
  }

  // Shard-count cache maintenance (see header comment: refreshed on every
  // miss and on allocation exhaustion; reads of the directory word are the
  // only remote traffic growth adds to the steady state).
  [[nodiscard]] std::uint32_t known_shards(rma::Rank& self) const;
  std::uint32_t refresh_shards(rma::Rank& self);
  /// Publish one more shard (or observe a racer publishing it). False iff
  /// the shard cap is reached.
  bool grow(rma::Rank& self);

  // Entry heap allocation: per (rank, shard) bump watermark + lock-free
  // recycled-entry stack; always from the calling rank's newest known shard.
  [[nodiscard]] DPtr alloc_entry(rma::Rank& self);
  [[nodiscard]] DPtr pop_free(rma::Rank& self, std::uint32_t target,
                              std::uint32_t shard);
  void dealloc_entry(rma::Rank& self, DPtr e);

  // One shard's chain operations (the Listing 4 state machines).
  [[nodiscard]] std::optional<std::uint64_t> lookup_in_shard(rma::Rank& self,
                                                             std::uint64_t key,
                                                             const BucketLoc& b,
                                                             std::uint32_t shard);
  [[nodiscard]] bool erase_in_shard(rma::Rank& self, std::uint64_t key,
                                    const BucketLoc& b, std::uint32_t shard);

  /// The shared walk protocol of lookup()/erase(): visit shards newest-first
  /// (so the most recent insert wins), and on a full miss re-read the
  /// directory and cover any shards published since -- an operation that
  /// completed before this walk started published its shard first. `fn(s)`
  /// returns true to stop the walk; walk_shards() returns whether it did.
  template <class ShardFn>
  bool walk_shards(rma::Rank& self, ShardFn&& fn) {
    std::uint32_t hi = known_shards(self);
    std::uint32_t lo = 0;
    std::uint32_t walked = hi;
    for (;;) {
      for (std::uint32_t s = hi; s-- > lo;) {
        if (fn(s)) return true;
      }
      if (walked >= cfg_.max_shards) return false;  // no shard can be newer
      const std::uint32_t fresh = refresh_shards(self);
      if (fresh <= walked) return false;
      lo = walked;
      hi = fresh;
      walked = fresh;
    }
  }

  // Field accessors.
  [[nodiscard]] std::uint64_t field(rma::Rank& self, DPtr e, std::uint64_t off) {
    return heap_.atomic_get_u64(self, e.rank(), e.offset() + off);
  }
  void set_field(rma::Rank& self, DPtr e, std::uint64_t off, std::uint64_t v) {
    heap_.atomic_put_u64(self, e.rank(), e.offset() + off, v);
  }

  DhtConfig cfg_;
  int nranks_;
  std::uint64_t table_seg_;  ///< bucket-segment bytes per rank per shard
  std::uint64_t heap_seg_;   ///< heap-segment bytes per rank per shard
  rma::Window table_;  ///< bucket head words, one segment per shard
  rma::Window heap_;   ///< control slot + entry slots, one segment per shard
  rma::Window dir_;    ///< shard directory: published shard count (rank 0)

  // Directory-window layout (rank 0): shard count, then the erase epoch.
  static constexpr std::uint64_t kDirShardsOff = 0;
  static constexpr std::uint64_t kDirEpochOff = 8;

  /// Per-rank cached shard count + last observed erase epoch; each slot is
  /// only touched by its own rank (the distributed implementation's
  /// per-process cache of the directory).
  struct alignas(64) RankLocal {
    std::uint32_t shards = 1;
    std::uint64_t erase_epoch = 0;
  };
  mutable std::vector<RankLocal> local_;
};

}  // namespace gdi::dht
