// Fully-offloaded lock-free distributed hash table (paper Section 5.7,
// Listing 4), hash-partitioned across growable shards.
//
// GDA resolves application-vertex-ID -> internal-DPtr translation (and other
// internal indexing) with a DHT whose *every* operation -- including delete,
// capacity growth, and compaction -- is one-sided: RDMA gets, puts, atomics,
// flushes only; the owner rank of a bucket never participates.
//
// Structure: the bucket space is *partitioned* by hash across an ordered list
// of shards. Each shard contributes, on every rank, one bucket segment (one
// 64-bit head word per bucket) and one entry-heap segment (64-byte entries
// chained into per-bucket linked lists). A key's home shard is chosen by
// linear hashing over the published shard count S:
//
//     home(h, S) = h mod 2^(L+1)   where L = floor(log2 S),
//                  or h mod 2^L when that lands >= S
//
// so growing S -> S+1 splits exactly one existing shard's key range and every
// other key keeps its home -- the extendible-hashing-style stable split. In
// the compacted steady state a key lives in exactly one bucket of exactly one
// shard, so lookup/erase/lookup_many pay ONE bucket probe round regardless of
// shard count. Entry *heap* placement is independent of bucket placement
// (chain references are full DPtrs): allocation prefers the key's home
// shard's free stack / watermark but spills into any shard with space, so
// entries freed in older shards are reusable by construction -- the table
// only grows when every published shard is exhausted.
//
// Shard directory (rank 0, one-sided): published shard count S, *clean
// count* C, *pending-clean count* P, the erase epoch, and a migration stamp.
// The partition invariant is
//
//     every completed insert's bucket shard is home(h, m) for some m in [C, S]
//
// so a reader resolves a key by probing the (deduplicated) candidate buckets
// {home(h, m) : m in [C, S]}, newest placement first -- computed locally, no
// wire traffic. C == S (steady state after compaction) means exactly one
// candidate. Inserts take their placement count from a fresh directory read
// (batched into the insert's existing flush rounds), and after linking
// re-check the directory: if a concurrent compaction pass published a
// pending-clean count P above the entry's placement and its bucket fell out
// of the covered range, the inserter relocates its own entry before
// returning. That closes the race between an in-flight insert and a
// compaction pass advancing C, and it is why the PR 3 "stale shard count may
// resolve a duplicate from an older shard" relaxation no longer exists: a
// key's placement count is a fresh global read, not a per-rank cache, and
// once compaction catches up every copy of a key shares one bucket.
//
// Online compaction (compact()): any rank may run a migration pass, fully
// one-sided and concurrent with traffic. The pass publishes P = S0 (pass
// target), scans every bucket of shards [0, S0), and rehomes each entry whose
// home(h, S0) differs from the shard it sits in: allocate a destination slot,
// mark the source entry (freezing it -- readers treat a marked entry as
// in-progress and retry; the slot is allocated first so the mark never spans
// a heap scan), revalidate generation+key under the mark (the mark CAS alone
// can land on a recycled slot whose next word matches), publish the copy into
// the home bucket with a head CAS, bump the migration stamp, unlink the
// source, free its slot. Mark-before-publish means a completed chain walk
// never observes two live copies of a moved entry. Each published copy then
// pays the same post-publish directory fence as inserts (ensure_covered):
// concurrent passes may target *different* counts (the directory can grow
// mid-pass or while a budgeted pass is parked), and a fresh-target pass that
// already swept the copy's bucket would otherwise strand it outside the
// candidate set once that pass advances C. A parked pass whose target the
// directory outgrew abandons its cursor and retargets on resume. After a
// full scan the pass advances C to S0 with one CAS. Readers that miss while
// C < S re-validate against the migration stamp (read only in that dirty
// window), so a concurrent rehome between two candidate probes forces a
// re-walk instead of a lost key. Passes are idempotent and restartable: a
// budgeted pass keeps a local cursor and never advances C early, and a pass
// killed mid-flight leaves only a marked source entry that
// checkpoint/recovery (or teardown) discards.
//
// Collision resolution is distributed chaining. ABA protection uses the
// paper's "established tagged pointer technique": entries are 64-byte aligned
// so the low 6 bits of every reference are free -- bits 0..4 carry a 5-bit
// generation tag (validated against the entry's generation word on every
// dereference) and bit 5 is the deletion mark (the listing's
// "next pointer points to itself" state). Deletion follows Listing 4's
// two-CAS protocol, with one robustness addition: if the unlink CAS fails,
// the deleter *reverts* its mark before restarting, which removes the
// livelock window of the pseudocode.
//
// Write batching: insert_many / insert_if_absent_many are the write-side
// peers of lookup_many. A batch of k inserts pays
//   1 overlapped round of field reads/writes (gens, heads, keys, values,
//     plus the shared directory read that fixes the batch's placement count)
// + ceil(k/Q) * max(alpha) per head-CAS round (same round-by-round shape as
//   BlockStore::try_read_lock_many)
// instead of k serial insert latency chains.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/dptr.hpp"
#include "common/hash.hpp"
#include "rma/window.hpp"

namespace gdi::dht {

struct DhtConfig {
  std::size_t buckets_per_rank = 1024;  ///< per shard
  std::size_t entries_per_rank = 4096;  ///< per shard
  std::uint64_t salt = 0x9E3779B97F4A7C15ull;  ///< hash salt (per-DHT instance)
  /// Growth cap: total capacity is max_shards * entries_per_rank entries per
  /// rank. 1 = fixed capacity (the pre-growth behaviour: insert returns
  /// false on heap exhaustion). Clamped to 64 (the linear-hash directory and
  /// the per-rank shard bitmasks are sized for 64 shards).
  std::size_t max_shards = 64;
  /// Maintain the erase-epoch counter (one extra remote FAA to rank 0 per
  /// successful erase). Off by default so tables without epoch-validated
  /// memo consumers keep the exact pre-epoch op counts and no shared hot
  /// word; Database switches it on together with the shared cache (the only
  /// consumer). MUST be on whenever translations are memoized -- with it
  /// off the epoch never moves and a stale memo would validate forever.
  bool track_erase_epoch = false;
};

class DistributedHashTable {
 public:
  /// Hard shard-count ceiling (directory math + per-rank bitmask width).
  static constexpr std::size_t kMaxShardCap = 64;

  [[nodiscard]] static std::shared_ptr<DistributedHashTable> create(
      rma::Rank& self, const DhtConfig& cfg);

  DistributedHashTable(int nranks, const DhtConfig& cfg);

  /// Prepend (key, value); duplicates are allowed (Listing 4 semantics) --
  /// a later lookup returns the most recent insert. Grows the table when
  /// every published shard's heap is exhausted; returns false iff the shard
  /// cap (DhtConfig::max_shards) is reached with every shard full.
  [[nodiscard]] bool insert(rma::Rank& self, std::uint64_t key, std::uint64_t value);

  /// Insert only if no entry with `key` is currently visible. Best-effort
  /// uniqueness under concurrent same-key inserts (GDI serializes same-key
  /// creators through locks before calling this).
  [[nodiscard]] bool insert_if_absent(rma::Rank& self, std::uint64_t key,
                                      std::uint64_t value);

  /// Batched insert: result[i] is insert(keys[i], values[i]). Allocates all
  /// entries first, writes every entry's fields through the nonblocking
  /// engine with one flush, then resolves all bucket-head CAS rounds
  /// overlapped (one flush per round instead of one latency per insert).
  [[nodiscard]] std::vector<std::uint8_t> insert_many(
      rma::Rank& self, std::span<const std::uint64_t> keys,
      std::span<const std::uint64_t> values);

  /// Batched insert_if_absent: one lookup_many for the whole key set, then
  /// one insert_many for the misses. result[i] is true iff this call
  /// inserted keys[i]; a key occurring twice in the batch is inserted once
  /// (the first occurrence wins).
  [[nodiscard]] std::vector<std::uint8_t> insert_if_absent_many(
      rma::Rank& self, std::span<const std::uint64_t> keys,
      std::span<const std::uint64_t> values);

  /// Find the value for `key`, or nullopt.
  [[nodiscard]] std::optional<std::uint64_t> lookup(rma::Rank& self, std::uint64_t key);

  /// Batched multi-lookup: resolves every key with the same candidate-bucket
  /// protocol as lookup(), but overlaps the independent remote reads of all
  /// keys round by round through the nonblocking engine (one flush_all() per
  /// traversal round instead of one latency per word). Results are identical
  /// to calling lookup() per key.
  [[nodiscard]] std::vector<std::optional<std::uint64_t>> lookup_many(
      rma::Rank& self, std::span<const std::uint64_t> keys);

  /// Remove one entry with `key`; returns false if no such entry. A
  /// successful erase bumps the table's *erase epoch* (below).
  [[nodiscard]] bool erase(rma::Rank& self, std::uint64_t key);

  // --- online migration / compaction ---------------------------------------

  /// Run (or continue) a migration pass: rehome every entry whose home shard
  /// under the current shard count differs from the shard it sits in, then
  /// advance the directory's clean count so readers drop back to one
  /// candidate bucket. Fully one-sided and safe to run concurrently with
  /// traffic on any rank; idempotent (a second pass over a compacted table
  /// migrates nothing). `budget` > 0 caps the number of migrations performed
  /// by this call -- the pass keeps a per-rank cursor and a later call
  /// resumes where it stopped, only advancing the clean count once a full
  /// scan completes (the incremental mode Database::checkpoint uses).
  /// Returns the number of entries migrated by this call.
  std::uint64_t compact(rma::Rank& self, std::uint64_t budget = 0);

  // --- erase epoch ----------------------------------------------------------
  //
  // A single monotone counter (one word in the shard directory on rank 0)
  // bumped by every successful erase. It exists so consumers that memoize
  // lookups (the shared cache's translation memo) can validate a remembered
  // key -> value *without* probing the table: a mapping proven true while
  // the epoch read E stays true as long as the epoch still reads E, because
  // only an erase can invalidate it -- GDI inserts each application key at
  // most once while it is live (create/insert_if_absent check existence
  // first), so without an erase no newer duplicate can shadow it. One
  // 8-byte atomic read thus replaces the candidate-bucket probe. (Migration
  // does not bump the epoch: rehoming an entry never changes key -> value.)
  //
  // Stamping with an epoch observed *before* the mapping was verified is
  // always safe (the covered no-erase interval only grows); it merely makes
  // a future mismatch -- and the resulting fallback probe -- more likely.

  /// Read the current erase epoch (one remote atomic; refreshes this rank's
  /// cached copy).
  [[nodiscard]] std::uint64_t erase_epoch(rma::Rank& self);
  /// This rank's last *observed* epoch -- no wire traffic. Conservative to
  /// stamp memos with: it was read at some point no later than now.
  [[nodiscard]] std::uint64_t cached_erase_epoch(rma::Rank& self) const {
    return local_[static_cast<std::size_t>(self.id())].erase_epoch;
  }

  /// Number of live entries on `rank`: the sum of the per-shard live
  /// counters, so the count stays exact across shard growth and migration
  /// (diagnostic; eventually consistent under concurrent mutation).
  [[nodiscard]] std::uint64_t live_entries(rma::Rank& self, std::uint32_t rank);

  /// Published shard count (refreshes this rank's cached view).
  [[nodiscard]] std::uint32_t shard_count(rma::Rank& self);

  /// Directory clean count (refreshes this rank's cached view). Equal to
  /// shard_count() in the compacted steady state; lower while a split has
  /// not been fully migrated yet.
  [[nodiscard]] std::uint32_t clean_shard_count(rma::Rank& self);

  [[nodiscard]] const DhtConfig& config() const { return cfg_; }

  /// Diagnostic / test hook: number of *unmarked, generation-valid* copies
  /// of `key` across every published shard's candidate bucket. Quiescent
  /// callers see the live-copy invariant (<= 1 for unique-key usage; exactly
  /// one visible copy mid-migration).
  [[nodiscard]] std::uint64_t debug_copies(rma::Rank& self, std::uint64_t key);

  // --- checkpoint / recovery support (src/wal/) -----------------------------

  /// Append a raw dump of rank `r`'s committed table + heap segments (and,
  /// for rank 0, the shard directory: counts, erase epoch, migration stamp)
  /// to `out`. Quiescent state only: the WAL checkpoint calls this inside a
  /// barrier.
  void serialize_rank(int r, std::vector<std::byte>& out);
  /// Restore rank `r` from a serialize_rank dump, committing window segments
  /// as needed; false on a layout/cap mismatch. Call refresh_local afterwards
  /// (after a barrier covering every rank's restore).
  [[nodiscard]] bool restore_rank(rma::Rank& self, int r, std::span<const std::byte> in);
  /// Re-prime this rank's cached directory view from the restored state, so
  /// replay places entries exactly the way the original run did. Also drops
  /// the allocator's local full/empty hints (the restored watermarks and
  /// free stacks may differ from what this rank last observed).
  void refresh_local(rma::Rank& self) {
    auto& rl = local_[static_cast<std::size_t>(self.id())];
    // Reset before re-reading: refresh_dir() merges monotonically, and a
    // restored directory may be *smaller* than what this rank last saw.
    rl.shards = 1;
    rl.clean = 1;
    rl.pending = 1;
    rl.wm_full = 0;
    rl.free_empty = 0;
    rl.comp_target = kNoPass;
    refresh_dir(self);
    (void)erase_epoch(self);
  }

 private:
  // Entry layout in the heap window (64-byte slots).
  static constexpr std::uint64_t kEntrySize = 64;
  static constexpr std::uint64_t kKeyOff = 0;
  static constexpr std::uint64_t kValOff = 8;
  static constexpr std::uint64_t kNextOff = 16;
  static constexpr std::uint64_t kGenOff = 24;

  // Reference word encoding: entry DPtr (64-aligned) | gen-tag(bits 0..4)
  // | mark(bit 5). A zero word is the null reference.
  static constexpr std::uint64_t kTagMask = 0x1F;
  static constexpr std::uint64_t kMarkBit = 0x20;
  static constexpr std::uint64_t kPtrMask = ~std::uint64_t{0x3F};

  // Per-shard control block: slot 0 of every rank's heap segment (so a fresh
  // all-zero segment is a valid empty shard). Free-stack head encodes
  // tag(high 16) | slot idx(low 48); idx 0 -- the control slot itself --
  // doubles as the empty sentinel. The watermark counts never-recycled slots
  // handed out by bump allocation.
  static constexpr std::uint64_t kFreeHeadOff = 0;
  static constexpr std::uint64_t kWatermarkOff = 8;
  static constexpr std::uint64_t kLiveCountOff = 16;
  static constexpr std::uint64_t kIdxMask = (std::uint64_t{1} << 48) - 1;

  struct Ref {
    std::uint64_t word = 0;
    [[nodiscard]] bool is_null() const { return (word & kPtrMask) == 0; }
    [[nodiscard]] DPtr ptr() const { return DPtr{word & kPtrMask}; }
    [[nodiscard]] std::uint64_t tag() const { return word & kTagMask; }
    [[nodiscard]] bool marked() const { return (word & kMarkBit) != 0; }
    [[nodiscard]] Ref unmarked() const { return Ref{word & ~kMarkBit}; }
    [[nodiscard]] Ref marked_ref() const { return Ref{word | kMarkBit}; }
  };
  [[nodiscard]] static Ref make_ref(DPtr e, std::uint64_t gen) {
    return Ref{e.raw() | (gen & kTagMask)};
  }

  struct BucketLoc {
    std::uint32_t rank;
    std::uint64_t offset;  ///< byte offset of the head word *within a segment*
  };
  [[nodiscard]] BucketLoc locate(std::uint64_t key) const;
  /// Second hash stream steering shard placement (independent of the bucket
  /// position bits consumed by locate()).
  [[nodiscard]] std::uint64_t shard_hash(std::uint64_t key) const {
    return splitmix64(splitmix64(key ^ cfg_.salt));
  }
  /// Linear-hash home shard of hash `h2` under a published count of `n`.
  [[nodiscard]] static std::uint32_t home_shard(std::uint64_t h2, std::uint32_t n);

  /// Deduplicated candidate buckets of a key, newest placement first:
  /// {home(h2, m) : m in [clean, shards]}.
  struct Candidates {
    std::array<std::uint32_t, kMaxShardCap> shard;
    std::uint32_t n = 0;
  };
  [[nodiscard]] Candidates candidates(std::uint64_t h2, std::uint32_t clean,
                                      std::uint32_t shards) const;

  [[nodiscard]] std::uint64_t bucket_off(std::uint32_t shard, const BucketLoc& b) const {
    return static_cast<std::uint64_t>(shard) * table_seg_ + b.offset;
  }
  [[nodiscard]] std::uint64_t ctrl_off(std::uint32_t shard) const {
    return static_cast<std::uint64_t>(shard) * heap_seg_;
  }
  [[nodiscard]] std::uint64_t entry_off(std::uint32_t shard, std::uint64_t idx) const {
    return static_cast<std::uint64_t>(shard) * heap_seg_ + idx * kEntrySize;
  }
  /// Heap shard an entry slot lives in (independent of its bucket shard).
  [[nodiscard]] std::uint32_t shard_of(DPtr e) const {
    return static_cast<std::uint32_t>(e.offset() / heap_seg_);
  }

  // Directory maintenance. refresh_dir() reads counts + migration stamp in
  // one overlapped round, commits newly published window segments, and
  // updates this rank's cache; it returns the stamp (callers in the dirty
  // window validate misses against it).
  std::uint64_t refresh_dir(rma::Rank& self);
  std::uint32_t refresh_shards(rma::Rank& self) {
    (void)refresh_dir(self);
    return local_[static_cast<std::size_t>(self.id())].shards;
  }
  /// Publish one more shard (or observe a racer publishing it). False iff
  /// the shard cap is reached.
  bool grow(rma::Rank& self);

  // Entry heap allocation: per (rank, shard) bump watermark + lock-free
  // recycled-entry stack. Prefers `prefer` (the key's home shard), spills
  // into any published shard with space, re-probes every free stack before
  // growing (freed capacity is always consumed before new capacity).
  // allow_grow=false (migration) returns null at capacity instead of
  // publishing a fresh shard, so compaction never inflates the directory.
  [[nodiscard]] DPtr alloc_entry(rma::Rank& self, std::uint32_t prefer,
                                 bool allow_grow = true);
  [[nodiscard]] DPtr pop_free(rma::Rank& self, std::uint32_t target,
                              std::uint32_t shard);
  void dealloc_entry(rma::Rank& self, DPtr e);

  // One bucket's chain operations (the Listing 4 state machines).
  [[nodiscard]] std::optional<std::uint64_t> lookup_in_bucket(rma::Rank& self,
                                                              std::uint64_t key,
                                                              const BucketLoc& b,
                                                              std::uint32_t shard);
  [[nodiscard]] bool erase_in_bucket(rma::Rank& self, std::uint64_t key,
                                     const BucketLoc& b, std::uint32_t shard);

  // Migration primitive shared by compact() and insert's self-relocation:
  // move the entry `e` -- currently linked in bucket (`b`, src_shard) with
  // reference word `ref` and unmarked next word `next` -- into bucket
  // (`b`, dst_shard). Allocates the destination slot before taking the mark
  // (so readers of the source bucket never spin across a heap scan),
  // revalidates generation+key after winning the mark CAS (the CAS alone
  // can succeed on a recycled slot whose next word matches), and on kMoved
  // stores the published copy through `moved` so callers can run the
  // post-publish coverage fence on it.
  enum class MigrateResult { kMoved, kRaced, kNoSpace };
  MigrateResult migrate_entry(rma::Rank& self, const BucketLoc& b,
                              std::uint32_t src_shard, std::uint32_t dst_shard,
                              DPtr e, Ref ref, std::uint64_t next,
                              std::uint64_t key, DPtr* moved = nullptr);

  /// Post-link insert fence: make sure the entry `e` for `key`, linked into
  /// bucket (`b`, home(h2, placed)) under placement count `placed`, is
  /// covered by the directory's [pending, shards] range -- relocating it if a
  /// concurrent compaction pass outran the placement. One overlapped
  /// directory read in the common case.
  void ensure_covered(rma::Rank& self, std::uint64_t key, std::uint64_t h2,
                      const BucketLoc& b, DPtr e, std::uint32_t placed);

  // Field accessors.
  [[nodiscard]] std::uint64_t field(rma::Rank& self, DPtr e, std::uint64_t off) {
    return heap_.atomic_get_u64(self, e.rank(), e.offset() + off);
  }
  void set_field(rma::Rank& self, DPtr e, std::uint64_t off, std::uint64_t v) {
    heap_.atomic_put_u64(self, e.rank(), e.offset() + off, v);
  }

  DhtConfig cfg_;
  int nranks_;
  std::uint64_t table_seg_;  ///< bucket-segment bytes per rank per shard
  std::uint64_t heap_seg_;   ///< heap-segment bytes per rank per shard
  rma::Window table_;  ///< bucket head words, one segment per shard
  rma::Window heap_;   ///< control slot + entry slots, one segment per shard
  rma::Window dir_;    ///< shard directory (rank 0)

  // Directory-window layout (rank 0): published shard count S, clean count C
  // (every completed insert sits at home(h, m) for some m in [C, S]),
  // pending-clean count P (a pass targeting P is or was in flight; inserts
  // self-cover against it), the erase epoch, and the migration stamp (bumped
  // once per rehomed entry, between publish and unlink -- readers in the
  // dirty window re-validate misses against it).
  static constexpr std::uint64_t kDirShardsOff = 0;
  static constexpr std::uint64_t kDirCleanOff = 8;
  static constexpr std::uint64_t kDirPendingOff = 16;
  static constexpr std::uint64_t kDirEpochOff = 24;
  static constexpr std::uint64_t kDirStampOff = 32;
  static constexpr std::uint64_t kDirBytes = 40;

  static constexpr std::uint32_t kNoPass = ~std::uint32_t{0};

  /// Per-rank cached directory view + allocator hints + compaction cursor;
  /// each slot is only touched by its own rank (the distributed
  /// implementation's per-process cache of the directory).
  struct alignas(64) RankLocal {
    std::uint32_t shards = 1;
    std::uint32_t clean = 1;
    std::uint32_t pending = 1;
    std::uint64_t erase_epoch = 0;
    std::uint64_t wm_full = 0;     ///< bitmask: shard's watermark observed full
    std::uint64_t free_empty = 0;  ///< bitmask: shard's free stack observed empty
    std::uint32_t alloc_tick = 0;  ///< periodic free_empty re-probe trigger
    std::uint32_t comp_target = kNoPass;  ///< in-flight budgeted pass target
    std::uint64_t comp_pos = 0;           ///< linearized scan cursor of that pass
  };
  mutable std::vector<RankLocal> local_;
};

}  // namespace gdi::dht
