// Fully-offloaded lock-free distributed hash table (paper Section 5.7,
// Listing 4).
//
// GDA resolves application-vertex-ID -> internal-DPtr translation (and other
// internal indexing) with a DHT whose *every* operation -- including delete --
// is one-sided: RDMA gets, puts, atomics, flushes only; the owner rank of a
// bucket never participates.
//
// Structure: a sharded bucket table (one 64-bit head word per bucket) plus a
// per-rank heap of 64-byte entries chained into per-bucket linked lists.
// Collision resolution is distributed chaining. ABA protection uses the
// paper's "established tagged pointer technique": entries are 64-byte aligned
// so the low 6 bits of every reference are free -- bits 0..4 carry a 5-bit
// generation tag (validated against the entry's generation word on every
// dereference) and bit 5 is the deletion mark (the listing's
// "next pointer points to itself" state). Deletion follows Listing 4's
// two-CAS protocol, with one robustness addition: if the unlink CAS fails,
// the deleter *reverts* its mark before restarting, which removes the
// livelock window of the pseudocode.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/dptr.hpp"
#include "common/hash.hpp"
#include "rma/window.hpp"

namespace gdi::dht {

struct DhtConfig {
  std::size_t buckets_per_rank = 1024;
  std::size_t entries_per_rank = 4096;
  std::uint64_t salt = 0x9E3779B97F4A7C15ull;  ///< hash salt (per-DHT instance)
};

class DistributedHashTable {
 public:
  [[nodiscard]] static std::shared_ptr<DistributedHashTable> create(
      rma::Rank& self, const DhtConfig& cfg);

  DistributedHashTable(int nranks, const DhtConfig& cfg);

  /// Prepend (key, value); duplicates are allowed (Listing 4 semantics) --
  /// a later lookup returns the most recent insert. Returns false iff the
  /// calling rank's entry heap is exhausted.
  [[nodiscard]] bool insert(rma::Rank& self, std::uint64_t key, std::uint64_t value);

  /// Insert only if no entry with `key` is currently visible. Best-effort
  /// uniqueness under concurrent same-key inserts (see header comment).
  [[nodiscard]] bool insert_if_absent(rma::Rank& self, std::uint64_t key,
                                      std::uint64_t value);

  /// Find the value for `key`, or nullopt.
  [[nodiscard]] std::optional<std::uint64_t> lookup(rma::Rank& self, std::uint64_t key);

  /// Batched multi-lookup: resolves every key with the same chain-walk
  /// protocol as lookup(), but overlaps the independent remote reads of all
  /// keys round by round through the nonblocking engine (one flush_all() per
  /// traversal round instead of one latency per word). Results are identical
  /// to calling lookup() per key.
  [[nodiscard]] std::vector<std::optional<std::uint64_t>> lookup_many(
      rma::Rank& self, std::span<const std::uint64_t> keys);

  /// Remove one entry with `key`; returns false if no such entry.
  [[nodiscard]] bool erase(rma::Rank& self, std::uint64_t key);

  /// Number of live entries on `rank` (diagnostic; eventually consistent).
  [[nodiscard]] std::uint64_t live_entries(rma::Rank& self, std::uint32_t rank);

  [[nodiscard]] const DhtConfig& config() const { return cfg_; }

 private:
  // Entry layout in the heap window (64-byte slots).
  static constexpr std::uint64_t kEntrySize = 64;
  static constexpr std::uint64_t kKeyOff = 0;
  static constexpr std::uint64_t kValOff = 8;
  static constexpr std::uint64_t kNextOff = 16;
  static constexpr std::uint64_t kGenOff = 24;

  // Reference word encoding: entry DPtr (64-aligned) | gen-tag(bits 0..4)
  // | mark(bit 5). A zero word is the null reference.
  static constexpr std::uint64_t kTagMask = 0x1F;
  static constexpr std::uint64_t kMarkBit = 0x20;
  static constexpr std::uint64_t kPtrMask = ~std::uint64_t{0x3F};

  // Control window layout per rank: free-stack head (tagged idx) + live count.
  static constexpr std::uint64_t kFreeHeadOff = 0;
  static constexpr std::uint64_t kLiveCountOff = 8;
  static constexpr std::uint64_t kIdxMask = (std::uint64_t{1} << 48) - 1;
  static constexpr std::uint64_t kNilIdx = kIdxMask;

  struct Ref {
    std::uint64_t word = 0;
    [[nodiscard]] bool is_null() const { return (word & kPtrMask) == 0; }
    [[nodiscard]] DPtr ptr() const { return DPtr{word & kPtrMask}; }
    [[nodiscard]] std::uint64_t tag() const { return word & kTagMask; }
    [[nodiscard]] bool marked() const { return (word & kMarkBit) != 0; }
    [[nodiscard]] Ref unmarked() const { return Ref{word & ~kMarkBit}; }
    [[nodiscard]] Ref marked_ref() const { return Ref{word | kMarkBit}; }
  };
  [[nodiscard]] static Ref make_ref(DPtr e, std::uint64_t gen) {
    return Ref{e.raw() | (gen & kTagMask)};
  }

  struct BucketLoc {
    std::uint32_t rank;
    std::uint64_t offset;
  };
  [[nodiscard]] BucketLoc locate(std::uint64_t key) const;

  // Entry heap allocation (per-rank lock-free tagged stack).
  [[nodiscard]] DPtr alloc_entry(rma::Rank& self);
  void dealloc_entry(rma::Rank& self, DPtr e);

  // Field accessors.
  [[nodiscard]] std::uint64_t field(rma::Rank& self, DPtr e, std::uint64_t off) {
    return heap_.atomic_get_u64(self, e.rank(), e.offset() + off);
  }
  void set_field(rma::Rank& self, DPtr e, std::uint64_t off, std::uint64_t v) {
    heap_.atomic_put_u64(self, e.rank(), e.offset() + off, v);
  }

  DhtConfig cfg_;
  int nranks_;
  rma::Window table_;  ///< bucket head words
  rma::Window heap_;   ///< entry slots
  rma::Window ctrl_;   ///< per-rank free-stack head + live counter
};

}  // namespace gdi::dht
