#include "gdi/async.hpp"

#include <cassert>

namespace gdi {

BatchScope Transaction::batch() { return BatchScope(this); }

// ---------------------------------------------------------------------------
// Enqueue
// ---------------------------------------------------------------------------

bool BatchScope::Op::resolved() const {
  switch (kind) {
    case Kind::kTranslate: return f_vid->ready;
    case Kind::kFind:
    case Kind::kCreate:
    case Kind::kAssociate: return f_vh->ready;
    case Kind::kAssocEdge: return f_eh->ready;
    case Kind::kPeek: return f_u64->ready;
    case Kind::kEdges: return f_edges->ready;
    case Kind::kGetProps:
    case Kind::kEdgeProps: return f_props->ready;
    case Kind::kSetProp: return f_done->ready;
    case Kind::kPrefetch:
    case Kind::kPrefetchEdge: return hint_done;
  }
  return true;
}

void BatchScope::Op::resolve_status(Status s) {
  hint_done = true;
  auto set = [&](auto& st) {
    if (st && !st->ready) {
      st->status = s;
      st->ready = true;
    }
  };
  set(f_vid);
  set(f_vh);
  set(f_eh);
  set(f_u64);
  set(f_edges);
  set(f_props);
  set(f_done);
}

Future<DPtr> BatchScope::translate(std::uint64_t app_id) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kTranslate;
  op.app_id = app_id;
  op.f_vid = std::make_shared<detail::FutureState<DPtr>>();
  Future<DPtr> f(op.f_vid);
  return f;
}

Future<VertexHandle> BatchScope::find(std::uint64_t app_id) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kFind;
  op.app_id = app_id;
  op.f_vh = std::make_shared<detail::FutureState<VertexHandle>>();
  Future<VertexHandle> f(op.f_vh);
  return f;
}

Future<VertexHandle> BatchScope::create(std::uint64_t app_id) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kCreate;
  op.app_id = app_id;
  op.f_vh = std::make_shared<detail::FutureState<VertexHandle>>();
  Future<VertexHandle> f(op.f_vh);
  return f;
}

Future<VertexHandle> BatchScope::associate(DPtr vid) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kAssociate;
  op.vid = vid;
  op.f_vh = std::make_shared<detail::FutureState<VertexHandle>>();
  Future<VertexHandle> f(op.f_vh);
  return f;
}

Future<std::uint64_t> BatchScope::peek_app_id(DPtr vid) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kPeek;
  op.vid = vid;
  op.f_u64 = std::make_shared<detail::FutureState<std::uint64_t>>();
  Future<std::uint64_t> f(op.f_u64);
  return f;
}

Future<std::vector<EdgeDesc>> BatchScope::edges_of(DPtr vid, DirFilter f,
                                                   const Constraint* c) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kEdges;
  op.vid = vid;
  op.filter = f;
  op.cnstr = c;
  op.f_edges = std::make_shared<detail::FutureState<std::vector<EdgeDesc>>>();
  Future<std::vector<EdgeDesc>> fut(op.f_edges);
  return fut;
}

Future<std::vector<PropValue>> BatchScope::get_properties(DPtr vid,
                                                          std::uint32_t ptype) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kGetProps;
  op.vid = vid;
  op.ptype = ptype;
  op.f_props = std::make_shared<detail::FutureState<std::vector<PropValue>>>();
  Future<std::vector<PropValue>> fut(op.f_props);
  return fut;
}

Future<std::monostate> BatchScope::set_property(DPtr vid, std::uint32_t ptype,
                                                PropValue value) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kSetProp;
  op.vid = vid;
  op.ptype = ptype;
  op.value = std::move(value);
  op.f_done = std::make_shared<detail::FutureState<std::monostate>>();
  Future<std::monostate> fut(op.f_done);
  return fut;
}

Future<EdgeHandle> BatchScope::associate_edge(DPtr eid) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kAssocEdge;
  op.vid = eid;  // vid doubles as the holder DPtr for edge ops
  op.f_eh = std::make_shared<detail::FutureState<EdgeHandle>>();
  Future<EdgeHandle> f(op.f_eh);
  return f;
}

Future<std::vector<PropValue>> BatchScope::get_edge_properties(DPtr eid,
                                                               std::uint32_t ptype) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kEdgeProps;
  op.vid = eid;
  op.ptype = ptype;
  op.f_props = std::make_shared<detail::FutureState<std::vector<PropValue>>>();
  Future<std::vector<PropValue>> fut(op.f_props);
  return fut;
}

void BatchScope::prefetch(DPtr vid) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kPrefetch;
  op.vid = vid;
}

void BatchScope::prefetch(std::span<const DPtr> vids) {
  ops_.reserve(ops_.size() + vids.size());
  for (DPtr v : vids) prefetch(v);
}

void BatchScope::prefetch_edges(std::span<const DPtr> eids) {
  ops_.reserve(ops_.size() + eids.size());
  for (DPtr e : eids) {
    ops_.emplace_back();
    Op& op = ops_.back();
    op.kind = Op::Kind::kPrefetchEdge;
    op.vid = e;
  }
}

// ---------------------------------------------------------------------------
// Execute
// ---------------------------------------------------------------------------

Status BatchScope::execute() {
  if (txn_ == nullptr) return Status::kInvalidArgument;
  Transaction& t = *txn_;
  std::vector<Op> ops = std::move(ops_);
  ops_.clear();
  if (ops.empty()) return Status::kOk;

  auto resolve_rest = [&](Status s) {
    for (auto& op : ops)
      if (!op.resolved()) op.resolve_status(s);
  };
  if (!t.active_ || t.failed_) {
    resolve_rest(Status::kTxnAborted);
    return Status::kTxnAborted;
  }

  // Phase 1: ID translation -- one DHT multi-lookup for every translate/find,
  // and for every create's existence check (a create *expects* a miss).
  // find() consults the shared cache's translation memo first: a memo hit
  // skips the DHT walk entirely, because find's own holder validation
  // (fetched app id must equal the queried one) already proves or refutes
  // the translation -- refuted ones fall back to the DHT in phase 4.5.
  {
    auto* sc = t.scache();
    std::vector<std::uint64_t> app_ids;
    std::vector<std::size_t> pos;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind == Op::Kind::kFind && sc != nullptr) {
        // No epoch check here: find()'s own holder validation (fetched app id
        // must equal the queried one) proves or refutes the memo for free.
        if (const auto* tr = sc->find_translation(ops[i].app_id)) {
          ops[i].vid = tr->vid;
          ops[i].memo_translated = true;
          continue;
        }
      }
      if (ops[i].kind == Op::Kind::kTranslate || ops[i].kind == Op::Kind::kFind ||
          ops[i].kind == Op::Kind::kCreate) {
        app_ids.push_back(ops[i].app_id);
        pos.push_back(i);
      }
    }
    if (!app_ids.empty()) {
      auto vids = t.translate_ids_impl(app_ids);
      if (!vids.ok()) {  // only an aborted/doomed txn fails translation
        resolve_rest(vids.status());
        return vids.status();
      }
      for (std::size_t j = 0; j < pos.size(); ++j) {
        Op& op = ops[pos[j]];
        const DPtr v = (*vids)[j];
        if (op.kind == Op::Kind::kTranslate) {
          if (v.is_null()) {
            op.resolve_status(Status::kNotFound);
          } else {
            op.f_vid->value = v;
            op.resolve_status(Status::kOk);
          }
        } else if (op.kind == Op::Kind::kCreate) {
          // A hit fails only this create; a miss defers to resolution time
          // (create_vertex_impl with the existence check already done).
          if (!v.is_null()) op.resolve_status(Status::kAlreadyExists);
        } else if (v.is_null()) {
          op.resolve_status(Status::kNotFound);
        } else {
          op.vid = v;
        }
      }
    }
  }

  // Phase 2: collect the holder set. Reads and the write intents share one
  // spec list; kReadShared prefetch hints bypass specs (lock-free cache
  // population), kWrite ignores hints entirely.
  std::vector<Transaction::FetchSpec> specs;
  std::vector<std::size_t> op_spec(ops.size(), SIZE_MAX);
  std::vector<DPtr> lockfree_hints;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    Op& op = ops[i];
    if (op.resolved()) continue;
    switch (op.kind) {
      case Op::Kind::kFind:
      case Op::Kind::kAssociate:
      case Op::Kind::kEdges:
      case Op::Kind::kGetProps:
        if (op.vid.is_null()) {
          op.resolve_status(Status::kInvalidArgument);
          break;
        }
        op_spec[i] = specs.size();
        specs.push_back({op.vid, /*write=*/false, /*required=*/true});
        break;
      case Op::Kind::kSetProp:
        if (op.vid.is_null()) {
          op.resolve_status(Status::kInvalidArgument);
          break;
        }
        op_spec[i] = specs.size();
        specs.push_back({op.vid, /*write=*/true, /*required=*/true});
        break;
      case Op::Kind::kPrefetch:
        if (op.vid.is_null()) break;
        if (t.mode_ == TxnMode::kReadShared) lockfree_hints.push_back(op.vid);
        else if (t.mode_ == TxnMode::kRead)
          specs.push_back({op.vid, /*write=*/false, /*required=*/false});
        break;
      case Op::Kind::kTranslate:
      case Op::Kind::kCreate:
      case Op::Kind::kPeek:
      case Op::Kind::kAssocEdge:
      case Op::Kind::kEdgeProps:
      case Op::Kind::kPrefetchEdge:
        break;  // no vertex holder needed (edge ops batch in phase 3.5)
    }
  }

  // Phase 3: hints first (so spec fetches hit the freshly populated cache),
  // then the single lock/fetch path for everything that needs a state.
  if (!lockfree_hints.empty()) t.populate_block_cache(lockfree_hints);
  std::vector<Status> per(specs.size(), Status::kOk);
  const Status doom =
      specs.empty()
          ? Status::kOk
          : t.fetch_vertices_batch(specs, std::span<Status>(per.data(), per.size()));
  if (!ok(doom)) {
    // Transaction-critical failure: the offending ops carry their own status,
    // everything else unresolved aborts.
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].resolved()) continue;
      const std::size_t s = op_spec[i];
      if (s != SIZE_MAX && !ok(per[s])) ops[i].resolve_status(per[s]);
      else ops[i].resolve_status(Status::kTxnAborted);
    }
    return doom;
  }

  // Phase 3.5: heavy-edge holders. Explicit edge ops know their holder up
  // front; constraint-filtered edges_of ops contribute the heavy holders of
  // every direction-matching record of their now-materialized vertex (the
  // records a serial edges_of would have locked-and-fetched one by one).
  // One fetch_edges_batch gives the whole set one overlapped lock round and
  // one primary + one continuation block round.
  std::vector<Transaction::EdgeFetchSpec> especs;
  std::vector<std::size_t> op_espec(ops.size(), SIZE_MAX);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    Op& op = ops[i];
    if (op.resolved()) continue;
    switch (op.kind) {
      case Op::Kind::kAssocEdge:
      case Op::Kind::kEdgeProps:
        if (op.vid.is_null()) {
          op.resolve_status(Status::kInvalidArgument);
          break;
        }
        op_espec[i] = especs.size();
        especs.push_back({op.vid, /*write=*/false, /*required=*/true});
        break;
      case Op::Kind::kPrefetchEdge:
        // Hints are soft and never carry a future; kWrite ignores them for
        // the same reason it ignores vertex hints (speculative read locks
        // would poison later upgrades).
        if (!op.vid.is_null() && t.mode_ != TxnMode::kWrite)
          especs.push_back({op.vid, /*write=*/false, /*required=*/false});
        op.hint_done = true;
        break;
      case Op::Kind::kEdges: {
        if (op.cnstr == nullptr || op.cnstr->empty()) break;
        const std::size_t s = op_spec[i];
        if (s != SIZE_MAX && !ok(per[s])) break;  // vertex itself failed
        auto vit = t.vcache_.find(op.vid.raw());
        if (vit == t.vcache_.end()) break;
        vit->second->view.for_each_edge(
            [&](std::uint32_t, const layout::EdgeRecord& rec) {
              if (rec.heavy.is_null() || !dir_matches(op.filter, rec.dir)) return;
              if (t.ecache_.contains(rec.heavy.raw())) return;
              especs.push_back({rec.heavy, /*write=*/false, /*required=*/true});
            });
        break;
      }
      default:
        break;
    }
  }
  if (!especs.empty()) {
    std::vector<Status> eper(especs.size(), Status::kOk);
    const Status edoom = t.fetch_edges_batch(
        especs, std::span<Status>(eper.data(), eper.size()));
    if (!ok(edoom)) {
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].resolved()) continue;
        const std::size_t s = op_espec[i];
        if (s != SIZE_MAX && !ok(eper[s])) ops[i].resolve_status(eper[s]);
        else ops[i].resolve_status(Status::kTxnAborted);
      }
      return edoom;
    }
    // Soft per-holder failures (e.g. a racing delete) fail only the explicit
    // edge ops that named the holder; edges_of ops just skip the record.
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const std::size_t s = op_espec[i];
      if (s != SIZE_MAX && !ops[i].resolved() && !ok(eper[s]))
        ops[i].resolve_status(eper[s]);
    }
  }

  // Phase 4: resolution, in enqueue order. Holder-based ops are now local
  // (vcache_/ecache_/block-cache hits); app-ID peeks that miss queue up for
  // one final overlapped 8-byte batch.
  struct PendingPeek {
    std::size_t op;
    std::uint64_t id = 0;
  };
  std::vector<PendingPeek> peeks;
  std::vector<std::size_t> memo_fallback;  ///< finds whose memo vid was refuted
  Status final_status = Status::kOk;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    Op& op = ops[i];
    if (op.resolved()) continue;
    if (!ok(final_status)) {
      // A resolution-time critical failure (e.g. a read-only violation from a
      // write intent) doomed the transaction: everything still unresolved
      // aborts, matching the documented error model.
      op.resolve_status(Status::kTxnAborted);
      continue;
    }
    const std::size_t s = op_spec[i];
    if (s != SIZE_MAX && !ok(per[s])) {
      // A memo-translated find whose holder failed softly (deleted or
      // recycled block) retries through the real DHT in phase 4.5; anything
      // else reports here.
      if (op.kind == Op::Kind::kFind && op.memo_translated &&
          !is_transaction_critical(per[s]))
        memo_fallback.push_back(i);
      else
        op.resolve_status(per[s]);
      continue;
    }
    switch (op.kind) {
      case Op::Kind::kFind: {
        // Stale-DHT guard (the blocking find_vertex's app-id check): the
        // holder we fetched must actually be the vertex we looked up. The
        // same check is what makes memo translations safe to trust.
        auto it = t.vcache_.find(op.vid.raw());
        assert(it != t.vcache_.end());
        if (it->second->view.app_id() != op.app_id) {
          if (op.memo_translated) {
            memo_fallback.push_back(i);
          } else {
            op.resolve_status(Status::kNotFound);
          }
        } else {
          op.f_vh->value = VertexHandle{op.vid};
          op.resolve_status(Status::kOk);
          // Stamped with the rank's last *observed* erase epoch -- read at
          // some point no later than this verification, the conservative
          // direction for bare-translate epoch validation.
          if (auto* sc = t.scache())
            sc->remember_translation(op.app_id, op.vid,
                                     t.db_->id_index().cached_erase_epoch(t.self_));
        }
        break;
      }
      case Op::Kind::kAssociate:
        op.f_vh->value = VertexHandle{op.vid};
        op.resolve_status(Status::kOk);
        break;
      case Op::Kind::kCreate: {
        auto r = t.create_vertex_impl(op.app_id, /*dht_checked=*/true);
        if (r.ok()) op.f_vh->value = *r;
        op.resolve_status(r.status());
        if (is_transaction_critical(r.status())) final_status = r.status();
        break;
      }
      case Op::Kind::kEdges: {
        auto r = t.edges_of_impl(VertexHandle{op.vid}, op.filter, op.cnstr);
        if (r.ok()) op.f_edges->value = std::move(r.value());
        op.resolve_status(r.status());
        if (is_transaction_critical(r.status())) final_status = r.status();
        break;
      }
      case Op::Kind::kGetProps: {
        auto r = t.get_properties(VertexHandle{op.vid}, op.ptype);
        if (r.ok()) op.f_props->value = std::move(r.value());
        op.resolve_status(r.status());
        if (is_transaction_critical(r.status())) final_status = r.status();
        break;
      }
      case Op::Kind::kSetProp: {
        const Status s2 = t.update_property(VertexHandle{op.vid}, op.ptype, op.value);
        op.resolve_status(s2);
        if (is_transaction_critical(s2)) final_status = s2;
        break;
      }
      case Op::Kind::kPeek: {
        if (op.vid.is_null()) {
          op.resolve_status(Status::kInvalidArgument);
          break;
        }
        std::uint64_t id = 0;
        if (t.peek_cached(op.vid, &id)) {
          op.f_u64->value = id;
          op.resolve_status(Status::kOk);
        } else {
          peeks.push_back({i});
        }
        break;
      }
      case Op::Kind::kAssocEdge:
        op.f_eh->value = EdgeHandle{op.vid};
        op.resolve_status(Status::kOk);
        break;
      case Op::Kind::kEdgeProps: {
        auto r = t.get_edge_properties(EdgeHandle{op.vid}, op.ptype);
        if (r.ok()) op.f_props->value = std::move(r.value());
        op.resolve_status(r.status());
        if (is_transaction_critical(r.status())) final_status = r.status();
        break;
      }
      case Op::Kind::kTranslate:
      case Op::Kind::kPrefetch:
      case Op::Kind::kPrefetchEdge:
        break;
    }
  }

  if (!ok(final_status)) {
    for (auto& p : peeks) ops[p.op].resolve_status(Status::kTxnAborted);
    for (std::size_t i : memo_fallback) ops[i].resolve_status(Status::kTxnAborted);
    return final_status;
  }

  // Phase 4.5: DHT fallback for refuted memo translations (the id was
  // deleted, or relocated by a delete + re-create). Rare by construction:
  // costs one real multi-lookup plus one fetch round for just the refuted
  // subset, and re-teaches the memo on success.
  if (!memo_fallback.empty()) {
    auto* sc = t.scache();
    std::vector<std::uint64_t> ids;
    ids.reserve(memo_fallback.size());
    for (std::size_t i : memo_fallback) {
      if (sc != nullptr) sc->forget_translation(ops[i].app_id);
      ids.push_back(ops[i].app_id);
    }
    auto vids = t.translate_ids_impl(ids);
    if (!vids.ok()) {
      for (std::size_t i : memo_fallback) ops[i].resolve_status(vids.status());
      for (auto& p : peeks) ops[p.op].resolve_status(Status::kTxnAborted);
      return vids.status();
    }
    std::vector<Transaction::FetchSpec> fspecs;
    std::vector<std::size_t> fmap;
    for (std::size_t j = 0; j < memo_fallback.size(); ++j) {
      Op& op = ops[memo_fallback[j]];
      const DPtr v = (*vids)[j];
      // Null: the id is gone. Equal to the refuted holder: the DHT agrees
      // with the memo, so the blocking path would report the same miss.
      if (v.is_null() || v == op.vid) {
        op.resolve_status(Status::kNotFound);
        continue;
      }
      op.vid = v;
      fmap.push_back(memo_fallback[j]);
      fspecs.push_back({v, /*write=*/false, /*required=*/true});
    }
    if (!fspecs.empty()) {
      std::vector<Status> fper(fspecs.size(), Status::kOk);
      const Status fdoom =
          t.fetch_vertices_batch(fspecs, std::span<Status>(fper.data(), fper.size()));
      for (std::size_t k = 0; k < fmap.size(); ++k) {
        Op& op = ops[fmap[k]];
        if (!ok(fper[k])) {
          op.resolve_status(fper[k]);
          continue;
        }
        auto it = t.vcache_.find(op.vid.raw());
        if (it == t.vcache_.end() || it->second->view.app_id() != op.app_id) {
          op.resolve_status(Status::kNotFound);
        } else {
          op.f_vh->value = VertexHandle{op.vid};
          op.resolve_status(Status::kOk);
          if (sc != nullptr)
            sc->remember_translation(op.app_id, op.vid,
                                     t.db_->id_index().cached_erase_epoch(t.self_));
        }
      }
      if (!ok(fdoom)) {
        for (auto& p : peeks) ops[p.op].resolve_status(Status::kTxnAborted);
        return fdoom;
      }
    }
  }

  // Phase 5: overlapped 8-byte peeks (blocking reads when batching is off --
  // identical bytes, serial latency). A doomed transaction issues no further
  // RMA: queued peeks abort like any other unresolved future.
  if (!peeks.empty()) {
    auto& blocks = t.db_->blocks();
    if (t.batching_enabled()) {
      for (auto& p : peeks) blocks.read_nb(t.self_, ops[p.op].vid, 0, &p.id, 8);
      (void)t.self_.flush_all();
    } else {
      for (auto& p : peeks) blocks.read(t.self_, ops[p.op].vid, 0, &p.id, 8);
    }
    if (t.cache_enabled()) t.self_.counters().cache_misses += peeks.size();
    for (auto& p : peeks) {
      ops[p.op].f_u64->value = p.id;
      ops[p.op].resolve_status(Status::kOk);
    }
  }
  return final_status;
}

}  // namespace gdi
