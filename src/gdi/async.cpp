#include "gdi/async.hpp"

#include <cassert>

namespace gdi {

BatchScope Transaction::batch() { return BatchScope(this); }

// ---------------------------------------------------------------------------
// Enqueue
// ---------------------------------------------------------------------------

bool BatchScope::Op::resolved() const {
  switch (kind) {
    case Kind::kTranslate: return f_vid->ready;
    case Kind::kFind:
    case Kind::kCreate:
    case Kind::kAssociate: return f_vh->ready;
    case Kind::kPeek: return f_u64->ready;
    case Kind::kEdges: return f_edges->ready;
    case Kind::kGetProps: return f_props->ready;
    case Kind::kSetProp: return f_done->ready;
    case Kind::kPrefetch: return hint_done;
  }
  return true;
}

void BatchScope::Op::resolve_status(Status s) {
  hint_done = true;
  auto set = [&](auto& st) {
    if (st && !st->ready) {
      st->status = s;
      st->ready = true;
    }
  };
  set(f_vid);
  set(f_vh);
  set(f_u64);
  set(f_edges);
  set(f_props);
  set(f_done);
}

Future<DPtr> BatchScope::translate(std::uint64_t app_id) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kTranslate;
  op.app_id = app_id;
  op.f_vid = std::make_shared<detail::FutureState<DPtr>>();
  Future<DPtr> f(op.f_vid);
  return f;
}

Future<VertexHandle> BatchScope::find(std::uint64_t app_id) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kFind;
  op.app_id = app_id;
  op.f_vh = std::make_shared<detail::FutureState<VertexHandle>>();
  Future<VertexHandle> f(op.f_vh);
  return f;
}

Future<VertexHandle> BatchScope::create(std::uint64_t app_id) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kCreate;
  op.app_id = app_id;
  op.f_vh = std::make_shared<detail::FutureState<VertexHandle>>();
  Future<VertexHandle> f(op.f_vh);
  return f;
}

Future<VertexHandle> BatchScope::associate(DPtr vid) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kAssociate;
  op.vid = vid;
  op.f_vh = std::make_shared<detail::FutureState<VertexHandle>>();
  Future<VertexHandle> f(op.f_vh);
  return f;
}

Future<std::uint64_t> BatchScope::peek_app_id(DPtr vid) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kPeek;
  op.vid = vid;
  op.f_u64 = std::make_shared<detail::FutureState<std::uint64_t>>();
  Future<std::uint64_t> f(op.f_u64);
  return f;
}

Future<std::vector<EdgeDesc>> BatchScope::edges_of(DPtr vid, DirFilter f,
                                                   const Constraint* c) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kEdges;
  op.vid = vid;
  op.filter = f;
  op.cnstr = c;
  op.f_edges = std::make_shared<detail::FutureState<std::vector<EdgeDesc>>>();
  Future<std::vector<EdgeDesc>> fut(op.f_edges);
  return fut;
}

Future<std::vector<PropValue>> BatchScope::get_properties(DPtr vid,
                                                          std::uint32_t ptype) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kGetProps;
  op.vid = vid;
  op.ptype = ptype;
  op.f_props = std::make_shared<detail::FutureState<std::vector<PropValue>>>();
  Future<std::vector<PropValue>> fut(op.f_props);
  return fut;
}

Future<std::monostate> BatchScope::set_property(DPtr vid, std::uint32_t ptype,
                                                PropValue value) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kSetProp;
  op.vid = vid;
  op.ptype = ptype;
  op.value = std::move(value);
  op.f_done = std::make_shared<detail::FutureState<std::monostate>>();
  Future<std::monostate> fut(op.f_done);
  return fut;
}

void BatchScope::prefetch(DPtr vid) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = Op::Kind::kPrefetch;
  op.vid = vid;
}

void BatchScope::prefetch(std::span<const DPtr> vids) {
  ops_.reserve(ops_.size() + vids.size());
  for (DPtr v : vids) prefetch(v);
}

// ---------------------------------------------------------------------------
// Execute
// ---------------------------------------------------------------------------

Status BatchScope::execute() {
  if (txn_ == nullptr) return Status::kInvalidArgument;
  Transaction& t = *txn_;
  std::vector<Op> ops = std::move(ops_);
  ops_.clear();
  if (ops.empty()) return Status::kOk;

  auto resolve_rest = [&](Status s) {
    for (auto& op : ops)
      if (!op.resolved()) op.resolve_status(s);
  };
  if (!t.active_ || t.failed_) {
    resolve_rest(Status::kTxnAborted);
    return Status::kTxnAborted;
  }

  // Phase 1: ID translation -- one DHT multi-lookup for every translate/find,
  // and for every create's existence check (a create *expects* a miss).
  {
    std::vector<std::uint64_t> app_ids;
    std::vector<std::size_t> pos;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind == Op::Kind::kTranslate || ops[i].kind == Op::Kind::kFind ||
          ops[i].kind == Op::Kind::kCreate) {
        app_ids.push_back(ops[i].app_id);
        pos.push_back(i);
      }
    }
    if (!app_ids.empty()) {
      auto vids = t.translate_ids_impl(app_ids);
      if (!vids.ok()) {  // only an aborted/doomed txn fails translation
        resolve_rest(vids.status());
        return vids.status();
      }
      for (std::size_t j = 0; j < pos.size(); ++j) {
        Op& op = ops[pos[j]];
        const DPtr v = (*vids)[j];
        if (op.kind == Op::Kind::kTranslate) {
          if (v.is_null()) {
            op.resolve_status(Status::kNotFound);
          } else {
            op.f_vid->value = v;
            op.resolve_status(Status::kOk);
          }
        } else if (op.kind == Op::Kind::kCreate) {
          // A hit fails only this create; a miss defers to resolution time
          // (create_vertex_impl with the existence check already done).
          if (!v.is_null()) op.resolve_status(Status::kAlreadyExists);
        } else if (v.is_null()) {
          op.resolve_status(Status::kNotFound);
        } else {
          op.vid = v;
        }
      }
    }
  }

  // Phase 2: collect the holder set. Reads and the write intents share one
  // spec list; kReadShared prefetch hints bypass specs (lock-free cache
  // population), kWrite ignores hints entirely.
  std::vector<Transaction::FetchSpec> specs;
  std::vector<std::size_t> op_spec(ops.size(), SIZE_MAX);
  std::vector<DPtr> lockfree_hints;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    Op& op = ops[i];
    if (op.resolved()) continue;
    switch (op.kind) {
      case Op::Kind::kFind:
      case Op::Kind::kAssociate:
      case Op::Kind::kEdges:
      case Op::Kind::kGetProps:
        if (op.vid.is_null()) {
          op.resolve_status(Status::kInvalidArgument);
          break;
        }
        op_spec[i] = specs.size();
        specs.push_back({op.vid, /*write=*/false, /*required=*/true});
        break;
      case Op::Kind::kSetProp:
        if (op.vid.is_null()) {
          op.resolve_status(Status::kInvalidArgument);
          break;
        }
        op_spec[i] = specs.size();
        specs.push_back({op.vid, /*write=*/true, /*required=*/true});
        break;
      case Op::Kind::kPrefetch:
        if (op.vid.is_null()) break;
        if (t.mode_ == TxnMode::kReadShared) lockfree_hints.push_back(op.vid);
        else if (t.mode_ == TxnMode::kRead)
          specs.push_back({op.vid, /*write=*/false, /*required=*/false});
        break;
      case Op::Kind::kTranslate:
      case Op::Kind::kCreate:
      case Op::Kind::kPeek:
        break;  // no holder needed
    }
  }

  // Phase 3: hints first (so spec fetches hit the freshly populated cache),
  // then the single lock/fetch path for everything that needs a state.
  if (!lockfree_hints.empty()) t.populate_block_cache(lockfree_hints);
  std::vector<Status> per(specs.size(), Status::kOk);
  const Status doom =
      specs.empty()
          ? Status::kOk
          : t.fetch_vertices_batch(specs, std::span<Status>(per.data(), per.size()));
  if (!ok(doom)) {
    // Transaction-critical failure: the offending ops carry their own status,
    // everything else unresolved aborts.
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].resolved()) continue;
      const std::size_t s = op_spec[i];
      if (s != SIZE_MAX && !ok(per[s])) ops[i].resolve_status(per[s]);
      else ops[i].resolve_status(Status::kTxnAborted);
    }
    return doom;
  }

  // Phase 4: resolution, in enqueue order. Holder-based ops are now local
  // (vcache_/block-cache hits); app-ID peeks that miss queue up for one final
  // overlapped 8-byte batch.
  struct PendingPeek {
    std::size_t op;
    std::uint64_t id = 0;
  };
  std::vector<PendingPeek> peeks;
  Status final_status = Status::kOk;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    Op& op = ops[i];
    if (op.resolved()) continue;
    if (!ok(final_status)) {
      // A resolution-time critical failure (e.g. a read-only violation from a
      // write intent) doomed the transaction: everything still unresolved
      // aborts, matching the documented error model.
      op.resolve_status(Status::kTxnAborted);
      continue;
    }
    const std::size_t s = op_spec[i];
    if (s != SIZE_MAX && !ok(per[s])) {
      op.resolve_status(per[s]);
      continue;
    }
    switch (op.kind) {
      case Op::Kind::kFind: {
        // Stale-DHT guard (the blocking find_vertex's app-id check): the
        // holder we fetched must actually be the vertex we looked up.
        auto it = t.vcache_.find(op.vid.raw());
        assert(it != t.vcache_.end());
        if (it->second->view.app_id() != op.app_id) {
          op.resolve_status(Status::kNotFound);
        } else {
          op.f_vh->value = VertexHandle{op.vid};
          op.resolve_status(Status::kOk);
        }
        break;
      }
      case Op::Kind::kAssociate:
        op.f_vh->value = VertexHandle{op.vid};
        op.resolve_status(Status::kOk);
        break;
      case Op::Kind::kCreate: {
        auto r = t.create_vertex_impl(op.app_id, /*dht_checked=*/true);
        if (r.ok()) op.f_vh->value = *r;
        op.resolve_status(r.status());
        if (is_transaction_critical(r.status())) final_status = r.status();
        break;
      }
      case Op::Kind::kEdges: {
        auto r = t.edges_of_impl(VertexHandle{op.vid}, op.filter, op.cnstr);
        if (r.ok()) op.f_edges->value = std::move(r.value());
        op.resolve_status(r.status());
        if (is_transaction_critical(r.status())) final_status = r.status();
        break;
      }
      case Op::Kind::kGetProps: {
        auto r = t.get_properties(VertexHandle{op.vid}, op.ptype);
        if (r.ok()) op.f_props->value = std::move(r.value());
        op.resolve_status(r.status());
        if (is_transaction_critical(r.status())) final_status = r.status();
        break;
      }
      case Op::Kind::kSetProp: {
        const Status s2 = t.update_property(VertexHandle{op.vid}, op.ptype, op.value);
        op.resolve_status(s2);
        if (is_transaction_critical(s2)) final_status = s2;
        break;
      }
      case Op::Kind::kPeek: {
        if (op.vid.is_null()) {
          op.resolve_status(Status::kInvalidArgument);
          break;
        }
        std::uint64_t id = 0;
        if (t.peek_cached(op.vid, &id)) {
          op.f_u64->value = id;
          op.resolve_status(Status::kOk);
        } else {
          peeks.push_back({i});
        }
        break;
      }
      case Op::Kind::kTranslate:
      case Op::Kind::kPrefetch:
        break;
    }
  }

  // Phase 5: overlapped 8-byte peeks (blocking reads when batching is off --
  // identical bytes, serial latency). A doomed transaction issues no further
  // RMA: queued peeks abort like any other unresolved future.
  if (!ok(final_status)) {
    for (auto& p : peeks) ops[p.op].resolve_status(Status::kTxnAborted);
    return final_status;
  }
  if (!peeks.empty()) {
    auto& blocks = t.db_->blocks();
    if (t.batching_enabled()) {
      for (auto& p : peeks) blocks.read_nb(t.self_, ops[p.op].vid, 0, &p.id, 8);
      (void)t.self_.flush_all();
    } else {
      for (auto& p : peeks) blocks.read(t.self_, ops[p.op].vid, 0, &p.id, 8);
    }
    if (t.cache_enabled()) t.self_.counters().cache_misses += peeks.size();
    for (auto& p : peeks) {
      ops[p.op].f_u64->value = p.id;
      ops[p.op].resolve_status(Status::kOk);
    }
  }
  return final_status;
}

}  // namespace gdi
