// Async-first transaction surface: typed futures + batch scopes.
//
// The paper's GDA implementation wins at scale by overlapping independent RMA
// operations (Section 5.1); this header makes that overlap the *default shape*
// of the transaction API instead of a side door. A BatchScope collects typed
// operations -- translate(app_id), find(app_id), associate(vid), peek_app_id,
// edges_of, get_properties, set_property, prefetch -- and resolves all of them
// with one execute() that:
//   * translates every application ID through one DHT multi-lookup,
//   * acquires all needed vertex locks with overlapped CAS rounds
//     (BlockStore::try_read_lock_many / try_write_lock_many),
//   * fetches every holder block through get_nb + a single flush_all per round
//     (primary blocks in one overlapped batch, continuation blocks in a
//     second),
//   * resolves remaining 8-byte app-ID peeks as one final overlapped batch.
//
// The pre-existing blocking Transaction methods (find_vertex, edges_of,
// translate_vertex_ids, prefetch_vertices, associate_vertex) are thin one-op
// or n-op wrappers over this path, so there is exactly one fetch/lock code
// path in the system and spec-era call sites compile unchanged.
//
// Write side: a batch-built transaction commits through the same
// Transaction::commit() as everything else, so its writeback + unlock round
// rides the rank's group-commit pipeline (src/gdi/commit_pipeline.hpp) when
// that is enabled -- a stream of BatchScope transactions shares flush epochs
// exactly like a stream of blocking ones.
//
// Error model (mirrors GDI's transaction-critical split, Section 3.3):
//   * a *soft* per-operation failure (e.g. find() of an unknown ID ->
//     kNotFound) fails only that operation's Future; the transaction and the
//     rest of the batch proceed;
//   * a *transaction-critical* failure (lock conflict, read-only violation,
//     out of memory) dooms the whole transaction: the offending Future
//     carries the critical status, every other unresolved Future resolves to
//     kTxnAborted, and execute() returns the critical status.
//
// A Future read before execute() reports Status::kStale ("not yet
// converged"); value() is valid only when ok(). A BatchScope borrows its
// Transaction and must not outlive it; execute() may be called repeatedly,
// each call resolving the operations enqueued since the previous one.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "gdi/transaction.hpp"

namespace gdi {

namespace detail {
template <class T>
struct FutureState {
  Status status = Status::kStale;
  bool ready = false;
  T value{};
};
}  // namespace detail

/// Typed handle to the result of one batched operation. Cheap to copy
/// (shared state); resolved by the owning BatchScope's execute().
template <class T>
class Future {
 public:
  Future() = default;

  /// False for a default-constructed future not attached to any operation.
  [[nodiscard]] bool valid() const { return st_ != nullptr; }
  /// True once execute() has resolved this operation (success or failure).
  [[nodiscard]] bool ready() const { return st_ != nullptr && st_->ready; }
  [[nodiscard]] bool ok() const { return ready() && st_->status == Status::kOk; }
  /// kStale until execute() runs; the operation's outcome afterwards.
  [[nodiscard]] Status status() const {
    if (st_ == nullptr) return Status::kInvalidArgument;
    return st_->ready ? st_->status : Status::kStale;
  }
  /// The resolved value; meaningful only when ok().
  [[nodiscard]] const T& value() const { return st_->value; }
  [[nodiscard]] const T& operator*() const { return st_->value; }
  [[nodiscard]] const T* operator->() const { return &st_->value; }

 private:
  friend class BatchScope;
  explicit Future(std::shared_ptr<detail::FutureState<T>> st) : st_(std::move(st)) {}
  std::shared_ptr<detail::FutureState<T>> st_;
};

/// Builder for one batch of independent transaction operations. Obtained from
/// Transaction::batch(); movable; enqueue ops, then execute() once.
class BatchScope {
 public:
  BatchScope() = default;
  BatchScope(BatchScope&&) = default;
  BatchScope& operator=(BatchScope&&) = default;
  BatchScope(const BatchScope&) = delete;
  BatchScope& operator=(const BatchScope&) = delete;

  // --- typed operations ------------------------------------------------------
  /// GDI_TranslateVertexIDNb: application ID -> internal ID.
  Future<DPtr> translate(std::uint64_t app_id);
  /// translate + associate + stale-DHT validation (find_vertex semantics).
  Future<VertexHandle> find(std::uint64_t app_id);
  /// GDI_CreateVertexNb: create_vertex whose DHT existence check rides the
  /// batch's one multi-lookup -- the write-side peer of find(). A batch of k
  /// creates pays one overlapped lookup round instead of k serial chain
  /// walks; the new vertices publish to the DHT at commit through one
  /// insert_many. kAlreadyExists is soft (only this future fails).
  Future<VertexHandle> create(std::uint64_t app_id);
  /// GDI_AssociateVertexNb: fetch + lock the holder of an internal ID.
  Future<VertexHandle> associate(DPtr vid);
  /// Lock-free 8-byte application-ID read (peek_app_id semantics).
  Future<std::uint64_t> peek_app_id(DPtr vid);
  Future<std::vector<EdgeDesc>> edges_of(DPtr vid, DirFilter f,
                                         const Constraint* c = nullptr);
  Future<std::vector<EdgeDesc>> edges_of(VertexHandle v, DirFilter f,
                                         const Constraint* c = nullptr) {
    return edges_of(v.vid, f, c);
  }
  Future<std::vector<PropValue>> get_properties(DPtr vid, std::uint32_t ptype);
  Future<std::vector<PropValue>> get_properties(VertexHandle v, std::uint32_t ptype) {
    return get_properties(v.vid, ptype);
  }
  /// GDI_AssociateEdgeNb: fetch + lock a heavy edge's holder. All edge
  /// holders of one execute() -- these, get_edge_properties targets, and the
  /// heavy edges behind constraint-filtered edges_of -- ride one
  /// fetch_edges_batch: one overlapped lock CAS round set plus one primary
  /// and one continuation block round for the whole set, the same treatment
  /// vertices get (and the same shared-cache eligibility).
  Future<EdgeHandle> associate_edge(DPtr eid);
  Future<std::vector<PropValue>> get_edge_properties(DPtr eid, std::uint32_t ptype);
  Future<std::vector<PropValue>> get_edge_properties(EdgeHandle e, std::uint32_t ptype) {
    return get_edge_properties(e.eid, ptype);
  }
  /// Write intent: single-entry property update (update_property semantics).
  /// The write is buffered in the transaction and written back at commit
  /// through put_nb + one flush per target rank.
  Future<std::monostate> set_property(DPtr vid, std::uint32_t ptype, PropValue value);
  Future<std::monostate> set_property(VertexHandle v, std::uint32_t ptype,
                                      PropValue value) {
    return set_property(v.vid, ptype, std::move(value));
  }
  /// Fetch hint without a result: kReadShared populates the block cache
  /// lock-free; kRead routes through the batched lock-then-validate path
  /// (lock failures are soft -- a hint never dooms the transaction); kWrite
  /// ignores the hint (speculative read locks would poison later upgrades).
  void prefetch(DPtr vid);
  void prefetch(std::span<const DPtr> vids);
  /// Heavy-edge fetch hints, dispatched by mode exactly like prefetch():
  /// kReadShared populates lock-free, kRead locks-then-fetches (soft
  /// failures), kWrite ignores the hint.
  void prefetch_edges(std::span<const DPtr> eids);

  /// Number of operations enqueued since the last execute().
  [[nodiscard]] std::size_t pending_ops() const { return ops_.size(); }

  /// Resolve every enqueued operation. Returns kOk (individual soft failures
  /// are reported only on their futures) or the transaction-critical status
  /// that doomed the transaction.
  Status execute();

 private:
  friend class Transaction;
  explicit BatchScope(Transaction* txn) : txn_(txn) {}

  struct Op {
    enum class Kind : std::uint8_t {
      kTranslate,
      kFind,
      kCreate,
      kAssociate,
      kPeek,
      kEdges,
      kGetProps,
      kSetProp,
      kPrefetch,
      kAssocEdge,
      kEdgeProps,
      kPrefetchEdge,
    };
    Kind kind;
    bool hint_done = false;  ///< kPrefetch only (hints carry no future)
    /// kFind only: vid came from the shared cache's translation memo, not
    /// the DHT; a failed holder validation must fall back to the DHT
    /// instead of reporting kNotFound.
    bool memo_translated = false;
    std::uint64_t app_id = 0;
    DPtr vid{};
    DirFilter filter = DirFilter::kAll;
    const Constraint* cnstr = nullptr;
    std::uint32_t ptype = 0;
    PropValue value{};
    // Exactly one of these is non-null, matching `kind`.
    std::shared_ptr<detail::FutureState<DPtr>> f_vid;
    std::shared_ptr<detail::FutureState<VertexHandle>> f_vh;
    std::shared_ptr<detail::FutureState<EdgeHandle>> f_eh;
    std::shared_ptr<detail::FutureState<std::uint64_t>> f_u64;
    std::shared_ptr<detail::FutureState<std::vector<EdgeDesc>>> f_edges;
    std::shared_ptr<detail::FutureState<std::vector<PropValue>>> f_props;
    std::shared_ptr<detail::FutureState<std::monostate>> f_done;

    [[nodiscard]] bool resolved() const;
    void resolve_status(Status s);
  };

  Transaction* txn_ = nullptr;
  std::vector<Op> ops_;
};

}  // namespace gdi
