#include "gdi/bulk.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace gdi {

using layout::Dir;
using layout::EdgeRecord;
using layout::EdgeView;
using layout::VertexView;

namespace {

/// Fixed-size wire format for the edge alltoallv exchange.
struct WireEdge {
  std::uint64_t base;       ///< app id of the vertex that stores the record
  std::uint64_t neighbor;   ///< app id of the other endpoint
  std::uint64_t heavy_raw;  ///< heavy-edge holder DPtr (0 = lightweight)
  std::uint32_t label;
  std::uint8_t dir;            ///< Dir as seen from `base`
  std::uint8_t set_endpoints;  ///< this side patches the holder's endpoints
  std::uint8_t pad[2] = {0, 0};
};
static_assert(std::is_trivially_copyable_v<WireEdge>);

std::size_t entry_bytes(std::size_t payload) { return 8 + ((payload + 7) & ~7u); }

}  // namespace

Result<BulkLoadStats> BulkLoader::load(const std::vector<BulkVertex>& vertices,
                                       const std::vector<BulkEdge>& edges) {
  auto& blocks = db_->blocks();
  auto& dht = db_->id_index();
  const int P = self_.nranks();
  const std::size_t B = blocks.block_size();
  const auto max_tcap =
      static_cast<std::uint32_t>((B - VertexView::kHeaderSize) / 8);
  BulkLoadStats stats;

  // --- Step 0: materialize heavy-edge holders (endpoints patched later) -----
  // Heavy holders live on the owner rank of the edge's source vertex; writing
  // them is pure one-sided RMA, so the *generating* rank does it directly.
  auto create_heavy_holder = [&](const BulkEdge& e) -> DPtr {
    std::size_t prop_bytes = e.label_id ? entry_bytes(4) : 0;
    for (const auto& [pt, bytes] : e.props) prop_bytes += entry_bytes(bytes.size());
    const std::size_t total =
        EdgeView::required_size(static_cast<std::uint32_t>(prop_bytes));
    const auto nblocks = static_cast<std::uint32_t>((total + B - 1) / B);
    if (nblocks > EdgeView::kMaxBlocks) return DPtr{};  // fall back: lightweight
    const std::uint32_t home = db_->owner_rank(e.src);
    std::vector<DPtr> blks;
    for (std::uint32_t i = 0; i < nblocks; ++i) {
      DPtr blk;
      for (int attempt = 0; attempt < P && blk.is_null(); ++attempt)
        blk = blocks.acquire(self_, (home + static_cast<std::uint32_t>(attempt)) %
                                        static_cast<std::uint32_t>(P));
      if (blk.is_null()) {
        for (DPtr b : blks) blocks.release(self_, b);
        return DPtr{};
      }
      blks.push_back(blk);
    }
    std::vector<std::byte> buf;
    EdgeView::init(buf, DPtr{}, DPtr{}, total);
    EdgeView view(buf);
    view.set_num_blocks(nblocks);
    for (std::uint32_t i = 0; i < nblocks; ++i) view.set_block_addr(i, blks[i]);
    if (e.label_id) (void)view.add_label(e.label_id);
    for (const auto& [pt, bytes] : e.props) (void)view.add_entry(pt, bytes);
    for (std::uint32_t i = 0; i < nblocks; ++i) {
      const std::size_t off = i * B;
      blocks.write(self_, blks[i], 0, buf.data() + off, std::min(B, total - off));
    }
    blocks.flush(self_, blks[0].rank());
    ++stats.heavy_edges;
    stats.blocks_used += nblocks;
    return blks[0];
  };

  // --- Step 1: route each edge to both endpoint owners -----------------------
  std::vector<std::vector<WireEdge>> sends(static_cast<std::size_t>(P));
  for (const auto& e : edges) {
    DPtr heavy;
    if (e.heavy) heavy = create_heavy_holder(e);
    // Lightweight records carry the label inline; heavy records keep it in
    // the holder (transaction semantics, paper 5.4).
    const std::uint32_t rec_label = heavy.is_null() ? e.label_id : 0;
    const WireEdge fwd{e.src,     e.dst, heavy.raw(),
                       rec_label, static_cast<std::uint8_t>(e.dir),
                       1,         {}};
    sends[db_->owner_rank(e.src)].push_back(fwd);
    const bool self_loop_undirected = e.src == e.dst && e.dir == Dir::kUndirected;
    if (!self_loop_undirected) {
      const Dir m = e.dir == Dir::kOut  ? Dir::kIn
                    : e.dir == Dir::kIn ? Dir::kOut
                                        : Dir::kUndirected;
      const WireEdge rev{e.dst,     e.src, heavy.raw(),
                         rec_label, static_cast<std::uint8_t>(m),
                         0,         {}};
      sends[db_->owner_rank(e.dst)].push_back(rev);
    }
  }
  auto received = self_.alltoallv(sends);
  sends.clear();

  // Group incoming records by local base vertex.
  std::unordered_map<std::uint64_t, std::vector<WireEdge>> by_vertex;
  for (auto& chunk : received)
    for (const auto& w : chunk) by_vertex[w.base].push_back(w);
  received.clear();

  // --- Step 2: materialize owned vertices with exact-size holders ------------
  struct Pending {
    std::uint64_t app_id = 0;
    DPtr primary;
    std::vector<std::byte> buf;
    std::vector<WireEdge> recs;
  };
  std::vector<Pending> pending;
  pending.reserve(vertices.size());

  for (const auto& bv : vertices) {
    assert(db_->owner_rank(bv.app_id) == static_cast<std::uint32_t>(self_.id()));
    auto it = by_vertex.find(bv.app_id);
    std::vector<WireEdge> recs = it != by_vertex.end() ? std::move(it->second)
                                                       : std::vector<WireEdge>{};
    std::size_t prop_bytes = 0;
    for (const auto& l : bv.labels) {
      (void)l;
      prop_bytes += entry_bytes(4);
    }
    for (const auto& [pt, bytes] : bv.props) {
      (void)pt;
      prop_bytes += entry_bytes(bytes.size());
    }

    // Degree-capped sizing: fix the table capacity first, then see how many
    // edge slots still fit under the per-holder block limit.
    auto edge_cap = static_cast<std::uint32_t>(recs.size());
    std::uint32_t tcap = 4;
    for (int i = 0; i < 6; ++i) {
      const std::size_t total = VertexView::required_size(
          tcap, edge_cap, static_cast<std::uint32_t>(prop_bytes));
      const auto nb = static_cast<std::uint32_t>((total + B - 1) / B);
      if (nb <= tcap) break;
      tcap = nb;
    }
    if (tcap > max_tcap) {
      tcap = max_tcap;
      const std::size_t budget = tcap * B;
      const std::size_t fixed = VertexView::kHeaderSize + tcap * 8 +
                                ((prop_bytes + 7) & ~7u);
      const auto max_slots = static_cast<std::uint32_t>(
          budget > fixed ? (budget - fixed) / VertexView::kEdgeRecSize : 0);
      if (recs.size() > max_slots) {
        stats.edges_skipped += recs.size() - max_slots;
        recs.resize(max_slots);
        edge_cap = max_slots;
      }
    }

    Pending p;
    p.app_id = bv.app_id;
    p.primary = blocks.acquire(self_, static_cast<std::uint32_t>(self_.id()));
    if (p.primary.is_null()) return Status::kOutOfMemory;
    const std::size_t total = VertexView::required_size(
        tcap, edge_cap, static_cast<std::uint32_t>(prop_bytes));
    VertexView::init(p.buf, bv.app_id, total, tcap);
    VertexView view(p.buf);
    // Exact split: all slots to edges, the remainder to properties.
    if (Status s = view.reshape(tcap, edge_cap,
                                static_cast<std::uint32_t>((prop_bytes + 7) & ~7u));
        !ok(s))
      return s;
    const auto nb = static_cast<std::uint32_t>((p.buf.size() + B - 1) / B);
    view.set_num_blocks(nb);
    view.set_block_addr(0, p.primary);
    for (std::uint32_t i = 1; i < nb; ++i) {
      DPtr blk;
      for (int attempt = 0; attempt < P && blk.is_null(); ++attempt)
        blk = blocks.acquire(self_, static_cast<std::uint32_t>(
                                        (self_.id() + attempt) % P));
      if (blk.is_null()) return Status::kOutOfMemory;
      view.set_block_addr(i, blk);
    }
    for (const auto& l : bv.labels)
      if (Status s = view.add_label(l); !ok(s)) return s;
    for (const auto& [pt, bytes] : bv.props)
      if (Status s = view.add_entry(pt, bytes); !ok(s)) return s;

    p.recs = std::move(recs);
    pending.push_back(std::move(p));
    ++stats.vertices_loaded;
  }

  // Publish every owned vertex's translation in one batched insert (the
  // write-side analogue of the resolver's lookup_many below): all entry
  // fields ride one overlapped flush, the bucket-head CAS rounds overlap
  // across the whole set, and the DHT grows shards on demand instead of
  // failing the load when a segment fills. The batch's partition placement
  // count rides the same flush (see DistributedHashTable::insert_many), so
  // the resolver's lookup_many below finds each key in its home bucket.
  {
    std::vector<std::uint64_t> keys, vals;
    keys.reserve(pending.size());
    vals.reserve(pending.size());
    for (const auto& p : pending) {
      keys.push_back(p.app_id);
      vals.push_back(p.primary.raw());
    }
    if (db_->cfg_.batched_reads && keys.size() > 1) {
      const auto inserted = dht.insert_many(self_, keys, vals);
      for (std::uint8_t okf : inserted)
        if (!okf) return Status::kOutOfMemory;
    } else {
      for (std::size_t i = 0; i < keys.size(); ++i)
        if (!dht.insert(self_, keys[i], vals[i])) return Status::kOutOfMemory;
    }
  }

  // All DHT insertions must be visible before cross-rank ID resolution.
  self_.barrier();

  // --- Step 3: resolve neighbor IDs and write the holders out ---------------
  // Every distinct neighbor ID resolves through one DHT multi-lookup up
  // front (overlapped traversal rounds); the map then serves the per-record
  // resolution locally.
  std::unordered_map<std::uint64_t, DPtr> id_cache;
  id_cache.reserve(1024);
  if (db_->cfg_.batched_reads) {
    std::vector<std::uint64_t> need;
    for (const auto& p : pending)
      for (const auto& w : p.recs)
        if (id_cache.emplace(w.neighbor, DPtr{}).second) need.push_back(w.neighbor);
    const auto vals = dht.lookup_many(self_, need);
    for (std::size_t j = 0; j < need.size(); ++j)
      if (vals[j]) id_cache[need[j]] = DPtr{*vals[j]};
  }
  auto resolve = [&](std::uint64_t app_id) -> DPtr {
    auto it = id_cache.find(app_id);
    if (it != id_cache.end()) return it->second;
    auto v = dht.lookup(self_, app_id);
    const DPtr p = v ? DPtr{*v} : DPtr{};
    id_cache.emplace(app_id, p);
    return p;
  };

  const auto& indexes = db_->indexes();
  for (auto& p : pending) {
    VertexView view(p.buf);
    for (const auto& w : p.recs) {
      const DPtr nb = resolve(w.neighbor);
      if (nb.is_null()) {
        ++stats.edges_skipped;
        continue;
      }
      auto slot = view.add_edge(EdgeRecord{nb, DPtr{w.heavy_raw}, w.label,
                                           static_cast<Dir>(w.dir), true});
      if (!slot.ok()) {
        ++stats.edges_skipped;
        continue;
      }
      ++stats.edges_loaded;
      if (w.heavy_raw != 0 && w.set_endpoints != 0) {
        // Patch the pre-created holder's endpoints (single writer: the
        // forward record's owner; the base vertex is local = p.primary).
        const std::uint64_t endpoints[2] = {p.primary.raw(), nb.raw()};
        blocks.write(self_, DPtr{w.heavy_raw}, 0, endpoints, 16);
      }
    }
    // Write every block of the holder (bulk load always writes fresh data).
    const std::size_t total = p.buf.size();
    const std::uint32_t nblocks = view.num_blocks();
    for (std::uint32_t i = 0; i < nblocks; ++i) {
      const std::size_t off = i * B;
      blocks.write(self_, view.block_addr(i), 0, p.buf.data() + off,
                   std::min(B, total - off));
    }
    stats.blocks_used += nblocks;
    for (const auto& idx : indexes)
      if (idx->matches(view))
        (void)idx->append(self_, p.primary.rank(), p.primary);
  }
  blocks.flush(self_, static_cast<std::uint32_t>(self_.id()));
  self_.barrier();
  return stats;
}

}  // namespace gdi
