// Bulk data ingestion (paper Figure 2: "Bulk load vertices/edges" [C];
// Section 2's BULK workload class).
//
// The collective bulk loader ingests a distributed edge/vertex list far
// faster than per-element transactions: each rank materializes the holders of
// the vertices it owns with exact-size allocation, exchanges edges with an
// alltoallv so both endpoint holders receive their records, resolves
// application IDs to DPtrs through the internal DHT, and publishes everything
// with block writes -- no locking, since bulk load is a collective with
// exclusive access by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "gdi/database.hpp"
#include "layout/holder.hpp"

namespace gdi {

struct BulkVertex {
  std::uint64_t app_id = 0;
  std::vector<std::uint32_t> labels;
  /// (ptype id, encoded value) pairs.
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> props;
};

struct BulkEdge {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint32_t label_id = 0;
  layout::Dir dir = layout::Dir::kOut;
  /// Heavy edge (paper 5.4.1): gets its own holder carrying the label plus
  /// these properties; the inline records at both endpoints then reference
  /// the holder instead of carrying the label themselves.
  bool heavy = false;
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> props;
};

struct BulkLoadStats {
  std::uint64_t vertices_loaded = 0;  ///< this rank's owned vertices
  std::uint64_t edges_loaded = 0;     ///< edge records written on this rank
  std::uint64_t heavy_edges = 0;      ///< edge holders created by this rank
  std::uint64_t edges_skipped = 0;    ///< dropped: holder degree limit reached
  std::uint64_t blocks_used = 0;
};

class BulkLoader {
 public:
  BulkLoader(std::shared_ptr<Database> db, rma::Rank& self)
      : db_(std::move(db)), self_(self) {}

  /// Collective. `vertices` must be the vertices *owned by this rank*
  /// (app_id % nranks == rank id); `edges` may mention any vertices -- they
  /// are routed to their endpoint owners internally. Assumes all referenced
  /// endpoints appear in some rank's `vertices`.
  Result<BulkLoadStats> load(const std::vector<BulkVertex>& vertices,
                             const std::vector<BulkEdge>& edges);

 private:
  std::shared_ptr<Database> db_;
  rma::Rank& self_;
};

}  // namespace gdi
