#include "gdi/commit_pipeline.hpp"

namespace gdi {

bool CommitPipeline::enroll(rma::Rank& self, std::size_t wb_bytes) {
  if (!open_) {
    open_ = true;
    opened_ns_ = self.sim_time_ns();
    txns_ = 0;
    bytes_ = 0;
  }
  txns_ += 1;
  bytes_ += wb_bytes;
  self.counters().gc_enrolled += 1;
  if (txns_ >= cfg_.epoch_txns || bytes_ >= cfg_.epoch_bytes ||
      self.sim_time_ns() - opened_ns_ >= cfg_.max_delay_ns) {
    close(self);
    return true;
  }
  return false;
}

void CommitPipeline::sync(rma::Rank& self) {
  if (open_) close(self);
}

void CommitPipeline::close(rma::Rank& self) {
  // The flush may find nothing pending (an unrelated completion point --
  // a read batch, a DHT round -- already absorbed the epoch); flush_all is a
  // no-op then, charging nothing. The epoch still counts as closed.
  (void)self.flush_all();
  self.counters().gc_epochs += 1;
  open_ = false;
  txns_ = 0;
  bytes_ = 0;
  if (close_hook_) close_hook_(self);
  if (epoch_observer_) epoch_observer_(self);
}

}  // namespace gdi
