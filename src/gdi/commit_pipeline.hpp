// Cross-transaction group commit (the "Group-commit across transactions"
// ROADMAP item): a rank-local engine that collects the commit-time
// nonblocking work of a *stream* of committing transactions -- writeback
// PUTs, unlock FAAs -- into a shared **flush epoch**, paying one overlapped
// flush_all for the whole epoch instead of one completion fence per commit.
//
// Why this is sound on the model this repository targets:
//   * every enrolled operation is issued through the nonblocking engine, so
//     data movement is ordered at issue time; the deferred flush only moves
//     the *completion fence* (and its cost) later;
//   * a commit's unlock FAA targets the lock word on the holder's primary
//     rank -- the same destination its writeback PUT targets -- and a real
//     RDMA NIC completes same-destination operations in issue order, so a
//     racing reader that wins the freshly released lock reads bytes the
//     writeback already placed. Commits whose dirty blocks *span* ranks
//     (spilled continuation blocks) break that single-destination argument
//     and are therefore never enrolled: they flush eagerly before unlocking,
//     exactly like the pre-pipeline path (Transaction::commit_local);
//   * commits that publish to the DHT or release deleted blocks also flush
//     eagerly -- publication makes data reachable by ranks that never touch
//     our locks, and a recycled block may be rewritten by its next owner, so
//     both must complete the writeback first;
//   * within the issuing rank, later transactions read their own prior
//     writes through the window directly (one-sided semantics), so an open
//     epoch never makes a rank's own reads stale.
//
// Epoch lifecycle: the first enrolled commit opens an epoch; it closes --
// one flush_all covering every enrolled commit's PUTs and unlock FAAs -- when
// any of three bounds trips: the per-epoch transaction cap, the per-epoch
// writeback byte budget, or the max-delay knob (simulated ns since the epoch
// opened, checked at each enrollment; a rank-local stream has no background
// thread to close an idle epoch, so the knob bounds staleness of the
// *visibility fence*, not of the data, which moved at issue time). Any
// unrelated flush_all issued in between (a read batch, a DHT round) absorbs
// the epoch's pending work for free; the eventual epoch-close flush then
// fences nothing and costs nothing, which is the intended degenerate case.
// `epoch_txns = 1` degenerates to the pre-pipeline flush-per-commit shape,
// the escape hatch for latency-sensitive callers.
//
// Like the shared cache, the pipeline is per rank (Database owns one per
// rank) and is only ever touched by its own rank's thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "rma/runtime.hpp"

namespace gdi {

struct CommitPipelineConfig {
  std::size_t epoch_txns = 32;        ///< commits per epoch (1 = flush per commit)
  std::size_t epoch_bytes = 1 << 16;  ///< writeback bytes per epoch
  double max_delay_ns = 50000.0;      ///< close an epoch older than this (sim ns)
};

class CommitPipeline {
 public:
  explicit CommitPipeline(CommitPipelineConfig cfg) : cfg_(cfg) {}
  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  /// Enroll one committed transaction's deferred work (already issued
  /// nonblocking: writeback PUTs and unlock FAAs). `wb_bytes` is the
  /// commit's writeback volume, charged against the epoch byte budget.
  /// Returns true iff this enrollment closed the epoch (issued the flush).
  bool enroll(rma::Rank& self, std::size_t wb_bytes);

  /// Completion fence: close the open epoch (no-op when none is open).
  /// Callers that need remote visibility *now* -- a bench draining its
  /// measured stream, a test asserting durability -- use this.
  void sync(rma::Rank& self);

  [[nodiscard]] bool epoch_open() const { return open_; }
  [[nodiscard]] const CommitPipelineConfig& config() const { return cfg_; }

  /// Hook invoked right after every epoch close (after the epoch's flush, on
  /// the closing rank). The WAL rides it: the pipeline's flush epoch is the
  /// durability unit, so the hook seals the rank's open log epoch -- one
  /// group fsync amortized over exactly the commits the one flush amortized.
  void set_close_hook(std::function<void(rma::Rank&)> hook) {
    close_hook_ = std::move(hook);
  }

  /// Observer invoked after every epoch close, *after* the close hook -- i.e.
  /// after the epoch's flush completed and (when the WAL is on) after the log
  /// epoch sealed, so everything the epoch covered is visible AND durable.
  /// The multi-tenant scheduler rides it to complete the replies of commits
  /// it enrolled into the epoch (src/server/scheduler.hpp).
  void set_epoch_observer(std::function<void(rma::Rank&)> obs) {
    epoch_observer_ = std::move(obs);
  }

 private:
  void close(rma::Rank& self);

  CommitPipelineConfig cfg_;
  bool open_ = false;
  std::size_t txns_ = 0;
  std::size_t bytes_ = 0;
  double opened_ns_ = 0.0;
  std::function<void(rma::Rank&)> close_hook_;
  std::function<void(rma::Rank&)> epoch_observer_;
};

}  // namespace gdi
