#include "gdi/constraint.hpp"

namespace gdi {
namespace {

template <class T>
bool cmp(CmpOp op, const T& a, const T& b) {
  switch (op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
  }
  return false;
}

}  // namespace

bool compare_values(CmpOp op, Datatype t, std::span<const std::byte> stored,
                    const PropValue& rhs) {
  const PropValue lhs = decode_value(t, stored);
  switch (t) {
    case Datatype::kInt64: {
      const auto* r = std::get_if<std::int64_t>(&rhs);
      return r && cmp(op, std::get<std::int64_t>(lhs), *r);
    }
    case Datatype::kUint64: {
      const auto* r = std::get_if<std::uint64_t>(&rhs);
      return r && cmp(op, std::get<std::uint64_t>(lhs), *r);
    }
    case Datatype::kDouble: {
      const auto* r = std::get_if<double>(&rhs);
      return r && cmp(op, std::get<double>(lhs), *r);
    }
    case Datatype::kString: {
      const auto* r = std::get_if<std::string>(&rhs);
      return r && cmp(op, std::get<std::string>(lhs), *r);
    }
    case Datatype::kBytes: {
      const auto* r = std::get_if<std::vector<std::byte>>(&rhs);
      return r && cmp(op, std::get<std::vector<std::byte>>(lhs), *r);
    }
  }
  return false;
}

}  // namespace gdi
