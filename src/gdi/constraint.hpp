// Constraints: boolean formulas in disjunctive normal form (paper Section
// 3.6) used to query explicit indexes and to filter edge/neighbor retrieval.
//
// A Constraint is a disjunction of Subconstraints; a Subconstraint is a
// conjunction of label conditions and property conditions. An *empty*
// constraint matches everything (useful as the default filter).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/value.hpp"
#include "layout/holder.hpp"

namespace gdi {

enum class CmpOp : std::uint8_t { kEq = 0, kNe, kLt, kLe, kGt, kGe };

/// "vertex has (or lacks) label X".
struct LabelCond {
  std::uint32_t label_id = 0;
  bool present = true;
};

/// "some property entry of type `ptype` compares `op` against `value`".
struct PropCond {
  std::uint32_t ptype = 0;
  CmpOp op = CmpOp::kEq;
  Datatype dtype = Datatype::kInt64;
  PropValue value;
};

[[nodiscard]] bool compare_values(CmpOp op, Datatype t, std::span<const std::byte> stored,
                                  const PropValue& rhs);

struct Subconstraint {
  std::vector<LabelCond> labels;
  std::vector<PropCond> props;

  Subconstraint& require_label(std::uint32_t id) {
    labels.push_back({id, true});
    return *this;
  }
  Subconstraint& forbid_label(std::uint32_t id) {
    labels.push_back({id, false});
    return *this;
  }
  Subconstraint& where(std::uint32_t ptype, CmpOp op, Datatype t, PropValue v) {
    props.push_back({ptype, op, t, std::move(v)});
    return *this;
  }

  /// Conjunction over all conditions, evaluated against a decoded holder.
  template <class View>
  [[nodiscard]] bool matches(const View& v) const {
    for (const auto& lc : labels)
      if (v.has_label(lc.label_id) != lc.present) return false;
    for (const auto& pc : props) {
      bool any = false;
      v.for_each_entry([&](std::uint32_t id, std::span<const std::byte> payload) {
        if (id == pc.ptype && compare_values(pc.op, pc.dtype, payload, pc.value)) any = true;
      });
      if (!any) return false;
    }
    return true;
  }

  /// Match a lightweight edge record (at most one label, no properties).
  [[nodiscard]] bool matches_lw_edge(std::uint32_t edge_label) const {
    if (!props.empty()) return false;  // lightweight edges carry no properties
    for (const auto& lc : labels)
      if ((edge_label == lc.label_id) != lc.present) return false;
    return true;
  }
};

class Constraint {
 public:
  Constraint() = default;

  Subconstraint& add_subconstraint() { return subs_.emplace_back(); }
  void add_subconstraint(Subconstraint s) { subs_.push_back(std::move(s)); }
  [[nodiscard]] const std::vector<Subconstraint>& subconstraints() const { return subs_; }
  [[nodiscard]] bool empty() const { return subs_.empty(); }

  /// DNF evaluation: true if any subconstraint matches (or none exist).
  template <class View>
  [[nodiscard]] bool matches(const View& v) const {
    if (subs_.empty()) return true;
    for (const auto& s : subs_)
      if (s.matches(v)) return true;
    return false;
  }

  [[nodiscard]] bool matches_lw_edge(std::uint32_t edge_label) const {
    if (subs_.empty()) return true;
    for (const auto& s : subs_)
      if (s.matches_lw_edge(edge_label)) return true;
    return false;
  }

  /// Convenience: a constraint requiring exactly one label.
  [[nodiscard]] static Constraint with_label(std::uint32_t label_id) {
    Constraint c;
    c.add_subconstraint().require_label(label_id);
    return c;
  }

 private:
  std::vector<Subconstraint> subs_;
};

}  // namespace gdi
