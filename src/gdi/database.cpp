#include "gdi/database.hpp"

namespace gdi {

std::shared_ptr<Database> Database::create(rma::Rank& self, const DatabaseConfig& cfg) {
  return self.collective_make<Database>(
      [&] { return std::make_shared<Database>(self.nranks(), cfg); });
}

namespace {
// The erase epoch exists for the shared cache's translation memo; keep the
// extra per-erase FAA (and its rank-0 hot word) off when nothing consumes it.
[[nodiscard]] dht::DhtConfig dht_cfg_for(const DatabaseConfig& cfg) {
  dht::DhtConfig d = cfg.dht;
  d.track_erase_epoch = cfg.shared_cache;
  return d;
}
}  // namespace

Database::Database(int nranks, const DatabaseConfig& cfg)
    : cfg_(cfg),
      nranks_(nranks),
      blocks_(nranks, cfg.block),
      dht_(nranks, dht_cfg_for(cfg)),
      metadata_(static_cast<std::size_t>(nranks)) {
  if (cfg_.shared_cache) {
    // One knob bounds the whole cache: the translation memo scales with the
    // byte budget (~64B of map + FIFO footprint per entry, i.e. a few
    // percent of the holder budget).
    const cache::SharedCacheConfig sc{
        .max_bytes = cfg_.shared_cache_bytes,
        .max_translations = cfg_.shared_cache_bytes / 64};
    scaches_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r)
      scaches_.push_back(std::make_unique<cache::SharedBlockCache>(sc));
  }
  if (cfg_.commit_pipeline) {
    const CommitPipelineConfig pc{.epoch_txns = cfg_.commit_epoch_txns,
                                  .epoch_bytes = cfg_.commit_epoch_bytes,
                                  .max_delay_ns = cfg_.commit_max_delay_ns};
    pipelines_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r)
      pipelines_.push_back(std::make_unique<CommitPipeline>(pc));
  }
}

// Collective metadata mutation: every rank applies the same update to its own
// replica between two barriers, so replicas advance in lockstep. The second
// barrier is implied by the next collective; a single barrier suffices for
// the lockstep invariant.
Result<std::uint32_t> Database::create_label(rma::Rank& self, const std::string& name) {
  self.barrier();
  return metadata_[static_cast<std::size_t>(self.id())].create_label(name);
}

Status Database::delete_label(rma::Rank& self, std::uint32_t id) {
  self.barrier();
  return metadata_[static_cast<std::size_t>(self.id())].delete_label(id);
}

Result<std::uint32_t> Database::label_from_name(rma::Rank& self,
                                                const std::string& name) const {
  auto v = metadata_[static_cast<std::size_t>(self.id())].label_from_name(name);
  if (!v) return Status::kNotFound;
  return *v;
}

Result<std::string> Database::label_name(rma::Rank& self, std::uint32_t id) const {
  auto v = metadata_[static_cast<std::size_t>(self.id())].label_name(id);
  if (!v) return Status::kNotFound;
  return *v;
}

std::vector<Label> Database::all_labels(rma::Rank& self) const {
  return metadata_[static_cast<std::size_t>(self.id())].all_labels();
}

Result<std::uint32_t> Database::create_ptype(rma::Rank& self, const PropertyType& def) {
  self.barrier();
  return metadata_[static_cast<std::size_t>(self.id())].create_ptype(def);
}

Status Database::delete_ptype(rma::Rank& self, std::uint32_t id) {
  self.barrier();
  return metadata_[static_cast<std::size_t>(self.id())].delete_ptype(id);
}

Result<std::uint32_t> Database::ptype_from_name(rma::Rank& self,
                                                const std::string& name) const {
  auto v = metadata_[static_cast<std::size_t>(self.id())].ptype_from_name(name);
  if (!v) return Status::kNotFound;
  return *v;
}

const PropertyType* Database::ptype(rma::Rank& self, std::uint32_t id) const {
  return metadata_[static_cast<std::size_t>(self.id())].ptype(id);
}

std::vector<PropertyType> Database::all_ptypes(rma::Rank& self) const {
  return metadata_[static_cast<std::size_t>(self.id())].all_ptypes();
}

std::shared_ptr<Index> Database::create_index(rma::Rank& self, IndexDef def) {
  auto idx = self.collective_make<Index>([&] {
    return std::make_shared<Index>(nranks_, def, cfg_.index_capacity_per_rank,
                                   next_index_id_);
  });
  if (self.id() == 0) {
    indexes_.push_back(idx);
    ++next_index_id_;
  }
  self.barrier();
  return idx;
}

}  // namespace gdi
