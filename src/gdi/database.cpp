#include "gdi/database.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "rma/fault.hpp"
#include "net/listener.hpp"
#include "server/scheduler.hpp"

namespace gdi {

Database::~Database() = default;

server::TenantScheduler* Database::scheduler(rma::Rank& self) {
  if (schedulers_.empty()) return nullptr;
  return schedulers_[static_cast<std::size_t>(self.id())].get();
}

net::Listener* Database::listener(rma::Rank& self) {
  if (listeners_.empty()) return nullptr;
  return listeners_[static_cast<std::size_t>(self.id())].get();
}

namespace {
/// Per-rank teardown lease (the control block behind the shared_ptr create()
/// returns). Each rank's callers hold an *aliasing* shared_ptr to the one
/// Database through their own lease; when a rank drops its last reference --
/// which happens on that rank's thread, while its stack-allocated rma::Rank
/// is still alive -- the lease drains that rank's open pipeline epoch and
/// seals its WAL tail. The inner shared_ptr keeps the Database itself alive
/// until the last rank's lease dies, so ~Database never has to touch a Rank
/// (other ranks' Rank objects may already be gone by then).
struct TeardownLease {
  std::shared_ptr<Database> db;
  rma::Rank* self = nullptr;

  ~TeardownLease() {
    if (!db) return;
    try {
      db->drain(*self);
    } catch (const rma::FaultKill&) {
      // An injected failure fired inside the drain's flush: the simulated
      // process died during shutdown, so the tail is lost -- exactly what a
      // recovery test wants. Swallow it; destructors must not throw.
    }
  }
};
}  // namespace

std::shared_ptr<Database> Database::attach_lease(rma::Rank& self,
                                                 std::shared_ptr<Database> db) {
  Database* raw = db.get();
  auto lease = std::make_shared<TeardownLease>();
  lease->db = std::move(db);
  lease->self = &self;
  return std::shared_ptr<Database>(std::move(lease), raw);
}

std::shared_ptr<Database> Database::create(rma::Rank& self, const DatabaseConfig& cfg) {
  auto db = self.collective_make<Database>(
      [&] { return std::make_shared<Database>(self.nranks(), cfg); });
  return attach_lease(self, std::move(db));
}

namespace {
// The erase epoch exists for the shared cache's translation memo; keep the
// extra per-erase FAA (and its rank-0 hot word) off when nothing consumes it.
[[nodiscard]] dht::DhtConfig dht_cfg_for(const DatabaseConfig& cfg) {
  dht::DhtConfig d = cfg.dht;
  d.track_erase_epoch = cfg.shared_cache;
  return d;
}
}  // namespace

Database::Database(int nranks, const DatabaseConfig& cfg)
    : cfg_(cfg),
      nranks_(nranks),
      blocks_(nranks, cfg.block),
      dht_(nranks, dht_cfg_for(cfg)),
      metadata_(static_cast<std::size_t>(nranks)) {
  if (cfg_.shared_cache) {
    // One knob bounds the whole cache: the translation memo scales with the
    // byte budget (~64B of map + FIFO footprint per entry, i.e. a few
    // percent of the holder budget).
    const cache::SharedCacheConfig sc{
        .max_bytes = cfg_.shared_cache_bytes,
        .max_translations = cfg_.shared_cache_bytes / 64,
        .policy = cfg_.scache_policy};
    scaches_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r)
      scaches_.push_back(std::make_unique<cache::SharedBlockCache>(sc));
  }
  if (cfg_.commit_pipeline) {
    const CommitPipelineConfig pc{.epoch_txns = cfg_.commit_epoch_txns,
                                  .epoch_bytes = cfg_.commit_epoch_bytes,
                                  .max_delay_ns = cfg_.commit_max_delay_ns};
    pipelines_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r)
      pipelines_.push_back(std::make_unique<CommitPipeline>(pc));
  }
  draining_.assign(static_cast<std::size_t>(nranks), 0);
  recovered_commits_.assign(static_cast<std::size_t>(nranks), 0);
  if (cfg_.wal) {
    assert(!cfg_.wal_dir.empty() && "DatabaseConfig::wal requires wal_dir");
    const wal::WalConfig wc{.dir = cfg_.wal_dir,
                            .segment_bytes = cfg_.wal_segment_bytes,
                            .fsync_ns = cfg_.wal_fsync_ns,
                            .append_ns_per_byte = cfg_.wal_append_ns_per_byte};
    wals_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r)
      wals_.push_back(std::make_unique<wal::WalWriter>(r, wc));
    // The pipeline's flush epoch is the durability unit: its close seals the
    // rank's log epoch, so the one group fsync covers exactly the commits
    // the one group flush covered.
    for (auto& p : pipelines_)
      p->set_close_hook([this](rma::Rank& s) { wal_epoch_close(s); });
  }
  if (cfg_.server) {
    const server::SchedulerConfig scfg{
        .inflight_per_tenant = cfg_.server_inflight_per_tenant,
        .admission_bytes = cfg_.server_admission_bytes,
        .read_coalesce = cfg_.server_read_coalesce,
        .drr_quantum_bytes = cfg_.server_drr_quantum_bytes,
        .write_retries = cfg_.server_write_retries};
    schedulers_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r)
      schedulers_.push_back(std::make_unique<server::TenantScheduler>(scfg));
    // Epoch-deferred commits complete their client replies when the epoch
    // they rode closes (post-flush, post-WAL-seal -- visible and durable).
    for (int r = 0; r < nranks; ++r) {
      if (!pipelines_.empty()) {
        server::TenantScheduler* ts = schedulers_[static_cast<std::size_t>(r)].get();
        pipelines_[static_cast<std::size_t>(r)]->set_epoch_observer(
            [ts](rma::Rank& s) { ts->on_epoch_close(s); });
      }
    }
    if (cfg_.net_listen) {
      // Socket front end: one listener per rank feeding that rank's
      // scheduler. cfg.net_port is a base -- rank r binds port+r (0 stays 0:
      // every rank gets its own ephemeral port, read via listener->port()).
      const net::NetConfig base{
          .port = cfg_.net_port,
          .auth_token = cfg_.net_auth_token,
          .max_connections = cfg_.net_max_connections,
          .max_tenants = cfg_.net_max_tenants,
          .credits = cfg_.net_credits,
          .max_frame_bytes = cfg_.net_max_frame_bytes,
          .handshake_timeout_ms = cfg_.net_handshake_timeout_ms,
          .idle_timeout_ms = cfg_.net_idle_timeout_ms,
          .drain_timeout_ms = cfg_.net_drain_timeout_ms,
          .retry_after_ns = cfg_.net_retry_after_ns};
      listeners_.reserve(static_cast<std::size_t>(nranks));
      for (int r = 0; r < nranks; ++r) {
        net::NetConfig ncfg = base;
        if (ncfg.port != 0)
          ncfg.port = static_cast<std::uint16_t>(ncfg.port + r);
        listeners_.push_back(std::make_unique<net::Listener>(
            schedulers_[static_cast<std::size_t>(r)].get(), ncfg));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// WAL: sealing, checkpoints, teardown drain
// ---------------------------------------------------------------------------

void Database::wal_epoch_close(rma::Rank& self) {
  wal::WalWriter* w = wal(self);
  if (w == nullptr) return;
  const bool draining = draining_[static_cast<std::size_t>(self.id())] != 0;
  w->seal(self, /*allow_kill=*/!draining);
  if (!draining && cfg_.wal_checkpoint_epochs > 0 &&
      w->sealed_since_checkpoint() >= cfg_.wal_checkpoint_epochs)
    checkpoint_local(self);
}

void Database::drain(rma::Rank& self) {
  const auto r = static_cast<std::size_t>(self.id());
  if (draining_.empty() || draining_[r] != 0) return;
  // A fault-killed rank persists nothing: the simulated crash already
  // happened, and sealing its tail now would durably save the very bytes the
  // crash was supposed to lose.
  if (const rma::FaultInjector* f = self.faults(); f != nullptr && f->killed())
    return;
  draining_[r] = 1;
  if (CommitPipeline* cp = commit_pipeline(self)) cp->sync(self);
  if (wal::WalWriter* w = wal(self)) w->seal(self, /*allow_kill=*/false);
  draining_[r] = 0;
}

std::vector<std::byte> Database::serialize_rank(int r) {
  std::vector<std::byte> out;
  const auto chunk = [&out](auto&& fill) {
    const std::size_t at = out.size();
    out.resize(at + 8);  // length prefix, patched after fill
    fill(out);
    const std::uint64_t len = out.size() - at - 8;
    std::memcpy(out.data() + at, &len, 8);
  };
  chunk([&](std::vector<std::byte>& o) { blocks_.serialize_rank(r, o); });
  chunk([&](std::vector<std::byte>& o) { dht_.serialize_rank(r, o); });
  chunk([&](std::vector<std::byte>& o) {
    metadata_[static_cast<std::size_t>(r)].serialize(o);
  });
  return out;
}

bool Database::restore_rank_sections(rma::Rank& self, int r,
                                     std::span<const std::byte> in) {
  const auto take = [](std::span<const std::byte>& s,
                       std::span<const std::byte>& chunk) {
    if (s.size() < 8) return false;
    std::uint64_t len;
    std::memcpy(&len, s.data(), 8);
    s = s.subspan(8);
    if (s.size() < len) return false;
    chunk = s.first(static_cast<std::size_t>(len));
    s = s.subspan(static_cast<std::size_t>(len));
    return true;
  };
  std::span<const std::byte> c;
  if (!take(in, c) || !blocks_.restore_rank(r, c)) return false;
  if (!take(in, c) || !dht_.restore_rank(self, r, c)) return false;
  if (!take(in, c) || !metadata_[static_cast<std::size_t>(r)].restore(c)) return false;
  return in.empty();
}

void Database::checkpoint_local(rma::Rank& self) {
  // Cadence path: snapshots *every* rank's regions from this thread, which is
  // only coherent when this rank is the sole writer (DatabaseConfig doc).
  wal::Checkpoint ck;
  for (int r = 0; r < nranks_; ++r) {
    ck.sections.push_back(serialize_rank(r));
    ck.epoch_hw.push_back(wals_[static_cast<std::size_t>(r)]->epoch_hw());
    ck.commit_hw.push_back(wals_[static_cast<std::size_t>(r)]->commit_hw());
  }
  collect_net_sections(ck);
  wal::WalWriter* w = wal(self);
  if (!wal::write_checkpoint(self, w->config(), ck)) return;  // keep the log
  w->truncate_through(w->epoch_hw());
}

void Database::net_ack_durable(rma::Rank& self, std::uint64_t tenant,
                               std::uint64_t tag, Status st, std::int64_t v0,
                               std::int64_t v1) {
  if (net::Listener* l = listener(self))
    l->restore_completion(tenant, server::Reply{tag, st, v0, v1, 0});
}

void Database::collect_net_sections(wal::Checkpoint& ck) {
  // Listener replay state rides the checkpoint as a separate trailer (never
  // inside serialize_rank: that image is the byte-for-byte oracle, and tenant
  // replies carry timing-dependent fields). With net_listen off this loop
  // does not run and the checkpoint is byte-identical to pre-PR10 output.
  if (listeners_.empty()) return;
  for (int r = 0; r < nranks_; ++r)
    ck.net_sections.push_back(
        listeners_[static_cast<std::size_t>(r)]->serialize_replay_state());
}

Status Database::checkpoint(rma::Rank& self) {
  wal::WalWriter* w = wal(self);
  if (w == nullptr) return Status::kInvalidArgument;
  if (CommitPipeline* cp = commit_pipeline(self)) cp->sync(self);
  // Opt-in incremental id-index compaction: migrate up to `budget` entries
  // toward their current home shards before the snapshot barrier, so the
  // checkpoint image reflects the (partially) compacted table and steady
  // checkpointing converges the partition without a dedicated maintenance
  // pass. One-sided and concurrent-safe; see DistributedHashTable::compact.
  if (cfg_.wal_checkpoint_compact_budget > 0)
    (void)dht_.compact(self, cfg_.wal_checkpoint_compact_budget);
  w->seal(self);
  // Every rank's tail is durable and its writer quiescent before rank 0
  // snapshots all sections (the barrier also publishes the writers' hw
  // counters to rank 0's thread).
  self.barrier();
  bool ok = true;
  if (self.id() == 0) {
    wal::Checkpoint ck;
    for (int r = 0; r < nranks_; ++r) {
      ck.sections.push_back(serialize_rank(r));
      ck.epoch_hw.push_back(wals_[static_cast<std::size_t>(r)]->epoch_hw());
      ck.commit_hw.push_back(wals_[static_cast<std::size_t>(r)]->commit_hw());
    }
    collect_net_sections(ck);
    ok = wal::write_checkpoint(self, w->config(), ck);
  }
  ok = self.broadcast<std::uint8_t>(ok ? 1 : 0, 0) != 0;
  if (!ok) return Status::kStale;
  w->truncate_through(w->epoch_hw());
  self.barrier();
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

std::shared_ptr<Database> Database::recover(rma::Rank& self, const DatabaseConfig& cfg) {
  auto db = self.collective_make<Database>(
      [&] { return std::make_shared<Database>(self.nranks(), cfg); });
  // A fresh Database is deterministic initial state; recovery = checkpoint
  // restore + tail replay on top of it.
  bool ok = cfg.wal && !cfg.wal_dir.empty();
  if (ok) ok = db->recover_rank(self);
  if (self.allreduce_or(!ok)) return nullptr;  // all-or-nothing, every rank
  return attach_lease(self, std::move(db));
}

bool Database::recover_rank(rma::Rank& self) {
  const int r = self.id();
  wal::WalWriter* w = wals_[static_cast<std::size_t>(r)].get();
  bool ok = true;
  std::uint64_t ck_epoch = 0, ck_commit = 0;
  if (auto ck = wal::read_checkpoint(cfg_.wal_dir)) {
    if (ck->sections.size() == static_cast<std::size_t>(nranks_)) {
      ok = restore_rank_sections(self, r, ck->sections[static_cast<std::size_t>(r)]);
      ck_epoch = ck->epoch_hw[static_cast<std::size_t>(r)];
      ck_commit = ck->commit_hw[static_cast<std::size_t>(r)];
      // Rebuild the listener's exactly-once replay state from the trailer;
      // tail replay below folds in post-checkpoint kTenantAck ops. Without a
      // listener (recovering with net_listen off) the trailer is ignored.
      if (ok && !listeners_.empty() &&
          ck->net_sections.size() == static_cast<std::size_t>(nranks_))
        ok = listeners_[static_cast<std::size_t>(r)]->restore_replay_state(
            ck->net_sections[static_cast<std::size_t>(r)]);
    } else {
      ok = false;  // checkpoint from a different rank count: refuse
    }
  }
  // Every rank's checkpoint section must be in place before anyone replays:
  // replayed images and DHT inserts touch other ranks' regions.
  self.barrier();
  dht_.refresh_local(self);
  wal::RecoveredLog log = wal::read_log(cfg_.wal_dir, r, ck_epoch);
  // Cut the torn remnant off the disk before this rank can seal again: left
  // in place at a segment tail, it would stop the NEXT recovery's scan early
  // and silently shadow every intact segment sealed after this one.
  if (!wal::truncate_torn_tail(log)) ok = false;
  if (ok) {
    for (const wal::EpochView& e : log.epochs) {
      for (const wal::CommitView& c : e.commits) {
        if (!replay_commit(self, c)) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
      self.counters().wal_replayed_epochs += 1;
    }
  }
  const std::uint64_t epoch_hw = std::max(ck_epoch, log.epoch_hw);
  const std::uint64_t commit_hw = std::max(ck_commit, log.commit_hw);
  // Hand the scanned segments to the writer so post-restart checkpoints can
  // truncate them; otherwise the directory grows across crash/recover cycles.
  w->reset_hw(epoch_hw, commit_hw, std::move(log.segments));
  recovered_commits_[static_cast<std::size_t>(r)] = commit_hw;
  // Replay complete everywhere before any caller touches the database.
  self.barrier();
  return ok;
}

bool Database::replay_commit(rma::Rank& self, const wal::CommitView& c) {
  for (const wal::Op& op : c.ops) {
    switch (op.type) {
      case wal::OpType::kAcquire: {
        // Re-executing the acquire (instead of force-marking the block used)
        // reproduces the free-list pop order, so allocator tags and usage
        // words converge byte-for-byte. A mismatch means the log and the
        // restored allocator state disagree -- fail loudly, don't guess.
        const DPtr got = blocks_.acquire(self, op.blk.rank());
        if (got.raw() != op.blk.raw()) return false;
        break;
      }
      case wal::OpType::kRelease:
        blocks_.release(self, op.blk);
        break;
      case wal::OpType::kImage:
        blocks_.write(self, op.blk, op.off, op.data.data(), op.data.size());
        break;
      case wal::OpType::kDhtInsert:
        if (!dht_.insert(self, op.key, op.value)) return false;
        break;
      case wal::OpType::kDhtErase:
        // The entry may predate the checkpoint that already absorbed the
        // erase; idempotent re-application tolerates the miss.
        (void)dht_.erase(self, op.key);
        break;
      case wal::OpType::kLockBump:
        blocks_.bump_version(self, op.blk);
        break;
      case wal::OpType::kTenantAck:
        // Rebuild the listener's per-tenant watermark + reply cache so a
        // write replayed across the restart is answered, never re-executed.
        // Recovering with net_listen off drops the ack: it has no consumer,
        // and the data ops above already restored the database itself.
        if (net::Listener* l = listener(self))
          l->restore_completion(
              op.tenant,
              server::Reply{op.tag, static_cast<Status>(op.ack_status),
                            op.ack_v0, op.ack_v1, 0});
        break;
    }
  }
  return true;
}

// Collective metadata mutation: every rank applies the same update to its own
// replica between two barriers, so replicas advance in lockstep. The second
// barrier is implied by the next collective; a single barrier suffices for
// the lockstep invariant.
Result<std::uint32_t> Database::create_label(rma::Rank& self, const std::string& name) {
  self.barrier();
  return metadata_[static_cast<std::size_t>(self.id())].create_label(name);
}

Status Database::delete_label(rma::Rank& self, std::uint32_t id) {
  self.barrier();
  return metadata_[static_cast<std::size_t>(self.id())].delete_label(id);
}

Result<std::uint32_t> Database::label_from_name(rma::Rank& self,
                                                const std::string& name) const {
  auto v = metadata_[static_cast<std::size_t>(self.id())].label_from_name(name);
  if (!v) return Status::kNotFound;
  return *v;
}

Result<std::string> Database::label_name(rma::Rank& self, std::uint32_t id) const {
  auto v = metadata_[static_cast<std::size_t>(self.id())].label_name(id);
  if (!v) return Status::kNotFound;
  return *v;
}

std::vector<Label> Database::all_labels(rma::Rank& self) const {
  return metadata_[static_cast<std::size_t>(self.id())].all_labels();
}

Result<std::uint32_t> Database::create_ptype(rma::Rank& self, const PropertyType& def) {
  self.barrier();
  return metadata_[static_cast<std::size_t>(self.id())].create_ptype(def);
}

Status Database::delete_ptype(rma::Rank& self, std::uint32_t id) {
  self.barrier();
  return metadata_[static_cast<std::size_t>(self.id())].delete_ptype(id);
}

Result<std::uint32_t> Database::ptype_from_name(rma::Rank& self,
                                                const std::string& name) const {
  auto v = metadata_[static_cast<std::size_t>(self.id())].ptype_from_name(name);
  if (!v) return Status::kNotFound;
  return *v;
}

const PropertyType* Database::ptype(rma::Rank& self, std::uint32_t id) const {
  return metadata_[static_cast<std::size_t>(self.id())].ptype(id);
}

std::vector<PropertyType> Database::all_ptypes(rma::Rank& self) const {
  return metadata_[static_cast<std::size_t>(self.id())].all_ptypes();
}

std::shared_ptr<Index> Database::create_index(rma::Rank& self, IndexDef def) {
  auto idx = self.collective_make<Index>([&] {
    return std::make_shared<Index>(nranks_, def, cfg_.index_capacity_per_rank,
                                   next_index_id_);
  });
  if (self.id() == 0) {
    indexes_.push_back(idx);
    ++next_index_id_;
  }
  self.barrier();
  return idx;
}

}  // namespace gdi
