// The GDI database object (paper Figure 2: "General management" +
// Figure 3 "Databases management").
//
// A Database bundles the storage substrates of one graph database instance:
// the BGDL block store, the internal DHT (application ID -> DPtr), the
// replicated metadata registries, and the explicit indexes. GDI supports
// multiple parallel databases (paper Section 3.9): any number of Database
// objects may coexist in one Runtime.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "block/block_store.hpp"
#include "cache/shared_cache.hpp"
#include "common/hash.hpp"
#include "dht/dht.hpp"
#include "gdi/commit_pipeline.hpp"
#include "gdi/index.hpp"
#include "gdi/metadata.hpp"
#include "rma/runtime.hpp"

namespace gdi {

/// Vertex distribution scheme (paper Section 5.4: GDI is orthogonal to the
/// partitioning; GDA defaults to round-robin since "other distribution
/// schemes only negligibly impact our performance").
enum class Partitioning : std::uint8_t {
  kRoundRobin = 0,  ///< owner = app_id mod P
  kHashed,          ///< owner = splitmix64(app_id) mod P
};

struct DatabaseConfig {
  block::BlockStoreConfig block;
  dht::DhtConfig dht;
  std::size_t index_capacity_per_rank = 1u << 16;
  int lock_attempts = 8;  ///< bounded lock retries before a txn conflict abort
  Partitioning partitioning = Partitioning::kRoundRobin;
  /// Issue read-side holder/DHT fetches through the nonblocking batch engine
  /// (overlapped max(alpha)+sum(beta*bytes) cost). Off = the seed's serial
  /// one-latency-per-GET behaviour; results are identical either way.
  bool batched_reads = true;
  /// Per-transaction read-through block cache (invalidated on the
  /// transaction's own writes, dropped at commit/abort).
  bool block_cache = true;
  /// Shared (inter-transaction) version-validated holder cache, one per rank
  /// (see src/cache/shared_cache.hpp). Hits skip a holder's block fetches
  /// entirely; correctness comes from lock-word version validation, so reads
  /// keep their mode's semantics. Off by default: with it off, every op-count
  /// contract of the uncached design holds exactly; benches and production
  /// configs switch it on.
  bool shared_cache = false;
  /// Shared-cache capacity in holder *bytes* per rank (entries charged their
  /// assembled-holder size, FIFO-evicted beyond -- a 4-block holder displaces
  /// 4x what a singleton does).
  std::size_t shared_cache_bytes = 4096 * 512;
  /// Write-through: a committing writer re-stamps its shared-cache entries
  /// with the committed bytes under the version its fetch-flavored unlock
  /// published (BlockStore::write_unlock_fetch), instead of leaving them
  /// invalidated -- the rank's own write set stays warm across transactions.
  /// Requires shared_cache; off by default for the same op-count reasons.
  bool scache_write_through = false;
  /// Cross-transaction group commit (src/gdi/commit_pipeline.hpp): eligible
  /// commits defer their writeback flush + unlock round into a rank-local
  /// shared epoch, paying one overlapped flush per epoch instead of one per
  /// commit. Off by default: with it off, commit keeps the PR 2 contract of
  /// exactly one flush per writeback.
  bool commit_pipeline = false;
  std::size_t commit_epoch_txns = 32;        ///< commits per flush epoch
  std::size_t commit_epoch_bytes = 1 << 16;  ///< writeback bytes per epoch
  double commit_max_delay_ns = 50000.0;      ///< epoch age bound (simulated ns)
};

class Transaction;
enum class TxnMode : std::uint8_t;

class Database {
 public:
  /// Collective: every rank calls; all receive the same database.
  [[nodiscard]] static std::shared_ptr<Database> create(rma::Rank& self,
                                                        const DatabaseConfig& cfg);

  Database(int nranks, const DatabaseConfig& cfg);

  [[nodiscard]] const DatabaseConfig& config() const { return cfg_; }
  [[nodiscard]] block::BlockStore& blocks() { return blocks_; }
  [[nodiscard]] dht::DistributedHashTable& id_index() { return dht_; }
  [[nodiscard]] int nranks() const { return nranks_; }

  /// This rank's shared holder cache, or nullptr when the feature is off.
  /// Per-rank because the target deployment gives each rank private process
  /// memory; a rank only ever touches its own instance (no locking needed).
  [[nodiscard]] cache::SharedBlockCache* shared_cache(rma::Rank& self) {
    if (scaches_.empty()) return nullptr;
    return scaches_[static_cast<std::size_t>(self.id())].get();
  }

  /// This rank's group-commit pipeline, or nullptr when the feature is off
  /// (same per-rank ownership discipline as the shared cache).
  [[nodiscard]] CommitPipeline* commit_pipeline(rma::Rank& self) {
    if (pipelines_.empty()) return nullptr;
    return pipelines_[static_cast<std::size_t>(self.id())].get();
  }

  /// 1D vertex distribution (paper Section 5.4).
  [[nodiscard]] std::uint32_t owner_rank(std::uint64_t app_id) const {
    const std::uint64_t key = cfg_.partitioning == Partitioning::kHashed
                                  ? splitmix64(app_id)
                                  : app_id;
    return static_cast<std::uint32_t>(key % static_cast<std::uint64_t>(nranks_));
  }

  // --- metadata (creates/deletes are collective, lookups local) -------------
  Result<std::uint32_t> create_label(rma::Rank& self, const std::string& name);
  Status delete_label(rma::Rank& self, std::uint32_t id);
  [[nodiscard]] Result<std::uint32_t> label_from_name(rma::Rank& self,
                                                      const std::string& name) const;
  [[nodiscard]] Result<std::string> label_name(rma::Rank& self, std::uint32_t id) const;
  [[nodiscard]] std::vector<Label> all_labels(rma::Rank& self) const;

  Result<std::uint32_t> create_ptype(rma::Rank& self, const PropertyType& def);
  Status delete_ptype(rma::Rank& self, std::uint32_t id);
  [[nodiscard]] Result<std::uint32_t> ptype_from_name(rma::Rank& self,
                                                      const std::string& name) const;
  [[nodiscard]] const PropertyType* ptype(rma::Rank& self, std::uint32_t id) const;
  [[nodiscard]] std::vector<PropertyType> all_ptypes(rma::Rank& self) const;

  // --- explicit indexes (creation collective) --------------------------------
  [[nodiscard]] std::shared_ptr<Index> create_index(rma::Rank& self, IndexDef def);
  [[nodiscard]] const std::vector<std::shared_ptr<Index>>& indexes() const {
    return indexes_;
  }

 private:
  friend class Transaction;
  friend class BulkLoader;

  DatabaseConfig cfg_;
  int nranks_;
  block::BlockStore blocks_;
  dht::DistributedHashTable dht_;
  std::vector<MetadataReplica> metadata_;  ///< one replica per rank (paper 5.8)
  /// One shared holder cache per rank (empty when cfg_.shared_cache is off).
  std::vector<std::unique_ptr<cache::SharedBlockCache>> scaches_;
  /// One group-commit pipeline per rank (empty when cfg_.commit_pipeline off).
  std::vector<std::unique_ptr<CommitPipeline>> pipelines_;
  std::vector<std::shared_ptr<Index>> indexes_;
  std::uint32_t next_index_id_ = 0;
};

}  // namespace gdi
