// The GDI database object (paper Figure 2: "General management" +
// Figure 3 "Databases management").
//
// A Database bundles the storage substrates of one graph database instance:
// the BGDL block store, the internal DHT (application ID -> DPtr), the
// replicated metadata registries, and the explicit indexes. GDI supports
// multiple parallel databases (paper Section 3.9): any number of Database
// objects may coexist in one Runtime.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "block/block_store.hpp"
#include "cache/shared_cache.hpp"
#include "common/hash.hpp"
#include "dht/dht.hpp"
#include "gdi/commit_pipeline.hpp"
#include "gdi/index.hpp"
#include "gdi/metadata.hpp"
#include "rma/runtime.hpp"
#include "wal/wal.hpp"

namespace gdi {

namespace server {
class TenantScheduler;
}

namespace net {
class Listener;
}

/// Vertex distribution scheme (paper Section 5.4: GDI is orthogonal to the
/// partitioning; GDA defaults to round-robin since "other distribution
/// schemes only negligibly impact our performance").
enum class Partitioning : std::uint8_t {
  kRoundRobin = 0,  ///< owner = app_id mod P
  kHashed,          ///< owner = splitmix64(app_id) mod P
};

struct DatabaseConfig {
  block::BlockStoreConfig block;
  dht::DhtConfig dht;
  std::size_t index_capacity_per_rank = 1u << 16;
  int lock_attempts = 8;  ///< bounded lock retries before a txn conflict abort
  Partitioning partitioning = Partitioning::kRoundRobin;
  /// Issue read-side holder/DHT fetches through the nonblocking batch engine
  /// (overlapped max(alpha)+sum(beta*bytes) cost). Off = the seed's serial
  /// one-latency-per-GET behaviour; results are identical either way.
  bool batched_reads = true;
  /// Per-transaction read-through block cache (invalidated on the
  /// transaction's own writes, dropped at commit/abort).
  bool block_cache = true;
  /// Shared (inter-transaction) version-validated holder cache, one per rank
  /// (see src/cache/shared_cache.hpp). Hits skip a holder's block fetches
  /// entirely; correctness comes from lock-word version validation, so reads
  /// keep their mode's semantics. Off by default: with it off, every op-count
  /// contract of the uncached design holds exactly; benches and production
  /// configs switch it on.
  bool shared_cache = false;
  /// Shared-cache capacity in holder *bytes* per rank (entries charged their
  /// assembled-holder size, FIFO-evicted beyond -- a 4-block holder displaces
  /// 4x what a singleton does).
  std::size_t shared_cache_bytes = 4096 * 512;
  /// Shared-cache admission policy (cache::ScachePolicy). kFifo is the
  /// historical single-queue behaviour, bit-exact with prior releases; k2Q
  /// adds scan-resistant two-queue admission for mixed HTAP traffic.
  cache::ScachePolicy scache_policy = cache::ScachePolicy::kFifo;
  /// Write-through: a committing writer re-stamps its shared-cache entries
  /// with the committed bytes under the version its fetch-flavored unlock
  /// published (BlockStore::write_unlock_fetch), instead of leaving them
  /// invalidated -- the rank's own write set stays warm across transactions.
  /// Requires shared_cache; off by default for the same op-count reasons.
  bool scache_write_through = false;
  /// Cross-transaction group commit (src/gdi/commit_pipeline.hpp): eligible
  /// commits defer their writeback flush + unlock round into a rank-local
  /// shared epoch, paying one overlapped flush per epoch instead of one per
  /// commit. Off by default: with it off, commit keeps the PR 2 contract of
  /// exactly one flush per writeback.
  bool commit_pipeline = false;
  std::size_t commit_epoch_txns = 32;        ///< commits per flush epoch
  std::size_t commit_epoch_bytes = 1 << 16;  ///< writeback bytes per epoch
  double commit_max_delay_ns = 50000.0;      ///< epoch age bound (simulated ns)
  /// Epoch write-ahead log (src/wal/): every commit's redo record is appended
  /// to a per-rank segmented log before its unlock FAAs; the log epoch is
  /// sealed (one group fsync) when the commit pipeline's flush epoch closes,
  /// or immediately for pipeline-ineligible commits. Off by default: with it
  /// off, no WAL object exists and every byte of RMA traffic is identical to
  /// the non-durable build (the WAL itself adds no window operations either
  /// way -- only file IO plus modeled fsync/append time -- so the parity is
  /// exact by construction; tests pin it). See README "Durability protocol".
  bool wal = false;
  std::string wal_dir;                    ///< log directory; required when wal is on
  std::size_t wal_segment_bytes = 4u << 20;  ///< log segment rotation bound
  /// Auto-checkpoint cadence: write a checkpoint (and truncate logs behind
  /// it) every N sealed epochs. 0 = manual checkpoints only. The cadence
  /// trigger snapshots every rank's regions from the sealing rank's thread,
  /// so it is only safe for single-driver streams; concurrent multi-rank
  /// writers should call the collective checkpoint() instead.
  std::uint64_t wal_checkpoint_epochs = 0;
  /// Incremental DHT compaction from checkpoint(): each collective checkpoint
  /// first runs `dht.compact(self, budget)` with this budget, so a database
  /// that checkpoints regularly also converges its id-index partition (clean
  /// count -> shard count) a slice at a time. 0 = off (the default): a
  /// checkpoint then snapshots exactly the physical state the workload
  /// produced, which byte-for-byte recovery tests rely on. When on, the
  /// migrations happen *before* the quiescent snapshot barrier, so the
  /// checkpoint image is identical on every rank either way.
  std::uint64_t wal_checkpoint_compact_budget = 0;
  double wal_fsync_ns = 20000.0;       ///< modeled cost of one group fsync
  double wal_append_ns_per_byte = 0.25;  ///< modeled append/CRC streaming cost
  /// Multi-tenant front end (src/server/): one TenantScheduler per rank that
  /// accepts transactions from concurrent client *sessions* (in-process
  /// threads today; the session API is transport-agnostic so a socket
  /// listener can feed the same queues later), coalesces compatible reads
  /// into shared batch executes and funnels commits into the commit
  /// pipeline's flush epochs. Off by default: with it off, no scheduler
  /// object exists and every byte of traffic is identical to prior releases.
  bool server = false;
  /// Admission control: max requests a single session may have in flight
  /// (queued + executing). Submissions beyond it are shed with kOverloaded.
  std::size_t server_inflight_per_tenant = 64;
  /// Admission control: global budget, in *request bytes*, across all of a
  /// rank's sessions. A zero-cost denial-of-service guard: one chatty tenant
  /// cannot queue unbounded work even below its own in-flight cap.
  std::size_t server_admission_bytes = 256 * 1024;
  /// Up to this many consecutive read requests (in dispatch order) share one
  /// kRead transaction and one BatchScope::execute. 1 = no coalescing (each
  /// request runs as its own transaction -- the per-client eager baseline).
  std::size_t server_read_coalesce = 32;
  /// Deficit round-robin quantum in bytes: how much request volume each
  /// backlogged session may dispatch per scheduler round. Smaller = finer
  /// interleaving; the fairness bound is one max-size request per round.
  std::size_t server_drr_quantum_bytes = 256;
  /// Bounded retries for a scheduled write that aborts with kTxnConflict
  /// before the scheduler reports the failure to the client.
  std::size_t server_write_retries = 3;
  /// Socket front end (src/net/): one poll-based Listener per rank speaking
  /// the CRC-framed wire protocol into this rank's TenantScheduler. Requires
  /// cfg.server. Off by default: with it off, no listener object exists, no
  /// socket is opened, and every byte of traffic is identical to a
  /// server-only build.
  bool net_listen = false;
  std::uint16_t net_port = 0;       ///< 0 = ephemeral (Listener::port() tells)
  std::uint64_t net_auth_token = 0; ///< Hello must present exactly this token
  std::size_t net_max_connections = 64;
  std::size_t net_max_tenants = 256;
  /// Per-connection request window (credit-based flow control): max
  /// unanswered requests on one connection. A slow reader stalls only itself.
  std::uint32_t net_credits = 32;
  std::uint32_t net_max_frame_bytes = 512;  ///< frame payload bound
  double net_handshake_timeout_ms = 2000.0; ///< accept -> valid Hello deadline
  double net_idle_timeout_ms = 0.0;         ///< 0 = never drop an idle conn
  double net_drain_timeout_ms = 2000.0;     ///< graceful-shutdown bound
  double net_retry_after_ns = 200000.0;     ///< hint on kOverloaded sheds
};

class Transaction;
enum class TxnMode : std::uint8_t;

class Database {
 public:
  /// Collective: every rank calls; all receive the same database. The
  /// returned pointer carries a per-rank teardown lease: when a rank releases
  /// its last copy (on its own thread), that rank's open commit-pipeline
  /// epoch is drained and its WAL tail sealed -- destroying a database never
  /// loses deferred work, whether or not the workload drained it.
  [[nodiscard]] static std::shared_ptr<Database> create(rma::Rank& self,
                                                        const DatabaseConfig& cfg);

  /// Collective: rebuild a WAL-enabled database from cfg.wal_dir -- fresh
  /// construction, checkpoint restore (if one exists), then per-rank log
  /// replay up to the first torn frame. Returns nullptr on every rank if any
  /// rank's recovery failed (corrupt checkpoint section or a replay
  /// divergence). Resume point: wal_recovered_commits().
  [[nodiscard]] static std::shared_ptr<Database> recover(rma::Rank& self,
                                                         const DatabaseConfig& cfg);

  Database(int nranks, const DatabaseConfig& cfg);
  ~Database();  // out of line: TenantScheduler is incomplete here

  [[nodiscard]] const DatabaseConfig& config() const { return cfg_; }
  [[nodiscard]] block::BlockStore& blocks() { return blocks_; }
  [[nodiscard]] dht::DistributedHashTable& id_index() { return dht_; }
  [[nodiscard]] int nranks() const { return nranks_; }

  /// This rank's shared holder cache, or nullptr when the feature is off.
  /// Per-rank because the target deployment gives each rank private process
  /// memory; a rank only ever touches its own instance (no locking needed).
  [[nodiscard]] cache::SharedBlockCache* shared_cache(rma::Rank& self) {
    if (scaches_.empty()) return nullptr;
    return scaches_[static_cast<std::size_t>(self.id())].get();
  }

  /// This rank's group-commit pipeline, or nullptr when the feature is off
  /// (same per-rank ownership discipline as the shared cache).
  [[nodiscard]] CommitPipeline* commit_pipeline(rma::Rank& self) {
    if (pipelines_.empty()) return nullptr;
    return pipelines_[static_cast<std::size_t>(self.id())].get();
  }

  /// This rank's WAL writer, or nullptr when cfg_.wal is off (same per-rank
  /// ownership discipline as the shared cache and the pipeline).
  [[nodiscard]] wal::WalWriter* wal(rma::Rank& self) {
    if (wals_.empty()) return nullptr;
    return wals_[static_cast<std::size_t>(self.id())].get();
  }

  /// This rank's multi-tenant scheduler, or nullptr when cfg_.server is off.
  /// Session submit() is thread-safe (clients live on their own threads);
  /// everything else -- pump/run/shutdown -- is the rank thread's alone.
  [[nodiscard]] server::TenantScheduler* scheduler(rma::Rank& self);

  /// This rank's socket listener, or nullptr when cfg_.net_listen is off.
  /// request_stop() is thread-safe; everything else (start/serve/poll_once)
  /// belongs to the rank thread, like the scheduler it feeds.
  [[nodiscard]] net::Listener* listener(rma::Rank& self);

  /// Seal this rank's open WAL epoch (one group fsync), honouring any armed
  /// kill point. Pipeline-off and pipeline-ineligible commits call this after
  /// their eager flush; pipeline epochs reach it through the close hook.
  /// Also drives the auto-checkpoint cadence (cfg_.wal_checkpoint_epochs).
  void wal_epoch_close(rma::Rank& self);

  /// Fold a WAL-appended tenant acknowledgement into this rank's listener
  /// replay state. Called from commit_local right after the append and
  /// *before* the seal: any checkpoint (always cut at a seal point) then
  /// carries every ack its image covers -- folding only at reply harvest
  /// left a window where a checkpoint between commit and harvest dropped the
  /// ack from both the trailer and the truncated tail, so a reconnecting
  /// client could re-execute a committed write. No-op without a listener.
  void net_ack_durable(rma::Rank& self, std::uint64_t tenant,
                       std::uint64_t tag, Status st, std::int64_t v0,
                       std::int64_t v1);

  /// Collective checkpoint: every rank seals its open pipeline epoch + WAL
  /// tail, rank 0 writes one atomic global snapshot of all ranks' state, then
  /// every rank truncates its log segments behind the snapshot. Returns
  /// kStale (on every rank) if the checkpoint file could not be written.
  Status checkpoint(rma::Rank& self);

  /// Drain one rank's deferred commit state: close its open pipeline epoch
  /// and seal its WAL tail, with kill points disarmed (this runs from the
  /// teardown lease's destructor). Idempotent; no-op on a killed rank -- a
  /// simulated crash must not persist the tail it was supposed to lose.
  void drain(rma::Rank& self);

  /// Number of commits rank `self` had durably logged at recovery time (0 on
  /// a freshly created database). Workloads resume their stream from here.
  [[nodiscard]] std::uint64_t wal_recovered_commits(rma::Rank& self) const {
    if (recovered_commits_.empty()) return 0;
    return recovered_commits_[static_cast<std::size_t>(self.id())];
  }

  /// Deterministic byte fingerprint of one rank's durable state (block-store
  /// regions, DHT shards, metadata replica) -- the checkpoint section format.
  /// Tests compare a recovered database against a fault-free oracle with it.
  /// Quiescent state only (call inside a barrier or after teardown drain).
  [[nodiscard]] std::vector<std::byte> serialize_rank(int r);

  /// 1D vertex distribution (paper Section 5.4).
  [[nodiscard]] std::uint32_t owner_rank(std::uint64_t app_id) const {
    const std::uint64_t key = cfg_.partitioning == Partitioning::kHashed
                                  ? splitmix64(app_id)
                                  : app_id;
    return static_cast<std::uint32_t>(key % static_cast<std::uint64_t>(nranks_));
  }

  // --- metadata (creates/deletes are collective, lookups local) -------------
  Result<std::uint32_t> create_label(rma::Rank& self, const std::string& name);
  Status delete_label(rma::Rank& self, std::uint32_t id);
  [[nodiscard]] Result<std::uint32_t> label_from_name(rma::Rank& self,
                                                      const std::string& name) const;
  [[nodiscard]] Result<std::string> label_name(rma::Rank& self, std::uint32_t id) const;
  [[nodiscard]] std::vector<Label> all_labels(rma::Rank& self) const;

  Result<std::uint32_t> create_ptype(rma::Rank& self, const PropertyType& def);
  Status delete_ptype(rma::Rank& self, std::uint32_t id);
  [[nodiscard]] Result<std::uint32_t> ptype_from_name(rma::Rank& self,
                                                      const std::string& name) const;
  [[nodiscard]] const PropertyType* ptype(rma::Rank& self, std::uint32_t id) const;
  [[nodiscard]] std::vector<PropertyType> all_ptypes(rma::Rank& self) const;

  // --- explicit indexes (creation collective) --------------------------------
  [[nodiscard]] std::shared_ptr<Index> create_index(rma::Rank& self, IndexDef def);
  [[nodiscard]] const std::vector<std::shared_ptr<Index>>& indexes() const {
    return indexes_;
  }

 private:
  friend class Transaction;
  friend class BulkLoader;

  /// Wrap the collectively created database in this rank's teardown lease
  /// (an aliasing shared_ptr whose deleter drains this rank on this thread).
  static std::shared_ptr<Database> attach_lease(rma::Rank& self,
                                                std::shared_ptr<Database> db);
  /// Restore this rank's checkpoint section + replay its log tail. Returns
  /// false on corruption or replay divergence (collectively fatal).
  bool recover_rank(rma::Rank& self);
  /// Re-execute one logged commit. Returns false on divergence (an acquire
  /// that lands on a different block than the log recorded).
  bool replay_commit(rma::Rank& self, const wal::CommitView& c);
  /// Cadence-triggered checkpoint from the sealing rank's thread (snapshots
  /// every rank's regions; single-driver streams only -- see DatabaseConfig).
  void checkpoint_local(rma::Rank& self);
  bool restore_rank_sections(rma::Rank& self, int r, std::span<const std::byte> in);
  /// Attach every listener's replay state to a checkpoint's net trailer
  /// (no-op without listeners, keeping net-off checkpoints byte-identical).
  void collect_net_sections(wal::Checkpoint& ck);

  DatabaseConfig cfg_;
  int nranks_;
  block::BlockStore blocks_;
  dht::DistributedHashTable dht_;
  std::vector<MetadataReplica> metadata_;  ///< one replica per rank (paper 5.8)
  /// One shared holder cache per rank (empty when cfg_.shared_cache is off).
  std::vector<std::unique_ptr<cache::SharedBlockCache>> scaches_;
  /// One group-commit pipeline per rank (empty when cfg_.commit_pipeline off).
  std::vector<std::unique_ptr<CommitPipeline>> pipelines_;
  /// One WAL writer per rank (empty when cfg_.wal is off).
  std::vector<std::unique_ptr<wal::WalWriter>> wals_;
  /// One multi-tenant scheduler per rank (empty when cfg_.server is off).
  std::vector<std::unique_ptr<server::TenantScheduler>> schedulers_;
  /// One socket listener per rank (empty when cfg_.net_listen is off).
  std::vector<std::unique_ptr<net::Listener>> listeners_;
  /// Per-rank commit high-water mark observed at recovery (0 when fresh).
  std::vector<std::uint64_t> recovered_commits_;
  /// Per-rank "inside teardown drain" flags: the pipeline close hook must
  /// not fire kill points while the lease destructor drains (a throw from a
  /// destructor would terminate).
  std::vector<std::uint8_t> draining_;
  std::vector<std::shared_ptr<Index>> indexes_;
  std::uint32_t next_index_id_ = 0;
};

}  // namespace gdi
