// Umbrella header for the GDI public API.
//
// GDI (Graph Database Interface) is the storage/transaction-layer interface
// of a graph database (paper Section 3); this implementation, GDI-RMA, runs
// on the in-process RMA runtime (see DESIGN.md). Typical usage:
//
//   gdi::rma::Runtime rt(8, gdi::rma::NetParams::xc50());
//   rt.run([](gdi::rma::Rank& self) {
//     auto db = gdi::Database::create(self, {});
//     auto person = db->create_label(self, "Person");          // collective
//     gdi::Transaction txn(db, self, gdi::TxnMode::kWrite);    // local
//     auto v = txn.create_vertex(/*app_id=*/42);
//     ...
//     txn.commit();
//   });
#pragma once

#include "common/dptr.hpp"
#include "common/status.hpp"
#include "common/value.hpp"
#include "gdi/async.hpp"
#include "gdi/bulk.hpp"
#include "gdi/constraint.hpp"
#include "gdi/database.hpp"
#include "gdi/index.hpp"
#include "gdi/metadata.hpp"
#include "gdi/transaction.hpp"
#include "rma/runtime.hpp"
#include "rma/window.hpp"
