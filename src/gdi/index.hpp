// Explicit indexes (paper Sections 3.6, 5.7).
//
// An Index accelerates "all vertices with label(s) X" lookups. Each index
// owns a sharded RMA window: per rank, an atomic entry counter followed by an
// append-only array of vertex DPtrs. A committing transaction appends a
// vertex to the shard of the vertex's *owner* rank with one FAA (slot
// reservation) + one PUT + flush -- fully one-sided, matching the paper's
// offloaded design.
//
// Indexes are *eventually consistent* (paper Section 3.8): deleted or
// re-labeled vertices leave stale entries, which queries filter out by
// validating each candidate holder before returning it (and deduplicate).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/dptr.hpp"
#include "rma/window.hpp"

namespace gdi {

/// Membership condition: a vertex belongs iff it carries *all* the labels and
/// at least one entry of each listed property type.
struct IndexDef {
  std::vector<std::uint32_t> labels;
  std::vector<std::uint32_t> ptypes;
};

class Index {
 public:
  Index(int nranks, IndexDef def, std::size_t capacity_per_rank, std::uint32_t id)
      : def_(std::move(def)),
        id_(id),
        capacity_(capacity_per_rank),
        win_(nranks, 8 + capacity_per_rank * 8) {}

  [[nodiscard]] const IndexDef& def() const { return def_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }

  /// Does a decoded holder currently satisfy the index condition?
  template <class View>
  [[nodiscard]] bool matches(const View& v) const {
    for (auto l : def_.labels)
      if (!v.has_label(l)) return false;
    for (auto p : def_.ptypes) {
      bool any = false;
      v.for_each_entry([&](std::uint32_t id, auto) {
        if (id == p) any = true;
      });
      if (!any) return false;
    }
    return true;
  }

  /// Append a vertex to `shard_rank`'s entry list. Returns false if full.
  [[nodiscard]] bool append(rma::Rank& self, std::uint32_t shard_rank, DPtr vertex) {
    const std::uint64_t slot = win_.faa_u64(self, shard_rank, 0, 1);
    if (slot >= capacity_) {
      (void)win_.faa_u64(self, shard_rank, 0, -1);
      return false;
    }
    win_.atomic_put_u64(self, shard_rank, 8 + slot * 8, vertex.raw());
    win_.flush(self, shard_rank);
    return true;
  }

  /// Raw candidate DPtrs in `shard_rank`'s shard (callers validate + dedup).
  [[nodiscard]] std::vector<DPtr> candidates(rma::Rank& self, std::uint32_t shard_rank) {
    const std::uint64_t n =
        std::min<std::uint64_t>(win_.atomic_get_u64(self, shard_rank, 0), capacity_);
    std::vector<DPtr> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t raw = win_.atomic_get_u64(self, shard_rank, 8 + i * 8);
      if (raw != 0) out.emplace_back(raw);
    }
    return out;
  }

  [[nodiscard]] std::uint64_t shard_size(rma::Rank& self, std::uint32_t shard_rank) {
    return win_.atomic_get_u64(self, shard_rank, 0);
  }

 private:
  IndexDef def_;
  std::uint32_t id_;
  std::uint64_t capacity_;
  rma::Window win_;
};

}  // namespace gdi
