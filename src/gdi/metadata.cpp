#include "gdi/metadata.hpp"

#include "layout/holder.hpp"

namespace gdi {

MetadataReplica::MetadataReplica() : next_ptype_id_(layout::kFirstUserPtype) {}

Result<std::uint32_t> MetadataReplica::create_label(const std::string& name) {
  if (label_by_name_.contains(name)) return Status::kAlreadyExists;
  const std::uint32_t id = next_label_id_++;
  label_by_name_.emplace(name, id);
  labels_.push_back(Label{name, id, false});
  return id;
}

Status MetadataReplica::delete_label(std::uint32_t id) {
  for (auto& l : labels_) {
    if (l.id == id && !l.deleted) {
      l.deleted = true;
      label_by_name_.erase(l.name);
      return Status::kOk;
    }
  }
  return Status::kNotFound;
}

std::optional<std::uint32_t> MetadataReplica::label_from_name(const std::string& name) const {
  auto it = label_by_name_.find(name);
  if (it == label_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> MetadataReplica::label_name(std::uint32_t id) const {
  for (const auto& l : labels_)
    if (l.id == id && !l.deleted) return l.name;
  return std::nullopt;
}

std::vector<Label> MetadataReplica::all_labels() const {
  std::vector<Label> out;
  for (const auto& l : labels_)
    if (!l.deleted) out.push_back(l);
  return out;
}

Result<std::uint32_t> MetadataReplica::create_ptype(const PropertyType& def) {
  if (ptype_by_name_.contains(def.name)) return Status::kAlreadyExists;
  PropertyType p = def;
  p.id = next_ptype_id_++;
  ptype_by_name_.emplace(p.name, p.id);
  ptypes_.emplace(p.id, p);
  return p.id;
}

Status MetadataReplica::delete_ptype(std::uint32_t id) {
  auto it = ptypes_.find(id);
  if (it == ptypes_.end() || it->second.deleted) return Status::kNotFound;
  it->second.deleted = true;
  ptype_by_name_.erase(it->second.name);
  return Status::kOk;
}

std::optional<std::uint32_t> MetadataReplica::ptype_from_name(const std::string& name) const {
  auto it = ptype_by_name_.find(name);
  if (it == ptype_by_name_.end()) return std::nullopt;
  return it->second;
}

const PropertyType* MetadataReplica::ptype(std::uint32_t id) const {
  auto it = ptypes_.find(id);
  if (it == ptypes_.end() || it->second.deleted) return nullptr;
  return &it->second;
}

std::vector<PropertyType> MetadataReplica::all_ptypes() const {
  std::vector<PropertyType> out;
  for (const auto& [id, p] : ptypes_)
    if (!p.deleted) out.push_back(p);
  return out;
}

}  // namespace gdi
