#include "gdi/metadata.hpp"

#include <algorithm>
#include <cstring>

#include "layout/holder.hpp"

namespace gdi {

MetadataReplica::MetadataReplica() : next_ptype_id_(layout::kFirstUserPtype) {}

Result<std::uint32_t> MetadataReplica::create_label(const std::string& name) {
  if (label_by_name_.contains(name)) return Status::kAlreadyExists;
  const std::uint32_t id = next_label_id_++;
  label_by_name_.emplace(name, id);
  labels_.push_back(Label{name, id, false});
  return id;
}

Status MetadataReplica::delete_label(std::uint32_t id) {
  for (auto& l : labels_) {
    if (l.id == id && !l.deleted) {
      l.deleted = true;
      label_by_name_.erase(l.name);
      return Status::kOk;
    }
  }
  return Status::kNotFound;
}

std::optional<std::uint32_t> MetadataReplica::label_from_name(const std::string& name) const {
  auto it = label_by_name_.find(name);
  if (it == label_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> MetadataReplica::label_name(std::uint32_t id) const {
  for (const auto& l : labels_)
    if (l.id == id && !l.deleted) return l.name;
  return std::nullopt;
}

std::vector<Label> MetadataReplica::all_labels() const {
  std::vector<Label> out;
  for (const auto& l : labels_)
    if (!l.deleted) out.push_back(l);
  return out;
}

Result<std::uint32_t> MetadataReplica::create_ptype(const PropertyType& def) {
  if (ptype_by_name_.contains(def.name)) return Status::kAlreadyExists;
  PropertyType p = def;
  p.id = next_ptype_id_++;
  ptype_by_name_.emplace(p.name, p.id);
  ptypes_.emplace(p.id, p);
  return p.id;
}

Status MetadataReplica::delete_ptype(std::uint32_t id) {
  auto it = ptypes_.find(id);
  if (it == ptypes_.end() || it->second.deleted) return Status::kNotFound;
  it->second.deleted = true;
  ptype_by_name_.erase(it->second.name);
  return Status::kOk;
}

std::optional<std::uint32_t> MetadataReplica::ptype_from_name(const std::string& name) const {
  auto it = ptype_by_name_.find(name);
  if (it == ptype_by_name_.end()) return std::nullopt;
  return it->second;
}

const PropertyType* MetadataReplica::ptype(std::uint32_t id) const {
  auto it = ptypes_.find(id);
  if (it == ptypes_.end() || it->second.deleted) return nullptr;
  return &it->second;
}

std::vector<PropertyType> MetadataReplica::all_ptypes() const {
  std::vector<PropertyType> out;
  for (const auto& [id, p] : ptypes_)
    if (!p.deleted) out.push_back(p);
  return out;
}

// ---------------------------------------------------------------------------
// Checkpoint / recovery support
// ---------------------------------------------------------------------------

namespace {
void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + 4);
}
void put_str(std::vector<std::byte>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
}
bool take_u32(std::span<const std::byte>& in, std::uint32_t& v) {
  if (in.size() < 4) return false;
  std::memcpy(&v, in.data(), 4);
  in = in.subspan(4);
  return true;
}
bool take_str(std::span<const std::byte>& in, std::string& s) {
  std::uint32_t n;
  if (!take_u32(in, n) || in.size() < n) return false;
  s.assign(reinterpret_cast<const char*>(in.data()), n);
  in = in.subspan(n);
  return true;
}
}  // namespace

void MetadataReplica::serialize(std::vector<std::byte>& out) const {
  put_u32(out, next_label_id_);
  put_u32(out, static_cast<std::uint32_t>(labels_.size()));
  for (const auto& l : labels_) {
    put_str(out, l.name);
    put_u32(out, l.id);
    put_u32(out, l.deleted ? 1 : 0);
  }
  put_u32(out, next_ptype_id_);
  // Sorted by id so every replica serializes identically regardless of map
  // iteration order.
  std::vector<PropertyType> all;
  for (const auto& [id, p] : ptypes_) all.push_back(p);
  std::sort(all.begin(), all.end(),
            [](const PropertyType& a, const PropertyType& b) { return a.id < b.id; });
  put_u32(out, static_cast<std::uint32_t>(all.size()));
  for (const auto& p : all) {
    put_str(out, p.name);
    put_u32(out, p.id);
    put_u32(out, static_cast<std::uint32_t>(p.dtype));
    put_u32(out, static_cast<std::uint32_t>(p.etype));
    put_u32(out, static_cast<std::uint32_t>(p.mult));
    put_u32(out, static_cast<std::uint32_t>(p.stype));
    put_u32(out, p.max_size);
    put_u32(out, p.deleted ? 1 : 0);
  }
}

bool MetadataReplica::restore(std::span<const std::byte> in) {
  MetadataReplica fresh;
  std::uint32_t nlabels;
  if (!take_u32(in, fresh.next_label_id_) || !take_u32(in, nlabels)) return false;
  for (std::uint32_t i = 0; i < nlabels; ++i) {
    Label l;
    std::uint32_t deleted;
    if (!take_str(in, l.name) || !take_u32(in, l.id) || !take_u32(in, deleted))
      return false;
    l.deleted = deleted != 0;
    if (!l.deleted) fresh.label_by_name_.emplace(l.name, l.id);
    fresh.labels_.push_back(std::move(l));
  }
  std::uint32_t nptypes;
  if (!take_u32(in, fresh.next_ptype_id_) || !take_u32(in, nptypes)) return false;
  for (std::uint32_t i = 0; i < nptypes; ++i) {
    PropertyType p;
    std::uint32_t dtype, etype, mult, stype, deleted;
    if (!take_str(in, p.name) || !take_u32(in, p.id) || !take_u32(in, dtype) ||
        !take_u32(in, etype) || !take_u32(in, mult) || !take_u32(in, stype) ||
        !take_u32(in, p.max_size) || !take_u32(in, deleted))
      return false;
    p.dtype = static_cast<Datatype>(dtype);
    p.etype = static_cast<EntityType>(etype);
    p.mult = static_cast<Multiplicity>(mult);
    p.stype = static_cast<SizeType>(stype);
    p.deleted = deleted != 0;
    if (!p.deleted) fresh.ptype_by_name_.emplace(p.name, p.id);
    fresh.ptypes_.emplace(p.id, p);
  }
  if (!in.empty()) return false;
  *this = std::move(fresh);
  return true;
}

}  // namespace gdi
