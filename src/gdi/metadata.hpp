// Graph metadata: labels and property types (paper Sections 2, 3.2, 5.8).
//
// Metadata (the sets L, K of the LPG model) is replicated on every rank "for
// performance reasons ... both L and P are in practice much smaller than n"
// (paper 5.8, a Major Design Choice). Creation/update/deletion are collective
// routines (Figure 2 marks them [C]); lookups are local. Because creates are
// collective, the replicas evolve in lockstep; GDI only *requires* eventual
// consistency for metadata, and this implementation provides the stronger
// collective-synchronized variant, which the specification explicitly allows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/value.hpp"

namespace gdi {

struct Label {
  std::string name;
  std::uint32_t id = 0;
  bool deleted = false;
};

struct PropertyType {
  std::string name;
  std::uint32_t id = 0;
  Datatype dtype = Datatype::kInt64;
  EntityType etype = EntityType::kVertexAndEdge;
  Multiplicity mult = Multiplicity::kSingle;
  SizeType stype = SizeType::kUnlimited;
  std::uint32_t max_size = 0;  ///< for kFixed / kLimited size types
  bool deleted = false;
};

/// One rank's replica of the metadata registries. All mutation goes through
/// Database's collective routines so replicas stay identical.
class MetadataReplica {
 public:
  MetadataReplica();

  Result<std::uint32_t> create_label(const std::string& name);
  Status delete_label(std::uint32_t id);
  [[nodiscard]] std::optional<std::uint32_t> label_from_name(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> label_name(std::uint32_t id) const;
  [[nodiscard]] std::vector<Label> all_labels() const;

  Result<std::uint32_t> create_ptype(const PropertyType& def);
  Status delete_ptype(std::uint32_t id);
  [[nodiscard]] std::optional<std::uint32_t> ptype_from_name(const std::string& name) const;
  [[nodiscard]] const PropertyType* ptype(std::uint32_t id) const;
  [[nodiscard]] std::vector<PropertyType> all_ptypes() const;

  // --- checkpoint / recovery support (src/wal/) -----------------------------
  //
  // Metadata mutation is collective, so every replica serializes to the same
  // bytes; the WAL checkpoint includes one copy per rank anyway to keep rank
  // sections self-contained.
  void serialize(std::vector<std::byte>& out) const;
  [[nodiscard]] bool restore(std::span<const std::byte> in);

 private:
  // Labels get small dense ids starting at 1 (0 = "no label" in edge records).
  std::unordered_map<std::string, std::uint32_t> label_by_name_;
  std::vector<Label> labels_;
  std::uint32_t next_label_id_ = 1;

  // Property types start at layout::kFirstUserPtype; smaller ids are reserved
  // entry markers (paper Section 5.4.3).
  std::unordered_map<std::string, std::uint32_t> ptype_by_name_;
  std::unordered_map<std::uint32_t, PropertyType> ptypes_;
  std::uint32_t next_ptype_id_;
};

}  // namespace gdi
