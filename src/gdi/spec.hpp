// GDI specification bindings: the paper's routine names, callable almost
// verbatim (paper Listings 1-3 and the Figure 2 routine groups).
//
// GDI is specified as a C-style API ("GDI_StartTransaction(&trans_obj)",
// "GDI_AssociateVertex(vID, trans_obj, &vH)"...). This header provides that
// surface as thin inline wrappers over the C++ core so that code written
// against the specification -- including the paper's own listings -- ports
// with only mechanical changes. Every wrapper returns a gdi::Status ("GDI
// error class") and writes results through out-parameters, exactly like the
// specification's signatures.
//
// Out-parameter convention: results are written only on Status::kOk.
#pragma once

#include "gdi/gdi.hpp"

namespace gdi::spec {

// Spec-style type aliases (opaque objects of the specification).
using GDI_Database = std::shared_ptr<Database>;
using GDI_Transaction = std::unique_ptr<Transaction>;
using GDI_VertexHolder = VertexHandle;  ///< "vH" in the listings
using GDI_EdgeHolder = EdgeHandle;      ///< heavy-edge access object
using GDI_VertexUid = DPtr;             ///< "vID": internal vertex ID
using GDI_EdgeUid = EdgeUid;            ///< "eID": lightweight edge UID
using GDI_Label = std::uint32_t;
using GDI_PropertyType = std::uint32_t;
using GDI_Index = std::shared_ptr<Index>;
using GDI_Constraint = Constraint;

// Edge direction constants (paper: GDI_EDGE_*).
inline constexpr DirFilter GDI_EDGE_OUTGOING = DirFilter::kOutgoing;
inline constexpr DirFilter GDI_EDGE_INCOMING = DirFilter::kIncoming;
inline constexpr DirFilter GDI_EDGE_UNDIRECTED = DirFilter::kUndirected;
inline constexpr DirFilter GDI_EDGE_ALL = DirFilter::kAll;

// --- general management ([C]) -----------------------------------------------

inline Status GDI_CreateDatabase(rma::Rank& rank, const DatabaseConfig& cfg,
                                 GDI_Database* db_out) {
  *db_out = Database::create(rank, cfg);
  return Status::kOk;
}

// --- graph metadata ----------------------------------------------------------

inline Status GDI_CreateLabel(GDI_Label* label_out, const char* name,
                              rma::Rank& rank, const GDI_Database& db) {
  auto r = db->create_label(rank, name);
  if (!r.ok()) return r.status();
  *label_out = *r;
  return Status::kOk;
}

inline Status GDI_GetLabelFromName(GDI_Label* label_out, const char* name,
                                   rma::Rank& rank, const GDI_Database& db) {
  auto r = db->label_from_name(rank, name);
  if (!r.ok()) return r.status();
  *label_out = *r;
  return Status::kOk;
}

inline Status GDI_GetNameOfLabel(std::string* name_out, GDI_Label label,
                                 rma::Rank& rank, const GDI_Database& db) {
  auto r = db->label_name(rank, label);
  if (!r.ok()) return r.status();
  *name_out = *r;
  return Status::kOk;
}

inline Status GDI_GetAllLabelsOfDatabase(std::vector<Label>* out, rma::Rank& rank,
                                         const GDI_Database& db) {
  *out = db->all_labels(rank);
  return Status::kOk;
}

inline Status GDI_CreatePropertyType(GDI_PropertyType* pt_out,
                                     const PropertyType& def, rma::Rank& rank,
                                     const GDI_Database& db) {
  auto r = db->create_ptype(rank, def);
  if (!r.ok()) return r.status();
  *pt_out = *r;
  return Status::kOk;
}

inline Status GDI_GetPropertyTypeFromName(GDI_PropertyType* pt_out, const char* name,
                                          rma::Rank& rank, const GDI_Database& db) {
  auto r = db->ptype_from_name(rank, name);
  if (!r.ok()) return r.status();
  *pt_out = *r;
  return Status::kOk;
}

// --- transactions --------------------------------------------------------------

inline Status GDI_StartTransaction(GDI_Transaction* txn_out, const GDI_Database& db,
                                   rma::Rank& rank, TxnMode mode = TxnMode::kWrite) {
  *txn_out = std::make_unique<Transaction>(db, rank, mode, TxnScope::kLocal);
  return Status::kOk;
}

inline Status GDI_StartCollectiveTransaction(GDI_Transaction* txn_out,
                                             const GDI_Database& db, rma::Rank& rank,
                                             TxnMode mode = TxnMode::kReadShared) {
  *txn_out = std::make_unique<Transaction>(db, rank, mode, TxnScope::kCollective);
  return Status::kOk;
}

/// GDI_CloseTransaction commits; GDI_AbortTransaction (below) discards.
inline Status GDI_CloseTransaction(GDI_Transaction* txn) {
  const Status s = (*txn)->commit();
  txn->reset();
  return s;
}

inline Status GDI_CloseCollectiveTransaction(GDI_Transaction* txn) {
  return GDI_CloseTransaction(txn);
}

inline Status GDI_AbortTransaction(GDI_Transaction* txn) {
  (*txn)->abort();
  txn->reset();
  return Status::kOk;
}

inline Status GDI_GetTypeOfTransaction(TxnScope* scope_out, TxnMode* mode_out,
                                       const GDI_Transaction& txn) {
  *scope_out = txn->scope();
  *mode_out = txn->mode();
  return Status::kOk;
}

// --- nonblocking operations (async-first surface, gdi/async.hpp) -------------
//
// Spec-style access to the batch engine: start a batch object, enqueue GDI_*Nb
// operations (each returns a typed future through an out-parameter), then
// complete all of them with one GDI_Execute, which overlaps the DHT lookups,
// lock CAS rounds, and block fetches of the whole batch. Futures report their
// per-operation outcome via Future::status() after GDI_Execute returns.

using GDI_Batch = BatchScope;
template <class T>
using GDI_Future = Future<T>;

inline Status GDI_StartBatch(GDI_Batch* batch_out, const GDI_Transaction& txn) {
  *batch_out = txn->batch();
  return Status::kOk;
}

inline Status GDI_TranslateVertexIDNb(GDI_Future<GDI_VertexUid>* f_out,
                                      std::uint64_t vID_app, GDI_Batch& batch) {
  *f_out = batch.translate(vID_app);
  return Status::kOk;
}

inline Status GDI_AssociateVertexNb(GDI_VertexUid vID, GDI_Batch& batch,
                                    GDI_Future<GDI_VertexHolder>* f_out) {
  *f_out = batch.associate(vID);
  return Status::kOk;
}

/// translate + associate + stale-DHT validation in one future.
inline Status GDI_FindVertexNb(GDI_Future<GDI_VertexHolder>* f_out,
                               std::uint64_t vID_app, GDI_Batch& batch) {
  *f_out = batch.find(vID_app);
  return Status::kOk;
}

/// create_vertex whose DHT existence check rides the batch's multi-lookup;
/// the created vertices publish at commit through one DHT insert_many.
inline Status GDI_CreateVertexNb(GDI_Future<GDI_VertexHolder>* f_out,
                                 std::uint64_t vID_app, GDI_Batch& batch) {
  *f_out = batch.create(vID_app);
  return Status::kOk;
}

inline Status GDI_GetEdgesOfVertexNb(GDI_Future<std::vector<EdgeDesc>>* f_out,
                                     DirFilter filter, GDI_VertexHolder vH,
                                     GDI_Batch& batch,
                                     const GDI_Constraint* cnstr = nullptr) {
  *f_out = batch.edges_of(vH, filter, cnstr);
  return Status::kOk;
}

inline Status GDI_GetPropertiesOfVertexNb(GDI_Future<std::vector<PropValue>>* f_out,
                                          GDI_PropertyType pt, GDI_VertexHolder vH,
                                          GDI_Batch& batch) {
  *f_out = batch.get_properties(vH, pt);
  return Status::kOk;
}

inline Status GDI_UpdatePropertyOfVertexNb(GDI_Future<std::monostate>* f_out,
                                           const PropValue& value, GDI_PropertyType pt,
                                           GDI_VertexHolder vH, GDI_Batch& batch) {
  *f_out = batch.set_property(vH, pt, value);
  return Status::kOk;
}

/// Heavy-edge ops: all edge holders of one batch (these plus the heavy edges
/// behind constraint-filtered GDI_GetEdgesOfVertexNb) resolve through one
/// overlapped lock round and one block round (fetch_edges_batch).
inline Status GDI_AssociateEdgeNb(GDI_Future<GDI_EdgeHolder>* f_out, DPtr eID,
                                  GDI_Batch& batch) {
  *f_out = batch.associate_edge(eID);
  return Status::kOk;
}

inline Status GDI_GetPropertiesOfEdgeNb(GDI_Future<std::vector<PropValue>>* f_out,
                                        GDI_PropertyType pt, GDI_EdgeHolder eH,
                                        GDI_Batch& batch) {
  *f_out = batch.get_edge_properties(eH, pt);
  return Status::kOk;
}

/// Completion point: resolves every future enqueued on the batch. Returns kOk
/// (per-operation soft failures are reported only on their futures) or the
/// transaction-critical error that doomed the transaction.
inline Status GDI_Execute(GDI_Batch& batch) { return batch.execute(); }

// --- graph data: vertices --------------------------------------------------------

inline Status GDI_CreateVertex(GDI_VertexHolder* vH_out, std::uint64_t app_id,
                               const GDI_Transaction& txn) {
  auto r = txn->create_vertex(app_id);
  if (!r.ok()) return r.status();
  *vH_out = *r;
  return Status::kOk;
}

inline Status GDI_TranslateVertexID(GDI_VertexUid* vID_out, std::uint64_t vID_app,
                                    const GDI_Transaction& txn) {
  auto r = txn->translate_vertex_id(vID_app);
  if (!r.ok()) return r.status();
  *vID_out = *r;
  return Status::kOk;
}

inline Status GDI_AssociateVertex(GDI_VertexUid vID, const GDI_Transaction& txn,
                                  GDI_VertexHolder* vH_out) {
  auto r = txn->associate_vertex(vID);
  if (!r.ok()) return r.status();
  *vH_out = *r;
  return Status::kOk;
}

inline Status GDI_FreeVertex(GDI_VertexHolder vH, const GDI_Transaction& txn) {
  return txn->delete_vertex(vH);
}

inline Status GDI_AddLabelToVertex(GDI_Label label, GDI_VertexHolder vH,
                                   const GDI_Transaction& txn) {
  return txn->add_label(vH, label);
}

inline Status GDI_RemoveLabelFromVertex(GDI_Label label, GDI_VertexHolder vH,
                                        const GDI_Transaction& txn) {
  return txn->remove_label(vH, label);
}

inline Status GDI_GetAllLabelsOfVertex(std::vector<GDI_Label>* labels_out,
                                       GDI_VertexHolder vH,
                                       const GDI_Transaction& txn) {
  auto r = txn->labels_of(vH);
  if (!r.ok()) return r.status();
  *labels_out = *r;
  return Status::kOk;
}

inline Status GDI_AddPropertyToVertex(const PropValue& value, GDI_PropertyType pt,
                                      GDI_VertexHolder vH, const GDI_Transaction& txn) {
  return txn->add_property(vH, pt, value);
}

inline Status GDI_UpdatePropertyOfVertex(const PropValue& value, GDI_PropertyType pt,
                                         GDI_VertexHolder vH,
                                         const GDI_Transaction& txn) {
  return txn->update_property(vH, pt, value);
}

inline Status GDI_GetPropertiesOfVertex(std::vector<PropValue>* values_out,
                                        GDI_PropertyType pt, GDI_VertexHolder vH,
                                        const GDI_Transaction& txn) {
  auto r = txn->get_properties(vH, pt);
  if (!r.ok()) return r.status();
  *values_out = *r;
  return Status::kOk;
}

inline Status GDI_RemovePropertiesFromVertex(GDI_PropertyType pt, GDI_VertexHolder vH,
                                             const GDI_Transaction& txn) {
  return txn->remove_properties(vH, pt);
}

inline Status GDI_GetAllPropertyTypesOfVertex(std::vector<GDI_PropertyType>* out,
                                              GDI_VertexHolder vH,
                                              const GDI_Transaction& txn) {
  auto r = txn->ptypes_of(vH);
  if (!r.ok()) return r.status();
  *out = *r;
  return Status::kOk;
}

// --- graph data: edges ------------------------------------------------------------

inline Status GDI_CreateEdge(GDI_EdgeUid* eID_out, layout::Dir dir,
                             GDI_VertexHolder origin, GDI_VertexHolder target,
                             const GDI_Transaction& txn, GDI_Label label = 0) {
  auto r = txn->create_edge(origin, target, dir, label);
  if (!r.ok()) return r.status();
  *eID_out = *r;
  return Status::kOk;
}

inline Status GDI_FreeEdge(GDI_VertexHolder base, const GDI_EdgeUid& eID,
                           const GDI_Transaction& txn) {
  return txn->delete_edge(base, eID);
}

inline Status GDI_GetEdgesOfVertex(std::vector<EdgeDesc>* edges_out, DirFilter filter,
                                   GDI_VertexHolder vH, const GDI_Transaction& txn,
                                   const GDI_Constraint* cnstr = nullptr) {
  auto r = txn->edges_of(vH, filter, cnstr);
  if (!r.ok()) return r.status();
  *edges_out = *r;
  return Status::kOk;
}

inline Status GDI_GetNeighborVerticesOfVertex(std::vector<GDI_VertexUid>* nIDs_out,
                                              DirFilter filter, GDI_VertexHolder vH,
                                              const GDI_Transaction& txn,
                                              const GDI_Constraint* cnstr = nullptr) {
  auto r = txn->neighbors_of(vH, filter, cnstr);
  if (!r.ok()) return r.status();
  *nIDs_out = *r;
  return Status::kOk;
}

/// "Get vertices adjacent to an edge": both endpoints of a heavy edge.
inline Status GDI_GetVerticesOfEdge(GDI_VertexUid* origin_out,
                                    GDI_VertexUid* target_out, GDI_EdgeHolder eH,
                                    const GDI_Transaction& txn) {
  auto r = txn->edge_endpoints(eH);
  if (!r.ok()) return r.status();
  *origin_out = r->first;
  *target_out = r->second;
  return Status::kOk;
}

inline Status GDI_AssociateEdge(DPtr eID, const GDI_Transaction& txn,
                                GDI_EdgeHolder* eH_out) {
  auto r = txn->associate_edge(eID);
  if (!r.ok()) return r.status();
  *eH_out = *r;
  return Status::kOk;
}

inline Status GDI_GetAllLabelsOfEdge(std::vector<GDI_Label>* labels_out,
                                     GDI_EdgeHolder eH, const GDI_Transaction& txn) {
  auto r = txn->edge_labels_of(eH);
  if (!r.ok()) return r.status();
  *labels_out = *r;
  return Status::kOk;
}

inline Status GDI_AddPropertyToEdge(const PropValue& value, GDI_PropertyType pt,
                                    GDI_EdgeHolder eH, const GDI_Transaction& txn) {
  return txn->add_edge_property(eH, pt, value);
}

inline Status GDI_GetPropertiesOfEdge(std::vector<PropValue>* values_out,
                                      GDI_PropertyType pt, GDI_EdgeHolder eH,
                                      const GDI_Transaction& txn) {
  auto r = txn->get_edge_properties(eH, pt);
  if (!r.ok()) return r.status();
  *values_out = *r;
  return Status::kOk;
}

// --- indexes ------------------------------------------------------------------------

inline Status GDI_CreateIndex(GDI_Index* index_out, const IndexDef& def,
                              rma::Rank& rank, const GDI_Database& db) {
  *index_out = db->create_index(rank, def);
  return Status::kOk;
}

inline Status GDI_GetLocalVerticesOfIndex(std::vector<GDI_VertexUid>* vIDs_out,
                                          const GDI_Index& index,
                                          const GDI_Transaction& txn,
                                          const GDI_Constraint* cnstr = nullptr) {
  auto r = txn->local_index_vertices(*index, cnstr);
  if (!r.ok()) return r.status();
  *vIDs_out = *r;
  return Status::kOk;
}

inline Status GDI_GetAllIndexesOfDatabase(std::vector<GDI_Index>* out,
                                          const GDI_Database& db) {
  *out = db->indexes();
  return Status::kOk;
}

// --- errors --------------------------------------------------------------------------

inline Status GDI_GetErrorName(std::string* name_out, Status code) {
  *name_out = std::string(to_string(code));
  return Status::kOk;
}

inline bool GDI_IsTransactionCritical(Status code) {
  return is_transaction_critical(code);
}

}  // namespace gdi::spec
