#include "gdi/transaction.hpp"

#include <algorithm>
#include <cassert>

#include "gdi/async.hpp"

namespace gdi {

using layout::Dir;
using layout::EdgeRecord;

namespace {

[[nodiscard]] Dir mirror_dir(Dir d) {
  switch (d) {
    case Dir::kOut: return Dir::kIn;
    case Dir::kIn: return Dir::kOut;
    case Dir::kUndirected: return Dir::kUndirected;
  }
  return Dir::kUndirected;
}

[[nodiscard]] std::size_t div_up(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

Transaction::Transaction(std::shared_ptr<Database> db, rma::Rank& self, TxnMode mode,
                         TxnScope scope)
    : db_(std::move(db)), self_(self), mode_(mode), scope_(scope) {
  // Collective transactions are entered by all ranks together (paper 3.3);
  // the entry barrier gives them their well-defined start semantics.
  if (scope_ == TxnScope::kCollective) self_.barrier();
}

Transaction::~Transaction() {
  // Local transactions abort on scope exit if never closed. A collective
  // transaction must be closed explicitly (we cannot barrier in a dtor).
  if (active_ && scope_ == TxnScope::kLocal) abort();
}

Status Transaction::check_writable() const {
  return mode_ == TxnMode::kWrite ? Status::kOk : Status::kTxnReadOnly;
}

std::uint32_t Transaction::max_table_cap() const {
  return static_cast<std::uint32_t>(
      (db_->config().block.block_size - layout::VertexView::kHeaderSize) / 8);
}

// ---------------------------------------------------------------------------
// Block cache & batched reads
// ---------------------------------------------------------------------------

bool Transaction::cache_enabled() const { return db_->config().block_cache; }
bool Transaction::batching_enabled() const { return db_->config().batched_reads; }

void Transaction::scache_invalidate(DPtr primary) {
  if (auto* sc = scache(); sc != nullptr && sc->erase(primary))
    self_.counters().scache_invalidations += 1;
}

void Transaction::scache_fill(DPtr primary, std::span<const std::byte> buf,
                              std::uint64_t word, bool is_edge) {
  if (auto* sc = scache(); sc != nullptr)
    sc->insert(primary, buf, block::BlockStore::version_of(word), is_edge);
}

void Transaction::scache_restamp(DPtr primary, std::span<const std::byte> buf,
                                 std::uint64_t version_bits, bool is_edge) {
  if (auto* sc = scache(); sc != nullptr) {
    sc->insert(primary, buf, version_bits, is_edge);
    self_.counters().scache_restamps += 1;
  }
}

const cache::SharedBlockCache::Entry* Transaction::scache_lookup(
    DPtr primary, std::uint64_t observed_word, bool want_edge) {
  auto* sc = scache();
  if (sc == nullptr) return nullptr;
  const auto* e = sc->find(primary);
  if (e == nullptr) return nullptr;
  auto& c = self_.counters();
  c.scache_validations += 1;
  if (e->is_edge == want_edge && !block::BlockStore::write_locked(observed_word) &&
      e->version == block::BlockStore::version_of(observed_word)) {
    c.scache_hits += 1;
    sc->note_hit(primary);  // second touch: 2Q promotes probation -> resident
    return e;
  }
  // Version moved (a writer committed since the fill) or the block was
  // recycled into the other holder kind: the snapshot is dead.
  (void)sc->erase(primary);
  c.scache_invalidations += 1;
  return nullptr;
}

void Transaction::cache_read_block(DPtr blk, void* dst) {
  auto& blocks = db_->blocks();
  const std::size_t B = blocks.block_size();
  if (!cache_enabled()) {
    blocks.read_block(self_, blk, dst);
    return;
  }
  auto it = blk_cache_.find(blk.raw());
  if (it != blk_cache_.end()) {
    std::memcpy(dst, it->second.data(), B);
    self_.counters().cache_hits += 1;
    return;
  }
  blocks.read_block(self_, blk, dst);
  self_.counters().cache_misses += 1;
  const auto* bytes = static_cast<const std::byte*>(dst);
  blk_cache_.emplace(blk.raw(), std::vector<std::byte>(bytes, bytes + B));
}

void Transaction::read_tail_blocks(std::vector<std::byte>& buf, std::size_t total,
                                   std::uint32_t num_blocks,
                                   const std::function<DPtr(std::uint32_t)>& addr_of) {
  auto& blocks = db_->blocks();
  const std::size_t B = blocks.block_size();
  struct Miss {
    DPtr blk;
    std::size_t lo;  ///< destination offset in buf
    std::size_t n;   ///< bytes belonging to the holder (tail block may be partial)
  };
  std::vector<Miss> misses;
  for (std::uint32_t i = 1; i < num_blocks; ++i) {
    const std::size_t lo = i * B;
    const std::size_t n = std::min(B, total - lo);
    const DPtr blk = addr_of(i);
    if (cache_enabled()) {
      auto it = blk_cache_.find(blk.raw());
      if (it != blk_cache_.end()) {
        std::memcpy(buf.data() + lo, it->second.data(), n);
        self_.counters().cache_hits += 1;
        continue;
      }
    }
    misses.push_back(Miss{blk, lo, n});
  }
  if (misses.empty()) return;
  // Full-block scratch reads: the cache stores whole blocks, and reading the
  // block-sized region is always in-bounds even for a partial tail.
  // A single miss degenerates to the blocking read -- one latency beats one
  // overlapped latency plus a completion fence (the same singleton rule the
  // lock and fetch batches follow).
  std::vector<std::byte> scratch(misses.size() * B);
  if (batching_enabled() && misses.size() > 1) {
    std::vector<block::BlockStore::BlockReadOp> ops;
    ops.reserve(misses.size());
    for (std::size_t j = 0; j < misses.size(); ++j)
      ops.push_back({misses[j].blk, scratch.data() + j * B});
    blocks.read_blocks(self_, ops);
  } else {
    for (std::size_t j = 0; j < misses.size(); ++j)
      blocks.read_block(self_, misses[j].blk, scratch.data() + j * B);
  }
  for (std::size_t j = 0; j < misses.size(); ++j) {
    const Miss& m = misses[j];
    std::memcpy(buf.data() + m.lo, scratch.data() + j * B, m.n);
    if (cache_enabled()) {
      self_.counters().cache_misses += 1;
      blk_cache_.emplace(m.blk.raw(),
                         std::vector<std::byte>(scratch.data() + j * B,
                                                scratch.data() + (j + 1) * B));
    }
  }
}

void Transaction::invalidate_cached_blocks(
    DPtr primary, std::uint32_t num_blocks,
    const std::function<DPtr(std::uint32_t)>& addr_of) {
  if (blk_cache_.empty()) return;
  blk_cache_.erase(primary.raw());
  for (std::uint32_t i = 1; i < num_blocks; ++i) blk_cache_.erase(addr_of(i).raw());
}

Result<std::vector<DPtr>> Transaction::translate_ids_impl(
    std::span<const std::uint64_t> app_ids) {
  if (!active_ || failed_) return Status::kTxnAborted;
  auto& dht = db_->id_index();
  auto* sc = scache();
  std::vector<DPtr> out(app_ids.size());
  std::vector<std::uint64_t> need;
  std::vector<std::size_t> need_pos;
  for (std::size_t i = 0; i < app_ids.size(); ++i) {
    auto it = created_ids_.find(app_ids[i]);
    if (it != created_ids_.end()) {
      out[i] = it->second;
    } else {
      need.push_back(app_ids[i]);
      need_pos.push_back(i);
    }
  }

  // Warm-memo validation for bare translates: one erase-epoch read (a single
  // 8-byte remote atomic) covers every memoized key in the batch. A memo
  // taught under the still-current epoch is proven -- no erase can have
  // broken the mapping, and GDI never shadows a live key with a duplicate
  // insert -- so those keys skip the DHT walk entirely. Epoch-mismatched
  // memos fall back to the walk below (and are re-taught on success).
  std::uint64_t ep = dht.cached_erase_epoch(self_);
  if (sc != nullptr && !need.empty()) {
    bool any_memo = false;
    for (std::uint64_t key : need)
      if (sc->find_translation(key) != nullptr) {
        any_memo = true;
        break;
      }
    if (any_memo) {
      ep = dht.erase_epoch(self_);
      std::vector<std::uint64_t> still;
      std::vector<std::size_t> still_pos;
      for (std::size_t j = 0; j < need.size(); ++j) {
        const auto* tr = sc->find_translation(need[j]);
        if (tr != nullptr && tr->epoch == ep) {
          out[need_pos[j]] = tr->vid;
          self_.counters().xlate_hits += 1;
          continue;
        }
        if (tr != nullptr) {
          self_.counters().xlate_fallbacks += 1;
          sc->forget_translation(need[j]);
        }
        still.push_back(need[j]);
        still_pos.push_back(need_pos[j]);
      }
      need = std::move(still);
      need_pos = std::move(still_pos);
    }
  }

  // Multi-lookup earns its round flushes only past one key; a singleton walks
  // the chain blocking, exactly like translate_vertex_id. Resolved keys
  // re-teach the memo under `ep`, which was observed no later than the walk
  // that verified them (the conservative direction -- see shared_cache.hpp).
  if (batching_enabled() && need.size() > 1) {
    auto vals = dht.lookup_many(self_, need);
    for (std::size_t j = 0; j < need.size(); ++j)
      if (vals[j]) {
        out[need_pos[j]] = DPtr{*vals[j]};
        if (sc != nullptr) sc->remember_translation(need[j], DPtr{*vals[j]}, ep);
      }
  } else {
    for (std::size_t j = 0; j < need.size(); ++j)
      if (auto v = dht.lookup(self_, need[j])) {
        out[need_pos[j]] = DPtr{*v};
        if (sc != nullptr) sc->remember_translation(need[j], DPtr{*v}, ep);
      }
  }
  return out;
}

Result<std::vector<DPtr>> Transaction::translate_vertex_ids(
    std::span<const std::uint64_t> app_ids) {
  // n-op wrapper over the async surface: one translate future per ID.
  BatchScope scope = batch();
  std::vector<Future<DPtr>> futs;
  futs.reserve(app_ids.size());
  for (std::uint64_t id : app_ids) futs.push_back(scope.translate(id));
  if (Status s = scope.execute(); is_transaction_critical(s)) return s;
  std::vector<DPtr> out(app_ids.size());
  for (std::size_t i = 0; i < futs.size(); ++i)
    if (futs[i].ok()) out[i] = *futs[i];
  return out;
}

void Transaction::prefetch_vertices(std::span<const DPtr> vids) {
  // n-op wrapper over the async surface; BatchScope::execute dispatches the
  // hints by mode (kReadShared cache population / kRead lock-then-validate /
  // kWrite no-op).
  BatchScope scope = batch();
  scope.prefetch(vids);
  (void)scope.execute();
}

void Transaction::prefetch_edges(std::span<const DPtr> eids) {
  // n-op wrapper over the async surface (edge twin of prefetch_vertices).
  BatchScope scope = batch();
  scope.prefetch_edges(eids);
  (void)scope.execute();
}

void Transaction::populate_block_cache(std::span<const DPtr> vids,
                                       std::unordered_set<std::uint64_t>* tainted) {
  if (!active_ || failed_) return;
  if (!cache_enabled() || !batching_enabled()) return;

  auto& blocks = db_->blocks();
  const std::size_t B = blocks.block_size();
  std::vector<DPtr> need;
  for (DPtr v : vids) {
    if (v.is_null()) continue;
    if (vcache_.contains(v.raw()) || blk_cache_.contains(v.raw())) continue;
    // Reserve the slot so duplicates within `vids` are fetched once.
    blk_cache_.emplace(v.raw(), std::vector<std::byte>{});
    need.push_back(v);
  }
  if (need.empty()) return;

  // Round 1: all primary blocks, one overlapped batch.
  std::vector<std::byte> scratch(need.size() * B);
  std::vector<block::BlockStore::BlockReadOp> ops;
  ops.reserve(need.size());
  for (std::size_t j = 0; j < need.size(); ++j)
    ops.push_back({need[j], scratch.data() + j * B});
  blocks.read_blocks(self_, ops);
  self_.counters().cache_misses += need.size();

  // Round 2: continuation blocks of multi-block holders (the block-address
  // table always lives in the primary block, so round 1 gives every address).
  std::vector<block::BlockStore::BlockReadOp> tail_ops;
  std::vector<DPtr> tail_blks;
  std::vector<std::vector<std::byte>> tail_bufs;
  for (std::size_t j = 0; j < need.size(); ++j) {
    auto& slot = blk_cache_[need[j].raw()];
    slot.assign(scratch.data() + j * B, scratch.data() + (j + 1) * B);
    layout::VertexView view(slot);
    if (!view.valid()) continue;
    const std::uint32_t nb = view.num_blocks();
    // Defensive clamp: a stale DPtr may point at a reused non-vertex block
    // whose header bytes are arbitrary; never chase addresses beyond the
    // block-address table that fits in the primary block.
    if (nb > view.table_capacity() ||
        nb > (B - layout::VertexView::kBlockTableOff) / 8)
      continue;
    for (std::uint32_t i = 1; i < nb; ++i) {
      const DPtr blk = view.block_addr(i);
      if (blk.is_null()) continue;
      if (blk_cache_.contains(blk.raw())) {
        // A pre-existing entry for this tail: its bytes may predate the
        // caller's read bracket (e.g. the block was recycled from a holder
        // this transaction fetched earlier) -- report the holder as unsafe
        // for a lock-free shared-cache fill.
        if (tainted != nullptr) tainted->insert(need[j].raw());
        continue;
      }
      blk_cache_.emplace(blk.raw(), std::vector<std::byte>{});
      tail_blks.push_back(blk);
    }
  }
  if (tail_blks.empty()) return;
  tail_bufs.resize(tail_blks.size(), std::vector<std::byte>(B));
  tail_ops.reserve(tail_blks.size());
  for (std::size_t j = 0; j < tail_blks.size(); ++j)
    tail_ops.push_back({tail_blks[j], tail_bufs[j].data()});
  blocks.read_blocks(self_, tail_ops);
  self_.counters().cache_misses += tail_blks.size();
  for (std::size_t j = 0; j < tail_blks.size(); ++j)
    blk_cache_[tail_blks[j].raw()] = std::move(tail_bufs[j]);
}

void Transaction::populate_edge_block_cache(std::span<const DPtr> eids,
                                            std::unordered_set<std::uint64_t>* tainted) {
  if (!active_ || failed_) return;
  if (!cache_enabled() || !batching_enabled()) return;

  auto& blocks = db_->blocks();
  const std::size_t B = blocks.block_size();
  std::vector<DPtr> need;
  for (DPtr e : eids) {
    if (e.is_null()) continue;
    if (ecache_.contains(e.raw()) || blk_cache_.contains(e.raw())) continue;
    blk_cache_.emplace(e.raw(), std::vector<std::byte>{});
    need.push_back(e);
  }
  if (need.empty()) return;

  // Round 1: all primary blocks, one overlapped batch.
  std::vector<std::byte> scratch(need.size() * B);
  std::vector<block::BlockStore::BlockReadOp> ops;
  ops.reserve(need.size());
  for (std::size_t j = 0; j < need.size(); ++j)
    ops.push_back({need[j], scratch.data() + j * B});
  blocks.read_blocks(self_, ops);
  self_.counters().cache_misses += need.size();

  // Round 2: continuation blocks of multi-block edge holders (the EdgeView
  // block table is fixed-size and always lives in the primary block).
  std::vector<DPtr> tail_blks;
  for (std::size_t j = 0; j < need.size(); ++j) {
    auto& slot = blk_cache_[need[j].raw()];
    slot.assign(scratch.data() + j * B, scratch.data() + (j + 1) * B);
    layout::EdgeView view(slot);
    if (!view.valid()) continue;
    const std::uint32_t nb = view.num_blocks();
    if (nb > layout::EdgeView::kMaxBlocks) continue;  // stale/reused block
    for (std::uint32_t i = 1; i < nb; ++i) {
      const DPtr blk = view.block_addr(i);
      if (blk.is_null()) continue;
      if (blk_cache_.contains(blk.raw())) {
        // See populate_block_cache: pre-bracket tail bytes taint the holder.
        if (tainted != nullptr) tainted->insert(need[j].raw());
        continue;
      }
      blk_cache_.emplace(blk.raw(), std::vector<std::byte>{});
      tail_blks.push_back(blk);
    }
  }
  if (tail_blks.empty()) return;
  std::vector<std::vector<std::byte>> tail_bufs(tail_blks.size(),
                                                std::vector<std::byte>(B));
  std::vector<block::BlockStore::BlockReadOp> tail_ops;
  tail_ops.reserve(tail_blks.size());
  for (std::size_t j = 0; j < tail_blks.size(); ++j)
    tail_ops.push_back({tail_blks[j], tail_bufs[j].data()});
  blocks.read_blocks(self_, tail_ops);
  self_.counters().cache_misses += tail_blks.size();
  for (std::size_t j = 0; j < tail_blks.size(); ++j)
    blk_cache_[tail_blks[j].raw()] = std::move(tail_bufs[j]);
}

// ---------------------------------------------------------------------------
// The single lock/fetch path
// ---------------------------------------------------------------------------

Status Transaction::fetch_vertices_batch(std::span<const FetchSpec> specs,
                                         std::span<Status> per) {
  assert(per.size() == specs.size());
  if (!active_ || failed_) {
    std::fill(per.begin(), per.end(), Status::kTxnAborted);
    return Status::kTxnAborted;
  }

  Status doom = Status::kOk;
  const int attempts = db_->config().lock_attempts;
  auto& blocks = db_->blocks();

  // Deduplicate by vid, merging write/required intent; vids that already
  // have a state resolve through the vcache_ hit path, with read->write
  // upgrades set aside so the whole set upgrades in overlapped CAS rounds
  // (try_upgrade_many) instead of word-by-word.
  struct Item {
    DPtr vid;
    bool write = false;
    bool required = false;
    LockState lock = LockState::kNone;
    std::uint64_t word = 0;      ///< lock word observed by the acquiring CAS
    std::uint64_t pre_word = 0;  ///< kReadShared: peek bracketing the fill
    bool have_pre = false;
    bool cached = false;         ///< materialized from the shared cache
    bool fill_fresh = false;     ///< kReadShared: bytes will come off the wire
    Status st = Status::kOk;
  };
  std::vector<Item> items;
  std::unordered_map<std::uint64_t, std::size_t> item_of;
  std::vector<std::size_t> spec_item(specs.size(), SIZE_MAX);
  // Read->write upgrades of already-held states: unique vids + their specs.
  std::vector<DPtr> upg_vids;
  std::unordered_map<std::uint64_t, std::size_t> upg_of;
  std::vector<std::pair<std::size_t, std::size_t>> upg_specs;  // (spec, upg idx)
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const FetchSpec& sp = specs[i];
    if (sp.vid.is_null()) {
      per[i] = Status::kInvalidArgument;
      continue;
    }
    if (auto vit = vcache_.find(sp.vid.raw()); vit != vcache_.end()) {
      VertexState* st = vit->second.get();
      if (st->deleted) {
        per[i] = Status::kNotFound;
        continue;
      }
      if (!sp.write) {
        per[i] = Status::kOk;
        continue;
      }
      if (Status s = check_writable(); !ok(s)) {
        per[i] = fail(s);
        if (sp.required && ok(doom)) doom = per[i];
        continue;
      }
      if (st->lock == LockState::kWrite || st->created) {
        per[i] = Status::kOk;
        continue;
      }
      if (st->lock == LockState::kRead) {
        auto [uit, fresh] = upg_of.try_emplace(sp.vid.raw(), upg_vids.size());
        if (fresh) upg_vids.push_back(sp.vid);
        upg_specs.emplace_back(i, uit->second);
        continue;
      }
      // LockState::kNone with write intent cannot arise in locking modes;
      // fall back to the serial path for robustness.
      auto r = vertex_state(VertexHandle{sp.vid}, /*for_write=*/true);
      per[i] = r.ok() ? Status::kOk : r.status();
      if (sp.required && is_transaction_critical(per[i]) && ok(doom)) doom = per[i];
      continue;
    }
    auto [it, fresh] = item_of.try_emplace(sp.vid.raw(), items.size());
    if (fresh) items.push_back(Item{sp.vid, sp.write, sp.required});
    else {
      items[it->second].write |= sp.write;
      items[it->second].required |= sp.required;
    }
    spec_item[i] = it->second;
  }

  // Phase 0: batched write-lock upgrades for re-touched read-locked states
  // (one overlapped CAS round set instead of one serial upgrade per vertex).
  if (!upg_vids.empty()) {
    std::vector<std::uint8_t> got;
    if (batching_enabled() && upg_vids.size() > 1) {
      got = blocks.try_upgrade_many(self_, upg_vids, attempts);
    } else {
      got.assign(upg_vids.size(), 0);
      for (std::size_t j = 0; j < upg_vids.size(); ++j)
        for (int a = 0; a < attempts && got[j] == 0; ++a)
          if (blocks.try_upgrade_lock(self_, upg_vids[j])) got[j] = 1;
    }
    std::vector<Status> upg_st(upg_vids.size(), Status::kOk);
    for (std::size_t j = 0; j < upg_vids.size(); ++j) {
      VertexState* st = vcache_.find(upg_vids[j].raw())->second.get();
      if (got[j] != 0) {
        st->lock = LockState::kWrite;
        // Same-transaction write intent: cached window blocks are about to
        // diverge from the buffered holder, and the shared snapshot dies.
        invalidate_cached_blocks(upg_vids[j], st->view.num_blocks(), [&](std::uint32_t b) {
          return st->view.block_addr(b);
        });
        scache_invalidate(upg_vids[j]);
      } else {
        upg_st[j] = fail(Status::kTxnConflict);
      }
    }
    for (const auto& [spec, j] : upg_specs) {
      per[spec] = upg_st[j];
      if (specs[spec].required && is_transaction_critical(per[spec]) && ok(doom))
        doom = per[spec];
    }
  }

  // Phase 1: locks. kReadShared is lock-free for reads and rejects writes;
  // locking modes acquire every still-needed lock with overlapped CAS rounds
  // (one nonblocking CAS per word per round, one flush per round). Singleton
  // batches use the blocking word ops -- same semantics, no flush overhead.
  // The word each acquiring CAS observed is kept: its version bits date the
  // lock, which is exactly what shared-cache validation needs (no extra op).
  if (mode_ == TxnMode::kReadShared) {
    for (auto& it : items) {
      if (!it.write) continue;
      it.st = Status::kTxnReadOnly;
      if (it.required) {
        (void)fail(Status::kTxnReadOnly);
        if (ok(doom)) doom = Status::kTxnReadOnly;
      }
    }
  } else {
    std::vector<std::size_t> read_idx;
    std::vector<std::size_t> write_idx;
    for (std::size_t j = 0; j < items.size(); ++j)
      (items[j].write ? write_idx : read_idx).push_back(j);
    auto lock_serial = [&](Item& it) {
      bool got = false;
      // A shared-cache entry's version stamp (kept current for a rank's own
      // rows by write-through) seeds the CAS expectation: a warm hint saves
      // the learn-the-version round trip; a stale one costs nothing -- the
      // failing CAS returns the fresh word the retry needed anyway.
      std::uint64_t hint = 0;
      if (auto* sc = scache())
        if (const auto* e = sc->find(it.vid)) hint = e->version;
      if (it.write) {
        for (int a = 0; a < attempts && !got; ++a)
          got = blocks.try_write_lock(self_, it.vid, hint);
      } else {
        got = blocks.try_read_lock(self_, it.vid, attempts, &it.word, hint);
      }
      return got;
    };
    const bool batch_locks =
        batching_enabled() && read_idx.size() + write_idx.size() > 1;
    std::vector<std::uint8_t> got_r;
    std::vector<std::uint8_t> got_w;
    std::vector<std::uint64_t> words_r;
    if (batch_locks) {
      std::vector<DPtr> rv;
      std::vector<DPtr> wv;
      rv.reserve(read_idx.size());
      wv.reserve(write_idx.size());
      for (std::size_t j : read_idx) rv.push_back(items[j].vid);
      for (std::size_t j : write_idx) wv.push_back(items[j].vid);
      // Seed each word's first CAS with the same shared-cache version stamp
      // the serial path uses -- a warm row locks without burning the
      // learn-the-version round (empty hints = unhinted, identical ops).
      std::vector<std::uint64_t> hints_r;
      std::vector<std::uint64_t> hints_w;
      if (auto* sc = scache()) {
        const auto hint_of = [&](DPtr vid) -> std::uint64_t {
          const auto* e = sc->find(vid);
          return e != nullptr ? e->version : 0;
        };
        hints_r.reserve(rv.size());
        hints_w.reserve(wv.size());
        for (DPtr v : rv) hints_r.push_back(hint_of(v));
        for (DPtr v : wv) hints_w.push_back(hint_of(v));
      }
      if (!rv.empty())
        got_r = blocks.try_read_lock_many(self_, rv, attempts, &words_r, hints_r);
      if (!wv.empty()) got_w = blocks.try_write_lock_many(self_, wv, attempts, hints_w);
    }
    auto apply = [&](std::span<const std::size_t> idx,
                     std::span<const std::uint8_t> got,
                     std::span<const std::uint64_t> words, LockState granted) {
      for (std::size_t k = 0; k < idx.size(); ++k) {
        Item& it = items[idx[k]];
        const bool won = batch_locks ? got[k] != 0 : lock_serial(it);
        if (won) {
          it.lock = granted;
          if (batch_locks && !words.empty()) it.word = words[k];
          if (granted == LockState::kWrite) scache_invalidate(it.vid);
          continue;
        }
        it.st = it.required ? fail(Status::kTxnConflict) : Status::kTxnConflict;
        if (it.required && ok(doom)) doom = Status::kTxnConflict;
      }
    };
    apply(read_idx, got_r, words_r, LockState::kRead);
    apply(write_idx, got_w, {}, LockState::kWrite);
  }

  // Phase 1.5: shared-cache consultation. Read-locked items validate for
  // free against the word their lock CAS observed; kReadShared items share
  // one overlapped lock-word peek round, which doubles as the low bracket of
  // the seqlock fill discipline for the entries we end up fetching.
  auto install_from_entry = [&](Item& it, const cache::SharedBlockCache::Entry& e) {
    auto st = std::make_unique<VertexState>();
    st->lock = it.lock;
    st->buf = e.buf;
    st->view.reset_dirty();
    st->orig_index_match.clear();
    for (const auto& idx : db_->indexes())
      st->orig_index_match.push_back(idx->matches(st->view) ? 1 : 0);
    vcache_.emplace(it.vid.raw(), std::move(st));
    it.cached = true;
  };
  if (scache() != nullptr) {
    if (mode_ == TxnMode::kReadShared) {
      std::vector<DPtr> pv;
      std::vector<std::size_t> pidx;
      for (std::size_t j = 0; j < items.size(); ++j)
        if (ok(items[j].st)) {
          pv.push_back(items[j].vid);
          pidx.push_back(j);
        }
      if (!pv.empty()) {
        std::vector<std::uint64_t> pw(pv.size(), 0);
        blocks.peek_lock_words(self_, pv, pw, batching_enabled());
        for (std::size_t k = 0; k < pidx.size(); ++k) {
          Item& it = items[pidx[k]];
          it.pre_word = pw[k];
          it.have_pre = true;
          // Fill-eligible only if the holder's bytes will actually cross the
          // wire *inside* this peek bracket: bytes already sitting in the
          // per-transaction block cache were read before the pre peek and
          // could predate a writer the bracket would never see.
          it.fill_fresh = !blk_cache_.contains(it.vid.raw());
          if (const auto* e = scache_lookup(it.vid, pw[k], /*want_edge=*/false))
            install_from_entry(it, *e);
        }
      }
    } else {
      for (auto& it : items) {
        if (!ok(it.st) || it.lock != LockState::kRead) continue;
        if (const auto* e = scache_lookup(it.vid, it.word, /*want_edge=*/false))
          install_from_entry(it, *e);
      }
    }
  }

  // Phase 2: block population for the misses. All locks are held (or the
  // mode is lock-free), so one overlapped batch of primary blocks plus one
  // of continuation blocks is observation-safe. Locked items are fetched
  // even when another item doomed the transaction -- their locks must be
  // tracked for release. A miss is counted only for items that actually
  // consulted the cache (read-locked or kReadShared; write intents bypass
  // by design and must not deflate the hit rate).
  std::vector<DPtr> to_fetch;
  to_fetch.reserve(items.size());
  for (const auto& it : items) {
    if (!(ok(it.st) && !it.cached &&
          (mode_ == TxnMode::kReadShared || it.lock != LockState::kNone)))
      continue;
    to_fetch.push_back(it.vid);
    if (scache() != nullptr &&
        (mode_ == TxnMode::kReadShared || it.lock == LockState::kRead))
      self_.counters().scache_misses += 1;
  }
  std::unordered_set<std::uint64_t> tainted;
  const bool populated = to_fetch.size() > 1;
  if (populated) populate_block_cache(to_fetch, &tainted);

  // Phase 3: materialize VertexStates (block-cache hits on the batched path).
  // Read-locked fetches stamp straight into the shared cache (bytes read
  // under the lock, version from the acquiring CAS); kReadShared fetches
  // collect for the post-fill peek round below.
  std::vector<std::size_t> fill_candidates;
  for (std::size_t j = 0; j < items.size(); ++j) {
    Item& it = items[j];
    if (!ok(it.st) || it.cached) continue;
    if (mode_ != TxnMode::kReadShared && it.lock == LockState::kNone) continue;
    auto st = std::make_unique<VertexState>();
    st->lock = it.lock;
    const std::uint64_t txn_hits_before = self_.counters().cache_hits;
    if (Status s = fetch_vertex(it.vid, *st); !ok(s)) {
      // Not a valid vertex: release the just-taken lock and report. Drop the
      // block from the cache too -- with the lock gone nothing pins its
      // bytes, and a later lookup of a recycled block must re-read.
      blk_cache_.erase(it.vid.raw());
      scache_invalidate(it.vid);
      if (st->lock == LockState::kWrite) blocks.write_unlock(self_, it.vid);
      if (st->lock == LockState::kRead) blocks.read_unlock(self_, it.vid);
      it.st = s;
      continue;
    }
    if (st->lock == LockState::kWrite)
      invalidate_cached_blocks(it.vid, st->view.num_blocks(),
                               [&](std::uint32_t i) { return st->view.block_addr(i); });
    if (scache() != nullptr) {
      // Lock-free fill eligibility also requires every byte to have crossed
      // the wire inside the bracket: a tainted holder (tail served from a
      // pre-bracket per-transaction cache entry, reported by populate) or a
      // singleton fetch that scored any per-transaction cache hit read
      // pre-bracket bytes and must not be stamped.
      const bool fresh =
          it.fill_fresh && !tainted.contains(it.vid.raw()) &&
          (populated || self_.counters().cache_hits == txn_hits_before);
      if (st->lock == LockState::kRead) {
        // Locked fills need no bracket: block-cache bytes in a locking-mode
        // transaction were read under locks this transaction still holds,
        // so no writer can have completed since.
        scache_fill(it.vid, st->buf, it.word, /*is_edge=*/false);
      } else if (mode_ == TxnMode::kReadShared && it.have_pre && fresh &&
                 !block::BlockStore::write_locked(it.pre_word)) {
        fill_candidates.push_back(j);
      }
    }
    vcache_.emplace(it.vid.raw(), std::move(st));
  }

  // Phase 3.5: lock-free fills commit only if the holder proved stable across
  // the whole read -- the post peek must agree with the pre peek's version
  // and show no writer (seqlock discipline).
  if (!fill_candidates.empty()) {
    std::vector<DPtr> pv;
    pv.reserve(fill_candidates.size());
    for (std::size_t j : fill_candidates) pv.push_back(items[j].vid);
    std::vector<std::uint64_t> post(pv.size(), 0);
    blocks.peek_lock_words(self_, pv, post, batching_enabled());
    for (std::size_t k = 0; k < fill_candidates.size(); ++k) {
      const Item& it = items[fill_candidates[k]];
      if (block::BlockStore::write_locked(post[k]) ||
          block::BlockStore::version_of(post[k]) !=
              block::BlockStore::version_of(it.pre_word))
        continue;
      const VertexState* st = vcache_.find(it.vid.raw())->second.get();
      scache_fill(it.vid, st->buf, post[k], /*is_edge=*/false);
    }
  }

  for (std::size_t i = 0; i < specs.size(); ++i)
    if (spec_item[i] != SIZE_MAX) per[i] = items[spec_item[i]].st;
  return doom;
}

Status Transaction::fetch_edges_batch(std::span<const EdgeFetchSpec> specs,
                                      std::span<Status> per) {
  assert(per.size() == specs.size());
  if (!active_ || failed_) {
    std::fill(per.begin(), per.end(), Status::kTxnAborted);
    return Status::kTxnAborted;
  }

  Status doom = Status::kOk;
  const int attempts = db_->config().lock_attempts;
  auto& blocks = db_->blocks();

  // Deduplicate by eid; eids with a state resolve through the ecache_ hit
  // path (upgrades stay serial -- write re-touches of edge holders are rare
  // enough that a dedicated CAS round would not pay for itself).
  struct Item {
    DPtr eid;
    bool write = false;
    bool required = false;
    LockState lock = LockState::kNone;
    std::uint64_t word = 0;
    std::uint64_t pre_word = 0;
    bool have_pre = false;
    bool cached = false;
    bool fill_fresh = false;  ///< kReadShared: bytes will come off the wire
    Status st = Status::kOk;
  };
  std::vector<Item> items;
  std::unordered_map<std::uint64_t, std::size_t> item_of;
  std::vector<std::size_t> spec_item(specs.size(), SIZE_MAX);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const EdgeFetchSpec& sp = specs[i];
    if (sp.eid.is_null()) {
      per[i] = Status::kInvalidArgument;
      continue;
    }
    if (ecache_.contains(sp.eid.raw())) {
      auto r = edge_state(EdgeHandle{sp.eid}, sp.write);  // hit branch only
      per[i] = r.ok() ? Status::kOk : r.status();
      if (sp.required && is_transaction_critical(per[i]) && ok(doom)) doom = per[i];
      continue;
    }
    auto [it, fresh] = item_of.try_emplace(sp.eid.raw(), items.size());
    if (fresh) items.push_back(Item{sp.eid, sp.write, sp.required});
    else {
      items[it->second].write |= sp.write;
      items[it->second].required |= sp.required;
    }
    spec_item[i] = it->second;
  }
  if (!items.empty() && batching_enabled() && items.size() > 1) {
    self_.counters().edge_batches += 1;
    self_.counters().edge_batch_items += items.size();
  }

  // Phase 1: locks (same shape as the vertex path).
  if (mode_ == TxnMode::kReadShared) {
    for (auto& it : items) {
      if (!it.write) continue;
      it.st = Status::kTxnReadOnly;
      if (it.required) {
        (void)fail(Status::kTxnReadOnly);
        if (ok(doom)) doom = Status::kTxnReadOnly;
      }
    }
  } else {
    std::vector<std::size_t> read_idx;
    std::vector<std::size_t> write_idx;
    for (std::size_t j = 0; j < items.size(); ++j)
      (items[j].write ? write_idx : read_idx).push_back(j);
    auto lock_serial = [&](Item& it) {
      bool got = false;
      // Version-stamp hint, exactly as on the vertex path.
      std::uint64_t hint = 0;
      if (auto* sc = scache())
        if (const auto* e = sc->find(it.eid)) hint = e->version;
      if (it.write) {
        for (int a = 0; a < attempts && !got; ++a)
          got = blocks.try_write_lock(self_, it.eid, hint);
      } else {
        got = blocks.try_read_lock(self_, it.eid, attempts, &it.word, hint);
      }
      return got;
    };
    const bool batch_locks =
        batching_enabled() && read_idx.size() + write_idx.size() > 1;
    std::vector<std::uint8_t> got_r;
    std::vector<std::uint8_t> got_w;
    std::vector<std::uint64_t> words_r;
    if (batch_locks) {
      std::vector<DPtr> rv;
      std::vector<DPtr> wv;
      rv.reserve(read_idx.size());
      wv.reserve(write_idx.size());
      for (std::size_t j : read_idx) rv.push_back(items[j].eid);
      for (std::size_t j : write_idx) wv.push_back(items[j].eid);
      // Version-stamp hints, exactly as on the vertex batch path.
      std::vector<std::uint64_t> hints_r;
      std::vector<std::uint64_t> hints_w;
      if (auto* sc = scache()) {
        const auto hint_of = [&](DPtr eid) -> std::uint64_t {
          const auto* e = sc->find(eid);
          return e != nullptr ? e->version : 0;
        };
        hints_r.reserve(rv.size());
        hints_w.reserve(wv.size());
        for (DPtr e : rv) hints_r.push_back(hint_of(e));
        for (DPtr e : wv) hints_w.push_back(hint_of(e));
      }
      if (!rv.empty())
        got_r = blocks.try_read_lock_many(self_, rv, attempts, &words_r, hints_r);
      if (!wv.empty()) got_w = blocks.try_write_lock_many(self_, wv, attempts, hints_w);
    }
    auto apply = [&](std::span<const std::size_t> idx,
                     std::span<const std::uint8_t> got,
                     std::span<const std::uint64_t> words, LockState granted) {
      for (std::size_t k = 0; k < idx.size(); ++k) {
        Item& it = items[idx[k]];
        const bool won = batch_locks ? got[k] != 0 : lock_serial(it);
        if (won) {
          it.lock = granted;
          if (batch_locks && !words.empty()) it.word = words[k];
          if (granted == LockState::kWrite) scache_invalidate(it.eid);
          continue;
        }
        it.st = it.required ? fail(Status::kTxnConflict) : Status::kTxnConflict;
        if (it.required && ok(doom)) doom = Status::kTxnConflict;
      }
    };
    apply(read_idx, got_r, words_r, LockState::kRead);
    apply(write_idx, got_w, {}, LockState::kWrite);
  }

  // Phase 1.5: shared-cache consultation (same validation rules as vertices;
  // edge entries are distinguished by their is_edge tag).
  auto install_from_entry = [&](Item& it, const cache::SharedBlockCache::Entry& e) {
    auto st = std::make_unique<EdgeState>();
    st->lock = it.lock;
    st->buf = e.buf;
    st->view.reset_dirty();
    ecache_.emplace(it.eid.raw(), std::move(st));
    it.cached = true;
  };
  if (scache() != nullptr) {
    if (mode_ == TxnMode::kReadShared) {
      std::vector<DPtr> pv;
      std::vector<std::size_t> pidx;
      for (std::size_t j = 0; j < items.size(); ++j)
        if (ok(items[j].st)) {
          pv.push_back(items[j].eid);
          pidx.push_back(j);
        }
      if (!pv.empty()) {
        std::vector<std::uint64_t> pw(pv.size(), 0);
        blocks.peek_lock_words(self_, pv, pw, batching_enabled());
        for (std::size_t k = 0; k < pidx.size(); ++k) {
          Item& it = items[pidx[k]];
          it.pre_word = pw[k];
          it.have_pre = true;
          // See the vertex path: pre-bracket per-transaction cache bytes are
          // not fill-eligible.
          it.fill_fresh = !blk_cache_.contains(it.eid.raw());
          if (const auto* e = scache_lookup(it.eid, pw[k], /*want_edge=*/true))
            install_from_entry(it, *e);
        }
      }
    } else {
      for (auto& it : items) {
        if (!ok(it.st) || it.lock != LockState::kRead) continue;
        if (const auto* e = scache_lookup(it.eid, it.word, /*want_edge=*/true))
          install_from_entry(it, *e);
      }
    }
  }

  // Phase 2: block population for the misses (one primary batch + one tail
  // batch for the whole set). Miss accounting and taint tracking mirror the
  // vertex path.
  std::vector<DPtr> to_fetch;
  to_fetch.reserve(items.size());
  for (const auto& it : items) {
    if (!(ok(it.st) && !it.cached &&
          (mode_ == TxnMode::kReadShared || it.lock != LockState::kNone)))
      continue;
    to_fetch.push_back(it.eid);
    if (scache() != nullptr &&
        (mode_ == TxnMode::kReadShared || it.lock == LockState::kRead))
      self_.counters().scache_misses += 1;
  }
  std::unordered_set<std::uint64_t> tainted;
  const bool populated = to_fetch.size() > 1;
  if (populated) populate_edge_block_cache(to_fetch, &tainted);

  // Phase 3: materialize EdgeStates; fills mirror the vertex path.
  std::vector<std::size_t> fill_candidates;
  for (std::size_t j = 0; j < items.size(); ++j) {
    Item& it = items[j];
    if (!ok(it.st) || it.cached) continue;
    if (mode_ != TxnMode::kReadShared && it.lock == LockState::kNone) continue;
    auto st = std::make_unique<EdgeState>();
    st->lock = it.lock;
    const std::uint64_t txn_hits_before = self_.counters().cache_hits;
    if (Status s = fetch_edge(it.eid, *st); !ok(s)) {
      blk_cache_.erase(it.eid.raw());  // see vertex path: nothing pins the bytes
      scache_invalidate(it.eid);
      if (st->lock == LockState::kWrite) blocks.write_unlock(self_, it.eid);
      if (st->lock == LockState::kRead) blocks.read_unlock(self_, it.eid);
      it.st = s;
      continue;
    }
    if (st->lock == LockState::kWrite)
      invalidate_cached_blocks(it.eid, st->view.num_blocks(),
                               [&](std::uint32_t i) { return st->view.block_addr(i); });
    if (scache() != nullptr) {
      const bool fresh =
          it.fill_fresh && !tainted.contains(it.eid.raw()) &&
          (populated || self_.counters().cache_hits == txn_hits_before);
      if (st->lock == LockState::kRead) {
        scache_fill(it.eid, st->buf, it.word, /*is_edge=*/true);
      } else if (mode_ == TxnMode::kReadShared && it.have_pre && fresh &&
                 !block::BlockStore::write_locked(it.pre_word)) {
        fill_candidates.push_back(j);
      }
    }
    ecache_.emplace(it.eid.raw(), std::move(st));
  }

  if (!fill_candidates.empty()) {
    std::vector<DPtr> pv;
    pv.reserve(fill_candidates.size());
    for (std::size_t j : fill_candidates) pv.push_back(items[j].eid);
    std::vector<std::uint64_t> post(pv.size(), 0);
    blocks.peek_lock_words(self_, pv, post, batching_enabled());
    for (std::size_t k = 0; k < fill_candidates.size(); ++k) {
      const Item& it = items[fill_candidates[k]];
      if (block::BlockStore::write_locked(post[k]) ||
          block::BlockStore::version_of(post[k]) !=
              block::BlockStore::version_of(it.pre_word))
        continue;
      const EdgeState* st = ecache_.find(it.eid.raw())->second.get();
      scache_fill(it.eid, st->buf, post[k], /*is_edge=*/true);
    }
  }

  for (std::size_t i = 0; i < specs.size(); ++i)
    if (spec_item[i] != SIZE_MAX) per[i] = items[spec_item[i]].st;
  return doom;
}

// ---------------------------------------------------------------------------
// Locking & fetching
// ---------------------------------------------------------------------------

Status Transaction::acquire_vertex_lock(VertexState& st, DPtr vid, bool write) {
  if (mode_ == TxnMode::kReadShared) {
    // Paper's optimized read-only transaction: no locks, assumes no
    // concurrent writers.
    return write ? fail(Status::kTxnReadOnly) : Status::kOk;
  }
  auto& blocks = db_->blocks();
  const int attempts = db_->config().lock_attempts;
  if (write) {
    if (st.lock == LockState::kWrite) return Status::kOk;
    if (st.lock == LockState::kRead) {
      for (int i = 0; i < attempts; ++i) {
        if (blocks.try_upgrade_lock(self_, vid)) {
          st.lock = LockState::kWrite;
          return Status::kOk;
        }
      }
      return fail(Status::kTxnConflict);
    }
    for (int i = 0; i < attempts; ++i) {
      if (blocks.try_write_lock(self_, vid)) {
        st.lock = LockState::kWrite;
        return Status::kOk;
      }
    }
    return fail(Status::kTxnConflict);
  }
  if (st.lock != LockState::kNone) return Status::kOk;
  if (blocks.try_read_lock(self_, vid, attempts)) {
    st.lock = LockState::kRead;
    return Status::kOk;
  }
  return fail(Status::kTxnConflict);
}

Status Transaction::fetch_vertex(DPtr vid, VertexState& st) {
  auto& blocks = db_->blocks();
  const std::size_t B = blocks.block_size();
  // One GET suffices for a one-block vertex -- the BGDL design goal.
  st.buf.resize(B);
  cache_read_block(vid, st.buf.data());
  if (!st.view.valid()) return Status::kNotFound;
  const std::size_t total =
      layout::VertexView::required_size(st.view.table_capacity(), st.view.edge_capacity(),
                                        st.view.prop_capacity());
  if (total > B) {
    st.buf.resize(total);
    // Continuation blocks: cache-served or fetched as one overlapped batch.
    read_tail_blocks(st.buf, total, st.view.num_blocks(),
                     [&](std::uint32_t i) { return st.view.block_addr(i); });
  } else {
    st.buf.resize(total);
  }
  st.view.reset_dirty();
  // Snapshot index membership for commit-time delta maintenance.
  st.orig_index_match.clear();
  for (const auto& idx : db_->indexes())
    st.orig_index_match.push_back(idx->matches(st.view) ? 1 : 0);
  return Status::kOk;
}

Result<Transaction::VertexState*> Transaction::vertex_state(VertexHandle v,
                                                            bool for_write) {
  if (!active_ || failed_) return Status::kTxnAborted;
  if (!v.valid()) return Status::kInvalidArgument;
  if (for_write) {
    if (Status s = check_writable(); !ok(s)) return fail(s);
  }
  auto it = vcache_.find(v.vid.raw());
  if (it != vcache_.end()) {
    VertexState* st = it->second.get();
    if (st->deleted) return Status::kNotFound;
    if (for_write && st->lock != LockState::kWrite && !st->created) {
      if (Status s = acquire_vertex_lock(*st, v.vid, true); !ok(s)) return s;
      // Same-transaction write intent: the cached window blocks are about to
      // diverge from the buffered holder -- drop them (shared snapshot too).
      invalidate_cached_blocks(v.vid, st->view.num_blocks(),
                               [&](std::uint32_t i) { return st->view.block_addr(i); });
      scache_invalidate(v.vid);
    }
    return st;
  }
  // Miss: a one-element trip through the shared batch path (which degenerates
  // to blocking lock + fetch for singletons).
  const FetchSpec spec{v.vid, for_write, /*required=*/true};
  Status st = Status::kOk;
  (void)fetch_vertices_batch(std::span<const FetchSpec>(&spec, 1),
                             std::span<Status>(&st, 1));
  if (!ok(st)) return st;
  return vcache_.find(v.vid.raw())->second.get();
}

Status Transaction::fetch_edge(DPtr eid, EdgeState& st) {
  const std::size_t B = db_->blocks().block_size();
  st.buf.resize(B);
  cache_read_block(eid, st.buf.data());
  if (!st.view.valid()) return Status::kNotFound;
  const std::size_t total = layout::EdgeView::required_size(st.view.prop_capacity());
  if (total > B) {
    st.buf.resize(total);
    read_tail_blocks(st.buf, total, st.view.num_blocks(),
                     [&](std::uint32_t i) { return st.view.block_addr(i); });
  } else {
    st.buf.resize(total);
  }
  st.view.reset_dirty();
  return Status::kOk;
}

Result<Transaction::EdgeState*> Transaction::edge_state(EdgeHandle e, bool for_write) {
  if (!active_ || failed_) return Status::kTxnAborted;
  if (!e.valid()) return Status::kInvalidArgument;
  if (for_write) {
    if (Status s = check_writable(); !ok(s)) return fail(s);
  }
  auto it = ecache_.find(e.eid.raw());
  if (it != ecache_.end()) {
    EdgeState* st = it->second.get();
    if (st->deleted) return Status::kNotFound;
    if (for_write && st->lock != LockState::kWrite && !st->created) {
      auto& blocks = db_->blocks();
      bool got = false;
      for (int i = 0; i < db_->config().lock_attempts && !got; ++i) {
        got = st->lock == LockState::kRead ? blocks.try_upgrade_lock(self_, e.eid)
                                           : blocks.try_write_lock(self_, e.eid);
      }
      if (!got) return fail(Status::kTxnConflict);
      st->lock = LockState::kWrite;
      invalidate_cached_blocks(e.eid, st->view.num_blocks(),
                               [&](std::uint32_t i) { return st->view.block_addr(i); });
      scache_invalidate(e.eid);
    }
    return st;
  }
  // Miss: a one-element trip through the shared edge batch path (which
  // degenerates to blocking lock + fetch for singletons).
  const EdgeFetchSpec spec{e.eid, for_write, /*required=*/true};
  Status st = Status::kOk;
  (void)fetch_edges_batch(std::span<const EdgeFetchSpec>(&spec, 1),
                          std::span<Status>(&st, 1));
  if (!ok(st)) return st;
  return ecache_.find(e.eid.raw())->second.get();
}

// ---------------------------------------------------------------------------
// Vertex CRUD
// ---------------------------------------------------------------------------

Result<VertexHandle> Transaction::create_vertex(std::uint64_t app_id) {
  return create_vertex_impl(app_id, /*dht_checked=*/false);
}

Result<VertexHandle> Transaction::create_vertex_impl(std::uint64_t app_id,
                                                     bool dht_checked) {
  if (!active_ || failed_) return Status::kTxnAborted;
  if (Status s = check_writable(); !ok(s)) return fail(s);
  if (created_ids_.contains(app_id)) return Status::kAlreadyExists;
  if (!dht_checked && db_->id_index().lookup(self_, app_id).has_value())
    return Status::kAlreadyExists;

  auto& blocks = db_->blocks();
  const std::uint32_t owner = db_->owner_rank(app_id);
  const DPtr primary = blocks.acquire(self_, owner);
  if (primary.is_null()) return fail(Status::kOutOfMemory);
  blk_cache_.erase(primary.raw());  // block may have been cached pre-recycling
  scache_invalidate(primary);
  if (!blocks.try_write_lock(self_, primary)) {
    // A fresh block's lock word is always zero; failure means protocol abuse.
    blocks.release(self_, primary);
    return fail(Status::kTxnConflict);
  }
  if (db_->config().wal) wal_rec_.acquire(primary);

  auto st = std::make_unique<VertexState>();
  st->created = true;
  st->lock = LockState::kWrite;
  const std::uint32_t tcap = std::min<std::uint32_t>(4, max_table_cap());
  layout::VertexView::init(st->buf, app_id, blocks.block_size(), tcap);
  st->view.set_num_blocks(1);
  st->view.set_block_addr(0, primary);
  st->orig_index_match.assign(db_->indexes().size(), 0);

  created_ids_.emplace(app_id, primary);
  vcache_.emplace(primary.raw(), std::move(st));
  return VertexHandle{primary};
}

Result<DPtr> Transaction::translate_vertex_id(std::uint64_t app_id) {
  // One-op wrapper over the batched path (the PR 2 rule: one translation
  // code path). The singleton degenerates to the blocking DHT lookup, and
  // the memo + erase-epoch validation live only in translate_ids_impl.
  auto r = translate_ids_impl(std::span<const std::uint64_t>(&app_id, 1));
  if (!r.ok()) return r.status();
  if ((*r)[0].is_null()) return Status::kNotFound;
  return (*r)[0];
}

Result<VertexHandle> Transaction::associate_vertex(DPtr vid) {
  auto st = vertex_state(VertexHandle{vid}, /*for_write=*/false);
  if (!st.ok()) return st.status();
  return VertexHandle{vid};
}

Result<VertexHandle> Transaction::find_vertex(std::uint64_t app_id) {
  // One-op wrapper over the async surface (translate + associate + stale-DHT
  // validation happen inside BatchScope::execute).
  BatchScope scope = batch();
  Future<VertexHandle> f = scope.find(app_id);
  (void)scope.execute();
  if (!f.ok()) return f.status();
  return *f;
}

Status Transaction::delete_vertex(VertexHandle v) {
  auto r = vertex_state(v, /*for_write=*/true);
  if (!r.ok()) return r.status();
  VertexState* st = *r;

  // Remove mirror records from all neighbors (and heavy-edge holders).
  std::vector<EdgeRecord> recs;
  st->view.for_each_edge([&](std::uint32_t, const EdgeRecord& rec) { recs.push_back(rec); });
  for (const auto& rec : recs) {
    if (!rec.heavy.is_null()) {
      auto er = edge_state(EdgeHandle{rec.heavy}, /*for_write=*/true);
      if (er.ok()) (*er)->deleted = true;
      else if (is_transaction_critical(er.status())) return er.status();
    }
    if (rec.neighbor == v.vid) continue;  // self-loop: same holder
    auto nr = vertex_state(VertexHandle{rec.neighbor}, /*for_write=*/true);
    if (!nr.ok()) {
      if (is_transaction_critical(nr.status())) return nr.status();
      continue;  // neighbor already gone
    }
    VertexState* nst = *nr;
    const Dir want = mirror_dir(rec.dir);
    nst->view.for_each_edge([&](std::uint32_t slot, const EdgeRecord& mrec) {
      if (mrec.neighbor == v.vid && mrec.dir == want && mrec.heavy == rec.heavy)
        (void)nst->view.remove_edge(slot);
    });
  }

  st->view.set_valid(false);
  st->deleted = true;
  return Status::kOk;
}

bool Transaction::peek_cached(DPtr vid, std::uint64_t* out) {
  auto it = vcache_.find(vid.raw());
  if (it != vcache_.end()) {
    *out = it->second->view.app_id();
    return true;
  }
  if (cache_enabled()) {
    auto cit = blk_cache_.find(vid.raw());
    if (cit != blk_cache_.end() && cit->second.size() >= 8) {
      self_.counters().cache_hits += 1;
      std::memcpy(out, cit->second.data(), 8);
      return true;
    }
  }
  return false;
}

Result<std::uint64_t> Transaction::peek_app_id(DPtr vid) {
  if (!active_ || failed_) return Status::kTxnAborted;
  std::uint64_t id = 0;
  if (peek_cached(vid, &id)) return id;
  // Miss path stays the minimal 8-byte GET (no population): peeks pay for a
  // whole-block fetch only when a frontier prefetch asked for one.
  if (cache_enabled()) self_.counters().cache_misses += 1;
  db_->blocks().read(self_, vid, 0, &id, 8);
  return id;
}

Result<std::uint64_t> Transaction::app_id_of(VertexHandle v) {
  auto r = vertex_state(v, false);
  if (!r.ok()) return r.status();
  return (*r)->view.app_id();
}

Status Transaction::add_label(VertexHandle v, std::uint32_t label_id) {
  auto r = vertex_state(v, true);
  if (!r.ok()) return r.status();
  VertexState* st = *r;
  if (st->view.has_label(label_id)) return Status::kAlreadyExists;
  if (Status s = ensure_prop_capacity(*st, 16); !ok(s)) return s;
  return st->view.add_label(label_id);
}

Status Transaction::remove_label(VertexHandle v, std::uint32_t label_id) {
  auto r = vertex_state(v, true);
  if (!r.ok()) return r.status();
  return (*r)->view.remove_label(label_id) ? Status::kOk : Status::kNotFound;
}

Result<std::vector<std::uint32_t>> Transaction::labels_of(VertexHandle v) {
  auto r = vertex_state(v, false);
  if (!r.ok()) return r.status();
  return (*r)->view.labels();
}

Status Transaction::add_property(VertexHandle v, std::uint32_t ptype,
                                 const PropValue& value) {
  const PropertyType* def = db_->ptype(self_, ptype);
  if (def == nullptr) return Status::kInvalidArgument;
  if (def->etype == EntityType::kEdge) return Status::kInvalidArgument;
  auto r = vertex_state(v, true);
  if (!r.ok()) return r.status();
  VertexState* st = *r;
  const auto bytes = encode_value(value);
  if (def->stype == SizeType::kFixed && bytes.size() != def->max_size)
    return Status::kConstraintViolated;
  if (def->stype == SizeType::kLimited && bytes.size() > def->max_size)
    return Status::kConstraintViolated;
  if (def->mult == Multiplicity::kSingle && st->view.count_props(ptype) > 0)
    return Status::kConstraintViolated;
  if (Status s = ensure_prop_capacity(*st, static_cast<std::uint32_t>(bytes.size()) + 16);
      !ok(s))
    return s;
  return st->view.add_entry(ptype, bytes);
}

Status Transaction::update_property(VertexHandle v, std::uint32_t ptype,
                                    const PropValue& value) {
  const PropertyType* def = db_->ptype(self_, ptype);
  if (def == nullptr) return Status::kInvalidArgument;
  auto r = vertex_state(v, true);
  if (!r.ok()) return r.status();
  VertexState* st = *r;
  (void)st->view.remove_entries(ptype);
  const auto bytes = encode_value(value);
  if (Status s = ensure_prop_capacity(*st, static_cast<std::uint32_t>(bytes.size()) + 16);
      !ok(s))
    return s;
  return st->view.add_entry(ptype, bytes);
}

Status Transaction::remove_properties(VertexHandle v, std::uint32_t ptype) {
  auto r = vertex_state(v, true);
  if (!r.ok()) return r.status();
  return (*r)->view.remove_entries(ptype) > 0 ? Status::kOk : Status::kNotFound;
}

Status Transaction::remove_all_properties(VertexHandle v) {
  auto r = vertex_state(v, true);
  if (!r.ok()) return r.status();
  VertexState* st = *r;
  for (std::uint32_t pt : st->view.ptypes()) (void)st->view.remove_entries(pt);
  (void)st->view.compact_entries();
  return Status::kOk;
}

Result<std::vector<PropValue>> Transaction::get_properties(VertexHandle v,
                                                           std::uint32_t ptype) {
  const PropertyType* def = db_->ptype(self_, ptype);
  if (def == nullptr) return Status::kInvalidArgument;
  auto r = vertex_state(v, false);
  if (!r.ok()) return r.status();
  std::vector<PropValue> out;
  for (const auto& raw : (*r)->view.get_props(ptype))
    out.push_back(decode_value(def->dtype, raw));
  return out;
}

Result<std::vector<std::uint32_t>> Transaction::ptypes_of(VertexHandle v) {
  auto r = vertex_state(v, false);
  if (!r.ok()) return r.status();
  return (*r)->view.ptypes();
}

// ---------------------------------------------------------------------------
// Edges
// ---------------------------------------------------------------------------

Result<EdgeUid> Transaction::create_edge(VertexHandle origin, VertexHandle target,
                                         Dir dir, std::uint32_t label_id) {
  auto ro = vertex_state(origin, true);
  if (!ro.ok()) return ro.status();
  VertexState* ost = *ro;
  VertexState* tst = ost;
  if (target.vid != origin.vid) {
    auto rt = vertex_state(target, true);
    if (!rt.ok()) return rt.status();
    tst = *rt;
  }

  if (Status s = ensure_edge_capacity(*ost, 1); !ok(s)) return s;
  EdgeRecord rec{target.vid, DPtr{}, label_id, dir, true};
  auto slot = ost->view.add_edge(rec);
  if (!slot.ok()) return slot.status();
  const EdgeUid uid{origin.vid, ost->view.edge_offset(*slot)};

  const bool self_loop_undirected =
      origin.vid == target.vid && dir == Dir::kUndirected;
  if (!self_loop_undirected) {
    if (Status s = ensure_edge_capacity(*tst, 1); !ok(s)) return s;
    EdgeRecord mrec{origin.vid, DPtr{}, label_id, mirror_dir(dir), true};
    auto mslot = tst->view.add_edge(mrec);
    if (!mslot.ok()) return mslot.status();
  }
  return uid;
}

Status Transaction::delete_edge(VertexHandle base, const EdgeUid& uid) {
  if (uid.vertex != base.vid) return Status::kInvalidArgument;
  auto r = vertex_state(base, true);
  if (!r.ok()) return r.status();
  VertexState* st = *r;
  const std::uint32_t slot = st->view.slot_of_offset(uid.offset);
  if (slot >= st->view.edge_slots()) return Status::kNotFound;
  const EdgeRecord rec = st->view.edge_at(slot);
  if (!rec.in_use) return Status::kNotFound;
  (void)st->view.remove_edge(slot);

  if (!rec.heavy.is_null()) {
    auto er = edge_state(EdgeHandle{rec.heavy}, true);
    if (er.ok()) (*er)->deleted = true;
    else if (is_transaction_critical(er.status())) return er.status();
  }

  const bool self_loop_undirected =
      rec.neighbor == base.vid && rec.dir == Dir::kUndirected;
  if (!self_loop_undirected) {
    auto nr = vertex_state(VertexHandle{rec.neighbor}, true);
    if (!nr.ok()) {
      if (is_transaction_critical(nr.status())) return nr.status();
      return Status::kOk;  // neighbor vanished; nothing to mirror-remove
    }
    VertexState* nst = *nr;
    const Dir want = mirror_dir(rec.dir);
    bool removed = false;
    nst->view.for_each_edge([&](std::uint32_t s, const EdgeRecord& mrec) {
      if (!removed && mrec.neighbor == base.vid && mrec.dir == want &&
          mrec.heavy == rec.heavy && mrec.label_id == rec.label_id) {
        (void)nst->view.remove_edge(s);
        removed = true;
      }
    });
  }
  return Status::kOk;
}

Result<std::vector<EdgeDesc>> Transaction::edges_of(VertexHandle v, DirFilter f,
                                                    const Constraint* c) {
  // One-op wrapper over the async surface.
  BatchScope scope = batch();
  Future<std::vector<EdgeDesc>> fut = scope.edges_of(v, f, c);
  (void)scope.execute();
  if (!fut.ok()) return fut.status();
  return *fut;
}

Result<std::vector<EdgeDesc>> Transaction::edges_of_impl(VertexHandle v, DirFilter f,
                                                         const Constraint* c) {
  auto r = vertex_state(v, false);
  if (!r.ok()) return r.status();
  VertexState* st = *r;
  std::vector<EdgeDesc> out;
  Status deferred = Status::kOk;
  st->view.for_each_edge([&](std::uint32_t slot, const EdgeRecord& rec) {
    if (!dir_matches(f, rec.dir)) return;
    if (c != nullptr && !c->empty()) {
      if (rec.heavy.is_null()) {
        if (!c->matches_lw_edge(rec.label_id)) return;
      } else {
        auto er = edge_state(EdgeHandle{rec.heavy}, false);
        if (!er.ok()) {
          if (is_transaction_critical(er.status())) deferred = er.status();
          return;
        }
        if (!c->matches((*er)->view)) return;
      }
    }
    out.push_back(EdgeDesc{EdgeUid{v.vid, st->view.edge_offset(slot)}, rec.neighbor,
                           rec.dir, rec.label_id, rec.heavy});
  });
  if (!ok(deferred)) return deferred;
  return out;
}

Result<std::vector<DPtr>> Transaction::neighbors_of(VertexHandle v, DirFilter f,
                                                    const Constraint* c) {
  auto edges = edges_of(v, f, c);
  if (!edges.ok()) return edges.status();
  std::vector<DPtr> out;
  out.reserve(edges->size());
  for (const auto& e : *edges) out.push_back(e.neighbor);
  return out;
}

Result<std::size_t> Transaction::count_edges(VertexHandle v, DirFilter f) {
  auto r = vertex_state(v, false);
  if (!r.ok()) return r.status();
  std::size_t n = 0;
  (*r)->view.for_each_edge([&](std::uint32_t, const EdgeRecord& rec) {
    if (dir_matches(f, rec.dir)) ++n;
  });
  return n;
}

// ---------------------------------------------------------------------------
// Heavy edges
// ---------------------------------------------------------------------------

Result<EdgeHandle> Transaction::create_heavy_edge(VertexHandle origin,
                                                  VertexHandle target, Dir dir) {
  if (!active_ || failed_) return Status::kTxnAborted;
  if (Status s = check_writable(); !ok(s)) return fail(s);
  auto& blocks = db_->blocks();
  const DPtr eid = blocks.acquire(self_, origin.vid.rank());
  if (eid.is_null()) return fail(Status::kOutOfMemory);
  blk_cache_.erase(eid.raw());
  scache_invalidate(eid);
  if (!blocks.try_write_lock(self_, eid)) {
    blocks.release(self_, eid);
    return fail(Status::kTxnConflict);
  }
  if (db_->config().wal) wal_rec_.acquire(eid);
  auto st = std::make_unique<EdgeState>();
  st->created = true;
  st->lock = LockState::kWrite;
  layout::EdgeView::init(st->buf, origin.vid, target.vid, blocks.block_size());
  st->view.set_num_blocks(1);
  st->view.set_block_addr(0, eid);
  ecache_.emplace(eid.raw(), std::move(st));

  // Anchor records in both endpoint holders point at the heavy holder.
  auto ro = vertex_state(origin, true);
  if (!ro.ok()) return ro.status();
  VertexState* ost = *ro;
  VertexState* tst = ost;
  if (target.vid != origin.vid) {
    auto rt = vertex_state(target, true);
    if (!rt.ok()) return rt.status();
    tst = *rt;
  }
  if (Status s = ensure_edge_capacity(*ost, 1); !ok(s)) return s;
  auto slot = ost->view.add_edge(EdgeRecord{target.vid, eid, 0, dir, true});
  if (!slot.ok()) return slot.status();
  const bool self_loop_undirected =
      origin.vid == target.vid && dir == Dir::kUndirected;
  if (!self_loop_undirected) {
    if (Status s = ensure_edge_capacity(*tst, 1); !ok(s)) return s;
    auto mslot = tst->view.add_edge(EdgeRecord{origin.vid, eid, 0, mirror_dir(dir), true});
    if (!mslot.ok()) return mslot.status();
  }
  return EdgeHandle{eid};
}

Result<EdgeHandle> Transaction::associate_edge(DPtr eid) {
  auto r = edge_state(EdgeHandle{eid}, false);
  if (!r.ok()) return r.status();
  return EdgeHandle{eid};
}

Result<std::pair<DPtr, DPtr>> Transaction::edge_endpoints(EdgeHandle e) {
  auto r = edge_state(e, false);
  if (!r.ok()) return r.status();
  return std::make_pair((*r)->view.origin(), (*r)->view.target());
}

Status Transaction::add_edge_label(EdgeHandle e, std::uint32_t label_id) {
  auto r = edge_state(e, true);
  if (!r.ok()) return r.status();
  EdgeState* st = *r;
  if (st->view.has_label(label_id)) return Status::kAlreadyExists;
  if (Status s = ensure_edge_prop_capacity(*st, 16); !ok(s)) return s;
  return st->view.add_label(label_id);
}

Status Transaction::remove_edge_label(EdgeHandle e, std::uint32_t label_id) {
  auto r = edge_state(e, true);
  if (!r.ok()) return r.status();
  return (*r)->view.remove_label(label_id) ? Status::kOk : Status::kNotFound;
}

Result<std::vector<std::uint32_t>> Transaction::edge_labels_of(EdgeHandle e) {
  auto r = edge_state(e, false);
  if (!r.ok()) return r.status();
  return (*r)->view.labels();
}

Status Transaction::add_edge_property(EdgeHandle e, std::uint32_t ptype,
                                      const PropValue& value) {
  const PropertyType* def = db_->ptype(self_, ptype);
  if (def == nullptr) return Status::kInvalidArgument;
  if (def->etype == EntityType::kVertex) return Status::kInvalidArgument;
  auto r = edge_state(e, true);
  if (!r.ok()) return r.status();
  EdgeState* st = *r;
  const auto bytes = encode_value(value);
  if (def->stype == SizeType::kFixed && bytes.size() != def->max_size)
    return Status::kConstraintViolated;
  if (def->stype == SizeType::kLimited && bytes.size() > def->max_size)
    return Status::kConstraintViolated;
  if (def->mult == Multiplicity::kSingle) {
    int n = 0;
    st->view.for_each_entry([&](std::uint32_t id, auto) {
      if (id == ptype) ++n;
    });
    if (n > 0) return Status::kConstraintViolated;
  }
  if (Status s = ensure_edge_prop_capacity(*st, static_cast<std::uint32_t>(bytes.size()) + 16);
      !ok(s))
    return s;
  return st->view.add_entry(ptype, bytes);
}

Status Transaction::update_edge_property(EdgeHandle e, std::uint32_t ptype,
                                         const PropValue& value) {
  const PropertyType* def = db_->ptype(self_, ptype);
  if (def == nullptr) return Status::kInvalidArgument;
  auto r = edge_state(e, true);
  if (!r.ok()) return r.status();
  EdgeState* st = *r;
  (void)st->view.remove_entries(ptype);
  const auto bytes = encode_value(value);
  if (Status s = ensure_edge_prop_capacity(*st, static_cast<std::uint32_t>(bytes.size()) + 16);
      !ok(s))
    return s;
  return st->view.add_entry(ptype, bytes);
}

Result<std::vector<PropValue>> Transaction::get_edge_properties(EdgeHandle e,
                                                                std::uint32_t ptype) {
  const PropertyType* def = db_->ptype(self_, ptype);
  if (def == nullptr) return Status::kInvalidArgument;
  auto r = edge_state(e, false);
  if (!r.ok()) return r.status();
  std::vector<PropValue> out;
  for (const auto& raw : (*r)->view.get_props(ptype))
    out.push_back(decode_value(def->dtype, raw));
  return out;
}

// ---------------------------------------------------------------------------
// Indexes
// ---------------------------------------------------------------------------

Result<std::vector<DPtr>> Transaction::local_index_vertices(Index& idx,
                                                            const Constraint* c) {
  if (!active_ || failed_) return Status::kTxnAborted;
  // Batch-fetch the whole candidate shard through the shared lock/fetch path:
  // overlapped lock CAS rounds + two overlapped block batches instead of one
  // serial lock + GET per candidate.
  std::vector<FetchSpec> specs;
  std::unordered_map<std::uint64_t, bool> seen;  // dedup stale duplicates
  for (DPtr cand : idx.candidates(self_, static_cast<std::uint32_t>(self_.id()))) {
    if (seen.contains(cand.raw())) continue;
    seen.emplace(cand.raw(), true);
    specs.push_back(FetchSpec{cand, /*write=*/false, /*required=*/true});
  }
  std::vector<Status> per(specs.size(), Status::kOk);
  if (Status s = fetch_vertices_batch(specs, per); !ok(s)) return s;
  std::vector<DPtr> out;
  for (std::size_t j = 0; j < specs.size(); ++j) {
    if (!ok(per[j])) continue;  // stale entry (deleted vertex)
    VertexState* st = vcache_.find(specs[j].vid.raw())->second.get();
    if (st->deleted) continue;
    if (!idx.matches(st->view)) continue;  // stale entry (re-labeled vertex)
    if (c != nullptr && !c->matches(st->view)) continue;
    out.push_back(specs[j].vid);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Capacity management
// ---------------------------------------------------------------------------

Status Transaction::ensure_edge_capacity(VertexState& st, std::uint32_t extra) {
  auto& v = st.view;
  const std::uint32_t free_slots = v.edge_capacity() - v.live_edge_count();
  if (free_slots >= extra) return Status::kOk;
  const std::size_t B = db_->config().block.block_size;
  const std::uint32_t new_edge_cap =
      std::max({v.edge_capacity() * 2, v.edge_capacity() + extra, 8u});
  // Fixed-point for the table capacity: more blocks need a bigger table,
  // which itself needs more space.
  std::uint32_t tcap = std::max(v.table_capacity(), v.num_blocks());
  for (int i = 0; i < 4; ++i) {
    const std::size_t total =
        layout::VertexView::required_size(tcap, new_edge_cap, v.prop_capacity());
    const auto blocks_needed = static_cast<std::uint32_t>(div_up(total, B));
    if (blocks_needed <= tcap) break;
    tcap = blocks_needed;
  }
  if (tcap > max_table_cap()) return Status::kNoSpace;  // degree limit reached
  return v.reshape(tcap, new_edge_cap, v.prop_capacity());
}

Status Transaction::ensure_prop_capacity(VertexState& st, std::uint32_t extra) {
  auto& v = st.view;
  if (v.prop_capacity() - v.prop_used() >= extra + 8) return Status::kOk;
  const std::size_t B = db_->config().block.block_size;
  const std::uint32_t new_prop_cap =
      std::max({v.prop_capacity() * 2, v.prop_used() + extra + 16, 64u});
  std::uint32_t tcap = std::max(v.table_capacity(), v.num_blocks());
  for (int i = 0; i < 4; ++i) {
    const std::size_t total =
        layout::VertexView::required_size(tcap, v.edge_capacity(), new_prop_cap);
    const auto blocks_needed = static_cast<std::uint32_t>(div_up(total, B));
    if (blocks_needed <= tcap) break;
    tcap = blocks_needed;
  }
  if (tcap > max_table_cap()) return Status::kNoSpace;
  return v.reshape(tcap, v.edge_capacity(), new_prop_cap);
}

Status Transaction::ensure_edge_prop_capacity(EdgeState& st, std::uint32_t extra) {
  auto& v = st.view;
  if (v.prop_capacity() - v.prop_used() >= extra + 8) return Status::kOk;
  const std::size_t B = db_->config().block.block_size;
  const std::uint32_t new_prop_cap =
      std::max({v.prop_capacity() * 2, v.prop_used() + extra + 16, 64u});
  const std::size_t total = layout::EdgeView::required_size(new_prop_cap);
  if (div_up(total, B) > layout::EdgeView::kMaxBlocks) return Status::kNoSpace;
  return v.reshape(new_prop_cap);
}

// ---------------------------------------------------------------------------
// Commit / abort
// ---------------------------------------------------------------------------

Status Transaction::sync_blocks_vertex(DPtr vid, VertexState& st) {
  auto& blocks = db_->blocks();
  const std::size_t B = blocks.block_size();
  const auto needed = static_cast<std::uint32_t>(div_up(st.buf.size(), B));
  const std::uint32_t cur = st.view.num_blocks();
  if (needed > st.view.table_capacity()) return Status::kOutOfMemory;
  for (std::uint32_t i = cur; i < needed; ++i) {
    // Prefer the vertex's own rank; spill round-robin when its pool is full
    // (blocks of one holder may live on different processes, paper 5.3).
    DPtr blk;
    for (int attempt = 0; attempt < db_->nranks() && blk.is_null(); ++attempt) {
      blk = blocks.acquire(
          self_, (vid.rank() + static_cast<std::uint32_t>(attempt)) %
                     static_cast<std::uint32_t>(db_->nranks()));
    }
    if (blk.is_null()) return Status::kOutOfMemory;
    if (db_->config().wal) wal_rec_.acquire(blk);
    blk_cache_.erase(blk.raw());
    scache_invalidate(blk);
    st.view.set_block_addr(i, blk);
  }
  for (std::uint32_t i = needed; i < cur; ++i)
    shrink_release_.push_back(st.view.block_addr(i));  // recycled in phase 5
  if (needed != cur) st.view.set_num_blocks(needed);
  return Status::kOk;
}

Status Transaction::sync_blocks_edge(DPtr eid, EdgeState& st) {
  auto& blocks = db_->blocks();
  const std::size_t B = blocks.block_size();
  const auto needed = static_cast<std::uint32_t>(div_up(st.buf.size(), B));
  const std::uint32_t cur = st.view.num_blocks();
  if (needed > layout::EdgeView::kMaxBlocks) return Status::kOutOfMemory;
  for (std::uint32_t i = cur; i < needed; ++i) {
    DPtr blk;
    for (int attempt = 0; attempt < db_->nranks() && blk.is_null(); ++attempt) {
      blk = blocks.acquire(
          self_, (eid.rank() + static_cast<std::uint32_t>(attempt)) %
                     static_cast<std::uint32_t>(db_->nranks()));
    }
    if (blk.is_null()) return Status::kOutOfMemory;
    if (db_->config().wal) wal_rec_.acquire(blk);
    st.view.set_block_addr(i, blk);
  }
  for (std::uint32_t i = needed; i < cur; ++i)
    shrink_release_.push_back(st.view.block_addr(i));  // recycled in phase 5
  if (needed != cur) st.view.set_num_blocks(needed);
  return Status::kOk;
}

Status Transaction::writeback_vertex(DPtr vid, VertexState& st) {
  // The window bytes change now: no shared snapshot of this holder survives
  // (remote copies die via the version bump at write_unlock).
  scache_invalidate(vid);
  auto& blocks = db_->blocks();
  const std::size_t B = blocks.block_size();
  const std::size_t total = st.buf.size();
  // Convert the (up to two) dirty byte ranges into a dirty block set and
  // write back only those blocks (paper 5.6: tracking of dirty blocks).
  std::array<std::pair<std::size_t, std::size_t>, 2> spans{};  // [b0, b1)
  if (st.created) {
    spans[0] = {0, div_up(total, B)};
  } else {
    const auto ranges = st.view.dirty_ranges();
    for (std::size_t i = 0; i < 2; ++i) {
      if (ranges[i].empty()) continue;
      const std::size_t hi = std::min(ranges[i].hi, total);
      if (ranges[i].lo >= hi) continue;
      spans[i] = {ranges[i].lo / B, div_up(hi, B)};
    }
    if (spans[1].second > spans[1].first && spans[0].second > spans[0].first &&
        spans[1].first < spans[0].second && spans[0].first < spans[1].second) {
      // Overlapping block spans: merge to avoid writing a block twice.
      spans[0] = {std::min(spans[0].first, spans[1].first),
                  std::max(spans[0].second, spans[1].second)};
      spans[1] = {0, 0};
    }
  }
  // Dirty blocks ride the nonblocking engine: commit_local completes every
  // holder's PUTs with one flush_all instead of one flush per holder.
  bool wrote = false;
  for (const auto& [b0, b1] : spans) {
    for (std::size_t b = b0; b < b1 && b < st.view.num_blocks(); ++b) {
      const DPtr blk = b == 0 ? vid : st.view.block_addr(b);
      if (blk.rank() != vid.rank()) wb_cross_rank_ = true;  // spilled block
      const std::size_t off = b * B;
      const std::size_t n = std::min(B, total - off);
      if (db_->config().wal)
        wal_rec_.image(blk, 0, std::span<const std::byte>(st.buf.data() + off, n));
      if (batching_enabled()) blocks.write_nb(self_, blk, 0, st.buf.data() + off, n);
      else blocks.write(self_, blk, 0, st.buf.data() + off, n);
      wrote = true;
    }
  }
  if (wrote && !batching_enabled()) blocks.flush(self_, vid.rank());
  st.view.reset_dirty();
  return Status::kOk;
}

Status Transaction::writeback_edge(DPtr eid, EdgeState& st) {
  scache_invalidate(eid);
  auto& blocks = db_->blocks();
  const std::size_t B = blocks.block_size();
  const std::size_t total = st.buf.size();
  std::size_t lo = st.created ? 0 : st.view.dirty_lo();
  std::size_t hi = st.created ? total : std::min(st.view.dirty_hi(), total);
  if (lo >= hi) return Status::kOk;
  const std::size_t b0 = lo / B;
  const std::size_t b1 = div_up(hi, B);
  for (std::size_t b = b0; b < b1 && b < st.view.num_blocks(); ++b) {
    const DPtr blk = b == 0 ? eid : st.view.block_addr(b);
    if (blk.rank() != eid.rank()) wb_cross_rank_ = true;  // spilled block
    const std::size_t off = b * B;
    const std::size_t n = std::min(B, total - off);
    if (db_->config().wal)
      wal_rec_.image(blk, 0, std::span<const std::byte>(st.buf.data() + off, n));
    if (batching_enabled()) blocks.write_nb(self_, blk, 0, st.buf.data() + off, n);
    else blocks.write(self_, blk, 0, st.buf.data() + off, n);
  }
  if (!batching_enabled()) blocks.flush(self_, eid.rank());
  st.view.reset_dirty();
  return Status::kOk;
}

void Transaction::release_locks(bool write_through) {
  // With batching on, unlocks ride the nonblocking engine fire-and-forget:
  // no agent observes *our* completion (a racing CAS that lands before an
  // unlock just retries), so the round's cost is absorbed by whichever
  // completion point comes next instead of paying one serial latency per
  // held lock -- the last serial leg of the read hot path. Writeback PUTs
  // either were flushed before this point or target the same rank as the
  // lock word they precede (commit_local's pipeline eligibility rule), so a
  // write unlock never overtakes its data (the RDMA same-destination
  // ordering a real backend needs too).
  //
  // Write-through (commit only): a write unlock fetches the word it
  // released, and the committed holder bytes -- which the write bit proves
  // no other agent could touch since the writeback -- are re-stamped into
  // the shared cache under the fetched post-unlock version. The rank's own
  // write set thus survives its own commits instead of going cold.
  const bool nb = batching_enabled();
  const bool wt = write_through && db_->config().scache_write_through &&
                  scache() != nullptr;
  auto& blocks = db_->blocks();
  for (auto& [raw, st] : vcache_) {
    const DPtr vid{raw};
    if (st->lock == LockState::kWrite) {
      if (wt && !st->deleted) {
        const std::uint64_t v = blocks.write_unlock_fetch(self_, vid, nb);
        scache_restamp(vid, st->buf, v, /*is_edge=*/false);
      } else {
        nb ? blocks.write_unlock_nb(self_, vid) : blocks.write_unlock(self_, vid);
      }
    }
    if (st->lock == LockState::kRead)
      nb ? blocks.read_unlock_nb(self_, vid) : blocks.read_unlock(self_, vid);
    st->lock = LockState::kNone;
  }
  for (auto& [raw, st] : ecache_) {
    const DPtr eid{raw};
    if (st->lock == LockState::kWrite) {
      if (wt && !st->deleted) {
        const std::uint64_t v = blocks.write_unlock_fetch(self_, eid, nb);
        scache_restamp(eid, st->buf, v, /*is_edge=*/true);
      } else {
        nb ? blocks.write_unlock_nb(self_, eid) : blocks.write_unlock(self_, eid);
      }
    }
    if (st->lock == LockState::kRead)
      nb ? blocks.read_unlock_nb(self_, eid) : blocks.read_unlock(self_, eid);
    st->lock = LockState::kNone;
  }
}

Status Transaction::commit_local() {
  wb_cross_rank_ = false;
  const std::uint64_t wb_bytes_before = self_.counters().bytes_put;

  // Phase 1: make physical block allocation match every buffered holder.
  for (auto& [raw, st] : vcache_) {
    if (st->deleted) continue;
    if (st->lock != LockState::kWrite && !st->created) continue;
    if (!st->created && !st->view.is_dirty()) continue;
    if (Status s = sync_blocks_vertex(DPtr{raw}, *st); !ok(s)) {
      failed_ = true;
      abort();
      return s;
    }
  }
  for (auto& [raw, st] : ecache_) {
    if (st->deleted) continue;
    if (st->lock != LockState::kWrite && !st->created) continue;
    if (!st->created && !st->view.is_dirty()) continue;
    if (Status s = sync_blocks_edge(DPtr{raw}, *st); !ok(s)) {
      failed_ = true;
      abort();
      return s;
    }
  }

  // Phase 2: write back dirty blocks ("all dirty blocks or none", paper 5.6).
  for (auto& [raw, st] : vcache_) {
    if (st->deleted) continue;
    if (st->created || st->view.is_dirty()) (void)writeback_vertex(DPtr{raw}, *st);
  }
  for (auto& [raw, st] : ecache_) {
    if (st->deleted) continue;
    if (st->created || st->view.is_dirty()) (void)writeback_edge(DPtr{raw}, *st);
  }

  // Phase 3: deleted holders -- publish the invalid header so racing readers
  // observe deletion, then remember the blocks for post-unlock release.
  std::vector<DPtr> to_release;
  auto& blocks = db_->blocks();
  const std::size_t B = blocks.block_size();
  for (auto& [raw, st] : vcache_) {
    if (!st->deleted) continue;
    const DPtr vid{raw};
    scache_invalidate(vid);
    if (!st->created) {
      if (db_->config().wal)
        wal_rec_.image(vid, 0, std::span<const std::byte>(st->buf.data(),
                                                          std::min(B, st->buf.size())));
      if (batching_enabled()) {
        blocks.write_nb(self_, vid, 0, st->buf.data(),
                        std::min(B, st->buf.size()));  // header now invalid
      } else {
        blocks.write(self_, vid, 0, st->buf.data(), std::min(B, st->buf.size()));
        blocks.flush(self_, vid.rank());
      }
    }
    for (std::uint32_t i = 0; i < st->view.num_blocks(); ++i)
      to_release.push_back(i == 0 ? vid : st->view.block_addr(i));
  }
  for (auto& [raw, st] : ecache_) {
    if (!st->deleted) continue;
    const DPtr eid{raw};
    scache_invalidate(eid);
    if (!st->created) {
      std::uint32_t zero = 0;
      if (db_->config().wal)
        wal_rec_.image(eid, 16,
                       std::span<const std::byte>(
                           reinterpret_cast<const std::byte*>(&zero), 4));
      if (batching_enabled()) {
        blocks.write_nb(self_, eid, 16, &zero, 4);  // clear the valid flag
      } else {
        blocks.write(self_, eid, 16, &zero, 4);
        blocks.flush(self_, eid.rank());
      }
    }
    for (std::uint32_t i = 0; i < st->view.num_blocks(); ++i)
      to_release.push_back(i == 0 ? eid : st->view.block_addr(i));
  }
  // Writeback completion. The pre-pipeline contract: every dirty-block and
  // deletion PUT issued above (phases 2-3) completes here with a single
  // overlapped flush before anything publishes and before locks release.
  // *Eligible* commits instead defer that fence into the rank's group-commit
  // pipeline: the epoch-close flush (or any earlier completion point)
  // absorbs a whole stream of commits' PUTs and unlock FAAs at one
  // overlapped cost. Eligibility (see commit_pipeline.hpp for the ordering
  // argument): local scope, no DHT publications (creates make holders
  // reachable by ranks that never touch our locks), no deletions (released
  // blocks may be rewritten by their next owner), and no dirty block on a
  // rank other than its holder's lock rank (same-destination NIC ordering is
  // what lets the unlock trail its writeback).
  // Only commits that actually issued writeback have a fence to defer:
  // read-only (and clean write-locked) commits keep their pre-pipeline
  // shape -- no flush, unlock FAAs fire-and-forget -- and must not consume
  // epoch slots or drag epoch-close fences into read streams.
  const std::uint64_t wb_bytes = self_.counters().bytes_put - wb_bytes_before;
  CommitPipeline* pipeline = db_->commit_pipeline(self_);
  bool defer = pipeline != nullptr && batching_enabled() && wb_bytes > 0 &&
               scope_ == TxnScope::kLocal && to_release.empty() &&
               shrink_release_.empty() && !wb_cross_rank_;
  if (defer) {
    for (auto& [raw, st] : vcache_) {
      if (st->created && !st->deleted) {
        defer = false;  // publishes to the DHT below
        break;
      }
    }
  }
  // The eager flush fences *this commit's* work (its writeback, any
  // recycling -- deletion's or a shrink's: a freed block's next owner may
  // rewrite it, so no PUT to it, ours or an open epoch's, may remain in
  // flight -- and, kept conservatively, any collective commit's
  // barrier-visible state). A commit with nothing of its own to fence must
  // not flush: the rank's pending queue may hold another commit's open
  // flush epoch, and a read-only commit force-closing it would undo the
  // amortization on every mixed read/write stream.
  const bool must_fence = wb_bytes > 0 || !to_release.empty() ||
                          !shrink_release_.empty() ||
                          scope_ == TxnScope::kCollective;
  if (batching_enabled() && self_.pending_nb_ops() > 0 && !defer && must_fence)
    (void)self_.flush_all();

  // Phase 4: internal DHT index (app id -> DPtr) and explicit indexes. All
  // created vertices publish through one insert_many (overlapped field
  // writes + head-CAS rounds) instead of one insert latency chain each.
  auto& dht = db_->id_index();
  std::vector<std::uint64_t> pub_keys, pub_vals;
  for (auto& [raw, st] : vcache_) {
    if (st->created && !st->deleted) {
      pub_keys.push_back(st->view.app_id());
      pub_vals.push_back(raw);
    } else if (st->deleted && !st->created) {
      if (db_->config().wal) wal_rec_.dht_erase(st->view.app_id());
      (void)dht.erase(self_, st->view.app_id());
    }
  }
  if (!pub_keys.empty()) {
    std::vector<std::uint8_t> pub_ok;
    if (batching_enabled() && pub_keys.size() > 1) {
      pub_ok = dht.insert_many(self_, pub_keys, pub_vals);
    } else {
      pub_ok.assign(pub_keys.size(), 0);
      for (std::size_t i = 0; i < pub_keys.size(); ++i) {
        if (!dht.insert(self_, pub_keys[i], pub_vals[i])) break;
        pub_ok[i] = 1;
      }
    }
    bool pub_failed = false;
    for (std::uint8_t okf : pub_ok) pub_failed = pub_failed || okf == 0;
    if (pub_failed) {
      // Partial publication must not leak translations to released blocks.
      for (std::size_t i = 0; i < pub_keys.size(); ++i)
        if (pub_ok[i]) (void)dht.erase(self_, pub_keys[i]);
      // Shrink-shed blocks must still recycle on this exit: their shrunk
      // headers were written back and fenced above, so nothing references
      // them -- and abort() below must not do it (it also serves
      // pre-writeback failures, where the window holders still do).
      for (DPtr blk : shrink_release_) blocks.release(self_, blk);
      shrink_release_.clear();
      failed_ = true;
      abort();
      return Status::kOutOfMemory;
    }
    if (db_->config().wal)
      for (std::size_t i = 0; i < pub_keys.size(); ++i)
        wal_rec_.dht_insert(pub_keys[i], pub_vals[i]);
  }
  const auto& indexes = db_->indexes();
  for (auto& [raw, st] : vcache_) {
    if (st->deleted) continue;
    if (st->lock != LockState::kWrite && !st->created) continue;
    const DPtr vid{raw};
    for (std::size_t i = 0; i < indexes.size(); ++i) {
      const bool was = i < st->orig_index_match.size() && st->orig_index_match[i] != 0;
      if (!was && indexes[i]->matches(st->view))
        (void)indexes[i]->append(self_, vid.rank(), vid);
    }
  }

  // Write-ahead point: the redo record -- acquires logged as they happened,
  // the images/DHT intents above, plus the version bumps and block releases
  // the lines below are about to perform -- hits the rank's log *before* the
  // unlock FAAs make any of it observable. Recovery re-executes the record
  // in this order, which reproduces allocator and lock-word state exactly
  // (see README "Durability protocol").
  wal::WalWriter* walw = db_->wal(self_);
  bool wal_appended = false;
  if (walw != nullptr && !wal_rec_.empty()) {
    for (auto& [raw, st] : vcache_)
      if (st->lock == LockState::kWrite) wal_rec_.lock_bump(DPtr{raw});
    for (auto& [raw, st] : ecache_)
      if (st->lock == LockState::kWrite) wal_rec_.lock_bump(DPtr{raw});
    for (DPtr blk : to_release) wal_rec_.release(blk);
    for (DPtr blk : shrink_release_) wal_rec_.release(blk);
    // Networked tenants: the acknowledgement the client will receive rides
    // the same durable record as the commit itself, so a crash between
    // durability and reply transmission recovers the reply (exactly-once
    // across restarts; see Listener::restore_completion).
    if (ack_tenant_ != 0)
      wal_rec_.tenant_ack(ack_tenant_, ack_tag_,
                          static_cast<std::uint8_t>(ack_status_), ack_v0_,
                          ack_v1_);
    wal_appended = walw->append(self_, wal_rec_) != 0;
    wal_rec_.clear();
    // Fold the ack into the listener's replay state now, before the seal
    // points below: a checkpoint is always cut at a seal, so folding here
    // guarantees its trailer covers every ack of every commit in its image
    // (harvest-time folding alone leaves a commit-to-harvest window a
    // checkpoint could split, stranding the ack in a truncated epoch).
    if (wal_appended && ack_tenant_ != 0)
      db_->net_ack_durable(self_, ack_tenant_, ack_tag_, ack_status_, ack_v0_,
                           ack_v1_);
  }

  // Phase 5: unlock (write-through re-stamps ride the fetch-flavored
  // unlocks), then recycle deleted holders' and shrink-shed blocks (both
  // unreferenced since the fenced phase-2/3 writeback; shed tails carry no
  // held lock words -- only primaries are locked -- so release order with
  // the unlocks is free).
  release_locks(/*write_through=*/true);
  for (DPtr blk : to_release) blocks.release(self_, blk);
  for (DPtr blk : shrink_release_) blocks.release(self_, blk);
  shrink_release_.clear();

  // The commit is logically complete once its unlocks are issued; mark the
  // transaction finished *before* the seal points below, whose armed kill
  // switches may throw FaultKill -- the destructor must not re-abort (and
  // double-release) a committed transaction during that unwind.
  blk_cache_.clear();  // cache lifetime ends with the transaction
  active_ = false;

  // Deferred commits enroll in the shared flush epoch *after* their unlocks
  // are issued, so the epoch-close flush fences the whole commit -- PUTs and
  // unlock round together.
  if (defer) (void)pipeline->enroll(self_, wb_bytes);

  // Durability unit = flush epoch. Deferred commits ride the pipeline's
  // close hook (sealed when their epoch closes); everything else seals its
  // log epoch now -- the commit's visibility fence already ran above.
  if (wal_appended && !defer) db_->wal_epoch_close(self_);

  return Status::kOk;
}

Status Transaction::commit() {
  if (!active_) return Status::kTxnAborted;
  if (scope_ == TxnScope::kCollective) {
    // Commit-time agreement: if any rank's local part failed, all abort.
    const bool any_fail = self_.allreduce_or(failed_);
    if (any_fail) {
      abort();
      self_.barrier();
      return failed_ ? Status::kTxnConflict : Status::kTxnAborted;
    }
    const Status s = commit_local();
    self_.barrier();
    return s;
  }
  if (failed_) {
    abort();
    return Status::kTxnConflict;
  }
  return commit_local();
}

void Transaction::abort() {
  if (!active_) return;
  // No write-through on abort: the buffered holder bytes diverged from the
  // window the moment the first write op ran; only the version bump is real.
  release_locks(/*write_through=*/false);
  auto& blocks = db_->blocks();
  // Created holders never became visible; return their blocks.
  for (auto& [raw, st] : vcache_) {
    if (!st->created) continue;
    const DPtr vid{raw};
    for (std::uint32_t i = 0; i < st->view.num_blocks(); ++i)
      blocks.release(self_, i == 0 ? vid : st->view.block_addr(i));
  }
  for (auto& [raw, st] : ecache_) {
    if (!st->created) continue;
    const DPtr eid{raw};
    for (std::uint32_t i = 0; i < st->view.num_blocks(); ++i)
      blocks.release(self_, i == 0 ? eid : st->view.block_addr(i));
  }
  // Shrink-shed blocks are NOT released: their writeback never ran, so the
  // window holders still reference them (releasing would hand live blocks
  // to the allocator -- the pre-pipeline code had exactly that bug).
  shrink_release_.clear();
  // Nothing this transaction did becomes durable (the byte-equality contract
  // covers no-abort streams: an abort's lock-version bumps and block
  // pop/push cycles are real but unlogged).
  wal_rec_.clear();
  vcache_.clear();
  ecache_.clear();
  created_ids_.clear();
  blk_cache_.clear();
  active_ = false;
}

}  // namespace gdi
