// GDI transactions (paper Sections 3.3-3.5, 5.6).
//
// A Transaction provides serializable CRUD over graph data. Design follows
// the paper's GDA implementation:
//  * all changes are buffered locally (cached holder buffers) and become
//    visible only at commit, when dirty blocks are written back with PUTs;
//  * ACI is enforced with two-phase reader/writer locking on each vertex's
//    primary block (one lock word per vertex, paper Section 5.6). Lock
//    acquisition is bounded-retry: failure raises a *transaction critical*
//    error (kTxnConflict) and the whole transaction is doomed -- GDI offers
//    no retry-inside-a-transaction, the user starts a new one (Section 3.3);
//  * per-transaction bookkeeping uses hashmaps keyed by internal IDs plus
//    vectors of dirty state, giving O(1) amortized tracking (the paper's
//    "fast intra-transaction block management" design choice);
//  * local transactions involve one calling process; collective transactions
//    are entered and committed by all ranks, with a commit-time agreement
//    allreduce (any failed rank aborts everyone).
//
// Transaction modes:
//  * kRead        -- read-only, takes read locks (serializable);
//  * kReadShared  -- read-only, lock-free; the paper's optimized read-only
//                    transaction that assumes no concurrent writer (used for
//                    large OLAP scans);
//  * kWrite       -- read/write; reads take read locks, first write to a
//                    vertex upgrades to (or directly takes) the write lock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/dptr.hpp"
#include "common/status.hpp"
#include "common/value.hpp"
#include "gdi/constraint.hpp"
#include "gdi/database.hpp"
#include "layout/holder.hpp"

namespace gdi {

class BatchScope;

enum class TxnMode : std::uint8_t { kRead = 0, kReadShared, kWrite };
enum class TxnScope : std::uint8_t { kLocal = 0, kCollective };

/// Opaque per-process access object for a vertex (paper Section 3.5).
struct VertexHandle {
  DPtr vid;
  [[nodiscard]] bool valid() const { return !vid.is_null(); }
  friend constexpr auto operator<=>(const VertexHandle&, const VertexHandle&) = default;
};

/// Opaque per-process access object for a heavy edge's holder.
struct EdgeHandle {
  DPtr eid;
  [[nodiscard]] bool valid() const { return !eid.is_null(); }
  friend constexpr auto operator<=>(const EdgeHandle&, const EdgeHandle&) = default;
};

/// Direction filter for edge/neighbor retrieval (GDI_EDGE_* constants).
enum class DirFilter : std::uint8_t {
  kOut = 0,       ///< directed, this vertex is the origin
  kIn,            ///< directed, this vertex is the target
  kUndirected,    ///< undirected edges only
  kOutgoing,      ///< kOut + kUndirected (traversal "forward")
  kIncoming,      ///< kIn + kUndirected
  kAll,
};

[[nodiscard]] inline bool dir_matches(DirFilter f, layout::Dir d) {
  switch (f) {
    case DirFilter::kOut: return d == layout::Dir::kOut;
    case DirFilter::kIn: return d == layout::Dir::kIn;
    case DirFilter::kUndirected: return d == layout::Dir::kUndirected;
    case DirFilter::kOutgoing:
      return d == layout::Dir::kOut || d == layout::Dir::kUndirected;
    case DirFilter::kIncoming:
      return d == layout::Dir::kIn || d == layout::Dir::kUndirected;
    case DirFilter::kAll: return true;
  }
  return false;
}

/// One retrieved edge, as seen from the base vertex it was read from.
struct EdgeDesc {
  EdgeUid uid;
  DPtr neighbor;
  layout::Dir dir = layout::Dir::kOut;
  std::uint32_t label_id = 0;  ///< lightweight label (0 = none / heavy)
  DPtr heavy;                  ///< heavy-edge holder, null if lightweight
};

class Transaction {
 public:
  /// GDI_StartTransaction (local) / GDI_StartCollectiveTransaction.
  Transaction(std::shared_ptr<Database> db, rma::Rank& self, TxnMode mode,
              TxnScope scope = TxnScope::kLocal);
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  [[nodiscard]] TxnMode mode() const { return mode_; }
  [[nodiscard]] TxnScope scope() const { return scope_; }
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] bool failed() const { return failed_; }

  /// Async-first surface (see gdi/async.hpp): returns a BatchScope on which
  /// typed operations are enqueued and resolved together by one execute()
  /// that overlaps DHT lookups, lock CAS rounds, and block fetches. The
  /// blocking methods below are thin wrappers over this path.
  [[nodiscard]] BatchScope batch();

  // --- vertex CRUD ----------------------------------------------------------
  Result<VertexHandle> create_vertex(std::uint64_t app_id);
  /// GDI_TranslateVertexID: application-level ID -> internal ID.
  Result<DPtr> translate_vertex_id(std::uint64_t app_id);
  /// GDI_AssociateVertex: internal ID -> handle (fetches + locks the holder).
  Result<VertexHandle> associate_vertex(DPtr vid);
  /// translate + associate in one step.
  Result<VertexHandle> find_vertex(std::uint64_t app_id);
  /// Deletes the vertex and all its incident edges (mirrors included).
  Status delete_vertex(VertexHandle v);

  Result<std::uint64_t> app_id_of(VertexHandle v);
  /// Optimized read of just the application ID of a (possibly remote) vertex:
  /// served from the per-transaction block cache when the holder's primary
  /// block was already fetched/prefetched, otherwise one 8-byte GET. No lock.
  /// Intended for kReadShared scans (GDI allows implementations such
  /// sub-holder reads through handles).
  Result<std::uint64_t> peek_app_id(DPtr vid);

  /// Batched GDI_TranslateVertexID over many application IDs: one DHT
  /// multi-lookup instead of one serial lookup per ID. result[i] is the
  /// internal ID for app_ids[i], or a null DPtr when unknown.
  Result<std::vector<DPtr>> translate_vertex_ids(std::span<const std::uint64_t> app_ids);

  /// Edge-side frontier prefetch: batch-fetches (and, in locking modes,
  /// read-locks) the heavy-edge holders in `eids` so subsequent
  /// associate_edge / get_edge_properties / constraint evaluation on them are
  /// served locally. Mode dispatch mirrors prefetch_vertices: kReadShared is
  /// lock-free, kRead locks-then-fetches (failures soft), kWrite ignores the
  /// hint.
  void prefetch_edges(std::span<const DPtr> eids);

  /// Read-side frontier prefetch: batch-fetches the holder blocks of every
  /// not-yet-cached vertex in `vids` so subsequent associate_vertex /
  /// edges_of / peek_app_id on them are served locally. In kReadShared mode
  /// (the paper's lock-free read-only transactions) this populates the
  /// per-transaction block cache with no locking (primary blocks in one
  /// overlapped batch, continuation blocks in a second). In kRead mode the
  /// hint routes through the batched lock-then-validate path: read locks for
  /// the whole set are acquired with overlapped CAS rounds, then the holders
  /// are fetched in the same two overlapped batches -- a lock failure skips
  /// that vertex (a hint never dooms the transaction). kWrite ignores the
  /// hint (speculative read locks would poison later lock upgrades), so call
  /// sites need not branch on mode.
  void prefetch_vertices(std::span<const DPtr> vids);
  Status add_label(VertexHandle v, std::uint32_t label_id);
  Status remove_label(VertexHandle v, std::uint32_t label_id);
  Result<std::vector<std::uint32_t>> labels_of(VertexHandle v);

  Status add_property(VertexHandle v, std::uint32_t ptype, const PropValue& value);
  /// Single-entry update: removes existing entries of `ptype`, then adds.
  Status update_property(VertexHandle v, std::uint32_t ptype, const PropValue& value);
  Status remove_properties(VertexHandle v, std::uint32_t ptype);
  /// GDI "remove all properties from a vertex": drops every user property
  /// entry; labels are retained.
  Status remove_all_properties(VertexHandle v);
  Result<std::vector<PropValue>> get_properties(VertexHandle v, std::uint32_t ptype);
  Result<std::vector<std::uint32_t>> ptypes_of(VertexHandle v);

  // --- edges ------------------------------------------------------------------
  /// Create a lightweight edge (paper 5.4.2): stored inline in both endpoint
  /// holders; at most one label. Returns the EdgeUid relative to `origin`.
  Result<EdgeUid> create_edge(VertexHandle origin, VertexHandle target,
                              layout::Dir dir, std::uint32_t label_id = 0);
  /// Remove an edge given its UID relative to `base` (mirror removed too).
  Status delete_edge(VertexHandle base, const EdgeUid& uid);
  Result<std::vector<EdgeDesc>> edges_of(VertexHandle v, DirFilter f,
                                         const Constraint* c = nullptr);
  Result<std::vector<DPtr>> neighbors_of(VertexHandle v, DirFilter f,
                                         const Constraint* c = nullptr);
  Result<std::size_t> count_edges(VertexHandle v, DirFilter f);

  // --- heavy edges (own holder, arbitrary labels/properties) -----------------
  Result<EdgeHandle> create_heavy_edge(VertexHandle origin, VertexHandle target,
                                       layout::Dir dir);
  Result<EdgeHandle> associate_edge(DPtr eid);
  Result<std::pair<DPtr, DPtr>> edge_endpoints(EdgeHandle e);
  Status add_edge_label(EdgeHandle e, std::uint32_t label_id);
  Status remove_edge_label(EdgeHandle e, std::uint32_t label_id);
  Result<std::vector<std::uint32_t>> edge_labels_of(EdgeHandle e);
  Status add_edge_property(EdgeHandle e, std::uint32_t ptype, const PropValue& value);
  Status update_edge_property(EdgeHandle e, std::uint32_t ptype, const PropValue& value);
  Result<std::vector<PropValue>> get_edge_properties(EdgeHandle e, std::uint32_t ptype);

  // --- explicit indexes --------------------------------------------------------
  /// GDI_GetLocalVerticesOfIndex: this rank's shard, validated against the
  /// index definition and an optional extra constraint.
  Result<std::vector<DPtr>> local_index_vertices(Index& idx, const Constraint* c = nullptr);

  // --- lifecycle -----------------------------------------------------------------
  /// GDI_CloseTransaction: commit. Collective scope: all ranks call; commit
  /// succeeds only if every rank's local part succeeded.
  Status commit();
  /// Abort: drop all buffered changes, release locks and created blocks.
  void abort();

  /// Arm a networked tenant's acknowledgement for WAL piggybacking: if this
  /// transaction commits AND logs a redo record, a kTenantAck op carrying the
  /// reply the client will be sent rides the same record. A crash after the
  /// record is durable but before the reply leaves the socket then recovers
  /// the reply into the listener's cache -- the replayed write is answered,
  /// never re-executed. `status`/`v0`/`v1` must be the reply the caller would
  /// send on commit success (exec_write knows them before commit()). No-op
  /// for tenant 0.
  void arm_commit_ack(std::uint64_t tenant, std::uint64_t tag, Status status,
                      std::int64_t v0, std::int64_t v1) {
    ack_tenant_ = tenant;
    ack_tag_ = tag;
    ack_status_ = status;
    ack_v0_ = v0;
    ack_v1_ = v1;
  }

 private:
  friend class BatchScope;

  enum class LockState : std::uint8_t { kNone = 0, kRead, kWrite };

  struct VertexState {
    std::vector<std::byte> buf;
    layout::VertexView view{buf};
    LockState lock = LockState::kNone;
    bool created = false;
    bool deleted = false;
    std::vector<std::uint8_t> orig_index_match;  ///< per-db-index, at fetch time
  };

  struct EdgeState {
    std::vector<std::byte> buf;
    layout::EdgeView view{buf};
    LockState lock = LockState::kNone;  ///< lock on the *edge holder* block
    bool created = false;
    bool deleted = false;
  };

  // Access paths.
  Result<VertexState*> vertex_state(VertexHandle v, bool for_write);
  Result<EdgeState*> edge_state(EdgeHandle e, bool for_write);
  Status acquire_vertex_lock(VertexState& st, DPtr vid, bool write);
  Status fetch_vertex(DPtr vid, VertexState& st);
  Status fetch_edge(DPtr eid, EdgeState& st);

  // --- the single lock/fetch path (tentpole) --------------------------------
  //
  // Every vertex materialization in the system -- blocking associate/find,
  // BatchScope::execute, kRead prefetch hints, index scans -- funnels through
  // fetch_vertices_batch. It acquires all still-needed locks with overlapped
  // CAS rounds, pulls every primary block in one nonblocking batch and every
  // continuation block in a second, and installs the resulting VertexStates
  // in vcache_. A one-element call degenerates to the blocking path (no extra
  // flush), so single-op wrappers cost what they did before batching existed.
  struct FetchSpec {
    DPtr vid;
    bool write = false;    ///< take/upgrade to the write lock
    bool required = false; ///< lock failure dooms the txn (false for hints)
  };
  /// per[i] receives specs[i]'s outcome (kOk = state available in vcache_;
  /// kNotFound / kTxnConflict / ... otherwise). Returns kOk unless a
  /// *required* spec hit a transaction-critical failure, in which case the
  /// transaction is doomed and that status is returned.
  Status fetch_vertices_batch(std::span<const FetchSpec> specs, std::span<Status> per);

  // --- the edge twin of the single lock/fetch path --------------------------
  //
  // Every heavy-edge materialization -- blocking associate_edge/edge property
  // access, BatchScope edge ops, the heavy holders behind constraint-filtered
  // edges_of -- funnels through fetch_edges_batch: overlapped lock CAS rounds
  // for the whole set, one nonblocking batch of primary blocks plus one of
  // continuation blocks, EdgeStates installed in ecache_. A one-element call
  // degenerates to the blocking path, so single-op wrappers keep their cost.
  struct EdgeFetchSpec {
    DPtr eid;
    bool write = false;
    bool required = false;
  };
  Status fetch_edges_batch(std::span<const EdgeFetchSpec> specs, std::span<Status> per);

  // Internal (non-wrapper) implementations used by BatchScope resolution and
  // by the blocking wrappers; bodies predate the async surface.
  Result<std::vector<DPtr>> translate_ids_impl(std::span<const std::uint64_t> app_ids);
  /// create_vertex body; `dht_checked` skips the per-call DHT existence
  /// lookup (BatchScope::create already resolved it through the batch's one
  /// multi-lookup).
  Result<VertexHandle> create_vertex_impl(std::uint64_t app_id, bool dht_checked);
  Result<std::vector<EdgeDesc>> edges_of_impl(VertexHandle v, DirFilter f,
                                              const Constraint* c);
  /// Batch-populate the block cache with the holders of `vids` (primaries in
  /// one overlapped batch, continuations in a second). Callers must hold the
  /// needed locks (or run lock-free in kReadShared). No-op unless both the
  /// cache and batching are enabled. When `tainted` is non-null it receives
  /// the primary of every holder that had a continuation block *already* in
  /// the per-transaction cache -- bytes that predate the caller's seqlock
  /// bracket and therefore disqualify the holder from a lock-free
  /// shared-cache fill.
  void populate_block_cache(std::span<const DPtr> vids,
                            std::unordered_set<std::uint64_t>* tainted = nullptr);
  /// Same two-round population for heavy-edge holders (EdgeView headers).
  void populate_edge_block_cache(std::span<const DPtr> eids,
                                 std::unordered_set<std::uint64_t>* tainted = nullptr);
  /// Serve an app-ID peek from vcache_/blk_cache_; false = caller must read.
  [[nodiscard]] bool peek_cached(DPtr vid, std::uint64_t* out);

  // Per-transaction block cache (tentpole: read-through, keyed by block DPtr;
  // entries are whole blocks). Populated by fetches and prefetches, consulted
  // before any window GET, invalidated for a holder's blocks the moment this
  // transaction takes write intent on it, dropped wholesale at commit/abort.
  [[nodiscard]] bool cache_enabled() const;
  [[nodiscard]] bool batching_enabled() const;
  /// Read one block through the cache (counts hits/misses).
  void cache_read_block(DPtr blk, void* dst);
  /// Read a holder's continuation blocks [1, num_blocks) into `buf`:
  /// cache-served where possible, remaining misses fetched as one overlapped
  /// batch (or serially when batching is disabled).
  void read_tail_blocks(std::vector<std::byte>& buf, std::size_t total,
                        std::uint32_t num_blocks,
                        const std::function<DPtr(std::uint32_t)>& addr_of);
  /// Drop a holder's blocks from the cache (same-transaction write intent).
  void invalidate_cached_blocks(DPtr primary, std::uint32_t num_blocks,
                                const std::function<DPtr(std::uint32_t)>& addr_of);

  // --- shared (inter-transaction) holder cache ------------------------------
  //
  // Process-wide cache of assembled holders, validated by the primary block's
  // lock-word version (src/cache/shared_cache.hpp documents the protocol).
  // All three helpers are no-ops / nullptr when DatabaseConfig::shared_cache
  // is off, which keeps the uncached op counts bit-exact.
  [[nodiscard]] cache::SharedBlockCache* scache() {
    return db_->shared_cache(self_);
  }
  /// Drop `primary`'s entry (local write intent / writeback / deletion /
  /// block recycling); counts an invalidation when an entry existed.
  void scache_invalidate(DPtr primary);
  /// Stamp `buf` into the shared cache under `word`'s version bits.
  void scache_fill(DPtr primary, std::span<const std::byte> buf, std::uint64_t word,
                   bool is_edge);
  /// Write-through: re-stamp `buf` under the already-masked version bits the
  /// committing writer's write_unlock_fetch published (counts a restamp).
  void scache_restamp(DPtr primary, std::span<const std::byte> buf,
                      std::uint64_t version_bits, bool is_edge);
  /// Consult + validate an entry against a freshly observed lock word.
  /// Returns the entry if it proves current, nullptr otherwise (a stale or
  /// type-confused entry is erased). Counts validations/hits/invalidations.
  [[nodiscard]] const cache::SharedBlockCache::Entry* scache_lookup(
      DPtr primary, std::uint64_t observed_word, bool want_edge);

  // Capacity management.
  Status ensure_edge_capacity(VertexState& st, std::uint32_t extra_slots);
  Status ensure_prop_capacity(VertexState& st, std::uint32_t extra_bytes);
  Status ensure_edge_prop_capacity(EdgeState& st, std::uint32_t extra_bytes);

  // Commit helpers.
  Status commit_local();
  Status writeback_vertex(DPtr vid, VertexState& st);
  Status writeback_edge(DPtr eid, EdgeState& st);
  /// Release every held lock. With `write_through`, write unlocks go through
  /// BlockStore::write_unlock_fetch and the committed holder bytes are
  /// re-stamped into the shared cache under the fetched post-unlock version
  /// (the rank's own write set stays warm); commit passes the config knob,
  /// abort always passes false -- an aborted buffer diverged from the window
  /// bytes and must not be stamped.
  void release_locks(bool write_through);
  void release_holder_blocks(const std::vector<DPtr>& blocks);
  [[nodiscard]] std::uint32_t max_table_cap() const;
  Status sync_blocks_vertex(DPtr vid, VertexState& st);   // alloc/free to match size
  Status sync_blocks_edge(DPtr eid, EdgeState& st);

  Status fail(Status s) {
    if (is_transaction_critical(s)) failed_ = true;
    return s;
  }
  [[nodiscard]] Status check_writable() const;

  std::shared_ptr<Database> db_;
  rma::Rank& self_;
  TxnMode mode_;
  TxnScope scope_;
  bool active_ = true;
  bool failed_ = false;
  /// Set by writeback when a dirty block lives on a different rank than its
  /// holder's lock word: such a commit must flush before unlocking (the
  /// group-commit pipeline's same-destination ordering argument fails).
  bool wb_cross_rank_ = false;
  /// Blocks shed by holder shrinks (sync_blocks_*): recycled in commit phase
  /// 5 with the deletion releases -- after the writeback fence (a freed
  /// block's next owner may rewrite it, so no PUT to it may remain in
  /// flight, ours or an open epoch's) and after the shrunk header is
  /// published. On abort the list is discarded: the writeback never ran, so
  /// the window holder still references these blocks. Accepted tradeoff: a
  /// commit that shrinks one holder and grows another can no longer reuse
  /// the shed blocks intra-commit, so it may report kOutOfMemory in a pool
  /// with zero headroom where the old (ordering- and abort-unsafe) eager
  /// release would have squeaked by.
  std::vector<DPtr> shrink_release_;

  /// Redo record for the WAL (empty unless DatabaseConfig::wal): block-pool
  /// acquires are logged as they happen; images, DHT intents, lock-version
  /// bumps, and releases are added by commit_local in execution order. The
  /// record is appended to the rank's WalWriter after the writeback PUTs are
  /// issued and *before* the unlock FAAs (write-ahead rule); abort clears it.
  wal::CommitRecord wal_rec_;

  /// Armed tenant acknowledgement (arm_commit_ack); emitted into wal_rec_ by
  /// commit_local just before the record is appended. 0 = not armed.
  std::uint64_t ack_tenant_ = 0;
  std::uint64_t ack_tag_ = 0;
  Status ack_status_ = Status::kOk;
  std::int64_t ack_v0_ = 0;
  std::int64_t ack_v1_ = 0;

  std::unordered_map<std::uint64_t, std::unique_ptr<VertexState>> vcache_;
  std::unordered_map<std::uint64_t, std::unique_ptr<EdgeState>> ecache_;
  std::unordered_map<std::uint64_t, DPtr> created_ids_;  ///< app_id -> DPtr
  /// Block cache: block DPtr raw -> block bytes (block_size each).
  std::unordered_map<std::uint64_t, std::vector<std::byte>> blk_cache_;
};

}  // namespace gdi
