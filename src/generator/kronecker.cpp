#include "generator/kronecker.hpp"

#include <algorithm>
#include <cstring>

namespace gdi::gen {

dht::DhtConfig recommended_dht_config(const LpgConfig& cfg, int nranks) {
  const auto P = static_cast<std::uint64_t>(nranks < 1 ? 1 : nranks);
  const std::uint64_t resident = cfg.num_vertices() / P + 64;
  dht::DhtConfig d;
  // Shard 0 holds the load's resident keys with slack; a bucket per ~2
  // expected entries keeps chains short without bloating the head table.
  d.entries_per_rank = resident + resident / 8 + 1024;
  std::size_t buckets = 1024;
  while (buckets < resident / 2) buckets *= 2;
  d.buckets_per_rank = buckets;
  d.max_shards = 8;
  return d;
}

std::pair<std::uint64_t, std::uint64_t> KroneckerGenerator::edge_endpoints(
    std::uint64_t k) const {
  // R-MAT recursive quadrant descent with counter-based randomness: one
  // 64-bit draw per level, derived from (seed, edge index, level).
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  const double ab = cfg_.a + cfg_.b;
  const double abc = ab + cfg_.c;
  for (int level = 0; level < cfg_.scale; ++level) {
    const std::uint64_t r = hash_combine(cfg_.seed * 0x51ED2701u + 11,
                                         k * 64 + static_cast<std::uint64_t>(level));
    const double u = to_unit_double(r);
    src <<= 1;
    dst <<= 1;
    if (u < cfg_.a) {
      // top-left quadrant: no bits set
    } else if (u < ab) {
      dst |= 1;
    } else if (u < abc) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  return {src, dst};
}

std::vector<std::uint32_t> KroneckerGenerator::vertex_labels(std::uint64_t v) const {
  std::vector<std::uint32_t> out;
  if (label_ids_.empty() || cfg_.labels_per_vertex == 0) return out;
  const std::uint32_t want = std::min<std::uint32_t>(
      cfg_.labels_per_vertex, static_cast<std::uint32_t>(label_ids_.size()));
  // Deterministic distinct subset: start at a hashed offset, take a stride.
  const std::uint64_t h = hash_combine(cfg_.seed * 0x9E11u + 3, v);
  const std::size_t start = h % label_ids_.size();
  for (std::uint32_t i = 0; i < want; ++i)
    out.push_back(label_ids_[(start + i) % label_ids_.size()]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::pair<std::uint32_t, std::vector<std::byte>>>
KroneckerGenerator::vertex_props(std::uint64_t v) const {
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> out;
  if (ptype_ids_.empty() || cfg_.props_per_vertex == 0) return out;
  const std::uint32_t want = std::min<std::uint32_t>(
      cfg_.props_per_vertex, static_cast<std::uint32_t>(ptype_ids_.size()));
  const std::uint64_t h = hash_combine(cfg_.seed * 0xA11CEu + 7, v);
  const std::size_t start = h % ptype_ids_.size();
  for (std::uint32_t i = 0; i < want; ++i) {
    const std::uint32_t pt = ptype_ids_[(start + i) % ptype_ids_.size()];
    // Deterministic value bytes; first 8 bytes form an int64 for filtering.
    std::vector<std::byte> bytes(std::max<std::uint32_t>(cfg_.value_bytes, 8));
    const auto val = static_cast<std::int64_t>(hash_combine(h, pt) % 1000);
    std::memcpy(bytes.data(), &val, 8);
    for (std::size_t b = 8; b < bytes.size(); ++b)
      bytes[b] = static_cast<std::byte>((v + b) & 0xFF);
    out.emplace_back(pt, std::move(bytes));
  }
  return out;
}

std::uint32_t KroneckerGenerator::edge_label(std::uint64_t k) const {
  if (label_ids_.empty()) return 0;
  const std::uint64_t h = hash_combine(cfg_.seed * 0xED6Eu + 13, k);
  if (to_unit_double(h) >= cfg_.edge_label_fraction) return 0;
  return label_ids_[splitmix64(h) % label_ids_.size()];
}

bool KroneckerGenerator::edge_heavy(std::uint64_t k) const {
  if (cfg_.heavy_edge_fraction <= 0.0) return false;
  const std::uint64_t h = hash_combine(cfg_.seed * 0x4EA7u + 19, k);
  return to_unit_double(h) < cfg_.heavy_edge_fraction;
}

std::vector<std::pair<std::uint32_t, std::vector<std::byte>>>
KroneckerGenerator::edge_props(std::uint64_t k) const {
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> out;
  if (ptype_ids_.empty() || !edge_heavy(k)) return out;
  const std::uint32_t want = std::min<std::uint32_t>(
      cfg_.props_per_heavy_edge, static_cast<std::uint32_t>(ptype_ids_.size()));
  const std::uint64_t h = hash_combine(cfg_.seed * 0x9EA7u + 23, k);
  const std::size_t start = h % ptype_ids_.size();
  for (std::uint32_t i = 0; i < want; ++i) {
    const std::uint32_t pt = ptype_ids_[(start + i) % ptype_ids_.size()];
    std::vector<std::byte> bytes(std::max<std::uint32_t>(cfg_.value_bytes, 8));
    const auto val = static_cast<std::int64_t>(hash_combine(h, pt) % 1000);
    std::memcpy(bytes.data(), &val, 8);
    for (std::size_t b = 8; b < bytes.size(); ++b)
      bytes[b] = static_cast<std::byte>((k + b) & 0xFF);
    out.emplace_back(pt, std::move(bytes));
  }
  return out;
}

GeneratedSlice KroneckerGenerator::generate_local(const rma::Rank& self) const {
  GeneratedSlice out;
  const auto P = static_cast<std::uint64_t>(self.nranks());
  const auto r = static_cast<std::uint64_t>(self.id());
  const std::uint64_t n = cfg_.num_vertices();
  const std::uint64_t m = cfg_.num_edges();

  out.vertices.reserve(static_cast<std::size_t>(n / P + 1));
  for (std::uint64_t v = r; v < n; v += P)
    out.vertices.push_back(BulkVertex{v, vertex_labels(v), vertex_props(v)});

  const std::uint64_t k0 = r * m / P;
  const std::uint64_t k1 = (r + 1) * m / P;
  out.edges.reserve(static_cast<std::size_t>(k1 - k0));
  for (std::uint64_t k = k0; k < k1; ++k) {
    const auto [src, dst] = edge_endpoints(k);
    out.edges.push_back(
        BulkEdge{src, dst, edge_label(k), layout::Dir::kOut, edge_heavy(k),
                 edge_props(k)});
  }
  return out;
}

std::vector<BulkEdge> KroneckerGenerator::all_edges() const {
  std::vector<BulkEdge> out;
  const std::uint64_t m = cfg_.num_edges();
  out.reserve(static_cast<std::size_t>(m));
  for (std::uint64_t k = 0; k < m; ++k) {
    const auto [src, dst] = edge_endpoints(k);
    out.push_back(BulkEdge{src, dst, edge_label(k), layout::Dir::kOut,
                           edge_heavy(k), edge_props(k)});
  }
  return out;
}

}  // namespace gdi::gen
