// Distributed in-memory LPG graph generator (paper contribution #5,
// Section 6.3).
//
// Extends the Graph500 Kronecker/R-MAT model with user-configurable labels
// and properties. Generation is counter-based and therefore deterministic,
// independent of the rank count: edge k is a pure function of (seed, k), and
// vertex decoration is a pure function of (seed, vertex id). Each rank
// generates only its slice, fully in-memory, so arbitrarily large datasets
// are immediately available for bulk ingestion -- exactly the property the
// paper needed for its extreme-scale runs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "gdi/bulk.hpp"
#include "rma/runtime.hpp"

namespace gdi::gen {

struct LpgConfig {
  int scale = 12;          ///< 2^scale vertices
  int edge_factor = 16;    ///< ~edge_factor * 2^scale directed edges
  std::uint64_t seed = 42;
  // R-MAT partition probabilities (Graph500 defaults; D = 1-a-b-c).
  double a = 0.57, b = 0.19, c = 0.19;
  // Label/property richness (paper defaults: 20 labels, 13 property types).
  std::uint32_t labels_per_vertex = 2;
  std::uint32_t props_per_vertex = 4;
  double edge_label_fraction = 0.5;  ///< fraction of edges carrying a label
  double heavy_edge_fraction = 0.0;  ///< fraction of edges with own holders
  std::uint32_t props_per_heavy_edge = 1;
  std::uint32_t value_bytes = 8;     ///< bytes per property value

  [[nodiscard]] std::uint64_t num_vertices() const { return std::uint64_t{1} << scale; }
  [[nodiscard]] std::uint64_t num_edges() const {
    return static_cast<std::uint64_t>(edge_factor) * num_vertices();
  }
};

/// One generated graph slice plus global shape facts.
struct GeneratedSlice {
  std::vector<BulkVertex> vertices;  ///< vertices owned by this rank
  std::vector<BulkEdge> edges;       ///< this rank's share of the edge list
};

/// DHT sizing for bulk-loading a graph of this shape on `nranks` ranks:
/// shard 0 is provisioned for the generated resident key set (so the load
/// itself normally needs no growth) and max_shards leaves ~8x headroom for
/// OLTP insert streams on top. Loads larger than the estimate -- or fed from
/// other sources -- simply grow shards on demand; a growth-heavy load can be
/// followed by one `compact()` pass to fold the split partition back to
/// single-probe reads (Database::checkpoint can do this incrementally).
[[nodiscard]] dht::DhtConfig recommended_dht_config(const LpgConfig& cfg, int nranks);

class KroneckerGenerator {
 public:
  /// `label_ids` / `ptype_ids` are the registered metadata ids to decorate
  /// with (pass the ids returned by Database::create_label / create_ptype).
  KroneckerGenerator(LpgConfig cfg, std::vector<std::uint32_t> label_ids,
                     std::vector<std::uint32_t> ptype_ids)
      : cfg_(cfg), label_ids_(std::move(label_ids)), ptype_ids_(std::move(ptype_ids)) {}

  [[nodiscard]] const LpgConfig& config() const { return cfg_; }

  /// Deterministic endpoints of global edge `k` (R-MAT recursive descent).
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> edge_endpoints(std::uint64_t k) const;

  /// Labels of vertex `v` (deterministic subset of label_ids).
  [[nodiscard]] std::vector<std::uint32_t> vertex_labels(std::uint64_t v) const;
  /// Properties of vertex `v` as (ptype, encoded bytes).
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::vector<std::byte>>>
  vertex_props(std::uint64_t v) const;
  /// Lightweight label of edge `k` (0 = none).
  [[nodiscard]] std::uint32_t edge_label(std::uint64_t k) const;
  /// Is edge `k` heavy (own holder with properties)?
  [[nodiscard]] bool edge_heavy(std::uint64_t k) const;
  /// Properties of heavy edge `k` as (ptype, encoded bytes).
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::vector<std::byte>>>
  edge_props(std::uint64_t k) const;

  /// Generate rank `self`'s slice: vertices it owns (round-robin by id) and
  /// edges [k0, k1) of the global edge list.
  [[nodiscard]] GeneratedSlice generate_local(const rma::Rank& self) const;

  /// Whole edge list (small scales only; used by reference checks).
  [[nodiscard]] std::vector<BulkEdge> all_edges() const;

 private:
  LpgConfig cfg_;
  std::vector<std::uint32_t> label_ids_;
  std::vector<std::uint32_t> ptype_ids_;
};

}  // namespace gdi::gen
