#include "layout/holder.hpp"

#include <algorithm>
#include <cassert>

namespace gdi::layout {
namespace {

constexpr std::size_t stride(std::uint32_t len) { return 8 + ((len + 7) & ~7u); }

std::uint32_t rd32(const std::vector<std::byte>& buf, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, buf.data() + off, 4);
  return v;
}
void wr32(std::vector<std::byte>& buf, std::size_t off, std::uint32_t v) {
  std::memcpy(buf.data() + off, &v, 4);
}

/// Append an (id, payload) entry at `base+used`; returns the new used size or
/// kNoSpace when it does not fit in `cap`.
Result<std::uint32_t> entry_add(std::vector<std::byte>& buf, std::size_t base,
                                std::uint32_t used, std::uint32_t cap, std::uint32_t id,
                                std::span<const std::byte> payload) {
  const std::size_t need = stride(static_cast<std::uint32_t>(payload.size()));
  if (used + need > cap) return Status::kNoSpace;
  wr32(buf, base + used, id);
  wr32(buf, base + used + 4, static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty()) std::memcpy(buf.data() + base + used + 8, payload.data(), payload.size());
  // Zero the alignment padding so holders are byte-deterministic.
  const std::size_t pad = need - 8 - payload.size();
  if (pad) std::memset(buf.data() + base + used + 8 + payload.size(), 0, pad);
  return static_cast<std::uint32_t>(used + need);
}

/// Tombstone the first entry with `id` (and payload, when given).
bool entry_remove_first(std::vector<std::byte>& buf, std::size_t base, std::uint32_t used,
                        std::uint32_t id, const std::byte* payload, std::size_t n) {
  std::size_t off = 0;
  while (off + 8 <= used) {
    const std::uint32_t eid = rd32(buf, base + off);
    const std::uint32_t len = rd32(buf, base + off + 4);
    if (eid == id && (payload == nullptr ||
                      (len == n && std::memcmp(buf.data() + base + off + 8, payload, n) == 0))) {
      wr32(buf, base + off, kEntryFree);
      return true;
    }
    off += stride(len);
  }
  return false;
}

int entry_remove_all(std::vector<std::byte>& buf, std::size_t base, std::uint32_t used,
                     std::uint32_t id) {
  int removed = 0;
  std::size_t off = 0;
  while (off + 8 <= used) {
    const std::uint32_t eid = rd32(buf, base + off);
    const std::uint32_t len = rd32(buf, base + off + 4);
    if (eid == id) {
      wr32(buf, base + off, kEntryFree);
      ++removed;
    }
    off += stride(len);
  }
  return removed;
}

/// Slide live entries over tombstones; returns the compacted used size.
std::uint32_t entry_compact(std::vector<std::byte>& buf, std::size_t base,
                            std::uint32_t used) {
  std::size_t src = 0;
  std::size_t dst = 0;
  while (src + 8 <= used) {
    const std::uint32_t id = rd32(buf, base + src);
    const std::uint32_t len = rd32(buf, base + src + 4);
    const std::size_t s = stride(len);
    if (id != kEntryFree) {
      if (dst != src) std::memmove(buf.data() + base + dst, buf.data() + base + src, s);
      dst += s;
    }
    src += s;
  }
  return static_cast<std::uint32_t>(dst);
}

}  // namespace

// ---------------------------------------------------------------------------
// VertexView
// ---------------------------------------------------------------------------

void VertexView::init(std::vector<std::byte>& buf, std::uint64_t app_id,
                      std::size_t total_size, std::uint32_t table_cap) {
  const std::size_t edge_base = kHeaderSize + table_cap * 8;
  assert(total_size >= edge_base);
  buf.assign(total_size, std::byte{0});
  VertexView v(buf);
  v.put64(0, app_id);
  v.put32(8, 1u);  // valid
  v.put32(12, 0);  // num_blocks (set by the block mapper)
  v.put32(16, 0);  // edge_slots
  v.put32(32, table_cap);
  const auto payload = total_size - edge_base;
  // Default split: give edges ~half the payload, properties the rest. The
  // transaction layer reshapes on demand, so this is only a starting point.
  const auto edge_cap = static_cast<std::uint32_t>(payload / 2 / kEdgeRecSize);
  v.put32(20, edge_cap);
  v.put32(24, 0);  // prop_used
  v.put32(28, static_cast<std::uint32_t>(payload - edge_cap * kEdgeRecSize));
  v.mark_all_dirty();
}

void VertexView::set_valid(bool val) { put32(8, val ? 1u : 0u); }
void VertexView::set_num_blocks(std::uint32_t n) { put32(12, n); }
void VertexView::set_block_addr(std::size_t i, DPtr p) {
  assert(i < table_capacity());
  put64(kBlockTableOff + i * 8, p.raw());
}

EdgeRecord VertexView::edge_at(std::uint32_t slot) const {
  assert(slot < edge_slots());
  const std::size_t off = edge_base() + slot * kEdgeRecSize;
  EdgeRecord r;
  r.neighbor = DPtr{get64(off)};
  r.heavy = DPtr{get64(off + 8)};
  r.label_id = get32(off + 16);
  const std::uint32_t meta = get32(off + 20);
  r.dir = static_cast<Dir>(meta & 0xFF);
  r.in_use = (meta & 0x100) != 0;
  return r;
}

void VertexView::set_edge(std::uint32_t slot, const EdgeRecord& rec) {
  const std::size_t off = edge_base() + slot * kEdgeRecSize;
  put64(off, rec.neighbor.raw());
  put64(off + 8, rec.heavy.raw());
  put32(off + 16, rec.label_id);
  put32(off + 20, static_cast<std::uint32_t>(rec.dir) | (rec.in_use ? 0x100u : 0u));
}

Result<std::uint32_t> VertexView::add_edge(const EdgeRecord& rec) {
  EdgeRecord r = rec;
  r.in_use = true;
  for (std::uint32_t s = 0; s < edge_slots(); ++s) {
    if (!edge_at(s).in_use) {  // reuse a tombstoned slot
      set_edge(s, r);
      return s;
    }
  }
  if (edge_slots() >= edge_capacity()) return Status::kNoSpace;
  const std::uint32_t s = edge_slots();
  put32(16, s + 1);
  set_edge(s, r);
  return s;
}

bool VertexView::remove_edge(std::uint32_t slot) {
  if (slot >= edge_slots()) return false;
  EdgeRecord r = edge_at(slot);
  if (!r.in_use) return false;
  r.in_use = false;
  set_edge(slot, r);
  return true;
}

int VertexView::find_edge(DPtr neighbor, Dir dir) const {
  for (std::uint32_t s = 0; s < edge_slots(); ++s) {
    const EdgeRecord r = edge_at(s);
    if (r.in_use && r.neighbor == neighbor && r.dir == dir) return static_cast<int>(s);
  }
  return -1;
}

std::uint32_t VertexView::live_edge_count() const {
  std::uint32_t n = 0;
  for (std::uint32_t s = 0; s < edge_slots(); ++s)
    if (edge_at(s).in_use) ++n;
  return n;
}

Status VertexView::add_entry(std::uint32_t id, std::span<const std::byte> payload) {
  auto r = entry_add(buf_, prop_base(), prop_used(), prop_capacity(), id, payload);
  if (!r.ok()) {
    // One compaction attempt before reporting NoSpace.
    const std::uint32_t compacted = entry_compact(buf_, prop_base(), prop_used());
    if (compacted == prop_used()) return r.status();
    put32(24, compacted);
    mark(prop_base(), prop_base() + prop_capacity());
    r = entry_add(buf_, prop_base(), prop_used(), prop_capacity(), id, payload);
    if (!r.ok()) return r.status();
  }
  mark(prop_base() + prop_used(), prop_base() + r.value());
  put32(24, r.value());
  return Status::kOk;
}

bool VertexView::remove_entry(std::uint32_t id, const std::byte* payload, std::size_t n) {
  const bool hit = entry_remove_first(buf_, prop_base(), prop_used(), id, payload, n);
  if (hit) mark(prop_base(), prop_base() + prop_used());
  return hit;
}

int VertexView::remove_entries(std::uint32_t id) {
  const int n = entry_remove_all(buf_, prop_base(), prop_used(), id);
  if (n) mark(prop_base(), prop_base() + prop_used());
  return n;
}

std::size_t VertexView::compact_entries() {
  const std::uint32_t before = prop_used();
  const std::uint32_t after = entry_compact(buf_, prop_base(), before);
  put32(24, after);
  mark(prop_base(), prop_base() + before);
  return before - after;
}

bool VertexView::has_label(std::uint32_t label_id) const {
  bool found = false;
  for_each_entry([&](std::uint32_t id, std::span<const std::byte> p) {
    if (id == kEntryLabel && p.size() == 4) {
      std::uint32_t l;
      std::memcpy(&l, p.data(), 4);
      if (l == label_id) found = true;
    }
  });
  return found;
}

Status VertexView::add_label(std::uint32_t label_id) {
  if (has_label(label_id)) return Status::kAlreadyExists;
  std::byte payload[4];
  std::memcpy(payload, &label_id, 4);
  return add_entry(kEntryLabel, std::span<const std::byte>(payload, 4));
}

bool VertexView::remove_label(std::uint32_t label_id) {
  std::byte payload[4];
  std::memcpy(payload, &label_id, 4);
  return remove_entry(kEntryLabel, payload, 4);
}

std::vector<std::uint32_t> VertexView::labels() const {
  std::vector<std::uint32_t> out;
  for_each_entry([&](std::uint32_t id, std::span<const std::byte> p) {
    if (id == kEntryLabel && p.size() == 4) {
      std::uint32_t l;
      std::memcpy(&l, p.data(), 4);
      out.push_back(l);
    }
  });
  return out;
}

std::vector<std::vector<std::byte>> VertexView::get_props(std::uint32_t ptype) const {
  std::vector<std::vector<std::byte>> out;
  for_each_entry([&](std::uint32_t id, std::span<const std::byte> p) {
    if (id == ptype) out.emplace_back(p.begin(), p.end());
  });
  return out;
}

int VertexView::count_props(std::uint32_t ptype) const {
  int n = 0;
  for_each_entry([&](std::uint32_t id, std::span<const std::byte>) {
    if (id == ptype) ++n;
  });
  return n;
}

std::vector<std::uint32_t> VertexView::ptypes() const {
  std::vector<std::uint32_t> out;
  for_each_entry([&](std::uint32_t id, std::span<const std::byte>) {
    if (id >= kFirstUserPtype && std::find(out.begin(), out.end(), id) == out.end())
      out.push_back(id);
  });
  return out;
}

Status VertexView::reshape(std::uint32_t new_table_cap, std::uint32_t new_edge_cap,
                           std::uint32_t new_prop_cap) {
  new_prop_cap = (new_prop_cap + 7) & ~7u;
  if (new_table_cap < num_blocks() || new_edge_cap < edge_slots() ||
      new_prop_cap < prop_used())
    return Status::kInvalidArgument;

  // Snapshot the live regions, then rebuild the buffer at the new geometry.
  const std::uint32_t n_slots = edge_slots();
  const std::uint32_t n_blocks = num_blocks();
  std::vector<std::byte> table(buf_.begin() + kBlockTableOff,
                               buf_.begin() + kBlockTableOff + n_blocks * 8);
  std::vector<std::byte> edges(
      buf_.begin() + static_cast<std::ptrdiff_t>(edge_base()),
      buf_.begin() + static_cast<std::ptrdiff_t>(edge_base() + n_slots * kEdgeRecSize));
  std::vector<std::byte> props(
      buf_.begin() + static_cast<std::ptrdiff_t>(prop_base()),
      buf_.begin() + static_cast<std::ptrdiff_t>(prop_base() + prop_used()));

  const std::size_t new_edge_base = kHeaderSize + new_table_cap * 8;
  const std::size_t new_prop_base = new_edge_base + new_edge_cap * kEdgeRecSize;
  const std::size_t new_total = new_prop_base + new_prop_cap;

  std::vector<std::byte> header(buf_.begin(), buf_.begin() + kHeaderSize);
  buf_.assign(new_total, std::byte{0});
  std::memcpy(buf_.data(), header.data(), kHeaderSize);
  // Empty segments have a null data(); memcpy requires non-null even for n=0.
  if (!table.empty()) std::memcpy(buf_.data() + kBlockTableOff, table.data(), table.size());
  if (!edges.empty()) std::memcpy(buf_.data() + new_edge_base, edges.data(), edges.size());
  if (!props.empty()) std::memcpy(buf_.data() + new_prop_base, props.data(), props.size());

  put32(20, new_edge_cap);
  put32(28, new_prop_cap);
  put32(32, new_table_cap);
  mark_all_dirty();
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// EdgeView
// ---------------------------------------------------------------------------

void EdgeView::init(std::vector<std::byte>& buf, DPtr origin, DPtr target,
                    std::size_t total_size) {
  assert(total_size >= kPropBase);
  buf.assign(total_size, std::byte{0});
  EdgeView e(buf);
  e.put64(0, origin.raw());
  e.put64(8, target.raw());
  e.put32(16, 1u);  // valid
  e.put32(20, 0);   // num_blocks
  e.put32(24, 0);   // prop_used
  e.put32(28, static_cast<std::uint32_t>(total_size - kPropBase));
  e.mark_all_dirty();
}

void EdgeView::set_endpoints(DPtr origin, DPtr target) {
  put64(0, origin.raw());
  put64(8, target.raw());
}
void EdgeView::set_valid(bool v) { put32(16, v ? 1u : 0u); }
void EdgeView::set_num_blocks(std::uint32_t n) { put32(20, n); }
void EdgeView::set_block_addr(std::size_t i, DPtr p) {
  assert(i < kMaxBlocks);
  put64(kBlockTableOff + i * 8, p.raw());
}

Status EdgeView::add_entry(std::uint32_t id, std::span<const std::byte> payload) {
  auto r = entry_add(buf_, kPropBase, prop_used(), prop_capacity(), id, payload);
  if (!r.ok()) {
    const std::uint32_t compacted = entry_compact(buf_, kPropBase, prop_used());
    if (compacted == prop_used()) return r.status();
    put32(24, compacted);
    mark(kPropBase, kPropBase + prop_capacity());
    r = entry_add(buf_, kPropBase, prop_used(), prop_capacity(), id, payload);
    if (!r.ok()) return r.status();
  }
  mark(kPropBase + prop_used(), kPropBase + r.value());
  put32(24, r.value());
  return Status::kOk;
}

bool EdgeView::remove_entry(std::uint32_t id, const std::byte* payload, std::size_t n) {
  const bool hit = entry_remove_first(buf_, kPropBase, prop_used(), id, payload, n);
  if (hit) mark(kPropBase, kPropBase + prop_used());
  return hit;
}

int EdgeView::remove_entries(std::uint32_t id) {
  const int n = entry_remove_all(buf_, kPropBase, prop_used(), id);
  if (n) mark(kPropBase, kPropBase + prop_used());
  return n;
}

bool EdgeView::has_label(std::uint32_t label_id) const {
  bool found = false;
  for_each_entry([&](std::uint32_t id, std::span<const std::byte> p) {
    if (id == kEntryLabel && p.size() == 4) {
      std::uint32_t l;
      std::memcpy(&l, p.data(), 4);
      if (l == label_id) found = true;
    }
  });
  return found;
}

Status EdgeView::add_label(std::uint32_t label_id) {
  if (has_label(label_id)) return Status::kAlreadyExists;
  std::byte payload[4];
  std::memcpy(payload, &label_id, 4);
  return add_entry(kEntryLabel, std::span<const std::byte>(payload, 4));
}

bool EdgeView::remove_label(std::uint32_t label_id) {
  std::byte payload[4];
  std::memcpy(payload, &label_id, 4);
  return remove_entry(kEntryLabel, payload, 4);
}

std::vector<std::uint32_t> EdgeView::labels() const {
  std::vector<std::uint32_t> out;
  for_each_entry([&](std::uint32_t id, std::span<const std::byte> p) {
    if (id == kEntryLabel && p.size() == 4) {
      std::uint32_t l;
      std::memcpy(&l, p.data(), 4);
      out.push_back(l);
    }
  });
  return out;
}

std::vector<std::vector<std::byte>> EdgeView::get_props(std::uint32_t ptype) const {
  std::vector<std::vector<std::byte>> out;
  for_each_entry([&](std::uint32_t id, std::span<const std::byte> p) {
    if (id == ptype) out.emplace_back(p.begin(), p.end());
  });
  return out;
}

std::vector<std::uint32_t> EdgeView::ptypes() const {
  std::vector<std::uint32_t> out;
  for_each_entry([&](std::uint32_t id, std::span<const std::byte>) {
    if (id >= kFirstUserPtype && std::find(out.begin(), out.end(), id) == out.end())
      out.push_back(id);
  });
  return out;
}

Status EdgeView::reshape(std::uint32_t new_prop_cap) {
  new_prop_cap = (new_prop_cap + 7) & ~7u;
  if (new_prop_cap < prop_used()) return Status::kInvalidArgument;
  buf_.resize(kPropBase + new_prop_cap, std::byte{0});
  put32(28, new_prop_cap);
  mark_all_dirty();
  return Status::kOk;
}

}  // namespace gdi::layout
