// Logical Layout (LL) level: vertex and edge *holders* (paper Section 5.4).
//
// A holder is the logically contiguous, data-driven-size structure of one
// vertex or edge: metadata, a table of block addresses, lightweight edges,
// and label/property entries. Physically it is stored as fixed-size BGDL
// blocks; this module implements the codec over the *assembled* flat buffer,
// so all layout knowledge lives here and the transaction layer only moves
// blocks (the paper's LL/BGDL separation, a "Major Design Choice").
//
// Vertex holder layout (byte offsets within the flat buffer):
//   [0,  48)       header: app id, flags, block count, table capacity,
//                  edge/property bookkeeping
//   [48, 48+T*8)   block-address table (T x u64 DPtr; entry 0 = primary
//                  block). T is per-holder and grows on demand, bounded by
//                  what fits in the primary block.
//   [E0, E0+E*24)  lightweight-edge records (24 B each), E0 = 48+T*8
//   [P0, P0+P)     label/property entries (8-byte aligned)
//
// Label/property entries use the paper's integer-ID scheme (Section 5.4.3):
// id 0 marks a free/tombstoned entry, id 2 is a label entry (payload = the
// label's integer ID), ids >= 16 are user property types.
//
// Lightweight edges (Section 5.4.2) live inline in the source holder; an edge
// promoted to a *heavy* edge (rich labels/properties) additionally points to
// its own edge holder.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/dptr.hpp"
#include "common/status.hpp"

namespace gdi::layout {

enum class Dir : std::uint8_t { kOut = 0, kIn = 1, kUndirected = 2 };

/// Reserved property-entry IDs (paper Section 5.4.3).
inline constexpr std::uint32_t kEntryFree = 0;
inline constexpr std::uint32_t kEntryLabel = 2;
inline constexpr std::uint32_t kFirstUserPtype = 16;

struct EdgeRecord {
  DPtr neighbor;               ///< primary block of the other endpoint
  DPtr heavy;                  ///< edge holder (null for lightweight edges)
  std::uint32_t label_id = 0;  ///< at most one label on a lightweight edge
  Dir dir = Dir::kOut;         ///< direction relative to the *owning* vertex
  bool in_use = false;
};

/// Codec over a vertex holder's flat buffer. The view does not own the
/// buffer; the transaction layer owns it and tracks the dirty range the view
/// reports via dirty_lo()/dirty_hi().
class VertexView {
 public:
  static constexpr std::size_t kHeaderSize = 48;
  static constexpr std::size_t kBlockTableOff = kHeaderSize;
  static constexpr std::size_t kEdgeRecSize = 24;

  explicit VertexView(std::vector<std::byte>& buf) : buf_(buf) {}

  /// Format a fresh holder into `buf` (resizes it to `total_size`) with a
  /// block-address table of `table_cap` slots.
  static void init(std::vector<std::byte>& buf, std::uint64_t app_id,
                   std::size_t total_size, std::uint32_t table_cap);

  /// Total holder size for a given capacity, 8-byte aligned.
  [[nodiscard]] static std::size_t required_size(std::uint32_t table_cap,
                                                 std::uint32_t edge_slots,
                                                 std::uint32_t prop_bytes) {
    return kHeaderSize + table_cap * 8 + edge_slots * kEdgeRecSize +
           ((prop_bytes + 7) & ~7u);
  }

  // --- header ---------------------------------------------------------------
  [[nodiscard]] std::uint64_t app_id() const { return get64(0); }
  [[nodiscard]] bool valid() const { return (get32(8) & 1u) != 0; }
  void set_valid(bool v);
  [[nodiscard]] std::uint32_t num_blocks() const { return get32(12); }
  void set_num_blocks(std::uint32_t n);
  [[nodiscard]] std::uint32_t edge_slots() const { return get32(16); }      // used slots
  [[nodiscard]] std::uint32_t edge_capacity() const { return get32(20); }
  [[nodiscard]] std::uint32_t prop_used() const { return get32(24); }
  [[nodiscard]] std::uint32_t prop_capacity() const { return get32(28); }
  [[nodiscard]] std::uint32_t table_capacity() const { return get32(32); }
  /// Start of the lightweight-edge region.
  [[nodiscard]] std::size_t edge_base() const {
    return kBlockTableOff + table_capacity() * 8;
  }

  [[nodiscard]] DPtr block_addr(std::size_t i) const {
    return DPtr{get64(kBlockTableOff + i * 8)};
  }
  void set_block_addr(std::size_t i, DPtr p);

  // --- lightweight edges ------------------------------------------------------
  [[nodiscard]] EdgeRecord edge_at(std::uint32_t slot) const;
  /// Byte offset of a slot's record (the EdgeUid offset, paper 5.4.2).
  [[nodiscard]] std::uint32_t edge_offset(std::uint32_t slot) const {
    return static_cast<std::uint32_t>(edge_base() + slot * kEdgeRecSize);
  }
  [[nodiscard]] std::uint32_t slot_of_offset(std::uint32_t off) const {
    return static_cast<std::uint32_t>((off - edge_base()) / kEdgeRecSize);
  }

  /// Add an edge record; reuses a tombstoned slot when possible. Returns the
  /// slot index, or kNoSpace if capacity is exhausted (caller must grow).
  [[nodiscard]] Result<std::uint32_t> add_edge(const EdgeRecord& rec);
  /// Tombstone a slot; returns false if it was not in use.
  bool remove_edge(std::uint32_t slot);
  /// Replace a slot's record in place (slot must be in use).
  void set_edge(std::uint32_t slot, const EdgeRecord& rec);
  /// First in-use slot matching (neighbor, dir); -1 if none.
  [[nodiscard]] int find_edge(DPtr neighbor, Dir dir) const;

  template <class F>
  void for_each_edge(F&& f) const {
    for (std::uint32_t s = 0; s < edge_slots(); ++s) {
      EdgeRecord r = edge_at(s);
      if (r.in_use) f(s, r);
    }
  }
  [[nodiscard]] std::uint32_t live_edge_count() const;

  // --- label / property entries ----------------------------------------------
  /// Append an entry; id must be kEntryLabel or a user ptype id.
  [[nodiscard]] Status add_entry(std::uint32_t id, std::span<const std::byte> payload);
  /// Tombstone the first entry with `id` (labels: matching payload too).
  bool remove_entry(std::uint32_t id, const std::byte* payload, std::size_t n);
  /// Tombstone all entries with `id`; returns how many were removed.
  int remove_entries(std::uint32_t id);
  /// Compact the property region (drops tombstones); returns bytes reclaimed.
  std::size_t compact_entries();

  template <class F>
  void for_each_entry(F&& f) const {  // f(id, span payload)
    const std::size_t base = prop_base();
    std::size_t off = 0;
    while (off + 8 <= prop_used()) {
      const std::uint32_t id = get32(base + off);
      const std::uint32_t len = get32(base + off + 4);
      if (id != kEntryFree)
        f(id, std::span<const std::byte>(buf_.data() + base + off + 8, len));
      off += entry_stride(len);
    }
  }

  // Label helpers (labels are entries with id kEntryLabel, payload = u32).
  [[nodiscard]] bool has_label(std::uint32_t label_id) const;
  [[nodiscard]] Status add_label(std::uint32_t label_id);
  bool remove_label(std::uint32_t label_id);
  [[nodiscard]] std::vector<std::uint32_t> labels() const;

  // Property helpers.
  [[nodiscard]] std::vector<std::vector<std::byte>> get_props(std::uint32_t ptype) const;
  [[nodiscard]] int count_props(std::uint32_t ptype) const;
  [[nodiscard]] std::vector<std::uint32_t> ptypes() const;

  // --- growth -----------------------------------------------------------------
  /// Reshape to new capacities (>= current usage); shifts the edge and
  /// property regions and resizes the buffer. Caller re-syncs block
  /// allocation afterwards (and must ensure `new_table_cap` still fits the
  /// primary block).
  [[nodiscard]] Status reshape(std::uint32_t new_table_cap, std::uint32_t new_edge_cap,
                               std::uint32_t new_prop_cap);

  // --- dirty-range tracking -----------------------------------------------------
  //
  // Two coalescing byte ranges instead of one: header/table mutations and
  // payload mutations usually sit far apart, and a single min/max interval
  // would force commit to rewrite every block in between. Two ranges keep
  // the paper's "track dirty blocks" guarantee for the common access shapes
  // (O(1) bookkeeping, write-back touches only genuinely dirty blocks).
  struct DirtyRange {
    std::size_t lo = static_cast<std::size_t>(-1);
    std::size_t hi = 0;
    [[nodiscard]] bool empty() const { return hi <= lo; }
  };
  [[nodiscard]] std::array<DirtyRange, 2> dirty_ranges() const { return dirty_; }
  [[nodiscard]] std::size_t dirty_lo() const {
    return std::min(dirty_[0].lo, dirty_[1].lo);
  }
  [[nodiscard]] std::size_t dirty_hi() const {
    return std::max(dirty_[0].hi, dirty_[1].hi);
  }
  [[nodiscard]] bool is_dirty() const {
    return !dirty_[0].empty() || !dirty_[1].empty();
  }
  void reset_dirty() { dirty_ = {}; }
  void mark_all_dirty() { mark(0, buf_.size()); }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  [[nodiscard]] std::size_t prop_base() const {
    return edge_base() + edge_capacity() * kEdgeRecSize;
  }
  [[nodiscard]] static std::size_t entry_stride(std::uint32_t len) {
    return 8 + ((len + 7) & ~7u);
  }

  [[nodiscard]] std::uint64_t get64(std::size_t off) const {
    std::uint64_t v;
    std::memcpy(&v, buf_.data() + off, 8);
    return v;
  }
  [[nodiscard]] std::uint32_t get32(std::size_t off) const {
    std::uint32_t v;
    std::memcpy(&v, buf_.data() + off, 4);
    return v;
  }
  void put64(std::size_t off, std::uint64_t v) {
    std::memcpy(buf_.data() + off, &v, 8);
    mark(off, off + 8);
  }
  void put32(std::size_t off, std::uint32_t v) {
    std::memcpy(buf_.data() + off, &v, 4);
    mark(off, off + 4);
  }
  void put_bytes(std::size_t off, const void* src, std::size_t n) {
    std::memcpy(buf_.data() + off, src, n);
    mark(off, off + n);
  }
  void mark(std::size_t lo, std::size_t hi) {
    auto grow = [&](DirtyRange& r) {
      r.lo = std::min(r.lo, lo);
      r.hi = std::max(r.hi, hi);
    };
    auto gap = [&](const DirtyRange& r) -> std::size_t {
      if (hi >= r.lo && lo <= r.hi) return 0;  // overlapping / adjacent
      return lo > r.hi ? lo - r.hi : r.lo - hi;
    };
    if (dirty_[0].empty()) return grow(dirty_[0]);
    if (gap(dirty_[0]) == 0) return grow(dirty_[0]);
    if (dirty_[1].empty()) return grow(dirty_[1]);
    return gap(dirty_[0]) <= gap(dirty_[1]) ? grow(dirty_[0]) : grow(dirty_[1]);
  }

  std::vector<std::byte>& buf_;
  std::array<DirtyRange, 2> dirty_{};
};

/// Codec over an edge holder's flat buffer (heavy edges only).
///
/// Layout: [0,48) header (origin, target, flags/blocks, prop bookkeeping),
/// [48,80) block table (4 x u64), [80, 80+P) property entries.
class EdgeView {
 public:
  static constexpr std::size_t kHeaderSize = 48;
  static constexpr std::size_t kMaxBlocks = 4;
  static constexpr std::size_t kBlockTableOff = kHeaderSize;
  static constexpr std::size_t kPropBase = kBlockTableOff + kMaxBlocks * 8;  // 80

  explicit EdgeView(std::vector<std::byte>& buf) : buf_(buf) {}

  static void init(std::vector<std::byte>& buf, DPtr origin, DPtr target,
                   std::size_t total_size);
  [[nodiscard]] static std::size_t required_size(std::uint32_t prop_bytes) {
    return kPropBase + ((prop_bytes + 7) & ~7u);
  }

  [[nodiscard]] DPtr origin() const { return DPtr{get64(0)}; }
  [[nodiscard]] DPtr target() const { return DPtr{get64(8)}; }
  void set_endpoints(DPtr origin, DPtr target);
  [[nodiscard]] bool valid() const { return (get32(16) & 1u) != 0; }
  void set_valid(bool v);
  [[nodiscard]] std::uint32_t num_blocks() const { return get32(20); }
  void set_num_blocks(std::uint32_t n);
  [[nodiscard]] std::uint32_t prop_used() const { return get32(24); }
  [[nodiscard]] std::uint32_t prop_capacity() const { return get32(28); }
  [[nodiscard]] DPtr block_addr(std::size_t i) const {
    return DPtr{get64(kBlockTableOff + i * 8)};
  }
  void set_block_addr(std::size_t i, DPtr p);

  [[nodiscard]] Status add_entry(std::uint32_t id, std::span<const std::byte> payload);
  bool remove_entry(std::uint32_t id, const std::byte* payload, std::size_t n);
  int remove_entries(std::uint32_t id);

  template <class F>
  void for_each_entry(F&& f) const {
    std::size_t off = 0;
    while (off + 8 <= prop_used()) {
      const std::uint32_t id = get32(kPropBase + off);
      const std::uint32_t len = get32(kPropBase + off + 4);
      if (id != kEntryFree)
        f(id, std::span<const std::byte>(buf_.data() + kPropBase + off + 8, len));
      off += 8 + ((len + 7) & ~7u);
    }
  }

  [[nodiscard]] bool has_label(std::uint32_t label_id) const;
  [[nodiscard]] Status add_label(std::uint32_t label_id);
  bool remove_label(std::uint32_t label_id);
  [[nodiscard]] std::vector<std::uint32_t> labels() const;
  [[nodiscard]] std::vector<std::vector<std::byte>> get_props(std::uint32_t ptype) const;
  [[nodiscard]] std::vector<std::uint32_t> ptypes() const;

  [[nodiscard]] Status reshape(std::uint32_t new_prop_cap);

  [[nodiscard]] std::size_t dirty_lo() const { return dirty_lo_; }
  [[nodiscard]] std::size_t dirty_hi() const { return dirty_hi_; }
  [[nodiscard]] bool is_dirty() const { return dirty_hi_ > dirty_lo_; }
  void reset_dirty() {
    dirty_lo_ = static_cast<std::size_t>(-1);
    dirty_hi_ = 0;
  }
  void mark_all_dirty() { mark(0, buf_.size()); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  [[nodiscard]] std::uint64_t get64(std::size_t off) const {
    std::uint64_t v;
    std::memcpy(&v, buf_.data() + off, 8);
    return v;
  }
  [[nodiscard]] std::uint32_t get32(std::size_t off) const {
    std::uint32_t v;
    std::memcpy(&v, buf_.data() + off, 4);
    return v;
  }
  void put64(std::size_t off, std::uint64_t v) {
    std::memcpy(buf_.data() + off, &v, 8);
    mark(off, off + 8);
  }
  void put32(std::size_t off, std::uint32_t v) {
    std::memcpy(buf_.data() + off, &v, 4);
    mark(off, off + 4);
  }
  void mark(std::size_t lo, std::size_t hi) {
    if (lo < dirty_lo_) dirty_lo_ = lo;
    if (hi > dirty_hi_) dirty_hi_ = hi;
  }

  std::vector<std::byte>& buf_;
  std::size_t dirty_lo_ = static_cast<std::size_t>(-1);
  std::size_t dirty_hi_ = 0;
};

}  // namespace gdi::layout
