#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace gdi::net {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

NetClient::NetClient(ClientConfig cfg) : cfg_(cfg), fault_(cfg.fault) {}

NetClient::~NetClient() { close_socket(); }

void NetClient::close_socket() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  rx_.clear();
  stash_.clear();
}

bool NetClient::write_all_(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::byte*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd_, p + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Blocking socket: only hit under extreme kernel-buffer pressure.
      pollfd pf{fd_, POLLOUT, 0};
      ::poll(&pf, 1, 100);
      continue;
    }
    return false;
  }
  return true;
}

bool NetClient::send_raw(const void* data, std::size_t n) {
  if (fd_ < 0) return false;
  if (!write_all_(data, n)) {
    close_socket();
    return false;
  }
  return true;
}

Status NetClient::connect_handshake() {
  close_socket();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::kNoSpace;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::kNoSpace;
  }
  fd_ = fd;
  HelloBody hello{cfg_.auth_token, cfg_.tenant_id};
  std::vector<std::byte> f;
  encode_frame(f, FrameType::kHello, hello);
  if (!send_raw(f.data(), f.size())) return Status::kNoSpace;

  // Wait for HelloAck (or Bye). A reconnecting tenant's handshake is held by
  // the server until the previous session drains, so be patient up to the
  // io timeout rather than one poll round.
  const double deadline = now_ms() + cfg_.io_timeout_ms;
  while (now_ms() < deadline) {
    pollfd pf{fd_, POLLIN, 0};
    if (::poll(&pf, 1, 50) <= 0) continue;
    std::byte buf[1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      close_socket();
      return Status::kStale;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      close_socket();
      return Status::kNoSpace;
    }
    rx_.insert(rx_.end(), buf, buf + n);
    Frame fr;
    std::size_t consumed = 0;
    const DecodeResult dr = decode_frame(rx_, kMaxFrameLen, &fr, &consumed);
    if (dr == DecodeResult::kNeedMore) continue;
    if (dr == DecodeResult::kBad) {
      close_socket();
      return Status::kStale;
    }
    // fr.payload aliases rx_: parse the body BEFORE erasing the consumed
    // bytes, or the erase shifts the buffer out from under the span.
    if (fr.type == FrameType::kHelloAck) {
      HelloAckBody ack;
      if (!read_body(fr.payload, &ack)) {
        close_socket();
        return Status::kStale;
      }
      rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(consumed));
      credits_ = ack.credits;
      watermark_ = ack.last_acked_write_tag;
      return Status::kOk;
    }
    if (fr.type == FrameType::kBye) {
      ByeBody b;
      (void)read_body(fr.payload, &b);
      close_socket();
      switch (static_cast<ByeReason>(b.reason)) {
        case ByeReason::kCapacity:
          return Status::kOverloaded;
        case ByeReason::kDraining:
          return Status::kShutdown;
        case ByeReason::kAuthFailed:
          return Status::kInvalidArgument;
        default:
          return Status::kStale;
      }
    }
    close_socket();
    return Status::kStale;
  }
  close_socket();
  return Status::kStale;
}

Status NetClient::send_request(const server::Request& r) {
  if (fd_ < 0) return Status::kNoSpace;
  std::vector<std::byte> f;
  encode_frame(f, FrameType::kRequest, r);
  const NetFaultInjector::Action act = fault_.on_frame();
  if (act.stall)
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        fault_.config().stall_ms));
  if (act.reorder && stash_.empty()) {
    // Hold this frame; it goes out right after the next one (a swapped pair).
    stash_ = std::move(f);
    return Status::kOk;
  }
  if (act.corrupt) {
    const std::size_t at = static_cast<std::size_t>(fault_.draw_below(f.size()));
    f[at] ^= std::byte{0x5a};
  }
  if (act.truncate) {
    // A strict prefix, then the connection dies: the torn-frame case.
    const std::size_t keep =
        1 + static_cast<std::size_t>(fault_.draw_below(f.size() - 1));
    f.resize(keep);
    (void)send_raw(f.data(), f.size());
    close_socket();
    return Status::kOk;
  }
  if (!send_raw(f.data(), f.size())) return Status::kNoSpace;
  if (!flush_stash_()) return Status::kNoSpace;
  if (act.disconnect) close_socket();
  return Status::kOk;
}

bool NetClient::flush_stash_() {
  if (stash_.empty() || fd_ < 0) return true;
  std::vector<std::byte> f = std::move(stash_);
  stash_.clear();
  return send_raw(f.data(), f.size());
}

bool NetClient::poll_frames(std::vector<server::Reply>* out, int timeout_ms,
                            ByeReason* bye) {
  if (fd_ < 0) return false;
  (void)flush_stash_();  // nothing else coming: release a reorder-held frame
  const double deadline = now_ms() + timeout_ms;
  bool waited = false;
  for (;;) {
    // Decode everything already buffered.
    for (;;) {
      Frame fr;
      std::size_t consumed = 0;
      const DecodeResult dr = decode_frame(rx_, kMaxFrameLen, &fr, &consumed);
      if (dr == DecodeResult::kNeedMore) break;
      if (dr == DecodeResult::kBad) {
        close_socket();
        return false;
      }
      // fr.payload aliases rx_: parse the body BEFORE erasing the consumed
      // bytes, or the erase shifts the buffer out from under the span.
      if (fr.type == FrameType::kReply) {
        server::Reply rep;
        const bool ok = read_body(fr.payload, &rep);
        rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(consumed));
        if (ok && out != nullptr) out->push_back(rep);
        waited = true;  // got something: return after draining the buffer
        continue;
      }
      if (fr.type == FrameType::kBye) {
        ByeBody b;
        if (read_body(fr.payload, &b) && bye != nullptr)
          *bye = static_cast<ByeReason>(b.reason);
        close_socket();
        return false;
      }
      close_socket();  // anything else is a server-side protocol violation
      return false;
    }
    if (waited) return true;
    const int remain = static_cast<int>(deadline - now_ms());
    if (remain <= 0) return true;  // silence; connection still fine
    pollfd pf{fd_, POLLIN, 0};
    const int pr = ::poll(&pf, 1, std::min(remain, 50));
    if (pr < 0 && errno != EINTR) {
      close_socket();
      return false;
    }
    if (pr <= 0) continue;
    std::byte buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      close_socket();
      return false;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      close_socket();
      return false;
    }
    rx_.insert(rx_.end(), buf, buf + n);
  }
}

void NetClient::finish() {
  if (fd_ < 0) return;
  ByeBody b{static_cast<std::uint32_t>(ByeReason::kDone), 0};
  std::vector<std::byte> f;
  encode_frame(f, FrameType::kBye, b);
  (void)send_raw(f.data(), f.size());
  // Drain until the server's closing Bye (poll_frames returns false on it).
  std::vector<server::Reply> sink;
  const double deadline = now_ms() + cfg_.io_timeout_ms;
  while (fd_ >= 0 && now_ms() < deadline) (void)poll_frames(&sink, 50);
  close_socket();
}

StreamResult NetClient::run_stream(const std::vector<server::Request>& reqs) {
  StreamResult res;
  if (reqs.empty()) {
    res.finished = true;
    return res;
  }
  const std::size_t n = reqs.size();
  std::vector<bool> done(n, false);
  std::vector<bool> inflight(n, false);
  // tag -> index: tags are strictly increasing, so a binary search suffices.
  const auto index_of = [&](std::uint64_t tag) -> std::ptrdiff_t {
    const auto it = std::lower_bound(
        reqs.begin(), reqs.end(), tag,
        [](const server::Request& r, std::uint64_t t) { return r.client_tag < t; });
    if (it == reqs.end() || it->client_tag != tag) return -1;
    return it - reqs.begin();
  };
  server::RetryBackoff overload_backoff(cfg_.backoff);
  server::RetryBackoff reconnect_backoff(cfg_.backoff);
  std::size_t completed = 0;
  std::size_t window = 0;

  const auto absorb_watermark = [&](std::uint64_t w) {
    for (std::size_t i = 0; i < n && reqs[i].client_tag <= w; ++i) {
      if (!done[i]) {
        // Completed before the disconnect; the reply itself was lost. The
        // server's watermark is the durable acknowledgement.
        done[i] = true;
        ++completed;
        ++res.ok;
      }
    }
  };

  std::size_t connect_attempts = 0;
  while (completed < n) {
    if (!connected()) {
      if (res.reconnects >= cfg_.max_reconnects ||
          connect_attempts > cfg_.max_reconnects)
        break;
      ++connect_attempts;
      const Status st = connect_handshake();
      if (st != Status::kOk) {
        if (st == Status::kShutdown) break;  // draining: nothing more to do
        reconnect_backoff.backoff();
        continue;
      }
      reconnect_backoff.reset();
      ++res.reconnects;
      absorb_watermark(watermark_);
      std::fill(inflight.begin(), inflight.end(), false);
      window = 0;
    }
    // Fill the window with the lowest unfinished, un-inflight requests.
    const std::uint32_t cap = std::max<std::uint32_t>(credits_, 1);
    for (std::size_t i = 0; i < n && window < cap; ++i) {
      if (done[i] || inflight[i]) continue;
      if (send_request(reqs[i]) != Status::kOk) break;
      // Mark in flight even when the injector mangled or dropped the frame:
      // the reply timeout below funnels us into reconnect-and-replay.
      inflight[i] = true;
      ++window;
      if (!connected()) break;
    }
    if (!connected()) continue;

    std::vector<server::Reply> replies;
    const bool alive =
        poll_frames(&replies, static_cast<int>(cfg_.io_timeout_ms));
    bool progressed = false;
    double overload_hint_us = 0;
    for (const server::Reply& rep : replies) {
      const std::ptrdiff_t i = index_of(rep.client_tag);
      if (i < 0) {
        ++res.duplicate_replies;
        continue;
      }
      if (inflight[static_cast<std::size_t>(i)]) {
        inflight[static_cast<std::size_t>(i)] = false;
        if (window > 0) --window;
      }
      if (done[static_cast<std::size_t>(i)]) {
        ++res.duplicate_replies;
        continue;
      }
      progressed = true;
      switch (rep.status) {
        case Status::kOk:
          done[static_cast<std::size_t>(i)] = true;
          ++completed;
          ++res.ok;
          break;
        case Status::kNotFound:
          done[static_cast<std::size_t>(i)] = true;
          ++completed;
          ++res.not_found;
          break;
        case Status::kOverloaded:
          // Typed shed: not completed; re-send after backing off (the server
          // hint rides v1 in ns).
          ++res.overload_sheds;
          overload_hint_us =
              std::max(overload_hint_us, static_cast<double>(rep.v1) / 1000.0);
          break;
        case Status::kInvalidArgument:
          // In-flight duplicate answer; the original reply is still coming.
          ++res.duplicate_replies;
          break;
        default:
          done[static_cast<std::size_t>(i)] = true;
          ++completed;
          ++res.failed;
          break;
      }
    }
    if (overload_hint_us > 0 || (!replies.empty() && !progressed)) {
      if (overload_hint_us > 0) overload_backoff.backoff(overload_hint_us);
    } else if (progressed) {
      overload_backoff.reset();
    }
    if (!alive) {
      close_socket();
      continue;
    }
    if (replies.empty() && window > 0) {
      // Reply deadline expired with requests outstanding: a mangled frame
      // (or a stalled server) wedged this connection. Replay on a fresh one.
      close_socket();
    }
  }
  res.completed = completed;
  res.finished = completed == n;
  if (connected()) finish();
  return res;
}

}  // namespace gdi::net
