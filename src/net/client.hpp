// Blocking socket client for the src/net/ front end. Used by tests and the
// socket bench; production clients would look the same.
//
// The client owns one nonblocking-at-the-server, blocking-here TCP
// connection and drives the wire.hpp conversation: Hello/HelloAck handshake,
// a credit-window of Request frames, Reply harvesting, Bye. Two layers:
//
//  * the raw layer (connect_handshake / send_request / poll_frames) is what
//    the robustness tests poke: send_request routes every encoded frame
//    through a NetFaultInjector (seeded, deterministic), which may corrupt a
//    byte, truncate the tail, stall, drop the connection afterwards, or swap
//    the frame with the next one (reorder) -- the client-side half of the
//    PR 6 fault-injection pattern, aimed at the server's decoder;
//
//  * run_stream is the exactly-once driver: it pushes a fixed request list
//    (strictly increasing client_tags) through the window, retries
//    kOverloaded sheds via server::RetryBackoff (honouring the server's
//    retry-after hint in Reply::v1), and on any disconnect -- injected,
//    server-initiated, or a reply timeout -- reconnects and replays the
//    unacknowledged tail. HelloAck's watermark marks everything at or below
//    it completed, and the server's reply cache guarantees a replayed
//    committed write is acknowledged, never re-applied, so the driver
//    terminates with every request completed exactly once no matter where
//    the faults landed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "net/fault.hpp"
#include "net/wire.hpp"
#include "server/retry.hpp"
#include "server/scheduler.hpp"

namespace gdi::net {

struct ClientConfig {
  std::uint16_t port = 0;
  std::uint64_t auth_token = 0;
  std::uint64_t tenant_id = 1;
  NetFaultConfig fault;          ///< client-send-side fault injection
  double io_timeout_ms = 5000;   ///< reply/handshake progress deadline
  std::size_t max_reconnects = 1000;  ///< run_stream gives up beyond this
  server::RetryBackoff::Config backoff;  ///< kOverloaded re-send policy
};

/// What run_stream did. `completed` counts distinct tags acknowledged
/// (directly or via a reconnect watermark); the driver succeeded iff
/// finished && completed == requests submitted.
struct StreamResult {
  std::uint64_t ok = 0;          ///< replies with kOk
  std::uint64_t not_found = 0;   ///< replies with kNotFound (missing reads)
  std::uint64_t failed = 0;      ///< other terminal statuses (incl. kShutdown)
  std::uint64_t overload_sheds = 0;   ///< kOverloaded replies (retried)
  std::uint64_t reconnects = 0;
  std::uint64_t duplicate_replies = 0;  ///< dedup'd or in-flight-dup answers
  std::uint64_t completed = 0;   ///< distinct tags done
  bool finished = false;         ///< all requests completed before the bounds
};

class NetClient {
 public:
  explicit NetClient(ClientConfig cfg);
  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connect to 127.0.0.1:port and run the Hello/HelloAck handshake.
  /// kOk on success; kOverloaded (capacity Bye), kShutdown (draining Bye),
  /// kInvalidArgument (auth Bye), kNoSpace (socket/connect failure),
  /// kStale (timeout / malformed ack).
  Status connect_handshake();
  void close_socket();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  [[nodiscard]] std::uint32_t credits() const { return credits_; }
  /// The server's completed watermark from the latest HelloAck.
  [[nodiscard]] std::uint64_t watermark() const { return watermark_; }

  /// Encode + send one request frame through the fault injector. kOk also
  /// when the frame was deliberately mangled in flight (the caller cannot
  /// tell -- that is the point); kNoSpace on a real socket error.
  Status send_request(const server::Request& r);

  /// Send raw bytes verbatim (tests craft malformed frames with this).
  bool send_raw(const void* data, std::size_t n);

  /// Read frames until `timeout_ms` of silence or the buffer empties.
  /// Replies are appended to `*out`. Returns false when the connection is
  /// over (EOF, error, or a Bye -- reason in *bye if non-null).
  bool poll_frames(std::vector<server::Reply>* out, int timeout_ms,
                   ByeReason* bye = nullptr);

  /// Orderly close: Bye(kDone), then wait for the server's closing Bye.
  void finish();

  /// Exactly-once driver over a fixed request list; see the header comment.
  /// Requests must carry strictly increasing client_tags starting at
  /// watermark+1 (assign 1..n for a fresh tenant).
  StreamResult run_stream(const std::vector<server::Request>& reqs);

 private:
  bool flush_stash_();
  bool write_all_(const void* data, std::size_t n);

  ClientConfig cfg_;
  NetFaultInjector fault_;
  int fd_ = -1;
  std::uint32_t credits_ = 0;
  std::uint64_t watermark_ = 0;
  std::vector<std::byte> rx_;
  std::vector<std::byte> stash_;  ///< reorder fault: frame held for one send
};

}  // namespace gdi::net
