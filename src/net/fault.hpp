// Deterministic fault injection for the socket transport -- the PR 6
// rma::FaultInjector pattern (pure function of seed + consultation order)
// extended to connection-level failures.
//
// The injector sits on the *sending* side of a net::Client: each outgoing
// request frame draws once and may be corrupted (one byte flipped somewhere
// in the encoded frame), truncated (a prefix is written and the connection
// dies mid-frame -- the torn-frame case a length-prefixed decoder must treat
// as kNeedMore until the close), stalled (the sender sleeps, modeling a
// network pause and exercising the server's slow-peer handling), reordered
// (the frame swaps places with the next one -- legal for requests whose tags
// are deduplicated server-side), or followed by a disconnect (the socket is
// closed right after the frame, mid-window). Corrupt/truncate/disconnect all
// funnel the client into its reconnect-and-replay path, which is exactly the
// machinery the churn soak wants to hammer.
//
// Decisions are a pure function of (seed, frame order): a failing soak
// schedule replays from its seed, like GDI_FAULT_SEED does for the RMA layer.
#pragma once

#include <cstdint>

namespace gdi::net {

struct NetFaultConfig {
  std::uint64_t seed = 0;  ///< 0 = injector disabled (all draws say "clean")

  double corrupt_p = 0.0;     ///< flip one byte of the encoded frame
  double truncate_p = 0.0;    ///< send a strict prefix, then disconnect
  double stall_p = 0.0;       ///< sleep stall_ms before sending
  double disconnect_p = 0.0;  ///< send intact, then disconnect
  double reorder_p = 0.0;     ///< swap this frame with the next request
  double stall_ms = 2.0;
};

class NetFaultInjector {
 public:
  explicit NetFaultInjector(NetFaultConfig cfg)
      : cfg_(cfg), state_(cfg.seed != 0 ? cfg.seed : 0x9e3779b97f4a7c15ULL) {}

  struct Action {
    bool corrupt = false;
    bool truncate = false;
    bool stall = false;
    bool disconnect = false;
    bool reorder = false;
    [[nodiscard]] bool any() const {
      return corrupt || truncate || stall || disconnect || reorder;
    }
  };

  /// Fate of the next outgoing request frame. At most one destructive fault
  /// fires per frame (first match wins) so a schedule stays interpretable.
  [[nodiscard]] Action on_frame() {
    Action a;
    if (cfg_.seed == 0) return a;
    if (chance(cfg_.corrupt_p))
      a.corrupt = true;
    else if (chance(cfg_.truncate_p))
      a.truncate = true;
    else if (chance(cfg_.disconnect_p))
      a.disconnect = true;
    else if (chance(cfg_.reorder_p))
      a.reorder = true;
    if (chance(cfg_.stall_p)) a.stall = true;
    return a;
  }

  /// Uniform draw in [0, n) -- picks the corrupted byte / truncation point.
  [[nodiscard]] std::uint64_t draw_below(std::uint64_t n) {
    return n == 0 ? 0 : next() % n;
  }

  [[nodiscard]] const NetFaultConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
  }
  [[nodiscard]] bool chance(double p) {
    if (p <= 0.0) return false;
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

  NetFaultConfig cfg_;
  std::uint64_t state_;
};

}  // namespace gdi::net
