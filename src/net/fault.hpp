// Deterministic fault injection for the socket transport -- the PR 6
// rma::FaultInjector pattern (pure function of seed + consultation order)
// extended to connection-level failures.
//
// The injector sits on the *sending* side of a net::Client: each outgoing
// request frame draws once and may be corrupted (one byte flipped somewhere
// in the encoded frame), truncated (a prefix is written and the connection
// dies mid-frame -- the torn-frame case a length-prefixed decoder must treat
// as kNeedMore until the close), stalled (the sender sleeps, modeling a
// network pause and exercising the server's slow-peer handling), reordered
// (the frame swaps places with the next one -- legal for requests whose tags
// are deduplicated server-side), or followed by a disconnect (the socket is
// closed right after the frame, mid-window). Corrupt/truncate/disconnect all
// funnel the client into its reconnect-and-replay path, which is exactly the
// machinery the churn soak wants to hammer.
//
// Decisions are a pure function of (seed, frame order): a failing soak
// schedule replays from its seed, like GDI_FAULT_SEED does for the RMA layer.
// The listener-side counterpart (ServerFaultInjector, below) models the
// failures only the *server* can produce: dropped accepts, a half-open peer
// whose bytes arrive nowhere (the idle-timeout reaping case), stalled or
// partial reply writes, and the two process-death windows recovery must make
// invisible -- die mid-reply-frame and die between commit durability and
// reply transmission (kPreAck). Kill switches poison the injector exactly
// like rma::FaultInjector's, and the listener also poisons the rank's RMA
// injector so teardown refuses to seal the "lost" WAL tail.
#pragma once

#include <cstdint>

namespace gdi::net {

struct NetFaultConfig {
  std::uint64_t seed = 0;  ///< 0 = injector disabled (all draws say "clean")

  double corrupt_p = 0.0;     ///< flip one byte of the encoded frame
  double truncate_p = 0.0;    ///< send a strict prefix, then disconnect
  double stall_p = 0.0;       ///< sleep stall_ms before sending
  double disconnect_p = 0.0;  ///< send intact, then disconnect
  double reorder_p = 0.0;     ///< swap this frame with the next request
  double stall_ms = 2.0;
};

class NetFaultInjector {
 public:
  explicit NetFaultInjector(NetFaultConfig cfg)
      : cfg_(cfg), state_(cfg.seed != 0 ? cfg.seed : 0x9e3779b97f4a7c15ULL) {}

  struct Action {
    bool corrupt = false;
    bool truncate = false;
    bool stall = false;
    bool disconnect = false;
    bool reorder = false;
    [[nodiscard]] bool any() const {
      return corrupt || truncate || stall || disconnect || reorder;
    }
  };

  /// Fate of the next outgoing request frame. At most one destructive fault
  /// fires per frame (first match wins) so a schedule stays interpretable.
  [[nodiscard]] Action on_frame() {
    Action a;
    if (cfg_.seed == 0) return a;
    if (chance(cfg_.corrupt_p))
      a.corrupt = true;
    else if (chance(cfg_.truncate_p))
      a.truncate = true;
    else if (chance(cfg_.disconnect_p))
      a.disconnect = true;
    else if (chance(cfg_.reorder_p))
      a.reorder = true;
    if (chance(cfg_.stall_p)) a.stall = true;
    return a;
  }

  /// Uniform draw in [0, n) -- picks the corrupted byte / truncation point.
  [[nodiscard]] std::uint64_t draw_below(std::uint64_t n) {
    return n == 0 ? 0 : next() % n;
  }

  [[nodiscard]] const NetFaultConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
  }
  [[nodiscard]] bool chance(double p) {
    if (p <= 0.0) return false;
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

  NetFaultConfig cfg_;
  std::uint64_t state_;
};

/// Listener-side process-death windows a ServerFaultInjector can arm.
enum class ServerKillPoint : std::uint8_t {
  kNone = 0,
  kPreAck,    ///< die after the Nth completed write folds into the resumption
              ///< state, before its reply frame is queued -- the commit is
              ///< durable (its WAL epoch sealed before the reply was
              ///< harvested), the client never hears about it
  kMidReply,  ///< die after a strict prefix of the next reply frame hit the
              ///< socket -- the peer holds a torn frame AND the ack is lost
};

struct ServerFaultConfig {
  std::uint64_t seed = 0;  ///< 0 = probabilistic draws disabled

  double accept_drop_p = 0.0;    ///< close an accepted connection immediately
  double stall_flush_p = 0.0;    ///< skip one connection's flush round
  double partial_write_p = 0.0;  ///< flush only a random prefix this round
  /// Mute the Nth connection to *complete its handshake* (1-based; 0 =
  /// never): its inbound bytes are then read and discarded without decoding,
  /// modeling a half-open peer the idle timeout must reap. Deterministic by
  /// index (not a probability) so a test can aim it at a specific client.
  std::uint64_t half_open_conn = 0;

  // Kill switch (at most one; fires once, deterministic, seed-independent --
  // the same contract as rma::FaultConfig::kill_at).
  ServerKillPoint kill_at = ServerKillPoint::kNone;
  std::uint64_t kill_after = 1;  ///< fire on the Nth event of kill_at's type
};

/// Seeded listener-side injector; wired via Listener::set_fault_injector and
/// consulted from the poll loop's accept/read/harvest/flush stages. Pure
/// function of (seed, consultation order); poisoned after any kill.
class ServerFaultInjector {
 public:
  explicit ServerFaultInjector(ServerFaultConfig cfg)
      : cfg_(cfg), state_(cfg.seed != 0 ? cfg.seed : 0x9e3779b97f4a7c15ULL) {}

  [[nodiscard]] bool drop_accept() {
    return enabled() && chance(cfg_.accept_drop_p);
  }
  /// `opened` = 1-based count of connections that completed their handshake.
  [[nodiscard]] bool mute_conn(std::uint64_t opened) const {
    return cfg_.half_open_conn != 0 && opened == cfg_.half_open_conn;
  }
  [[nodiscard]] bool stall_flush() {
    return enabled() && chance(cfg_.stall_flush_p);
  }
  [[nodiscard]] bool partial_write() {
    return enabled() && chance(cfg_.partial_write_p);
  }
  [[nodiscard]] std::uint64_t draw_below(std::uint64_t n) {
    return n == 0 ? 0 : next() % n;
  }

  /// Count one event of `at`'s type; true = the armed kill fires here. The
  /// caller performs the window's partial work, calls mark_killed() (and
  /// poisons the rank's rma injector), and throws rma::FaultKill.
  [[nodiscard]] bool kill_now(ServerKillPoint at) {
    if (killed_ || cfg_.kill_at != at) return false;
    return ++events_ >= cfg_.kill_after;
  }

  void mark_killed() { killed_ = true; }
  [[nodiscard]] bool killed() const { return killed_; }
  [[nodiscard]] const ServerFaultConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] bool enabled() const { return cfg_.seed != 0 && !killed_; }
  [[nodiscard]] std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
  }
  [[nodiscard]] bool chance(double p) {
    if (p <= 0.0) return false;
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

  ServerFaultConfig cfg_;
  std::uint64_t state_;
  std::uint64_t events_ = 0;
  bool killed_ = false;
};

}  // namespace gdi::net
