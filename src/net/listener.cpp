#include "net/listener.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "gdi/commit_pipeline.hpp"
#include "gdi/database.hpp"
#include "rma/fault.hpp"

namespace gdi::net {

namespace {

// Extra Conn bookkeeping lives in the header; these are shared local helpers.

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

double Listener::now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Listener::Listener(server::TenantScheduler* ts, NetConfig cfg)
    : ts_(ts), cfg_(cfg) {
  if (cfg_.credits == 0) cfg_.credits = 1;
  if (cfg_.max_frame_bytes < sizeof(server::Request))
    cfg_.max_frame_bytes = sizeof(server::Request);
  if (cfg_.max_frame_bytes > kMaxFrameLen) cfg_.max_frame_bytes = kMaxFrameLen;
}

Listener::~Listener() {
  for (auto& c : conns_)
    if (c->fd >= 0) ::close(c->fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status Listener::start() {
  if (listen_fd_ >= 0) return Status::kOk;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::kNoSpace;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return Status::kNoSpace;
  }
  socklen_t alen = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen) == 0)
    port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  return Status::kOk;
}

std::size_t Listener::buffered_bytes() const {
  std::size_t n = 0;
  for (const auto& c : conns_) n += c->rx.size() + c->tx.size();
  return n;
}

// ---------------------------------------------------------------------------
// Outbound path
// ---------------------------------------------------------------------------

void Listener::send_reply(Conn& c, const Reply_t& rep) {
  encode_frame(c.tx, FrameType::kReply, rep);
  c.tx_encoded += sizeof(FrameHeader) + sizeof(Reply_t);
  c.reply_ends.push_back(c.tx_encoded);
}

void Listener::queue_bye(Conn& c, ByeReason reason, std::uint32_t retry_after_us) {
  ByeBody b{static_cast<std::uint32_t>(reason), retry_after_us};
  encode_frame(c.tx, FrameType::kBye, b);
  c.tx_encoded += sizeof(FrameHeader) + sizeof(ByeBody);
  c.state = ConnState::kClosing;
}

bool Listener::flush_conn(Conn& c, rma::Rank& self) {
  std::size_t budget = c.tx.size();
  if (faults_ != nullptr && !c.tx.empty()) {
    if (faults_->stall_flush()) return true;  // skipped round, not an error
    if (!c.reply_ends.empty() &&
        faults_->kill_now(ServerKillPoint::kMidReply)) {
      // Process death mid-reply-frame: a strict prefix of the next reply
      // reaches the peer, then the rank dies. Poison the RMA injector too so
      // the unwinding teardown refuses to seal the WAL tail this "crash"
      // must not keep.
      const std::size_t remain = c.reply_ends.front() - c.tx_written;
      const std::size_t prefix =
          remain > 1 ? std::min(c.tx.size(), remain - 1) : 0;
      if (prefix > 0) (void)::send(c.fd, c.tx.data(), prefix, MSG_NOSIGNAL);
      faults_->mark_killed();
      if (rma::FaultInjector* f = self.faults()) f->mark_killed();
      throw rma::FaultKill("listener mid-reply kill");
    }
    if (faults_->partial_write())
      budget = static_cast<std::size_t>(faults_->draw_below(c.tx.size()));
  }
  while (!c.tx.empty() && budget > 0) {
    const ssize_t n =
        ::send(c.fd, c.tx.data(), std::min(c.tx.size(), budget), MSG_NOSIGNAL);
    if (n > 0) {
      budget -= static_cast<std::size_t>(n);
      c.tx.erase(c.tx.begin(), c.tx.begin() + n);
      c.tx_written += static_cast<std::size_t>(n);
      self.counters().net_frames_tx +=
          [&] {  // count reply frames that became fully visible to the peer
            std::uint64_t done = 0;
            while (!c.reply_ends.empty() && c.reply_ends.front() <= c.tx_written) {
              c.reply_ends.pop_front();
              if (c.in_window > 0) c.in_window -= 1;  // credit returned
              ++done;
            }
            return done;
          }();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Slow reader: its window will throttle it; note the stall transition.
      if (!c.write_blocked) {
        c.write_blocked = true;
        self.counters().net_backpressure_stalls += 1;
      }
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET / ...: peer is gone
  }
  if (!c.tx.empty()) return true;  // injected partial write: retry next round
  c.write_blocked = false;
  return true;
}

// ---------------------------------------------------------------------------
// Inbound path
// ---------------------------------------------------------------------------

void Listener::accept_ready(rma::Rank& self, double now) {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure: retry on the next poll round
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    self.counters().net_accepted += 1;
    if (faults_ != nullptr && faults_->drop_accept()) {
      // Injected accept-drop: the peer sees an immediate close and retries
      // through its ordinary reconnect path.
      ::close(fd);
      continue;
    }
    auto c = std::make_unique<Conn>();
    c->fd = fd;
    c->accepted_ms = now;
    c->last_rx_ms = now;
    if (conns_.size() >= cfg_.max_connections || draining_) {
      // Typed degradation: tell the peer why and when to retry, then close
      // once the Bye flushes (lifecycle enforces the deadline).
      queue_bye(*c, draining_ ? ByeReason::kDraining : ByeReason::kCapacity,
                static_cast<std::uint32_t>(cfg_.retry_after_ns / 1000.0));
    }
    conns_.push_back(std::move(c));
  }
}

bool Listener::on_request(Conn& c, const server::Request& r, rma::Rank& self) {
  TenantState& t = *c.tstate;
  const std::uint64_t tag = r.client_tag;
  if (c.in_window >= cfg_.credits) {
    // Window overrun: the peer ignored flow control, so its stream state is
    // untrustworthy. This is a protocol error, not an overload shed.
    self.counters().net_bad_frames += 1;
    queue_bye(c, ByeReason::kProtocolError);
    return false;
  }
  c.in_window += 1;

  // Exactly-once resumption: a replayed tag that already completed as a
  // write is answered from the reply cache and never re-executed. Replayed
  // reads fall through and simply re-execute (idempotent).
  const bool completed =
      tag != 0 && (tag <= t.watermark ||
                   std::find(t.done_above.begin(), t.done_above.end(), tag) !=
                       t.done_above.end());
  if (completed && !server::is_read(r.op)) {
    const auto it = t.reply_cache.find(tag);
    if (it == t.reply_cache.end()) {
      // Cache pruned: the prune line trails the watermark by 2x the credit
      // window, so no honest client can still be replaying this tag -- the
      // peer is desynced (or impossibly stale after a restart). Re-executing
      // would double-apply and inventing an ack would lie about the value,
      // so close typed instead.
      self.counters().net_replay_cache_misses += 1;
      queue_bye(c, ByeReason::kStaleReplay);
      return false;
    }
    self.counters().net_replay_hits += 1;
    send_reply(c, it->second);
    return true;
  }
  if (t.submitted.count(tag) != 0) {
    // The tag is still executing: a duplicate in flight would double-apply,
    // so answer it typed instead of re-submitting.
    send_reply(c, Reply_t{tag, Status::kInvalidArgument, 0, 0, 0});
    return true;
  }

  server::Request q = r;
  // Arrival is stamped at receipt on the rank's simulated clock (the wire
  // field is never trusted): latency histograms then measure queueing +
  // service from the moment the frame was decoded.
  q.arrival_ns = self.sim_time_ns();
  const Status st = t.session->submit(q);
  if (st == Status::kOk) {
    t.submitted[tag] = !server::is_read(r.op);
    return true;
  }
  // Typed shed: kOverloaded (admission) or kShutdown (draining). v1 carries
  // the retry-after hint in ns; the request is answered, never dropped.
  send_reply(c, Reply_t{tag, st,
                        0, static_cast<std::int64_t>(cfg_.retry_after_ns), 0});
  return true;
}

void Listener::try_ack_handshake(Conn& c, rma::Rank& self) {
  if (draining_) {
    // A drain that began while this handshake was held (old session still
    // draining) must not open a fresh window: the held connection would
    // outlive the listener. Close it typed; the client retries elsewhere.
    queue_bye(c, ByeReason::kDraining);
    return;
  }
  TenantState& t = tenants_[c.tenant];
  if (t.conn != nullptr && t.conn != &c) {
    // Supersede: a reconnecting tenant means the old connection is dead or
    // half-open. Doom it; its session drains as an orphan first.
    Conn* old = t.conn;
    old->state = ConnState::kClosing;
    old->superseded = true;
    if (t.session != nullptr) t.session->close();
    t.conn = nullptr;
  }
  if (t.session != nullptr) {
    // The previous connection's session is still draining: every admitted
    // tag must complete (and be folded into the resumption state) before the
    // new window opens, or a replay could run concurrently with the
    // original. Stay held; lifecycle retries.
    c.state = ConnState::kHandshakeHeld;
    c.tstate = &t;
    return;
  }
  t.session = ts_->open_session();
  // Stamp the wire tenant id so this session's write commits piggyback their
  // acknowledgement on the WAL record (exactly-once across restarts).
  t.session->set_durable_tenant(c.tenant);
  t.conn = &c;
  c.tstate = &t;
  c.state = ConnState::kOpen;
  opened_total_ += 1;
  if (faults_ != nullptr && faults_->mute_conn(opened_total_)) c.muted = true;
  HelloAckBody ack{cfg_.credits, cfg_.max_frame_bytes, t.watermark};
  encode_frame(c.tx, FrameType::kHelloAck, ack);
  c.tx_encoded += sizeof(FrameHeader) + sizeof(HelloAckBody);
  (void)self;
}

bool Listener::on_frame(Conn& c, const Frame& f, rma::Rank& self, double now) {
  c.last_rx_ms = now;
  switch (c.state) {
    case ConnState::kHandshake: {
      if (f.type != FrameType::kHello) break;  // anything else: protocol error
      HelloBody hello;
      if (!read_body(f.payload, &hello)) break;
      if (hello.auth_token != cfg_.auth_token) {
        queue_bye(c, ByeReason::kAuthFailed);
        return true;
      }
      if (draining_) {
        queue_bye(c, ByeReason::kDraining);
        return true;
      }
      if (tenants_.find(hello.tenant_id) == tenants_.end() &&
          tenants_.size() >= cfg_.max_tenants) {
        queue_bye(c, ByeReason::kCapacity,
                  static_cast<std::uint32_t>(cfg_.retry_after_ns / 1000.0));
        return true;
      }
      c.tenant = hello.tenant_id;
      try_ack_handshake(c, self);
      return true;
    }
    case ConnState::kHandshakeHeld:
      break;  // the client must wait for HelloAck; early frames desync
    case ConnState::kOpen: {
      if (f.type == FrameType::kRequest) {
        server::Request r;
        if (!read_body(f.payload, &r)) break;
        return on_request(c, r, self);
      }
      if (f.type == FrameType::kBye) {
        // Orderly close: drain what was admitted, flush the tail, answer
        // with Bye(kDone). No disconnect is counted.
        c.client_bye = true;
        c.state = ConnState::kClosing;
        if (c.tstate != nullptr && c.tstate->session != nullptr)
          c.tstate->session->close();
        return true;
      }
      break;
    }
    case ConnState::kClosing:
      return true;  // ignore anything the peer still sends
  }
  self.counters().net_bad_frames += 1;
  queue_bye(c, ByeReason::kProtocolError);
  return true;
}

bool Listener::read_conn(Conn& c, rma::Rank& self, double now) {
  if (c.muted) {
    // Injected half-open peer: consume and discard inbound bytes without
    // decoding, and never refresh last_rx -- in_window stays 0, so only the
    // idle deadline can reap this connection (exactly what it must do).
    for (;;) {
      std::byte buf[4096];
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n == 0) return false;
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
      }
    }
  }
  // rx is bounded by one maximal frame: a frame always fits whole, and an
  // oversize length is rejected by the decoder before any payload buffering.
  const std::size_t cap = sizeof(FrameHeader) + cfg_.max_frame_bytes;
  bool progress = false;
  for (;;) {
    std::byte buf[4096];
    const std::size_t room = cap > c.rx.size() ? cap - c.rx.size() : 0;
    const std::size_t want = std::min(room + sizeof(buf) / 2, sizeof(buf));
    const ssize_t n = ::recv(c.fd, buf, want, 0);
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    if (c.state == ConnState::kClosing) continue;  // drain + discard
    c.rx.insert(c.rx.end(), buf, buf + n);
    // Decode every complete frame in the buffer.
    std::size_t head = 0;
    for (;;) {
      Frame f;
      std::size_t consumed = 0;
      const DecodeResult dr =
          decode_frame(std::span<const std::byte>(c.rx).subspan(head),
                       cfg_.max_frame_bytes, &f, &consumed);
      if (dr == DecodeResult::kNeedMore) break;
      if (dr == DecodeResult::kBad) {
        self.counters().net_bad_frames += 1;
        queue_bye(c, ByeReason::kProtocolError);
        c.rx.clear();
        head = 0;
        break;
      }
      self.counters().net_frames_rx += 1;
      progress = true;
      const bool keep = on_frame(c, f, self, now);
      head += consumed;
      if (!keep || c.state == ConnState::kClosing) {
        c.rx.clear();
        head = 0;
        break;
      }
    }
    if (head > 0) c.rx.erase(c.rx.begin(), c.rx.begin() + static_cast<std::ptrdiff_t>(head));
    if (c.rx.size() >= cap) {
      // A full buffer with no decodable frame cannot happen with a sane
      // decoder bound; treat it as a desynced stream.
      self.counters().net_bad_frames += 1;
      queue_bye(c, ByeReason::kProtocolError);
      c.rx.clear();
    }
  }
  (void)progress;
  return true;
}

// ---------------------------------------------------------------------------
// Harvest + lifecycle
// ---------------------------------------------------------------------------

bool Listener::record_completion(TenantState& t, const Reply_t& rep) {
  const auto sub = t.submitted.find(rep.client_tag);
  const bool is_write = sub != t.submitted.end() && sub->second;
  if (sub != t.submitted.end()) t.submitted.erase(sub);
  fold_completion(t, rep, is_write);
  return is_write;
}

void Listener::fold_completion(TenantState& t, const Reply_t& rep,
                               bool is_write) {
  const std::uint64_t tag = rep.client_tag;
  if (tag == 0 || tag <= t.watermark) return;
  if (std::find(t.done_above.begin(), t.done_above.end(), tag) !=
      t.done_above.end())
    return;
  // Cache every completed write's reply (status included: a replay of a
  // failed write must observe the same failure, not a re-execution).
  if (is_write) t.reply_cache[tag] = rep;
  t.done_above.push_back(tag);
  // Advance the watermark over the now-contiguous prefix.
  std::sort(t.done_above.begin(), t.done_above.end());
  std::size_t adv = 0;
  while (adv < t.done_above.size() && t.done_above[adv] == t.watermark + adv + 1)
    ++adv;
  if (adv > 0) {
    t.watermark += adv;
    t.done_above.erase(t.done_above.begin(),
                       t.done_above.begin() + static_cast<std::ptrdiff_t>(adv));
  }
  // Prune the reply cache: a client window is at most `credits`, so an
  // honest replay can never reach further back than this line.
  const std::uint64_t keep_above =
      t.watermark > 2ULL * cfg_.credits ? t.watermark - 2ULL * cfg_.credits : 0;
  while (!t.reply_cache.empty() && t.reply_cache.begin()->first <= keep_above)
    t.reply_cache.erase(t.reply_cache.begin());
}

// ---------------------------------------------------------------------------
// Crash-restart replay state
// ---------------------------------------------------------------------------

void Listener::restore_completion(std::uint64_t tenant, const Reply_t& rep) {
  // Log-replayed kTenantAck: acks are only logged for writes, so the reply
  // is always cached. Folding is idempotent (tags at or below the watermark
  // and duplicates in done_above are skipped), which a replayed log needs.
  fold_completion(tenants_[tenant], rep, /*is_write=*/true);
}

std::vector<std::byte> Listener::serialize_replay_state() const {
  if (tenants_.empty()) return {};
  std::vector<std::byte> out;
  const auto put = [&out](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    out.insert(out.end(), b, b + n);
  };
  const auto put32 = [&](std::uint32_t v) { put(&v, sizeof(v)); };
  const auto put64 = [&](std::uint64_t v) { put(&v, sizeof(v)); };
  put32(static_cast<std::uint32_t>(tenants_.size()));
  for (const auto& [tenant, t] : tenants_) {
    put64(tenant);
    put64(t.watermark);
    put32(static_cast<std::uint32_t>(t.done_above.size()));
    for (std::uint64_t tag : t.done_above) put64(tag);
    put32(static_cast<std::uint32_t>(t.reply_cache.size()));
    for (const auto& [tag, rep] : t.reply_cache) {
      put64(tag);
      put(&rep, sizeof(Reply_t));
    }
  }
  return out;
}

bool Listener::restore_replay_state(std::span<const std::byte> in) {
  if (in.empty()) return true;
  const std::byte* p = in.data();
  std::size_t left = in.size();
  bool ok = true;
  const auto take = [&](void* dst, std::size_t n) {
    if (left < n) {
      ok = false;
      std::memset(dst, 0, n);
      return;
    }
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
  };
  const auto take32 = [&] {
    std::uint32_t v;
    take(&v, sizeof(v));
    return v;
  };
  const auto take64 = [&] {
    std::uint64_t v;
    take(&v, sizeof(v));
    return v;
  };
  std::map<std::uint64_t, TenantState> fresh;
  const std::uint32_t n = take32();
  for (std::uint32_t i = 0; i < n && ok; ++i) {
    const std::uint64_t tenant = take64();
    TenantState t;
    t.watermark = take64();
    const std::uint32_t nd = take32();
    for (std::uint32_t k = 0; k < nd && ok; ++k)
      t.done_above.push_back(take64());
    const std::uint32_t nc = take32();
    for (std::uint32_t k = 0; k < nc && ok; ++k) {
      const std::uint64_t tag = take64();
      Reply_t rep;
      take(&rep, sizeof(Reply_t));
      if (ok) t.reply_cache[tag] = rep;
    }
    if (ok) fresh.emplace(tenant, std::move(t));
  }
  if (!ok || left != 0) return false;
  tenants_ = std::move(fresh);
  return true;
}

void Listener::harvest_replies(rma::Rank& self) {
  for (auto& [tenant, t] : tenants_) {
    if (t.session == nullptr) continue;
    for (const Reply_t& rep : t.session->take_replies()) {
      const bool was_write = record_completion(t, rep);
      if (was_write && faults_ != nullptr &&
          faults_->kill_now(ServerKillPoint::kPreAck)) {
        // The committed-but-unacked window: the write's redo record (with
        // its piggybacked kTenantAck) is already durable -- its WAL epoch
        // sealed before the reply could be harvested -- but the reply never
        // reaches the socket. Recovery must answer the replay from the
        // rebuilt cache, not re-execute.
        faults_->mark_killed();
        if (rma::FaultInjector* f = self.faults()) f->mark_killed();
        throw rma::FaultKill("listener pre-ack kill");
      }
      if (t.conn != nullptr) send_reply(*t.conn, rep);
      // No connection (orphan): the reply is dropped; the client learns the
      // outcome from the watermark / reply cache when it reconnects.
    }
  }
}

void Listener::drop_conn(std::size_t idx, rma::Rank& self, bool count_disconnect) {
  Conn& c = *conns_[idx];
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
  if (c.tstate != nullptr) {
    TenantState& t = *c.tstate;
    if (t.conn == &c) {
      t.conn = nullptr;
      if (t.session != nullptr) t.session->close();  // orphan: drains, then recycles
    }
  }
  if (count_disconnect) self.counters().net_disconnects += 1;
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(idx));
}

void Listener::lifecycle(rma::Rank& self, double now) {
  // Held handshakes: retry once the tenant's previous session has drained.
  for (auto& up : conns_) {
    Conn& c = *up;
    if (c.state == ConnState::kHandshakeHeld) try_ack_handshake(c, self);
  }
  // Orphaned sessions: fold the drained remainder into the resumption state
  // and recycle the slot (roster stays bounded under connection churn).
  for (auto& [tenant, t] : tenants_) {
    if (t.session != nullptr && t.conn == nullptr && t.session->quiesced()) {
      ts_->recycle(t.session);
      t.session = nullptr;
      t.submitted.clear();
    }
  }
  // Per-connection deadlines and close progression.
  for (std::size_t i = conns_.size(); i-- > 0;) {
    Conn& c = *conns_[i];
    bool drop = false;
    bool count = false;
    switch (c.state) {
      case ConnState::kHandshake:
      case ConnState::kHandshakeHeld:
        if (now - c.accepted_ms > cfg_.handshake_timeout_ms) {
          queue_bye(c, ByeReason::kIdleTimeout);
          c.close_deadline_ms = now;  // one flush attempt, then out
          count = true;
          (void)flush_conn(c, self);
          drop = true;
        }
        break;
      case ConnState::kOpen: {
        if (cfg_.idle_timeout_ms > 0 && c.in_window == 0 &&
            now - c.last_rx_ms > cfg_.idle_timeout_ms) {
          queue_bye(c, ByeReason::kIdleTimeout);
          c.close_deadline_ms = now + cfg_.drain_timeout_ms;
          break;
        }
        if (draining_ && c.tstate != nullptr && c.tstate->session != nullptr &&
            c.tstate->session->quiesced() && c.reply_ends.empty()) {
          queue_bye(c, ByeReason::kDraining);
          c.close_deadline_ms = now + cfg_.drain_timeout_ms;
        }
        break;
      }
      case ConnState::kClosing: {
        if (c.close_deadline_ms == 0) c.close_deadline_ms = now + cfg_.drain_timeout_ms;
        const bool drained =
            c.tstate == nullptr || c.tstate->session == nullptr ||
            c.tstate->conn != &c || c.tstate->session->quiesced();
        if (c.client_bye && drained && c.reply_ends.empty() && !c.bye_queued) {
          ByeBody b{static_cast<std::uint32_t>(ByeReason::kDone), 0};
          encode_frame(c.tx, FrameType::kBye, b);
          c.tx_encoded += sizeof(FrameHeader) + sizeof(ByeBody);
          c.bye_queued = true;
        }
        const bool flushed = c.tx.empty();
        if ((flushed && (!c.client_bye || c.bye_queued) && drained &&
             c.reply_ends.empty()) ||
            now > c.close_deadline_ms) {
          drop = true;
          count = !c.client_bye || !flushed || c.superseded;
        }
        break;
      }
    }
    if (drop) drop_conn(i, self, count);
  }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

bool Listener::poll_once(const std::shared_ptr<Database>& db, rma::Rank& self,
                         int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  const bool listening = listen_fd_ >= 0;
  if (listening) fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  for (const auto& c : conns_)
    fds.push_back(pollfd{c->fd,
                         static_cast<short>(POLLIN | (c->tx.empty() ? 0 : POLLOUT)),
                         0});
  ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

  const double now = now_ms();
  if (listening && (fds[0].revents & POLLIN) != 0) accept_ready(self, now);

  // Read in reverse so dropping a dead connection cannot shift an index we
  // have not visited yet (accepts above only appended).
  const std::size_t base = listening ? 1 : 0;
  const std::size_t scanned = fds.size() - base;
  for (std::size_t k = scanned; k-- > 0;) {
    const short rev = fds[base + k].revents;
    if (k >= conns_.size()) continue;
    if ((rev & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    if (!read_conn(*conns_[k], self, now))
      drop_conn(k, self, /*count_disconnect=*/conns_[k]->state != ConnState::kClosing ||
                                              !conns_[k]->tx.empty());
  }

  const bool dispatched = ts_->pump(db, self);
  if (!dispatched) {
    // Idle with an open epoch: fence it so deferred group acks do not wait
    // for more traffic (the drain_loop idle rule, transplanted here).
    CommitPipeline* cp = db->commit_pipeline(self);
    if (cp != nullptr && cp->epoch_open()) cp->sync(self);
  }
  harvest_replies(self);

  for (std::size_t i = conns_.size(); i-- > 0;) {
    Conn& c = *conns_[i];
    if (!c.tx.empty() && !flush_conn(c, self)) drop_conn(i, self, true);
  }
  lifecycle(self, now_ms());
  return dispatched;
}

void Listener::serve(const std::shared_ptr<Database>& db, rma::Rank& self) {
  (void)start();
  bool busy = true;
  for (;;) {
    if (stop_requested() && !draining_) {
      draining_ = true;
      drain_began_ms_ = now_ms();
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      ts_->begin_shutdown();
      // Close every live session: queued work still drains (close gates new
      // submits only), and quiesced() becomes reachable for the drain check.
      for (auto& up : conns_) {
        Conn& c = *up;
        if (c.tstate != nullptr && c.tstate->session != nullptr &&
            c.tstate->conn == &c)
          c.tstate->session->close();
      }
    }
    busy = poll_once(db, self, busy ? 0 : 1);
    if (draining_) {
      if (conns_.empty() && ts_->idle()) break;
      if (now_ms() - drain_began_ms_ > cfg_.drain_timeout_ms) {
        // Non-reading peers exhausted the drain budget: force the close.
        for (std::size_t i = conns_.size(); i-- > 0;) drop_conn(i, self, true);
        break;
      }
    }
  }
  // Everything socket-side is drained; the scheduler's own shutdown fences
  // the pipeline and completes any in-process sessions' remainders.
  ts_->shutdown(db, self);
}

}  // namespace gdi::net
