// Per-rank socket front end: a poll-based nonblocking listener that speaks
// the src/net/wire.hpp frame protocol and feeds the PR 7 TenantScheduler.
//
// Threading contract (inherited from the scheduler): an rma::Rank is only
// ever touched by its own thread, so ALL of the listener runs on the rank
// thread -- accept, read, frame decode, Session::submit, scheduler pump,
// reply harvest, and write-out are interleaved in one event loop
// (serve() / poll_once()). Sockets are nonblocking throughout; the loop
// never sleeps while anything is runnable and blocks in poll(2) for a
// bounded interval when idle. Clients are the *other* threads (or other
// processes): they only touch their own socket.
//
// Robustness posture, in order of appearance:
//  * handshake: first frame must be Hello{auth_token, tenant_id} within
//    handshake_timeout_ms; a bad token answers Bye(kAuthFailed), a full
//    connection/tenant table answers Bye(kCapacity, retry_after) -- typed
//    degradation the client can act on, never a silent drop;
//  * framing: every malformed frame (bad magic/version/type, oversize len,
//    CRC mismatch, wrong-shaped body) counts net_bad_frames and closes the
//    connection after a best-effort Bye(kProtocolError) -- framing is lost,
//    and the reconnect-replay protocol makes closing safe; buffers are
//    bounded (rx by one max frame, tx by the credit window), so no client
//    can grow server memory;
//  * flow control: HelloAck grants `credits` -- the max unanswered requests
//    on the connection. A credit returns when its reply frame has been fully
//    written to the socket, so a slow *reader* starves only itself: its
//    window empties, its tx buffer caps at window size, and the scheduler
//    loop and every other tenant proceed untouched (net_backpressure_stalls
//    counts write-blocked transitions). A client that overruns its window is
//    desynced and gets Bye(kProtocolError);
//  * overload: an admission-shed submit answers a Reply with kOverloaded and
//    a retry-after hint in v1 (see server/retry.hpp) instead of dropping the
//    connection; shutdown sheds answer kShutdown the same way;
//  * exactly-once resumption: per tenant the listener keeps the completed
//    request watermark, the completed set above it, and a bounded cache of
//    recent write replies. A reconnecting client's replayed write that
//    already committed is answered from the cache, never re-executed; reads
//    replay by re-execution. A reconnect (or a superseding connection from
//    the same tenant) is acknowledged only after the previous connection's
//    session has fully drained, so no tag can ever be in flight twice;
//  * graceful drain: request_stop() (any thread) stops accepting, sheds new
//    submits with kShutdown, answers everything admitted, flushes every
//    connection's tail (bounded by drain_timeout_ms against non-reading
//    peers), then Bye(kDraining) -- mirroring the WalTeardown guarantee:
//    zero committed transactions lost.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "net/fault.hpp"
#include "net/wire.hpp"
#include "server/scheduler.hpp"

namespace gdi {
class Database;
}

namespace gdi::net {

struct NetConfig {
  std::uint16_t port = 0;       ///< 0 = ephemeral; read the bound one via port()
  std::uint64_t auth_token = 0; ///< Hello must present exactly this token
  std::size_t max_connections = 64;
  std::size_t max_tenants = 256;  ///< bound on resumption-state table entries
  std::uint32_t credits = 32;     ///< per-connection request window
  std::uint32_t max_frame_bytes = 512;  ///< payload bound (clamped to kMaxFrameLen)
  double handshake_timeout_ms = 2000.0; ///< accept -> valid Hello deadline
  double idle_timeout_ms = 0.0;         ///< 0 = never time out an open conn
  double drain_timeout_ms = 2000.0;     ///< graceful-shutdown bound (real time)
  double retry_after_ns = 200000.0;     ///< hint attached to kOverloaded sheds
};

class Listener {
 public:
  /// The scheduler must outlive the listener; both belong to the same rank.
  Listener(server::TenantScheduler* ts, NetConfig cfg);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen (idempotent). kOk, or kNoSpace when the socket could not
  /// be created/bound. Rank thread.
  Status start();
  [[nodiscard]] bool started() const { return listen_fd_ >= 0; }
  /// The bound port (after start(); meaningful with cfg.port == 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Ask the serve loop to drain and return. Any thread, idempotent.
  void request_stop() { stop_.store(true, std::memory_order_release); }
  [[nodiscard]] bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// One event-loop iteration: poll (blocking at most timeout_ms when idle),
  /// accept, read + decode + submit, pump the scheduler once, harvest
  /// replies, write out, and run connection lifecycle (timeouts, closes,
  /// session recycling). Returns true if any frame or dispatch made
  /// progress. Rank thread only.
  bool poll_once(const std::shared_ptr<Database>& db, rma::Rank& self,
                 int timeout_ms);

  /// Serve until request_stop() and the graceful drain completed. Calls
  /// start() if needed; finishes with TenantScheduler::shutdown so every
  /// admitted request is answered and the commit pipeline is fenced.
  void serve(const std::shared_ptr<Database>& db, rma::Rank& self);

  /// Attach a listener-side fault injector (tests/benches; nullptr detaches).
  /// Must outlive the listener's serve loop. Rank thread.
  void set_fault_injector(ServerFaultInjector* f) { faults_ = f; }

  // --- crash-restart replay state (rank thread) -----------------------------
  /// Serialize every tenant's resumption state (watermark, done-set, reply
  /// cache) for a checkpoint's net-section trailer. In-flight `submitted`
  /// tags are deliberately excluded: at a crash each is either durable in the
  /// WAL (its kTenantAck op rebuilds it) or lost (the client re-sends it).
  [[nodiscard]] std::vector<std::byte> serialize_replay_state() const;
  /// Restore tenant states from a checkpoint net section (replaces the
  /// table). Runs before log replay; false on a malformed section.
  bool restore_replay_state(std::span<const std::byte> in);
  /// Fold one log-replayed kTenantAck op into the resumption state: the same
  /// watermark/done-set/prune discipline as a live completion, with the
  /// reply cached (acks are only logged for writes). Idempotent per tag.
  void restore_completion(std::uint64_t tenant, const server::Reply& rep);

  // --- observability (rank thread; stable once serve() returned) -----------
  [[nodiscard]] std::size_t live_connections() const { return conns_.size(); }
  /// Bytes currently buffered across every connection (leak observable).
  [[nodiscard]] std::size_t buffered_bytes() const;
  /// Resumption-state entries currently held (bounded by max_tenants).
  [[nodiscard]] std::size_t tenant_states() const { return tenants_.size(); }
  /// Connections whose Hello is acknowledged-pending (old session draining).
  [[nodiscard]] std::size_t held_handshakes() const {
    std::size_t n = 0;
    for (const auto& c : conns_)
      if (c->state == ConnState::kHandshakeHeld) ++n;
    return n;
  }

  [[nodiscard]] const NetConfig& config() const { return cfg_; }

 private:
  struct Conn;
  using Reply_t = server::Reply;

  /// Per-tenant exactly-once resumption state. Lives across connections;
  /// bounded: done_above and reply_cache are pruned against the watermark.
  struct TenantState {
    std::uint64_t watermark = 0;  ///< every tag <= this has completed
    std::map<std::uint64_t, Reply_t> reply_cache;  ///< completed writes > prune line
    std::vector<std::uint64_t> done_above;         ///< completed tags > watermark
    std::map<std::uint64_t, bool> submitted;       ///< in-flight tag -> is_write
    server::Session* session = nullptr;  ///< live or draining session
    Conn* conn = nullptr;                ///< current connection (null = orphaned)
  };

  enum class ConnState : std::uint8_t {
    kHandshake,      ///< accepted, waiting for Hello
    kHandshakeHeld,  ///< Hello ok, waiting for the tenant's old session drain
    kOpen,           ///< serving requests
    kClosing,        ///< Bye queued; close once tx flushes
  };

  struct Conn {
    int fd = -1;
    ConnState state = ConnState::kHandshake;
    std::uint64_t tenant = 0;
    TenantState* tstate = nullptr;
    std::vector<std::byte> rx;
    std::vector<std::byte> tx;      ///< unwritten outbound bytes
    std::size_t tx_written = 0;     ///< total stream bytes ever written
    std::size_t tx_encoded = 0;     ///< total stream bytes ever encoded
    std::deque<std::size_t> reply_ends;  ///< stream offsets where replies end
    std::uint32_t in_window = 0;    ///< requests received minus credits returned
    bool write_blocked = false;     ///< EAGAIN with pending tx (stall state)
    bool client_bye = false;        ///< peer sent Bye: orderly close in progress
    bool bye_queued = false;        ///< our closing Bye(kDone) is already queued
    bool superseded = false;        ///< replaced by a newer conn from its tenant
    bool muted = false;             ///< fault-injected half-open peer: inbound
                                    ///< bytes are discarded, last_rx frozen
    double accepted_ms = 0;         ///< real clock, for the handshake deadline
    double last_rx_ms = 0;          ///< real clock, for the idle deadline
    double close_deadline_ms = 0;   ///< kClosing flush deadline (0 = unset)
  };

  // Event-loop stages (rank thread).
  void accept_ready(rma::Rank& self, double now_ms);
  bool read_conn(Conn& c, rma::Rank& self, double now_ms);
  bool on_frame(Conn& c, const Frame& f, rma::Rank& self, double now_ms);
  bool on_request(Conn& c, const server::Request& r, rma::Rank& self);
  void try_ack_handshake(Conn& c, rma::Rank& self);
  void harvest_replies(rma::Rank& self);
  /// Returns true when the completed tag was a write (its reply was cached).
  bool record_completion(TenantState& t, const Reply_t& rep);
  /// Shared watermark/done-set/prune discipline behind record_completion and
  /// restore_completion.
  void fold_completion(TenantState& t, const Reply_t& rep, bool is_write);
  void send_reply(Conn& c, const Reply_t& rep);
  void queue_bye(Conn& c, ByeReason reason, std::uint32_t retry_after_us = 0);
  bool flush_conn(Conn& c, rma::Rank& self);
  void drop_conn(std::size_t idx, rma::Rank& self, bool count_disconnect);
  void lifecycle(rma::Rank& self, double now_ms);
  [[nodiscard]] static double now_ms();

  server::TenantScheduler* ts_;
  NetConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool draining_ = false;
  double drain_began_ms_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::map<std::uint64_t, TenantState> tenants_;
  ServerFaultInjector* faults_ = nullptr;  ///< optional, test/bench-attached
  std::uint64_t opened_total_ = 0;  ///< handshakes ever completed (mute index)
  /// Sessions whose connection died; drained by the scheduler, harvested and
  /// recycled here. Keyed by tenant id inside tenants_ (session != null,
  /// conn == null).
};

}  // namespace gdi::net
