// Wire protocol of the socket front end (src/net/): CRC-framed,
// length-prefixed messages carrying the transport-agnostic server::Request /
// server::Reply PODs of the multi-tenant scheduler.
//
// Frame layout (little-endian, 16-byte header):
//
//   +--------+---------+------+----------+---------+-----------+
//   | magic  | version | type | reserved | len     | crc       |
//   | u32    | u8      | u8   | u16      | u32     | u32       |
//   +--------+---------+------+----------+---------+-----------+
//   | payload: `len` bytes, crc32(payload) == crc              |
//   +----------------------------------------------------------+
//
// `len` is bounded by the listener's max_frame_bytes (requests and replies
// are small flat PODs; anything larger is an attack or a desynced stream, and
// the decoder rejects it *before* buffering the payload). The CRC covers the
// payload only -- the header fields are each individually validated, and a
// header that fails validation means the stream is unframeable, so the
// connection is dropped rather than resynchronized (the client replays its
// unacknowledged window on reconnect; see the handshake notes below).
//
// Conversation:
//   client: Hello{auth_token, tenant_id}        (first frame, nothing before)
//   server: HelloAck{credits, max_frame, last_acked_write_tag}
//           -- or Bye{reason} and close (bad token, capacity, draining)
//   client: Request*  (at most `credits` outstanding: one credit is consumed
//           per Request sent and returned per Reply received -- the
//           credit-based flow control that makes a slow *reader* stall only
//           its own connection, never the scheduler loop or other tenants)
//   server: Reply*    (one per admitted Request; a shed request is answered
//           with status kOverloaded and a retry-after hint in Reply::v1 --
//           typed degradation, not a disconnect)
//   either: Bye{reason} then close.
//
// Exactly-once resumption: `client_tag` must be a strictly increasing
// per-tenant sequence number. The listener remembers, per tenant_id, the
// completed *write* tags (watermark + recent set) and caches their replies,
// so a client that reconnects after a mid-window disconnect can replay its
// unacknowledged tail without double-applying committed writes: a replayed
// completed write is answered from the reply cache, never re-executed.
// HelloAck::last_acked_write_tag tells the client where the watermark stood.
// Reads are idempotent and are simply re-executed on replay.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "server/scheduler.hpp"
#include "wal/wal.hpp"  // wal::crc32

namespace gdi::net {

inline constexpr std::uint32_t kMagic = 0x46494447u;  // "GDIF"
inline constexpr std::uint8_t kWireVersion = 1;
/// Hard ceiling on `len` regardless of configuration: no configuration can
/// make the decoder buffer more than this for one frame.
inline constexpr std::uint32_t kMaxFrameLen = 1u << 16;

enum class FrameType : std::uint8_t {
  kHello = 1,    ///< client -> server, first frame: HelloBody
  kHelloAck,     ///< server -> client: HelloAckBody
  kRequest,      ///< client -> server: server::Request
  kReply,        ///< server -> client: server::Reply
  kBye,          ///< either direction, last frame: ByeBody
};

/// Why a Bye was sent. Carried on the wire as u32.
enum class ByeReason : std::uint32_t {
  kDone = 0,        ///< orderly close, nothing wrong
  kAuthFailed,      ///< handshake token mismatch
  kCapacity,        ///< connection/tenant table full -- retry after the hint
  kProtocolError,   ///< malformed frame, credit violation, or desynced stream
  kIdleTimeout,     ///< handshake or idle deadline expired
  kDraining,        ///< server shutting down; admitted work was answered
  kStaleReplay,     ///< replayed a completed write whose cached reply was
                    ///< pruned -- re-execution would double-apply, so the
                    ///< server closes typed instead of guessing an ack
};

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t version = kWireVersion;
  std::uint8_t type = 0;
  std::uint16_t reserved = 0;
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
};
static_assert(sizeof(FrameHeader) == 16);

struct HelloBody {
  std::uint64_t auth_token = 0;
  std::uint64_t tenant_id = 0;
};

struct HelloAckBody {
  std::uint32_t credits = 0;          ///< request window granted to the client
  std::uint32_t max_frame_bytes = 0;  ///< server's frame-size bound
  std::uint64_t last_acked_write_tag = 0;  ///< tenant's completed-write watermark
};

struct ByeBody {
  std::uint32_t reason = 0;         ///< ByeReason
  std::uint32_t retry_after_us = 0; ///< nonzero with kCapacity: back off this long
};

/// Append one encoded frame to `out`.
inline void encode_frame(std::vector<std::byte>& out, FrameType type,
                         const void* payload, std::size_t len) {
  FrameHeader h;
  h.type = static_cast<std::uint8_t>(type);
  h.len = static_cast<std::uint32_t>(len);
  h.crc = wal::crc32(payload, len);
  const auto* hp = reinterpret_cast<const std::byte*>(&h);
  out.insert(out.end(), hp, hp + sizeof(h));
  const auto* pp = static_cast<const std::byte*>(payload);
  out.insert(out.end(), pp, pp + len);
}

template <class T>
inline void encode_frame(std::vector<std::byte>& out, FrameType type, const T& body) {
  static_assert(std::is_trivially_copyable_v<T>);
  encode_frame(out, type, &body, sizeof(T));
}

/// Decoder verdicts. kNeedMore = buffer holds a partial frame, read more.
/// kBad poisons the stream: framing is lost, so the connection must close.
enum class DecodeResult : std::uint8_t { kFrame = 0, kNeedMore, kBad };

struct Frame {
  FrameType type = FrameType::kBye;
  std::span<const std::byte> payload;  ///< view into the decode buffer
};

/// Try to decode one frame from the front of `buf`. On kFrame, `*consumed` is
/// the total encoded size (pop it from the buffer after using the payload
/// view). `max_len` is the configured bound (clamped to kMaxFrameLen).
/// Every malformed condition -- bad magic, unknown version or type, oversize
/// length, CRC mismatch -- returns kBad without reading past the buffer.
inline DecodeResult decode_frame(std::span<const std::byte> buf,
                                 std::uint32_t max_len, Frame* out,
                                 std::size_t* consumed) {
  if (buf.size() < sizeof(FrameHeader)) return DecodeResult::kNeedMore;
  FrameHeader h;
  std::memcpy(&h, buf.data(), sizeof(h));
  if (h.magic != kMagic || h.version != kWireVersion) return DecodeResult::kBad;
  if (h.type < static_cast<std::uint8_t>(FrameType::kHello) ||
      h.type > static_cast<std::uint8_t>(FrameType::kBye))
    return DecodeResult::kBad;
  const std::uint32_t bound = max_len < kMaxFrameLen ? max_len : kMaxFrameLen;
  if (h.len > bound) return DecodeResult::kBad;
  if (buf.size() < sizeof(h) + h.len) return DecodeResult::kNeedMore;
  const std::span<const std::byte> payload = buf.subspan(sizeof(h), h.len);
  if (wal::crc32(payload.data(), payload.size()) != h.crc) return DecodeResult::kBad;
  out->type = static_cast<FrameType>(h.type);
  out->payload = payload;
  *consumed = sizeof(h) + h.len;
  return DecodeResult::kFrame;
}

/// Decode a POD payload; false when the size does not match the type (a
/// well-framed but wrong-shaped payload is as malformed as a bad CRC).
template <class T>
[[nodiscard]] inline bool read_body(std::span<const std::byte> payload, T* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (payload.size() != sizeof(T)) return false;
  std::memcpy(out, payload.data(), sizeof(T));
  return true;
}

}  // namespace gdi::net
