// Deterministic fault injection for the simulated RMA fabric and the WAL.
//
// A FaultInjector is attached to a Rank (Rank::set_fault_injector) and is
// consulted from two kinds of sites:
//
//  * data-plane hooks in Window (put / put_nb / FAA / flush): each op draws
//    from a seeded PRNG and may be dropped (PUTs only: the data movement is
//    skipped while the cost is still charged -- the "write lost on the wire"
//    failure a redo log must repair), delayed (extra simulated latency), or
//    failed (raises FaultKill, modeling the origin process dying mid-op);
//
//  * kill switches at WAL control points (wal::WalWriter): "die right after
//    sealing epoch N", "die mid-append" (a torn frame reaches the disk), and
//    "die mid-checkpoint" (a partial checkpoint temp file is left behind).
//
// Decisions are a pure function of (seed, consultation order), so a failing
// schedule replays exactly from its seed. After any kill fires the injector
// is poisoned: killed() stays true, every later consultation is a no-op, and
// WAL writers bound to the killed rank refuse to seal their tail during
// teardown -- the unwinding destructor must not quietly persist the very
// bytes the "crash" was supposed to lose.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <stdexcept>

namespace gdi::rma {

/// Fault-injection layers that draw from one base seed. Every injector in a
/// run -- the RMA data plane, each socket client's send-side injector, the
/// listener-side server injector -- derives its stream via fault_stream(), so
/// ONE number (GDI_FAULT_SEED in CI) reproduces the whole cross-layer
/// schedule while no two layers or instances ever share a PRNG stream.
enum class FaultLayer : std::uint64_t {
  kRma = 1,        ///< rma::FaultInjector (data plane + WAL kill switches)
  kNetClient = 2,  ///< net::NetFaultInjector (client send side)
  kNetServer = 3,  ///< net::ServerFaultInjector (listener side)
};

/// Split `base` into a decorrelated per-(layer, instance) seed (splitmix64
/// finalizer, applied twice). The result is forced nonzero: seed 0 *disables*
/// the net injectors, and a derived stream must never silently do that.
[[nodiscard]] constexpr std::uint64_t fault_stream(std::uint64_t base,
                                                   FaultLayer layer,
                                                   std::uint64_t instance = 0) {
  auto mix = [](std::uint64_t z) constexpr {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::uint64_t s =
      mix(base + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(layer));
  s = mix(s + 0x9e3779b97f4a7c15ULL * (instance + 1));
  return s != 0 ? s : 0x9e3779b97f4a7c15ULL;
}

/// The CI seed-matrix knob: GDI_FAULT_SEED from the environment, else
/// `fallback`. Tests pass the result to fault_stream() per layer/instance.
[[nodiscard]] inline std::uint64_t fault_seed_env(std::uint64_t fallback = 1) {
  const char* e = std::getenv("GDI_FAULT_SEED");
  return e != nullptr ? std::strtoull(e, nullptr, 10) : fallback;
}

/// Raised by an armed fail/kill decision: the simulated process death. Rank
/// code does not catch it; it unwinds out of Runtime::run to the test driver,
/// which then restarts the rank team and runs recovery.
struct FaultKill final : std::runtime_error {
  explicit FaultKill(const char* site) : std::runtime_error(site) {}
};

/// Data-plane operation classes the injector distinguishes.
enum class FaultOp : std::uint8_t { kPut = 0, kFaa = 1, kFlush = 2 };

/// WAL control points at which a kill switch may be armed.
enum class KillPoint : std::uint8_t {
  kNone = 0,
  kEpochSeal,      ///< die right after epoch `kill_epoch` is sealed + fsynced
  kMidAppend,      ///< die with a torn (partially written) frame on disk
  kMidCheckpoint,  ///< die with a partial checkpoint temp file, before rename
};

struct FaultConfig {
  std::uint64_t seed = 1;

  // Data-plane probabilities, each drawn independently per op.
  double drop_put_p = 0.0;  ///< PUT data movement silently lost (cost still paid)
  double delay_p = 0.0;     ///< op delayed by delay_ns
  double fail_p = 0.0;      ///< op raises FaultKill
  double delay_ns = 5000.0;

  // Kill switch (at most one per injector; it fires once).
  KillPoint kill_at = KillPoint::kNone;
  std::uint64_t kill_epoch = 0;  ///< kEpochSeal/kMidAppend: arm at this epoch seq
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig cfg)
      : cfg_(cfg), state_(cfg.seed != 0 ? cfg.seed : 0x9e3779b97f4a7c15ULL) {}

  struct Action {
    bool drop = false;
    double delay_ns = 0.0;
    bool fail = false;
    [[nodiscard]] bool any() const { return drop || delay_ns > 0.0 || fail; }
  };

  /// Decide the fate of one data-plane op. Deterministic in (seed, order).
  [[nodiscard]] Action on_op(FaultOp op) {
    Action a;
    if (killed_) return a;
    if (cfg_.drop_put_p > 0.0 && op == FaultOp::kPut) a.drop = chance(cfg_.drop_put_p);
    if (cfg_.delay_p > 0.0 && chance(cfg_.delay_p)) a.delay_ns = cfg_.delay_ns;
    if (cfg_.fail_p > 0.0 && chance(cfg_.fail_p)) a.fail = true;
    return a;
  }

  /// Kill-switch consultation at a WAL control point. True means "die here";
  /// the caller performs the point's partial work, calls mark_killed(), and
  /// throws FaultKill.
  [[nodiscard]] bool should_kill(KillPoint at, std::uint64_t epoch_seq) const {
    if (killed_ || cfg_.kill_at != at) return false;
    if ((at == KillPoint::kEpochSeal || at == KillPoint::kMidAppend) &&
        epoch_seq < cfg_.kill_epoch)
      return false;
    return true;
  }

  void mark_killed() { killed_ = true; }
  [[nodiscard]] bool killed() const { return killed_; }
  [[nodiscard]] const FaultConfig& config() const { return cfg_; }

 private:
  /// splitmix64 step; uniform in [0,1) against p.
  [[nodiscard]] bool chance(double p) {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53 < p;
  }

  FaultConfig cfg_;
  std::uint64_t state_;
  bool killed_ = false;
};

}  // namespace gdi::rma
