// Network cost model for the simulated RMA fabric.
//
// The paper evaluates on Piz Daint's Aries interconnect. We reproduce the
// *shape* of its results with a LogGP-style model: every one-sided operation
// charges its origin rank a latency term plus a bandwidth term, and
// collectives charge a logarithmic tree term. Two presets, xc40() and xc50(),
// mirror the two Piz Daint node types (the paper conjectures XC50's advantage
// comes from more network bandwidth per core; the presets encode exactly
// that). See DESIGN.md section 2 for the substitution rationale.
#pragma once

#include <cstdint>

namespace gdi::rma {

struct NetParams {
  double alpha_local_ns = 0.0;          ///< latency of a local window access
  double alpha_remote_ns = 0.0;         ///< latency of a remote put/get
  double alpha_atomic_local_ns = 0.0;   ///< latency of a local atomic
  double alpha_atomic_remote_ns = 0.0;  ///< latency of a remote atomic (HW offload)
  double beta_ns_per_byte = 0.0;        ///< inverse bandwidth for remote transfers
  double alpha_flush_ns = 0.0;          ///< cost of a flush (completion fence)
  double alpha_collective_ns = 0.0;     ///< per-tree-stage cost of a collective
  /// NIC queue depth for nonblocking batches: up to this many outstanding
  /// operations overlap, paying a single latency term per "round" of the
  /// queue (paper Section 5.1: fully-offloaded ops are pipelined by the NIC).
  /// 0 = unlimited depth. A completed batch of k operations charges
  ///   ceil(k / depth) * max(alpha_i) + sum(beta * bytes_i)
  /// instead of the blocking sum(alpha_i + beta * bytes_i).
  std::uint32_t nic_queue_depth = 0;

  /// Free model: every operation costs nothing (used by unit tests).
  [[nodiscard]] static constexpr NetParams zero() { return NetParams{}; }

  /// Cray XC40 preset (2x18-core Broadwell per Aries NIC -> less BW per core).
  [[nodiscard]] static constexpr NetParams xc40() {
    return NetParams{
        .alpha_local_ns = 90.0,
        .alpha_remote_ns = 1500.0,
        .alpha_atomic_local_ns = 250.0,
        .alpha_atomic_remote_ns = 1900.0,
        .beta_ns_per_byte = 0.085,
        .alpha_flush_ns = 320.0,
        .alpha_collective_ns = 1200.0,
        .nic_queue_depth = 64,
    };
  }

  /// Cray XC50 preset (12-core Haswell per Aries NIC -> more BW per core).
  [[nodiscard]] static constexpr NetParams xc50() {
    return NetParams{
        .alpha_local_ns = 90.0,
        .alpha_remote_ns = 1350.0,
        .alpha_atomic_local_ns = 250.0,
        .alpha_atomic_remote_ns = 1700.0,
        .beta_ns_per_byte = 0.055,
        .alpha_flush_ns = 300.0,
        .alpha_collective_ns = 1100.0,
        .nic_queue_depth = 64,
    };
  }
};

/// Per-rank operation counters; the raw material of the cost model and of the
/// block-size / communication-volume ablations.
struct OpCounters {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t atomics = 0;
  std::uint64_t flushes = 0;
  std::uint64_t collectives = 0;
  std::uint64_t bytes_put = 0;
  std::uint64_t bytes_get = 0;
  std::uint64_t remote_ops = 0;  ///< subset of the above that crossed ranks

  // Nonblocking-engine counters. nb_* ops are also counted in puts/gets/
  // atomics above (they are the same logical operations, just overlapped).
  std::uint64_t nb_gets = 0;       ///< gets issued through the batch engine
  std::uint64_t nb_puts = 0;       ///< puts issued through the batch engine
  std::uint64_t nb_atomics = 0;    ///< atomics issued through the batch engine
  std::uint64_t batches = 0;       ///< nonempty flush_all() completion points
  std::uint64_t max_batch_ops = 0; ///< high-water outstanding ops in one batch

  // Per-transaction block-cache counters (maintained by the GDI layer).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  // Shared (inter-transaction) holder-cache counters: hits skipped a whole
  // holder fetch, misses went to the wire, validations are lock-word checks
  // performed (every hit implies one), invalidations count dropped entries
  // (local write intent/writeback or an observed remote version change).
  std::uint64_t scache_hits = 0;
  std::uint64_t scache_misses = 0;
  std::uint64_t scache_validations = 0;
  std::uint64_t scache_invalidations = 0;

  // Batched heavy-edge fetch: completed multi-holder fetch_edges_batch calls
  // and the holders they covered (items/batches = mean edge batch size).
  std::uint64_t edge_batches = 0;
  std::uint64_t edge_batch_items = 0;

  // Group-commit pipeline: epochs closed (each paid at most one overlapped
  // flush for every enrolled commit's writeback + unlocks) and commits
  // enrolled (epochs/enrolled = mean commits amortized per flush).
  std::uint64_t gc_epochs = 0;
  std::uint64_t gc_enrolled = 0;

  // Write-through: shared-cache entries re-stamped at write_unlock_fetch time
  // (a rank's own write set staying warm instead of dying by invalidation).
  std::uint64_t scache_restamps = 0;

  // Translation-memo epoch validation: bare translates served by the memo
  // under a matching DHT erase epoch (hits skip the whole DHT walk) vs
  // memo entries refuted by an epoch mismatch (fell back to the walk).
  std::uint64_t xlate_hits = 0;
  std::uint64_t xlate_fallbacks = 0;

  // Epoch write-ahead log (src/wal/): commit records buffered into the open
  // epoch, group fsyncs paid at epoch seal (appends/fsyncs = amortization),
  // and epochs re-applied by log-replay recovery. wal_io_errors counts
  // sealed epochs DROPPED because the segment file could not be opened --
  // nonzero means the run was not fully durable. faults_injected counts
  // drop/delay/fail decisions taken by the rank's FaultInjector, if any.
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_fsyncs = 0;
  std::uint64_t wal_replayed_epochs = 0;
  std::uint64_t wal_io_errors = 0;
  std::uint64_t faults_injected = 0;

  // Multi-tenant front end (src/server/): requests the per-rank scheduler
  // completed, requests that shared a coalesced BatchScope execute with at
  // least one other client's request (coalesced/served = cross-client batching
  // rate), submissions shed by admission control (bounded per-tenant in-flight
  // or the global byte budget), and commit-pipeline epochs whose close
  // completed at least one scheduler-deferred commit reply.
  std::uint64_t sched_served = 0;
  std::uint64_t sched_coalesced = 0;
  std::uint64_t sched_admission_rejects = 0;
  std::uint64_t sched_epochs = 0;

  // Hash-partitioned DHT (src/dht/): bucket-head probe rounds issued by
  // lookup/erase walks (probe_rounds / lookups == 1 in the compacted steady
  // state, independent of shard count), entries rehomed by the online
  // migration pass, and freed entry slots reused by allocation (free-stack
  // pops -- reclaimed / frees is the capacity-recovery rate under churn).
  std::uint64_t dht_probe_rounds = 0;
  std::uint64_t dht_migrated = 0;
  std::uint64_t dht_reclaimed = 0;

  // Socket front end (src/net/): connections accepted, frames decoded off /
  // fully written to the wire, malformed frames (bad magic/version/CRC,
  // oversize length, wrong-shaped body, credit overrun), write-blocked
  // transitions under credit-based backpressure (a slow reader stalling only
  // itself), and non-orderly connection drops (errors, timeouts, supersedes,
  // forced drain closes).
  std::uint64_t net_accepted = 0;
  std::uint64_t net_frames_rx = 0;
  std::uint64_t net_frames_tx = 0;
  std::uint64_t net_bad_frames = 0;
  std::uint64_t net_backpressure_stalls = 0;
  std::uint64_t net_disconnects = 0;
  // Exactly-once replay outcomes: a replayed completed write answered from
  // the reply cache (hit) vs. one whose cached reply was already pruned
  // (miss -> typed Bye(kStaleReplay), never silent re-execution).
  std::uint64_t net_replay_hits = 0;
  std::uint64_t net_replay_cache_misses = 0;

  OpCounters& operator+=(const OpCounters& o) {
    puts += o.puts;
    gets += o.gets;
    atomics += o.atomics;
    flushes += o.flushes;
    collectives += o.collectives;
    bytes_put += o.bytes_put;
    bytes_get += o.bytes_get;
    remote_ops += o.remote_ops;
    nb_gets += o.nb_gets;
    nb_puts += o.nb_puts;
    nb_atomics += o.nb_atomics;
    batches += o.batches;
    max_batch_ops = max_batch_ops > o.max_batch_ops ? max_batch_ops : o.max_batch_ops;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    scache_hits += o.scache_hits;
    scache_misses += o.scache_misses;
    scache_validations += o.scache_validations;
    scache_invalidations += o.scache_invalidations;
    edge_batches += o.edge_batches;
    edge_batch_items += o.edge_batch_items;
    gc_epochs += o.gc_epochs;
    gc_enrolled += o.gc_enrolled;
    scache_restamps += o.scache_restamps;
    xlate_hits += o.xlate_hits;
    xlate_fallbacks += o.xlate_fallbacks;
    wal_appends += o.wal_appends;
    wal_fsyncs += o.wal_fsyncs;
    wal_replayed_epochs += o.wal_replayed_epochs;
    wal_io_errors += o.wal_io_errors;
    faults_injected += o.faults_injected;
    sched_served += o.sched_served;
    sched_coalesced += o.sched_coalesced;
    sched_admission_rejects += o.sched_admission_rejects;
    sched_epochs += o.sched_epochs;
    dht_probe_rounds += o.dht_probe_rounds;
    dht_migrated += o.dht_migrated;
    dht_reclaimed += o.dht_reclaimed;
    net_accepted += o.net_accepted;
    net_frames_rx += o.net_frames_rx;
    net_frames_tx += o.net_frames_tx;
    net_bad_frames += o.net_bad_frames;
    net_backpressure_stalls += o.net_backpressure_stalls;
    net_disconnects += o.net_disconnects;
    net_replay_hits += o.net_replay_hits;
    net_replay_cache_misses += o.net_replay_cache_misses;
    return *this;
  }

  [[nodiscard]] std::uint64_t total_ops() const {
    return puts + gets + atomics + flushes + collectives;
  }

  /// Copy of the current counter values, for per-phase deltas in benches.
  [[nodiscard]] OpCounters snapshot() const { return *this; }

  /// Counters accumulated since `since` (an earlier snapshot of this struct).
  /// Monotone counters subtract; max_batch_ops is a high-water mark and keeps
  /// its current value (a per-phase maximum cannot be recovered by
  /// subtraction).
  [[nodiscard]] OpCounters delta(const OpCounters& since) const {
    OpCounters d;
    d.puts = puts - since.puts;
    d.gets = gets - since.gets;
    d.atomics = atomics - since.atomics;
    d.flushes = flushes - since.flushes;
    d.collectives = collectives - since.collectives;
    d.bytes_put = bytes_put - since.bytes_put;
    d.bytes_get = bytes_get - since.bytes_get;
    d.remote_ops = remote_ops - since.remote_ops;
    d.nb_gets = nb_gets - since.nb_gets;
    d.nb_puts = nb_puts - since.nb_puts;
    d.nb_atomics = nb_atomics - since.nb_atomics;
    d.batches = batches - since.batches;
    d.max_batch_ops = max_batch_ops;
    d.cache_hits = cache_hits - since.cache_hits;
    d.cache_misses = cache_misses - since.cache_misses;
    d.scache_hits = scache_hits - since.scache_hits;
    d.scache_misses = scache_misses - since.scache_misses;
    d.scache_validations = scache_validations - since.scache_validations;
    d.scache_invalidations = scache_invalidations - since.scache_invalidations;
    d.edge_batches = edge_batches - since.edge_batches;
    d.edge_batch_items = edge_batch_items - since.edge_batch_items;
    d.gc_epochs = gc_epochs - since.gc_epochs;
    d.gc_enrolled = gc_enrolled - since.gc_enrolled;
    d.scache_restamps = scache_restamps - since.scache_restamps;
    d.xlate_hits = xlate_hits - since.xlate_hits;
    d.xlate_fallbacks = xlate_fallbacks - since.xlate_fallbacks;
    d.wal_appends = wal_appends - since.wal_appends;
    d.wal_fsyncs = wal_fsyncs - since.wal_fsyncs;
    d.wal_replayed_epochs = wal_replayed_epochs - since.wal_replayed_epochs;
    d.wal_io_errors = wal_io_errors - since.wal_io_errors;
    d.faults_injected = faults_injected - since.faults_injected;
    d.sched_served = sched_served - since.sched_served;
    d.sched_coalesced = sched_coalesced - since.sched_coalesced;
    d.sched_admission_rejects = sched_admission_rejects - since.sched_admission_rejects;
    d.sched_epochs = sched_epochs - since.sched_epochs;
    d.dht_probe_rounds = dht_probe_rounds - since.dht_probe_rounds;
    d.dht_migrated = dht_migrated - since.dht_migrated;
    d.dht_reclaimed = dht_reclaimed - since.dht_reclaimed;
    d.net_accepted = net_accepted - since.net_accepted;
    d.net_frames_rx = net_frames_rx - since.net_frames_rx;
    d.net_frames_tx = net_frames_tx - since.net_frames_tx;
    d.net_bad_frames = net_bad_frames - since.net_bad_frames;
    d.net_backpressure_stalls = net_backpressure_stalls - since.net_backpressure_stalls;
    d.net_disconnects = net_disconnects - since.net_disconnects;
    d.net_replay_hits = net_replay_hits - since.net_replay_hits;
    d.net_replay_cache_misses =
        net_replay_cache_misses - since.net_replay_cache_misses;
    return d;
  }
};

}  // namespace gdi::rma
