#include "rma/runtime.hpp"

#include <algorithm>

namespace gdi::rma {

Runtime::Runtime(int nranks, NetParams params)
    : nranks_(nranks),
      params_(params),
      barrier_(nranks),
      slots_(static_cast<std::size_t>(nranks), nullptr) {
  assert(nranks >= 1);
}

void Runtime::run(const std::function<void(Rank&)>& fn) {
  first_error_ = nullptr;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, r, &fn] {
      Rank rank(*this, r);
      try {
        fn(rank);
      } catch (...) {
        std::scoped_lock lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error_) std::rethrow_exception(first_error_);
}

int Rank::nranks() const { return rt_.nranks_; }

const NetParams& Rank::net() const { return rt_.params_; }

void Rank::barrier_only() { rt_.barrier_.arrive_and_wait(); }

std::uint64_t Rank::flush_all() {
  const std::uint64_t n = nb_ops_;
  if (n == 0) return 0;
  const auto& p = net();
  // Queue-depth pipelining: the NIC overlaps up to `nic_queue_depth`
  // outstanding ops, so a batch pays one max-latency term per full queue.
  const std::uint64_t depth = p.nic_queue_depth == 0 ? n : p.nic_queue_depth;
  const std::uint64_t rounds = (n + depth - 1) / depth;
  charge(static_cast<double>(rounds) * nb_max_alpha_ + nb_beta_ns_ + p.alpha_flush_ns);
  counters_.flushes += 1;
  counters_.batches += 1;
  counters_.max_batch_ops = std::max(counters_.max_batch_ops, n);
  nb_max_alpha_ = 0.0;
  nb_beta_ns_ = 0.0;
  nb_ops_ = 0;
  return n;
}

void Rank::barrier() {
  charge_collective(0);
  barrier_only();
  barrier_only();  // keep barrier() interchangeable with other collectives
}

void Rank::charge_collective(std::size_t bytes) {
  const auto& p = rt_.params_;
  charge(p.alpha_collective_ns * rt_.collective_stages() +
         p.beta_ns_per_byte * static_cast<double>(bytes));
  counters_.collectives += 1;
}

void Rank::publish(const void* p) {
  rt_.slots_[static_cast<std::size_t>(id_)] = p;
  barrier_only();
}

const void* Rank::peek(int rank) const {
  return rt_.slots_[static_cast<std::size_t>(rank)];
}

}  // namespace gdi::rma
