#include "rma/runtime.hpp"

namespace gdi::rma {

Runtime::Runtime(int nranks, NetParams params)
    : nranks_(nranks),
      params_(params),
      barrier_(nranks),
      slots_(static_cast<std::size_t>(nranks), nullptr) {
  assert(nranks >= 1);
}

void Runtime::run(const std::function<void(Rank&)>& fn) {
  first_error_ = nullptr;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, r, &fn] {
      Rank rank(*this, r);
      try {
        fn(rank);
      } catch (...) {
        std::scoped_lock lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error_) std::rethrow_exception(first_error_);
}

int Rank::nranks() const { return rt_.nranks_; }

const NetParams& Rank::net() const { return rt_.params_; }

void Rank::barrier_only() { rt_.barrier_.arrive_and_wait(); }

void Rank::barrier() {
  charge_collective(0);
  barrier_only();
  barrier_only();  // keep barrier() interchangeable with other collectives
}

void Rank::charge_collective(std::size_t bytes) {
  const auto& p = rt_.params_;
  charge(p.alpha_collective_ns * rt_.collective_stages() +
         p.beta_ns_per_byte * static_cast<double>(bytes));
  counters_.collectives += 1;
}

void Rank::publish(const void* p) {
  rt_.slots_[static_cast<std::size_t>(id_)] = p;
  barrier_only();
}

const void* Rank::peek(int rank) const {
  return rt_.slots_[static_cast<std::size_t>(rank)];
}

}  // namespace gdi::rma
