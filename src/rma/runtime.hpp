// In-process RMA runtime: ranks, simulated clocks, and MPI-style collectives.
//
// This is the reproduction's substitute for MPI + foMPI on a Cray machine
// (DESIGN.md section 2). A Runtime owns P "ranks"; Runtime::run() executes a
// user function on one std::thread per rank. Ranks communicate only through
// Window one-sided operations (window.hpp) and the collectives defined here,
// which mirror the MPI collectives the paper relies on (barrier, bcast,
// reduce/allreduce, allgather(v), alltoallv).
//
// Every operation charges the origin rank's simulated clock according to
// NetParams, so benchmarks can report LogGP-modeled times while the actual
// memory operations execute for real (preserving all concurrency behaviour of
// the lock-free algorithms built on top).
#pragma once

#include <barrier>
#include <cassert>
#include <cmath>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "rma/net_params.hpp"

namespace gdi::rma {

class Runtime;
class FaultInjector;  // rma/fault.hpp

/// Lightweight handle for a nonblocking one-sided operation (Window::get_nb /
/// put_nb / atomic_get_u64_nb). In-process operations complete their data
/// movement eagerly, so the handle carries no completion state -- it exists so
/// call sites keep the issue/complete structure a real RDMA backend requires.
/// All outstanding handles complete at the issuing rank's next flush_all().
struct NbRequest {
  std::uint64_t seq = 0;  ///< issue sequence number within this rank, 1-based
  [[nodiscard]] bool valid() const { return seq != 0; }
};

/// Per-rank execution context handed to the user function by Runtime::run().
/// A Rank is only ever touched by its own thread.
class Rank {
 public:
  Rank(Runtime& rt, int id) : rt_(rt), id_(id) {}
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int nranks() const;
  [[nodiscard]] Runtime& runtime() { return rt_; }
  [[nodiscard]] const NetParams& net() const;

  // --- simulated clock -----------------------------------------------------
  void charge(double ns) { sim_ns_ += ns; }
  void charge_compute(double ns) { sim_ns_ += ns; }
  [[nodiscard]] double sim_time_ns() const { return sim_ns_; }
  void reset_clock() { sim_ns_ = 0.0; }

  [[nodiscard]] OpCounters& counters() { return counters_; }
  [[nodiscard]] const OpCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = OpCounters{}; }

  // --- fault injection (rma/fault.hpp) -------------------------------------
  //
  // Optional, per rank, not owned. Window data-plane ops and WAL control
  // points consult it when set; null (the default) costs one branch per op.
  void set_fault_injector(FaultInjector* f) { faults_ = f; }
  [[nodiscard]] FaultInjector* faults() { return faults_; }

  // --- nonblocking operation engine ---------------------------------------
  //
  // Windows enqueue the cost of conceptually-nonblocking operations here
  // instead of charging it immediately; flush_all() is the completion point
  // and charges the *overlapped* batch cost
  //   ceil(k / nic_queue_depth) * max(alpha_i) + sum(beta * bytes_i) + alpha_flush
  // mirroring how a real NIC pipelines many outstanding one-sided ops
  // (paper Section 5.1). Data movement itself happened eagerly at issue time.

  /// Record one outstanding nonblocking op; returns its handle.
  NbRequest enqueue_nb(double alpha_ns, double beta_bytes_ns) {
    nb_max_alpha_ = nb_max_alpha_ > alpha_ns ? nb_max_alpha_ : alpha_ns;
    nb_beta_ns_ += beta_bytes_ns;
    nb_ops_ += 1;
    return NbRequest{++nb_seq_};
  }

  /// Completion fence for all outstanding nonblocking ops issued by this
  /// rank. Charges the overlapped batch cost; a no-op when nothing is
  /// outstanding. Returns the number of operations completed.
  std::uint64_t flush_all();

  /// Number of issued-but-not-yet-flushed nonblocking ops.
  [[nodiscard]] std::uint64_t pending_nb_ops() const { return nb_ops_; }

  // --- collectives (all ranks must call, in the same order) ----------------
  void barrier();

  /// Broadcast a trivially copyable value from `root` to all ranks.
  template <class T>
  [[nodiscard]] T broadcast(const T& value, int root = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    charge_collective(sizeof(T));
    publish(&value);
    T out;
    std::memcpy(&out, static_cast<const T*>(peek(root)), sizeof(T));
    barrier_only();
    return out;
  }

  /// Element-wise allreduce over vectors (all ranks pass equal lengths).
  template <class T, class BinaryOp>
  [[nodiscard]] std::vector<T> allreduce(std::span<const T> v, BinaryOp op) {
    static_assert(std::is_trivially_copyable_v<T>);
    charge_collective(v.size_bytes());
    ExchangeSpan s{v.data(), v.size()};
    publish(&s);
    std::vector<T> out(v.begin(), v.end());
    for (int r = 0; r < nranks(); ++r) {
      if (r == id_) continue;
      const auto* rs = static_cast<const ExchangeSpan*>(peek(r));
      assert(rs->count == v.size());
      const T* data = static_cast<const T*>(rs->data);
      for (std::size_t i = 0; i < out.size(); ++i) out[i] = op(out[i], data[i]);
    }
    barrier_only();
    return out;
  }

  template <class T>
  [[nodiscard]] T allreduce_sum(T v) {
    return scalar_allreduce(v, [](T a, T b) { return a + b; });
  }
  template <class T>
  [[nodiscard]] T allreduce_min(T v) {
    return scalar_allreduce(v, [](T a, T b) { return a < b ? a : b; });
  }
  template <class T>
  [[nodiscard]] T allreduce_max(T v) {
    return scalar_allreduce(v, [](T a, T b) { return a > b ? a : b; });
  }
  [[nodiscard]] bool allreduce_or(bool v) {
    return allreduce_max<std::uint8_t>(v ? 1 : 0) != 0;
  }

  /// Gather one value per rank; result[r] is rank r's contribution.
  template <class T>
  [[nodiscard]] std::vector<T> allgather(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    charge_collective(sizeof(T) * static_cast<std::size_t>(nranks()));
    publish(&v);
    std::vector<T> out(static_cast<std::size_t>(nranks()));
    for (int r = 0; r < nranks(); ++r)
      std::memcpy(&out[static_cast<std::size_t>(r)], peek(r), sizeof(T));
    barrier_only();
    return out;
  }

  /// Variable-length gather: concatenates every rank's vector, rank order.
  template <class T>
  [[nodiscard]] std::vector<T> allgatherv(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    ExchangeSpan s{v.data(), v.size()};
    publish(&s);
    std::vector<T> out;
    std::size_t total_bytes = 0;
    for (int r = 0; r < nranks(); ++r) {
      const auto* rs = static_cast<const ExchangeSpan*>(peek(r));
      const T* data = static_cast<const T*>(rs->data);
      out.insert(out.end(), data, data + rs->count);
      total_bytes += rs->count * sizeof(T);
    }
    charge_collective(total_bytes);
    barrier_only();
    return out;
  }

  /// Personalized all-to-all: sends[d] goes to rank d; returns recv[s] = the
  /// vector rank s addressed to this rank. Used by the bulk loader.
  template <class T>
  [[nodiscard]] std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& sends) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(static_cast<int>(sends.size()) == nranks());
    publish(&sends);
    std::vector<std::vector<T>> recv(static_cast<std::size_t>(nranks()));
    std::size_t recv_bytes = 0;
    for (int r = 0; r < nranks(); ++r) {
      const auto* peer = static_cast<const std::vector<std::vector<T>>*>(peek(r));
      recv[static_cast<std::size_t>(r)] = (*peer)[static_cast<std::size_t>(id_)];
      recv_bytes += recv[static_cast<std::size_t>(r)].size() * sizeof(T);
    }
    charge_collective(recv_bytes);
    barrier_only();
    return recv;
  }

  /// Exclusive prefix sum across ranks (rank 0 receives 0).
  template <class T>
  [[nodiscard]] T exscan_sum(const T& v) {
    auto all = allgather(v);
    T acc{};
    for (int r = 0; r < id_; ++r) acc += all[static_cast<std::size_t>(r)];
    return acc;
  }

  /// Collectively construct a shared object: `factory` runs on rank 0 only;
  /// every rank receives a shared_ptr to the same instance.
  template <class T, class F>
  [[nodiscard]] std::shared_ptr<T> collective_make(F&& factory) {
    std::shared_ptr<T> mine;
    if (id_ == 0) mine = factory();
    const std::shared_ptr<T>* root = &mine;
    publish(root);
    std::shared_ptr<T> out = *static_cast<const std::shared_ptr<T>*>(peek(0));
    barrier_only();
    return out;
  }

  // Low-level: barrier without cost charging (used internally by collectives
  // that already charged their tree cost).
  void barrier_only();

 private:
  struct ExchangeSpan {
    const void* data;
    std::size_t count;
  };

  template <class T, class BinaryOp>
  [[nodiscard]] T scalar_allreduce(const T& v, BinaryOp op) {
    auto all = allgather(v);
    T acc = all[0];
    for (std::size_t i = 1; i < all.size(); ++i) acc = op(acc, all[i]);
    return acc;
  }

  void charge_collective(std::size_t bytes);
  void publish(const void* p);                 // slot write + barrier
  [[nodiscard]] const void* peek(int rank) const;  // read peer slot

  Runtime& rt_;
  int id_;
  double sim_ns_ = 0.0;
  OpCounters counters_;
  FaultInjector* faults_ = nullptr;

  // Outstanding nonblocking batch (see enqueue_nb / flush_all).
  double nb_max_alpha_ = 0.0;
  double nb_beta_ns_ = 0.0;
  std::uint64_t nb_ops_ = 0;
  std::uint64_t nb_seq_ = 0;
};

/// Owns the rank team. Reusable: run() may be called repeatedly.
class Runtime {
 public:
  explicit Runtime(int nranks, NetParams params = NetParams::zero());

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] const NetParams& net() const { return params_; }
  void set_net(const NetParams& p) { params_ = p; }

  /// Execute `fn(rank)` on one thread per rank; joins all threads before
  /// returning and rethrows the first exception raised by any rank.
  void run(const std::function<void(Rank&)>& fn);

  /// Tree depth used for collective cost accounting.
  [[nodiscard]] int collective_stages() const {
    return nranks_ <= 1 ? 0
                        : static_cast<int>(std::ceil(std::log2(static_cast<double>(nranks_))));
  }

 private:
  friend class Rank;

  int nranks_;
  NetParams params_;
  std::barrier<> barrier_;
  std::vector<const void*> slots_;
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace gdi::rma
