// RMA windows: registered memory regions addressable by one-sided operations.
//
// Mirrors MPI-3 RMA windows as used by the paper (puts, gets, remote atomics,
// flushes -- paper Section 5.1). Each rank contributes `bytes_per_rank` of
// registered memory; any rank may read/write/CAS any other rank's region
// without that rank's participation ("fully-offloaded one-sided").
//
// Synchronization contract (same as real RDMA): 64-bit words manipulated with
// the atomic_* operations are linearizable; plain put/get data must be
// protected by a higher-level protocol (the paper's RW locks / lock-free
// publication), which all code in this repository follows.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "common/dptr.hpp"
#include "rma/fault.hpp"
#include "rma/runtime.hpp"

namespace gdi::rma {

class Window {
 public:
  /// Collective constructor: all ranks call; all receive the same window.
  [[nodiscard]] static std::shared_ptr<Window> create(Rank& self,
                                                      std::size_t bytes_per_rank) {
    auto win = self.collective_make<Window>([&] {
      return std::make_shared<Window>(self.nranks(), bytes_per_rank);
    });
    return win;
  }

  /// Fixed-size window: one segment per rank, fully committed up front.
  Window(int nranks, std::size_t bytes_per_rank)
      : Window(nranks, bytes_per_rank, 1) {}

  /// Growable window: every rank's region is a *reserved* address range of
  /// `max_segments` segments of `seg_bytes_per_rank` bytes, of which only
  /// segment 0 is committed (allocated + registered) up front. Any rank may
  /// later commit further segments with ensure_segments(); committed memory
  /// is zero-filled and immediately addressable by every rank's one-sided
  /// operations. This mirrors MPI dynamic windows / pre-registered reserved
  /// VA on real RDMA hardware: *publication* of grown structures stays
  /// one-sided (a remote CAS on some directory word owned by the data
  /// structure); only the local registration bookkeeping is internal.
  Window(int nranks, std::size_t seg_bytes_per_rank, std::size_t max_segments)
      : nranks_(nranks),
        seg_bytes_(align_up(seg_bytes_per_rank)),
        max_segments_(max_segments == 0 ? 1 : max_segments),
        segments_(std::make_unique<std::atomic<Segment*>[]>(
            max_segments == 0 ? 1 : max_segments)) {
    for (std::size_t s = 0; s < max_segments_; ++s)
      segments_[s].store(nullptr, std::memory_order_relaxed);
    commit_segment_locked(0);
    committed_.store(1, std::memory_order_release);
  }

  ~Window() {
    for (std::size_t s = 0; s < max_segments_; ++s)
      delete segments_[s].load(std::memory_order_acquire);
  }
  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  /// Committed bytes per rank (grows with ensure_segments).
  [[nodiscard]] std::size_t bytes_per_rank() const {
    return committed_.load(std::memory_order_acquire) * seg_bytes_;
  }
  [[nodiscard]] std::size_t segment_bytes() const { return seg_bytes_; }
  [[nodiscard]] std::size_t max_segments() const { return max_segments_; }
  [[nodiscard]] std::size_t committed_segments() const {
    return committed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] int nranks() const { return nranks_; }

  /// Commit (allocate + register + zero-fill) segments so that at least
  /// `count` are available, clamped to max_segments(); returns the committed
  /// segment count. Idempotent and safe to race: registration is serialized
  /// internally, remote accesses never block. The caller still owns making
  /// the new memory *reachable* (publishing a reference via a remote atomic).
  std::size_t ensure_segments(Rank& self, std::size_t count) {
    if (count > max_segments_) count = max_segments_;
    std::size_t cur = committed_.load(std::memory_order_acquire);
    if (cur >= count) return cur;
    std::lock_guard<std::mutex> lk(grow_mu_);
    cur = committed_.load(std::memory_order_relaxed);
    while (cur < count) {
      commit_segment_locked(cur);
      committed_.store(cur + 1, std::memory_order_release);
      ++cur;
      // Registration cost stand-in (memory pinning + rkey exchange would be
      // local work plus one control message on real hardware).
      self.charge(self.net().alpha_remote_ns);
    }
    return cur;
  }

  /// Direct pointer into a rank's region. Only valid for the owning rank's
  /// own initialization or for test assertions -- real accesses go through
  /// the one-sided operations below.
  [[nodiscard]] std::byte* local_base(int rank, std::size_t segment = 0) {
    Segment* seg = segments_[segment].load(std::memory_order_acquire);
    assert(seg != nullptr);
    return seg->regions[static_cast<std::size_t>(rank)].get();
  }

  // --- one-sided data movement ---------------------------------------------

  void get(Rank& self, void* dst, std::size_t n, std::uint32_t target,
           std::uint64_t offset) {
    assert(in_one_segment(offset, n));
    std::memcpy(dst, addr(target, offset), n);
    charge_data(self, n, target, /*is_put=*/false);
  }

  void put(Rank& self, const void* src, std::size_t n, std::uint32_t target,
           std::uint64_t offset) {
    assert(in_one_segment(offset, n));
    if (!inject(self, FaultOp::kPut)) std::memcpy(addr(target, offset), src, n);
    charge_data(self, n, target, /*is_put=*/true);
  }

  void get(Rank& self, void* dst, std::size_t n, DPtr p) {
    get(self, dst, n, p.rank(), p.offset());
  }
  void put(Rank& self, const void* src, std::size_t n, DPtr p) {
    put(self, src, n, p.rank(), p.offset());
  }

  // --- nonblocking data movement (batch engine) ----------------------------
  //
  // Same one-sided semantics as get/put, but the latency/bandwidth cost is
  // deferred to the issuing rank's next Rank::flush_all(), which charges the
  // whole outstanding batch the *overlapped* cost max(alpha) + sum(beta*bytes)
  // (per NIC queue round) instead of sum(alpha + beta*bytes). Data movement
  // happens eagerly in-process; as with real RDMA, the caller must not rely
  // on completion (reads valid / writes visible-in-order) before the flush.

  NbRequest get_nb(Rank& self, void* dst, std::size_t n, std::uint32_t target,
                   std::uint64_t offset) {
    assert(in_one_segment(offset, n));
    std::memcpy(dst, addr(target, offset), n);
    return enqueue_data(self, n, target, /*is_put=*/false);
  }

  NbRequest put_nb(Rank& self, const void* src, std::size_t n, std::uint32_t target,
                   std::uint64_t offset) {
    assert(in_one_segment(offset, n));
    if (!inject(self, FaultOp::kPut)) std::memcpy(addr(target, offset), src, n);
    return enqueue_data(self, n, target, /*is_put=*/true);
  }

  NbRequest get_nb(Rank& self, void* dst, std::size_t n, DPtr p) {
    return get_nb(self, dst, n, p.rank(), p.offset());
  }
  NbRequest put_nb(Rank& self, const void* src, std::size_t n, DPtr p) {
    return put_nb(self, src, n, p.rank(), p.offset());
  }

  /// Nonblocking 64-bit atomic read: the value is loaded (linearizably) at
  /// issue time into *out; the latency joins the current batch. Used by
  /// read-side multi-lookups that overlap many independent atomic fetches.
  NbRequest atomic_get_u64_nb(Rank& self, std::uint32_t target, std::uint64_t offset,
                              std::uint64_t* out) {
    *out = word(target, offset).load(std::memory_order_acquire);
    const auto& p = self.net();
    const bool remote = target != static_cast<std::uint32_t>(self.id());
    auto& c = self.counters();
    c.atomics += 1;
    c.nb_atomics += 1;
    if (remote) c.remote_ops += 1;
    return self.enqueue_nb(remote ? p.alpha_atomic_remote_ns : p.alpha_atomic_local_ns,
                           0.0);
  }
  NbRequest atomic_get_u64_nb(Rank& self, DPtr p, std::uint64_t* out) {
    return atomic_get_u64_nb(self, p.rank(), p.offset(), out);
  }

  /// Nonblocking 64-bit atomic write: the store happens (linearizably) at
  /// issue time; the latency joins the current batch. Used by batched DHT
  /// inserts to write entry fields of many independent entries with one
  /// overlapped round instead of one latency per word.
  NbRequest atomic_put_u64_nb(Rank& self, std::uint32_t target, std::uint64_t offset,
                              std::uint64_t v) {
    word(target, offset).store(v, std::memory_order_release);
    const auto& p = self.net();
    const bool remote = target != static_cast<std::uint32_t>(self.id());
    auto& c = self.counters();
    c.atomics += 1;
    c.nb_atomics += 1;
    if (remote) c.remote_ops += 1;
    return self.enqueue_nb(remote ? p.alpha_atomic_remote_ns : p.alpha_atomic_local_ns,
                           0.0);
  }
  NbRequest atomic_put_u64_nb(Rank& self, DPtr p, std::uint64_t v) {
    return atomic_put_u64_nb(self, p.rank(), p.offset(), v);
  }

  /// Nonblocking fetch-and-add: executes (linearizably) at issue time,
  /// writing the previous value to *prev_out (if non-null); the latency
  /// joins the current batch. Lock releases ride this -- a commit drops all
  /// its read locks in one overlapped round instead of one serial atomic per
  /// held lock.
  NbRequest faa_u64_nb(Rank& self, std::uint32_t target, std::uint64_t offset,
                       std::int64_t add, std::uint64_t* prev_out = nullptr) {
    (void)inject(self, FaultOp::kFaa);
    const std::uint64_t prev = word(target, offset)
                                   .fetch_add(static_cast<std::uint64_t>(add),
                                              std::memory_order_acq_rel);
    if (prev_out != nullptr) *prev_out = prev;
    const auto& p = self.net();
    const bool remote = target != static_cast<std::uint32_t>(self.id());
    auto& c = self.counters();
    c.atomics += 1;
    c.nb_atomics += 1;
    if (remote) c.remote_ops += 1;
    return self.enqueue_nb(remote ? p.alpha_atomic_remote_ns : p.alpha_atomic_local_ns,
                           0.0);
  }
  NbRequest faa_u64_nb(Rank& self, DPtr p, std::int64_t add) {
    return faa_u64_nb(self, p.rank(), p.offset(), add);
  }

  /// Fetch-flavored nonblocking FAA (MPI_Fetch_and_op shape): like faa_u64_nb,
  /// but the caller depends on the fetched previous value, so *prev_out is
  /// mandatory and -- on a real backend -- only valid after the enclosing
  /// flush completes. In-process the atomic executes at issue time, so the
  /// value is stable immediately; call sites still treat the next completion
  /// point as the earliest moment they may act on it remotely. The write-side
  /// cache protocol rides this: a committing writer's unlock fetches the lock
  /// word it released, learning the post-unlock version it re-stamps its
  /// shared-cache entry with (BlockStore::write_unlock_fetch).
  NbRequest faa_fetch_u64_nb(Rank& self, std::uint32_t target, std::uint64_t offset,
                             std::int64_t add, std::uint64_t* prev_out) {
    assert(prev_out != nullptr);
    return faa_u64_nb(self, target, offset, add, prev_out);
  }
  NbRequest faa_fetch_u64_nb(Rank& self, DPtr p, std::int64_t add,
                             std::uint64_t* prev_out) {
    return faa_fetch_u64_nb(self, p.rank(), p.offset(), add, prev_out);
  }

  /// Nonblocking compare-and-swap: executes (linearizably) at issue time,
  /// writing the previous value to *prev_out; the latency joins the current
  /// batch. Success iff *prev_out == expected after the next flush_all().
  /// Used by batched lock acquisition, which overlaps one CAS round across
  /// many independent lock words.
  NbRequest cas_u64_nb(Rank& self, std::uint32_t target, std::uint64_t offset,
                       std::uint64_t expected, std::uint64_t desired,
                       std::uint64_t* prev_out) {
    std::uint64_t e = expected;
    word(target, offset).compare_exchange_strong(e, desired, std::memory_order_acq_rel,
                                                 std::memory_order_acquire);
    *prev_out = e;
    const auto& p = self.net();
    const bool remote = target != static_cast<std::uint32_t>(self.id());
    auto& c = self.counters();
    c.atomics += 1;
    c.nb_atomics += 1;
    if (remote) c.remote_ops += 1;
    return self.enqueue_nb(remote ? p.alpha_atomic_remote_ns : p.alpha_atomic_local_ns,
                           0.0);
  }
  NbRequest cas_u64_nb(Rank& self, DPtr p, std::uint64_t expected,
                       std::uint64_t desired, std::uint64_t* prev_out) {
    return cas_u64_nb(self, p.rank(), p.offset(), expected, desired, prev_out);
  }

  // --- remote atomics (AGET / APUT / CAS / FAA on 64-bit words) ------------

  [[nodiscard]] std::uint64_t atomic_get_u64(Rank& self, std::uint32_t target,
                                             std::uint64_t offset) {
    charge_atomic(self, target);
    return word(target, offset).load(std::memory_order_acquire);
  }

  void atomic_put_u64(Rank& self, std::uint32_t target, std::uint64_t offset,
                      std::uint64_t v) {
    charge_atomic(self, target);
    word(target, offset).store(v, std::memory_order_release);
  }

  /// Compare-and-swap; returns the previous value (paper's CAS semantics:
  /// success iff the return value equals `expected`).
  [[nodiscard]] std::uint64_t cas_u64(Rank& self, std::uint32_t target,
                                      std::uint64_t offset, std::uint64_t expected,
                                      std::uint64_t desired) {
    charge_atomic(self, target);
    std::uint64_t e = expected;
    word(target, offset).compare_exchange_strong(e, desired, std::memory_order_acq_rel,
                                                 std::memory_order_acquire);
    return e;
  }

  /// Fetch-and-add; returns the previous value.
  [[nodiscard]] std::uint64_t faa_u64(Rank& self, std::uint32_t target,
                                      std::uint64_t offset, std::int64_t add) {
    (void)inject(self, FaultOp::kFaa);
    charge_atomic(self, target);
    return word(target, offset).fetch_add(static_cast<std::uint64_t>(add),
                                          std::memory_order_acq_rel);
  }

  [[nodiscard]] std::uint64_t atomic_get_u64(Rank& self, DPtr p) {
    return atomic_get_u64(self, p.rank(), p.offset());
  }
  void atomic_put_u64(Rank& self, DPtr p, std::uint64_t v) {
    atomic_put_u64(self, p.rank(), p.offset(), v);
  }
  [[nodiscard]] std::uint64_t cas_u64(Rank& self, DPtr p, std::uint64_t expected,
                                      std::uint64_t desired) {
    return cas_u64(self, p.rank(), p.offset(), expected, desired);
  }
  [[nodiscard]] std::uint64_t faa_u64(Rank& self, DPtr p, std::int64_t add) {
    return faa_u64(self, p.rank(), p.offset(), add);
  }

  /// Completion fence for outstanding (conceptually non-blocking) operations
  /// targeting `target`. In-process operations complete eagerly, so the fence
  /// only charges the cost model, but call sites keep the same structure a
  /// real RDMA implementation requires.
  void flush(Rank& self, std::uint32_t target) {
    (void)target;
    (void)inject(self, FaultOp::kFlush);
    self.charge(self.net().alpha_flush_ns);
    self.counters().flushes += 1;
  }
  void flush_all(Rank& self) { flush(self, static_cast<std::uint32_t>(self.id())); }

 private:
  /// Fault-injection hook (rma/fault.hpp). Consults the rank's injector, if
  /// any, for this op; charges delays, raises FaultKill on a fail decision,
  /// and returns true when a PUT's data movement must be dropped (the cost is
  /// still charged by the caller -- the write was "sent" and lost).
  static bool inject(Rank& self, FaultOp op) {
    FaultInjector* f = self.faults();
    if (f == nullptr) [[likely]]
      return false;
    const FaultInjector::Action a = f->on_op(op);
    if (a.any()) self.counters().faults_injected += 1;
    if (a.delay_ns > 0.0) self.charge(a.delay_ns);
    if (a.fail) {
      f->mark_killed();
      throw FaultKill("injected data-plane failure");
    }
    return a.drop;
  }

  /// One committed slab: every rank's `seg_bytes_` region for one segment.
  struct Segment {
    std::vector<std::unique_ptr<std::byte[]>> regions;
  };

  [[nodiscard]] static std::size_t align_up(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

  /// Accesses must not straddle a segment boundary (segments are distinct
  /// registered regions; fixed windows have one segment, so any in-bounds
  /// access qualifies).
  [[nodiscard]] bool in_one_segment(std::uint64_t offset, std::size_t n) const {
    if (n == 0) return offset <= bytes_per_rank();
    return offset + n <= bytes_per_rank() &&
           offset / seg_bytes_ == (offset + n - 1) / seg_bytes_;
  }

  // Requires grow_mu_ (or single-threaded construction).
  void commit_segment_locked(std::size_t s) {
    auto* seg = new Segment;
    seg->regions.reserve(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r) {
      seg->regions.push_back(std::make_unique<std::byte[]>(seg_bytes_));
      std::memset(seg->regions.back().get(), 0, seg_bytes_);
    }
    segments_[s].store(seg, std::memory_order_release);
  }

  [[nodiscard]] std::byte* addr(std::uint32_t rank, std::uint64_t offset) {
    assert(rank < static_cast<std::uint32_t>(nranks_));
    const std::size_t s = offset / seg_bytes_;
    assert(s < max_segments_);
    Segment* seg = segments_[s].load(std::memory_order_acquire);
    assert(seg != nullptr && "access to an uncommitted window segment");
    return seg->regions[rank].get() + offset % seg_bytes_;
  }

  [[nodiscard]] std::atomic_ref<std::uint64_t> word(std::uint32_t rank,
                                                    std::uint64_t offset) {
    assert(offset % 8 == 0 && "remote atomics require 8-byte alignment");
    return std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(addr(rank, offset)));
  }

  NbRequest enqueue_data(Rank& self, std::size_t n, std::uint32_t target, bool is_put) {
    const auto& p = self.net();
    const bool remote = target != static_cast<std::uint32_t>(self.id());
    auto& c = self.counters();
    if (is_put) {
      c.puts += 1;
      c.bytes_put += n;
      c.nb_puts += 1;
    } else {
      c.gets += 1;
      c.bytes_get += n;
      c.nb_gets += 1;
    }
    if (remote) c.remote_ops += 1;
    return self.enqueue_nb(remote ? p.alpha_remote_ns : p.alpha_local_ns,
                           remote ? p.beta_ns_per_byte * static_cast<double>(n) : 0.0);
  }

  void charge_data(Rank& self, std::size_t n, std::uint32_t target, bool is_put) {
    const auto& p = self.net();
    const bool remote = target != static_cast<std::uint32_t>(self.id());
    self.charge((remote ? p.alpha_remote_ns : p.alpha_local_ns) +
                (remote ? p.beta_ns_per_byte * static_cast<double>(n) : 0.0));
    auto& c = self.counters();
    if (is_put) {
      c.puts += 1;
      c.bytes_put += n;
    } else {
      c.gets += 1;
      c.bytes_get += n;
    }
    if (remote) c.remote_ops += 1;
  }

  void charge_atomic(Rank& self, std::uint32_t target) {
    const auto& p = self.net();
    const bool remote = target != static_cast<std::uint32_t>(self.id());
    self.charge(remote ? p.alpha_atomic_remote_ns : p.alpha_atomic_local_ns);
    self.counters().atomics += 1;
    if (remote) self.counters().remote_ops += 1;
  }

  int nranks_;
  std::size_t seg_bytes_;
  std::size_t max_segments_;
  std::unique_ptr<std::atomic<Segment*>[]> segments_;  ///< [max_segments_] slots
  std::atomic<std::size_t> committed_{0};
  std::mutex grow_mu_;  ///< serializes registration only; accesses never block
};

}  // namespace gdi::rma
