// Bounded retry with exponential backoff + jitter for kOverloaded sheds.
//
// Admission control (Session::submit, and the socket listener's typed shed
// replies) answers overload with Status::kOverloaded -- an invitation to
// retry *later*, not immediately. Before this helper the in-process drivers
// retried in a bare yield loop, which under real contention is a thundering
// herd: every shed client re-submits at once and the admission gate sheds
// them all again. RetryBackoff is the one retry policy shared by the
// in-process bench clients and the socket client: exponential growth from
// base_us, capped at max_us, with seeded multiplicative jitter so concurrent
// clients decorrelate deterministically (same seed -> same schedule).
//
// The server may attach a retry-after hint to a shed (Reply::v1, in ns, on a
// kOverloaded reply); next_delay_us honours it as a floor for that step.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

namespace gdi::server {

class RetryBackoff {
 public:
  struct Config {
    std::size_t max_attempts = 0;  ///< 0 = unbounded (legacy driver behaviour)
    double base_us = 50.0;         ///< first-retry delay
    double max_us = 5000.0;        ///< backoff ceiling
    double jitter = 0.5;           ///< delay is scaled by [1-jitter, 1]
    std::uint64_t seed = 1;
  };

  explicit RetryBackoff(Config cfg)
      : cfg_(cfg), state_(cfg.seed != 0 ? cfg.seed : 0x9e3779b97f4a7c15ULL) {}

  /// True while another retry is allowed (call before each re-attempt).
  [[nodiscard]] bool allow() const {
    return cfg_.max_attempts == 0 || attempt_ < cfg_.max_attempts;
  }

  /// Delay (in microseconds) to wait before the next attempt, advancing the
  /// attempt counter. `hint_us` (e.g. a server retry-after) floors the value.
  [[nodiscard]] double next_delay_us(double hint_us = 0.0) {
    const double exp = cfg_.base_us * static_cast<double>(1ULL << std::min<std::size_t>(attempt_, 20));
    double d = std::min(exp, cfg_.max_us);
    // Multiplicative jitter in [1 - jitter, 1]: decorrelates clients without
    // ever collapsing the delay to zero.
    const double u = static_cast<double>(next_() >> 11) * 0x1.0p-53;
    d *= 1.0 - cfg_.jitter * u;
    ++attempt_;
    return std::max(d, hint_us);
  }

  /// Convenience for thread-backed clients: sleep the next delay away.
  void backoff(double hint_us = 0.0) {
    const double us = next_delay_us(hint_us);
    if (us >= 1.0)
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<std::int64_t>(us)));
    else
      std::this_thread::yield();
  }

  /// A successful attempt resets the schedule.
  void reset() { attempt_ = 0; }

  [[nodiscard]] std::size_t attempts() const { return attempt_; }

 private:
  [[nodiscard]] std::uint64_t next_() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
  }

  Config cfg_;
  std::uint64_t state_;
  std::size_t attempt_ = 0;
};

}  // namespace gdi::server
