#include "server/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "gdi/async.hpp"
#include "gdi/database.hpp"
#include "gdi/transaction.hpp"

namespace gdi::server {

// ---------------------------------------------------------------------------
// Session (client-thread surface)
// ---------------------------------------------------------------------------

Status Session::submit(const Request& r) {
  TenantScheduler* o = owner_;
  const auto shed = [&](Status s) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    o->rejects_.fetch_add(1, std::memory_order_relaxed);
    return s;
  };
  if (!o->accepting_.load(std::memory_order_acquire)) return shed(Status::kShutdown);
  std::lock_guard<std::mutex> lk(mu_);
  if (closed_) return shed(Status::kShutdown);
  if (inflight_ >= o->cfg_.inflight_per_tenant) return shed(Status::kOverloaded);
  constexpr std::size_t cost = sizeof(Request);
  // Reserve-then-check keeps the global budget exact under concurrent
  // submitters: the loser of a photo-finish gives its reservation back.
  const std::size_t prev =
      o->admitted_bytes_.fetch_add(cost, std::memory_order_acq_rel);
  if (prev + cost > o->cfg_.admission_bytes) {
    o->admitted_bytes_.fetch_sub(cost, std::memory_order_acq_rel);
    return shed(Status::kOverloaded);
  }
  inflight_ += 1;
  q_.push_back(r);
  return Status::kOk;
}

void Session::close() {
  std::lock_guard<std::mutex> lk(mu_);
  closed_ = true;
}

std::vector<Reply> Session::take_replies() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Reply> out;
  out.swap(replies_);
  return out;
}

bool Session::quiesced() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_ && q_.empty() && inflight_ == 0 && replies_.empty();
}

// ---------------------------------------------------------------------------
// TenantScheduler (rank-thread surface)
// ---------------------------------------------------------------------------

Session* TenantScheduler::open_session() {
  // Revive a recycled slot first: under connection churn the roster stays
  // bounded by peak concurrency. Recycled sessions are quiesced by contract,
  // so flipping their flags needs no lock ordering care beyond the mutex.
  for (auto& up : sessions_) {
    Session* s = up.get();
    if (!s->recycled_) continue;
    std::lock_guard<std::mutex> lk(s->mu_);
    s->recycled_ = false;
    s->closed_ = false;
    s->deficit_ = 0;
    s->durable_tenant_ = 0;
    return s;
  }
  const int id = static_cast<int>(sessions_.size());
  sessions_.emplace_back(std::unique_ptr<Session>(new Session(this, id)));
  served_of_.push_back(0);
  hists_.emplace_back();
  return sessions_.back().get();
}

void TenantScheduler::recycle(Session* s) {
  std::lock_guard<std::mutex> lk(s->mu_);
  // Contract: closed and drained. A non-quiesced recycle would lose queued
  // work, so refuse it (the listener only recycles after quiesced()).
  if (!s->closed_ || !s->q_.empty() || s->inflight_ != 0 || !s->replies_.empty())
    return;
  s->recycled_ = true;
}

bool TenantScheduler::idle() const {
  if (!pending_.empty()) return false;
  for (const auto& up : sessions_) {
    Session* s = up.get();
    std::lock_guard<std::mutex> lk(s->mu_);
    if (!s->q_.empty() || s->inflight_ != 0) return false;
  }
  return true;
}

stats::LatencyHist TenantScheduler::merged_latency() const {
  stats::LatencyHist all;
  for (const auto& h : hists_) all.merge(h);
  return all;
}

void TenantScheduler::flush_rejects(rma::Rank& self) {
  const std::uint64_t r = rejects_.exchange(0, std::memory_order_relaxed);
  if (r != 0) self.counters().sched_admission_rejects += r;
}

void TenantScheduler::complete(Session* s, Reply rep, double arrival_ns,
                               double now_ns, rma::Rank& self) {
  rep.complete_ns = now_ns;
  // Open-loop latency: from the request's arrival stamp, so time spent queued
  // behind other tenants (and waiting for an epoch to close) is in the tail.
  hists_[static_cast<std::size_t>(s->id_)].add(std::max(0.0, now_ns - arrival_ns));
  self.counters().sched_served += 1;
  std::lock_guard<std::mutex> lk(s->mu_);
  s->replies_.push_back(rep);
  if (s->inflight_ > 0) s->inflight_ -= 1;
}

void TenantScheduler::on_epoch_close(rma::Rank& self) {
  if (pending_.empty()) return;
  self.counters().sched_epochs += 1;
  const double now = self.sim_time_ns();
  // Swap out first: complete() takes session mutexes, and a future observer
  // firing reentrantly (it cannot today -- commits never run inside
  // complete()) must not see half-consumed state.
  std::vector<PendingReply> done;
  done.swap(pending_);
  for (auto& p : done) complete(p.s, p.rep, p.arrival_ns, now, self);
}

namespace {

/// Decode the first kInt64 entry of (vh, ptype); soft/critical failures are
/// reported through `st` (left untouched on success).
std::int64_t prop_int(Transaction& txn, VertexHandle vh, std::uint32_t ptype,
                      Status* st) {
  auto props = txn.get_properties(vh, ptype);
  if (!props.ok()) {
    *st = props.status();
    return 0;
  }
  if (props->empty()) return 0;
  if (const auto* p = std::get_if<std::int64_t>(&props->front())) return *p;
  return 0;
}

}  // namespace

void TenantScheduler::exec_read_single(const std::shared_ptr<Database>& db,
                                       rma::Rank& self, Dispatch& d) {
  const Request& r = d.r;
  Status outcome = Status::kOk;
  std::int64_t v0 = 0;
  std::int64_t v1 = 0;
  {
    Transaction txn(db, self, TxnMode::kRead);
    BatchScope scope = txn.batch();
    Future<VertexHandle> fa = scope.find(r.a);
    Future<VertexHandle> fb;
    if (r.op == OpKind::kReadPair) fb = scope.find(r.b);
    const Status es = scope.execute();
    if (is_transaction_critical(es)) {
      outcome = es;
      txn.abort();
    } else {
      if (!fa.ok()) {
        outcome = fa.status();
      } else {
        v0 = prop_int(txn, *fa, r.ptype, &outcome);
        if (r.op == OpKind::kReadPair) {
          if (!fb.ok())
            outcome = fb.status();
          else
            v1 = prop_int(txn, *fb, r.ptype, &outcome);
        }
      }
      const Status cs = txn.commit();
      if (is_transaction_critical(cs)) outcome = cs;
    }
  }
  complete(d.s, Reply{r.client_tag, outcome, v0, v1, 0}, r.arrival_ns,
           self.sim_time_ns(), self);
}

void TenantScheduler::exec_reads(const std::shared_ptr<Database>& db,
                                 rma::Rank& self, Dispatch* group, std::size_t n) {
  // One kRead transaction, one BatchScope::execute for the whole run: the
  // same frontier grouping the OLTP driver applies within one client, here
  // merging reads from *different tenants* into one overlapped round.
  std::vector<Status> outcomes(n, Status::kOk);
  std::vector<std::int64_t> v0(n, 0);
  std::vector<std::int64_t> v1(n, 0);
  bool doomed = false;
  {
    Transaction txn(db, self, TxnMode::kRead);
    BatchScope scope = txn.batch();
    std::vector<Future<VertexHandle>> fa(n);
    std::vector<Future<VertexHandle>> fb(n);
    for (std::size_t i = 0; i < n; ++i) {
      fa[i] = scope.find(group[i].r.a);
      if (group[i].r.op == OpKind::kReadPair) fb[i] = scope.find(group[i].r.b);
    }
    doomed = is_transaction_critical(scope.execute());
    if (!doomed) {
      for (std::size_t i = 0; i < n; ++i) {
        const Request& r = group[i].r;
        if (!fa[i].ok()) {
          outcomes[i] = fa[i].status();
          continue;
        }
        v0[i] = prop_int(txn, *fa[i], r.ptype, &outcomes[i]);
        if (r.op == OpKind::kReadPair) {
          if (!fb[i].ok())
            outcomes[i] = fb[i].status();
          else
            v1[i] = prop_int(txn, *fb[i], r.ptype, &outcomes[i]);
        }
      }
      doomed = is_transaction_critical(txn.commit());
    }
  }
  if (doomed) {
    // A writer doomed the shared transaction: retry every request in its own
    // transaction so one conflicted vertex cannot fail its group siblings.
    for (std::size_t i = 0; i < n; ++i) exec_read_single(db, self, group[i]);
    return;
  }
  self.counters().sched_coalesced += n;
  const double now = self.sim_time_ns();
  for (std::size_t i = 0; i < n; ++i)
    complete(group[i].s, Reply{group[i].r.client_tag, outcomes[i], v0[i], v1[i], 0},
             group[i].r.arrival_ns, now, self);
}

void TenantScheduler::exec_write(const std::shared_ptr<Database>& db,
                                 rma::Rank& self, Dispatch& d) {
  const Request& r = d.r;
  CommitPipeline* cp = db->commit_pipeline(self);
  Status outcome = Status::kOk;
  std::int64_t v0 = 0;
  std::uint64_t enrolled_before = 0;
  for (std::size_t attempt = 0;; ++attempt) {
    outcome = Status::kOk;
    v0 = 0;
    enrolled_before = self.counters().gc_enrolled;
    {
      Transaction txn(db, self, TxnMode::kWrite);
      switch (r.op) {
        case OpKind::kUpdateProp: {
          auto vh = txn.find_vertex(r.a);
          if (!vh.ok()) {
            outcome = vh.status();
            txn.abort();
            break;
          }
          const Status s = txn.update_property(*vh, r.ptype, PropValue{r.value});
          if (is_transaction_critical(s)) {
            outcome = s;
            txn.abort();
            break;
          }
          // The reply a successful commit will carry (the non-critical `s`
          // merge below) is known now -- arm it so it rides the WAL record.
          txn.arm_commit_ack(d.s->durable_tenant(), r.client_tag,
                             ok(s) ? Status::kOk : s, r.value, 0);
          outcome = txn.commit();
          if (!ok(s) && ok(outcome)) outcome = s;
          v0 = r.value;
          break;
        }
        case OpKind::kIncrement: {
          // Serializable read-modify-write: the read takes the read lock, the
          // update upgrades it, so two increments can never both read the old
          // value -- this is the lost-update shape the ACID audit hammers.
          auto vh = txn.find_vertex(r.a);
          if (!vh.ok()) {
            outcome = vh.status();
            txn.abort();
            break;
          }
          Status ps = Status::kOk;
          const std::int64_t cur = prop_int(txn, *vh, r.ptype, &ps);
          if (is_transaction_critical(ps)) {
            outcome = ps;
            txn.abort();
            break;
          }
          const Status s = txn.update_property(*vh, r.ptype, PropValue{cur + 1});
          if (is_transaction_critical(s)) {
            outcome = s;
            txn.abort();
            break;
          }
          txn.arm_commit_ack(d.s->durable_tenant(), r.client_tag, Status::kOk,
                             cur + 1, 0);
          outcome = txn.commit();
          v0 = cur + 1;
          break;
        }
        case OpKind::kWritePair: {
          auto va = txn.find_vertex(r.a);
          auto vb = va.ok() ? txn.find_vertex(r.b)
                            : Result<VertexHandle>(va.status());
          if (!va.ok() || !vb.ok()) {
            outcome = va.ok() ? vb.status() : va.status();
            txn.abort();
            break;
          }
          Status s = txn.update_property(*va, r.ptype, PropValue{r.value});
          if (!is_transaction_critical(s)) {
            const Status s2 = txn.update_property(*vb, r.ptype, PropValue{r.value});
            if (is_transaction_critical(s2)) s = s2;
          }
          if (is_transaction_critical(s)) {
            outcome = s;
            txn.abort();
            break;
          }
          txn.arm_commit_ack(d.s->durable_tenant(), r.client_tag, Status::kOk,
                             r.value, 0);
          outcome = txn.commit();
          v0 = r.value;
          break;
        }
        case OpKind::kAddEdge: {
          auto va = txn.find_vertex(r.a);
          auto vb = va.ok() ? txn.find_vertex(r.b)
                            : Result<VertexHandle>(va.status());
          if (!va.ok() || !vb.ok()) {
            outcome = va.ok() ? vb.status() : va.status();
            txn.abort();
            break;
          }
          auto uid = txn.create_edge(*va, *vb, layout::Dir::kOut);
          if (is_transaction_critical(uid.status()) && !uid.ok()) {
            outcome = uid.status();
            txn.abort();
            break;
          }
          txn.arm_commit_ack(d.s->durable_tenant(), r.client_tag, Status::kOk,
                             0, 0);
          outcome = txn.commit();
          break;
        }
        case OpKind::kGetProps:
        case OpKind::kReadPair:
          outcome = Status::kInvalidArgument;  // reads never reach here
          txn.abort();
          break;
      }
    }
    if (outcome != Status::kTxnConflict || attempt >= cfg_.write_retries) break;
  }
  Reply rep{r.client_tag, outcome, v0, 0, 0};
  // Deferral detection: commit() enrolled into the pipeline (gc_enrolled
  // moved) and the epoch is still open -- the writeback's completion fence
  // has not run, so the acknowledgement waits for the epoch observer. A
  // commit that *closed* its own epoch finds epoch_open() false (the
  // observer already fired, completing earlier pending replies) and is
  // acknowledged here, after the fence.
  const bool deferred = outcome == Status::kOk && cp != nullptr &&
                        cp->epoch_open() &&
                        self.counters().gc_enrolled > enrolled_before;
  if (deferred)
    pending_.push_back({d.s, rep, r.arrival_ns});
  else
    complete(d.s, rep, r.arrival_ns, self.sim_time_ns(), self);
}

bool TenantScheduler::pump(const std::shared_ptr<Database>& db, rma::Rank& self) {
  flush_rejects(self);
  const std::size_t n = sessions_.size();
  if (n == 0) return false;
  const double now = self.sim_time_ns();
  constexpr std::size_t cost = sizeof(Request);
  const std::size_t quantum = std::max<std::size_t>(cfg_.drr_quantum_bytes, 1);

  // Deficit round-robin dispatch: each visited session with runnable work
  // earns `quantum` bytes and dispatches FIFO while the deficit covers a
  // request. The plan preserves per-session program order; across sessions
  // it interleaves at quantum granularity, which is the fairness bound.
  std::vector<Dispatch> plan;
  for (std::size_t k = 0; k < n; ++k) {
    Session* s = sessions_[(rr_next_ + k) % n].get();
    std::lock_guard<std::mutex> lk(s->mu_);
    if (s->q_.empty()) {
      s->deficit_ = 0;  // classic DRR: an idle session banks no credit
      continue;
    }
    if (s->q_.front().arrival_ns > now) continue;  // not yet arrived
    s->deficit_ += quantum;
    while (!s->q_.empty() && s->q_.front().arrival_ns <= now &&
           s->deficit_ >= cost) {
      plan.push_back({s, s->q_.front()});
      s->q_.pop_front();
      s->deficit_ -= cost;
      served_of_[static_cast<std::size_t>(s->id_)] += 1;
      admitted_bytes_.fetch_sub(cost, std::memory_order_acq_rel);
    }
    if (s->q_.empty()) s->deficit_ = 0;
  }
  rr_next_ = (rr_next_ + 1) % n;
  if (plan.empty()) return false;

  // Execute the plan: maximal runs of consecutive reads share one
  // transaction (a write ends the run -- it may depend on the reads' targets
  // and per-session order must hold); everything else runs on its own.
  const std::size_t max_group = std::max<std::size_t>(cfg_.read_coalesce, 1);
  std::size_t i = 0;
  while (i < plan.size()) {
    if (is_read(plan[i].r.op) && max_group > 1) {
      std::size_t j = i;
      while (j < plan.size() && is_read(plan[j].r.op) && j - i < max_group) ++j;
      if (j - i == 1)
        exec_read_single(db, self, plan[i]);
      else
        exec_reads(db, self, plan.data() + i, j - i);
      i = j;
    } else if (is_read(plan[i].r.op)) {
      exec_read_single(db, self, plan[i]);
      ++i;
    } else {
      exec_write(db, self, plan[i]);
      ++i;
    }
  }
  return true;
}

void TenantScheduler::drain_loop(const std::shared_ptr<Database>& db,
                                 rma::Rank& self, bool until_closed) {
  CommitPipeline* cp = db->commit_pipeline(self);
  for (;;) {
    if (pump(db, self)) continue;
    // Nothing runnable at the current simulated time. Decide between done /
    // wait for clients (real time) / idle forward (simulated time).
    bool all_empty = true;
    bool all_closed = true;
    bool can_advance = true;
    double earliest = std::numeric_limits<double>::infinity();
    for (const auto& up : sessions_) {
      Session* s = up.get();
      std::lock_guard<std::mutex> lk(s->mu_);
      if (!s->q_.empty()) {
        all_empty = false;
        earliest = std::min(earliest, s->q_.front().arrival_ns);
      } else if (!s->closed_ && until_closed) {
        // An open, empty session may still submit a stamp earlier than any
        // queued one; advancing past it would reorder arrivals. Conservative
        // time advance: wait (real time) until it queues or closes.
        can_advance = false;
      }
      if (!s->closed_) all_closed = false;
    }
    if (all_empty && (!until_closed || all_closed)) break;
    if (all_empty || !can_advance) {
      std::this_thread::yield();
      continue;
    }
    const double now = self.sim_time_ns();
    if (earliest > now) {
      // Idle gap with nothing to amortize against: fence the open epoch so
      // deferred acknowledgements do not wait out the idle period too.
      if (cp != nullptr) cp->sync(self);
      self.charge(earliest - now);
    }
    // earliest <= now with an empty plan: deficits below one request's cost
    // accumulate across pump rounds; just pump again.
  }
  if (cp != nullptr) cp->sync(self);  // completes pending_ via the observer
  flush_rejects(self);
}

void TenantScheduler::run(const std::shared_ptr<Database>& db, rma::Rank& self) {
  drain_loop(db, self, /*until_closed=*/true);
}

void TenantScheduler::shutdown(const std::shared_ptr<Database>& db,
                               rma::Rank& self) {
  accepting_.store(false, std::memory_order_release);
  drain_loop(db, self, /*until_closed=*/false);
}

}  // namespace gdi::server
