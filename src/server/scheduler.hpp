// Multi-tenant front end: a per-rank transaction scheduler that merges
// concurrent client *sessions* into shared batch executes and shared
// group-commit epochs (the "multi-tenant front end" ROADMAP item).
//
// Threading contract (the whole design follows from it): an rma::Rank is
// only ever touched by its own thread, so client sessions -- std::thread
// backed in this repository, socket handlers later -- never execute database
// work themselves. A session is a mutex-protected request queue plus a reply
// mailbox; *all* GDI work happens on the rank's own thread inside
// TenantScheduler::pump/run, which pops admitted requests and executes them
// against the Database. Requests and replies are flat PODs with no pointers,
// so the same session surface can sit behind a byte-stream transport without
// changing the scheduler (the socket listener is a planned follow-up; it
// would deserialize Request frames into Session::submit exactly like the
// in-process clients do).
//
// What the scheduler adds over N clients each driving their own Transaction:
//   * admission control -- a bounded per-tenant in-flight cap plus one global
//     byte budget across all of a rank's sessions; submissions beyond either
//     bound are shed immediately with a typed Status (kOverloaded), never
//     queued, so one chatty tenant cannot grow server memory or starve the
//     rank thread (kShutdown after shutdown() began);
//   * fairness -- dispatch is deficit round-robin over the sessions: each
//     visited session with runnable work earns a byte quantum and dispatches
//     requests while its deficit covers them, so backlogged tenants share
//     the rank's throughput to within one quantum regardless of who floods
//     the queues first (per-session FIFO order is preserved);
//   * read coalescing -- maximal runs of consecutive *read* requests in the
//     dispatch order (across sessions) share one kRead Transaction and one
//     BatchScope::execute: one DHT multi-lookup, overlapped lock CAS rounds,
//     one overlapped holder fetch for the whole run, exactly the frontier
//     grouping the OLTP driver applies within a single client -- here it
//     composes *across tenants*. A doomed group falls back to per-request
//     retries so one conflicted vertex cannot fail its group siblings;
//   * shared commit epochs -- writes commit through the ordinary
//     Transaction::commit, so eligible commits from *different tenants*
//     enroll in the rank's one CommitPipeline flush epoch. An epoch-deferred
//     commit's reply is completed by the pipeline's epoch observer (after
//     the epoch's flush and WAL seal -- visible AND durable), which is where
//     group commit turns into group *acknowledgement*.
//
// Open-loop timing: requests carry a simulated-clock arrival stamp. The
// scheduler dispatches a request only once the rank's clock has reached its
// arrival; when every open session has a queued request (or is closed) and
// none has arrived yet, the rank idles forward to the earliest arrival
// (conservative time advance -- never past a stamp an open session might
// still submit, which keeps a fixed per-session stream deterministic
// regardless of client thread timing). Reply latency is measured from the
// *arrival* stamp, so queueing delay under load is part of p99, which is the
// point of recording it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.hpp"
#include "rma/runtime.hpp"
#include "stats/stats.hpp"

namespace gdi {
class Database;
}

namespace gdi::server {

/// Request vocabulary. Deliberately small and value-typed: each op names a
/// whole transaction shape the rank thread knows how to run, which is what a
/// wire protocol would carry (op + ids + payload), not handles or futures.
enum class OpKind : std::uint8_t {
  kGetProps = 0,  ///< read: properties of vertex `a` (ptype)
  kReadPair,      ///< read: v0/v1 = property of `a` and of `b` in ONE txn
  kUpdateProp,    ///< write: set property ptype of `a` to `value`
  kIncrement,     ///< write: read-modify-write +1 on property ptype of `a`
  kWritePair,     ///< write: set property of `a` AND `b` to `value`, one txn
  kAddEdge,       ///< write: lightweight edge a -> b
};

[[nodiscard]] constexpr bool is_read(OpKind op) {
  return op == OpKind::kGetProps || op == OpKind::kReadPair;
}

/// One client request. Flat POD -- memcpy-safe for a future byte-stream
/// transport; `client_tag` is echoed in the reply so clients can match
/// out-of-order acknowledgements (epoch-deferred writes complete later than
/// reads dispatched after them).
struct Request {
  OpKind op = OpKind::kGetProps;
  std::uint64_t a = 0;        ///< primary vertex app id
  std::uint64_t b = 0;        ///< secondary app id (pair ops, edge target)
  std::uint32_t ptype = 0;    ///< property type the op touches
  std::int64_t value = 0;     ///< payload for write ops
  double arrival_ns = 0;      ///< open-loop arrival stamp (simulated clock)
  std::uint64_t client_tag = 0;
};

/// One completed request. `complete_ns` for an epoch-deferred write is the
/// epoch's close time (post-flush, post-WAL-seal), not the commit call's.
struct Reply {
  std::uint64_t client_tag = 0;
  Status status = Status::kOk;
  std::int64_t v0 = 0;  ///< read result / committed value
  std::int64_t v1 = 0;  ///< second read result (kReadPair)
  double complete_ns = 0;
};

struct SchedulerConfig {
  std::size_t inflight_per_tenant = 64;    ///< queued+executing cap per session
  std::size_t admission_bytes = 256 * 1024;  ///< global queued-request budget
  std::size_t read_coalesce = 32;  ///< max reads sharing one txn (1 = eager)
  std::size_t drr_quantum_bytes = 256;  ///< DRR quantum per visited session
  std::size_t write_retries = 3;   ///< kTxnConflict retries before reporting
};

class TenantScheduler;

/// One tenant's connection. submit/close/take_replies are thread-safe (the
/// client's thread calls them); everything else belongs to the rank thread.
class Session {
 public:
  /// Admission-checked enqueue. kOk = queued; kOverloaded = shed (per-tenant
  /// in-flight cap or the global byte budget); kShutdown = server draining
  /// or session already closed. Shed requests are never queued.
  Status submit(const Request& r);

  /// No more submits; the scheduler drains what was admitted and run()
  /// returns once every session is closed and drained.
  void close();

  /// Drain the replies completed so far (any thread; typically the client).
  [[nodiscard]] std::vector<Reply> take_replies();

  /// True once the session is closed with nothing queued, nothing executing,
  /// and no untaken replies -- the state in which the rank thread may hand it
  /// to TenantScheduler::recycle. Any thread.
  [[nodiscard]] bool quiesced() const;

  [[nodiscard]] int id() const { return id_; }
  /// Requests this session shed at admission (kOverloaded + kShutdown).
  [[nodiscard]] std::uint64_t rejected() const {
    return rejects_.load(std::memory_order_relaxed);
  }

  /// Durable tenant id for WAL ack piggybacking (0 = none, the default for
  /// in-process sessions). The socket listener stamps its wire tenant id here
  /// right after open_session; write commits executed for such a session log
  /// a kTenantAck redo op, so the exactly-once reply cache survives a rank
  /// crash-restart. Rank thread only.
  void set_durable_tenant(std::uint64_t t) { durable_tenant_ = t; }
  [[nodiscard]] std::uint64_t durable_tenant() const { return durable_tenant_; }

 private:
  friend class TenantScheduler;
  Session(TenantScheduler* owner, int id) : owner_(owner), id_(id) {}

  TenantScheduler* owner_;
  int id_;
  mutable std::mutex mu_;
  std::deque<Request> q_;        ///< admitted, not yet dispatched (FIFO)
  std::vector<Reply> replies_;   ///< completed, not yet taken
  std::size_t inflight_ = 0;     ///< queued + executing (reply decrements)
  bool closed_ = false;
  bool recycled_ = false;        ///< parked in the free pool (rank thread)
  std::uint64_t durable_tenant_ = 0;  ///< WAL ack tenant (rank thread only)
  std::size_t deficit_ = 0;      ///< DRR deficit (rank thread only)
  std::atomic<std::uint64_t> rejects_{0};
};

/// The per-rank scheduler. Owned by Database (one per rank, like the shared
/// cache and the commit pipeline); only the owning rank's thread may call
/// pump/run/shutdown/on_epoch_close or read the stats.
class TenantScheduler {
 public:
  explicit TenantScheduler(SchedulerConfig cfg) : cfg_(cfg) {}
  TenantScheduler(const TenantScheduler&) = delete;
  TenantScheduler& operator=(const TenantScheduler&) = delete;

  /// Open a tenant session. Call on the rank thread *before* handing the
  /// pointer to a client thread (the session table is not resized
  /// concurrently with pump). The scheduler owns the Session. A recycled
  /// slot is reused before the table grows, so connection churn (the socket
  /// listener opens one session per accepted connection) keeps the roster
  /// bounded by peak concurrency instead of total connections ever.
  [[nodiscard]] Session* open_session();

  /// Return a quiesced session's slot to the free pool (rank thread; the
  /// caller guarantees no client thread still holds the pointer). The next
  /// open_session() revives it under the same id.
  void recycle(Session* s);

  /// One deficit-round-robin dispatch round: pop every runnable request the
  /// deficits allow (arrival <= now, per-session FIFO), execute them --
  /// consecutive reads coalesced up to cfg.read_coalesce -- and complete
  /// replies (epoch-deferred writes complete later via on_epoch_close).
  /// Returns true if any request was dispatched. Exposed for tests: the
  /// fairness test calls pump directly and inspects served_of().
  bool pump(const std::shared_ptr<Database>& db, rma::Rank& self);

  /// Serve until every session is closed and drained, then fence the commit
  /// pipeline so every reply is completed. Idles the simulated clock forward
  /// to the earliest queued arrival when nothing has arrived yet; yields the
  /// OS thread while an open session's queue is empty (conservative time
  /// advance -- see the header comment).
  void run(const std::shared_ptr<Database>& db, rma::Rank& self);

  /// Stop admission (subsequent submits shed with kShutdown), drain every
  /// already-admitted request, fence the pipeline. No committed transaction
  /// is lost: everything admitted is executed and acknowledged.
  void shutdown(const std::shared_ptr<Database>& db, rma::Rank& self);

  /// Stop admission only (thread-safe): subsequent submits shed with
  /// kShutdown, but nothing is drained. The socket listener uses this to
  /// begin a graceful drain while it keeps pumping IO and the scheduler
  /// interleaved on the rank thread; a final shutdown() fences the rest.
  void begin_shutdown() { accepting_.store(false, std::memory_order_release); }

  /// True when nothing is queued, executing, or awaiting an epoch ack across
  /// every session (rank thread). The listener's drain loop exits on it.
  [[nodiscard]] bool idle() const;

  /// CommitPipeline epoch observer (wired by Database): completes the
  /// replies of commits that deferred into the epoch that just closed.
  void on_epoch_close(rma::Rank& self);

  // --- stats (rank thread; stable once run/shutdown returned) --------------
  [[nodiscard]] std::size_t sessions() const { return sessions_.size(); }
  /// Requests dispatched for session `sid` (the DRR fairness observable).
  [[nodiscard]] std::uint64_t served_of(int sid) const {
    return served_of_[static_cast<std::size_t>(sid)];
  }
  /// Per-tenant end-to-end latency (arrival -> reply completion).
  [[nodiscard]] const stats::LatencyHist& tenant_latency(int sid) const {
    return hists_[static_cast<std::size_t>(sid)];
  }
  /// All tenants merged (bucket-wise; exact up to bucket resolution).
  [[nodiscard]] stats::LatencyHist merged_latency() const;

  [[nodiscard]] const SchedulerConfig& config() const { return cfg_; }

 private:
  friend class Session;

  struct Dispatch {
    Session* s = nullptr;
    Request r;
  };
  struct PendingReply {
    Session* s = nullptr;
    Reply rep;
    double arrival_ns = 0;
  };

  /// Move accumulated client-side admission rejects into the rank counters.
  void flush_rejects(rma::Rank& self);
  void complete(Session* s, Reply rep, double arrival_ns, double now_ns,
                rma::Rank& self);
  void exec_reads(const std::shared_ptr<Database>& db, rma::Rank& self,
                  Dispatch* group, std::size_t n);
  void exec_read_single(const std::shared_ptr<Database>& db, rma::Rank& self,
                        Dispatch& d);
  void exec_write(const std::shared_ptr<Database>& db, rma::Rank& self,
                  Dispatch& d);
  /// Shared drain loop: serve until (queues empty && pending empty) and, when
  /// `until_closed`, every session is closed too.
  void drain_loop(const std::shared_ptr<Database>& db, rma::Rank& self,
                  bool until_closed);

  SchedulerConfig cfg_;
  /// Deque for pointer stability; grown only by open_session (rank thread,
  /// pre-run). Client threads reach their Session by pointer, never by index.
  std::deque<std::unique_ptr<Session>> sessions_;
  std::size_t rr_next_ = 0;  ///< rotating DRR start position
  std::vector<PendingReply> pending_;  ///< epoch-deferred acknowledgements
  std::vector<std::uint64_t> served_of_;
  std::vector<stats::LatencyHist> hists_;
  std::atomic<std::size_t> admitted_bytes_{0};  ///< global queued budget used
  std::atomic<std::uint64_t> rejects_{0};  ///< shed count, pending counter flush
  std::atomic<bool> accepting_{true};
};

}  // namespace gdi::server
