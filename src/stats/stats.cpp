#include "stats/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/hash.hpp"

namespace gdi::stats {

Summary summarize(std::vector<double> samples, double warmup_fraction,
                  std::uint64_t seed) {
  Summary s;
  if (samples.empty()) return s;
  // Drop the first warmup_fraction of samples (paper Section 6.1).
  const auto warm = static_cast<std::size_t>(
      warmup_fraction * static_cast<double>(samples.size()));
  samples.erase(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(warm));
  if (samples.empty()) return s;
  s.n = samples.size();
  double sum = 0;
  s.min = samples[0];
  s.max = samples[0];
  for (double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);

  // Nonparametric CI: bootstrap percentile method, 200 resamples.
  constexpr int kResamples = 200;
  std::vector<double> means;
  means.reserve(kResamples);
  CounterRng rng(seed);
  for (int r = 0; r < kResamples; ++r) {
    double acc = 0;
    for (std::size_t i = 0; i < samples.size(); ++i)
      acc += samples[rng.next_below(samples.size())];
    means.push_back(acc / static_cast<double>(samples.size()));
  }
  std::sort(means.begin(), means.end());
  s.ci95_lo = means[static_cast<std::size_t>(0.025 * (kResamples - 1))];
  s.ci95_hi = means[static_cast<std::size_t>(0.975 * (kResamples - 1))];
  return s;
}

Histogram::Histogram(double lo_ns, double hi_ns, int buckets_per_decade)
    : lo_ns_(lo_ns), hi_ns_(hi_ns) {
  log_lo_ = std::log10(lo_ns);
  const double decades = std::log10(hi_ns) - log_lo_;
  const auto n = static_cast<std::size_t>(std::ceil(decades * buckets_per_decade));
  inv_log_step_ = static_cast<double>(n) / decades;
  counts_.assign(std::max<std::size_t>(n, 1), 0);
}

void Histogram::add(double ns) {
  std::size_t i;
  if (ns < lo_ns_) {
    i = 0;
  } else if (ns >= hi_ns_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((std::log10(ns) - log_lo_) * inv_log_step_);
    i = std::min(i, counts_.size() - 1);
  }
  ++counts_[i];
  ++total_;
  sum_ += ns;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < counts_.size() && i < other.counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

double Histogram::bucket_lo_ns(std::size_t i) const {
  return std::pow(10.0, log_lo_ + static_cast<double>(i) / inv_log_step_);
}

double Histogram::percentile_ns(double p) const {
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(total_));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    if (acc >= target) return bucket_lo_ns(i);
  }
  return bucket_lo_ns(counts_.size() - 1);
}

std::string Histogram::to_string(int max_rows) const {
  std::ostringstream os;
  int rows = 0;
  for (std::size_t i = 0; i < counts_.size() && rows < max_rows; ++i) {
    if (counts_[i] == 0) continue;
    os << "  " << Table::fmt(bucket_lo_ns(i) / 1000.0, 2) << " us: " << counts_[i] << "\n";
    ++rows;
  }
  return os.str();
}

std::string counters_line(const rma::OpCounters& c) {
  std::ostringstream os;
  os << "ops: gets=" << Table::fmt_si(static_cast<double>(c.gets), 1) << " (nb "
     << Table::fmt_si(static_cast<double>(c.nb_gets), 1) << ")"
     << " puts=" << Table::fmt_si(static_cast<double>(c.puts), 1) << " (nb "
     << Table::fmt_si(static_cast<double>(c.nb_puts), 1) << ")"
     << " atomics=" << Table::fmt_si(static_cast<double>(c.atomics), 1) << " (nb "
     << Table::fmt_si(static_cast<double>(c.nb_atomics), 1) << ")"
     << " remote=" << Table::fmt_si(static_cast<double>(c.remote_ops), 1)
     << " | batches=" << Table::fmt_si(static_cast<double>(c.batches), 1)
     << " max_depth=" << c.max_batch_ops << " | cache "
     << Table::fmt(cache_hit_rate(c) * 100.0, 1) << "% hit ("
     << Table::fmt_si(static_cast<double>(c.cache_hits), 1) << "/"
     << Table::fmt_si(static_cast<double>(c.cache_hits + c.cache_misses), 1) << ")"
     << " | scache " << Table::fmt(scache_hit_rate(c) * 100.0, 1) << "% hit ("
     << Table::fmt_si(static_cast<double>(c.scache_hits), 1) << "/"
     << Table::fmt_si(static_cast<double>(c.scache_hits + c.scache_misses), 1)
     << " v=" << Table::fmt_si(static_cast<double>(c.scache_validations), 1)
     << " i=" << Table::fmt_si(static_cast<double>(c.scache_invalidations), 1);
  if (c.scache_restamps > 0)
    os << " r=" << Table::fmt_si(static_cast<double>(c.scache_restamps), 1);
  os << ")";
  if (c.edge_batches > 0) {
    os << " | edge batches=" << Table::fmt_si(static_cast<double>(c.edge_batches), 1)
       << " avg_size="
       << Table::fmt(static_cast<double>(c.edge_batch_items) /
                         static_cast<double>(c.edge_batches),
                     1);
  }
  if (c.gc_epochs > 0) {
    os << " | gc epochs=" << Table::fmt_si(static_cast<double>(c.gc_epochs), 1)
       << " commits/epoch="
       << Table::fmt(static_cast<double>(c.gc_enrolled) /
                         static_cast<double>(c.gc_epochs),
                     1);
  }
  if (c.xlate_hits + c.xlate_fallbacks > 0) {
    os << " | xlate hits=" << Table::fmt_si(static_cast<double>(c.xlate_hits), 1)
       << " fallbacks=" << Table::fmt_si(static_cast<double>(c.xlate_fallbacks), 1);
  }
  if (c.wal_appends > 0 || c.wal_fsyncs > 0) {
    os << " | wal appends=" << Table::fmt_si(static_cast<double>(c.wal_appends), 1)
       << " fsyncs=" << Table::fmt_si(static_cast<double>(c.wal_fsyncs), 1);
    if (c.wal_fsyncs > 0)
      os << " appends/fsync="
         << Table::fmt(static_cast<double>(c.wal_appends) /
                           static_cast<double>(c.wal_fsyncs),
                       1);
    if (c.wal_replayed_epochs > 0)
      os << " replayed="
         << Table::fmt_si(static_cast<double>(c.wal_replayed_epochs), 1);
  }
  if (c.sched_served > 0 || c.sched_admission_rejects > 0) {
    os << " | sched served=" << Table::fmt_si(static_cast<double>(c.sched_served), 1)
       << " coalesced=" << Table::fmt_si(static_cast<double>(c.sched_coalesced), 1)
       << " rejects="
       << Table::fmt_si(static_cast<double>(c.sched_admission_rejects), 1);
    if (c.sched_epochs > 0)
      os << " epochs=" << Table::fmt_si(static_cast<double>(c.sched_epochs), 1);
  }
  if (c.dht_probe_rounds > 0 || c.dht_migrated > 0 || c.dht_reclaimed > 0) {
    os << " | dht probes=" << Table::fmt_si(static_cast<double>(c.dht_probe_rounds), 1)
       << " migrated=" << Table::fmt_si(static_cast<double>(c.dht_migrated), 1)
       << " reclaimed=" << Table::fmt_si(static_cast<double>(c.dht_reclaimed), 1);
  }
  if (c.net_accepted > 0 || c.net_frames_rx > 0 || c.net_bad_frames > 0) {
    os << " | net accepted=" << Table::fmt_si(static_cast<double>(c.net_accepted), 1)
       << " rx=" << Table::fmt_si(static_cast<double>(c.net_frames_rx), 1)
       << " tx=" << Table::fmt_si(static_cast<double>(c.net_frames_tx), 1);
    if (c.net_bad_frames > 0)
      os << " bad=" << Table::fmt_si(static_cast<double>(c.net_bad_frames), 1);
    if (c.net_backpressure_stalls > 0)
      os << " stalls="
         << Table::fmt_si(static_cast<double>(c.net_backpressure_stalls), 1);
    if (c.net_disconnects > 0)
      os << " drops=" << Table::fmt_si(static_cast<double>(c.net_disconnects), 1);
    if (c.net_replay_hits > 0)
      os << " replay_hits="
         << Table::fmt_si(static_cast<double>(c.net_replay_hits), 1);
    if (c.net_replay_cache_misses > 0)
      os << " replay_misses="
         << Table::fmt_si(static_cast<double>(c.net_replay_cache_misses), 1);
  }
  if (c.wal_io_errors > 0)
    os << " | wal DROPPED epochs="
       << Table::fmt_si(static_cast<double>(c.wal_io_errors), 1);
  if (c.faults_injected > 0)
    os << " | faults=" << Table::fmt_si(static_cast<double>(c.faults_injected), 1);
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t dash = 0;
  for (auto w : widths) dash += w + 2;
  os << std::string(dash, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::fmt_si(double v, int precision) {
  const char* suffix = "";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "B";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  return fmt(v, precision) + suffix;
}

}  // namespace gdi::stats
