// Measurement utilities mirroring the paper's methodology (Section 6.1):
// arithmetic means, 95% nonparametric confidence intervals, warmup dropping,
// and the log-bucketed latency histograms of Figure 5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rma/net_params.hpp"

namespace gdi::stats {

struct Summary {
  double mean = 0;
  double ci95_lo = 0;
  double ci95_hi = 0;
  double min = 0;
  double max = 0;
  std::size_t n = 0;
};

/// Arithmetic mean + 95% nonparametric (bootstrap percentile) CI.
[[nodiscard]] Summary summarize(std::vector<double> samples,
                                double warmup_fraction = 0.01,
                                std::uint64_t seed = 1);

/// Logarithmically bucketed latency histogram (Figure 5 style).
class Histogram {
 public:
  /// Buckets span [lo_ns, hi_ns) with `buckets_per_decade` log-spaced bins;
  /// out-of-range samples aggregate into the first/last bin (the paper
  /// "aggregates query latencies outside the range ... at the upper bound").
  Histogram(double lo_ns = 1e2, double hi_ns = 1e8, int buckets_per_decade = 8);

  void add(double ns);
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bucket_lo_ns(std::size_t i) const;
  [[nodiscard]] double percentile_ns(double p) const;  ///< p in [0,100]
  [[nodiscard]] double mean_ns() const { return total_ ? sum_ / static_cast<double>(total_) : 0; }

  /// Render as "lo_us..hi_us: count" rows, skipping empty buckets.
  [[nodiscard]] std::string to_string(int max_rows = 64) const;

 private:
  double lo_ns_, hi_ns_;
  double log_lo_, inv_log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0;
};

/// Latency recorder: a log-bucketed Histogram bundled with the percentile
/// shorthand every latency report wants (p50/p99/p999). One binning policy
/// for every latency surface in the tree -- the per-op OLTP histograms of
/// Figure 5, the baseline RPC models, and the per-tenant histograms of the
/// multi-tenant scheduler all record into this type, and merge() makes the
/// per-thread / per-tenant instances aggregatable (bucket-wise addition, so
/// merged percentiles are exact up to bucket resolution, not averaged).
class LatencyHist {
 public:
  explicit LatencyHist(double lo_ns = 1e2, double hi_ns = 1e8,
                       int buckets_per_decade = 8)
      : h_(lo_ns, hi_ns, buckets_per_decade) {}

  void add(double ns) { h_.add(ns); }
  void merge(const LatencyHist& other) { h_.merge(other.h_); }

  [[nodiscard]] std::uint64_t total() const { return h_.total(); }
  [[nodiscard]] double mean_ns() const { return h_.mean_ns(); }
  [[nodiscard]] double percentile_ns(double p) const { return h_.percentile_ns(p); }
  [[nodiscard]] double p50_ns() const { return h_.percentile_ns(50); }
  [[nodiscard]] double p99_ns() const { return h_.percentile_ns(99); }
  [[nodiscard]] double p999_ns() const { return h_.percentile_ns(99.9); }
  [[nodiscard]] std::string to_string(int max_rows = 64) const {
    return h_.to_string(max_rows);
  }
  [[nodiscard]] const Histogram& hist() const { return h_; }

 private:
  Histogram h_;
};

/// One-line rendering of RMA op counters for bench output: blocking vs
/// nonblocking op mix, batch statistics, and block-cache hit rate.
[[nodiscard]] std::string counters_line(const rma::OpCounters& c);

/// Block-cache hit rate in [0,1]; 0 when the cache saw no traffic.
[[nodiscard]] inline double cache_hit_rate(const rma::OpCounters& c) {
  const std::uint64_t total = c.cache_hits + c.cache_misses;
  return total == 0 ? 0.0 : static_cast<double>(c.cache_hits) / static_cast<double>(total);
}

/// Shared (inter-transaction) holder-cache hit rate in [0,1].
[[nodiscard]] inline double scache_hit_rate(const rma::OpCounters& c) {
  const std::uint64_t total = c.scache_hits + c.scache_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(c.scache_hits) / static_cast<double>(total);
}

/// Minimal aligned-column table printer for the benchmark harnesses.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] static std::string fmt(double v, int precision = 3);
  [[nodiscard]] static std::string fmt_si(double v, int precision = 3);  ///< 1.2M etc.

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gdi::stats
