#include "wal/wal.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "rma/fault.hpp"

namespace gdi::wal {
namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kFrameMagic = 0x4757414cu;  // "GWAL"
constexpr std::uint32_t kCkptMagic = 0x47434b50u;   // "GCKP"
// Frame header: magic, rank, epoch seq, payload_len, payload_crc.
constexpr std::size_t kFrameHeader = 4 + 4 + 8 + 4 + 4;

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + 4);
}
void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + 8);
}

/// Bounds-checked little cursor over a parsed buffer.
struct Cursor {
  const std::byte* p;
  std::size_t left;
  bool ok = true;

  template <class T>
  T take() {
    T v{};
    if (left < sizeof(T)) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return v;
  }
  [[nodiscard]] const std::byte* take_bytes(std::size_t n) {
    if (left < n) {
      ok = false;
      return nullptr;
    }
    const std::byte* out = p;
    p += n;
    left -= n;
    return out;
  }
};

std::string segment_name(int rank, std::uint64_t first_epoch) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "wal-r%d-e%020llu.seg", rank,
                static_cast<unsigned long long>(first_epoch));
  return buf;
}

/// Parse one epoch payload into commit views. Ops reference `payload`.
bool parse_payload(std::span<const std::byte> payload, EpochView& ep) {
  Cursor c{payload.data(), payload.size()};
  while (c.ok && c.left > 0) {
    CommitView commit;
    commit.commit_id = c.take<std::uint64_t>();
    const auto op_count = c.take<std::uint32_t>();
    const auto rec_len = c.take<std::uint32_t>();
    if (!c.ok || c.left < rec_len) return false;
    Cursor rc{c.p, rec_len};
    (void)c.take_bytes(rec_len);
    commit.ops.reserve(op_count);
    for (std::uint32_t i = 0; i < op_count && rc.ok; ++i) {
      Op op;
      op.type = static_cast<OpType>(rc.take<std::uint8_t>());
      switch (op.type) {
        case OpType::kAcquire:
        case OpType::kRelease:
        case OpType::kLockBump:
          op.blk = DPtr{rc.take<std::uint64_t>()};
          break;
        case OpType::kImage: {
          op.blk = DPtr{rc.take<std::uint64_t>()};
          op.off = rc.take<std::uint32_t>();
          const auto len = rc.take<std::uint32_t>();
          const std::byte* data = rc.take_bytes(len);
          if (data != nullptr) op.data = {data, len};
          break;
        }
        case OpType::kDhtInsert:
          op.key = rc.take<std::uint64_t>();
          op.value = rc.take<std::uint64_t>();
          break;
        case OpType::kDhtErase:
          op.key = rc.take<std::uint64_t>();
          break;
        case OpType::kTenantAck:
          op.tenant = rc.take<std::uint64_t>();
          op.tag = rc.take<std::uint64_t>();
          op.ack_status = rc.take<std::uint8_t>();
          op.ack_v0 = static_cast<std::int64_t>(rc.take<std::uint64_t>());
          op.ack_v1 = static_cast<std::int64_t>(rc.take<std::uint64_t>());
          break;
        default:
          return false;
      }
      if (rc.ok) commit.ops.push_back(op);
    }
    if (!rc.ok || rc.left != 0 || commit.ops.size() != op_count) return false;
    ep.commits.push_back(std::move(commit));
  }
  return c.ok;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

// --- CommitRecord ----------------------------------------------------------

void CommitRecord::u8(std::uint8_t v) { bytes_.push_back(static_cast<std::byte>(v)); }
void CommitRecord::u32(std::uint32_t v) { put_u32(bytes_, v); }
void CommitRecord::u64(std::uint64_t v) { put_u64(bytes_, v); }

void CommitRecord::acquire(DPtr got) {
  u8(static_cast<std::uint8_t>(OpType::kAcquire));
  u64(got.raw());
  ops_ += 1;
}
void CommitRecord::release(DPtr blk) {
  u8(static_cast<std::uint8_t>(OpType::kRelease));
  u64(blk.raw());
  ops_ += 1;
}
void CommitRecord::image(DPtr blk, std::uint32_t off, std::span<const std::byte> bytes) {
  u8(static_cast<std::uint8_t>(OpType::kImage));
  u64(blk.raw());
  u32(off);
  u32(static_cast<std::uint32_t>(bytes.size()));
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  ops_ += 1;
}
void CommitRecord::dht_insert(std::uint64_t key, std::uint64_t value) {
  u8(static_cast<std::uint8_t>(OpType::kDhtInsert));
  u64(key);
  u64(value);
  ops_ += 1;
}
void CommitRecord::dht_erase(std::uint64_t key) {
  u8(static_cast<std::uint8_t>(OpType::kDhtErase));
  u64(key);
  ops_ += 1;
}
void CommitRecord::lock_bump(DPtr blk) {
  u8(static_cast<std::uint8_t>(OpType::kLockBump));
  u64(blk.raw());
  ops_ += 1;
}
void CommitRecord::tenant_ack(std::uint64_t tenant, std::uint64_t tag,
                              std::uint8_t status, std::int64_t v0,
                              std::int64_t v1) {
  u8(static_cast<std::uint8_t>(OpType::kTenantAck));
  u64(tenant);
  u64(tag);
  u8(status);
  u64(static_cast<std::uint64_t>(v0));
  u64(static_cast<std::uint64_t>(v1));
  ops_ += 1;
}

// --- WalWriter -------------------------------------------------------------

WalWriter::WalWriter(int rank, WalConfig cfg) : cfg_(std::move(cfg)), rank_(rank) {
  // Non-throwing: an uncreatable directory surfaces as a seal-time open
  // failure (wal_io_errors), not a constructor exception mid-collective.
  std::error_code ec;
  fs::create_directories(cfg_.dir, ec);
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

bool WalWriter::rank_killed(rma::Rank& self) const {
  const rma::FaultInjector* f = self.faults();
  return f != nullptr && f->killed();
}

void WalWriter::open_segment(std::uint64_t first_epoch) {
  cur_path_ = cfg_.dir + "/" + segment_name(rank_, first_epoch);
  // "wb" truncates: a name collision can only be a dead segment whose every
  // frame was torn (recovery never hands out an epoch seq a valid frame of an
  // existing segment still carries).
  file_ = std::fopen(cur_path_.c_str(), "wb");
  file_bytes_ = 0;
  seg_first_epoch_ = first_epoch;
  seg_last_epoch_ = 0;
}

void WalWriter::rotate(std::uint64_t next_first_epoch) {
  if (file_ != nullptr) {
    std::fclose(file_);
    if (seg_last_epoch_ > 0)
      closed_.push_back({seg_first_epoch_, seg_last_epoch_, cur_path_});
    else
      fs::remove(cur_path_);  // never held an intact frame
    file_ = nullptr;
  }
  open_segment(next_first_epoch);
}

std::uint64_t WalWriter::append(rma::Rank& self, const CommitRecord& rec) {
  if (rec.empty() || rank_killed(self)) return 0;
  bound_ = &self;
  const std::uint64_t id = next_commit_++;
  const std::size_t before = open_.size();
  put_u64(open_, id);
  put_u32(open_, rec.op_count());
  put_u32(open_, static_cast<std::uint32_t>(rec.bytes().size()));
  open_.insert(open_.end(), rec.bytes().begin(), rec.bytes().end());
  self.charge(cfg_.append_ns_per_byte * static_cast<double>(open_.size() - before));
  self.counters().wal_appends += 1;
  return id;
}

void WalWriter::seal(rma::Rank& self, bool allow_kill) {
  if (open_.empty() || rank_killed(self)) return;
  bound_ = &self;
  const std::uint64_t seq = next_epoch_;
  if (file_ == nullptr)
    open_segment(seq);
  else if (file_bytes_ > 0 &&
           file_bytes_ + kFrameHeader + open_.size() > cfg_.segment_bytes)
    rotate(seq);
  if (file_ == nullptr) {
    // Filesystem failure: drop durability, not the run -- but *boundedly* and
    // *visibly*. The buffered epoch is discarded (its commits are already
    // applied in memory, only their redo is lost) so open_ cannot grow
    // without limit, and wal_io_errors records the loss so tests and benches
    // fail loudly instead of reporting a silently non-durable run. The next
    // seal retries open_segment.
    if (self.counters().wal_io_errors == 0)
      std::fprintf(stderr,
                   "[wal] rank %d: cannot open segment %s; epoch dropped, "
                   "durability lost\n",
                   rank_, cur_path_.c_str());
    self.counters().wal_io_errors += 1;
    open_.clear();
    return;
  }

  std::vector<std::byte> header;
  header.reserve(kFrameHeader);
  put_u32(header, kFrameMagic);
  put_u32(header, static_cast<std::uint32_t>(rank_));
  put_u64(header, seq);
  put_u32(header, static_cast<std::uint32_t>(open_.size()));
  put_u32(header, crc32(open_.data(), open_.size()));

  rma::FaultInjector* f = self.faults();
  if (allow_kill && f != nullptr && f->should_kill(rma::KillPoint::kMidAppend, seq)) {
    // Die with a genuinely torn frame on disk: full header, half the payload.
    std::fwrite(header.data(), 1, header.size(), file_);
    std::fwrite(open_.data(), 1, open_.size() / 2, file_);
    std::fflush(file_);
    ::fsync(fileno(file_));
    f->mark_killed();
    throw rma::FaultKill("wal mid-append kill");
  }

  std::fwrite(header.data(), 1, header.size(), file_);
  std::fwrite(open_.data(), 1, open_.size(), file_);
  std::fflush(file_);
  ::fsync(fileno(file_));
  file_bytes_ += header.size() + open_.size();
  seg_last_epoch_ = seq;
  next_epoch_ = seq + 1;
  sealed_since_ckpt_ += 1;
  self.charge(cfg_.append_ns_per_byte *
                  static_cast<double>(header.size() + open_.size()) +
              cfg_.fsync_ns);
  self.counters().wal_fsyncs += 1;
  open_.clear();

  if (allow_kill && f != nullptr && f->should_kill(rma::KillPoint::kEpochSeal, seq)) {
    f->mark_killed();
    throw rma::FaultKill("wal epoch-seal kill");
  }
}

void WalWriter::reset_hw(std::uint64_t epoch, std::uint64_t commit,
                         std::vector<SegmentInfo> existing) {
  assert(open_.empty() && file_ == nullptr);
  next_epoch_ = epoch + 1;
  next_commit_ = commit + 1;
  // Adopt the segments recovery scanned: they predate this writer, so they
  // are exactly the files truncate_through would otherwise never see.
  closed_.clear();
  for (SegmentInfo& s : existing)
    closed_.push_back({s.first_epoch, s.last_epoch, std::move(s.path)});
}

void WalWriter::truncate_through(std::uint64_t epoch) {
  if (file_ != nullptr && seg_last_epoch_ > 0) rotate(next_epoch_);
  std::erase_if(closed_, [&](const ClosedSeg& s) {
    if (s.last_epoch > epoch) return false;
    fs::remove(s.path);
    return true;
  });
  sealed_since_ckpt_ = 0;
}

// --- log reading -----------------------------------------------------------

RecoveredLog read_log(const std::string& dir, int rank,
                      std::uint64_t skip_through_epoch) {
  RecoveredLog out;
  const std::string prefix = "wal-r" + std::to_string(rank) + "-e";
  std::vector<std::pair<std::uint64_t, std::string>> segs;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind(prefix, 0) != 0 || name.size() < prefix.size() + 4 ||
        name.substr(name.size() - 4) != ".seg")
      continue;
    const std::string digits = name.substr(prefix.size(), name.size() - prefix.size() - 4);
    segs.emplace_back(std::strtoull(digits.c_str(), nullptr, 10), ent.path().string());
  }
  std::sort(segs.begin(), segs.end());

  std::uint64_t last_seq = 0;
  for (const auto& [first_epoch, path] : segs) {
    (void)first_epoch;
    if (out.torn_tail) break;  // frames are written sequentially: nothing
                               // intact can follow a torn frame
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) continue;
    std::fseek(f, 0, SEEK_END);
    const long sz = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::byte> buf(sz > 0 ? static_cast<std::size_t>(sz) : 0);
    if (!buf.empty() && std::fread(buf.data(), 1, buf.size(), f) != buf.size())
      buf.clear();
    std::fclose(f);

    SegmentInfo seg{0, 0, path};
    Cursor c{buf.data(), buf.size()};
    while (c.left > 0) {
      // Any torn detection below cuts at this frame's first byte.
      const std::uint64_t frame_off = buf.size() - c.left;
      const auto mark_torn = [&] {
        out.torn_tail = true;
        out.torn_path = path;
        out.torn_offset = frame_off;
      };
      if (c.left < kFrameHeader) {
        mark_torn();
        break;
      }
      const auto magic = c.take<std::uint32_t>();
      const auto frank = c.take<std::uint32_t>();
      const auto seq = c.take<std::uint64_t>();
      const auto len = c.take<std::uint32_t>();
      const auto crc = c.take<std::uint32_t>();
      if (magic != kFrameMagic || frank != static_cast<std::uint32_t>(rank) ||
          seq <= last_seq || c.left < len) {
        mark_torn();
        break;
      }
      const std::byte* payload = c.take_bytes(len);
      if (crc32(payload, len) != crc) {
        mark_torn();
        break;
      }
      EpochView ep;
      ep.seq = seq;
      out.payloads.emplace_back(payload, payload + len);
      if (!parse_payload(out.payloads.back(), ep)) {
        out.payloads.pop_back();
        mark_torn();
        break;
      }
      last_seq = seq;
      out.epoch_hw = seq;
      if (seg.first_epoch == 0) seg.first_epoch = seq;
      seg.last_epoch = seq;
      if (!ep.commits.empty()) out.commit_hw = ep.commits.back().commit_id;
      if (seq > skip_through_epoch)
        out.epochs.push_back(std::move(ep));
      else
        out.payloads.pop_back();  // covered by the checkpoint; drop the copy
    }
    // Segments with an intact frame (including a torn segment's intact
    // prefix) are reported so the writer can adopt them for truncation; a
    // wholly-torn file is left out -- truncate_torn_tail deletes it.
    if (seg.last_epoch > 0) out.segments.push_back(std::move(seg));
  }
  return out;
}

bool truncate_torn_tail(const RecoveredLog& log) {
  if (!log.torn_tail || log.torn_path.empty()) return true;
  std::error_code ec;
  if (log.torn_offset == 0) {
    // No intact frame precedes the cut: the whole file is dead weight.
    fs::remove(log.torn_path, ec);
    return !ec;
  }
  return ::truncate(log.torn_path.c_str(),
                    static_cast<off_t>(log.torn_offset)) == 0;
}

// --- checkpoint IO ---------------------------------------------------------

bool write_checkpoint(rma::Rank& self, const WalConfig& cfg, const Checkpoint& ck) {
  std::vector<std::byte> body;  // crc'd region: everything after the magic
  put_u32(body, static_cast<std::uint32_t>(ck.sections.size()));
  for (std::size_t r = 0; r < ck.sections.size(); ++r) {
    put_u64(body, ck.epoch_hw[r]);
    put_u64(body, ck.commit_hw[r]);
    put_u64(body, ck.sections[r].size());
    body.insert(body.end(), ck.sections[r].begin(), ck.sections[r].end());
  }
  // Listener replay state rides as a trailing block so checkpoints written
  // before it existed (or with net_listen off) parse identically: the reader
  // only looks for it when bytes remain past the per-rank loop.
  const bool any_net = std::any_of(ck.net_sections.begin(), ck.net_sections.end(),
                                   [](const auto& s) { return !s.empty(); });
  if (any_net) {
    put_u32(body, static_cast<std::uint32_t>(ck.net_sections.size()));
    for (const auto& s : ck.net_sections) {
      put_u64(body, s.size());
      body.insert(body.end(), s.begin(), s.end());
    }
  }
  std::vector<std::byte> file;
  file.reserve(4 + body.size() + 4);
  put_u32(file, kCkptMagic);
  file.insert(file.end(), body.begin(), body.end());
  put_u32(file, crc32(body.data(), body.size()));

  fs::create_directories(cfg.dir);
  const std::string tmp = cfg.dir + "/checkpoint.tmp";
  const std::string fin = cfg.dir + "/checkpoint.bin";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;

  rma::FaultInjector* inj = self.faults();
  if (inj != nullptr && inj->should_kill(rma::KillPoint::kMidCheckpoint, 0)) {
    // Die with a partial temp file, before the atomic rename: the previous
    // checkpoint (if any) must stay authoritative.
    std::fwrite(file.data(), 1, file.size() / 2, f);
    std::fflush(f);
    ::fsync(fileno(f));
    std::fclose(f);
    inj->mark_killed();
    throw rma::FaultKill("wal mid-checkpoint kill");
  }

  const bool wrote = std::fwrite(file.data(), 1, file.size(), f) == file.size();
  std::fflush(f);
  ::fsync(fileno(f));
  std::fclose(f);
  if (!wrote) return false;
  std::error_code ec;
  fs::rename(tmp, fin, ec);
  if (ec) return false;
  self.charge(cfg.append_ns_per_byte * static_cast<double>(file.size()) + cfg.fsync_ns);
  self.counters().wal_fsyncs += 1;
  return true;
}

std::optional<Checkpoint> read_checkpoint(const std::string& dir) {
  std::FILE* f = std::fopen((dir + "/checkpoint.bin").c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::fseek(f, 0, SEEK_END);
  const long sz = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::byte> buf(sz > 0 ? static_cast<std::size_t>(sz) : 0);
  const bool read_ok =
      !buf.empty() && std::fread(buf.data(), 1, buf.size(), f) == buf.size();
  std::fclose(f);
  if (!read_ok || buf.size() < 4 + 4 + 4) return std::nullopt;

  Cursor c{buf.data(), buf.size()};
  if (c.take<std::uint32_t>() != kCkptMagic) return std::nullopt;
  const std::size_t body_len = buf.size() - 4 - 4;
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, buf.data() + buf.size() - 4, 4);
  if (crc32(buf.data() + 4, body_len) != stored_crc) return std::nullopt;

  c.left -= 4;  // exclude the trailing crc from parsing
  Checkpoint ck;
  const auto nranks = c.take<std::uint32_t>();
  for (std::uint32_t r = 0; r < nranks && c.ok; ++r) {
    ck.epoch_hw.push_back(c.take<std::uint64_t>());
    ck.commit_hw.push_back(c.take<std::uint64_t>());
    const auto len = c.take<std::uint64_t>();
    const std::byte* data = c.take_bytes(len);
    if (data != nullptr) ck.sections.emplace_back(data, data + len);
  }
  if (!c.ok || ck.sections.size() != nranks) return std::nullopt;
  if (c.left > 0) {  // optional listener replay-state trailer
    const auto nnet = c.take<std::uint32_t>();
    for (std::uint32_t r = 0; r < nnet && c.ok; ++r) {
      const auto len = c.take<std::uint64_t>();
      const std::byte* data = c.take_bytes(len);
      if (data != nullptr) ck.net_sections.emplace_back(data, data + len);
    }
    if (!c.ok || ck.net_sections.size() != nnet) return std::nullopt;
  }
  return ck;
}

}  // namespace gdi::wal
