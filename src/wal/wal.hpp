// Epoch write-ahead log: per-rank segmented redo log + checkpoint files.
//
// Durability unit = the commit pipeline's flush epoch (ROADMAP "Durability
// and recovery"; the exemplar shape is SPEEDEX's block-structured
// persistence, where hash-chained committed blocks are persisted with
// group-amortized fsyncs). Each rank owns one WalWriter:
//
//  * Transaction::commit_local builds a CommitRecord -- the commit's redo
//    ops in execution order (block-pool acquires, dirty-block images keyed
//    by DPtr, DHT insert/erase intents, lock-word version bumps, block
//    releases) -- and appends it to the writer *before* issuing the unlock
//    FAAs that make the commit observable (write-ahead rule).
//  * Appends buffer into the writer's open epoch. seal() stamps the buffer
//    with the next monotone epoch sequence number, writes it as one
//    CRC-framed record to the current log segment, and pays a single fsync
//    for the whole epoch (group durability, amortized exactly like the
//    pipeline's group flush). Seal points: the pipeline's epoch close hook,
//    pipeline-ineligible commits (eager path), checkpoints, and teardown.
//  * Segments rotate at wal_segment_bytes; checkpoints truncate segments
//    that lie entirely behind the checkpointed epoch.
//
// Recovery (Database::recover) restores each rank from the newest
// checkpoint, then replays its log tail strictly in epoch order, skipping
// epochs the checkpoint already covers and cutting the tail at the first
// torn frame (bad magic, short header/payload, or CRC mismatch). Replay
// re-executes acquires/inserts against the live structures, which reproduces
// allocator state (free-list tags, heap watermarks) byte-for-byte; see
// README "Durability protocol" for the exact invariants and the single-
// driver no-abort contract under which byte equality holds.
//
// File IO is real (the log must survive the process); its *cost* is modeled
// on the simulated clock via wal_fsync_ns / wal_append_ns_per_byte, so
// benches measure durability overhead machine-independently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/dptr.hpp"
#include "rma/runtime.hpp"

namespace gdi::wal {

/// CRC-32 (IEEE 802.3, reflected). Frames and checkpoints are validated with
/// it; a mismatch marks the torn tail.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n,
                                  std::uint32_t seed = 0);

struct WalConfig {
  std::string dir;                       ///< log directory (one per database)
  std::size_t segment_bytes = 4u << 20;  ///< rotate segments past this size
  double fsync_ns = 20000.0;             ///< modeled cost of one group fsync
  double append_ns_per_byte = 0.25;      ///< modeled CRC+memcpy streaming cost
};

/// Redo op codes (one byte on the wire).
enum class OpType : std::uint8_t {
  kAcquire = 1,   ///< pop the target rank's block free list; verify the DPtr
  kRelease = 2,   ///< push a block back onto its free list
  kImage = 3,     ///< dirty-block image: overwrite [off, off+len) of a block
  kDhtInsert = 4, ///< app-id translation publish
  kDhtErase = 5,  ///< app-id translation retract
  kLockBump = 6,  ///< one write-unlock's +1 version increment on a lock word
  kTenantAck = 7, ///< networked tenant's completed-write acknowledgement:
                  ///< {tenant, tag, reply status/values}. Replay rebuilds the
                  ///< listener's per-tenant watermark + reply cache so a write
                  ///< replayed across a restart is answered, never re-executed.
};

/// One committed transaction's redo ops, accumulated in execution order.
class CommitRecord {
 public:
  void acquire(DPtr got);
  void release(DPtr blk);
  void image(DPtr blk, std::uint32_t off, std::span<const std::byte> bytes);
  void dht_insert(std::uint64_t key, std::uint64_t value);
  void dht_erase(std::uint64_t key);
  void lock_bump(DPtr blk);
  void tenant_ack(std::uint64_t tenant, std::uint64_t tag, std::uint8_t status,
                  std::int64_t v0, std::int64_t v1);

  [[nodiscard]] bool empty() const { return ops_ == 0; }
  [[nodiscard]] std::uint32_t op_count() const { return ops_; }
  [[nodiscard]] const std::vector<std::byte>& bytes() const { return bytes_; }
  void clear() {
    bytes_.clear();
    ops_ = 0;
  }

 private:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

  std::vector<std::byte> bytes_;
  std::uint32_t ops_ = 0;
};

/// Decoded redo op; `data` references the epoch payload it was parsed from.
struct Op {
  OpType type{};
  DPtr blk;                          ///< kAcquire/kRelease/kImage/kLockBump
  std::uint32_t off = 0;             ///< kImage
  std::span<const std::byte> data;   ///< kImage
  std::uint64_t key = 0, value = 0;  ///< kDhtInsert/kDhtErase
  std::uint64_t tenant = 0, tag = 0;         ///< kTenantAck
  std::uint8_t ack_status = 0;               ///< kTenantAck: Reply status
  std::int64_t ack_v0 = 0, ack_v1 = 0;       ///< kTenantAck: Reply values
};

struct CommitView {
  std::uint64_t commit_id = 0;
  std::vector<Op> ops;
};

struct EpochView {
  std::uint64_t seq = 0;
  std::vector<CommitView> commits;
};

/// One on-disk log segment holding at least one intact frame.
struct SegmentInfo {
  std::uint64_t first_epoch = 0;  ///< first intact epoch seq in the file
  std::uint64_t last_epoch = 0;   ///< last intact epoch seq in the file
  std::string path;
};

/// One rank's readable log suffix. `epochs` hold only seqs strictly above the
/// requested skip point; the high-water marks cover every intact frame seen.
struct RecoveredLog {
  std::vector<EpochView> epochs;
  std::vector<std::vector<std::byte>> payloads;  ///< backing store for `epochs`
  std::vector<SegmentInfo> segments;  ///< scanned segments with intact frames
  std::uint64_t epoch_hw = 0;   ///< last intact epoch seq (0 = none)
  std::uint64_t commit_hw = 0;  ///< last commit id in an intact epoch
  bool torn_tail = false;       ///< a torn/corrupt frame cut the tail
  std::string torn_path;        ///< segment file holding the torn frame
  std::uint64_t torn_offset = 0;  ///< byte offset of the cut inside torn_path
};

/// Global consistent-cut snapshot: every rank's serialized state plus each
/// rank's WAL high-water marks at the cut. One file per database
/// (checkpoint.bin, written via temp + atomic rename) -- per-rank files would
/// be unsound for truncation, because any rank's log may contain redo for
/// *other* ranks' regions (cross-rank writebacks). Rank 0's section embeds
/// the DHT shard directory (shard/clean/pending counts, erase epoch,
/// migration stamp), so recovery restores the partition's split state and a
/// paused compaction pass simply re-runs against it -- migrations are
/// physical moves, never logged, and re-applying them is idempotent.
struct Checkpoint {
  std::vector<std::vector<std::byte>> sections;  ///< [rank] Database payload
  std::vector<std::uint64_t> epoch_hw;           ///< [rank]
  std::vector<std::uint64_t> commit_hw;          ///< [rank]
  /// [rank] listener replay state (per-tenant watermark + reply cache),
  /// serialized by net::Listener. Kept OUT of `sections`: serialize_rank is
  /// the byte-for-byte oracle comparator and tenant replies carry
  /// timing-dependent fields. Written as a trailing block after the per-rank
  /// loop (and only when non-empty), so pre-PR10 checkpoints read back fine.
  std::vector<std::vector<std::byte>> net_sections;
};

/// Per-rank segmented log writer. Owned by Database; only ever driven by its
/// own rank's thread (same contract as rma::Rank).
class WalWriter {
 public:
  WalWriter(int rank, WalConfig cfg);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Buffer one commit's record into the open epoch and assign its monotone
  /// commit id. Charges the modeled append cost. No-op (returns 0) on a
  /// fault-killed rank.
  std::uint64_t append(rma::Rank& self, const CommitRecord& rec);

  /// Frame + write + group-fsync the open epoch under the next epoch seq;
  /// no-op when the epoch is empty or the rank is fault-killed. Rotates the
  /// segment past segment_bytes first. `allow_kill=false` suppresses the
  /// kEpochSeal / kMidAppend kill switches (teardown drain must not arm a
  /// kill point that the run itself never reached).
  void seal(rma::Rank& self, bool allow_kill = true);

  [[nodiscard]] bool has_open_epoch() const { return !open_.empty(); }
  [[nodiscard]] std::uint64_t epoch_hw() const { return next_epoch_ - 1; }
  [[nodiscard]] std::uint64_t commit_hw() const { return next_commit_ - 1; }
  [[nodiscard]] std::uint64_t sealed_since_checkpoint() const {
    return sealed_since_ckpt_;
  }

  /// Recovery hand-off: position the writer after a restored checkpoint/log
  /// (next epoch = epoch+1, next commit id = commit+1). Must precede the
  /// first append; starts a fresh segment so torn remnants are never
  /// appended to. `existing` (RecoveredLog::segments) seeds the closed-
  /// segment list so later checkpoints truncate pre-restart segments too --
  /// without it the log directory would grow without bound across
  /// crash/recover cycles.
  void reset_hw(std::uint64_t epoch, std::uint64_t commit,
                std::vector<SegmentInfo> existing = {});

  /// Drop closed segments that lie entirely at or behind `epoch` (called
  /// behind a durable checkpoint covering that epoch); rotates the current
  /// segment first so it can be collected too. Resets the auto-checkpoint
  /// cadence counter.
  void truncate_through(std::uint64_t epoch);

  /// Rank this writer was last driven by (set on append/seal); teardown
  /// drains through it. Null until the first append.
  [[nodiscard]] rma::Rank* bound() const { return bound_; }

  [[nodiscard]] const WalConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] bool rank_killed(rma::Rank& self) const;
  void rotate(std::uint64_t next_first_epoch);
  void open_segment(std::uint64_t first_epoch);

  struct ClosedSeg {
    std::uint64_t first_epoch = 0, last_epoch = 0;
    std::string path;
  };

  WalConfig cfg_;
  int rank_;
  std::vector<std::byte> open_;  ///< concatenated records of the open epoch
  std::uint64_t next_commit_ = 1;
  std::uint64_t next_epoch_ = 1;
  std::uint64_t sealed_since_ckpt_ = 0;
  std::FILE* file_ = nullptr;
  std::size_t file_bytes_ = 0;
  std::uint64_t seg_first_epoch_ = 1;
  std::uint64_t seg_last_epoch_ = 0;  ///< 0 while the segment holds no frame
  std::string cur_path_;
  std::vector<ClosedSeg> closed_;
  rma::Rank* bound_ = nullptr;
};

/// Read one rank's log segments in epoch order, skipping (but accounting)
/// epochs <= skip_through_epoch and cutting at the first torn frame. The cut
/// position (file + byte offset) is reported in torn_path/torn_offset.
[[nodiscard]] RecoveredLog read_log(const std::string& dir, int rank,
                                    std::uint64_t skip_through_epoch);

/// Erase a torn remnant from disk: truncate torn_path at torn_offset
/// (deleting the file when no intact frame precedes the cut). Must run
/// during recovery, before the rank resumes sealing -- a stale torn frame
/// left at a segment tail would cut the NEXT recovery's scan short and
/// silently shadow every intact segment sealed after this one. No-op (true)
/// when the log has no torn tail; false on filesystem errors.
[[nodiscard]] bool truncate_torn_tail(const RecoveredLog& log);

/// Write the global checkpoint (temp file + atomic rename). Consults `self`'s
/// FaultInjector at the kMidCheckpoint kill point. Charges the modeled
/// serialize + fsync cost. Returns false on filesystem errors.
[[nodiscard]] bool write_checkpoint(rma::Rank& self, const WalConfig& cfg,
                                    const Checkpoint& ck);

/// Read + validate the checkpoint; nullopt when absent or corrupt (a partial
/// temp file from a mid-checkpoint death is ignored by construction).
[[nodiscard]] std::optional<Checkpoint> read_checkpoint(const std::string& dir);

}  // namespace gdi::wal
