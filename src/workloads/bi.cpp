#include "workloads/bi.hpp"

#include <algorithm>
#include <map>
#include <cstring>

namespace gdi::work {

ShardResult<std::uint64_t> bi2_count(const std::shared_ptr<Database>& db,
                                     rma::Rank& self, Index& person_index,
                                     const Bi2Params& p) {
  self.reset_clock();
  self.reset_counters();
  ShardResult<std::uint64_t> res;

  Transaction txn(db, self, TxnMode::kReadShared, TxnScope::kCollective);
  const Constraint own_edge = Constraint::with_label(p.own_edge_label);
  std::uint64_t local = 0;

  auto people = txn.local_index_vertices(person_index);
  if (people.ok()) {
    for (DPtr person : *people) {
      auto vh = txn.associate_vertex(person);
      if (!vh.ok()) continue;
      auto age = txn.get_properties(*vh, p.age_ptype);
      if (!age.ok() || age->empty()) continue;
      if (std::get<std::int64_t>((*age)[0]) <= p.age_threshold) continue;

      auto things = txn.neighbors_of(*vh, DirFilter::kOutgoing, &own_edge);
      if (!things.ok()) continue;
      // One overlapped batch for the whole neighbor set: the per-object
      // associate/labels/props below become local state hits.
      txn.prefetch_vertices(*things);
      for (DPtr obj : *things) {
        auto nh = txn.associate_vertex(obj);
        if (!nh.ok()) continue;
        auto labels = txn.labels_of(*nh);
        if (!labels.ok() ||
            std::find(labels->begin(), labels->end(), p.car_label) == labels->end())
          continue;
        auto color = txn.get_properties(*nh, p.color_ptype);
        if (!color.ok() || color->empty()) continue;
        if (std::get<std::int64_t>((*color)[0]) == p.color_value) {
          ++local;
          break;  // count each anchor vertex once
        }
      }
      self.charge_compute(20.0);
    }
  }
  (void)txn.commit();

  res.values.assign(1, self.allreduce_sum(local));
  res.sim_time_ns = self.allreduce_max(self.sim_time_ns());
  res.remote_ops = self.allreduce_sum(self.counters().remote_ops);
  return res;
}

ShardResult<std::pair<std::int64_t, std::uint64_t>> bi_group_count(
    const std::shared_ptr<Database>& db, rma::Rank& self, Index& index,
    std::uint32_t group_ptype) {
  self.reset_clock();
  self.reset_counters();
  ShardResult<std::pair<std::int64_t, std::uint64_t>> res;

  // Local aggregation over this rank's index shard.
  std::map<std::int64_t, std::uint64_t> groups;
  {
    Transaction txn(db, self, TxnMode::kReadShared, TxnScope::kCollective);
    auto locals = txn.local_index_vertices(index);
    if (locals.ok()) {
      for (DPtr v : *locals) {
        auto vh = txn.associate_vertex(v);
        if (!vh.ok()) continue;
        auto vals = txn.get_properties(*vh, group_ptype);
        if (!vals.ok() || vals->empty()) continue;
        ++groups[std::get<std::int64_t>((*vals)[0])];
        self.charge_compute(10.0);
      }
    }
    (void)txn.commit();
  }
  // Global merge: exchange (value, count) pairs, fold locally.
  struct Pair {
    std::int64_t value;
    std::uint64_t count;
  };
  std::vector<Pair> flat;
  flat.reserve(groups.size());
  for (const auto& [v, c] : groups) flat.push_back({v, c});
  auto all = self.allgatherv(flat);
  std::map<std::int64_t, std::uint64_t> merged;
  for (const auto& p : all) merged[p.value] += p.count;
  res.values.assign(merged.begin(), merged.end());
  res.sim_time_ns = self.allreduce_max(self.sim_time_ns());
  res.remote_ops = self.allreduce_sum(self.counters().remote_ops);
  return res;
}

std::vector<std::pair<std::int64_t, std::uint64_t>> bi_group_count_reference(
    const gen::KroneckerGenerator& g, std::uint32_t anchor_label,
    std::uint32_t group_ptype) {
  std::map<std::int64_t, std::uint64_t> groups;
  for (std::uint64_t v = 0; v < g.config().num_vertices(); ++v) {
    const auto labels = g.vertex_labels(v);
    if (std::find(labels.begin(), labels.end(), anchor_label) == labels.end())
      continue;
    for (const auto& [pt, bytes] : g.vertex_props(v)) {
      if (pt == group_ptype) {
        std::int64_t x = 0;
        std::memcpy(&x, bytes.data(), std::min<std::size_t>(bytes.size(), 8));
        ++groups[x];
        break;
      }
    }
  }
  return {groups.begin(), groups.end()};
}

std::uint64_t bi2_reference(const gen::KroneckerGenerator& g, const Bi2Params& p) {
  const std::uint64_t n = g.config().num_vertices();
  const auto edges = g.all_edges();

  auto has_label = [&](std::uint64_t v, std::uint32_t l) {
    const auto ls = g.vertex_labels(v);
    return std::find(ls.begin(), ls.end(), l) != ls.end();
  };
  auto int_prop = [&](std::uint64_t v, std::uint32_t pt) -> std::pair<bool, std::int64_t> {
    for (const auto& [id, bytes] : g.vertex_props(v)) {
      if (id == pt) {
        std::int64_t x = 0;
        std::memcpy(&x, bytes.data(), std::min<std::size_t>(bytes.size(), 8));
        return {true, x};
      }
    }
    return {false, 0};
  };

  // Pre-index outgoing labeled edges by source.
  std::vector<std::vector<std::uint64_t>> out(n);
  for (std::size_t k = 0; k < edges.size(); ++k) {
    if (g.edge_label(k) == p.own_edge_label) out[edges[k].src].push_back(edges[k].dst);
  }

  std::uint64_t count = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (!has_label(v, p.person_label)) continue;
    const auto [has_age, age] = int_prop(v, p.age_ptype);
    if (!has_age || age <= p.age_threshold) continue;
    for (std::uint64_t nb : out[v]) {
      if (!has_label(nb, p.car_label)) continue;
      const auto [has_color, color] = int_prop(nb, p.color_ptype);
      if (has_color && color == p.color_value) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace gdi::work
