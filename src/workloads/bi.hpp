// Business-intelligence / OLSP workload (paper Section 3.1's example query,
// Listing 3, and the BI2 bars of Figure 6b).
//
// The query shape is the paper's running example: "how many vertices with
// label A have property P > t and an edge with label E to a neighbor with
// label B whose property Q equals c?" -- executed as a collective
// transaction over an explicit label index, with constraint-filtered
// neighbor expansion and a final global reduction (Listing 3 line 18).
#pragma once

#include <cstdint>
#include <memory>

#include "gdi/gdi.hpp"
#include "generator/kronecker.hpp"
#include "workloads/olap.hpp"

namespace gdi::work {

struct Bi2Params {
  std::uint32_t person_label = 0;   ///< label of the anchor vertex set ("Person")
  std::uint32_t age_ptype = 0;      ///< int64 property filtered with >
  std::int64_t age_threshold = 0;
  std::uint32_t own_edge_label = 0; ///< label the connecting edge must carry
  std::uint32_t car_label = 0;      ///< label the neighbor must carry ("Car")
  std::uint32_t color_ptype = 0;    ///< int64 property on the neighbor
  std::int64_t color_value = 0;     ///< equality filter ("red")
};

/// Collective BI2 query; values[0] holds the global count on every rank.
ShardResult<std::uint64_t> bi2_count(const std::shared_ptr<Database>& db,
                                     rma::Rank& self, Index& person_index,
                                     const Bi2Params& p);

/// Brute-force reference evaluated from the generator's deterministic
/// decoration functions plus the explicit edge list.
[[nodiscard]] std::uint64_t bi2_reference(const gen::KroneckerGenerator& g,
                                          const Bi2Params& p);

/// BI aggregation query (the "data summarization and aggregation" the paper
/// attributes to business-intelligence workloads, Section 2): group the
/// vertices of an index by the value of an int64 property and count each
/// group. Returns (value, count) pairs sorted by value, identical on every
/// rank (merged with an allgatherv).
ShardResult<std::pair<std::int64_t, std::uint64_t>> bi_group_count(
    const std::shared_ptr<Database>& db, rma::Rank& self, Index& index,
    std::uint32_t group_ptype);

/// Brute-force reference for bi_group_count over the generator's decoration.
[[nodiscard]] std::vector<std::pair<std::int64_t, std::uint64_t>>
bi_group_count_reference(const gen::KroneckerGenerator& g, std::uint32_t anchor_label,
                         std::uint32_t group_ptype);

}  // namespace gdi::work
