#include "workloads/churn.hpp"

#include <vector>

#include "common/hash.hpp"

namespace gdi::work {

ChurnStats run_churn(rma::Rank& self, dht::DistributedHashTable& t,
                     const ChurnConfig& cfg) {
  ChurnStats st;
  CounterRng rng(cfg.seed + static_cast<std::uint64_t>(self.id()) * 0x9E37u);
  // Disjoint per-rank key ranges: value = key + 1 so every hit is checkable.
  const std::uint64_t base = (static_cast<std::uint64_t>(self.id()) + 1) << 40;
  std::uint64_t next_key = 0;
  std::vector<std::uint64_t> live;
  live.reserve(cfg.inserts_per_round * cfg.rounds);

  self.barrier();
  const double t0 = self.sim_time_ns();
  const std::uint64_t mig0 = self.counters().dht_migrated;
  const std::uint64_t rec0 = self.counters().dht_reclaimed;
  for (std::uint64_t round = 0; round < cfg.rounds; ++round) {
    // Create: a batch of fresh keys through the overlapped write path.
    {
      std::vector<std::uint64_t> keys, vals;
      keys.reserve(cfg.inserts_per_round);
      for (std::uint64_t i = 0; i < cfg.inserts_per_round; ++i) {
        const std::uint64_t k = base + next_key++;
        keys.push_back(k);
        vals.push_back(k + 1);
      }
      const auto ok = t.insert_many(self, keys, vals);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (ok[i]) {
          live.push_back(keys[i]);
          ++st.inserts;
        }
      }
    }
    // Delete: a random erase_fraction of this rank's live keys. swap-remove
    // keeps the sample uniform without reshuffling.
    {
      auto target = static_cast<std::uint64_t>(
          cfg.erase_fraction * static_cast<double>(live.size()));
      while (target-- > 0 && !live.empty()) {
        const std::uint64_t j = rng.next_below(live.size());
        const std::uint64_t k = live[j];
        live[j] = live.back();
        live.pop_back();
        if (t.erase(self, k)) ++st.erases;
      }
    }
    // Lookup: a sampled multi-lookup over survivors; probe rounds are
    // charged to the probe-flatness measurement (delta around this phase
    // only, so insert/erase/compact traversal does not pollute it).
    if (!live.empty() && cfg.lookups_per_round > 0) {
      std::vector<std::uint64_t> keys;
      keys.reserve(cfg.lookups_per_round);
      for (std::uint64_t i = 0; i < cfg.lookups_per_round; ++i)
        keys.push_back(live[rng.next_below(live.size())]);
      const std::uint64_t probes0 = self.counters().dht_probe_rounds;
      const auto got = t.lookup_many(self, keys);
      st.probe_rounds += self.counters().dht_probe_rounds - probes0;
      st.lookups += keys.size();
      for (std::size_t i = 0; i < keys.size(); ++i)
        if (!got[i].has_value() || *got[i] != keys[i] + 1) ++st.wrong;
    }
    // Maintain: one incremental compaction slice, concurrent with the other
    // ranks' traffic (no barrier before it -- that concurrency is the point).
    if (cfg.compact_budget > 0) (void)t.compact(self, cfg.compact_budget);
  }
  st.sim_ns = self.sim_time_ns() - t0;
  self.barrier();
  st.migrated = self.counters().dht_migrated - mig0;
  st.reclaimed = self.counters().dht_reclaimed - rec0;
  st.final_shards = t.shard_count(self);
  st.final_clean = t.clean_shard_count(self);
  self.barrier();
  return st;
}

}  // namespace gdi::work
