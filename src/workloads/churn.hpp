// DHT churn workload driver (the PR 8 soak shape).
//
// Drives a DistributedHashTable with a sustained create/delete/lookup stream:
// every round each rank inserts a batch of fresh keys, erases a fraction of
// its live keys, and multi-looks-up a sample of survivors, optionally running
// an incremental compaction slice between rounds. The stream keeps the table
// near its provisioned capacity, so allocation constantly recycles freed
// slots (exercising the cross-shard spill allocator) while the key population
// turning over forces directory growth and migration.
//
// The driver measures the two properties the partitioned DHT guarantees and
// the churn-soak CI lane asserts:
//   * probe flatness  -- bucket-head probe rounds per lookup stay at 1 in the
//     compacted steady state regardless of how many shards were published;
//   * capacity reclaim -- freed entry slots are reused by later allocations
//     (dht_reclaimed / erases), instead of stranding in older shards.
#pragma once

#include <cstdint>
#include <memory>

#include "dht/dht.hpp"
#include "rma/runtime.hpp"

namespace gdi::work {

struct ChurnConfig {
  std::uint64_t rounds = 16;
  std::uint64_t inserts_per_round = 256;  ///< fresh keys per rank per round
  double erase_fraction = 0.5;    ///< of this rank's live keys, per round
  std::uint64_t lookups_per_round = 256;  ///< sampled from this rank's live keys
  /// Migration budget for the compaction slice run after every round
  /// (incremental mode); 0 = never compact mid-stream (callers may still run
  /// a full pass afterwards).
  std::uint64_t compact_budget = 0;
  std::uint64_t seed = 1;
};

struct ChurnStats {
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t lookups = 0;
  std::uint64_t wrong = 0;     ///< lookups that returned a missing/wrong value
  std::uint64_t probe_rounds = 0;  ///< dht_probe_rounds delta over lookup phases
  std::uint64_t migrated = 0;      ///< entries rehomed (this rank's passes)
  std::uint64_t reclaimed = 0;     ///< freed slots reused by this rank's allocs
  std::uint64_t final_shards = 0;  ///< published shard count at the end
  std::uint64_t final_clean = 0;   ///< clean count at the end
  double sim_ns = 0;               ///< this rank's simulated time in the stream

  [[nodiscard]] double probes_per_lookup() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(probe_rounds) / static_cast<double>(lookups);
  }
  [[nodiscard]] double reclaim_fraction() const {
    return erases == 0 ? 1.0
                       : static_cast<double>(reclaimed) / static_cast<double>(erases);
  }
};

/// Run the churn stream on `t` (collective: every rank drives its own disjoint
/// key range; internal barriers keep rounds aligned). Returns this rank's
/// stats; reduce across ranks for globals.
[[nodiscard]] ChurnStats run_churn(rma::Rank& self, dht::DistributedHashTable& t,
                                   const ChurnConfig& cfg);

}  // namespace gdi::work
