#include "workloads/gnn.hpp"

#include <algorithm>
#include <cstring>
#include <span>

namespace gdi::work {
namespace {

std::vector<std::byte> encode_features(const std::vector<float>& f) {
  std::vector<std::byte> out(f.size() * sizeof(float));
  std::memcpy(out.data(), f.data(), out.size());
  return out;
}

std::vector<float> decode_features(const std::vector<std::byte>& b) {
  std::vector<float> out(b.size() / sizeof(float));
  std::memcpy(out.data(), b.data(), b.size());
  return out;
}

/// aggregate (sum of neighbor features + own) -> MLP -> ReLU.
std::vector<float> layer_update(const GnnConfig& cfg, const std::vector<float>& agg) {
  std::vector<float> h(static_cast<std::size_t>(cfg.k), 0.0f);
  for (int i = 0; i < cfg.k; ++i) {
    float acc = 0.0f;
    for (int j = 0; j < cfg.k; ++j)
      acc += gnn_weight(cfg, i, j) * agg[static_cast<std::size_t>(j)];
    h[static_cast<std::size_t>(i)] = acc > 0.0f ? acc : 0.0f;  // sigma = ReLU
  }
  return h;
}

}  // namespace

float gnn_weight(const GnnConfig& cfg, int i, int j) {
  const std::uint64_t h = hash_combine(cfg.seed * 0x6E55u + 17,
                                       static_cast<std::uint64_t>(i) * 4096u +
                                           static_cast<std::uint64_t>(j));
  // Small centered weights, scaled down with k to keep activations bounded.
  return static_cast<float>((to_unit_double(h) - 0.5) * 2.0 / cfg.k);
}

float gnn_initial_feature(const GnnConfig& cfg, std::uint64_t v, int i) {
  const std::uint64_t h =
      hash_combine(cfg.seed * 0xFEA7u + 29, v * 4096u + static_cast<std::uint64_t>(i));
  return static_cast<float>(to_unit_double(h));
}

Status gnn_init_features(const std::shared_ptr<Database>& db, rma::Rank& self,
                         std::uint64_t n, std::uint32_t feature_ptype,
                         const GnnConfig& cfg) {
  const auto P = static_cast<std::uint64_t>(self.nranks());
  Transaction txn(db, self, TxnMode::kWrite, TxnScope::kCollective);
  for (std::uint64_t v = static_cast<std::uint64_t>(self.id()); v < n; v += P) {
    auto vh = txn.find_vertex(v);
    if (!vh.ok()) continue;
    std::vector<float> f(static_cast<std::size_t>(cfg.k));
    for (int i = 0; i < cfg.k; ++i)
      f[static_cast<std::size_t>(i)] = gnn_initial_feature(cfg, v, i);
    if (Status s = txn.update_property(*vh, feature_ptype,
                                       PropValue{encode_features(f)});
        !ok(s))
      return s;
  }
  return txn.commit();
}

ShardResult<std::vector<float>> gnn_forward(const std::shared_ptr<Database>& db,
                                            rma::Rank& self, std::uint64_t n,
                                            std::uint32_t feature_ptype,
                                            const GnnConfig& cfg) {
  const auto P = static_cast<std::uint64_t>(self.nranks());
  self.reset_clock();
  self.reset_counters();
  ShardResult<std::vector<float>> res;

  for (int layer = 0; layer < cfg.layers; ++layer) {
    // Read pass (Listing 2 lines 3-14): lock-free collective read of own
    // features plus every neighbor's feature property (remote GETs). The
    // pass is chunked so every round of holder fetches -- local vertices and
    // then their whole neighbor frontier -- rides one overlapped batch.
    std::vector<std::vector<float>> next;
    {
      constexpr std::size_t kChunk = 128;
      Transaction txn(db, self, TxnMode::kReadShared, TxnScope::kCollective);
      std::vector<std::uint64_t> local_ids;
      for (std::uint64_t v = static_cast<std::uint64_t>(self.id()); v < n; v += P)
        local_ids.push_back(v);
      for (std::size_t base = 0; base < local_ids.size(); base += kChunk) {
        const std::size_t end = std::min(base + kChunk, local_ids.size());
        // Pass 1: find the whole chunk with one execute (batched DHT
        // translation + overlapped holder fetch + stale-DHT validation),
        // then read own features and edge lists from local state.
        BatchScope finds = txn.batch();
        std::vector<Future<VertexHandle>> handles;
        handles.reserve(end - base);
        for (std::size_t j = 0; j < end - base; ++j)
          handles.push_back(finds.find(local_ids[base + j]));
        (void)finds.execute();

        std::vector<std::vector<float>> aggs(end - base);
        std::vector<std::vector<Future<std::vector<PropValue>>>> nfeat(end - base);
        BatchScope nreads = txn.batch();
        for (std::size_t j = 0; j < end - base; ++j) {
          aggs[j].assign(static_cast<std::size_t>(cfg.k), 0.0f);
          if (!handles[j].ok()) continue;
          const VertexHandle vh = *handles[j];
          auto own = txn.get_properties(vh, feature_ptype);
          if (own.ok() && !own->empty())
            aggs[j] = decode_features(std::get<std::vector<std::byte>>((*own)[0]));
          auto edges = txn.edges_of(vh, DirFilter::kOutgoing);
          if (!edges.ok()) continue;
          // Pass 2 setup: one future per neighbor feature read.
          nfeat[j].reserve(edges->size());
          for (const auto& e : *edges)
            nfeat[j].push_back(nreads.get_properties(e.neighbor, feature_ptype));
        }

        // Pass 2: one execute fetches every neighbor holder overlapped and
        // resolves all feature reads; aggregate from the futures.
        (void)nreads.execute();
        for (std::size_t j = 0; j < end - base; ++j) {
          if (!handles[j].ok()) {
            next.emplace_back(static_cast<std::size_t>(cfg.k), 0.0f);
            continue;
          }
          for (const auto& nf : nfeat[j]) {
            if (!nf.ok() || nf->empty()) continue;
            const auto fv = decode_features(std::get<std::vector<std::byte>>((*nf)[0]));
            for (int i = 0; i < cfg.k; ++i)
              aggs[j][static_cast<std::size_t>(i)] += fv[static_cast<std::size_t>(i)];
          }
          next.push_back(layer_update(cfg, aggs[j]));
          // Modeled MLP cost: k x k multiply-accumulate.
          self.charge_compute(static_cast<double>(cfg.k) * cfg.k);
        }
      }
      (void)txn.commit();
    }
    self.barrier();  // Listing 2 line 2: collective synchronization
    // Write pass (Listing 2 line 15): each rank updates its own vertices.
    // Write intents ride the async surface (one execute per chunk), and the
    // commit writes every dirty block back with put_nb + one flush.
    {
      constexpr std::size_t kChunk = 128;
      Transaction txn(db, self, TxnMode::kWrite, TxnScope::kCollective);
      std::vector<std::uint64_t> own_ids;
      for (std::uint64_t v = static_cast<std::uint64_t>(self.id()); v < n; v += P)
        own_ids.push_back(v);
      for (std::size_t base = 0; base < own_ids.size(); base += kChunk) {
        const std::size_t end = std::min(base + kChunk, own_ids.size());
        BatchScope finds = txn.batch();
        std::vector<Future<VertexHandle>> handles;
        handles.reserve(end - base);
        for (std::size_t j = base; j < end; ++j)
          handles.push_back(finds.find(own_ids[j]));
        (void)finds.execute();
        BatchScope writes = txn.batch();
        for (std::size_t j = base; j < end; ++j) {
          if (!handles[j - base].ok()) continue;
          (void)writes.set_property(*handles[j - base], feature_ptype,
                                    PropValue{encode_features(next[j])});
        }
        (void)writes.execute();
      }
      (void)txn.commit();
    }
    if (layer + 1 == cfg.layers) res.values = std::move(next);
  }

  res.sim_time_ns = self.allreduce_max(self.sim_time_ns());
  res.remote_ops = self.allreduce_sum(self.counters().remote_ops);
  return res;
}

std::vector<std::vector<float>> gnn_reference(const ref::Csr& g, const GnnConfig& cfg) {
  std::vector<std::vector<float>> feat(g.n);
  for (std::uint64_t v = 0; v < g.n; ++v) {
    feat[v].resize(static_cast<std::size_t>(cfg.k));
    for (int i = 0; i < cfg.k; ++i)
      feat[v][static_cast<std::size_t>(i)] = gnn_initial_feature(cfg, v, i);
  }
  for (int layer = 0; layer < cfg.layers; ++layer) {
    std::vector<std::vector<float>> next(g.n);
    for (std::uint64_t v = 0; v < g.n; ++v) {
      std::vector<float> agg = feat[v];
      for (std::uint64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        const auto& fv = feat[g.targets[e]];
        for (int i = 0; i < cfg.k; ++i)
          agg[static_cast<std::size_t>(i)] += fv[static_cast<std::size_t>(i)];
      }
      next[v] = layer_update(cfg, agg);
    }
    feat.swap(next);
  }
  return feat;
}

}  // namespace gdi::work
