#include "workloads/gnn.hpp"

#include <cstring>

namespace gdi::work {
namespace {

std::vector<std::byte> encode_features(const std::vector<float>& f) {
  std::vector<std::byte> out(f.size() * sizeof(float));
  std::memcpy(out.data(), f.data(), out.size());
  return out;
}

std::vector<float> decode_features(const std::vector<std::byte>& b) {
  std::vector<float> out(b.size() / sizeof(float));
  std::memcpy(out.data(), b.data(), b.size());
  return out;
}

/// aggregate (sum of neighbor features + own) -> MLP -> ReLU.
std::vector<float> layer_update(const GnnConfig& cfg, const std::vector<float>& agg) {
  std::vector<float> h(static_cast<std::size_t>(cfg.k), 0.0f);
  for (int i = 0; i < cfg.k; ++i) {
    float acc = 0.0f;
    for (int j = 0; j < cfg.k; ++j)
      acc += gnn_weight(cfg, i, j) * agg[static_cast<std::size_t>(j)];
    h[static_cast<std::size_t>(i)] = acc > 0.0f ? acc : 0.0f;  // sigma = ReLU
  }
  return h;
}

}  // namespace

float gnn_weight(const GnnConfig& cfg, int i, int j) {
  const std::uint64_t h = hash_combine(cfg.seed * 0x6E55u + 17,
                                       static_cast<std::uint64_t>(i) * 4096u +
                                           static_cast<std::uint64_t>(j));
  // Small centered weights, scaled down with k to keep activations bounded.
  return static_cast<float>((to_unit_double(h) - 0.5) * 2.0 / cfg.k);
}

float gnn_initial_feature(const GnnConfig& cfg, std::uint64_t v, int i) {
  const std::uint64_t h =
      hash_combine(cfg.seed * 0xFEA7u + 29, v * 4096u + static_cast<std::uint64_t>(i));
  return static_cast<float>(to_unit_double(h));
}

Status gnn_init_features(const std::shared_ptr<Database>& db, rma::Rank& self,
                         std::uint64_t n, std::uint32_t feature_ptype,
                         const GnnConfig& cfg) {
  const auto P = static_cast<std::uint64_t>(self.nranks());
  Transaction txn(db, self, TxnMode::kWrite, TxnScope::kCollective);
  for (std::uint64_t v = static_cast<std::uint64_t>(self.id()); v < n; v += P) {
    auto vh = txn.find_vertex(v);
    if (!vh.ok()) continue;
    std::vector<float> f(static_cast<std::size_t>(cfg.k));
    for (int i = 0; i < cfg.k; ++i)
      f[static_cast<std::size_t>(i)] = gnn_initial_feature(cfg, v, i);
    if (Status s = txn.update_property(*vh, feature_ptype,
                                       PropValue{encode_features(f)});
        !ok(s))
      return s;
  }
  return txn.commit();
}

ShardResult<std::vector<float>> gnn_forward(const std::shared_ptr<Database>& db,
                                            rma::Rank& self, std::uint64_t n,
                                            std::uint32_t feature_ptype,
                                            const GnnConfig& cfg) {
  const auto P = static_cast<std::uint64_t>(self.nranks());
  self.reset_clock();
  self.reset_counters();
  ShardResult<std::vector<float>> res;

  for (int layer = 0; layer < cfg.layers; ++layer) {
    // Read pass (Listing 2 lines 3-14): lock-free collective read of own
    // features plus every neighbor's feature property (remote GETs).
    std::vector<std::vector<float>> next;
    {
      Transaction txn(db, self, TxnMode::kReadShared, TxnScope::kCollective);
      for (std::uint64_t v = static_cast<std::uint64_t>(self.id()); v < n; v += P) {
        auto vh = txn.find_vertex(v);
        if (!vh.ok()) {
          next.emplace_back(static_cast<std::size_t>(cfg.k), 0.0f);
          continue;
        }
        auto own = txn.get_properties(*vh, feature_ptype);
        std::vector<float> agg(static_cast<std::size_t>(cfg.k), 0.0f);
        if (own.ok() && !own->empty())
          agg = decode_features(std::get<std::vector<std::byte>>((*own)[0]));
        auto edges = txn.edges_of(*vh, DirFilter::kOutgoing);
        if (edges.ok()) {
          for (const auto& e : *edges) {
            auto nh = txn.associate_vertex(e.neighbor);
            if (!nh.ok()) continue;
            auto nf = txn.get_properties(*nh, feature_ptype);
            if (nf.ok() && !nf->empty()) {
              const auto fv = decode_features(std::get<std::vector<std::byte>>((*nf)[0]));
              for (int i = 0; i < cfg.k; ++i)
                agg[static_cast<std::size_t>(i)] += fv[static_cast<std::size_t>(i)];
            }
          }
        }
        next.push_back(layer_update(cfg, agg));
        // Modeled MLP cost: k x k multiply-accumulate.
        self.charge_compute(static_cast<double>(cfg.k) * cfg.k);
      }
      (void)txn.commit();
    }
    self.barrier();  // Listing 2 line 2: collective synchronization
    // Write pass (Listing 2 line 15): each rank updates its own vertices.
    {
      Transaction txn(db, self, TxnMode::kWrite, TxnScope::kCollective);
      std::size_t i = 0;
      for (std::uint64_t v = static_cast<std::uint64_t>(self.id()); v < n; v += P, ++i) {
        auto vh = txn.find_vertex(v);
        if (!vh.ok()) continue;
        (void)txn.update_property(*vh, feature_ptype, PropValue{encode_features(next[i])});
      }
      (void)txn.commit();
    }
    if (layer + 1 == cfg.layers) res.values = std::move(next);
  }

  res.sim_time_ns = self.allreduce_max(self.sim_time_ns());
  res.remote_ops = self.allreduce_sum(self.counters().remote_ops);
  return res;
}

std::vector<std::vector<float>> gnn_reference(const ref::Csr& g, const GnnConfig& cfg) {
  std::vector<std::vector<float>> feat(g.n);
  for (std::uint64_t v = 0; v < g.n; ++v) {
    feat[v].resize(static_cast<std::size_t>(cfg.k));
    for (int i = 0; i < cfg.k; ++i)
      feat[v][static_cast<std::size_t>(i)] = gnn_initial_feature(cfg, v, i);
  }
  for (int layer = 0; layer < cfg.layers; ++layer) {
    std::vector<std::vector<float>> next(g.n);
    for (std::uint64_t v = 0; v < g.n; ++v) {
      std::vector<float> agg = feat[v];
      for (std::uint64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        const auto& fv = feat[g.targets[e]];
        for (int i = 0; i < cfg.k; ++i)
          agg[static_cast<std::size_t>(i)] += fv[static_cast<std::size_t>(i)];
      }
      next[v] = layer_update(cfg, agg);
    }
    feat.swap(next);
  }
  return feat;
}

}  // namespace gdi::work
