// Graph Neural Network workload (paper Listing 2, evaluation Figures 6c/6d):
// graph-convolution forward passes where the per-vertex feature vector is a
// GDI *property*, aggregated from neighbors, transformed by a fixed MLP and a
// ReLU nonlinearity, and written back with property updates.
//
// Each layer runs as two collective transactions with a barrier between them
// (Listing 2's "some form of collective synchronization"): a lock-free read
// pass computes the new features, then a write pass updates every rank's own
// vertices -- so reads never contend with the writes of the next phase.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gdi/gdi.hpp"
#include "workloads/olap.hpp"
#include "workloads/reference.hpp"

namespace gdi::work {

struct GnnConfig {
  int layers = 2;
  int k = 16;             ///< feature dimension (paper sweeps 4..500)
  std::uint64_t seed = 7; ///< determines initial features and MLP weights
};

/// Deterministic MLP weight / bias / initial feature values shared by the
/// GDI implementation and the single-threaded reference.
[[nodiscard]] float gnn_weight(const GnnConfig& cfg, int i, int j);
[[nodiscard]] float gnn_initial_feature(const GnnConfig& cfg, std::uint64_t v, int i);

/// Install the initial feature property on every vertex (collective).
/// `feature_ptype` must be a kBytes property type.
Status gnn_init_features(const std::shared_ptr<Database>& db, rma::Rank& self,
                         std::uint64_t n, std::uint32_t feature_ptype,
                         const GnnConfig& cfg);

/// Run `cfg.layers` graph-convolution layers; returns this rank's final
/// feature shard (values[i] = features of vertex rank + i*P).
ShardResult<std::vector<float>> gnn_forward(const std::shared_ptr<Database>& db,
                                            rma::Rank& self, std::uint64_t n,
                                            std::uint32_t feature_ptype,
                                            const GnnConfig& cfg);

/// Single-threaded reference with identical math (order-insensitive up to
/// floating-point associativity; compare with tolerance).
[[nodiscard]] std::vector<std::vector<float>> gnn_reference(const ref::Csr& undirected,
                                                            const GnnConfig& cfg);

}  // namespace gdi::work
