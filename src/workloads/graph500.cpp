#include "workloads/graph500.hpp"

#include <algorithm>

namespace gdi::work {

namespace {
struct WirePair {
  std::uint64_t src;
  std::uint64_t dst;
};
}  // namespace

Graph500::Graph500(rma::Rank& self, std::uint64_t n,
                   const std::vector<BulkEdge>& slice_edges)
    : n_(n) {
  const int P = self.nranks();
  const auto r = static_cast<std::uint64_t>(self.id());
  local_n_ = (n > r) ? (n - 1 - r) / static_cast<std::uint64_t>(P) + 1 : 0;

  // Route both directions of every edge to the owner of the base endpoint.
  std::vector<std::vector<WirePair>> sends(static_cast<std::size_t>(P));
  for (const auto& e : slice_edges) {
    sends[e.src % static_cast<std::uint64_t>(P)].push_back({e.src, e.dst});
    sends[e.dst % static_cast<std::uint64_t>(P)].push_back({e.dst, e.src});
  }
  auto recv = self.alltoallv(sends);
  sends.clear();

  std::vector<std::uint64_t> degree(local_n_, 0);
  for (const auto& chunk : recv)
    for (const auto& p : chunk) ++degree[local_index(p.src, P)];
  offsets_.assign(local_n_ + 1, 0);
  for (std::uint64_t i = 0; i < local_n_; ++i) offsets_[i + 1] = offsets_[i] + degree[i];
  targets_.resize(offsets_[local_n_]);
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& chunk : recv)
    for (const auto& p : chunk) targets_[cursor[local_index(p.src, P)]++] = p.dst;
}

ShardResult<std::uint64_t> Graph500::bfs(rma::Rank& self, std::uint64_t root) const {
  const int P = self.nranks();
  self.reset_clock();
  self.reset_counters();
  ShardResult<std::uint64_t> res;
  res.values.assign(local_n_, work::kUnreached);

  std::vector<std::uint64_t> frontier;  // local indices
  if (root % static_cast<std::uint64_t>(P) == static_cast<std::uint64_t>(self.id())) {
    res.values[local_index(root, P)] = 0;
    frontier.push_back(local_index(root, P));
  }
  std::uint64_t level = 0;
  for (;;) {
    std::vector<std::vector<std::uint64_t>> sends(static_cast<std::size_t>(P));
    for (std::uint64_t u : frontier) {
      for (std::uint64_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
        const std::uint64_t v = targets_[i];
        sends[v % static_cast<std::uint64_t>(P)].push_back(v);
        self.charge_compute(1.0);  // tuned kernel: ~1ns per traversed edge
      }
    }
    auto recv = self.alltoallv(sends);
    frontier.clear();
    ++level;
    for (const auto& chunk : recv) {
      for (std::uint64_t v : chunk) {
        const std::uint64_t li = local_index(v, P);
        if (res.values[li] == work::kUnreached) {
          res.values[li] = level;
          frontier.push_back(li);
        }
      }
    }
    if (self.allreduce_sum<std::uint64_t>(frontier.size()) == 0) break;
  }
  res.sim_time_ns = self.allreduce_max(self.sim_time_ns());
  res.remote_ops = self.allreduce_sum(self.counters().remote_ops);
  return res;
}

}  // namespace gdi::work
