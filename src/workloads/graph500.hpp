// Graph500-style reference BFS (paper Section 6.5, Figures 6e/6f).
//
// The paper compares GDA's BFS against the Graph500 kernel: a highly tuned
// traversal over a static, label-free simple graph with no transactions.
// This module reproduces that comparison target: a distributed 1D CSR built
// once from the generated edge list, then a frontier-exchange BFS whose only
// communication is the alltoallv of 8-byte vertex ids -- no holder fetches,
// no property data, no transactional machinery. GDA's BFS should land within
// the paper's 2-4x of this.
#pragma once

#include <cstdint>
#include <vector>

#include "gdi/bulk.hpp"
#include "rma/runtime.hpp"
#include "workloads/olap.hpp"

namespace gdi::work {

class Graph500 {
 public:
  /// Collective: build each rank's CSR shard (undirected view) from this
  /// rank's slice of the edge list.
  Graph500(rma::Rank& self, std::uint64_t n, const std::vector<BulkEdge>& slice_edges);

  /// Collective BFS; returns levels for this rank's vertices.
  ShardResult<std::uint64_t> bfs(rma::Rank& self, std::uint64_t root) const;

  [[nodiscard]] std::uint64_t local_vertex_count() const { return local_n_; }
  [[nodiscard]] std::uint64_t local_edge_count() const { return targets_.size(); }

 private:
  [[nodiscard]] std::uint64_t local_index(std::uint64_t id, int P) const {
    return id / static_cast<std::uint64_t>(P);
  }

  std::uint64_t n_ = 0;
  std::uint64_t local_n_ = 0;
  std::vector<std::uint64_t> offsets_;  ///< per local vertex
  std::vector<std::uint64_t> targets_;  ///< global neighbor ids
};

}  // namespace gdi::work
