#include "workloads/olap.hpp"

#include <algorithm>
#include <unordered_map>

namespace gdi::work {
namespace {

constexpr double kNsPerEdge = 2.0;    ///< modeled CPU cost per edge touched
constexpr double kNsPerVertex = 6.0;  ///< modeled CPU cost per vertex touched

std::uint64_t owner_index(std::uint64_t id, int P) {
  return id / static_cast<std::uint64_t>(P);
}

/// Per-rank adjacency snapshot read through GDI once per algorithm: for every
/// local vertex, the application IDs of its neighbors. Mirrors how a database
/// mid-layer materializes structure for an iterative analytic.
struct LocalAdjacency {
  std::vector<std::uint64_t> ids;                    ///< local app ids
  std::vector<std::vector<std::uint64_t>> nbrs;      ///< neighbor app ids
};

/// Chunk size for frontier batching: bounded working set, still deep enough
/// that an overlapped batch amortizes its latency across many operations.
constexpr std::size_t kFrontierChunk = 128;

LocalAdjacency build_adjacency(const std::shared_ptr<Database>& db, rma::Rank& self,
                               std::uint64_t n, DirFilter f) {
  LocalAdjacency adj;
  const int P = self.nranks();
  Transaction txn(db, self, TxnMode::kReadShared, TxnScope::kCollective);
  std::unordered_map<std::uint64_t, std::uint64_t> id_cache;  // DPtr raw -> app id

  std::vector<std::uint64_t> local_ids;
  for (std::uint64_t v = static_cast<std::uint64_t>(self.id()); v < n;
       v += static_cast<std::uint64_t>(P))
    local_ids.push_back(v);

  // Chunked pipeline: batch-translate a slice of local vertices through the
  // DHT multi-lookup, batch-prefetch their holders, walk their edge lists
  // from the block cache, then batch-resolve all newly seen neighbor IDs --
  // four overlapped rounds instead of one network latency per GET.
  for (std::size_t base = 0; base < local_ids.size(); base += kFrontierChunk) {
    const std::size_t end = std::min(base + kFrontierChunk, local_ids.size());
    auto vids = txn.translate_vertex_ids(
        std::span<const std::uint64_t>(local_ids.data() + base, end - base));
    if (!vids.ok()) break;
    txn.prefetch_vertices(*vids);

    const std::size_t first_row = adj.ids.size();
    std::vector<DPtr> to_resolve;
    std::vector<std::vector<DPtr>> row_nbrs(end - base);
    for (std::size_t j = 0; j < end - base; ++j) {
      adj.ids.push_back(local_ids[base + j]);
      adj.nbrs.emplace_back();
      const DPtr vid = (*vids)[j];
      if (vid.is_null()) continue;
      auto vh = txn.associate_vertex(vid);
      if (!vh.ok()) continue;
      // Stale-DHT guard (same check find_vertex performs).
      if (auto idr = txn.app_id_of(*vh); !idr.ok() || *idr != local_ids[base + j])
        continue;
      auto edges = txn.edges_of(*vh, f);
      if (!edges.ok()) continue;
      row_nbrs[j].reserve(edges->size());
      for (const auto& e : *edges) {
        row_nbrs[j].push_back(e.neighbor);
        if (!id_cache.contains(e.neighbor.raw())) to_resolve.push_back(e.neighbor);
        self.charge_compute(kNsPerEdge);
      }
      self.charge_compute(kNsPerVertex);
    }

    txn.prefetch_vertices(to_resolve);
    for (std::size_t j = 0; j < row_nbrs.size(); ++j) {
      auto& out = adj.nbrs[first_row + j];
      out.reserve(row_nbrs[j].size());
      for (DPtr nb : row_nbrs[j]) {
        auto it = id_cache.find(nb.raw());
        std::uint64_t nid;
        if (it != id_cache.end()) {
          nid = it->second;
        } else {
          auto r = txn.peek_app_id(nb);
          nid = r.ok() ? *r : kUnreached;
          id_cache.emplace(nb.raw(), nid);
        }
        if (nid != kUnreached) out.push_back(nid);
      }
    }
  }
  (void)txn.commit();
  return adj;
}

template <class T>
void finalize(ShardResult<T>& res, rma::Rank& self) {
  res.sim_time_ns = self.allreduce_max(self.sim_time_ns());
  res.remote_ops = self.allreduce_sum(self.counters().remote_ops);
}

/// Gather the full value array from per-rank shards (round-robin owner).
template <class T>
std::vector<T> gather_global(rma::Rank& self, std::uint64_t n,
                             const std::vector<T>& shard) {
  const int P = self.nranks();
  auto flat = self.allgatherv(shard);
  // Rank r's shard occupies a contiguous range of `flat`, in id order
  // r, r+P, r+2P, ...; scatter back to id-indexed order.
  std::vector<T> global(n);
  std::size_t pos = 0;
  for (int r = 0; r < P; ++r) {
    for (std::uint64_t v = static_cast<std::uint64_t>(r); v < n;
         v += static_cast<std::uint64_t>(P))
      global[v] = flat[pos++];
  }
  return global;
}

}  // namespace

ShardResult<std::uint64_t> bfs(const std::shared_ptr<Database>& db, rma::Rank& self,
                               std::uint64_t n, std::uint64_t root) {
  const int P = self.nranks();
  self.reset_clock();
  self.reset_counters();
  ShardResult<std::uint64_t> res;
  res.values.assign(
      (n > static_cast<std::uint64_t>(self.id()))
          ? (n - 1 - static_cast<std::uint64_t>(self.id())) / static_cast<std::uint64_t>(P) + 1
          : 0,
      kUnreached);

  Transaction txn(db, self, TxnMode::kReadShared, TxnScope::kCollective);
  std::vector<DPtr> frontier;
  // Visited tracking by DPtr lets duplicate arrivals be dropped *before*
  // paying the holder peek -- the standard top-down BFS dedup.
  std::unordered_map<std::uint64_t, bool> seen;
  if (db->owner_rank(root) == static_cast<std::uint32_t>(self.id())) {
    auto vid = txn.translate_vertex_id(root);
    if (vid.ok()) {
      res.values[owner_index(root, P)] = 0;
      frontier.push_back(*vid);
      seen.emplace(vid->raw(), true);
    }
  }
  std::uint64_t level = 0;
  for (;;) {
    std::vector<std::vector<std::uint64_t>> sends(static_cast<std::size_t>(P));
    // Frontier expansion: one overlapped prefetch of the whole frontier's
    // holders (usually cache hits already -- each frontier vertex's block was
    // pulled when it arrived), then pure-cache edge walks.
    txn.prefetch_vertices(frontier);
    for (DPtr v : frontier) {
      auto vh = txn.associate_vertex(v);
      if (!vh.ok()) continue;
      auto edges = txn.edges_of(*vh, DirFilter::kAll);
      if (!edges.ok()) continue;
      for (const auto& e : *edges) {
        sends[e.neighbor.rank()].push_back(e.neighbor.raw());
        self.charge_compute(kNsPerEdge);
      }
    }
    auto recv = self.alltoallv(sends);
    frontier.clear();
    ++level;
    // Batch the holder reads of all fresh arrivals before peeking their IDs.
    std::vector<DPtr> fresh;
    for (const auto& chunk : recv)
      for (std::uint64_t raw : chunk)
        if (seen.emplace(raw, true).second) fresh.push_back(DPtr{raw});
    txn.prefetch_vertices(fresh);
    for (const DPtr nd : fresh) {
      auto idr = txn.peek_app_id(nd);  // local read: nd lives on this rank
      if (!idr.ok()) continue;
      const std::uint64_t idx = owner_index(*idr, P);
      if (idx < res.values.size() && res.values[idx] == kUnreached) {
        res.values[idx] = level;
        frontier.push_back(nd);
      }
      self.charge_compute(kNsPerVertex);
    }
    const std::uint64_t active = self.allreduce_sum<std::uint64_t>(frontier.size());
    if (active == 0) break;
  }
  (void)txn.commit();
  finalize(res, self);
  return res;
}

ShardResult<std::uint64_t> k_hop(const std::shared_ptr<Database>& db, rma::Rank& self,
                                 std::uint64_t n, std::uint64_t root, int k) {
  // Bounded BFS; the value array doubles as the visited set.
  const int P = self.nranks();
  self.reset_clock();
  self.reset_counters();
  ShardResult<std::uint64_t> res;
  std::vector<std::uint64_t> level(
      (n > static_cast<std::uint64_t>(self.id()))
          ? (n - 1 - static_cast<std::uint64_t>(self.id())) / static_cast<std::uint64_t>(P) + 1
          : 0,
      kUnreached);

  Transaction txn(db, self, TxnMode::kReadShared, TxnScope::kCollective);
  std::vector<DPtr> frontier;
  std::unordered_map<std::uint64_t, bool> seen;
  if (db->owner_rank(root) == static_cast<std::uint32_t>(self.id())) {
    auto vid = txn.translate_vertex_id(root);
    if (vid.ok()) {
      level[owner_index(root, P)] = 0;
      frontier.push_back(*vid);
      seen.emplace(vid->raw(), true);
    }
  }
  for (int hop = 1; hop <= k; ++hop) {
    std::vector<std::vector<std::uint64_t>> sends(static_cast<std::size_t>(P));
    txn.prefetch_vertices(frontier);
    for (DPtr v : frontier) {
      auto vh = txn.associate_vertex(v);
      if (!vh.ok()) continue;
      auto edges = txn.edges_of(*vh, DirFilter::kAll);
      if (!edges.ok()) continue;
      for (const auto& e : *edges) {
        sends[e.neighbor.rank()].push_back(e.neighbor.raw());
        self.charge_compute(kNsPerEdge);
      }
    }
    auto recv = self.alltoallv(sends);
    frontier.clear();
    std::vector<DPtr> fresh;
    for (const auto& chunk : recv)
      for (std::uint64_t raw : chunk)
        if (seen.emplace(raw, true).second) fresh.push_back(DPtr{raw});
    txn.prefetch_vertices(fresh);
    for (const DPtr nd : fresh) {
      auto idr = txn.peek_app_id(nd);
      if (!idr.ok()) continue;
      const std::uint64_t idx = owner_index(*idr, P);
      if (idx < level.size() && level[idx] == kUnreached) {
        level[idx] = static_cast<std::uint64_t>(hop);
        frontier.push_back(nd);
      }
    }
    if (self.allreduce_sum<std::uint64_t>(frontier.size()) == 0) break;
  }
  (void)txn.commit();
  std::uint64_t local = 0;
  for (auto l : level)
    if (l != kUnreached) ++local;
  res.values.assign(1, self.allreduce_sum(local));
  finalize(res, self);
  return res;
}

ShardResult<double> pagerank(const std::shared_ptr<Database>& db, rma::Rank& self,
                             std::uint64_t n, int iters, double df) {
  self.reset_clock();
  self.reset_counters();
  // Structure snapshot: directed out-adjacency read through GDI.
  auto adj = build_adjacency(db, self, n, DirFilter::kOut);

  ShardResult<double> res;
  res.values.assign(adj.ids.size(), 1.0 / static_cast<double>(n));
  std::vector<double> acc(n);
  for (int it = 0; it < iters; ++it) {
    std::fill(acc.begin(), acc.end(), 0.0);
    double local_dangling = 0.0;
    for (std::size_t i = 0; i < adj.ids.size(); ++i) {
      const auto deg = static_cast<double>(adj.nbrs[i].size());
      if (deg == 0) {
        local_dangling += res.values[i];
        continue;
      }
      const double share = res.values[i] / deg;
      for (std::uint64_t nb : adj.nbrs[i]) acc[nb] += share;
      self.charge_compute(kNsPerEdge * deg);
    }
    // Global contribution exchange + dangling mass (collectives).
    auto global_acc = self.allreduce(std::span<const double>(acc),
                                     [](double a, double b) { return a + b; });
    const double dangling = self.allreduce_sum(local_dangling);
    const double base = (1.0 - df) / static_cast<double>(n) +
                        df * dangling / static_cast<double>(n);
    for (std::size_t i = 0; i < adj.ids.size(); ++i)
      res.values[i] = base + df * global_acc[adj.ids[i]];
  }
  finalize(res, self);
  return res;
}

ShardResult<std::uint64_t> wcc(const std::shared_ptr<Database>& db, rma::Rank& self,
                               std::uint64_t n, int max_iters) {
  self.reset_clock();
  self.reset_counters();
  auto adj = build_adjacency(db, self, n, DirFilter::kAll);

  ShardResult<std::uint64_t> res;
  res.values = adj.ids;  // component id starts as own id
  int it = 0;
  for (;;) {
    ++it;
    auto global = gather_global(self, n, res.values);
    bool changed = false;
    for (std::size_t i = 0; i < adj.ids.size(); ++i) {
      std::uint64_t best = res.values[i];
      for (std::uint64_t nb : adj.nbrs[i]) best = std::min(best, global[nb]);
      self.charge_compute(kNsPerEdge * static_cast<double>(adj.nbrs[i].size()));
      if (best < res.values[i]) {
        res.values[i] = best;
        changed = true;
      }
    }
    if (!self.allreduce_or(changed)) break;
    if (max_iters > 0 && it >= max_iters) break;
  }
  finalize(res, self);
  return res;
}

ShardResult<std::uint64_t> cdlp(const std::shared_ptr<Database>& db, rma::Rank& self,
                                std::uint64_t n, int iters) {
  self.reset_clock();
  self.reset_counters();
  auto adj = build_adjacency(db, self, n, DirFilter::kAll);

  ShardResult<std::uint64_t> res;
  res.values = adj.ids;
  std::unordered_map<std::uint64_t, std::uint64_t> freq;
  for (int it = 0; it < iters; ++it) {
    auto global = gather_global(self, n, res.values);
    for (std::size_t i = 0; i < adj.ids.size(); ++i) {
      if (adj.nbrs[i].empty()) continue;
      freq.clear();
      for (std::uint64_t nb : adj.nbrs[i]) ++freq[global[nb]];
      std::uint64_t best = res.values[i];
      std::uint64_t best_count = 0;
      for (const auto& [l, c] : freq) {
        if (c > best_count || (c == best_count && l < best)) {
          best = l;
          best_count = c;
        }
      }
      res.values[i] = best;
      self.charge_compute(kNsPerEdge * static_cast<double>(adj.nbrs[i].size()));
    }
  }
  finalize(res, self);
  return res;
}

ShardResult<double> lcc(const std::shared_ptr<Database>& db, rma::Rank& self,
                        std::uint64_t n) {
  const int P = self.nranks();
  self.reset_clock();
  self.reset_counters();

  // Neighbor sets are fetched through GDI on demand -- including *remote*
  // vertices, which is where the one-sided design earns its keep.
  Transaction txn(db, self, TxnMode::kReadShared, TxnScope::kCollective);
  std::unordered_map<std::uint64_t, std::uint64_t> id_cache;
  auto neighbor_ids = [&](VertexHandle vh) {
    std::vector<std::uint64_t> out;
    auto edges = txn.edges_of(vh, DirFilter::kAll);
    if (!edges.ok()) return out;
    // Resolve all uncached neighbor IDs with one overlapped batch.
    std::vector<DPtr> need;
    for (const auto& e : *edges)
      if (!id_cache.contains(e.neighbor.raw())) need.push_back(e.neighbor);
    txn.prefetch_vertices(need);
    for (const auto& e : *edges) {
      auto it = id_cache.find(e.neighbor.raw());
      std::uint64_t nid;
      if (it != id_cache.end()) {
        nid = it->second;
      } else {
        auto r = txn.peek_app_id(e.neighbor);
        nid = r.ok() ? *r : kUnreached;
        id_cache.emplace(e.neighbor.raw(), nid);
      }
      if (nid != kUnreached) out.push_back(nid);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };

  ShardResult<double> res;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> nbr_cache;
  for (std::uint64_t u = static_cast<std::uint64_t>(self.id()); u < n;
       u += static_cast<std::uint64_t>(P)) {
    double val = 0.0;
    auto vh = txn.find_vertex(u);
    if (vh.ok()) {
      auto nu = neighbor_ids(*vh);
      nu.erase(std::remove(nu.begin(), nu.end(), u), nu.end());
      const std::size_t d = nu.size();
      if (d >= 2) {
        // Batch-translate and prefetch the uncached two-hop vertices before
        // walking them: one DHT multi-lookup + one overlapped holder fetch.
        std::vector<std::uint64_t> need_ids;
        for (std::uint64_t vid_app : nu)
          if (!nbr_cache.contains(vid_app)) need_ids.push_back(vid_app);
        std::unordered_map<std::uint64_t, DPtr> translated;
        if (auto vids = txn.translate_vertex_ids(need_ids); vids.ok()) {
          txn.prefetch_vertices(*vids);
          for (std::size_t j = 0; j < need_ids.size(); ++j)
            translated.emplace(need_ids[j], (*vids)[j]);
        }
        std::uint64_t links2 = 0;
        for (std::uint64_t vid_app : nu) {
          auto it = nbr_cache.find(vid_app);
          if (it == nbr_cache.end()) {
            std::vector<std::uint64_t> nv;
            const auto tit = translated.find(vid_app);
            const DPtr nvid = tit != translated.end() ? tit->second : DPtr{};
            if (!nvid.is_null()) {
              if (auto nvh = txn.associate_vertex(nvid); nvh.ok()) {
                // Stale-DHT guard (find_vertex's app-id check).
                if (auto idr = txn.app_id_of(*nvh); idr.ok() && *idr == vid_app)
                  nv = neighbor_ids(*nvh);
              }
            }
            // Exclude the vertex itself (self-loops do not close triangles).
            nv.erase(std::remove(nv.begin(), nv.end(), vid_app), nv.end());
            it = nbr_cache.emplace(vid_app, std::move(nv)).first;
          }
          for (std::uint64_t w : it->second) {
            if (w != u && std::binary_search(nu.begin(), nu.end(), w)) ++links2;
            self.charge_compute(1.0);
          }
        }
        val = static_cast<double>(links2) / 2.0 /
              (static_cast<double>(d) * static_cast<double>(d - 1) / 2.0);
      }
    }
    res.values.push_back(val);
  }
  (void)txn.commit();
  finalize(res, self);
  return res;
}

}  // namespace gdi::work
