#include "workloads/olap.hpp"

#include <algorithm>
#include <unordered_map>

namespace gdi::work {
namespace {

constexpr double kNsPerEdge = 2.0;    ///< modeled CPU cost per edge touched
constexpr double kNsPerVertex = 6.0;  ///< modeled CPU cost per vertex touched

std::uint64_t owner_index(std::uint64_t id, int P) {
  return id / static_cast<std::uint64_t>(P);
}

/// Per-rank adjacency snapshot read through GDI once per algorithm: for every
/// local vertex, the application IDs of its neighbors. Mirrors how a database
/// mid-layer materializes structure for an iterative analytic.
struct LocalAdjacency {
  std::vector<std::uint64_t> ids;                    ///< local app ids
  std::vector<std::vector<std::uint64_t>> nbrs;      ///< neighbor app ids
};

/// Chunk size for frontier batching: bounded working set, still deep enough
/// that an overlapped batch amortizes its latency across many operations.
constexpr std::size_t kFrontierChunk = 128;

LocalAdjacency build_adjacency(const std::shared_ptr<Database>& db, rma::Rank& self,
                               std::uint64_t n, DirFilter f) {
  LocalAdjacency adj;
  const int P = self.nranks();
  Transaction txn(db, self, TxnMode::kReadShared, TxnScope::kCollective);
  std::unordered_map<std::uint64_t, std::uint64_t> id_cache;  // DPtr raw -> app id

  std::vector<std::uint64_t> local_ids;
  for (std::uint64_t v = static_cast<std::uint64_t>(self.id()); v < n;
       v += static_cast<std::uint64_t>(P))
    local_ids.push_back(v);

  // Async pipeline in two stages. Stage 1 finds every local vertex,
  // chunk-by-chunk, one BatchScope::execute per chunk (DHT multi-lookup +
  // overlapped holder fetch + stale-DHT validation); after it, every local
  // holder is transaction state. Stage 2 walks the edge lists and resolves
  // neighbor IDs: local neighbors are free state hits, remote neighbors ride
  // batched overlapped 8-byte peeks -- 8 bytes on the wire per remote
  // neighbor instead of the whole-block prefetch the pre-async code paid.
  std::vector<Future<VertexHandle>> handles;
  handles.reserve(local_ids.size());
  for (std::size_t base = 0; base < local_ids.size(); base += kFrontierChunk) {
    const std::size_t end = std::min(base + kFrontierChunk, local_ids.size());
    BatchScope finds = txn.batch();
    for (std::size_t j = base; j < end; ++j) handles.push_back(finds.find(local_ids[j]));
    if (is_transaction_critical(finds.execute())) return adj;
  }

  for (std::size_t base = 0; base < local_ids.size(); base += kFrontierChunk) {
    const std::size_t end = std::min(base + kFrontierChunk, local_ids.size());
    const std::size_t first_row = adj.ids.size();
    std::vector<std::vector<DPtr>> row_nbrs(end - base);
    BatchScope peeks = txn.batch();
    std::unordered_map<std::uint64_t, Future<std::uint64_t>> peeked;
    for (std::size_t j = base; j < end; ++j) {
      adj.ids.push_back(local_ids[j]);
      adj.nbrs.emplace_back();
      if (!handles[j].ok()) continue;
      auto edges = txn.edges_of(*handles[j], f);
      if (!edges.ok()) continue;
      row_nbrs[j - base].reserve(edges->size());
      for (const auto& e : *edges) {
        row_nbrs[j - base].push_back(e.neighbor);
        // contains-guard first: try_emplace would evaluate (and enqueue) the
        // peek even when the key is already present.
        if (!id_cache.contains(e.neighbor.raw()) && !peeked.contains(e.neighbor.raw()))
          peeked.emplace(e.neighbor.raw(), peeks.peek_app_id(e.neighbor));
        self.charge_compute(kNsPerEdge);
      }
      self.charge_compute(kNsPerVertex);
    }

    (void)peeks.execute();
    for (std::size_t j = 0; j < row_nbrs.size(); ++j) {
      auto& out = adj.nbrs[first_row + j];
      out.reserve(row_nbrs[j].size());
      for (DPtr nb : row_nbrs[j]) {
        auto it = id_cache.find(nb.raw());
        std::uint64_t nid;
        if (it != id_cache.end()) {
          nid = it->second;
        } else {
          const auto& fut = peeked.at(nb.raw());
          nid = fut.ok() ? *fut : kUnreached;
          id_cache.emplace(nb.raw(), nid);
        }
        if (nid != kUnreached) out.push_back(nid);
      }
    }
  }
  (void)txn.commit();
  return adj;
}

template <class T>
void finalize(ShardResult<T>& res, rma::Rank& self) {
  res.sim_time_ns = self.allreduce_max(self.sim_time_ns());
  res.remote_ops = self.allreduce_sum(self.counters().remote_ops);
}

/// Gather the full value array from per-rank shards (round-robin owner).
template <class T>
std::vector<T> gather_global(rma::Rank& self, std::uint64_t n,
                             const std::vector<T>& shard) {
  const int P = self.nranks();
  auto flat = self.allgatherv(shard);
  // Rank r's shard occupies a contiguous range of `flat`, in id order
  // r, r+P, r+2P, ...; scatter back to id-indexed order.
  std::vector<T> global(n);
  std::size_t pos = 0;
  for (int r = 0; r < P; ++r) {
    for (std::uint64_t v = static_cast<std::uint64_t>(r); v < n;
         v += static_cast<std::uint64_t>(P))
      global[v] = flat[pos++];
  }
  return global;
}

}  // namespace

ShardResult<std::uint64_t> bfs(const std::shared_ptr<Database>& db, rma::Rank& self,
                               std::uint64_t n, std::uint64_t root) {
  const int P = self.nranks();
  self.reset_clock();
  self.reset_counters();
  ShardResult<std::uint64_t> res;
  res.values.assign(
      (n > static_cast<std::uint64_t>(self.id()))
          ? (n - 1 - static_cast<std::uint64_t>(self.id())) / static_cast<std::uint64_t>(P) + 1
          : 0,
      kUnreached);

  Transaction txn(db, self, TxnMode::kReadShared, TxnScope::kCollective);
  std::vector<DPtr> frontier;
  // Visited tracking by DPtr lets duplicate arrivals be dropped *before*
  // paying the holder peek -- the standard top-down BFS dedup.
  std::unordered_map<std::uint64_t, bool> seen;
  if (db->owner_rank(root) == static_cast<std::uint32_t>(self.id())) {
    auto vid = txn.translate_vertex_id(root);
    if (vid.ok()) {
      res.values[owner_index(root, P)] = 0;
      frontier.push_back(*vid);
      seen.emplace(vid->raw(), true);
    }
  }
  std::uint64_t level = 0;
  for (;;) {
    std::vector<std::vector<std::uint64_t>> sends(static_cast<std::size_t>(P));
    // Frontier expansion through the async surface: one execute resolves the
    // edge lists of the whole frontier (usually cache hits already -- each
    // frontier vertex's block was pulled when it arrived).
    BatchScope scope = txn.batch();
    std::vector<Future<std::vector<EdgeDesc>>> edge_futs;
    edge_futs.reserve(frontier.size());
    for (DPtr v : frontier) edge_futs.push_back(scope.edges_of(v, DirFilter::kAll));
    (void)scope.execute();
    for (const auto& edges : edge_futs) {
      if (!edges.ok()) continue;
      for (const auto& e : *edges) {
        sends[e.neighbor.rank()].push_back(e.neighbor.raw());
        self.charge_compute(kNsPerEdge);
      }
    }
    auto recv = self.alltoallv(sends);
    frontier.clear();
    ++level;
    // Batch the holder reads of all fresh arrivals before peeking their IDs.
    std::vector<DPtr> fresh;
    for (const auto& chunk : recv)
      for (std::uint64_t raw : chunk)
        if (seen.emplace(raw, true).second) fresh.push_back(DPtr{raw});
    txn.prefetch_vertices(fresh);
    for (const DPtr nd : fresh) {
      auto idr = txn.peek_app_id(nd);  // local read: nd lives on this rank
      if (!idr.ok()) continue;
      const std::uint64_t idx = owner_index(*idr, P);
      if (idx < res.values.size() && res.values[idx] == kUnreached) {
        res.values[idx] = level;
        frontier.push_back(nd);
      }
      self.charge_compute(kNsPerVertex);
    }
    const std::uint64_t active = self.allreduce_sum<std::uint64_t>(frontier.size());
    if (active == 0) break;
  }
  (void)txn.commit();
  finalize(res, self);
  return res;
}

ShardResult<std::uint64_t> k_hop(const std::shared_ptr<Database>& db, rma::Rank& self,
                                 std::uint64_t n, std::uint64_t root, int k,
                                 const Constraint* c) {
  // Bounded BFS; the value array doubles as the visited set.
  const int P = self.nranks();
  self.reset_clock();
  self.reset_counters();
  ShardResult<std::uint64_t> res;
  std::vector<std::uint64_t> level(
      (n > static_cast<std::uint64_t>(self.id()))
          ? (n - 1 - static_cast<std::uint64_t>(self.id())) / static_cast<std::uint64_t>(P) + 1
          : 0,
      kUnreached);

  Transaction txn(db, self, TxnMode::kReadShared, TxnScope::kCollective);
  std::vector<DPtr> frontier;
  std::unordered_map<std::uint64_t, bool> seen;
  if (db->owner_rank(root) == static_cast<std::uint32_t>(self.id())) {
    auto vid = txn.translate_vertex_id(root);
    if (vid.ok()) {
      level[owner_index(root, P)] = 0;
      frontier.push_back(*vid);
      seen.emplace(vid->raw(), true);
    }
  }
  for (int hop = 1; hop <= k; ++hop) {
    std::vector<std::vector<std::uint64_t>> sends(static_cast<std::size_t>(P));
    BatchScope scope = txn.batch();
    std::vector<Future<std::vector<EdgeDesc>>> edge_futs;
    edge_futs.reserve(frontier.size());
    // The constraint rides into the batch: every heavy-edge holder the
    // filter needs resolves through one fetch_edges_batch inside execute().
    for (DPtr v : frontier) edge_futs.push_back(scope.edges_of(v, DirFilter::kAll, c));
    (void)scope.execute();
    for (const auto& edges : edge_futs) {
      if (!edges.ok()) continue;
      for (const auto& e : *edges) {
        sends[e.neighbor.rank()].push_back(e.neighbor.raw());
        self.charge_compute(kNsPerEdge);
      }
    }
    auto recv = self.alltoallv(sends);
    frontier.clear();
    std::vector<DPtr> fresh;
    for (const auto& chunk : recv)
      for (std::uint64_t raw : chunk)
        if (seen.emplace(raw, true).second) fresh.push_back(DPtr{raw});
    txn.prefetch_vertices(fresh);
    for (const DPtr nd : fresh) {
      auto idr = txn.peek_app_id(nd);
      if (!idr.ok()) continue;
      const std::uint64_t idx = owner_index(*idr, P);
      if (idx < level.size() && level[idx] == kUnreached) {
        level[idx] = static_cast<std::uint64_t>(hop);
        frontier.push_back(nd);
      }
    }
    if (self.allreduce_sum<std::uint64_t>(frontier.size()) == 0) break;
  }
  (void)txn.commit();
  std::uint64_t local = 0;
  for (auto l : level)
    if (l != kUnreached) ++local;
  res.values.assign(1, self.allreduce_sum(local));
  finalize(res, self);
  return res;
}

ShardResult<double> pagerank(const std::shared_ptr<Database>& db, rma::Rank& self,
                             std::uint64_t n, int iters, double df) {
  self.reset_clock();
  self.reset_counters();
  // Structure snapshot: directed out-adjacency read through GDI.
  auto adj = build_adjacency(db, self, n, DirFilter::kOut);

  ShardResult<double> res;
  res.values.assign(adj.ids.size(), 1.0 / static_cast<double>(n));
  std::vector<double> acc(n);
  for (int it = 0; it < iters; ++it) {
    std::fill(acc.begin(), acc.end(), 0.0);
    double local_dangling = 0.0;
    for (std::size_t i = 0; i < adj.ids.size(); ++i) {
      const auto deg = static_cast<double>(adj.nbrs[i].size());
      if (deg == 0) {
        local_dangling += res.values[i];
        continue;
      }
      const double share = res.values[i] / deg;
      for (std::uint64_t nb : adj.nbrs[i]) acc[nb] += share;
      self.charge_compute(kNsPerEdge * deg);
    }
    // Global contribution exchange + dangling mass (collectives).
    auto global_acc = self.allreduce(std::span<const double>(acc),
                                     [](double a, double b) { return a + b; });
    const double dangling = self.allreduce_sum(local_dangling);
    const double base = (1.0 - df) / static_cast<double>(n) +
                        df * dangling / static_cast<double>(n);
    for (std::size_t i = 0; i < adj.ids.size(); ++i)
      res.values[i] = base + df * global_acc[adj.ids[i]];
  }
  finalize(res, self);
  return res;
}

ShardResult<std::uint64_t> wcc(const std::shared_ptr<Database>& db, rma::Rank& self,
                               std::uint64_t n, int max_iters) {
  self.reset_clock();
  self.reset_counters();
  auto adj = build_adjacency(db, self, n, DirFilter::kAll);

  ShardResult<std::uint64_t> res;
  res.values = adj.ids;  // component id starts as own id
  int it = 0;
  for (;;) {
    ++it;
    auto global = gather_global(self, n, res.values);
    bool changed = false;
    for (std::size_t i = 0; i < adj.ids.size(); ++i) {
      std::uint64_t best = res.values[i];
      for (std::uint64_t nb : adj.nbrs[i]) best = std::min(best, global[nb]);
      self.charge_compute(kNsPerEdge * static_cast<double>(adj.nbrs[i].size()));
      if (best < res.values[i]) {
        res.values[i] = best;
        changed = true;
      }
    }
    if (!self.allreduce_or(changed)) break;
    if (max_iters > 0 && it >= max_iters) break;
  }
  finalize(res, self);
  return res;
}

ShardResult<std::uint64_t> cdlp(const std::shared_ptr<Database>& db, rma::Rank& self,
                                std::uint64_t n, int iters) {
  self.reset_clock();
  self.reset_counters();
  auto adj = build_adjacency(db, self, n, DirFilter::kAll);

  ShardResult<std::uint64_t> res;
  res.values = adj.ids;
  std::unordered_map<std::uint64_t, std::uint64_t> freq;
  for (int it = 0; it < iters; ++it) {
    auto global = gather_global(self, n, res.values);
    for (std::size_t i = 0; i < adj.ids.size(); ++i) {
      if (adj.nbrs[i].empty()) continue;
      freq.clear();
      for (std::uint64_t nb : adj.nbrs[i]) ++freq[global[nb]];
      std::uint64_t best = res.values[i];
      std::uint64_t best_count = 0;
      for (const auto& [l, c] : freq) {
        if (c > best_count || (c == best_count && l < best)) {
          best = l;
          best_count = c;
        }
      }
      res.values[i] = best;
      self.charge_compute(kNsPerEdge * static_cast<double>(adj.nbrs[i].size()));
    }
  }
  finalize(res, self);
  return res;
}

ShardResult<double> lcc(const std::shared_ptr<Database>& db, rma::Rank& self,
                        std::uint64_t n) {
  const int P = self.nranks();
  self.reset_clock();
  self.reset_counters();

  // Neighbor sets are fetched through GDI on demand -- including *remote*
  // vertices, which is where the one-sided design earns its keep.
  Transaction txn(db, self, TxnMode::kReadShared, TxnScope::kCollective);
  std::unordered_map<std::uint64_t, std::uint64_t> id_cache;
  auto neighbor_ids = [&](VertexHandle vh) {
    std::vector<std::uint64_t> out;
    auto edges = txn.edges_of(vh, DirFilter::kAll);
    if (!edges.ok()) return out;
    // Resolve all uncached neighbor IDs as one batch of overlapped 8-byte
    // peeks -- no whole-block fetch for one-hop vertices whose holders are
    // only needed if they later join the two-hop set.
    BatchScope scope = txn.batch();
    std::unordered_map<std::uint64_t, Future<std::uint64_t>> peeked;
    for (const auto& e : *edges)
      // contains-guard first: try_emplace would evaluate (and enqueue) the
      // peek even when the key is already present.
      if (!id_cache.contains(e.neighbor.raw()) && !peeked.contains(e.neighbor.raw()))
        peeked.emplace(e.neighbor.raw(), scope.peek_app_id(e.neighbor));
    (void)scope.execute();
    for (const auto& e : *edges) {
      auto it = id_cache.find(e.neighbor.raw());
      std::uint64_t nid;
      if (it != id_cache.end()) {
        nid = it->second;
      } else {
        const auto& fut = peeked.at(e.neighbor.raw());
        nid = fut.ok() ? *fut : kUnreached;
        id_cache.emplace(e.neighbor.raw(), nid);
      }
      if (nid != kUnreached) out.push_back(nid);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };

  ShardResult<double> res;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> nbr_cache;
  for (std::uint64_t u = static_cast<std::uint64_t>(self.id()); u < n;
       u += static_cast<std::uint64_t>(P)) {
    double val = 0.0;
    auto vh = txn.find_vertex(u);
    if (vh.ok()) {
      auto nu = neighbor_ids(*vh);
      nu.erase(std::remove(nu.begin(), nu.end(), u), nu.end());
      const std::size_t d = nu.size();
      if (d >= 2) {
        // Batch-translate and prefetch the uncached two-hop vertices before
        // walking them: one DHT multi-lookup + one overlapped holder fetch.
        std::vector<std::uint64_t> need_ids;
        for (std::uint64_t vid_app : nu)
          if (!nbr_cache.contains(vid_app)) need_ids.push_back(vid_app);
        std::unordered_map<std::uint64_t, DPtr> translated;
        if (auto vids = txn.translate_vertex_ids(need_ids); vids.ok()) {
          txn.prefetch_vertices(*vids);
          for (std::size_t j = 0; j < need_ids.size(); ++j)
            translated.emplace(need_ids[j], (*vids)[j]);
        }
        std::uint64_t links2 = 0;
        for (std::uint64_t vid_app : nu) {
          auto it = nbr_cache.find(vid_app);
          if (it == nbr_cache.end()) {
            std::vector<std::uint64_t> nv;
            const auto tit = translated.find(vid_app);
            const DPtr nvid = tit != translated.end() ? tit->second : DPtr{};
            if (!nvid.is_null()) {
              if (auto nvh = txn.associate_vertex(nvid); nvh.ok()) {
                // Stale-DHT guard (find_vertex's app-id check).
                if (auto idr = txn.app_id_of(*nvh); idr.ok() && *idr == vid_app)
                  nv = neighbor_ids(*nvh);
              }
            }
            // Exclude the vertex itself (self-loops do not close triangles).
            nv.erase(std::remove(nv.begin(), nv.end(), vid_app), nv.end());
            it = nbr_cache.emplace(vid_app, std::move(nv)).first;
          }
          for (std::uint64_t w : it->second) {
            if (w != u && std::binary_search(nu.begin(), nu.end(), w)) ++links2;
            self.charge_compute(1.0);
          }
        }
        val = static_cast<double>(links2) / 2.0 /
              (static_cast<double>(d) * static_cast<double>(d - 1) / 2.0);
      }
    }
    res.values.push_back(val);
  }
  (void)txn.commit();
  finalize(res, self);
  return res;
}

}  // namespace gdi::work
