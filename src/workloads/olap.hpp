// OLAP graph-analytics workloads over GDI (paper Section 4, Listing 2;
// evaluation Section 6.5): BFS, k-hop, PageRank, CDLP, WCC, LCC.
//
// All algorithms follow the paper's recipe: a *collective transaction* in
// which every rank scans its local vertices (via the vertex index or by
// owner partition), reads graph structure through GDI handles, and exchanges
// algorithm state with MPI-style collectives. Algorithm state (levels, ranks,
// component ids) lives in per-rank arrays indexed by application vertex ID,
// which is how Graphalytics-class systems implement these kernels; the graph
// *structure* is always read through the GDI storage layer.
//
// Every routine returns this rank's shard of the result (index i holds the
// value of vertex id == rank + i * nranks) plus the simulated runtime.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gdi/gdi.hpp"

namespace gdi::work {

/// Result shard: values for vertices owned by this rank, plus timing.
template <class T>
struct ShardResult {
  std::vector<T> values;      ///< values[i] = vertex (rank + i*P)
  double sim_time_ns = 0;     ///< max over ranks, simulated
  std::uint64_t remote_ops = 0;
};

inline constexpr std::uint64_t kUnreached = ~std::uint64_t{0};

/// Collective BFS from `root` (app id). Traverses all edge directions.
ShardResult<std::uint64_t> bfs(const std::shared_ptr<Database>& db, rma::Rank& self,
                               std::uint64_t n, std::uint64_t root);

/// Vertices within k hops of root (count), collective. An optional edge
/// constraint restricts the traversal (lightweight labels match inline;
/// heavy-edge holders resolve through the batched fetch_edges_batch path).
ShardResult<std::uint64_t> k_hop(const std::shared_ptr<Database>& db, rma::Rank& self,
                                 std::uint64_t n, std::uint64_t root, int k,
                                 const Constraint* c = nullptr);

/// PageRank, `iters` synchronous iterations, damping `df` (paper: i=10, 0.85).
ShardResult<double> pagerank(const std::shared_ptr<Database>& db, rma::Rank& self,
                             std::uint64_t n, int iters, double df);

/// Weakly connected components (min-label propagation to convergence).
ShardResult<std::uint64_t> wcc(const std::shared_ptr<Database>& db, rma::Rank& self,
                               std::uint64_t n, int max_iters = 0);

/// Community detection by label propagation, `iters` rounds (paper: i=5).
ShardResult<std::uint64_t> cdlp(const std::shared_ptr<Database>& db, rma::Rank& self,
                                std::uint64_t n, int iters);

/// Local clustering coefficient. Remote neighbor sets are fetched through
/// GDI one-sided reads -- the communication-heavy kernel of Figure 6b.
ShardResult<double> lcc(const std::shared_ptr<Database>& db, rma::Rank& self,
                        std::uint64_t n);

}  // namespace gdi::work
