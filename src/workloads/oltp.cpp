#include "workloads/oltp.hpp"

namespace gdi::work {

const char* oltp_op_name(OltpOp op) {
  switch (op) {
    case OltpOp::kGetVertexProps: return "retrieve vertex";
    case OltpOp::kCountEdges: return "count edges";
    case OltpOp::kGetEdges: return "retrieve edges";
    case OltpOp::kAddVertex: return "insert vertex";
    case OltpOp::kDeleteVertex: return "delete vertex";
    case OltpOp::kUpdateVertexProp: return "update vertex";
    case OltpOp::kAddEdge: return "add edges";
    case OltpOp::kNumOps: break;
  }
  return "?";
}

// Table 3, columns RM / RI / WI / LB. Order matches OltpOp.
OpMix OpMix::read_mostly() {
  return OpMix{"read mostly", {0.288, 0.117, 0.593, 0.0, 0.0, 0.0, 0.002}};
}
OpMix OpMix::read_intensive() {
  return OpMix{"read intensive", {0.217, 0.088, 0.445, 0.0, 0.0, 0.0, 0.25}};
}
OpMix OpMix::write_intensive() {
  return OpMix{"write intensive", {0.091, 0.0, 0.109, 0.20, 0.067, 0.133, 0.40}};
}
OpMix OpMix::linkbench() {
  return OpMix{"LinkBench", {0.129, 0.049, 0.512, 0.026, 0.01, 0.074, 0.20}};
}

namespace {

OltpOp sample_op(const OpMix& mix, double u) {
  double acc = 0;
  for (int i = 0; i < kNumOltpOps; ++i) {
    acc += mix.weights[static_cast<std::size_t>(i)];
    if (u < acc) return static_cast<OltpOp>(i);
  }
  return OltpOp::kGetVertexProps;
}

}  // namespace

OltpResult run_oltp(const std::shared_ptr<Database>& db, rma::Rank& self,
                    const OpMix& mix, const OltpConfig& cfg) {
  OltpResult res;
  CounterRng rng(hash_combine(cfg.seed, static_cast<std::uint64_t>(self.id()) + 0x0177));
  const auto P = static_cast<std::uint64_t>(self.nranks());
  const auto r = static_cast<std::uint64_t>(self.id());
  std::uint64_t next_new_id = cfg.existing_ids + r;  // unique per rank, stride P
  std::uint64_t local_failed = 0;
  std::uint64_t local_not_found = 0;

  self.barrier();
  self.reset_clock();

  auto random_id = [&] { return rng.next_below(cfg.existing_ids); };

  for (std::uint64_t q = 0; q < cfg.queries_per_rank; ++q) {
    const OltpOp op = sample_op(mix, rng.next_unit());
    const double t0 = self.sim_time_ns();
    self.charge_compute(cfg.cpu_ns_per_query);
    Status outcome = Status::kOk;

    switch (op) {
      case OltpOp::kGetVertexProps: {
        Transaction txn(db, self, TxnMode::kRead);
        auto vh = txn.find_vertex(random_id());
        if (vh.ok()) {
          auto props = txn.ptypes_of(*vh);
          if (props.ok() && !props->empty())
            (void)txn.get_properties(*vh, (*props)[0]);
          outcome = txn.commit();
        } else {
          outcome = vh.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kCountEdges: {
        Transaction txn(db, self, TxnMode::kRead);
        auto vh = txn.find_vertex(random_id());
        if (vh.ok()) {
          (void)txn.count_edges(*vh, DirFilter::kAll);
          outcome = txn.commit();
        } else {
          outcome = vh.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kGetEdges: {
        Transaction txn(db, self, TxnMode::kRead);
        auto vh = txn.find_vertex(random_id());
        if (vh.ok()) {
          (void)txn.edges_of(*vh, DirFilter::kAll);
          outcome = txn.commit();
        } else {
          outcome = vh.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kAddVertex: {
        Transaction txn(db, self, TxnMode::kWrite);
        auto vh = txn.create_vertex(next_new_id);
        if (vh.ok()) {
          next_new_id += P;
          if (cfg.label_for_new) (void)txn.add_label(*vh, cfg.label_for_new);
          if (cfg.ptype_for_update)
            (void)txn.add_property(*vh, cfg.ptype_for_update,
                                   PropValue{static_cast<std::int64_t>(q)});
          outcome = txn.commit();
        } else {
          outcome = vh.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kDeleteVertex: {
        Transaction txn(db, self, TxnMode::kWrite);
        auto vh = txn.find_vertex(random_id());
        if (vh.ok()) {
          const Status s = txn.delete_vertex(*vh);
          outcome = ok(s) ? txn.commit() : s;
          if (!ok(s)) txn.abort();
        } else {
          outcome = vh.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kUpdateVertexProp: {
        Transaction txn(db, self, TxnMode::kWrite);
        auto vh = txn.find_vertex(random_id());
        if (vh.ok()) {
          const Status s = txn.update_property(
              *vh, cfg.ptype_for_update, PropValue{static_cast<std::int64_t>(q)});
          outcome = ok(s) || !is_transaction_critical(s) ? txn.commit() : s;
          if (is_transaction_critical(s)) txn.abort();
        } else {
          outcome = vh.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kAddEdge: {
        Transaction txn(db, self, TxnMode::kWrite);
        auto a = txn.find_vertex(random_id());
        auto b = a.ok() ? txn.find_vertex(random_id()) : Result<VertexHandle>(a.status());
        if (a.ok() && b.ok()) {
          auto uid = txn.create_edge(*a, *b, layout::Dir::kOut, cfg.label_for_new);
          outcome = uid.ok() || !is_transaction_critical(uid.status()) ? txn.commit()
                                                                       : uid.status();
          if (is_transaction_critical(uid.status()) && !uid.ok()) txn.abort();
        } else {
          outcome = a.ok() ? b.status() : a.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kNumOps:
        break;
    }

    if (is_transaction_critical(outcome)) {
      ++local_failed;
    } else if (outcome == Status::kNotFound) {
      ++local_not_found;
    }
    res.latency[static_cast<std::size_t>(op)].add(self.sim_time_ns() - t0);
  }

  const double my_time = self.sim_time_ns();
  res.rank_time_ns = self.allreduce_max(my_time);
  res.attempted = self.allreduce_sum(cfg.queries_per_rank);
  res.failed = self.allreduce_sum(local_failed);
  res.not_found = self.allreduce_sum(local_not_found);
  res.throughput_qps =
      res.rank_time_ns > 0
          ? static_cast<double>(res.attempted) / (res.rank_time_ns * 1e-9)
          : 0;
  return res;
}

}  // namespace gdi::work
