#include "workloads/oltp.hpp"

#include <algorithm>
#include <span>
#include <vector>

namespace gdi::work {

const char* oltp_op_name(OltpOp op) {
  switch (op) {
    case OltpOp::kGetVertexProps: return "retrieve vertex";
    case OltpOp::kCountEdges: return "count edges";
    case OltpOp::kGetEdges: return "retrieve edges";
    case OltpOp::kAddVertex: return "insert vertex";
    case OltpOp::kDeleteVertex: return "delete vertex";
    case OltpOp::kUpdateVertexProp: return "update vertex";
    case OltpOp::kAddEdge: return "add edges";
    case OltpOp::kNumOps: break;
  }
  return "?";
}

// Table 3, columns RM / RI / WI / LB. Order matches OltpOp.
OpMix OpMix::read_mostly() {
  return OpMix{"read mostly", {0.288, 0.117, 0.593, 0.0, 0.0, 0.0, 0.002}};
}
OpMix OpMix::read_intensive() {
  return OpMix{"read intensive", {0.217, 0.088, 0.445, 0.0, 0.0, 0.0, 0.25}};
}
OpMix OpMix::write_intensive() {
  return OpMix{"write intensive", {0.091, 0.0, 0.109, 0.20, 0.067, 0.133, 0.40}};
}
OpMix OpMix::linkbench() {
  return OpMix{"LinkBench", {0.129, 0.049, 0.512, 0.026, 0.01, 0.074, 0.20}};
}
OpMix OpMix::update_stream() {
  return OpMix{"update stream", {0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0}};
}

namespace {

OltpOp sample_op(const OpMix& mix, double u) {
  double acc = 0;
  for (int i = 0; i < kNumOltpOps; ++i) {
    acc += mix.weights[static_cast<std::size_t>(i)];
    if (u < acc) return static_cast<OltpOp>(i);
  }
  return OltpOp::kGetVertexProps;
}

}  // namespace

namespace {

[[nodiscard]] bool is_point_read(OltpOp op) {
  return op == OltpOp::kGetVertexProps || op == OltpOp::kCountEdges ||
         op == OltpOp::kGetEdges;
}

/// One pre-sampled query of the stream (ids drawn at sample time so grouping
/// does not change the mix or the id distribution).
struct SampledQuery {
  OltpOp op;
  std::uint64_t a = 0;  ///< primary vertex app id
  std::uint64_t b = 0;  ///< second id (kAddEdge target)
};

}  // namespace

OltpResult run_oltp(const std::shared_ptr<Database>& db, rma::Rank& self,
                    const OpMix& mix, const OltpConfig& cfg) {
  OltpResult res;
  CounterRng rng(hash_combine(cfg.seed, static_cast<std::uint64_t>(self.id()) + 0x0177));
  const auto P = static_cast<std::uint64_t>(self.nranks());
  const auto r = static_cast<std::uint64_t>(self.id());
  std::uint64_t next_new_id = cfg.existing_ids + r;  // unique per rank, stride P
  std::uint64_t local_failed = 0;
  std::uint64_t local_not_found = 0;

  auto random_id = [&] { return rng.next_below(cfg.existing_ids); };
  const std::uint64_t hot = std::min(
      cfg.hot_ids == 0 ? cfg.existing_ids : cfg.hot_ids, cfg.existing_ids);
  auto random_read_id = [&] { return rng.next_below(hot); };
  const std::uint64_t hot_w = std::min(
      cfg.hot_write_ids == 0 ? cfg.existing_ids : cfg.hot_write_ids,
      cfg.existing_ids);
  auto random_write_id = [&] { return rng.next_below(hot_w); };

  // Pre-sample the whole stream: ops in mix order, ids per op, exactly as the
  // serial loop would have drawn them.
  std::vector<SampledQuery> queries(cfg.queries_per_rank);
  for (auto& q : queries) {
    q.op = sample_op(mix, rng.next_unit());
    switch (q.op) {
      case OltpOp::kGetVertexProps:
      case OltpOp::kCountEdges:
      case OltpOp::kGetEdges:
        q.a = random_read_id();
        break;
      case OltpOp::kDeleteVertex:
        q.a = random_id();
        break;
      case OltpOp::kUpdateVertexProp:
        q.a = random_write_id();
        break;
      case OltpOp::kAddEdge:
        q.a = random_write_id();
        q.b = random_write_id();
        break;
      case OltpOp::kAddVertex:
      case OltpOp::kNumOps:
        break;
    }
  }

  self.barrier();
  self.reset_clock();

  auto account = [&](OltpOp op, Status outcome, double latency_ns) {
    if (is_transaction_critical(outcome)) {
      ++local_failed;
    } else if (outcome == Status::kNotFound) {
      ++local_not_found;
    }
    res.latency[static_cast<std::size_t>(op)].add(latency_ns);
  };

  auto run_single = [&](const SampledQuery& q) {
    const double t0 = self.sim_time_ns();
    self.charge_compute(cfg.cpu_ns_per_query);
    Status outcome = Status::kOk;

    switch (q.op) {
      case OltpOp::kGetVertexProps: {
        Transaction txn(db, self, TxnMode::kRead);
        auto vh = txn.find_vertex(q.a);
        if (vh.ok()) {
          auto props = txn.ptypes_of(*vh);
          if (props.ok() && !props->empty())
            (void)txn.get_properties(*vh, (*props)[0]);
          outcome = txn.commit();
        } else {
          outcome = vh.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kCountEdges: {
        Transaction txn(db, self, TxnMode::kRead);
        auto vh = txn.find_vertex(q.a);
        if (vh.ok()) {
          (void)txn.count_edges(*vh, DirFilter::kAll);
          outcome = txn.commit();
        } else {
          outcome = vh.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kGetEdges: {
        Transaction txn(db, self, TxnMode::kRead);
        auto vh = txn.find_vertex(q.a);
        if (vh.ok()) {
          (void)txn.edges_of(*vh, DirFilter::kAll);
          outcome = txn.commit();
        } else {
          outcome = vh.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kAddVertex: {
        Transaction txn(db, self, TxnMode::kWrite);
        auto vh = txn.create_vertex(next_new_id);
        if (vh.ok()) {
          if (cfg.label_for_new) (void)txn.add_label(*vh, cfg.label_for_new);
          if (cfg.ptype_for_update)
            (void)txn.add_property(*vh, cfg.ptype_for_update,
                                   PropValue{static_cast<std::int64_t>(next_new_id)});
          next_new_id += P;
          outcome = txn.commit();
        } else {
          outcome = vh.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kDeleteVertex: {
        Transaction txn(db, self, TxnMode::kWrite);
        auto vh = txn.find_vertex(q.a);
        if (vh.ok()) {
          const Status s = txn.delete_vertex(*vh);
          outcome = ok(s) ? txn.commit() : s;
          if (!ok(s)) txn.abort();
        } else {
          outcome = vh.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kUpdateVertexProp: {
        Transaction txn(db, self, TxnMode::kWrite);
        auto vh = txn.find_vertex(q.a);
        if (vh.ok()) {
          const Status s = txn.update_property(
              *vh, cfg.ptype_for_update, PropValue{static_cast<std::int64_t>(q.a)});
          outcome = ok(s) || !is_transaction_critical(s) ? txn.commit() : s;
          if (is_transaction_critical(s)) txn.abort();
        } else {
          outcome = vh.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kAddEdge: {
        Transaction txn(db, self, TxnMode::kWrite);
        auto a = txn.find_vertex(q.a);
        auto b = a.ok() ? txn.find_vertex(q.b) : Result<VertexHandle>(a.status());
        if (a.ok() && b.ok()) {
          auto uid = txn.create_edge(*a, *b, layout::Dir::kOut, cfg.label_for_new);
          outcome = uid.ok() || !is_transaction_critical(uid.status()) ? txn.commit()
                                                                       : uid.status();
          if (is_transaction_critical(uid.status()) && !uid.ok()) txn.abort();
        } else {
          outcome = a.ok() ? b.status() : a.status();
          txn.abort();
        }
        break;
      }
      case OltpOp::kNumOps:
        break;
    }
    account(q.op, outcome, self.sim_time_ns() - t0);
  };

  // Frontier-grouped read path: a run of consecutive independent point reads
  // shares one kRead transaction. All vertex lookups ride one
  // BatchScope::execute (one DHT multi-lookup, overlapped read-lock CAS
  // rounds, one overlapped holder-block batch); the per-query reads then run
  // from local state. Each query is charged the group's amortized latency.
  // If a writer dooms the group transaction, every query retries in its own
  // transaction (what a client library would do), so one conflicted vertex
  // does not mark its innocent group siblings as failed.
  auto run_read_group = [&](std::span<const SampledQuery> group) {
    const double t0 = self.sim_time_ns();
    for (std::size_t i = 0; i < group.size(); ++i)
      self.charge_compute(cfg.cpu_ns_per_query);
    std::vector<Status> outcomes(group.size(), Status::kOk);
    bool doomed = false;
    {
      Transaction txn(db, self, TxnMode::kRead);
      BatchScope scope = txn.batch();
      std::vector<Future<VertexHandle>> handles;
      handles.reserve(group.size());
      for (const auto& q : group) handles.push_back(scope.find(q.a));
      doomed = is_transaction_critical(scope.execute());
      if (!doomed) {
        for (std::size_t i = 0; i < group.size(); ++i) {
          if (!handles[i].ok()) {
            outcomes[i] = handles[i].status();
            continue;
          }
          const VertexHandle vh = *handles[i];
          switch (group[i].op) {
            case OltpOp::kGetVertexProps: {
              auto props = txn.ptypes_of(vh);
              if (props.ok() && !props->empty())
                (void)txn.get_properties(vh, (*props)[0]);
              else if (!props.ok())
                outcomes[i] = props.status();
              break;
            }
            case OltpOp::kCountEdges: {
              auto c = txn.count_edges(vh, DirFilter::kAll);
              if (!c.ok()) outcomes[i] = c.status();
              break;
            }
            case OltpOp::kGetEdges: {
              auto e = txn.edges_of(vh, DirFilter::kAll);
              if (!e.ok()) outcomes[i] = e.status();
              break;
            }
            default:
              break;
          }
        }
        doomed = is_transaction_critical(txn.commit());
      }
    }
    if (!doomed) {
      const double share =
          (self.sim_time_ns() - t0) / static_cast<double>(group.size());
      for (std::size_t i = 0; i < group.size(); ++i)
        account(group[i].op, outcomes[i], share);
      return;
    }
    // The wasted group round stays on the simulated clock (throughput);
    // latency and failure accounting come from the per-query retries.
    for (const auto& q : group) run_single(q);
  };

  // Drive the stream: runs of consecutive point reads are grouped (up to
  // read_batch per group); everything else executes as before.
  const std::size_t max_group = std::max<std::uint32_t>(cfg.read_batch, 1);
  std::size_t i = 0;
  while (i < queries.size()) {
    if (max_group > 1 && is_point_read(queries[i].op)) {
      std::size_t j = i;
      while (j < queries.size() && is_point_read(queries[j].op) &&
             j - i < max_group)
        ++j;
      run_read_group(std::span<const SampledQuery>(queries.data() + i, j - i));
      i = j;
    } else {
      run_single(queries[i]);
      ++i;
    }
  }

  // Drain the last open flush epoch inside the measured window: deferred
  // commit work is real work, and throughput must not be flattered by an
  // unfenced tail.
  if (auto* cp = db->commit_pipeline(self)) cp->sync(self);

  const double my_time = self.sim_time_ns();
  res.rank_time_ns = self.allreduce_max(my_time);
  res.attempted = self.allreduce_sum(cfg.queries_per_rank);
  res.failed = self.allreduce_sum(local_failed);
  res.not_found = self.allreduce_sum(local_not_found);
  res.throughput_qps =
      res.rank_time_ns > 0
          ? static_cast<double>(res.attempted) / (res.rank_time_ns * 1e-9)
          : 0;
  return res;
}

WriteStreamResult run_write_stream(const std::shared_ptr<Database>& db,
                                   rma::Rank& self, const WriteStreamConfig& cfg) {
  WriteStreamResult res;
  CounterRng rng(hash_combine(cfg.seed, static_cast<std::uint64_t>(self.id()) + 0x5a7e));

  // This rank's slice of the hot set, translated once up front (a production
  // front end holds its partition's handles; the measured loop is the write
  // hot path itself, not the DHT).
  std::vector<DPtr> mine;
  {
    std::vector<std::uint64_t> ids;
    for (std::uint64_t k = 0; k < cfg.hot_ids; ++k) {
      const std::uint64_t id =
          cfg.existing_ids != 0
              ? splitmix64(hash_combine(cfg.seed, k)) % cfg.existing_ids
              : k;
      if (db->owner_rank(id) == static_cast<std::uint32_t>(self.id()))
        ids.push_back(id);
    }
    Transaction txn(db, self, TxnMode::kRead);
    auto vids = txn.translate_vertex_ids(ids);
    txn.abort();
    if (vids.ok())
      for (DPtr v : *vids)
        if (!v.is_null()) mine.push_back(v);
  }

  self.barrier();
  self.reset_clock();
  const std::uint64_t flushes_before = self.counters().flushes;
  std::uint64_t local_failed = 0;
  std::uint64_t local_txns = 0;

  for (std::uint64_t q = 0; q < cfg.updates_per_rank && !mine.empty(); ++q) {
    const DPtr vid = mine[rng.next_below(mine.size())];
    self.charge_compute(cfg.cpu_ns_per_query);
    {
      Transaction txn(db, self, TxnMode::kWrite);
      const Status s = txn.update_property(
          VertexHandle{vid}, cfg.ptype, PropValue{static_cast<std::int64_t>(q)});
      const Status outcome = ok(s) ? txn.commit() : s;
      if (!ok(s)) txn.abort();
      if (is_transaction_critical(outcome)) ++local_failed;
      ++local_txns;
    }
    if (cfg.read_back) {
      // Independent read transaction of the vertex just committed: with
      // write-through this hits the re-stamped shared-cache entry; with
      // invalidate-on-writeback it always misses.
      self.charge_compute(cfg.cpu_ns_per_query);
      Transaction txn(db, self, TxnMode::kRead);
      auto vh = txn.associate_vertex(vid);
      if (vh.ok()) (void)txn.get_properties(*vh, cfg.ptype);
      const Status outcome = vh.ok() ? txn.commit() : vh.status();
      if (!vh.ok()) txn.abort();
      if (is_transaction_critical(outcome)) ++local_failed;
      ++local_txns;
    }
  }

  // Fence the tail epoch inside the measured window (see run_oltp).
  if (auto* cp = db->commit_pipeline(self)) cp->sync(self);

  res.flushes = self.counters().flushes - flushes_before;
  const double my_time = self.sim_time_ns();
  res.rank_time_ns = self.allreduce_max(my_time);
  res.attempted = self.allreduce_sum(local_txns);
  res.failed = self.allreduce_sum(local_failed);
  res.throughput_qps =
      res.rank_time_ns > 0
          ? static_cast<double>(res.attempted) / (res.rank_time_ns * 1e-9)
          : 0;
  return res;
}

}  // namespace gdi::work
