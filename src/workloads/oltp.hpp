// OLTP workload driver (paper Section 6.4, Table 3).
//
// Stresses a database with a high-velocity stream of single-process
// transactions sampled from an operation mix. The four mixes of Table 3 --
// Read Mostly, Read Intensive, Write Intensive, LinkBench -- are provided as
// presets with the paper's exact operation fractions. The driver records the
// simulated latency of every operation into per-op-type histograms (Figure 5)
// and the failed-transaction fraction (the percentages of Figures 4c/4d).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "gdi/gdi.hpp"
#include "stats/stats.hpp"

namespace gdi::work {

enum class OltpOp : std::uint8_t {
  kGetVertexProps = 0,  // "retrieve vertex"
  kCountEdges,          // "count edges"
  kGetEdges,            // "retrieve edges"
  kAddVertex,           // "insert vertex"
  kDeleteVertex,        // "delete vertex"
  kUpdateVertexProp,    // "update vertex"
  kAddEdge,             // "add edges"
  kNumOps,
};
inline constexpr int kNumOltpOps = static_cast<int>(OltpOp::kNumOps);

[[nodiscard]] const char* oltp_op_name(OltpOp op);

/// Operation mix: fractions summing to 1 (Table 3 columns).
struct OpMix {
  std::string name;
  std::array<double, kNumOltpOps> weights{};

  [[nodiscard]] static OpMix read_mostly();     // RM  [Weaver]: 99.8% reads
  [[nodiscard]] static OpMix read_intensive();  // RI  [Weaver]: 75% reads
  [[nodiscard]] static OpMix write_intensive(); // WI  [G-Tran]: 20% reads
  [[nodiscard]] static OpMix linkbench();       // LB  [LinkBench]: 69% reads
  /// Pure update stream: the commit-dominated write shape the group-commit
  /// pipeline targets (every query is one update-property transaction).
  [[nodiscard]] static OpMix update_stream();
};

struct OltpConfig {
  std::uint64_t queries_per_rank = 2000;
  std::uint64_t seed = 1;
  std::uint64_t existing_ids = 0;  ///< app ids 0..existing_ids-1 were bulk loaded
  std::uint32_t label_for_new = 0;
  std::uint32_t ptype_for_update = 0;
  double cpu_ns_per_query = 180.0;  ///< modeled client-side work per query
  /// Frontier-grouping of independent point reads: up to this many consecutive
  /// read-only queries share one kRead transaction and one BatchScope::execute
  /// (batched DHT translation, overlapped read-lock CAS rounds, one overlapped
  /// holder fetch), amortizing the network latency the paper's serial
  /// transaction-per-query shape pays per read. 1 = the legacy one
  /// round-trip-per-query behaviour.
  std::uint32_t read_batch = 32;
  /// Warm-working-set knob: when nonzero, point-read targets are drawn from
  /// app ids [0, hot_ids) instead of the full [0, existing_ids) range --
  /// production OLTP traffic concentrates on a hot subset, which is what the
  /// shared inter-transaction block cache monetizes. Write-op targets keep
  /// the full range (so invalidation traffic still exercises the cache). 0 =
  /// uniform reads over every id (the PR 3 behaviour).
  std::uint64_t hot_ids = 0;
  /// Write-stream twin of hot_ids: when nonzero, update and add-edge targets
  /// are drawn from [0, hot_write_ids) -- the repeatedly-rewritten rows of a
  /// production OLTP write stream, which is what write-through caching and
  /// cross-transaction group commit monetize. Deletes keep the full range
  /// (a hot set that deletes itself is not a hot set). 0 = uniform.
  std::uint64_t hot_write_ids = 0;
};

struct OltpResult {
  std::uint64_t attempted = 0;
  std::uint64_t failed = 0;     ///< transaction-critical failures (conflicts)
  std::uint64_t not_found = 0;  ///< benign misses (racing deletes)
  double rank_time_ns = 0;      ///< max simulated time across ranks
  double throughput_qps = 0;    ///< global queries per (simulated) second
  /// Per-op-type latency distribution (stats::LatencyHist: one shared binning
  /// policy with the scheduler's per-tenant histograms; mergeable).
  std::array<stats::LatencyHist, kNumOltpOps> latency;

  [[nodiscard]] double failed_fraction() const {
    return attempted ? static_cast<double>(failed) / static_cast<double>(attempted) : 0;
  }
};

/// Run `cfg.queries_per_rank` single-process transactions on every rank;
/// returns globally aggregated counters with this rank's latency histograms.
/// When the database's group-commit pipeline is on, the last open flush
/// epoch is drained inside the measured window (its cost is real work).
OltpResult run_oltp(const std::shared_ptr<Database>& db, rma::Rank& self,
                    const OpMix& mix, const OltpConfig& cfg);

// --- the OLTP write-stream shape -------------------------------------------
//
// A partition-affine stream of single-update transactions: each rank
// repeatedly rewrites the vertices *it owns* out of a small hot set, the
// shape a partition-routed OLTP front end produces (and the shape where the
// per-commit completion fence is the dominant cost the group-commit pipeline
// amortizes away). Handles are pre-translated once, so the measured loop is
// pure lock -> fetch -> buffer -> commit; with `read_back` every update is
// followed by an independent read transaction of the same vertex, the
// read-after-own-write pattern write-through keeps warm.
struct WriteStreamConfig {
  std::uint64_t updates_per_rank = 2000;
  std::uint64_t hot_ids = 256;  ///< global hot set; each rank writes its own members
  /// Loaded app-id space. When nonzero, the hot set is a *hashed* subset of
  /// [0, existing_ids) -- production hot rows are arbitrary rows, not the
  /// lowest ids, which in a Kronecker graph are exactly the supernodes whose
  /// multi-block holders would turn a commit-protocol measurement into an
  /// adjacency-volume one. 0 = the literal range [0, hot_ids).
  std::uint64_t existing_ids = 0;
  std::uint32_t ptype = 0;      ///< property rewritten by every update
  double cpu_ns_per_query = 180.0;
  std::uint64_t seed = 1;
  bool read_back = false;  ///< follow each update with a kRead of the same vertex
};

struct WriteStreamResult {
  std::uint64_t attempted = 0;  ///< global transactions (updates + read-backs)
  std::uint64_t failed = 0;     ///< transaction-critical failures
  double rank_time_ns = 0;      ///< max simulated time across ranks
  double throughput_qps = 0;    ///< global transactions per simulated second
  std::uint64_t flushes = 0;    ///< this rank's flushes inside the measured loop
};

WriteStreamResult run_write_stream(const std::shared_ptr<Database>& db,
                                   rma::Rank& self, const WriteStreamConfig& cfg);

}  // namespace gdi::work
